// BFS runs a complete breadth-first search — the host loop launching the
// two Rodinia BFS kernels level by level until the frontier empties — on
// both the VGIW machine and the Fermi-like SIMT baseline, then validates
// the distances against a host-side BFS.
//
//	go run ./examples/bfs
package main

import (
	"fmt"
	"log"

	"vgiw"
)

const (
	numNodes = 4096
	avgDeg   = 4
)

// graph is a CSR random graph.
type graph struct {
	starting, count, edges []uint32
}

func makeGraph() *graph {
	g := &graph{
		starting: make([]uint32, numNodes),
		count:    make([]uint32, numNodes),
	}
	seed := uint32(0x2545F491)
	next := func(n int) uint32 {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		return seed % uint32(n)
	}
	total := uint32(0)
	for i := range g.count {
		g.count[i] = 1 + next(2*avgDeg-1)
		g.starting[i] = total
		total += g.count[i]
	}
	g.edges = make([]uint32, total)
	for i := range g.edges {
		g.edges[i] = next(numNodes)
	}
	return g
}

// Memory layout (word addresses).
type layout struct {
	start, count, edge, mask, upd, visit, cost, over int
	words                                            int
}

func (g *graph) layout() layout {
	var l layout
	l.start = 0
	l.count = l.start + numNodes
	l.edge = l.count + numNodes
	l.mask = l.edge + len(g.edges)
	l.upd = l.mask + numNodes
	l.visit = l.upd + numNodes
	l.cost = l.visit + numNodes
	l.over = l.cost + numNodes
	l.words = l.over + 1
	return l
}

func (g *graph) image(l layout) []uint32 {
	mem := make([]uint32, l.words)
	copy(mem[l.start:], g.starting)
	copy(mem[l.count:], g.count)
	copy(mem[l.edge:], g.edges)
	for i := 0; i < numNodes; i++ {
		mem[l.cost+i] = ^uint32(0) // -1
	}
	mem[l.mask] = 1  // node 0 is the initial frontier
	mem[l.visit] = 1 // and is visited
	mem[l.cost] = 0
	return mem
}

// buildKernel1 is the frontier-expansion kernel (Rodinia BFS Kernel).
func buildKernel1(l layout) *vgiw.Kernel {
	b := vgiw.NewKernelBuilder("bfs.kernel1")
	b.SetParams(0)
	entry := b.NewBlock("entry")
	setup := b.NewBlock("setup")
	loopHead := b.NewBlock("loop_head")
	update := b.NewBlock("update")
	latch := b.NewBlock("latch")
	exit := b.NewBlock("exit")

	addr := func(base int, idx vgiw.Reg) vgiw.Reg {
		return b.Add(b.Const(int32(base)), idx)
	}

	b.SetBlock(entry)
	inFrontier := b.Load(addr(l.mask, b.Tid()), 0)
	b.Branch(inFrontier, setup, exit)

	b.SetBlock(setup)
	b.Store(addr(l.mask, b.Tid()), 0, b.Const(0))
	myCost := b.Load(addr(l.cost, b.Tid()), 0)
	e := b.Mov(b.Load(addr(l.start, b.Tid()), 0))
	end := b.Add(e, b.Load(addr(l.count, b.Tid()), 0))
	b.Branch(b.SetLT(e, end), loopHead, exit)

	b.SetBlock(loopHead)
	id := b.Load(addr(l.edge, e), 0)
	vis := b.Load(addr(l.visit, id), 0)
	b.Branch(b.SetEQ(vis, b.Const(0)), update, latch)

	b.SetBlock(update)
	b.Store(addr(l.cost, id), 0, b.AddI(myCost, 1))
	b.Store(addr(l.upd, id), 0, b.Const(1))
	b.Jump(latch)

	b.SetBlock(latch)
	e1 := b.AddI(e, 1)
	b.MovTo(e, e1)
	b.Branch(b.SetLT(e1, end), loopHead, exit)

	b.SetBlock(exit)
	b.Ret()
	return b.MustBuild()
}

// buildKernel2 promotes the updating mask into the next frontier and raises
// the host-visible "not done" flag.
func buildKernel2(l layout) *vgiw.Kernel {
	b := vgiw.NewKernelBuilder("bfs.kernel2")
	b.SetParams(0)
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	addr := func(base int, idx vgiw.Reg) vgiw.Reg {
		return b.Add(b.Const(int32(base)), idx)
	}

	b.SetBlock(entry)
	upd := b.Load(addr(l.upd, b.Tid()), 0)
	b.Branch(upd, body, exit)

	b.SetBlock(body)
	b.Store(addr(l.mask, b.Tid()), 0, b.Const(1))
	b.Store(addr(l.visit, b.Tid()), 0, b.Const(1))
	b.Store(b.Const(int32(l.over)), 0, b.Const(1))
	b.Store(addr(l.upd, b.Tid()), 0, b.Const(0))
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	return b.MustBuild()
}

// run executes the full BFS loop with the given per-launch runner.
func run(name string, l layout, mem []uint32,
	launchKernel func(k *vgiw.Kernel, mem []uint32) (int64, error)) []uint32 {

	total := int64(0)
	levels := 0
	for {
		c1, err := launchKernel(buildKernel1(l), mem)
		if err != nil {
			log.Fatalf("%s kernel1: %v", name, err)
		}
		mem[l.over] = 0
		c2, err := launchKernel(buildKernel2(l), mem)
		if err != nil {
			log.Fatalf("%s kernel2: %v", name, err)
		}
		total += c1 + c2
		levels++
		if mem[l.over] == 0 {
			break
		}
		if levels > numNodes {
			log.Fatalf("%s: BFS did not converge", name)
		}
	}
	fmt.Printf("  %-18s %2d levels, %8d simulated cycles\n", name+":", levels, total)
	return mem
}

func main() {
	g := makeGraph()
	l := g.layout()
	launch := vgiw.Launch1D(numNodes/128, 128)

	fmt.Printf("BFS over a random graph: %d nodes, %d edges\n\n", numNodes, len(g.edges))

	vgiwMem := run("VGIW", l, g.image(l), func(k *vgiw.Kernel, mem []uint32) (int64, error) {
		res, err := vgiw.RunVGIW(k, launch, mem, nil)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	})

	simtMem := run("Fermi SIMT", l, g.image(l), func(k *vgiw.Kernel, mem []uint32) (int64, error) {
		res, err := vgiw.RunSIMT(k, launch, mem, nil)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	})

	// Host-side reference BFS.
	want := make([]int64, numNodes)
	for i := range want {
		want[i] = -1
	}
	want[0] = 0
	frontier := []uint32{0}
	for len(frontier) > 0 {
		var next []uint32
		for _, n := range frontier {
			for e := g.starting[n]; e < g.starting[n]+g.count[n]; e++ {
				id := g.edges[e]
				if want[id] < 0 {
					want[id] = want[n] + 1
					next = append(next, id)
				}
			}
		}
		frontier = next
	}

	reached := 0
	for i := 0; i < numNodes; i++ {
		w := uint32(want[i])
		if vgiwMem[l.cost+i] != w || simtMem[l.cost+i] != w {
			log.Fatalf("distance mismatch at node %d: vgiw=%d simt=%d want=%d",
				i, int32(vgiwMem[l.cost+i]), int32(simtMem[l.cost+i]), want[i])
		}
		if want[i] >= 0 {
			reached++
		}
	}
	fmt.Printf("\nall %d reachable node distances match the host BFS on both machines.\n", reached)
}
