// Quickstart: build a small kernel with the public builder API, run it on
// the VGIW machine, and print the execution statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vgiw"
)

func main() {
	// saxpy with a bounds guard: if (tid < n) y[tid] = a*x[tid] + y[tid].
	b := vgiw.NewKernelBuilder("saxpy")
	b.SetParams(4) // n, a, xBase, yBase
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	inRange := b.SetLT(b.Tid(), b.Param(0))
	b.Branch(inRange, body, exit)

	b.SetBlock(body)
	x := b.Load(b.Add(b.Param(2), b.Tid()), 0)
	yAddr := b.Add(b.Param(3), b.Tid())
	y := b.Load(yAddr, 0)
	b.Store(yAddr, 0, b.FAdd(b.FMul(b.Param(1), x), y))
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	kernel, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Inputs: x[i] = i, y[i] = 1; compute y = 0.5*x + y for n elements.
	const n = 4096
	global := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		global[i] = vgiw.F32(float32(i))
		global[n+i] = vgiw.F32(1)
	}
	launch := vgiw.Launch1D(n/128, 128, n, vgiw.F32(0.5), 0, n)

	res, err := vgiw.RunVGIW(kernel, launch, global, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Verify a few results.
	for _, i := range []int{0, 1, 1000, n - 1} {
		want := 0.5*float32(i) + 1
		got := vgiw.AsF32(global[n+i])
		fmt.Printf("y[%4d] = %-8g (want %g)\n", i, got, want)
		if got != want {
			log.Fatalf("mismatch at %d", i)
		}
	}

	fmt.Printf("\nVGIW executed %d threads in %d cycles (%.2f cycles/thread)\n",
		res.Threads, res.Cycles, float64(res.Cycles)/float64(res.Threads))
	fmt.Printf("  %d basic-block schedules, %d grid reconfigurations (%.3f%% of runtime)\n",
		len(res.BlockRuns), res.Reconfigs, res.ConfigOverhead()*100)
	fmt.Printf("  live value cache: %d loads, %d stores\n", res.LVCLoads, res.LVCStores)
	fmt.Printf("  control vector table: %d reads, %d writes\n", res.CVTReads, res.CVTWrites)
	fmt.Printf("  per-block replication: %v\n", res.ReplicasOf)
}
