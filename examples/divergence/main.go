// Divergence walks through the paper's running example (Figures 1 and 2):
// a nested conditional executed by eight threads whose control flow splits
// three ways. It prints the VGIW machine's dynamically coalesced thread
// vectors step by step — the Figure 2 walkthrough — and then compares all
// three architectures on the same kernel.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"

	"vgiw"
	"vgiw/internal/core"
)

// buildFig1a reproduces the Figure 1a control flow:
//
//	BB1: if (c1) -> BB2 else BB3
//	BB3: if (c2) -> BB4 else BB5
//	BB2, BB4, BB5 -> BB6 (merge)
//
// The input array steers threads 1,3,8 through BB2, threads 2,7 through BB4
// and threads 4-6 through BB5 (1-based thread numbering, as in the paper).
func buildFig1a() *vgiw.Kernel {
	b := vgiw.NewKernelBuilder("fig1a")
	b.SetParams(2) // inBase, outBase
	bb1 := b.NewBlock("BB1")
	bb2 := b.NewBlock("BB2")
	bb3 := b.NewBlock("BB3")
	bb4 := b.NewBlock("BB4")
	bb5 := b.NewBlock("BB5")
	bb6 := b.NewBlock("BB6")

	b.SetBlock(bb1)
	v := b.Load(b.Add(b.Param(0), b.Tid()), 0)
	b.Branch(b.SetLT(v, b.Const(10)), bb2, bb3)

	b.SetBlock(bb2)
	r := b.Mov(b.MulI(v, 2))
	b.Jump(bb6)

	b.SetBlock(bb3)
	b.Branch(b.SetLT(v, b.Const(100)), bb4, bb5)

	b.SetBlock(bb4)
	b.MovTo(r, b.AddI(v, 7))
	b.Jump(bb6)

	b.SetBlock(bb5)
	b.MovTo(r, b.Sub(v, b.Tid()))
	b.Jump(bb6)

	b.SetBlock(bb6)
	b.Store(b.Add(b.Param(1), b.Tid()), 0, r)
	b.Ret()
	return b.MustBuild()
}

// input steers the eight threads onto the paper's three paths.
func input() []uint32 {
	// threads (1-based) 1,3,8 -> v<10 (BB2); 2,7 -> 10<=v<100 (BB4);
	// 4,5,6 -> v>=100 (BB5).
	vals := []uint32{5, 50, 7, 200, 300, 400, 60, 9}
	mem := make([]uint32, 16)
	copy(mem, vals)
	return mem
}

func main() {
	launch := vgiw.Launch1D(1, 8, 0, 8)

	// --- The Figure 2 walkthrough: coalesced thread vectors per block. ---
	cfg := vgiw.DefaultVGIWConfig()
	cfg.Engine.Profile = true // records each schedule's thread vector
	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	kernel := buildFig1a()
	ck, err := m.Compile(kernel)
	if err != nil {
		log.Fatal(err)
	}
	mem := input()
	res, err := m.Run(ck, launch, mem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Control flow coalescing, step by step (paper Figure 2):")
	for step, br := range res.BlockRuns {
		fmt.Printf("  step %d: schedule %-4s -> thread vector %v\n",
			step+1, ck.Kernel.Blocks[br.Block].Label, oneBased(br.ThreadIDs))
	}
	fmt.Printf("\nEvery block was configured exactly once (%d reconfigurations for %d blocks):\n",
		res.Reconfigs, len(ck.Kernel.Blocks))
	fmt.Println("the number of schedules tracks basic blocks, not the number of divergent paths.")

	// --- Compare the three architectures (Figure 1b/1c/1d). ---
	simtRes, err := vgiw.RunSIMT(buildFig1a(), launch, input(), nil)
	if err != nil {
		log.Fatal(err)
	}
	sgmfRes, err := vgiw.RunSGMF(buildFig1a(), launch, input(), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe same kernel on all three architectures:")
	fmt.Printf("  %-22s %8d cycles  (%d lanes masked off by divergence)\n",
		"von Neumann GPGPU:", simtRes.Cycles, simtRes.MaskedLanes)
	fmt.Printf("  %-22s %8d cycles  (%d predicated-off memory ops: units held by not-taken paths)\n",
		"SGMF dataflow:", sgmfRes.Cycles, sgmfRes.SkippedMemOps)
	fmt.Printf("  %-22s %8d cycles  (each block runs only its own threads)\n",
		"VGIW (this paper):", res.Cycles)

	// Validate against the interpreter.
	ref := input()
	if err := vgiw.Interpret(buildFig1a(), launch, ref); err != nil {
		log.Fatal(err)
	}
	for i := 8; i < 16; i++ {
		if mem[i] != ref[i] {
			log.Fatalf("output mismatch at %d", i)
		}
	}
	fmt.Println("\noutputs validated against the reference interpreter.")
}

func oneBased(ids []int) []int {
	out := make([]int, len(ids))
	for i, t := range ids {
		out[i] = t + 1
	}
	return out
}
