// Kasm loads a kernel from its textual assembly form, compiles it, and runs
// it on the VGIW machine — the workflow for hand-authored kernels.
//
//	go run ./examples/kasm
package main

import (
	_ "embed"
	"fmt"
	"log"
	"math"

	"vgiw"
)

//go:embed kernel.kasm
var source string

func main() {
	kernel, err := vgiw.ParseKasm(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed kernel %q: %d blocks, %d instructions\n\n",
		kernel.Name, len(kernel.Blocks), kernel.NumInstrs())

	const n = 2048
	global := make([]uint32, 3*n)
	for i := 0; i < n; i++ {
		global[i] = vgiw.F32(float32(i) * 0.25)
		global[n+i] = vgiw.F32(float32(n-i) * 0.25)
	}
	launch := vgiw.Launch1D(n/128, 128, n, 0, n, 2*n)

	res, err := vgiw.RunVGIW(kernel, launch, global, nil)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		a := float32(i) * 0.25
		b := float32(n-i) * 0.25
		want := vgiw.F32(float32(math.Abs(float64(a - b))))
		if global[2*n+i] != want {
			log.Fatalf("out[%d] = %v, want %v", i, vgiw.AsF32(global[2*n+i]), vgiw.AsF32(want))
		}
	}
	fmt.Printf("all %d outputs correct; VGIW took %d cycles (%.2f cycles/thread)\n",
		n, res.Cycles, float64(res.Cycles)/float64(res.Threads))

	// Round trip: the compiled kernel prints back to the same format.
	fmt.Println("\nround-tripped kasm:")
	fmt.Print(vgiw.PrintKasm(kernel))
}
