// Package ctxpoll is the known-bad corpus for the migrated ctxpoll pass:
// per-iteration ctx.Err() polls must be strided or the function marked
// //vgiw:coarsepoll.
package ctxpoll

import "context"

var sink uint64

// pollEvery polls on every iteration.
func pollEvery(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil { //want:ctxpoll ctx.Err() polled every loop iteration in pollEvery
			return err
		}
		sink++
	}
	return nil
}

// pollStrided uses the modulus idiom: silent.
func pollStrided(ctx context.Context, n int) error {
	const stride = 64
	for i := 0; i < n; i++ {
		if i%stride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sink++
	}
	return nil
}

// pollCoarse is marked: each iteration is a whole coarse work item, and
// the marker is genuinely used (strict mode must not flag it).
//
//vgiw:coarsepoll
func pollCoarse(ctx context.Context, items []func()) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		it()
	}
	return nil
}
