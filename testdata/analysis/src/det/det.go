// Package det is the known-bad corpus for the determinism-taint pass.
// Each "want" comment pins an exact positioned diagnostic the pass must
// produce on that line; functions without one must stay silent.
// The file mirrors the repo's real serialization shapes — badSuiteJSON is
// the seeded PR-1 bug class: an unsorted map range reaching SuiteResult
// JSON.
package det

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SuiteResult mirrors bench.SuiteResult's shape: json-tagged fields are
// what the pass treats as serialization sinks.
type SuiteResult struct {
	Name string   `json:"name"`
	Rows []string `json:"rows"`
}

// badSuiteJSON collects map keys in iteration order and assigns them to a
// json-tagged field: the seeded unsorted-map-range-reaches-SuiteResult bug.
func badSuiteJSON(m map[string]int) []byte {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	res := SuiteResult{Name: "suite"}
	res.Rows = rows //want:det json-tagged field Rows receives a value carrying map iteration order without an intervening sort
	data, _ := json.Marshal(res)
	return data
}

// badSuiteLit does the same through a composite literal.
func badSuiteLit(m map[string]int) []byte {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	data, _ := json.Marshal(SuiteResult{Rows: rows}) //want:det json-tagged field Rows is initialized with a value carrying map iteration order
	return data
}

// goodSuiteJSON sorts before the field assignment: silent.
func goodSuiteJSON(m map[string]int) []byte {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	sort.Strings(rows)
	res := SuiteResult{Name: "suite"}
	res.Rows = rows
	data, _ := json.Marshal(res)
	return data
}

// badMarshalSlice marshals the accumulated keys directly.
func badMarshalSlice(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	data, _ := json.Marshal(keys) //want:det keys carries map iteration order and reaches encoding/json.Marshal
	return data
}

// goodSortedKeys is the canonical clean pattern: collect, sort, emit.
func goodSortedKeys(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	data, _ := json.Marshal(keys)
	return data
}

// badFprint emits inside the loop: no later sort can help.
func badFprint(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) //want:det map iteration order reaches fmt.Fprintf
	}
}

// badSend pushes keys into a channel in iteration order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k //want:det map iteration order determines channel send order
	}
}

// badFloatSum reassociates float addition across iteration orders: the sum
// itself is nondeterministic, so this is reported outright.
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //want:det floating-point accumulation follows map iteration order
	}
	return sum
}

// goodIntSum is exact under reassociation: silent.
func goodIntSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// badConcatPrint accumulates a string in iteration order and prints it.
func badConcatPrint(m map[string]int) {
	var out string
	for k := range m {
		out += k
	}
	fmt.Println(out) //want:det out carries map iteration order and reaches fmt.Println
}

// badSelect merges two result channels in arrival order and serializes.
func badSelect(a, b chan string) []byte {
	var got []string
	for i := 0; i < 4; i++ {
		select {
		case v := <-a:
			got = append(got, v)
		case v := <-b:
			got = append(got, v)
		}
	}
	data, _ := json.Marshal(got) //want:det got carries select arrival order and reaches encoding/json.Marshal
	return data
}

// goodSelect sorts the merged results first: silent.
func goodSelect(a, b chan string) []byte {
	var got []string
	for i := 0; i < 4; i++ {
		select {
		case v := <-a:
			got = append(got, v)
		case v := <-b:
			got = append(got, v)
		}
	}
	sort.Strings(got)
	data, _ := json.Marshal(got)
	return data
}

// goodMapInvert writes into another map: set semantics, order-free.
func goodMapInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// goodCount only counts: silent.
func goodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
