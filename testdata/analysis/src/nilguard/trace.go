// Package trace (corpus) pins the migrated nilguard pass: exported
// pointer-receiver methods of a Sink type in a package named trace must
// start by handling a nil receiver.
package trace

// Sink mimics the real trace.Sink's nil-means-off contract.
type Sink struct {
	n int
}

// Bad touches the receiver unguarded.
func (s *Sink) Bad() int { //want:nilguard exported method (*Sink).Bad must start by handling a nil receiver
	return s.n
}

// Good guards first: silent.
func (s *Sink) Good() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Len guards inside a one-line return: silent.
func (s *Sink) Len() int {
	if s != nil {
		return s.n
	}
	return 0
}

// reset is unexported: the contract only binds the exported surface.
func (s *Sink) reset() {
	s.n = 0
}
