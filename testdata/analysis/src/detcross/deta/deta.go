// Package deta exports a function that returns map keys unsorted. The det
// pass attaches OrderedFact to Keys; package detb (which imports this one
// and is analyzed after it) must see the fact.
package deta

// Keys returns m's keys in iteration order — callers must sort before
// serializing. (Silent here: returning unsorted data is legal; only an
// unsorted flow into a sink is a finding.)
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
