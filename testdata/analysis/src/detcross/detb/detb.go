// Package detb consumes deta.Keys across the package boundary: the
// OrderedFact exported while analyzing deta must flag the unsorted flow
// here, and the sorted variant must stay silent.
package detb

import (
	"encoding/json"
	"sort"

	"corpus/detcross/deta"
)

// Bad serializes the unsorted cross-package result.
func Bad(m map[string]int) []byte {
	ks := deta.Keys(m)
	data, _ := json.Marshal(ks) //want:det ks carries the unsorted map-order result of deta.Keys and reaches encoding/json.Marshal
	return data
}

// Good sorts the result first: silent.
func Good(m map[string]int) []byte {
	ks := deta.Keys(m)
	sort.Strings(ks)
	data, _ := json.Marshal(ks)
	return data
}

// BadDirect feeds the call result straight into the sink.
func BadDirect(m map[string]int) []byte {
	data, _ := json.Marshal(deta.Keys(m)) //want:det the unsorted map-order result of deta.Keys reaches encoding/json.Marshal
	return data
}
