// Package golife is the known-bad corpus for the goroutine-lifecycle
// pass: every `go` statement must show a context, WaitGroup, or external
// channel tying it to a lifecycle; self-governing named callees are
// accepted through the fact store.
package golife

import (
	"context"
	"sync"
	"time"
)

// badLeak spawns a goroutine nothing can stop or await.
func badLeak() {
	go func() { //want:golife goroutine in badLeak is not tied to a context, WaitGroup, or stop channel
		for {
			time.Sleep(time.Second)
		}
	}()
}

// badNamed spawns an untied named function.
func badNamed() {
	go idle() //want:golife goroutine in badNamed is not tied to a context, WaitGroup, or stop channel
}

func idle() {
	for {
		time.Sleep(time.Second)
	}
}

// goodCtx is cancelable: silent.
func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goodWG is awaitable: silent.
func goodWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
	}()
}

// goodStop watches an external stop channel: silent.
func goodStop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

// goodResult reports completion on an external channel: silent.
func goodResult(out chan<- int) {
	go func() {
		out <- 42
	}()
}

// goodNamedArg ties the named spawn through its argument: silent.
func goodNamedArg(stop chan struct{}) {
	go drain(stop)
}

func drain(stop chan struct{}) {
	<-stop
}

type worker struct {
	stop chan struct{}
}

// run is self-governing: it parks on the worker's stop channel.
func (w *worker) run() {
	<-w.stop
}

// start spawns run with no tying argument; the GovernedFact on run keeps
// it silent.
func (w *worker) start() {
	go w.run()
}
