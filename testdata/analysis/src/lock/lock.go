// Package lock is the known-bad corpus for the lock-discipline pass:
// lock-value copies, blocking operations inside explicit Lock/Unlock
// windows, and sync.Cond.Wait outside a re-check loop. The deferred-unlock
// idiom and default-guarded selects must stay silent.
package lock

import (
	"net/http"
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// value copies the mutex with its receiver.
func (c counter) value() int { //want:lock method value has a value receiver that copies sync.Mutex
	return c.n
}

// byValue copies the mutex through a parameter.
func byValue(c counter) int { //want:lock parameter of byValue passes sync.Mutex by value
	return c.n
}

// rangeCopy copies the mutex once per iteration.
func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { //want:lock range value copies sync.Mutex each iteration
		total += c.n
	}
	return total
}

// ptrValue takes the pointer: silent.
func ptrValue(c *counter) int {
	return c.n
}

type server struct {
	mu   sync.Mutex
	jobs chan int
}

// badRecv parks on a channel while holding the lock.
func (s *server) badRecv() int {
	s.mu.Lock()
	v := <-s.jobs //want:lock channel receive while s.mu is locked
	s.mu.Unlock()
	return v
}

// badSleep sleeps while holding the lock.
func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) //want:lock time.Sleep while s.mu is locked
	s.mu.Unlock()
}

// badHTTP does a network round-trip while holding the lock.
func (s *server) badHTTP(c *http.Client, req *http.Request) error {
	s.mu.Lock()
	_, err := c.Do(req) //want:lock net/http round-trip (Do) while s.mu is locked
	s.mu.Unlock()
	return err
}

// badWGWait waits on a WaitGroup while holding the lock.
func (s *server) badWGWait(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() //want:lock sync.WaitGroup.Wait while s.mu is locked
	s.mu.Unlock()
}

// badSelect parks on a no-default select while holding the lock.
func (s *server) badSelect(stop chan struct{}) {
	s.mu.Lock()
	select { //want:lock blocking select while s.mu is locked
	case <-s.jobs:
	case <-stop:
	}
	s.mu.Unlock()
}

// goodSelectDefault never blocks: silent.
func (s *server) goodSelectDefault() {
	s.mu.Lock()
	select {
	case <-s.jobs:
	default:
	}
	s.mu.Unlock()
}

// goodDefer is the repo's handler idiom — deferred unlock windows are
// deliberately tolerated: silent.
func (s *server) goodDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.jobs
}

// goodWindow closes the window before blocking: silent.
func (s *server) goodWindow() {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n == 0 {
		<-s.jobs
	}
}

type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int
}

// badWait re-checks with an if: the textbook lost-wakeup bug.
func (q *queue) badWait() int {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.cond.Wait() //want:lock sync.Cond.Wait outside a for loop
	}
	v := q.items[0]
	q.mu.Unlock()
	return v
}

// goodWait re-checks in a loop: silent (holding the cond's lock at Wait is
// required, not a finding).
func (q *queue) goodWait() int {
	q.mu.Lock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	v := q.items[0]
	q.mu.Unlock()
	return v
}
