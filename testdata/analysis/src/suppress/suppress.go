// Package suppress pins the suppression machinery: a justified
// //vgiw:allow silences its check, and -strict-suppressions reports
// allows (and //vgiw:coarsepoll markers) that excuse nothing, plus
// unknown check names.
package suppress

import (
	"context"
	"encoding/json"
)

// suppressed has a real det finding excused with a reason: silent in both
// modes.
func suppressed(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	//vgiw:allow det -- output order is asserted by the caller's own sort
	data, _ := json.Marshal(keys)
	return data
}

// unusedAllow's suppression outlived the code it excused.
func unusedAllow(n int) int {
	//wantstrict:suppress unused //vgiw:allow det suppression
	//vgiw:allow det -- stale: the map range here was removed
	return n * 2
}

// typoed names a check no pass provides.
func typoed(n int) int {
	//wantstrict:suppress //vgiw:allow names unknown check nosuchcheck
	//vgiw:allow nosuchcheck -- typo'd check name
	return n + 1
}

// pollFree no longer loops, so its coarsepoll escape is stale.
//
//vgiw:coarsepoll
func pollFree(ctx context.Context) error { //wantstrict:ctxpoll unused //vgiw:coarsepoll on pollFree
	return ctx.Err()
}
