// Package hotpath is the known-bad corpus for the migrated hotpath pass:
// //vgiw:hotpath functions must not allocate.
package hotpath

import "fmt"

// hotAppend grows a slice on the hot path.
//
//vgiw:hotpath
func hotAppend(xs []int, v int) []int {
	return append(xs, v) //want:hotpath append (may grow and allocate) in //vgiw:hotpath function hotAppend
}

// hotMakeMap allocates a map on the hot path.
//
//vgiw:hotpath
func hotMakeMap() map[int]int {
	return make(map[int]int) //want:hotpath make(map) in //vgiw:hotpath function hotMakeMap
}

// hotFmt formats on the hot path.
//
//vgiw:hotpath
func hotFmt(n int) error {
	return fmt.Errorf("bad value %d", n) //want:hotpath fmt.Errorf call (allocates on every call) in //vgiw:hotpath function hotFmt
}

// hotClean pre-sizes a reusable buffer — the allowed pattern: silent.
//
//vgiw:hotpath
func hotClean(xs []int64, n int) []int64 {
	if cap(xs) < n {
		xs = make([]int64, n)
	}
	xs = xs[:n]
	for i := range xs {
		xs[i] = int64(i * i)
	}
	return xs
}

// coldAlloc is unmarked: the same constructs are fine off the hot path.
func coldAlloc(k string) (map[string]int, error) {
	m := map[string]int{k: 1}
	return m, fmt.Errorf("%d entries", len(m))
}
