// Package vgiw is a from-scratch Go reproduction of the hybrid dataflow/von
// Neumann VGIW GPGPU ("Control Flow Coalescing on a Hybrid Dataflow/von
// Neumann GPGPU", Voitsechov & Etsion, MICRO-48 2015).
//
// It bundles:
//
//   - a kernel IR with a builder API and a textual assembly format (kasm);
//   - the VGIW compiler: live-value allocation, block scheduling, per-block
//     dataflow graphs, place & route onto the MT-CGRF fabric;
//   - three machine simulators — the VGIW processor (control flow
//     coalescing), a Fermi-like SIMT baseline, and the SGMF dataflow
//     baseline — all validated against a golden interpreter;
//   - an energy model and the benchmark/experiment harness that regenerates
//     the paper's tables and figures.
//
// # Quickstart
//
//	b := vgiw.NewKernelBuilder("scale")
//	b.SetParams(1)
//	blk := b.NewBlock("entry")
//	b.SetBlock(blk)
//	addr := b.Add(b.Param(0), b.Tid())
//	v := b.Load(addr, 0)
//	b.Store(addr, 0, b.FMul(v, b.ConstF(2)))
//	b.Ret()
//	kernel := b.MustBuild()
//
//	global := make([]uint32, 1024)
//	res, err := vgiw.RunVGIW(kernel, vgiw.Launch1D(32, 32, 0), global, nil)
//
// See examples/ for complete programs and cmd/vgiw-experiments for the
// paper-reproduction harness.
package vgiw

import (
	"vgiw/internal/bench"
	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kasm"
	"vgiw/internal/kernels"
	"vgiw/internal/kir"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
)

// Kernel construction and IR.
type (
	// Kernel is a compiled-from-source compute kernel (a CFG of basic blocks).
	Kernel = kir.Kernel
	// Builder constructs kernels programmatically.
	Builder = kir.Builder
	// Launch is a CUDA-style grid/block launch configuration.
	Launch = kir.Launch
	// Reg names a 32-bit virtual register.
	Reg = kir.Reg
)

// NewKernelBuilder starts a new kernel.
func NewKernelBuilder(name string) *Builder { return kir.NewBuilder(name) }

// Launch1D builds a 1-D launch: gridX CTAs of blockX threads.
func Launch1D(gridX, blockX int, params ...uint32) Launch {
	return kir.Launch1D(gridX, blockX, params...)
}

// F32 converts a float32 to its register encoding; AsF32 inverts it.
func F32(v float32) uint32      { return kir.F32(v) }
func AsF32(bits uint32) float32 { return kir.AsF32(bits) }

// ParseKasm parses the textual kernel assembly format.
func ParseKasm(src string) (*Kernel, error) { return kasm.Parse(src) }

// PrintKasm renders a kernel as parseable kasm text.
func PrintKasm(k *Kernel) string { return kasm.Print(k) }

// Machine configurations and results.
type (
	// VGIWConfig assembles a VGIW processor (Table 1 defaults).
	VGIWConfig = core.Config
	// VGIWResult aggregates a VGIW execution (cycles, reconfigurations,
	// LVC/CVT traffic, per-block runs).
	VGIWResult = core.Result
	// SIMTConfig sizes the Fermi-like SM baseline.
	SIMTConfig = simt.Config
	// SIMTResult aggregates a SIMT execution (cycles, warp instructions,
	// register-file traffic, divergence counters).
	SIMTResult = simt.Result
	// SGMFConfig assembles the SGMF dataflow baseline.
	SGMFConfig = sgmf.Config
	// SGMFResult aggregates an SGMF execution.
	SGMFResult = sgmf.Result
)

// DefaultVGIWConfig returns the paper's Table 1 machine.
func DefaultVGIWConfig() VGIWConfig { return core.DefaultConfig() }

// DefaultSIMTConfig returns the GTX480-class SM baseline.
func DefaultSIMTConfig() SIMTConfig { return simt.DefaultConfig() }

// DefaultSGMFConfig returns the SGMF core (same fabric as VGIW).
func DefaultSGMFConfig() SGMFConfig { return sgmf.DefaultConfig() }

// RunVGIW compiles (with fabric-fitting block splitting) and executes a
// kernel launch on the VGIW machine, mutating global memory in place. A nil
// cfg uses the Table 1 default.
func RunVGIW(k *Kernel, launch Launch, global []uint32, cfg *VGIWConfig) (*VGIWResult, error) {
	c := core.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	m, err := core.NewMachine(c)
	if err != nil {
		return nil, err
	}
	return m.RunKernel(k, launch, global)
}

// RunSIMT executes a kernel launch on the Fermi-like baseline.
func RunSIMT(k *Kernel, launch Launch, global []uint32, cfg *SIMTConfig) (*SIMTResult, error) {
	c := simt.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	ck, err := compile.Compile(k)
	if err != nil {
		return nil, err
	}
	return simt.NewMachine(c).Run(ck, launch, global)
}

// RunSGMF executes a kernel launch on the SGMF baseline. It fails for
// kernels SGMF cannot map (loops, barriers, or graphs that exceed the
// fabric) — the limitation VGIW removes.
func RunSGMF(k *Kernel, launch Launch, global []uint32, cfg *SGMFConfig) (*SGMFResult, error) {
	c := sgmf.DefaultConfig()
	if cfg != nil {
		c = *cfg
	}
	m, err := sgmf.NewMachine(c)
	if err != nil {
		return nil, err
	}
	return m.Run(k, launch, global)
}

// Interpret runs the golden reference interpreter (functional semantics, no
// timing), mutating global in place.
func Interpret(k *Kernel, launch Launch, global []uint32) error {
	in := &kir.Interp{Kernel: k, Launch: launch, Global: global}
	return in.Run()
}

// Benchmarks and experiments.
type (
	// Workload describes one Rodinia-equivalent benchmark kernel.
	Workload = kernels.Spec
	// WorkloadInstance is a runnable workload (kernel + launch + memory +
	// host-reference validation).
	WorkloadInstance = kernels.Instance
	// ExperimentOptions configures the reproduction harness.
	ExperimentOptions = bench.Options
	// KernelRun holds one benchmark's results on every machine.
	KernelRun = bench.KernelRun
)

// Workloads returns the Table 2 benchmark registry.
func Workloads() []Workload { return kernels.All() }

// WorkloadByName finds a benchmark kernel (e.g. "bfs.kernel1").
func WorkloadByName(name string) (Workload, bool) { return kernels.ByName(name) }

// DefaultExperimentOptions returns the paper's machine configurations.
func DefaultExperimentOptions() ExperimentOptions { return bench.DefaultOptions() }

// RunExperiment executes one benchmark on all machines, validating every
// result against the host reference.
func RunExperiment(w Workload, opt ExperimentOptions) (*KernelRun, error) {
	return bench.RunOne(w, opt)
}

// RunAllExperiments executes the full benchmark registry.
func RunAllExperiments(opt ExperimentOptions) ([]*KernelRun, error) {
	return bench.RunAll(opt)
}
