package vgiw

import (
	"fmt"
	"testing"
)

// crosscheck_test generates randomized (but deterministic) kernels — random
// arithmetic DAGs, data-dependent branches, bounded loops, loads, guarded
// per-thread stores and shared-memory round-trips — and requires the VGIW
// machine, the SIMT baseline and (when mappable) SGMF to reproduce the
// golden interpreter's memory image bit for bit. It is the repository's
// differential fuzzer: every simulator shares kir.Eval for arithmetic, so
// any divergence indicates a control-flow, memory-ordering, live-value or
// coalescing bug in one of the machines.

// xorshift is the deterministic PRNG for kernel generation.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}
func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

const (
	fuzzN       = 256 // elements in each of in[] / out[]
	fuzzThreads = 256
)

// genKernel builds a random kernel reading in[0:N] and writing out[tid].
func genKernel(seed uint64) *Kernel {
	rng := xorshift(seed | 1)
	b := NewKernelBuilder(fmt.Sprintf("fuzz%d", seed))
	b.SetParams(2) // inBase, outBase
	b.SetShared(64)

	entry := b.NewBlock("entry")
	b.SetBlock(entry)

	// A pool of defined values to draw operands from.
	pool := []Reg{b.Tid(), b.Const(int32(rng.intn(64)) - 16), b.ConstF(float32(rng.intn(8)) * 0.5)}
	pick := func() Reg { return pool[rng.intn(len(pool))] }

	// emitOps appends 1..n random instructions to the current block.
	emitOps := func(n int) {
		for i := 0; i < 1+rng.intn(n); i++ {
			var v Reg
			switch rng.intn(10) {
			case 0:
				// Bounded load: in[(x & (N-1))].
				idx := b.And(pick(), b.Const(fuzzN-1))
				v = b.Load(b.Add(b.Param(0), idx), 0)
			case 1:
				v = b.Add(pick(), pick())
			case 2:
				v = b.Sub(pick(), pick())
			case 3:
				v = b.Mul(pick(), pick())
			case 4:
				v = b.FAdd(pick(), pick())
			case 5:
				v = b.FMul(pick(), pick())
			case 6:
				v = b.Xor(pick(), pick())
			case 7:
				v = b.Select(b.SetLT(pick(), pick()), pick(), pick())
			case 8:
				v = b.Div(pick(), pick()) // saturating semantics: safe
			default:
				v = b.ShrL(pick(), b.Const(int32(rng.intn(8))))
			}
			pool = append(pool, v)
		}
	}

	emitOps(6)

	// Optionally a diamond (data-dependent branch).
	if rng.intn(2) == 0 {
		then := b.NewBlock("then")
		els := b.NewBlock("else")
		merge := b.NewBlock("merge")
		cond := b.SetLT(pick(), pick())
		carrier := b.Mov(pick())
		b.Branch(cond, then, els)

		b.SetBlock(then)
		emitOps(4)
		b.MovTo(carrier, pool[len(pool)-1])
		b.Jump(merge)

		b.SetBlock(els)
		emitOps(4)
		b.MovTo(carrier, pool[len(pool)-1])
		b.Jump(merge)

		b.SetBlock(merge)
		pool = append(pool, carrier)
	}

	// Optionally a bounded data-dependent loop: iterate (tid & 7) + 1 times.
	if rng.intn(2) == 0 {
		loop := b.NewBlock("loop")
		after := b.NewBlock("after")
		bound := b.Add(b.And(b.Tid(), b.Const(7)), b.Const(1))
		i := b.Mov(b.Const(0))
		acc := b.Mov(pick())
		b.Jump(loop)

		b.SetBlock(loop)
		step := b.Add(acc, b.Xor(i, pick()))
		b.MovTo(acc, step)
		i1 := b.AddI(i, 1)
		b.MovTo(i, i1)
		b.Branch(b.SetLT(i1, bound), loop, after)

		b.SetBlock(after)
		pool = append(pool, acc)
	}

	// Optionally a race-free shared-memory round trip (per-thread slot).
	if rng.intn(2) == 0 {
		slot := b.And(b.TidX(), b.Const(63))
		b.StoreSh(slot, 0, pool[len(pool)-1])
		pool = append(pool, b.LoadSh(slot, 0))
	}

	// Final store: out[tid] = mix of the pool, sometimes guarded.
	finish := func() {
		result := b.Xor(pick(), pool[len(pool)-1])
		b.Store(b.Add(b.Param(1), b.Tid()), 0, result)
	}
	if rng.intn(3) == 0 {
		body := b.NewBlock("guarded")
		exit := b.NewBlock("exit")
		b.Branch(b.SetLT(b.And(b.Tid(), b.Const(3)), b.Const(2)), body, exit)
		b.SetBlock(body)
		finish()
		b.Jump(exit)
		b.SetBlock(exit)
		b.Ret()
	} else {
		finish()
		b.Ret()
	}
	return b.MustBuild()
}

func fuzzInput(seed uint64) []uint32 {
	rng := xorshift(seed ^ 0xDEADBEEF)
	g := make([]uint32, 2*fuzzN)
	for i := 0; i < fuzzN; i++ {
		if rng.intn(2) == 0 {
			g[i] = uint32(rng.next())
		} else {
			g[i] = F32(float32(int32(rng.next()%64) - 32))
		}
	}
	return g
}

func TestCrossCheckMachines(t *testing.T) {
	const kernelsToTry = 60
	launch := Launch1D(fuzzThreads/32, 32, 0, fuzzN)
	sgmfTried := 0
	for seed := uint64(1); seed <= kernelsToTry; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref := fuzzInput(seed)
			if err := Interpret(genKernel(seed), launch, ref); err != nil {
				t.Fatalf("interp: %v", err)
			}

			got := fuzzInput(seed)
			if _, err := RunVGIW(genKernel(seed), launch, got, nil); err != nil {
				t.Fatalf("vgiw: %v", err)
			}
			diffMem(t, "vgiw", got, ref)

			got = fuzzInput(seed)
			if _, err := RunSIMT(genKernel(seed), launch, got, nil); err != nil {
				t.Fatalf("simt: %v", err)
			}
			diffMem(t, "simt", got, ref)

			got = fuzzInput(seed)
			if _, err := RunSGMF(genKernel(seed), launch, got, nil); err == nil {
				diffMem(t, "sgmf", got, ref)
				sgmfTried++
			}
		})
	}
	if sgmfTried == 0 {
		t.Error("no generated kernel was SGMF-mappable; generator too loopy")
	}
}

func diffMem(t *testing.T, arch string, got, want []uint32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: mem[%d] = %#x, want %#x", arch, i, got[i], want[i])
		}
	}
}

// The interpreter itself is cross-checked against per-thread sequential
// evaluation of loop-free kernels via kir's own Eval — here we only verify
// determinism: running the same seed twice gives identical results.
func TestCrossCheckDeterminism(t *testing.T) {
	launch := Launch1D(fuzzThreads/32, 32, 0, fuzzN)
	for seed := uint64(1); seed <= 10; seed++ {
		a := fuzzInput(seed)
		b2 := fuzzInput(seed)
		if _, err := RunVGIW(genKernel(seed), launch, a, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := RunVGIW(genKernel(seed), launch, b2, nil); err != nil {
			t.Fatal(err)
		}
		diffMem(t, "determinism", a, b2)
	}
}

// TestCrossCheckKasmRoundTrip pushes every generated kernel through the
// textual assembly format and requires identical execution.
func TestCrossCheckKasmRoundTrip(t *testing.T) {
	launch := Launch1D(fuzzThreads/32, 32, 0, fuzzN)
	for seed := uint64(1); seed <= 25; seed++ {
		text := PrintKasm(genKernel(seed))
		k2, err := ParseKasm(text)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, text)
		}
		ref := fuzzInput(seed)
		if err := Interpret(genKernel(seed), launch, ref); err != nil {
			t.Fatal(err)
		}
		got := fuzzInput(seed)
		if err := Interpret(k2, launch, got); err != nil {
			t.Fatalf("seed %d: run after round trip: %v", seed, err)
		}
		diffMem(t, "kasm", got, ref)
	}
}

// TestCrossCheckGuardedKernelsDiverge sanity-checks that the generator
// actually produces control-flow variety (otherwise the fuzz proves little).
func TestCrossCheckGeneratorVariety(t *testing.T) {
	branchy, loopy := 0, 0
	for seed := uint64(1); seed <= 60; seed++ {
		k := genKernel(seed)
		if len(k.Blocks) > 1 {
			branchy++
		}
		if k.HasLoops() {
			loopy++
		}
	}
	if branchy < 20 {
		t.Errorf("only %d/60 kernels have control flow", branchy)
	}
	if loopy < 10 {
		t.Errorf("only %d/60 kernels have loops", loopy)
	}
}
