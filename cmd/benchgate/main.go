// Command benchgate is the repo's metric regression gate: it compares a
// current metric series against a checked-in baseline under per-metric
// tolerance rules and exits non-zero on regression, so `make check` fails
// when a change moves the simulated numbers.
//
// Modes:
//
//	benchgate -validate FILE...
//	    Parse and validate each baseline (schema, required fields, monotone
//	    dates for trajectories). The schema-hygiene half of the gate.
//
//	benchgate -baseline BENCH_trace.json -run
//	    Re-run the benchmark suite at the baseline snapshot's scale — the
//	    exact path `vgiw-experiments -metrics` records — and compare the
//	    resulting vgiw-metrics/v1 series against the baseline.
//
//	benchgate -baseline OLD -current NEW
//	    Compare two baseline files offline (both vgiw-metrics/v1 snapshots,
//	    or both vgiw-bench/v1 trajectories, compared by latest ns/op).
//
// The default tolerance is 0 — exact match — which the simulators earn by
// being deterministic: equal specs produce byte-identical metrics. Loosen
// per metric with repeatable -tol 'glob=frac' rules (first match wins) or
// globally with -tolerance. -update rewrites the baseline from the current
// series instead of failing.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"vgiw/internal/bench"
	"vgiw/internal/trace"
)

// tolRule is one -tol glob=frac override; the first matching rule wins.
type tolRule struct {
	pattern string
	frac    float64
}

type tolRules []tolRule

func (t *tolRules) String() string { return fmt.Sprint(*t) }

func (t *tolRules) Set(s string) error {
	pat, frac, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want glob=frac, got %q", s)
	}
	f, err := strconv.ParseFloat(frac, 64)
	if err != nil || f < 0 {
		return fmt.Errorf("bad tolerance fraction %q", frac)
	}
	*t = append(*t, tolRule{pattern: pat, frac: f})
	return nil
}

// globMatch matches name against a pattern where '*' matches any run of
// characters — slashes included, unlike path.Match, because metric names
// ("vgiw/cycles") use '/' as an ordinary separator.
func globMatch(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	last := len(parts) - 1
	for _, part := range parts[1:last] {
		i := strings.Index(name, part)
		if i < 0 {
			return false
		}
		name = name[i+len(part):]
	}
	return strings.HasSuffix(name, parts[last])
}

// tolFor resolves the tolerance fraction for a metric name.
func tolFor(name string, global float64, rules tolRules) float64 {
	for _, r := range rules {
		if globMatch(r.pattern, name) {
			return r.frac
		}
	}
	return global
}

// compareSeries checks cur against base. A metric missing from cur, or
// moved beyond its tolerance, is a failure; a metric only in cur is a
// warning (new metrics are growth, not regression). Output is name-sorted.
func compareSeries(base, cur map[string]float64, global float64, rules tolRules) (fails, warns []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bv := base[name]
		cv, ok := cur[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing (baseline %g)", name, bv))
			continue
		}
		tol := tolFor(name, global, rules)
		diff := cv - bv
		if diff < 0 {
			diff = -diff
		}
		limit := tol * bv
		if limit < 0 {
			limit = -limit
		}
		if diff > limit {
			fails = append(fails, fmt.Sprintf("%s: %g, baseline %g (Δ %+g, tolerance %g)", name, cv, bv, cv-bv, limit))
		}
	}
	extra := make([]string, 0)
	for name := range cur {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		warns = append(warns, fmt.Sprintf("%s: new metric (%g), not in baseline", name, cur[name]))
	}
	return fails, warns
}

// runCurrentSeries reproduces the baseline snapshot's series by running the
// full suite at its scale, exactly as `vgiw-experiments -metrics` does.
func runCurrentSeries(scale int) (map[string]float64, *trace.Registry, error) {
	opt := bench.DefaultOptions()
	opt.Scale = scale
	opt.Cache = bench.NewArtifactCache()
	suite, err := bench.RunSuite(opt)
	if err != nil {
		return nil, nil, err
	}
	series := make(map[string]float64, len(suite.Metrics.Names()))
	for name, v := range suite.Metrics.Flat() {
		series[name] = float64(v)
	}
	return series, suite.Metrics, nil
}

func main() {
	var (
		validate  = flag.Bool("validate", false, "validate baseline files (args) and exit")
		baseline  = flag.String("baseline", "", "baseline file to gate against")
		current   = flag.String("current", "", "current series file to compare (offline mode)")
		run       = flag.Bool("run", false, "produce the current series by running the suite at the baseline's scale")
		tolerance = flag.Float64("tolerance", 0, "global tolerance as a fraction of the baseline value (0 = exact)")
		update    = flag.Bool("update", false, "rewrite the baseline from the current series instead of failing")
		rules     tolRules
	)
	flag.Var(&rules, "tol", "per-metric tolerance override, glob=frac (repeatable; first match wins)")
	flag.Parse()

	switch {
	case *validate:
		os.Exit(validateFiles(flag.Args()))
	case *baseline == "":
		fmt.Fprintln(os.Stderr, "benchgate: need -validate FILE... or -baseline FILE")
		os.Exit(2)
	}

	base, err := bench.LoadBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if err := base.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", *baseline, err)
		os.Exit(1)
	}

	var curSeries map[string]float64
	var curReg *trace.Registry
	switch {
	case *run:
		if base.Kind() != "metrics" {
			fmt.Fprintf(os.Stderr, "benchgate: -run gates metric snapshots; %s is a %s baseline\n", *baseline, base.Kind())
			os.Exit(2)
		}
		scale := base.Snapshot.Scale
		if scale <= 0 {
			scale = 1
		}
		fmt.Fprintf(os.Stderr, "benchgate: running suite at scale %d against %s (%d metrics)...\n",
			scale, *baseline, len(base.Series()))
		curSeries, curReg, err = runCurrentSeries(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: suite: %v\n", err)
			os.Exit(2)
		}
	case *current != "":
		cur, err := bench.LoadBaseline(*current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if cur.Kind() != base.Kind() {
			fmt.Fprintf(os.Stderr, "benchgate: cannot compare %s baseline to %s baseline\n", base.Kind(), cur.Kind())
			os.Exit(2)
		}
		curSeries = cur.Series()
	default:
		fmt.Fprintln(os.Stderr, "benchgate: need -run or -current FILE alongside -baseline")
		os.Exit(2)
	}

	fails, warns := compareSeries(base.Series(), curSeries, *tolerance, rules)
	for _, wmsg := range warns {
		fmt.Fprintf(os.Stderr, "benchgate: note: %s\n", wmsg)
	}
	if len(fails) > 0 && *update {
		if curReg == nil {
			fmt.Fprintln(os.Stderr, "benchgate: -update needs -run (the current series must be freshly produced)")
			os.Exit(2)
		}
		f, err := os.Create(*baseline)
		if err == nil {
			err = curReg.WriteSnapshot(f, base.Snapshot.Scale)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: update: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchgate: rewrote %s (%d metrics; %d had moved)\n", *baseline, len(curSeries), len(fails))
		return
	}
	if len(fails) > 0 {
		for _, fmsg := range fails {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s\n", fmsg)
		}
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed beyond tolerance against %s\n", len(fails), *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: ok — %d metrics within tolerance of %s\n", len(base.Series()), *baseline)
}

// validateFiles checks each file parses under a known baseline schema and
// passes structural validation; returns the process exit code.
func validateFiles(files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -validate needs baseline files as arguments")
		return 2
	}
	code := 0
	for _, name := range files {
		b, err := bench.LoadBaseline(name)
		if err == nil {
			err = b.Validate()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %v\n", name, err)
			code = 1
			continue
		}
		fmt.Fprintf(os.Stderr, "benchgate: ok %s (%s, %d series)\n", name, b.Kind(), len(b.Series()))
	}
	return code
}
