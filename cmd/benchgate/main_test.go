package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareSeriesExact(t *testing.T) {
	base := map[string]float64{"a": 10, "b": 20, "c": 0}
	cur := map[string]float64{"a": 10, "b": 20, "c": 0}
	fails, warns := compareSeries(base, cur, 0, nil)
	if len(fails) != 0 || len(warns) != 0 {
		t.Fatalf("identical series: fails=%v warns=%v", fails, warns)
	}
}

func TestCompareSeriesRegressionAndMissing(t *testing.T) {
	base := map[string]float64{"a": 10, "b": 20}
	cur := map[string]float64{"a": 11} // a moved, b missing
	fails, _ := compareSeries(base, cur, 0, nil)
	if len(fails) != 2 {
		t.Fatalf("fails = %v, want a-moved and b-missing", fails)
	}
	// Name-sorted: "a" first.
	if !strings.Contains(fails[0], "a:") || !strings.Contains(fails[1], "b: missing") {
		t.Errorf("fails = %v", fails)
	}
}

func TestCompareSeriesTolerance(t *testing.T) {
	base := map[string]float64{"vgiw/cycles": 100, "vgiw/ops": 50}
	cur := map[string]float64{"vgiw/cycles": 104, "vgiw/ops": 50}
	if fails, _ := compareSeries(base, cur, 0.05, nil); len(fails) != 0 {
		t.Errorf("4%% drift under 5%% global tolerance failed: %v", fails)
	}
	if fails, _ := compareSeries(base, cur, 0.01, nil); len(fails) != 1 {
		t.Errorf("4%% drift over 1%% tolerance passed")
	}
	// Per-metric rule overrides the (tight) global.
	rules := tolRules{{pattern: "vgiw/cyc*", frac: 0.10}}
	if fails, _ := compareSeries(base, cur, 0, rules); len(fails) != 0 {
		t.Errorf("per-metric rule not applied: %v", fails)
	}
}

func TestCompareSeriesNewMetricWarnsOnly(t *testing.T) {
	base := map[string]float64{"a": 1}
	cur := map[string]float64{"a": 1, "z": 9}
	fails, warns := compareSeries(base, cur, 0, nil)
	if len(fails) != 0 {
		t.Errorf("new metric treated as failure: %v", fails)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "z") {
		t.Errorf("warns = %v", warns)
	}
}

func TestTolRulesFirstMatchWins(t *testing.T) {
	var rules tolRules
	if err := rules.Set("vgiw/*=0.5"); err != nil {
		t.Fatal(err)
	}
	if err := rules.Set("*=0.1"); err != nil {
		t.Fatal(err)
	}
	if got := tolFor("vgiw/cycles", 0, rules); got != 0.5 {
		t.Errorf("tolFor(vgiw/cycles) = %g, want first rule's 0.5", got)
	}
	if got := tolFor("mem/hits", 0, rules); got != 0.1 {
		t.Errorf("tolFor(mem/hits) = %g, want 0.1", got)
	}
	if got := tolFor("anything", 0.2, nil); got != 0.2 {
		t.Errorf("no rules: tolFor = %g, want global 0.2", got)
	}
	if err := rules.Set("no-equals-sign"); err == nil {
		t.Error("malformed rule accepted")
	}
	if err := rules.Set("a=notafloat"); err == nil {
		t.Error("malformed fraction accepted")
	}
}

func TestValidateFiles(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"schema":"vgiw-metrics/v1","scale":2,"metrics":{"a":1}}`), 0o644)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"nonsense/v9"}`), 0o644)

	if code := validateFiles([]string{good}); code != 0 {
		t.Errorf("valid file: exit %d", code)
	}
	if code := validateFiles([]string{good, bad}); code != 1 {
		t.Errorf("invalid file: exit %d, want 1", code)
	}
	if code := validateFiles(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
}
