package main

import (
	"io"
	"strings"
	"testing"
)

func parse(t *testing.T, stream string) []entry {
	t.Helper()
	return parseStream(strings.NewReader(stream), io.Discard)
}

// TestStripUniformSuffix pins the GOMAXPROCS-suffix heuristic: a uniform
// numeric suffix across the stream is procs decoration and comes off; mixed
// trailing numbers are real sub-benchmark labels (bank counts, conflict
// rates) and must survive — the regression was GOMAXPROCS=1 machines, where
// go test appends no suffix and "banks-32" was silently collapsed into the
// "banks" series.
func TestStripUniformSuffix(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stream string
		want   []string
	}{
		{
			"uniform procs suffix stripped",
			"BenchmarkEngineHotPath/no-sink-8 100 98000 ns/op\n" +
				"BenchmarkEngineHotPath/vec-8 100 55000 ns/op\n",
			[]string{"BenchmarkEngineHotPath/no-sink", "BenchmarkEngineHotPath/vec"},
		},
		{
			"mixed digit labels kept (GOMAXPROCS=1)",
			"BenchmarkMemAccessVector/banks-32 100 1000 ns/op\n" +
				"BenchmarkMemAccessVector/banks-8 100 1200 ns/op\n",
			[]string{"BenchmarkMemAccessVector/banks-32", "BenchmarkMemAccessVector/banks-8"},
		},
		{
			"digit labels with procs suffix: only procs stripped",
			"BenchmarkMemAccessVector/banks-32-4 100 1000 ns/op\n" +
				"BenchmarkMemAccessVector/banks-8-4 100 1200 ns/op\n",
			[]string{"BenchmarkMemAccessVector/banks-32", "BenchmarkMemAccessVector/banks-8"},
		},
		{
			"no suffix at all untouched",
			"BenchmarkEngineFast 100 9000 ns/op\n",
			[]string{"BenchmarkEngineFast"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results := parse(t, tc.stream)
			stripUniformSuffix(results)
			if len(results) != len(tc.want) {
				t.Fatalf("parsed %d results, want %d", len(results), len(tc.want))
			}
			for i, w := range tc.want {
				if results[i].Bench != w {
					t.Errorf("result %d: name %q, want %q", i, results[i].Bench, w)
				}
			}
		})
	}
}

// TestLatestFiltersByName pins the -check lookup: a new benchmark series must
// be compared against its own history, never an unrelated series' last entry.
func TestLatestFiltersByName(t *testing.T) {
	traj := trajectory{Entries: []entry{
		{Bench: "BenchmarkA", NsPerOp: 100},
		{Bench: "BenchmarkB", NsPerOp: 900},
		{Bench: "BenchmarkA", NsPerOp: 90},
	}}
	got, ok := latest(traj, "BenchmarkA")
	if !ok || got.NsPerOp != 90 {
		t.Fatalf("latest(BenchmarkA) = %+v, %v; want ns=90", got, ok)
	}
	if _, ok := latest(traj, "BenchmarkC"); ok {
		t.Fatal("latest(BenchmarkC) found an entry, want none")
	}
}

func TestCollapseMin(t *testing.T) {
	out := collapseMin([]entry{
		{Bench: "A", NsPerOp: 120},
		{Bench: "B", NsPerOp: 300},
		{Bench: "A", NsPerOp: 100},
	})
	if len(out) != 2 || out[0].Bench != "A" || out[0].NsPerOp != 100 || out[1].NsPerOp != 300 {
		t.Fatalf("collapseMin = %+v", out)
	}
}

// TestRecordReplacesInPlace pins -record's idempotency through the file
// round-trip: re-recording at the same commit rewrites that commit's entry
// where it sits instead of appending a duplicate, while a new commit appends.
func TestRecordReplacesInPlace(t *testing.T) {
	path := t.TempDir() + "/traj.json"
	first := []entry{{Commit: "aaa111", Date: "2026-08-01", Bench: "BenchmarkA", NsPerOp: 120}}
	traj, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	traj.Record(first)
	if err := save(path, traj); err != nil {
		t.Fatal(err)
	}

	traj, err = load(path)
	if err != nil {
		t.Fatal(err)
	}
	traj.Record([]entry{
		{Commit: "aaa111", Date: "2026-08-01", Bench: "BenchmarkA", NsPerOp: 100}, // same key: replace
		{Commit: "bbb222", Date: "2026-08-02", Bench: "BenchmarkA", NsPerOp: 95},  // new commit: append
	})
	if err := save(path, traj); err != nil {
		t.Fatal(err)
	}

	traj, err = load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (replace-in-place, then append): %+v", len(traj.Entries), traj.Entries)
	}
	if traj.Entries[0].NsPerOp != 100 || traj.Entries[0].Commit != "aaa111" {
		t.Errorf("entry 0 = %+v, want the replaced aaa111 point", traj.Entries[0])
	}
	if got, ok := latest(traj, "BenchmarkA"); !ok || got.Commit != "bbb222" {
		t.Errorf("latest = %+v, want the bbb222 point", got)
	}
}
