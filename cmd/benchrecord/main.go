// benchrecord filters `go test -bench` output into a benchmark trajectory
// file, so engine-performance history rides along with the repo the same way
// the metrics schema does (BENCH_trace.json).
//
// It reads benchmark output on stdin and echoes it unchanged to stdout, so it
// sits at the end of a pipe without hiding anything:
//
//	go test -run '^$' -bench BenchmarkEngine -benchtime 100x ./internal/engine/ |
//	    go run ./cmd/benchrecord -file BENCH_engine.json -threads 512 -check
//
// With -check it compares each parsed benchmark against the most recent
// recorded entry of the same name and prints a warning to stderr when ns/op
// regressed by more than -tolerance (default 10%). The check is advisory —
// the exit status stays 0 — because wall-clock benchmarks on shared machines
// are too noisy for a hard gate; the hard gates are the zero-alloc tests.
//
// With -record it folds one entry per parsed benchmark into the file:
//
//	{"commit": "<git short hash>", "date": "YYYY-MM-DD",
//	 "bench": "BenchmarkEngineVector/batched", "ns_per_op": 103135,
//	 "threads_per_sec": 4965000}
//
// threads_per_sec is derived as threads * 1e9 / ns_per_op, with -threads
// naming the per-iteration thread count of the benchmark scenario (512 for
// the engine hot path). Recording is idempotent on the (commit, bench) key:
// re-running at the same commit replaces that commit's entries in place
// instead of appending duplicates, so the file stays one point per
// (commit, bench), oldest first.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"vgiw/internal/bench"
)

// The wire types live in internal/bench (baseline.go), shared with the
// benchgate regression gate; the aliases keep this file's parsing code short.
type (
	entry      = bench.TrajectoryEntry
	trajectory = bench.Trajectory
)

func main() {
	file := flag.String("file", "BENCH_engine.json", "trajectory file to read/append")
	threads := flag.Int("threads", 0, "threads per benchmark iteration (0: omit threads/sec)")
	record := flag.Bool("record", false, "append parsed results to the trajectory file")
	check := flag.Bool("check", false, "warn (exit 0) when ns/op regresses past -tolerance vs the last recorded entry")
	tolerance := flag.Float64("tolerance", 0.10, "relative regression threshold for -check")
	note := flag.String("note", "", "free-form note attached to recorded entries")
	flag.Parse()

	results := parseStream(os.Stdin, os.Stdout)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchrecord: no benchmark lines on stdin")
		return
	}
	stripUniformSuffix(results)

	// Repeated runs of one benchmark (go test -count N) collapse to the
	// minimum ns/op: the run least disturbed by machine noise.
	results = collapseMin(results)

	traj, err := load(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}

	if *check {
		for _, r := range results {
			last, ok := latest(traj, r.Bench)
			if !ok {
				continue
			}
			if r.NsPerOp > last.NsPerOp*(1+*tolerance) {
				fmt.Fprintf(os.Stderr,
					"benchrecord: WARNING: %s regressed %.1f%%: %.0f ns/op vs %.0f recorded at %s (%s)\n",
					r.Bench, 100*(r.NsPerOp/last.NsPerOp-1), r.NsPerOp, last.NsPerOp, last.Commit, last.Date)
			}
		}
	}

	if *record {
		commit := gitCommit()
		date := time.Now().UTC().Format("2006-01-02")
		for i := range results {
			results[i].Commit = commit
			results[i].Date = date
			results[i].Note = *note
			if *threads > 0 {
				results[i].ThreadsPerSec = math.Round(float64(*threads) * 1e9 / results[i].NsPerOp)
			}
		}
		traj.Record(results)
		if err := save(*file, traj); err != nil {
			fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchrecord: recorded %d result(s) to %s at %s\n", len(results), *file, commit)
	}
}

// parseStream echoes stdin to out while collecting benchmark result lines of
// the standard form "BenchmarkName-8   100   12345 ns/op [...]". Names are
// kept verbatim here; stripUniformSuffix handles the GOMAXPROCS suffix.
func parseStream(in io.Reader, out io.Writer) []entry {
	var results []entry
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(out)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		results = append(results, entry{Bench: f[0], NsPerOp: ns})
	}
	return results
}

// stripUniformSuffix removes the GOMAXPROCS "-N" suffix from benchmark names,
// so trajectory names stay stable across machines — but only when every
// benchmark in the stream carries the same numeric suffix, which is the
// signature of go test's procs decoration. On GOMAXPROCS=1 machines go test
// appends no suffix at all, and sub-benchmark labels that legitimately end in
// digits ("banks-32") would otherwise be corrupted into another series'
// name; a stream whose trailing numbers differ can only be such labels, and
// is left untouched. (The one remaining ambiguity — a stream where every
// label coincidentally ends in the same number and GOMAXPROCS is 1 — is
// avoided by benchmarking more than one series per run, as the Makefile
// targets do.)
func stripUniformSuffix(results []entry) {
	sfx := ""
	for i, r := range results {
		j := strings.LastIndexByte(r.Bench, '-')
		if j <= 0 {
			return
		}
		d := r.Bench[j+1:]
		if _, err := strconv.Atoi(d); err != nil {
			return
		}
		if i == 0 {
			sfx = d
		} else if d != sfx {
			return
		}
	}
	for i := range results {
		results[i].Bench = results[i].Bench[:strings.LastIndexByte(results[i].Bench, '-')]
	}
}

// collapseMin keeps one result per benchmark name — the fastest — preserving
// first-seen order.
func collapseMin(results []entry) []entry {
	idx := make(map[string]int)
	var out []entry
	for _, r := range results {
		if i, ok := idx[r.Bench]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i].NsPerOp = r.NsPerOp
			}
			continue
		}
		idx[r.Bench] = len(out)
		out = append(out, r)
	}
	return out
}

func load(path string) (trajectory, error) {
	var t trajectory
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return t, nil
	}
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("%s: %v", path, err)
	}
	return t, nil
}

func save(path string, t trajectory) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func latest(t trajectory, bench string) (entry, bool) {
	for i := len(t.Entries) - 1; i >= 0; i-- {
		if t.Entries[i].Bench == bench {
			return t.Entries[i], true
		}
	}
	return entry{}, false
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
