// vgiwsim runs one benchmark kernel on one architecture and prints its
// execution statistics.
//
// Usage:
//
//	vgiwsim -list                          # available kernels
//	vgiwsim -kernel bfs.kernel1            # run on VGIW
//	vgiwsim -kernel nn.euclid -arch simt   # the Fermi-like baseline
//	vgiwsim -kernel nn.euclid -arch sgmf   # the SGMF baseline
//	vgiwsim -kernel hotspot.kernel -scale 4 -blocks
package main

import (
	"flag"
	"fmt"
	"os"

	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/kir"
	"vgiw/internal/power"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available kernels and exit")
		name   = flag.String("kernel", "", "kernel to run (see -list)")
		arch   = flag.String("arch", "vgiw", "architecture: vgiw, simt, or sgmf")
		scale  = flag.Int("scale", 1, "workload scale factor")
		blocks = flag.Bool("blocks", false, "print per-block scheduling detail (vgiw only)")
		grid   = flag.Bool("grid", false, "print the fabric occupancy heatmap (vgiw only)")
		trace  = flag.Bool("trace", false, "print a timeline of block schedules (vgiw only)")
	)
	flag.Parse()

	if *list {
		for _, s := range kernels.All() {
			sgmfTag := ""
			if s.SGMF {
				sgmfTag = " [sgmf-mappable]"
			}
			fmt.Printf("%-26s %-8s %s%s\n", s.Name, s.Class, s.Description, sgmfTag)
		}
		return
	}
	spec, ok := kernels.ByName(*name)
	if !ok {
		fail("unknown kernel %q (use -list)", *name)
	}
	inst, err := spec.Build(*scale)
	if err != nil {
		fail("build: %v", err)
	}
	fmt.Printf("kernel %s: %d threads, %d blocks, %d instructions\n",
		spec.Name, inst.Launch.Threads(), len(inst.Kernel.Blocks), inst.Kernel.NumInstrs())

	switch *arch {
	case "vgiw":
		runVGIW(inst, *blocks, *grid, *trace)
	case "simt":
		runSIMT(inst)
	case "sgmf":
		runSGMF(inst)
	default:
		fail("unknown architecture %q", *arch)
	}

	if err := inst.Check(inst.Global); err != nil {
		fail("OUTPUT VALIDATION FAILED: %v", err)
	}
	fmt.Println("output validated against the host reference.")
}

func runVGIW(inst *kernels.Instance, blocks, grid, trace bool) {
	cfg := core.DefaultConfig()
	if grid {
		cfg.Engine.Profile = true
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		fail("%v", err)
	}
	ck, err := m.Compile(inst.Kernel)
	if err != nil {
		fail("compile: %v", err)
	}
	res, err := m.Run(ck, inst.Launch, inst.Global)
	if err != nil {
		fail("run: %v", err)
	}
	e := power.VGIW(res, power.DefaultTable())
	fmt.Printf("VGIW: %d cycles, %d tiles (tile size %d)\n", res.Cycles, res.Tiles, res.TileSize)
	fmt.Printf("  reconfigurations: %d (%.3f%% of runtime)\n", res.Reconfigs, res.ConfigOverhead()*100)
	fmt.Printf("  LVC: %d loads, %d stores (%.1f%% hit rate)\n", res.LVCLoads, res.LVCStores, hitPct(res))
	fmt.Printf("  CVT: %d reads, %d writes\n", res.CVTReads, res.CVTWrites)
	fmt.Printf("  ops by unit class: %v\n", res.Ops)
	fmt.Printf("  energy: %.2f uJ (core %.2f, L1 %.2f, L2 %.2f, MC %.2f, DRAM %.2f)\n",
		e.SystemLevel()/1e6, e.Core/1e6, e.L1/1e6, e.L2/1e6, e.MC/1e6, e.DRAM/1e6)
	if blocks {
		fmt.Println("  block schedule (block, threads, cycles):")
		for _, br := range res.BlockRuns {
			fmt.Printf("    @%d %-18s %6d threads %8d cycles\n",
				br.Block, ck.Kernel.Blocks[br.Block].Label, br.Threads, br.Cycles)
		}
	}
	if grid {
		printGrid(m, res)
	}
	if trace {
		printTrace(ck, res)
	}
}

// printTrace renders the BBS schedule as a timeline: one bar per scheduled
// vector, positioned by start cycle (the control-flow-coalescing Gantt).
func printTrace(ck *compile.CompiledKernel, res *core.Result) {
	if len(res.BlockRuns) == 0 {
		return
	}
	const width = 72
	scale := float64(width) / float64(res.Cycles)
	fmt.Printf("  schedule timeline (%d cycles across %d chars):\n", res.Cycles, width)
	shown := res.BlockRuns
	const maxRows = 40
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	for _, br := range shown {
		startCol := int(float64(br.Start) * scale)
		barLen := int(float64(br.Cycles)*scale + 0.5)
		if barLen < 1 {
			barLen = 1
		}
		if startCol+barLen > width {
			barLen = width - startCol
		}
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		for i := 0; i < barLen; i++ {
			bar[startCol+i] = '#'
		}
		fmt.Printf("    @%-2d %-14s |%s| %d thr\n",
			br.Block, ck.Kernel.Blocks[br.Block].Label, string(bar), br.Threads)
	}
	if len(res.BlockRuns) > maxRows {
		fmt.Printf("    ... %d more schedules\n", len(res.BlockRuns)-maxRows)
	}
}

// printGrid renders the fabric as a heatmap: one cell per unit, showing the
// unit class and its share of all executed operations.
func printGrid(m *core.Machine, res *core.Result) {
	g := m.Grid()
	issues := make([]uint64, g.NumUnits())
	var total uint64
	for _, br := range res.BlockRuns {
		if br.Stats == nil || br.Stats.UnitIssues == nil {
			continue
		}
		for u, n := range br.Stats.UnitIssues {
			issues[u] += n
			total += n
		}
	}
	if total == 0 {
		return
	}
	var peak uint64
	for _, n := range issues {
		if n > peak {
			peak = n
		}
	}
	cfg := g.Config()
	cells := make([][]string, cfg.Rows)
	for y := range cells {
		cells[y] = make([]string, cfg.Cols)
	}
	letter := map[kir.UnitClass]string{
		kir.ClassALU: "A", kir.ClassSCU: "X", kir.ClassLDST: "M",
		kir.ClassLVU: "V", kir.ClassSJU: "J", kir.ClassCVU: "C",
	}
	for _, u := range g.Units {
		heat := "."
		if peak > 0 && issues[u.ID] > 0 {
			level := int(9 * issues[u.ID] / peak)
			heat = fmt.Sprintf("%d", level)
		}
		cells[u.Y][u.X] = letter[u.Class] + heat
	}
	fmt.Println("  fabric occupancy (A=alu X=scu M=ldst V=lvu J=sju C=cvu; load 0..9, '.' idle):")
	for _, row := range cells {
		fmt.Print("    ")
		for _, c := range row {
			fmt.Printf("%-3s", c)
		}
		fmt.Println()
	}
}

func runSIMT(inst *kernels.Instance) {
	ck, err := compile.Compile(inst.Kernel)
	if err != nil {
		fail("compile: %v", err)
	}
	res, err := simt.NewMachine(simt.DefaultConfig()).Run(ck, inst.Launch, inst.Global)
	if err != nil {
		fail("run: %v", err)
	}
	e := power.SIMT(res, power.DefaultTable())
	fmt.Printf("SIMT (Fermi-like SM): %d cycles\n", res.Cycles)
	fmt.Printf("  warp instructions: %d (%d thread-instructions, %d masked lanes)\n",
		res.WarpInstrs, res.ThreadInstrs, res.MaskedLanes)
	fmt.Printf("  register file: %d reads, %d writes\n", res.RFReads, res.RFWrites)
	fmt.Printf("  divergences: %d, barriers: %d\n", res.Divergences, res.Barriers)
	fmt.Printf("  L1 transactions: %d, shared transactions: %d\n", res.L1Trans, res.ShTrans)
	fmt.Printf("  energy: %.2f uJ (core %.2f)\n", e.SystemLevel()/1e6, e.Core/1e6)
}

func runSGMF(inst *kernels.Instance) {
	m, err := sgmf.NewMachine(sgmf.DefaultConfig())
	if err != nil {
		fail("%v", err)
	}
	res, err := m.Run(inst.Kernel, inst.Launch, inst.Global)
	if err != nil {
		fail("run: %v (SGMF cannot map kernels with loops, barriers, or oversized graphs)", err)
	}
	e := power.SGMF(res, power.DefaultTable())
	fmt.Printf("SGMF: %d cycles\n", res.Cycles)
	fmt.Printf("  whole-kernel graph: %d nodes, %d replicas\n", res.GraphNodes, res.Replicas)
	fmt.Printf("  predicated-off memory ops (divergence waste): %d\n", res.SkippedMemOps)
	fmt.Printf("  energy: %.2f uJ (core %.2f)\n", e.SystemLevel()/1e6, e.Core/1e6)
}

func hitPct(res *core.Result) float64 {
	acc := res.LVCStats.Accesses()
	if acc == 0 {
		return 100
	}
	return 100 * float64(acc-res.LVCStats.Misses()) / float64(acc)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgiwsim: "+format+"\n", args...)
	os.Exit(1)
}
