// vgiwsim runs benchmark kernels on one architecture and prints their
// execution statistics.
//
// Usage:
//
//	vgiwsim -list                          # available kernels
//	vgiwsim -kernel bfs.kernel1            # run on VGIW
//	vgiwsim -kernel nn.euclid -arch simt   # the Fermi-like baseline
//	vgiwsim -kernel nn.euclid -arch sgmf   # the SGMF baseline
//	vgiwsim -kernel hotspot.kernel -scale 4 -blocks
//	vgiwsim -kernel all -parallel 8        # whole registry, 8 workers
//	vgiwsim -kernel bfs.kernel1,nn.euclid  # a comma-separated subset
//	vgiwsim -kernel bfs.kernel2 -trace out.json   # Perfetto-loadable trace
//	vgiwsim -kernel bfs.kernel2 -trace out.json -trace-filter vgiw,cvt
//	vgiwsim -kernel bfs.kernel2 -metrics out.txt  # flat metrics registry
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"vgiw/internal/bench"
	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/kir"
	"vgiw/internal/power"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
	"vgiw/internal/trace"
	"vgiw/internal/version"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available kernels and exit")
		name     = flag.String("kernel", "", "kernel(s) to run: a name, a comma-separated list, or \"all\" (see -list)")
		arch     = flag.String("arch", "vgiw", "architecture: vgiw, simt, or sgmf")
		scale    = flag.Int("scale", 1, "workload scale factor")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent kernel runs when several kernels are given")
		blocks   = flag.Bool("blocks", false, "print per-block scheduling detail (vgiw only)")
		grid     = flag.Bool("grid", false, "print the fabric occupancy heatmap (vgiw only)")
		timeline = flag.Bool("timeline", false, "print a timeline of block schedules (vgiw only)")
		traceOut = flag.String("trace", "", "write a cycle-level Chrome trace-event JSON (Perfetto-loadable) to this file")
		traceCat = flag.String("trace-filter", "", "comma-separated trace categories (vgiw,cvt,lvc,simt,sgmf,engine,mem; default all)")
		metrics  = flag.String("metrics", "", "write the flat metrics registry (one \"name value\" line per metric) to this file")
		noCache  = flag.Bool("no-cache", false, "use the legacy build-per-run path instead of the shared workload artifact (results are identical)")
		fast     = flag.Bool("fast", false, "functional-only engine mode: identical results and op counts, no cycle accounting (vgiw/sgmf; cycle metrics read 0)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (at exit) to this file")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("%v", err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vgiwsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "vgiwsim: %v\n", err)
			}
		}()
	}

	if *list {
		for _, s := range kernels.All() {
			sgmfTag := ""
			if s.SGMF {
				sgmfTag = " [sgmf-mappable]"
			}
			fmt.Printf("%-26s %-8s %s%s\n", s.Name, s.Class, s.Description, sgmfTag)
		}
		return
	}

	specs, err := resolveSpecs(*name)
	if err != nil {
		fail("%v", err)
	}

	rc := runCfg{
		arch: *arch, scale: *scale,
		blocks: *blocks, grid: *grid, timeline: *timeline, noCache: *noCache,
		fast: *fast,
	}
	if *traceOut != "" {
		mask, err := trace.ParseCats(*traceCat)
		if err != nil {
			fail("%v", err)
		}
		rc.sink = trace.NewSink(mask)
	}
	if *metrics != "" {
		rc.reg = trace.NewRegistry()
	}
	finish := func() {
		if rc.sink != nil {
			if err := writeTrace(*traceOut, rc.sink); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "vgiwsim: wrote %d trace events to %s (%d dropped)\n",
				rc.sink.Len(), *traceOut, rc.sink.Dropped())
		}
		if rc.reg != nil {
			if err := writeMetrics(*metrics, rc.reg); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "vgiwsim: wrote %d metrics to %s\n", len(rc.reg.Names()), *metrics)
		}
	}

	if len(specs) == 1 {
		if err := runOne(os.Stdout, specs[0], rc); err != nil {
			fail("%v", err)
		}
		finish()
		return
	}

	// Several kernels: fan the runs across a worker pool, buffering each
	// kernel's report so the output stays in registry order. Each run builds
	// its own instance and machine, so results match a serial sweep.
	outs := make([]bytes.Buffer, len(specs))
	errs := make([]error, len(specs))
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = runOne(&outs[i], specs[i], rc)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()

	failed := 0
	for i := range specs {
		os.Stdout.Write(outs[i].Bytes())
		if errs[i] != nil {
			failed++
			fmt.Fprintf(os.Stderr, "vgiwsim: %s: %v\n", specs[i].Name, errs[i])
		}
		fmt.Println()
	}
	if failed > 0 {
		fail("%d of %d kernels failed", failed, len(specs))
	}
	finish()
}

// runCfg carries the per-run options (shared across worker goroutines; the
// sink and registry are internally locked).
type runCfg struct {
	arch     string
	scale    int
	blocks   bool
	grid     bool
	timeline bool
	noCache  bool
	fast     bool
	sink     *trace.Sink
	reg      *trace.Registry
}

// writeTrace exports the sink as Chrome trace-event JSON.
func writeTrace(path string, s *trace.Sink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the registry as sorted "name value" lines.
func writeMetrics(path string, reg *trace.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	flat := reg.Flat()
	names := make([]string, 0, len(flat))
	for n := range flat {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(f, "%s %d\n", n, flat[n]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// resolveSpecs expands the -kernel argument: a single name, a comma list, or
// "all" for the whole registry.
func resolveSpecs(arg string) ([]kernels.Spec, error) {
	if arg == "all" {
		return kernels.All(), nil
	}
	var specs []kernels.Spec
	for _, n := range strings.Split(arg, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		spec, ok := kernels.ByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (use -list)", n)
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no kernel given (use -list)")
	}
	return specs, nil
}

// runOne builds and runs one kernel on one architecture, writing the report
// to w and validating the output against the host reference. By default the
// kernel and memory image come from a frozen workload artifact (the same
// checkout path the harness cache uses); -no-cache takes the legacy
// build-per-run path. Results are identical either way.
func runOne(w io.Writer, spec kernels.Spec, rc runCfg) error {
	var inst *kernels.Instance
	if rc.noCache {
		built, err := spec.Build(rc.scale)
		if err != nil {
			return fmt.Errorf("build: %w", err)
		}
		inst = built
	} else {
		wl, err := kernels.NewWorkload(spec, rc.scale)
		if err != nil {
			return fmt.Errorf("build: %w", err)
		}
		inst = wl.Instance()
	}
	fmt.Fprintf(w, "kernel %s: %d threads, %d blocks, %d instructions\n",
		spec.Name, inst.Launch.Threads(), len(inst.Kernel.Blocks), inst.Kernel.NumInstrs())

	var err error
	switch rc.arch {
	case "vgiw":
		err = runVGIW(w, inst, rc)
	case "simt":
		err = runSIMT(w, inst, rc)
	case "sgmf":
		err = runSGMF(w, inst, rc)
	default:
		return fmt.Errorf("unknown architecture %q", rc.arch)
	}
	if err != nil {
		return err
	}

	if err := inst.Check(inst.Global); err != nil {
		return fmt.Errorf("OUTPUT VALIDATION FAILED: %w", err)
	}
	fmt.Fprintln(w, "output validated against the host reference.")
	return nil
}

func runVGIW(w io.Writer, inst *kernels.Instance, rc runCfg) error {
	cfg := core.DefaultConfig()
	if rc.grid {
		cfg.Engine.Profile = true
	}
	cfg.Engine.Fast = rc.fast
	cfg.Engine.Trace = rc.sink
	m, err := core.NewMachine(cfg)
	if err != nil {
		return err
	}
	ck, err := m.Compile(inst.Kernel)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	res, err := m.Run(ck, inst.Launch, inst.Global)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if rc.reg != nil {
		bench.FoldVGIW(rc.reg, inst.Kernel.Name, res)
	}
	e := power.VGIW(res, power.DefaultTable())
	fmt.Fprintf(w, "VGIW: %d cycles, %d tiles (tile size %d)\n", res.Cycles, res.Tiles, res.TileSize)
	fmt.Fprintf(w, "  reconfigurations: %d (%.3f%% of runtime)\n", res.Reconfigs, res.ConfigOverhead()*100)
	fmt.Fprintf(w, "  LVC: %d loads, %d stores (%.1f%% hit rate)\n", res.LVCLoads, res.LVCStores, hitPct(res))
	fmt.Fprintf(w, "  CVT: %d reads, %d writes\n", res.CVTReads, res.CVTWrites)
	fmt.Fprintf(w, "  ops by unit class: %v\n", res.Ops)
	fmt.Fprintf(w, "  energy: %.2f uJ (core %.2f, L1 %.2f, L2 %.2f, MC %.2f, DRAM %.2f)\n",
		e.SystemLevel()/1e6, e.Core/1e6, e.L1/1e6, e.L2/1e6, e.MC/1e6, e.DRAM/1e6)
	if rc.blocks {
		fmt.Fprintln(w, "  block schedule (block, threads, cycles):")
		for _, br := range res.BlockRuns {
			fmt.Fprintf(w, "    @%d %-18s %6d threads %8d cycles\n",
				br.Block, ck.Kernel.Blocks[br.Block].Label, br.Threads, br.Cycles)
		}
	}
	if rc.grid {
		printGrid(w, m, res)
	}
	if rc.timeline {
		printTimeline(w, ck, res)
	}
	return nil
}

// printTimeline renders the BBS schedule as a timeline: one bar per scheduled
// vector, positioned by start cycle (the control-flow-coalescing Gantt).
func printTimeline(w io.Writer, ck *compile.CompiledKernel, res *core.Result) {
	if len(res.BlockRuns) == 0 {
		return
	}
	const width = 72
	scale := float64(width) / float64(res.Cycles)
	fmt.Fprintf(w, "  schedule timeline (%d cycles across %d chars):\n", res.Cycles, width)
	shown := res.BlockRuns
	const maxRows = 40
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	for _, br := range shown {
		startCol := int(float64(br.Start) * scale)
		barLen := int(float64(br.Cycles)*scale + 0.5)
		if barLen < 1 {
			barLen = 1
		}
		if startCol+barLen > width {
			barLen = width - startCol
		}
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		for i := 0; i < barLen; i++ {
			bar[startCol+i] = '#'
		}
		fmt.Fprintf(w, "    @%-2d %-14s |%s| %d thr\n",
			br.Block, ck.Kernel.Blocks[br.Block].Label, string(bar), br.Threads)
	}
	if len(res.BlockRuns) > maxRows {
		fmt.Fprintf(w, "    ... %d more schedules\n", len(res.BlockRuns)-maxRows)
	}
}

// printGrid renders the fabric as a heatmap: one cell per unit, showing the
// unit class and its share of all executed operations.
func printGrid(w io.Writer, m *core.Machine, res *core.Result) {
	g := m.Grid()
	issues := make([]uint64, g.NumUnits())
	var total uint64
	for _, br := range res.BlockRuns {
		if br.Stats == nil || br.Stats.UnitIssues == nil {
			continue
		}
		for u, n := range br.Stats.UnitIssues {
			issues[u] += n
			total += n
		}
	}
	if total == 0 {
		return
	}
	var peak uint64
	for _, n := range issues {
		if n > peak {
			peak = n
		}
	}
	cfg := g.Config()
	cells := make([][]string, cfg.Rows)
	for y := range cells {
		cells[y] = make([]string, cfg.Cols)
	}
	letter := map[kir.UnitClass]string{
		kir.ClassALU: "A", kir.ClassSCU: "X", kir.ClassLDST: "M",
		kir.ClassLVU: "V", kir.ClassSJU: "J", kir.ClassCVU: "C",
	}
	for _, u := range g.Units {
		heat := "."
		if peak > 0 && issues[u.ID] > 0 {
			level := int(9 * issues[u.ID] / peak)
			heat = fmt.Sprintf("%d", level)
		}
		cells[u.Y][u.X] = letter[u.Class] + heat
	}
	fmt.Fprintln(w, "  fabric occupancy (A=alu X=scu M=ldst V=lvu J=sju C=cvu; load 0..9, '.' idle):")
	for _, row := range cells {
		fmt.Fprint(w, "    ")
		for _, c := range row {
			fmt.Fprintf(w, "%-3s", c)
		}
		fmt.Fprintln(w)
	}
}

func runSIMT(w io.Writer, inst *kernels.Instance, rc runCfg) error {
	ck, err := compile.Compile(inst.Kernel)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	cfg := simt.DefaultConfig()
	cfg.Trace = rc.sink
	res, err := simt.NewMachine(cfg).Run(ck, inst.Launch, inst.Global)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if rc.reg != nil {
		bench.FoldSIMT(rc.reg, inst.Kernel.Name, res)
	}
	e := power.SIMT(res, power.DefaultTable())
	fmt.Fprintf(w, "SIMT (Fermi-like SM): %d cycles\n", res.Cycles)
	fmt.Fprintf(w, "  warp instructions: %d (%d thread-instructions, %d masked lanes)\n",
		res.WarpInstrs, res.ThreadInstrs, res.MaskedLanes)
	fmt.Fprintf(w, "  register file: %d reads, %d writes\n", res.RFReads, res.RFWrites)
	fmt.Fprintf(w, "  divergences: %d, barriers: %d\n", res.Divergences, res.Barriers)
	fmt.Fprintf(w, "  L1 transactions: %d, shared transactions: %d\n", res.L1Trans, res.ShTrans)
	fmt.Fprintf(w, "  energy: %.2f uJ (core %.2f)\n", e.SystemLevel()/1e6, e.Core/1e6)
	return nil
}

func runSGMF(w io.Writer, inst *kernels.Instance, rc runCfg) error {
	cfg := sgmf.DefaultConfig()
	cfg.Engine.Fast = rc.fast
	cfg.Engine.Trace = rc.sink
	m, err := sgmf.NewMachine(cfg)
	if err != nil {
		return err
	}
	res, err := m.Run(inst.Kernel, inst.Launch, inst.Global)
	if err != nil {
		return fmt.Errorf("run: %w (SGMF cannot map kernels with loops, barriers, or oversized graphs)", err)
	}
	if rc.reg != nil {
		bench.FoldSGMF(rc.reg, inst.Kernel.Name, res)
	}
	e := power.SGMF(res, power.DefaultTable())
	fmt.Fprintf(w, "SGMF: %d cycles\n", res.Cycles)
	fmt.Fprintf(w, "  whole-kernel graph: %d nodes, %d replicas\n", res.GraphNodes, res.Replicas)
	fmt.Fprintf(w, "  predicated-off memory ops (divergence waste): %d\n", res.SkippedMemOps)
	fmt.Fprintf(w, "  energy: %.2f uJ (core %.2f)\n", e.SystemLevel()/1e6, e.Core/1e6)
	return nil
}

func hitPct(res *core.Result) float64 {
	acc := res.LVCStats.Accesses()
	if acc == 0 {
		return 100
	}
	return 100 * float64(acc-res.LVCStats.Misses()) / float64(acc)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vgiwsim: "+format+"\n", args...)
	os.Exit(1)
}
