// vgiw-experiments regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (configuration), Table 2 (benchmarks), Figure 3
// (LVC vs RF traffic), Figure 7 (speedup over Fermi), Figure 8 (speedup over
// SGMF), Figures 9/10 (energy efficiency), Figure 11 (energy vs SGMF), and
// the §3.2 reconfiguration-overhead statistic.
//
// Usage:
//
//	vgiw-experiments                 # all experiments at the default scale
//	vgiw-experiments -scale 4        # larger workloads (closer to the paper)
//	vgiw-experiments -fig7 -fig9     # a subset
//	vgiw-experiments -csv            # machine-readable output
//	vgiw-experiments -parallel 1     # force the serial harness
//	vgiw-experiments -no-cache       # rebuild every artifact per run
//	vgiw-experiments -cpuprofile cpu.pprof  # profile the harness
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"vgiw/internal/bench"
	"vgiw/internal/kernels"
	"vgiw/internal/report"
	"vgiw/internal/trace"
	"vgiw/internal/version"
)

func main() {
	var (
		scale    = flag.Int("scale", 2, "workload scale factor (1 = quick, 4 = closer to the paper's sizes)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent kernel runs (1 = serial; results are identical either way)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		table1   = flag.Bool("table1", false, "Table 1: system configuration")
		table2   = flag.Bool("table2", false, "Table 2: benchmark kernels")
		fig3     = flag.Bool("fig3", false, "Figure 3: LVC vs RF accesses")
		fig7     = flag.Bool("fig7", false, "Figure 7: speedup over Fermi")
		fig8     = flag.Bool("fig8", false, "Figure 8: speedup over SGMF")
		fig9     = flag.Bool("fig9", false, "Figure 9: energy efficiency over Fermi")
		fig10    = flag.Bool("fig10", false, "Figure 10: energy efficiency by level")
		fig11    = flag.Bool("fig11", false, "Figure 11: energy efficiency over SGMF")
		reconfig = flag.Bool("reconfig", false, "reconfiguration overhead (§3.2)")
		util     = flag.Bool("util", false, "extra: per-kernel execution profile")
		lvcSweep = flag.Bool("lvc-sweep", false, "extra: LVC size design-space sweep (§3.4)")
		energy   = flag.Bool("energy", false, "extra: absolute per-component energy breakdown")
		jsonOut  = flag.Bool("json", false, "emit the whole suite as JSON and exit")
		telem    = flag.Bool("telemetry", false, "extra: harness host-time telemetry table (per-kernel stage split + cache counters)")
		noCache  = flag.Bool("no-cache", false, "disable the artifact cache: rebuild workloads and recompile per run (results are identical either way)")
		fast     = flag.Bool("fast", false, "functional-only engine mode: identical results and op counts, no cycle accounting (timing figures read 0)")
		traceOut = flag.String("trace", "", "write the sweep's cycle-level Chrome trace-event JSON (Perfetto-loadable) to this file")
		traceCat = flag.String("trace-filter", "", "comma-separated trace categories (vgiw,cvt,lvc,simt,sgmf,engine,mem; default all)")
		metrics  = flag.String("metrics", "", "write a one-line schema-versioned metrics snapshot (e.g. BENCH_trace.json) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}()
	}

	all := !(*table1 || *table2 || *fig3 || *fig7 || *fig8 || *fig9 || *fig10 || *fig11 || *reconfig || *util)

	opt := bench.DefaultOptions()
	opt.Scale = *scale
	opt.Parallelism = *parallel
	opt.NoCache = *noCache
	opt.VGIW.Engine.Fast = *fast
	opt.SGMF.Engine.Fast = *fast
	if *traceOut != "" {
		mask, err := trace.ParseCats(*traceCat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		opt.Trace = trace.NewSink(mask)
	}
	if !*noCache {
		// One artifact cache for the whole invocation: the figure matrix and
		// the LVC sweep share workloads and compile/place products.
		opt.Cache = bench.NewArtifactCache()
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Fprintf(os.Stderr, "running %d benchmark kernels on VGIW, Fermi-SIMT and SGMF (scale %d, %d workers)...\n",
		len(kernels.All()), *scale, workers)
	suite, err := bench.RunSuite(opt)
	runs := suite.Runs
	if err != nil {
		// A failing kernel no longer discards the completed runs: report
		// every failure and keep going with the rest.
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		if len(runs) == 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "continuing with the %d/%d kernels that completed.\n",
			len(runs), len(kernels.All()))
	}
	fmt.Fprintf(os.Stderr, "%d runs validated against the host references in %.2fs wall clock.\n",
		len(runs), suite.WallClock.Seconds())
	fmt.Fprintf(os.Stderr, "stages (summed across workers): instance %.1fms, compile %.1fms, place %.1fms, simulate %.1fms; cache %d hits / %d misses\n\n",
		suite.Stages.Instance.Seconds()*1e3, suite.Stages.Compile.Seconds()*1e3,
		suite.Stages.Place.Seconds()*1e3, suite.Stages.Simulate.Seconds()*1e3,
		suite.Cache.HitsTotal(), suite.Cache.MissesTotal())

	if opt.Trace != nil {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = opt.Trace.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (%d dropped)\n",
			opt.Trace.Len(), *traceOut, opt.Trace.Dropped())
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err == nil {
			err = suite.Metrics.WriteSnapshot(f, *scale)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot (%s, %d metrics) to %s\n",
			trace.MetricsSchema, len(suite.Metrics.Names()), *metrics)
	}

	if *jsonOut {
		if err := suite.WriteJSON(os.Stdout, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	emit := func(enabled bool, t *report.Table) {
		if !enabled && !all {
			return
		}
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
			fmt.Println()
		} else {
			err = t.Write(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}

	emit(*table1, bench.Table1(opt))
	emit(*table2, bench.Table2(runs))
	emit(*fig3, bench.Fig3(runs))
	emit(*fig7, bench.Fig7(runs))
	emit(*fig8, bench.Fig8(runs))
	emit(*fig9, bench.Fig9(runs))
	emit(*fig10, bench.Fig10(runs))
	emit(*fig11, bench.Fig11(runs))
	emit(*reconfig, bench.ReconfigTable(runs))
	emit(*util, bench.UtilizationTable(runs))
	emit(*energy, bench.EnergyBreakdown(runs))
	if *telem {
		emit(true, bench.TelemetryTable(suite))
	}

	if *lvcSweep {
		t, err := bench.LVCSweep(opt, []int{16, 32, 64, 128, 256},
			[]string{"hotspot.kernel", "lavamd.kernel", "lud.internal", "nw.needle1", "sm.compute_cost"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		emit(true, t)
	}
}
