package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/fleet"
	"vgiw/internal/kernels"
)

// buildDaemon compiles the real vgiwd binary into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "vgiwd")
	build := exec.Command("go", "build", "-o", bin, "vgiw/cmd/vgiwd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build vgiwd: %v\n%s", err, out)
	}
	return bin
}

// startWorker boots one vgiwd process on an ephemeral port with the shared
// store and waits for its bound-address announcement.
func startWorker(t *testing.T, bin, storeDir string) (daemon *exec.Cmd, base string) {
	t.Helper()
	daemon = exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1",
		"-queue", "16", "-store-dir", storeDir)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = io.Discard
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { daemon.Process.Kill() }) //nolint:errcheck // backstop
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "vgiwd listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatal("worker never announced its address")
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
	return daemon, base
}

// workerMetrics scrapes one worker's /metrics into a flat map.
func workerMetrics(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := fleet.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// expectedReport runs the same matrix single-process and renders it exactly
// as vgiwctl does: canonical form, two-space indent, trailing newline.
func expectedReport(t *testing.T, specs []bench.JobSpec) []byte {
	t.Helper()
	var kspecs []kernels.Spec
	for _, s := range specs {
		ks, ok := kernels.ByName(s.Kernel)
		if !ok {
			t.Fatalf("unknown kernel %q", s.Kernel)
		}
		kspecs = append(kspecs, ks)
	}
	runs, err := bench.RunMatrix(kspecs, bench.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.MarshalIndent(bench.BuildJSON(runs, 1).Canonical(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(doc, '\n')
}

// registryMatrix is the full kernel registry as a JobSpec matrix.
func registryMatrix() []bench.JobSpec {
	var specs []bench.JobSpec
	for _, k := range kernels.All() {
		specs = append(specs, bench.JobSpec{Kernel: k.Name})
	}
	return specs
}

// TestFleetCheck is the `make fleet-check` gate: three real vgiwd workers
// sharing one result store, a registry matrix swept through vgiwctl, and
// the merged report required byte-identical to a single-process run — once
// on a healthy fleet (with a duplicate spec to pin fleet-wide dedup and the
// exactly-once execution count), and once with a worker SIGKILLed
// mid-sweep.
func TestFleetCheck(t *testing.T) {
	bin := buildDaemon(t)

	t.Run("clean", func(t *testing.T) {
		storeDir := filepath.Join(t.TempDir(), "store")
		var bases []string
		for i := 0; i < 3; i++ {
			_, base := startWorker(t, bin, storeDir)
			bases = append(bases, base)
		}

		// Registry matrix plus one duplicate: the dup must ride the ledger,
		// not execute again.
		specs := registryMatrix()
		specs = append(specs, specs[0])
		specsPath := filepath.Join(t.TempDir(), "matrix.json")
		raw, err := json.Marshal(specs)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(specsPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-workers", strings.Join(bases, ","),
			"-specs", specsPath,
			"-store-dir", storeDir,
			"-progress",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("vgiwctl exited %d\nstderr:\n%s", code, stderr.String())
		}

		want := expectedReport(t, specs)
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("fleet report differs from single-process run:\n%s\nvs\n%s", stdout.Bytes(), want)
		}

		// Exactly-once fleet-wide: the three workers' execution counters sum
		// to the unique-key count — no key ran twice, the duplicate ran zero
		// extra times.
		unique := uint64(len(specs) - 1)
		var executed uint64
		for _, base := range bases {
			executed += workerMetrics(t, base)["vgiwd/runs_executed"]
		}
		if executed != unique {
			t.Errorf("fleet executed %d runs, want exactly %d (one per unique key)", executed, unique)
		}
		// The coordinator flushes its own metrics to stderr; the dedup and
		// completion counters must agree.
		cm, err := fleet.ParseMetrics(bytes.NewReader(stderr.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if cm["fleet/jobs_deduped"] != 1 {
			t.Errorf("fleet/jobs_deduped = %d, want 1\nstderr:\n%s", cm["fleet/jobs_deduped"], stderr.String())
		}
		if cm["fleet/jobs_completed"] != unique {
			t.Errorf("fleet/jobs_completed = %d, want %d", cm["fleet/jobs_completed"], unique)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		storeDir := filepath.Join(t.TempDir(), "store")
		var daemons []*exec.Cmd
		var bases []string
		for i := 0; i < 3; i++ {
			d, base := startWorker(t, bin, storeDir)
			daemons = append(daemons, d)
			bases = append(bases, base)
		}

		specs := registryMatrix()
		done := make(chan int, 1)
		var stdout, stderr bytes.Buffer
		go func() {
			done <- run([]string{
				"-workers", strings.Join(bases, ","),
				"-kernels", "all",
				"-store-dir", storeDir,
				"-progress",
			}, &stdout, &stderr)
		}()

		// SIGKILL the busiest worker as soon as the sweep has reached the
		// fleet: admission counters move within the first dispatches, which
		// leaves most of the matrix still to run after the kill.
		killed := false
		deadline := time.Now().Add(30 * time.Second)
		for !killed {
			if time.Now().After(deadline) {
				t.Fatal("no worker ever admitted a job")
			}
			busiest, most := -1, uint64(0)
			for i, base := range bases {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					continue
				}
				m, _ := fleet.ParseMetrics(resp.Body)
				resp.Body.Close()
				if n := m["vgiwd/jobs_admitted"]; n > most {
					busiest, most = i, n
				}
			}
			if busiest >= 0 {
				if err := daemons[busiest].Process.Kill(); err != nil {
					t.Fatal(err)
				}
				t.Logf("SIGKILLed worker %d (%s) holding %d admitted jobs", busiest, bases[busiest], most)
				killed = true
			}
			time.Sleep(2 * time.Millisecond)
		}

		var code int
		select {
		case code = <-done:
		case <-time.After(5 * time.Minute):
			t.Fatal("sweep did not finish after the kill")
		}
		if code != 0 {
			t.Fatalf("vgiwctl exited %d\nstderr:\n%s", code, stderr.String())
		}

		want := expectedReport(t, specs)
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Errorf("post-kill fleet report differs from single-process run:\n%s\nvs\n%s", stdout.Bytes(), want)
		}

		cm, err := fleet.ParseMetrics(bytes.NewReader(stderr.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if cm["fleet/worker_deaths"] < 1 {
			t.Errorf("fleet/worker_deaths = %d, want >= 1\nstderr:\n%s", cm["fleet/worker_deaths"], stderr.String())
		}
		// Every unique key terminal-done exactly once in the ledger, kill or
		// no kill.
		if cm["fleet/jobs_completed"] != uint64(len(specs)) {
			t.Errorf("fleet/jobs_completed = %d, want %d", cm["fleet/jobs_completed"], len(specs))
		}
		if cm["fleet/jobs_failed"] != 0 {
			t.Errorf("fleet/jobs_failed = %d, want 0", cm["fleet/jobs_failed"])
		}
	})
}

// TestVersionFlag pins the -version fast path.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
	if !strings.HasPrefix(stdout.String(), "vgiw ") {
		t.Errorf("-version output %q", stdout.String())
	}
}

// TestHistoryFlag pins the combined-history listing against an empty store.
func TestHistoryFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	dir := t.TempDir()
	if code := run([]string{"-history", "-store-dir", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("-history exited %d\n%s", code, stderr.String())
	}
	var out struct {
		Entries []json.RawMessage `json:"entries"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("bad history document %q: %v", stdout.String(), err)
	}
	if len(out.Entries) != 0 {
		t.Errorf("empty store lists %d entries", len(out.Entries))
	}
	if code := run([]string{"-history"}, &stdout, &stderr); code != 2 {
		t.Error("-history without -store-dir should be a usage error")
	}
}

// TestBuildMatrix pins the matrix construction paths.
func TestBuildMatrix(t *testing.T) {
	tasks, err := buildMatrix("", "all", bench.JobSpec{Scale: 2}, "team-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != len(kernels.All()) {
		t.Errorf("all-matrix has %d tasks, want %d", len(tasks), len(kernels.All()))
	}
	if tasks[0].Spec.Scale != 2 || tasks[0].Tenant != "team-a" {
		t.Errorf("knobs not applied: %+v", tasks[0])
	}
	tasks, err = buildMatrix("", "bfs.kernel1, bfs.kernel2", bench.JobSpec{}, "")
	if err != nil || len(tasks) != 2 || tasks[1].Spec.Kernel != "bfs.kernel2" {
		t.Errorf("named list: %v %+v", err, tasks)
	}
	if _, err := buildMatrix("", " , ", bench.JobSpec{}, ""); err == nil {
		t.Error("empty kernel list should be rejected")
	}
	if _, err := buildMatrix(filepath.Join(t.TempDir(), "missing.json"), "", bench.JobSpec{}, ""); err == nil {
		t.Error("missing specs file should be rejected")
	}
}
