// vgiwctl is the fleet sweep client: it shards a JobSpec matrix across a
// fleet of vgiwd workers, rides out worker deaths and overload, and merges
// the per-kernel results into one canonical report — byte-identical to a
// single-process run of the same matrix.
//
// Usage:
//
//	vgiwctl -workers http://a:8077,http://b:8077            # full registry
//	vgiwctl -workers ... -kernels bfs.kernel1,bfs.kernel2   # named kernels
//	vgiwctl -workers ... -specs matrix.json                 # explicit matrix
//	vgiwctl -workers ... -store-dir /shared/results         # fleet dedup store
//	vgiwctl -store-dir /shared/results -history             # combined history
//
// The merged report (canonical form: host telemetry stripped) goes to
// stdout; progress and the final fleet metrics go to stderr. With
// -metrics-addr the coordinator serves live /metrics and the combined
// /v1/history while the sweep runs. Exit status is 0 only when every task
// completed.
//
// The -store-dir should be the same directory the workers run with: results
// any worker persists short-circuit dispatch fleet-wide, so a re-run (or a
// sweep overlapping an earlier one) only executes the keys that are new.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/fleet"
	"vgiw/internal/kernels"
	"vgiw/internal/server"
	"vgiw/internal/store"
	"vgiw/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vgiwctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workersFlag = fs.String("workers", "", "comma-separated vgiwd base URLs (required for sweeps)")
		kernelsFlag = fs.String("kernels", "all", `kernel matrix: "all" (the registry) or a comma-separated name list`)
		specsFile   = fs.String("specs", "", "JSON file holding an explicit matrix ([]JobSpec); overrides -kernels")
		scale       = fs.Int("scale", 0, "workload scale factor for the kernel matrix (0 = 1)")
		lvcKB       = fs.Int("lvc-kb", 0, "LVC capacity override, KiB (0 = default)")
		cvtBits     = fs.Int("cvt-bits", 0, "CVT bit-budget override (0 = default)")
		memPolicy   = fs.String("mem", "", `L1 write policy: "", "writeback", "writethrough"`)
		skipSGMF    = fs.Bool("skip-sgmf", false, "skip the SGMF baseline runs")
		fast        = fs.Bool("fast", false, "functional-only engine mode (no cycle accounting)")
		verify      = fs.Bool("verify", false, "run the IR verifier and placed-graph checker per stage")
		tenant      = fs.String("tenant", "", "tenant the sweep is accounted to (default: server default)")
		jobTimeout  = fs.Duration("job-timeout", 0, "per-job deadline, one dispatch attempt (0 = 2m)")
		retries     = fs.Int("retries", 0, "retry budget per job after the first attempt (0 = 3)")
		slots       = fs.Int("slots", 0, "concurrent in-flight jobs per worker (0 = 2)")
		queue       = fs.Int("queue", 0, "bounded dispatch queue per worker (0 = 2x slots)")
		quota       = fs.Int("quota", 0, "per-tenant in-custody job cap (0 = unlimited)")
		storeDir    = fs.String("store-dir", "", "shared result store (same directory the workers use)")
		metricsAddr = fs.String("metrics-addr", "", "serve coordinator /metrics and /v1/history here during the sweep")
		outPath     = fs.String("out", "", "write the merged report here instead of stdout")
		ledgerPath  = fs.String("ledger", "", `write the per-task dispatch ledger (JSON) here ("-" = stderr)`)
		progress    = fs.Bool("progress", false, "log per-job fleet events to stderr")
		history     = fs.Bool("history", false, "list the shared store's combined history and exit")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *showVersion {
		fmt.Fprintln(stdout, version.String())
		return 0
	}
	if *history {
		return runHistory(*storeDir, stdout, stderr)
	}

	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, strings.TrimRight(w, "/"))
		}
	}
	if len(workers) == 0 {
		fmt.Fprintln(stderr, "vgiwctl: -workers is required (comma-separated vgiwd URLs)")
		return 2
	}

	tasks, err := buildMatrix(*specsFile, *kernelsFlag, bench.JobSpec{
		Scale: *scale, LVCKB: *lvcKB, CVTBits: *cvtBits, Mem: *memPolicy,
		SkipSGMF: *skipSGMF, Fast: *fast, Verify: *verify,
	}, *tenant)
	if err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 2
	}

	cfg := fleet.Config{
		Workers:        workers,
		Tenant:         *tenant,
		TenantQuota:    *quota,
		SlotsPerWorker: *slots,
		QueuePerWorker: *queue,
		RetryBudget:    *retries,
		JobTimeout:     *jobTimeout,
		StoreDir:       *storeDir,
	}
	if *progress {
		cfg.Logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}
	coord, err := fleet.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 2
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "vgiwctl: metrics listener: %v\n", err)
			return 2
		}
		defer ln.Close()
		fmt.Fprintf(stderr, "vgiwctl: serving fleet metrics on %s\n", ln.Addr())
		//vgiw:allow golife -- bounded by the deferred ln.Close: Serve returns when the listener dies with the process
		go http.Serve(ln, coord.Handler()) //nolint:errcheck
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	start := time.Now()
	res, runErr := coord.Run(ctx, tasks)
	if res == nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", runErr)
		return 1
	}
	fmt.Fprintf(stderr, "vgiwctl: sweep: %d tasks, %d unique keys, %d failed, %.1fs\n",
		len(res.Tasks), res.UniqueKeys, res.Failed, time.Since(start).Seconds())

	if *ledgerPath != "" {
		if err := writeLedger(*ledgerPath, res, stderr); err != nil {
			fmt.Fprintf(stderr, "vgiwctl: ledger: %v\n", err)
		}
	}
	fmt.Fprintln(stderr, "vgiwctl: fleet metrics:")
	coord.Metrics().WritePrometheus(stderr) //nolint:errcheck // diagnostic output

	if runErr != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", runErr)
		return 1
	}
	rep, err := res.MergedReport()
	if err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 1
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 1
	}
	doc = append(doc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, doc, 0o644); err != nil {
			fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
			return 1
		}
		return 0
	}
	if _, err := stdout.Write(doc); err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 1
	}
	return 0
}

// buildMatrix resolves the task list: an explicit -specs file, or the
// -kernels set with the shared design-space knobs applied.
func buildMatrix(specsFile, kernelList string, knobs bench.JobSpec, tenant string) ([]fleet.Task, error) {
	if specsFile != "" {
		raw, err := os.ReadFile(specsFile)
		if err != nil {
			return nil, err
		}
		var specs []bench.JobSpec
		if err := json.Unmarshal(raw, &specs); err != nil {
			return nil, fmt.Errorf("%s: %w", specsFile, err)
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("%s: empty matrix", specsFile)
		}
		tasks := make([]fleet.Task, len(specs))
		for i, s := range specs {
			tasks[i] = fleet.Task{Spec: s, Tenant: tenant}
		}
		return tasks, nil
	}
	var names []string
	if kernelList == "all" {
		for _, k := range kernels.All() {
			names = append(names, k.Name)
		}
	} else {
		for _, n := range strings.Split(kernelList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return nil, errors.New("empty kernel list")
	}
	tasks := make([]fleet.Task, len(names))
	for i, name := range names {
		spec := knobs
		spec.Kernel = name
		tasks[i] = fleet.Task{Spec: spec, Tenant: tenant}
	}
	return tasks, nil
}

// runHistory lists the shared store — the combined view across every worker
// that writes to it.
func runHistory(dir string, stdout, stderr io.Writer) int {
	if dir == "" {
		fmt.Fprintln(stderr, "vgiwctl: -history needs -store-dir")
		return 2
	}
	st, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 1
	}
	entries, lerr := st.List()
	out := make([]server.HistoryEntry, 0, len(entries))
	for _, e := range entries {
		h := server.HistoryEntry{
			Key: e.Key, Kind: e.Kind, Kernel: e.Spec.Kernel,
			Spec: e.Spec, Created: e.Created, Host: e.Host,
		}
		if e.Metrics != nil {
			h.Metrics = len(e.Metrics.Metrics)
		}
		out = append(out, h)
	}
	doc, err := json.MarshalIndent(struct {
		Entries []server.HistoryEntry `json:"entries"`
	}{out}, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "vgiwctl: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, string(doc))
	if lerr != nil {
		fmt.Fprintf(stderr, "vgiwctl: skipped unreadable entries: %v\n", lerr)
	}
	return 0
}

// writeLedger dumps the per-task dispatch ledger: which worker served each
// key, after how many attempts, and from which cache tier.
func writeLedger(path string, res *fleet.Result, stderr io.Writer) error {
	doc, err := json.MarshalIndent(res.Tasks, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		_, err = stderr.Write(doc)
		return err
	}
	return os.WriteFile(path, doc, 0o644)
}
