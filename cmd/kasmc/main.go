// kasmc is the kernel-assembly compiler driver: it parses a .kasm file and
// dumps what the VGIW compiler produces — the scheduled CFG, the live-value
// allocation, and each basic block's dataflow graph with its fabric
// placement and replication factor.
//
// Usage:
//
//	kasmc kernel.kasm            # compile and summarize
//	kasmc -dfg kernel.kasm       # also dump every block's dataflow graph
//	kasmc -print kernel.kasm     # pretty-print the parsed kernel and exit
//	kasmc -verify kernel.kasm    # run the IR verifier after every pass
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kasm"
	"vgiw/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, separated from main so the golden tests can
// exercise flags, output, and exit codes in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kasmc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dumpDFG   = fs.Bool("dfg", false, "dump each block's dataflow graph")
		printOnly = fs.Bool("print", false, "pretty-print the parsed kernel and exit")
		doVerify  = fs.Bool("verify", false, "run the IR verifier on the input and after every compiler pass")
		showVer   = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVer {
		fmt.Fprintln(stdout, version.String())
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: kasmc [-dfg] [-print] <file.kasm>")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(stderr, "%v", err)
	}
	k, err := kasm.Parse(string(src))
	if err != nil {
		return fail(stderr, "%v", err)
	}
	if *printOnly {
		fmt.Fprint(stdout, kasm.Print(k))
		return 0
	}

	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		return fail(stderr, "%v", err)
	}
	var copts []compile.Option
	if *doVerify {
		copts = append(copts, compile.Checked())
	}
	ck, err := compile.CompileFitted(k, grid.Fits, copts...)
	if err != nil {
		// Compile errors arrive already prefixed "compile: <pass>: ...".
		return fail(stderr, "%v", err)
	}

	fmt.Fprintf(stdout, "kernel %s: %d blocks, %d instructions, %d registers, %d live values\n",
		k.Name, len(k.Blocks), k.NumInstrs(), k.NumRegs, ck.LV.NumIDs)
	for bi, g := range ck.DFGs {
		blk := k.Blocks[bi]
		replicas := fabric.MaxReplicasFor(grid, g)
		p, err := fabric.Place(grid, g, replicas)
		if err != nil {
			return fail(stderr, "place block %d: %v", bi, err)
		}
		if *doVerify {
			if err := fabric.VerifyPlaced("place", grid, p, ck.LV.NumIDs); err != nil {
				return fail(stderr, "%v", err)
			}
		}
		barrier := ""
		if blk.Barrier {
			barrier = " (barrier)"
		}
		fmt.Fprintf(stdout, "\n@%d %s%s: %d nodes %v\n", bi, blk.Label, barrier, len(g.Nodes), g.ClassCounts())
		fmt.Fprintf(stdout, "  replication: %dx, critical path %d nodes, avg hop latency %.2f cycles\n",
			replicas, g.CriticalPathLen(), p.AvgHops)
		fmt.Fprintf(stdout, "  LVC loads: %v, stores: %v\n", ck.LV.Loads[bi], ck.LV.Stores[bi])
		fmt.Fprintf(stdout, "  terminator: %s\n", blk.Term.String())
		if *dumpDFG {
			for _, n := range g.Nodes {
				unit := grid.Units[p.UnitOf[0][n.ID]]
				fmt.Fprintf(stdout, "    node %3d %-8v %-7v @(%2d,%2d) in=%v ctl=%v\n",
					n.ID, n.Kind, n.Instr.Op, unit.X, unit.Y, n.In, n.CtlIn)
			}
		}
	}
	return 0
}

func fail(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "kasmc: "+format+"\n", args...)
	return 1
}
