// kasmc is the kernel-assembly compiler driver: it parses a .kasm file and
// dumps what the VGIW compiler produces — the scheduled CFG, the live-value
// allocation, and each basic block's dataflow graph with its fabric
// placement and replication factor.
//
// Usage:
//
//	kasmc kernel.kasm            # compile and summarize
//	kasmc -dfg kernel.kasm       # also dump every block's dataflow graph
//	kasmc -print kernel.kasm     # pretty-print the parsed kernel and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kasm"
)

func main() {
	var (
		dumpDFG   = flag.Bool("dfg", false, "dump each block's dataflow graph")
		printOnly = flag.Bool("print", false, "pretty-print the parsed kernel and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kasmc [-dfg] [-print] <file.kasm>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	k, err := kasm.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	if *printOnly {
		fmt.Print(kasm.Print(k))
		return
	}

	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		fail("%v", err)
	}
	ck, err := compile.CompileFitted(k, grid.Fits)
	if err != nil {
		fail("compile: %v", err)
	}

	fmt.Printf("kernel %s: %d blocks, %d instructions, %d registers, %d live values\n",
		k.Name, len(k.Blocks), k.NumInstrs(), k.NumRegs, ck.LV.NumIDs)
	for bi, g := range ck.DFGs {
		blk := k.Blocks[bi]
		replicas := fabric.MaxReplicasFor(grid, g)
		p, err := fabric.Place(grid, g, replicas)
		if err != nil {
			fail("place block %d: %v", bi, err)
		}
		barrier := ""
		if blk.Barrier {
			barrier = " (barrier)"
		}
		fmt.Printf("\n@%d %s%s: %d nodes %v\n", bi, blk.Label, barrier, len(g.Nodes), g.ClassCounts())
		fmt.Printf("  replication: %dx, critical path %d nodes, avg hop latency %.2f cycles\n",
			replicas, g.CriticalPathLen(), p.AvgHops)
		fmt.Printf("  LVC loads: %v, stores: %v\n", ck.LV.Loads[bi], ck.LV.Stores[bi])
		fmt.Printf("  terminator: %s\n", blk.Term.String())
		if *dumpDFG {
			for _, n := range g.Nodes {
				unit := grid.Units[p.UnitOf[0][n.ID]]
				fmt.Printf("    node %3d %-8v %-7v @(%2d,%2d) in=%v ctl=%v\n",
					n.ID, n.Kind, n.Instr.Op, unit.X, unit.Y, n.In, n.CtlIn)
			}
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kasmc: "+format+"\n", args...)
	os.Exit(1)
}
