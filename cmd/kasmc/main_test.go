package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the kasmc golden files from current output")

const exampleKasm = "../../examples/kasm/kernel.kasm"

// runGolden executes the driver and compares stdout to a golden file.
func runGolden(t *testing.T, goldenName string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
	}
	golden := filepath.Join("testdata", goldenName)
	if *updateGolden {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/kasmc -update-golden` to create it)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output changed (rerun with -update-golden if intended).\ngot:\n%s\nwant:\n%s",
			stdout.String(), want)
	}
}

func TestPrintGolden(t *testing.T) {
	runGolden(t, "absdiff_print.golden", "-print", exampleKasm)
}

func TestCompileGolden(t *testing.T) {
	runGolden(t, "absdiff_compile.golden", exampleKasm)
}

func TestDFGGolden(t *testing.T) {
	runGolden(t, "absdiff_dfg.golden", "-dfg", exampleKasm)
}

func TestParseErrorExitsNonZero(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.kasm")
	if err := os.WriteFile(bad, []byte("kernel broken\n@0 entry:\n  r0 = bogus r1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{bad}, &stdout, &stderr); code == 0 {
		t.Fatal("parse error exited 0")
	}
	if !strings.HasPrefix(stderr.String(), "kasmc: ") {
		t.Errorf("error not reported on stderr: %q", stderr.String())
	}
}

func TestMissingFileExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"/no/such/file.kasm"}, &stdout, &stderr); code == 0 {
		t.Fatal("missing file exited 0")
	}
}

func TestUsageExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args run = %d, want 2", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version = %d, stderr %q", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "vgiw ") {
		t.Errorf("-version output %q", stdout.String())
	}
}
