package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the kasmc golden files from current output")

const exampleKasm = "../../examples/kasm/kernel.kasm"

// runGolden executes the driver and compares stdout to a golden file.
func runGolden(t *testing.T, goldenName string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr:\n%s", args, code, stderr.String())
	}
	golden := filepath.Join("testdata", goldenName)
	if *updateGolden {
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/kasmc -update-golden` to create it)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output changed (rerun with -update-golden if intended).\ngot:\n%s\nwant:\n%s",
			stdout.String(), want)
	}
}

func TestPrintGolden(t *testing.T) {
	runGolden(t, "absdiff_print.golden", "-print", exampleKasm)
}

func TestCompileGolden(t *testing.T) {
	runGolden(t, "absdiff_compile.golden", exampleKasm)
}

func TestDFGGolden(t *testing.T) {
	runGolden(t, "absdiff_dfg.golden", "-dfg", exampleKasm)
}

func TestParseErrorExitsNonZero(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.kasm")
	if err := os.WriteFile(bad, []byte("kernel broken\n@0 entry:\n  r0 = bogus r1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{bad}, &stdout, &stderr); code == 0 {
		t.Fatal("parse error exited 0")
	}
	if !strings.HasPrefix(stderr.String(), "kasmc: ") {
		t.Errorf("error not reported on stderr: %q", stderr.String())
	}
}

func TestVerifierErrorExitsNonZero(t *testing.T) {
	// Parses fine but uses r1 before any definition — only the -verify
	// pipeline rejects it, with a diagnostic naming the pass and the
	// offending source line.
	src := "kernel broken params=1 shared=0\n# r1 is never written\n@0 entry:\n  r0 = add r1 r1\n  ret\n"
	bad := filepath.Join(t.TempDir(), "broken.kasm")
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-verify", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("verifier failure = %d, want 1; stderr: %s", code, stderr.String())
	}
	got := stderr.String()
	if !strings.HasPrefix(got, "kasmc: ") {
		t.Errorf("error not reported with the kasmc prefix: %q", got)
	}
	for _, want := range []string{"verify [input]", "used before definition", "line 4"} {
		if !strings.Contains(got, want) {
			t.Errorf("stderr %q does not mention %q", got, want)
		}
	}
	// Without -verify the same file compiles (the use is treated as an
	// uninitialized live-in): the flag is what adds the gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{bad}, &stdout, &stderr); code != 0 {
		t.Fatalf("unverified compile = %d, stderr: %s", code, stderr.String())
	}
}

func TestMissingFileExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"/no/such/file.kasm"}, &stdout, &stderr); code == 0 {
		t.Fatal("missing file exited 0")
	}
}

func TestUsageExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args run = %d, want 2", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version = %d, stderr %q", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "vgiw ") {
		t.Errorf("-version output %q", stdout.String())
	}
}
