// Command vgiwcheck runs the repo's static-analysis suite
// (internal/analysis) over the module: the determinism-taint, lock-
// discipline, and goroutine-lifecycle passes, plus the three checks
// migrated from vgiwlint (hotpath, nilguard, ctxpoll). Exit status 1 when
// findings exist, 2 on usage or analysis errors.
//
// Usage:
//
//	vgiwcheck [-root dir] [-json] [-strict-suppressions] [-list] [packages...]
//
// With no package arguments the whole module under -root is analyzed.
// Package arguments are directories relative to the module root (e.g.
// internal/fleet); their module-internal dependencies are still loaded
// and analyzed (cross-package facts need them) but only the named
// packages are reported on.
//
// -json emits the machine-readable diagnostic array `make analyze`
// consumes. -strict-suppressions additionally audits //vgiw:allow
// comments and //vgiw:coarsepoll markers that no longer suppress
// anything. -list prints the pass catalog and exits.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vgiw/internal/analysis"
)

const modPath = "vgiw"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("vgiwcheck", flag.ContinueOnError)
	fl.SetOutput(stderr)
	root := fl.String("root", ".", "module root directory")
	asJSON := fl.Bool("json", false, "emit diagnostics as a JSON array")
	strict := fl.Bool("strict-suppressions", false, "audit unused //vgiw:allow and //vgiw:coarsepoll escapes")
	list := fl.Bool("list", false, "print the pass catalog and exit")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	passes := analysis.DefaultPasses()
	if *list {
		for _, p := range passes {
			fmt.Fprintf(stdout, "%-10s %s\n", p.Name, p.Doc)
		}
		return 0
	}

	var prog *analysis.Program
	var err error
	if fl.NArg() == 0 {
		prog, err = analysis.Load(*root, modPath)
	} else {
		prog, err = analysis.LoadPackages(*root, modPath, fl.Args())
	}
	if err != nil {
		fmt.Fprintf(stderr, "vgiwcheck: %v\n", err)
		return 2
	}

	a := &analysis.Analyzer{Passes: passes, Strict: *strict}
	diags := a.Run(prog)

	if *asJSON {
		if err := analysis.RenderJSON(stdout, diags, *root); err != nil {
			fmt.Fprintf(stderr, "vgiwcheck: %v\n", err)
			return 2
		}
	} else if err := analysis.RenderHuman(stdout, diags, *root); err != nil {
		fmt.Fprintf(stderr, "vgiwcheck: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
