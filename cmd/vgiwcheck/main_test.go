package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway single-package module root so the CLI
// can be exercised end to end without touching the real tree.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

const dirtySrc = `package pkg

import "encoding/json"

func leak(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	data, _ := json.Marshal(keys)
	return data
}
`

const cleanSrc = `package pkg

import (
	"encoding/json"
	"sort"
)

func tidy(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	data, _ := json.Marshal(keys)
	return data
}
`

func TestRunFindings(t *testing.T) {
	root := writeModule(t, dirtySrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "pkg/pkg.go:10:13: det: keys carries map iteration order") {
		t.Fatalf("human output missing positioned diagnostic:\n%s", got)
	}
	if strings.Contains(got, root) {
		t.Fatalf("human output not root-relativized:\n%s", got)
	}
}

func TestRunClean(t *testing.T) {
	root := writeModule(t, cleanSrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0; output: %s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run produced output: %s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	root := writeModule(t, dirtySrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root, "-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var rows []struct {
		File  string `json:"file"`
		Line  int    `json:"line"`
		Check string `json:"check"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(rows) != 1 || rows[0].Check != "det" || rows[0].File != "pkg/pkg.go" {
		t.Fatalf("unexpected rows: %+v", rows)
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	root := writeModule(t, cleanSrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root, "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean JSON output = %q, want []", out.String())
	}
}

func TestRunStrictSuppressions(t *testing.T) {
	const stale = `package pkg

func twice(n int) int {
	//vgiw:allow det -- stale
	return n * 2
}
`
	root := writeModule(t, stale)
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root}, &out, &errb); code != 0 {
		t.Fatalf("default mode exit = %d, want 0 (stale allow only reported under -strict-suppressions)", code)
	}
	out.Reset()
	if code := run([]string{"-root", root, "-strict-suppressions"}, &out, &errb); code != 1 {
		t.Fatalf("strict exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "unused //vgiw:allow det suppression") {
		t.Fatalf("strict output missing audit finding:\n%s", out.String())
	}
}

func TestRunPackageSelection(t *testing.T) {
	root := writeModule(t, dirtySrc)
	other := filepath.Join(root, "other")
	if err := os.MkdirAll(other, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(other, "other.go"), []byte(strings.Replace(cleanSrc, "package pkg", "package other", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-root", root, "other"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0: selecting the clean package must not report the dirty one\n%s", code, out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"det", "lock", "golife", "hotpath", "nilguard", "ctxpoll"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("pass catalog missing %q:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunBadRoot(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-root", filepath.Join(t.TempDir(), "missing")}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, errb.String())
	}
}
