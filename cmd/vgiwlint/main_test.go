package main

import (
	"strings"
	"testing"
)

// TestFixtureFails pins the CLI contract: a package with seeded violations
// exits 1 and prints one finding per line; analysis errors exit 2.
func TestFixtureFails(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-root", "../../internal/lint/testdata/src", "fixture"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hotpath") || !strings.Contains(out.String(), "ctxpoll") {
		t.Errorf("findings missing from output:\n%s", out.String())
	}
}

func TestMissingDirExits2(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-root", ".", "no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "vgiwlint: ") {
		t.Errorf("stderr %q lacks the vgiwlint prefix", errb.String())
	}
}
