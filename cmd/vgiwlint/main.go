// Command vgiwlint runs the repo-specific static checks (internal/lint)
// over the module: hotpath allocation bans, trace.Sink nil-receiver guards,
// and strided context polling. Exit status 1 when findings exist, 2 on
// usage or analysis errors.
//
// Usage:
//
//	vgiwlint [-root dir] [packages...]
//
// With no package arguments the whole module under -root is linted.
// Package arguments are directories relative to the module root
// (e.g. internal/engine).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vgiw/internal/lint"
)

const modPath = "vgiw"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("vgiwlint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	root := fl.String("root", ".", "module root directory")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	var findings []lint.Finding
	var err error
	if fl.NArg() == 0 {
		findings, err = lint.Walk(*root, modPath)
	} else {
		for _, rel := range fl.Args() {
			rel = filepath.ToSlash(filepath.Clean(rel))
			pkgPath := modPath
			if rel != "." {
				pkgPath = modPath + "/" + rel
			}
			fs, derr := lint.Dir(filepath.Join(*root, rel), pkgPath)
			if derr != nil {
				err = derr
				break
			}
			findings = append(findings, fs...)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "vgiwlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		// Print positions relative to the root so output is stable across
		// checkouts.
		pos := f.Pos
		if rel, rerr := filepath.Rel(*root, pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s: %s: %s\n", pos, f.Check, f.Msg)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
