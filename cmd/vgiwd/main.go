// vgiwd is the simulation-as-a-service daemon: it serves the experiment
// harness over HTTP/JSON with admission control, per-job deadlines,
// singleflight result dedup, live Prometheus metrics, and graceful drain.
//
// Usage:
//
//	vgiwd                         # serve on :8077
//	vgiwd -addr 127.0.0.1:0       # ephemeral port (printed on stdout)
//	vgiwd -workers 4 -queue 128   # widen the pool and the admission queue
//	vgiwd -store-dir /var/lib/vgiwd  # persist results across restarts
//
// Endpoints:
//
//	POST   /v1/jobs           submit a job ({"kernel":...} | {"suite":true} |
//	                          {"source":...}); ?wait=1 blocks until terminal
//	GET    /v1/jobs           list jobs
//	GET    /v1/jobs/{id}      job status + result; ?wait=1 blocks
//	GET    /v1/jobs/{id}/trace  Chrome trace JSON (jobs with "trace":true)
//	GET    /v1/jobs/{id}/events Server-Sent Events live stream (trace jobs)
//	DELETE /v1/jobs/{id}      cancel a job
//	GET    /v1/history        stored results (-store-dir); ?kernel=&kind=&key=
//	GET    /v1/history/{key}  one stored result, in full
//	GET    /v1/history/diff   metric diff: ?from=<key>&to=<key>[&prefix=]
//	GET    /healthz           liveness
//	GET    /readyz            readiness (503 while draining)
//	GET    /metrics           Prometheus text exposition
//
// With -store-dir, completed results persist in a content-addressed store and
// a restarted daemon serves matching submissions from it byte-identically
// (marked "cached": "store").
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips, in-flight jobs
// finish (up to -drain-timeout, then they are cancelled), final metrics are
// flushed to stderr — and, with -store-dir, persisted into the store as a
// "shutdown" vgiw-metrics/v1 snapshot — and the process exits 0 on a clean
// drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vgiw/internal/server"
	"vgiw/internal/store"
	"vgiw/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vgiwd", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":8077", "listen address (host:port; port 0 picks one)")
		workers      = fs.Int("workers", 0, "concurrent simulations (0 = 2)")
		queue        = fs.Int("queue", 0, "admission queue depth (0 = 64)")
		parallelism  = fs.Int("parallelism", 0, "per-simulation harness parallelism (0 = NumCPU/workers)")
		timeout      = fs.Duration("timeout", 0, "default per-job deadline (0 = 2m)")
		maxTimeout   = fs.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 10m)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits before cancelling jobs")
		storeDir     = fs.String("store-dir", "", "persistent result store directory (empty = persistence disabled)")
		showVersion  = fs.Bool("version", false, "print version and exit")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *showVersion {
		fmt.Println(version.String())
		return 0
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: %v\n", err)
		return 1
	}

	s := server.New(server.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		RunParallelism: *parallelism,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Store:          st,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: %v\n", err)
		return 1
	}
	// The bound address goes to stdout so scripts using -addr :0 (the
	// serve-check gate, test rigs) can discover the port.
	fmt.Printf("vgiwd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "vgiwd: %v: draining (timeout %v)\n", got, *drainTimeout)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "vgiwd: serve: %v\n", err)
		return 1
	}

	// Drain order: stop taking HTTP requests, then drain the job queue so
	// everything already admitted (and still under its own deadline) runs
	// to completion before the process exits.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: http shutdown: %v\n", err)
	}
	code := 0
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: drain: %v\n", err)
		if !errors.Is(err, context.DeadlineExceeded) {
			code = 1
		}
	}
	// Flush final metrics so a scrape-less deployment still gets a
	// terminal snapshot in its logs — and, when persistence is on, into the
	// store as a machine-readable vgiw-metrics/v1 snapshot.
	fmt.Fprintln(os.Stderr, "vgiwd: final metrics:")
	if err := s.WriteMetrics(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: metrics flush: %v\n", err)
	}
	if err := st.PutSnapshot("shutdown", s.SnapshotRegistry(), 0); err != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: shutdown snapshot: %v\n", err)
	} else if st != nil {
		fmt.Fprintf(os.Stderr, "vgiwd: shutdown snapshot persisted to %s\n", st.Dir())
	}
	fmt.Fprintln(os.Stderr, "vgiwd: drained")
	return code
}
