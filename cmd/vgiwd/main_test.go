package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeCheck is the `make serve-check` gate: it builds the real vgiwd
// binary, boots it on an ephemeral port, exercises the job API end to end
// (submit, wait, poll, cancel, metrics scrape), then SIGTERMs it and
// requires a clean drain with exit status 0.
func TestServeCheck(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "vgiwd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4", "-drain-timeout", "30s")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill() //nolint:errcheck // backstop; the happy path waits below

	// The daemon prints its bound address on stdout for exactly this use.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "vgiwd listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained

	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v / %+v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Submit-and-wait a fast job; its result must parse as a report.
	var done struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	postJSON(t, base+"/v1/jobs?wait=1", `{"kernel":"bfs.kernel1"}`, &done)
	if done.State != "done" || len(done.Result) == 0 {
		t.Fatalf("fast job: %+v", done)
	}

	// Submit a slow job, poll it into running, cancel it.
	var slow struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	postJSON(t, base+"/v1/jobs", `{"kernel":"hotspot.kernel","scale":4}`, &slow)
	deadline := time.Now().Add(30 * time.Second)
	for slow.State != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("slow job stuck in %q", slow.State)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, base+"/v1/jobs/"+slow.ID, &slow)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+slow.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &slow)
	if slow.State != "cancelled" {
		t.Fatalf("cancelled job reports %q", slow.State)
	}

	// The metrics exposition must carry the server counters.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`vgiw_metric{name="vgiwd/jobs_admitted"} 2`,
		`vgiw_metric{name="vgiwd/jobs_cancelled"}`,
		`vgiw_hist_count{name="vgiwd/run_ms"}`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}

	// Leave one queued job behind, then SIGTERM: the drain must finish it
	// and the process must exit 0.
	var last struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/jobs", `{"kernel":"bfs.kernel2"}`, &last)
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- daemon.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exited %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain within 60s")
	}
	if !strings.Contains(stderr.String(), "vgiwd: drained") {
		t.Errorf("drain footer missing from stderr:\n%s", stderr.String())
	}
	// The final metrics flush is the drain's flight recorder: the queued
	// job must have completed, not been killed.
	if !strings.Contains(stderr.String(), `vgiw_metric{name="vgiwd/jobs_completed"} 2`) {
		t.Errorf("final metrics do not show the drained job completing:\n%s", stderr.String())
	}
}

// buildDaemon compiles the real vgiwd binary into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "vgiwd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon boots the binary and waits for its bound-address announcement.
func startDaemon(t *testing.T, bin string, args ...string) (daemon *exec.Cmd, base string, stderr *bytes.Buffer) {
	t.Helper()
	daemon = exec.Command(bin, args...)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr = new(bytes.Buffer)
	daemon.Stderr = stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { daemon.Process.Kill() }) //nolint:errcheck // backstop
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "vgiwd listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
	return daemon, base, stderr
}

// drainDaemon SIGTERMs the daemon and requires a clean exit.
func drainDaemon(t *testing.T, daemon *exec.Cmd, stderr *bytes.Buffer) {
	t.Helper()
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- daemon.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exited %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not drain within 60s")
	}
}

// TestServeCheckStore is the restart acceptance test for -store-dir: a
// result computed before a SIGTERM restart is served byte-identically (and
// marked "cached": "store") after it, the history API lists it, and the
// drain leaves a vgiw-metrics/v1 "shutdown" snapshot in the store.
func TestServeCheckStore(t *testing.T) {
	bin := buildDaemon(t)
	storeDir := filepath.Join(t.TempDir(), "store")
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "4",
		"-drain-timeout", "30s", "-store-dir", storeDir}

	type jobResp struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Cached string          `json:"cached"`
		Result json.RawMessage `json:"result"`
	}

	// First life: compute a result, then drain.
	daemon, base, stderr := startDaemon(t, bin, args...)
	var first jobResp
	postJSON(t, base+"/v1/jobs?wait=1", `{"kernel":"bfs.kernel1"}`, &first)
	if first.State != "done" || len(first.Result) == 0 {
		t.Fatalf("first life job: %+v", first)
	}
	if first.Cached != "" {
		t.Fatalf("first run claims cached=%q", first.Cached)
	}
	drainDaemon(t, daemon, stderr)
	if !strings.Contains(stderr.String(), "shutdown snapshot persisted") {
		t.Errorf("no shutdown-snapshot note in stderr:\n%s", stderr.String())
	}
	snap, err := os.ReadFile(filepath.Join(storeDir, "shutdown.snapshot.json"))
	if err != nil {
		t.Fatalf("shutdown snapshot: %v", err)
	}
	if !strings.Contains(string(snap), `"schema":"vgiw-metrics/v1"`) {
		t.Errorf("shutdown snapshot is not a vgiw-metrics/v1 document:\n%s", snap)
	}

	// Second life, same store: the same spec must come back from disk,
	// byte-identical.
	daemon2, base2, stderr2 := startDaemon(t, bin, args...)
	var second jobResp
	postJSON(t, base2+"/v1/jobs?wait=1", `{"kernel":"bfs.kernel1"}`, &second)
	if second.State != "done" {
		t.Fatalf("second life job: %+v", second)
	}
	if second.Cached != "store" {
		t.Errorf(`restart hit not marked: cached = %q, want "store"`, second.Cached)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Errorf("result changed across restart:\n%s\nvs\n%s", second.Result, first.Result)
	}
	var hist struct {
		Entries []struct {
			Key    string `json:"key"`
			Kind   string `json:"kind"`
			Kernel string `json:"kernel"`
		} `json:"entries"`
	}
	getJSON(t, base2+"/v1/history", &hist)
	if len(hist.Entries) != 1 || hist.Entries[0].Kind != "kernel" || hist.Entries[0].Kernel != "bfs.kernel1" {
		t.Errorf("history after restart: %+v", hist.Entries)
	}
	drainDaemon(t, daemon2, stderr2)
}

func TestVersionFlag(t *testing.T) {
	// In-process: run() handles -version without touching the network.
	var out strings.Builder
	old := os.Stdout
	r, w, _ := os.Pipe()
	os.Stdout = w
	code := run([]string{"-version"})
	w.Close()
	os.Stdout = old
	io.Copy(&out, r) //nolint:errcheck
	if code != 0 {
		t.Fatalf("-version exited %d", code)
	}
	if !strings.HasPrefix(out.String(), "vgiw ") {
		t.Errorf("-version output %q", out.String())
	}
}

func postJSON(t *testing.T, url, body string, into any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, into)
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, into)
}

func decodeInto(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 400 {
		t.Fatalf("%s %s: %d\n%s", resp.Request.Method, resp.Request.URL, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("bad response %q: %v", raw, err)
	}
}
