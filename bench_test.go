// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§5) plus the ablations called out in DESIGN.md. Each benchmark
// reports the reproduced headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the paper-reproduction numbers alongside simulator throughput. The
// full per-kernel tables come from cmd/vgiw-experiments.
package vgiw

import (
	"testing"

	"vgiw/internal/bench"
	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/engine"
	"vgiw/internal/kernels"
	"vgiw/internal/mem"
	"vgiw/internal/simt"
)

// runSuite executes the full workload registry once per iteration and
// returns the last iteration's runs.
func runSuite(b *testing.B, opt bench.Options) []*bench.KernelRun {
	b.Helper()
	var runs []*bench.KernelRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = bench.RunAll(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	return runs
}

// BenchmarkTable1Config reports the machine configuration table (Table 1).
// There is nothing to measure; the benchmark exists so every table has a
// bench target, and it verifies the config renders.
func BenchmarkTable1Config(b *testing.B) {
	opt := bench.DefaultOptions()
	for i := 0; i < b.N; i++ {
		t := bench.Table1(opt)
		if len(t.Rows) == 0 {
			b.Fatal("empty Table 1")
		}
	}
	b.ReportMetric(108, "units")
}

// BenchmarkTable2Workloads compiles every Table 2 kernel and reports the
// registry size.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range kernels.All() {
			if _, err := spec.Build(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(kernels.All())), "kernels")
}

// BenchmarkFig3LVCvsRF reproduces Figure 3: LVC accesses as a fraction of
// register-file accesses (paper: ~0.1 on average).
func BenchmarkFig3LVCvsRF(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var ratios []float64
	for _, r := range runs {
		ratios = append(ratios, r.LVCOverRF())
	}
	b.ReportMetric(meanOf(ratios), "LVC/RF-ratio")
}

// BenchmarkFig7Speedup reproduces Figure 7: speedup of VGIW over the Fermi
// baseline (paper: >3x average, 0.9-11x range).
func BenchmarkFig7Speedup(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var sp []float64
	best := 0.0
	for _, r := range runs {
		s := r.Speedup()
		sp = append(sp, s)
		if s > best {
			best = s
		}
	}
	b.ReportMetric(bench.Geomean(sp), "x-geomean-speedup")
	b.ReportMetric(best, "x-best-speedup")
}

// BenchmarkFig8SpeedupVsSGMF reproduces Figure 8 (paper: ~1.45x average on
// the SGMF-mappable subset).
func BenchmarkFig8SpeedupVsSGMF(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var sp []float64
	for _, r := range runs {
		if r.SGMF != nil {
			sp = append(sp, r.SpeedupVsSGMF())
		}
	}
	b.ReportMetric(bench.Geomean(sp), "x-geomean-vs-sgmf")
}

// BenchmarkFig9EnergyEfficiency reproduces Figure 9 (paper: 1.75x average).
func BenchmarkFig9EnergyEfficiency(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var eff []float64
	for _, r := range runs {
		eff = append(eff, r.EnergyEff("system"))
	}
	b.ReportMetric(bench.Geomean(eff), "x-geomean-efficiency")
}

// BenchmarkFig10EnergyByLevel reproduces Figure 10: efficiency at system,
// die and core levels (the win concentrates in the compute engine).
func BenchmarkFig10EnergyByLevel(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var sys, die, cor []float64
	for _, r := range runs {
		sys = append(sys, r.EnergyEff("system"))
		die = append(die, r.EnergyEff("die"))
		cor = append(cor, r.EnergyEff("core"))
	}
	b.ReportMetric(bench.Geomean(sys), "x-system")
	b.ReportMetric(bench.Geomean(die), "x-die")
	b.ReportMetric(bench.Geomean(cor), "x-core")
}

// BenchmarkFig11EnergyVsSGMF reproduces Figure 11 (paper: ~1.33x average).
func BenchmarkFig11EnergyVsSGMF(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var eff []float64
	for _, r := range runs {
		if r.SGMF != nil {
			eff = append(eff, r.EnergyEffVsSGMF())
		}
	}
	b.ReportMetric(bench.Geomean(eff), "x-geomean-vs-sgmf")
}

// BenchmarkReconfigOverhead reproduces the §3.2 statistic (paper: 0.18%
// average, <0.1% median).
func BenchmarkReconfigOverhead(b *testing.B) {
	runs := runSuite(b, bench.DefaultOptions())
	var ohs []float64
	for _, r := range runs {
		ohs = append(ohs, r.VGIW.ConfigOverhead()*100)
	}
	b.ReportMetric(meanOf(ohs), "%-mean-overhead")
}

// --- Ablations (DESIGN.md) ---

// ablationSpeedup runs one representative divergent kernel under two VGIW
// configs and reports cycles(B)/cycles(A) — >1 means config A is faster.
func ablationSpeedup(b *testing.B, kernel string, mutate func(*core.Config)) float64 {
	b.Helper()
	spec, ok := kernels.ByName(kernel)
	if !ok {
		b.Fatalf("unknown kernel %s", kernel)
	}
	run := func(cfg core.Config) int64 {
		inst, err := spec.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.RunKernel(inst.Kernel, inst.Launch, inst.Global)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Check(inst.Global); err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := run(core.DefaultConfig())
		cfg := core.DefaultConfig()
		mutate(&cfg)
		variant := run(cfg)
		ratio = float64(variant) / float64(base)
	}
	return ratio
}

// BenchmarkAblationReplication disables basic-block replication.
func BenchmarkAblationReplication(b *testing.B) {
	r := ablationSpeedup(b, "cfd.compute_flux", func(c *core.Config) { c.ReplicationOff = true })
	b.ReportMetric(r, "x-slowdown-no-replication")
}

// BenchmarkAblationCVTBanks drops the CVT from 8 banks to 1.
func BenchmarkAblationCVTBanks(b *testing.B) {
	r := ablationSpeedup(b, "bfs.kernel1", func(c *core.Config) { c.CVTBanks = 1 })
	b.ReportMetric(r, "x-slowdown-1-bank")
}

// BenchmarkAblationLVCSize sweeps the LVC from 64KB down to 16KB.
func BenchmarkAblationLVCSize(b *testing.B) {
	r := ablationSpeedup(b, "hotspot.kernel", func(c *core.Config) { c.LVC.SizeBytes = 16 << 10 })
	b.ReportMetric(r, "x-slowdown-16KB-LVC")
}

// BenchmarkAblationL1Policy runs VGIW with Fermi's write-through L1.
func BenchmarkAblationL1Policy(b *testing.B) {
	r := ablationSpeedup(b, "cfd.time_step", func(c *core.Config) {
		c.Mem = mem.DefaultConfig(mem.WriteThrough)
	})
	b.ReportMetric(r, "x-ratio-writethrough")
}

// BenchmarkAblationTileSize shrinks the CVT budget (tiny thread tiles).
func BenchmarkAblationTileSize(b *testing.B) {
	r := ablationSpeedup(b, "cfd.compute_flux", func(c *core.Config) { c.CVTCapacityBits = 2048 })
	b.ReportMetric(r, "x-slowdown-small-tiles")
}

// BenchmarkAblationOoOThreads forces in-order thread execution (disables
// the reservation buffers' dynamic-dataflow overtaking).
func BenchmarkAblationOoOThreads(b *testing.B) {
	r := ablationSpeedup(b, "bfs.kernel1", func(c *core.Config) {
		c.Engine = engine.Options{InOrderThreads: true}
	})
	b.ReportMetric(r, "x-slowdown-inorder")
}

// BenchmarkAblationSplitForThroughput enables speculative block splitting.
func BenchmarkAblationSplitForThroughput(b *testing.B) {
	r := ablationSpeedup(b, "hotspot.kernel", func(c *core.Config) { c.SplitForThroughput = true })
	b.ReportMetric(r, "x-ratio-split")
}

func meanOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// BenchmarkExtensionWriteCoalescing evaluates the paper's §5 future-work
// item — memory coalescing on the MT-CGRF — implemented as a write-combining
// buffer at the L1 banks. Reports cycles(with)/cycles(without) on a
// store-heavy kernel (<1 = the extension helps).
func BenchmarkExtensionWriteCoalescing(b *testing.B) {
	r := ablationSpeedup(b, "kmeans.invert_mapping", func(c *core.Config) { c.WriteCoalescing = true })
	b.ReportMetric(r, "x-ratio-write-coalescing")
}

// BenchmarkAblationGTOScheduler compares the SIMT baseline's warp scheduling
// policies (related work [11] territory); reported as cycles(GTO)/cycles(LRR).
func BenchmarkAblationGTOScheduler(b *testing.B) {
	spec, _ := kernels.ByName("lud.diagonal")
	run := func(pol simt.SchedPolicy) int64 {
		inst, err := spec.Build(1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := simt.DefaultConfig()
		cfg.Scheduler = pol
		ck, err := compile.Compile(inst.Kernel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := simt.NewMachine(cfg).Run(ck, inst.Launch, inst.Global)
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = float64(run(simt.SchedGTO)) / float64(run(simt.SchedLRR))
	}
	b.ReportMetric(ratio, "x-gto-over-lrr")
}
