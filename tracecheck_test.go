package vgiw

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vgiw/internal/bench"
	"vgiw/internal/kernels"
	"vgiw/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/metrics_golden.txt from the current metric names")

// TestTraceCheck is the `make trace-check` gate: run one small kernel on all
// three backends with tracing on, validate the Chrome trace-event export
// against the schema the viewers require, check the VGIW track shows the
// paper's structure (block-vector spans and reconfiguration windows), and
// diff the metric-name schema against the checked-in golden file.
func TestTraceCheck(t *testing.T) {
	spec, ok := kernels.ByName("bfs.kernel2")
	if !ok || !spec.SGMF {
		t.Fatal("bfs.kernel2 missing or no longer SGMF-mappable; pick another small kernel for trace-check")
	}

	opt := bench.DefaultOptions()
	opt.Scale = 1
	opt.Trace = trace.NewSink(trace.CatAll)
	kr, err := bench.RunOne(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if kr.VGIW == nil || kr.SIMT == nil || kr.SGMF == nil {
		t.Fatalf("trace-check needs all three backends; got vgiw=%v simt=%v sgmf=%v",
			kr.VGIW != nil, kr.SIMT != nil, kr.SGMF != nil)
	}

	// Export + schema validation.
	var buf bytes.Buffer
	if err := opt.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := trace.ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace export fails schema validation: %v", err)
	}
	if n == 0 {
		t.Fatal("trace export contains no events")
	}

	// The VGIW track must show the coalescing structure: block-vector spans
	// (labelled by basic block) and reconfiguration windows on the bbs track.
	checkVGIWTrack(t, buf.Bytes(), spec.Name)

	// Metric-name schema golden. The suffix set (everything after
	// "<kernel>/") is backend-determined, so one three-backend kernel pins
	// the full schema.
	reg := bench.CollectMetrics([]*bench.KernelRun{kr})
	got := strings.Join(bench.MetricSuffixes(reg), "\n") + "\n"
	golden := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestTraceCheck -update-golden .` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("metric name schema changed (run with -update-golden if intended).\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// checkVGIWTrack decodes the trace JSON and asserts the "<kernel>/vgiw"
// process has a "bbs" thread carrying both reconfiguration spans and
// block-vector execution spans.
func checkVGIWTrack(t *testing.T, data []byte, kernel string) {
	t.Helper()
	type record struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Pid  int32           `json:"pid"`
		Tid  int32           `json:"tid"`
		Dur  int64           `json:"dur"`
		Args json.RawMessage `json:"args"`
	}
	var doc struct {
		TraceEvents []record `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	// Resolve the VGIW process and its bbs thread from the name metadata.
	vgiwPid, bbsTid := int32(-1), int32(-1)
	names := func(r record) map[string]string {
		var m map[string]string
		json.Unmarshal(r.Args, &m)
		return m
	}
	for _, r := range doc.TraceEvents {
		if r.Ph == "M" && r.Name == "process_name" && names(r)["name"] == kernel+"/vgiw" {
			vgiwPid = r.Pid
		}
	}
	if vgiwPid < 0 {
		t.Fatalf("no %s/vgiw process in trace", kernel)
	}
	for _, r := range doc.TraceEvents {
		if r.Ph == "M" && r.Name == "thread_name" && r.Pid == vgiwPid && names(r)["name"] == "bbs" {
			bbsTid = r.Tid
		}
	}
	if bbsTid < 0 {
		t.Fatal("vgiw process has no bbs track")
	}
	reconfigs, blockVectors := 0, 0
	for _, r := range doc.TraceEvents {
		if r.Ph != "X" || r.Pid != vgiwPid || r.Tid != bbsTid {
			continue
		}
		if r.Name == "reconfig" {
			reconfigs++
			continue
		}
		var args map[string]int64
		if json.Unmarshal(r.Args, &args) == nil {
			if _, ok := args["threads"]; ok {
				blockVectors++
			}
		}
	}
	if reconfigs == 0 {
		t.Error("bbs track has no reconfiguration spans")
	}
	if blockVectors == 0 {
		t.Error("bbs track has no block-vector spans")
	}
}
