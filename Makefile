GO ?= go

.PHONY: check build test vet race bench bench-record trace-check serve-check fleet-check gate-check analyze lint verify-check fuzz-smoke fmt

# check is the full pre-merge gate, in order: go vet, then the repo's own
# static-analysis suite (`analyze` — determinism taint, lock discipline,
# goroutine lifecycle, plus the migrated vgiwlint checks, all in strict
# suppression-audit mode, a hard failure), then build, the test suite under
# the race detector, the verifier gates (invalid-kernel corpus, checked
# pipelines, a short fuzz smoke), one iteration of each perf-guard
# benchmark (allocs/op regressions show up even at -benchtime=1x), the
# trace/metrics schema gate, the metric regression gate against the
# checked-in baselines, the daemon smoke test, and the fleet sweep gate
# (3 workers, a mid-sweep SIGKILL, byte-identical merged results). Static
# gates run first so a bad tree fails in seconds, not after the benches.
check: vet analyze build race verify-check fuzz-smoke bench trace-check gate-check serve-check fleet-check

# analyze runs cmd/vgiwcheck (internal/analysis) over the whole module in
# strict mode: every finding must be fixed or carry a justified
# //vgiw:allow, and stale suppressions themselves fail the gate. The JSON
# stream is the machine artifact; findings land on stderr for humans.
analyze:
	$(GO) run ./cmd/vgiwcheck -root . -strict-suppressions -json > /dev/null || \
		{ $(GO) run ./cmd/vgiwcheck -root . -strict-suppressions 1>&2; exit 1; }

# lint is the deprecated alias for the three original vgiwlint checks
# (hotpath, nilguard, ctxpoll); `analyze` runs them and more. Kept until
# nothing invokes vgiwlint directly.
lint:
	$(GO) run ./cmd/vgiwlint -root .

# verify-check exercises the kernel-IR verifier: the invalid-kernel corpus
# must produce its exact diagnostics, every registry kernel must compile
# cleanly through the Checked pipelines, and the mutation tests must catch
# deliberately broken passes.
verify-check:
	$(GO) test ./internal/verify/ ./internal/fabric/ -run 'Test'
	$(GO) test ./internal/compile/ -run 'TestBrokenPassCaught|TestCheckedCompileCatchesMutation|TestVerifyGraphCatchesCorruption|TestRegistryPipelinesChecked|TestCheckSelectChain'

# fuzz-smoke runs the parser/verifier/interp fuzzer briefly — enough to
# catch gross regressions without holding up the gate.
fuzz-smoke:
	$(GO) test ./internal/verify/ -run '^$$' -fuzz FuzzKasmVerify -fuzztime 5s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The engine benchmarks run 100 iterations: the memory system's MSHR slabs
# double occasionally as simulated time advances, so a single iteration can
# observe one such allocation; 100 amortize it and the report must read
# 0 allocs/op (TestEngineHotPathZeroAllocDisabledSink is the hard gate).
# Their output is piped through benchrecord -check, which warns (but never
# fails — wall-clock numbers are too noisy for a hard gate) when ns/op
# regresses >10% against the last entry recorded in BENCH_engine.json.
ENGINE_BENCH = BenchmarkEngineHotPath|BenchmarkEngineVector|BenchmarkEngineFast
# The memory-model microbenchmarks (AccessWord vs AccessVector across bank
# counts and conflict rates) ride the same trajectory file; -threads 0 skips
# the threads/sec derivation, which only makes sense for the engine scenarios.
MEM_BENCH = BenchmarkMemAccessWord|BenchmarkMemAccessVector
# The fleet coordinator microbenchmark pushes a 64-job matrix through the
# full dispatch path (ledger, scheduling, HTTP round-trip) against an
# instant stub worker, so ns/op is pure coordination overhead; it rides the
# same trajectory file with -threads 0 (threads/sec is an engine notion).
FLEET_BENCH = BenchmarkCoordinatorDispatch
bench:
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH)' -benchtime 100x ./internal/engine/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_engine.json -threads 512 -check
	$(GO) test -run '^$$' -bench '$(MEM_BENCH)' -benchtime 2000x ./internal/mem/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_engine.json -threads 0 -check
	$(GO) test -run '^$$' -bench '$(FLEET_BENCH)' -benchtime 20x ./internal/fleet/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_engine.json -threads 0 -check
	$(GO) test -run '^$$' -bench BenchmarkRunAllParallel -benchtime 1x ./internal/bench/
	$(GO) test -run '^$$' -bench BenchmarkSuiteColdVsWarm -benchtime 1x ./internal/bench/

# bench-record appends the engine benchmark results (tagged with the current
# commit) to the BENCH_engine.json trajectory. Run it on a quiet machine;
# entries are append-only history.
bench-record:
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH)' -benchtime 100x -count 3 ./internal/engine/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_engine.json -threads 512 -record
	$(GO) test -run '^$$' -bench '$(MEM_BENCH)' -benchtime 20000x -count 3 ./internal/mem/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_engine.json -threads 0 -record
	$(GO) test -run '^$$' -bench '$(FLEET_BENCH)' -benchtime 100x -count 3 ./internal/fleet/ | \
		$(GO) run ./cmd/benchrecord -file BENCH_engine.json -threads 0 -record

# trace-check runs one small kernel on all three backends with tracing on,
# validates the Chrome trace-event export, and diffs the metric-name schema
# against testdata/metrics_golden.txt (regenerate with -update-golden).
trace-check:
	$(GO) test -run TestTraceCheck .

# gate-check is the hard metric regression gate: validate both checked-in
# baseline files, then re-run the suite at BENCH_trace.json's scale and
# require every metric to match exactly (the simulators are deterministic,
# so tolerance 0 is earned; intentional metric changes regenerate the
# baseline with `go run ./cmd/benchgate -baseline BENCH_trace.json -run
# -update`).
gate-check:
	$(GO) run ./cmd/benchgate -validate BENCH_engine.json BENCH_trace.json
	$(GO) run ./cmd/benchgate -baseline BENCH_trace.json -run

# serve-check builds the real vgiwd binary, boots it on an ephemeral port,
# submits/polls/cancels jobs over HTTP, scrapes /metrics, then SIGTERM-drains
# it and requires a clean exit — and, via TestServeCheckStore, boots it with
# a temp -store-dir, restarts it, and requires the stored result to come
# back byte-identical (see cmd/vgiwd/main_test.go).
serve-check:
	$(GO) test -run TestServeCheck ./cmd/vgiwd

# fleet-check is the distributed-sweep acceptance gate: boot three real
# vgiwd workers sharing one result store, push a registry matrix (plus a
# duplicate spec) through vgiwctl, and require the merged report to be
# byte-identical to a single-process RunMatrix with every unique key
# executed exactly once fleet-wide — then repeat with one worker SIGKILLed
# mid-sweep (see cmd/vgiwctl/main_test.go).
fleet-check:
	$(GO) test -run TestFleetCheck ./cmd/vgiwctl

fmt:
	gofmt -l .
