GO ?= go

.PHONY: check build test vet race bench fmt

# check is the full pre-merge gate: static checks, the test suite under the
# race detector, and one iteration of each perf-guard benchmark (allocs/op
# regressions show up even at -benchtime=1x).
check: vet build race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench BenchmarkEngineHotPath -benchtime 1x ./internal/engine/
	$(GO) test -run '^$$' -bench BenchmarkRunAllParallel -benchtime 1x ./internal/bench/
	$(GO) test -run '^$$' -bench BenchmarkSuiteColdVsWarm -benchtime 1x ./internal/bench/

fmt:
	gofmt -l .
