package vgiw_test

import (
	"fmt"

	"vgiw"
)

// ExampleRunVGIW doubles an array on the VGIW machine.
func ExampleRunVGIW() {
	b := vgiw.NewKernelBuilder("double")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	addr := b.Add(b.Param(0), b.Tid())
	b.Store(addr, 0, b.FMul(b.Load(addr, 0), b.ConstF(2)))
	b.Ret()
	kernel := b.MustBuild()

	global := make([]uint32, 64)
	for i := range global {
		global[i] = vgiw.F32(float32(i))
	}
	if _, err := vgiw.RunVGIW(kernel, vgiw.Launch1D(2, 32, 0), global, nil); err != nil {
		panic(err)
	}
	fmt.Println(vgiw.AsF32(global[3]), vgiw.AsF32(global[63]))
	// Output: 6 126
}

// ExampleParseKasm runs a kernel written in textual assembly.
func ExampleParseKasm() {
	kernel, err := vgiw.ParseKasm(`
kernel addone params=1 shared=0
@0 entry:
  r0 = tid
  r1 = param 0
  r2 = add r1 r0
  r3 = ld r2
  r4 = add r3 r0
  st r2 r4
  jmp @1
@1 exit:
  ret
`)
	if err != nil {
		panic(err)
	}
	global := []uint32{10, 10, 10, 10}
	if err := vgiw.Interpret(kernel, vgiw.Launch1D(1, 4, 0), global); err != nil {
		panic(err)
	}
	fmt.Println(global)
	// Output: [10 11 12 13]
}

// ExampleWorkloads lists a few of the Table 2 benchmark kernels.
func ExampleWorkloads() {
	for _, w := range vgiw.Workloads()[:3] {
		fmt.Printf("%s (%s)\n", w.Name, w.App)
	}
	// Output:
	// bpnn.adjust_weights (BPNN)
	// bpnn.layerforward (BPNN)
	// bfs.kernel1 (BFS)
}
