package vgiw

import "testing"

// buildScale is the doc-comment quickstart kernel: x[i] *= 2.
func buildScale() *Kernel {
	b := NewKernelBuilder("scale")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	addr := b.Add(b.Param(0), b.Tid())
	v := b.Load(addr, 0)
	b.Store(addr, 0, b.FMul(v, b.ConstF(2)))
	b.Ret()
	return b.MustBuild()
}

func scaleInput(n int) []uint32 {
	g := make([]uint32, n)
	for i := range g {
		g[i] = F32(float32(i))
	}
	return g
}

func checkDoubled(t *testing.T, got []uint32, arch string) {
	t.Helper()
	for i := range got {
		if want := F32(2 * float32(i)); got[i] != want {
			t.Fatalf("%s: x[%d] = %v, want %v", arch, i, AsF32(got[i]), AsF32(want))
		}
	}
}

// TestFacadeRunsAllMachines drives the public API end to end: build a
// kernel, run it on all three machines and the interpreter, compare.
func TestFacadeRunsAllMachines(t *testing.T) {
	const n = 256
	launch := Launch1D(n/32, 32, 0)

	g := scaleInput(n)
	if err := Interpret(buildScale(), launch, g); err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, g, "interp")

	g = scaleInput(n)
	rv, err := RunVGIW(buildScale(), launch, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, g, "vgiw")
	if rv.Cycles <= 0 {
		t.Error("vgiw reported no cycles")
	}

	g = scaleInput(n)
	rs, err := RunSIMT(buildScale(), launch, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, g, "simt")
	if rs.WarpInstrs == 0 {
		t.Error("simt reported no instructions")
	}

	g = scaleInput(n)
	rg, err := RunSGMF(buildScale(), launch, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, g, "sgmf")
	if rg.Replicas < 1 {
		t.Error("sgmf placed no replicas")
	}
}

func TestFacadeKasmRoundTrip(t *testing.T) {
	k := buildScale()
	text := PrintKasm(k)
	k2, err := ParseKasm(text)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	g := scaleInput(n)
	if err := Interpret(k2, Launch1D(2, 32, 0), g); err != nil {
		t.Fatal(err)
	}
	checkDoubled(t, g, "kasm")
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) < 13 {
		t.Fatalf("only %d workloads registered", len(Workloads()))
	}
	w, ok := WorkloadByName("nn.euclid")
	if !ok {
		t.Fatal("nn.euclid missing")
	}
	run, err := RunExperiment(w, DefaultExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if run.Speedup() <= 0 {
		t.Error("speedup not computed")
	}
	if run.SGMF == nil {
		t.Error("nn.euclid should be SGMF-mappable")
	}
}
