module vgiw

go 1.22
