// Package fleet is the distributed sweep tier: a coordinator that shards
// bench.JobSpec matrices across a fleet of vgiwd workers over the existing
// HTTP/JSON job API and merges the per-kernel results into one report that
// is byte-identical (in canonical, host-telemetry-free form) to a
// single-process bench.RunMatrix over the same matrix.
//
// The package has three layers:
//
//   - Client: a reusable Go client for one vgiwd worker — submit/poll/
//     cancel with the tenant header, 429 + Retry-After honored via jittered
//     exponential backoff, per-job deadlines via context, /readyz probing,
//     and /metrics scraping.
//   - Coordinator: work-stealing dispatch over per-worker bounded queues
//     with per-tenant quotas and fair round-robin admission, worker
//     lifecycle tracking with requeue-on-death and a capped per-job retry
//     budget, and a fleet-wide exactly-once key ledger (plus a shared
//     result store, so disk hits from any worker short-circuit dispatch).
//   - Observability: a fleet metrics registry (dispatched/stolen/retried/
//     deduped/... counters, per-tenant queue depths) and a combined history
//     view over the shared store.
package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/server"
)

// Backoff shapes the client's retry schedule for 429 (and other retriable)
// responses: exponential from Base, capped at Max, with the delay spread
// over ±Jitter/2 of itself so a fleet of clients rejected together does not
// retry together. A Retry-After hint from the server replaces the computed
// delay when it is longer (still capped at Max — the schedule must stay
// responsive to cancellation tests and drains).
type Backoff struct {
	Base   time.Duration // first retry delay (0 = 100ms)
	Max    time.Duration // delay cap (0 = 5s)
	Jitter float64       // fraction of the delay randomized, in [0,1] (0 = deterministic)
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	return b
}

// Delay computes the attempt-th (0-based) retry delay, folding in an
// optional Retry-After hint from the server.
func (b Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		j := time.Duration(float64(d) * b.Jitter)
		d += time.Duration(rand.Int63n(int64(j)+1)) - j/2
	}
	if d < 0 {
		d = 0
	}
	return d
}

// APIError is a non-2xx response from a worker, carrying the HTTP status
// and the server's error message.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fleet: worker status %d: %s", e.Status, e.Msg)
}

// Permanent reports whether err is a worker response that retrying cannot
// fix: a 4xx other than 408 (request timeout) and 429 (overload). Bad specs
// and unknown kernels stay bad on every worker; overload and transport
// errors do not.
func Permanent(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Status >= 400 && ae.Status < 500 &&
		ae.Status != http.StatusRequestTimeout && ae.Status != http.StatusTooManyRequests
}

// Client talks to one vgiwd worker. The zero value is not usable; set Base.
// Methods are safe for concurrent use.
type Client struct {
	Base    string // worker base URL, e.g. "http://127.0.0.1:8077"
	Tenant  string // X-VGIW-Tenant attached to submissions ("" = server default)
	Backoff Backoff
	// HTTP is the underlying client (nil = http.DefaultClient). Leave its
	// Timeout zero: submissions long-poll with ?wait=1 and are bounded by
	// the per-call context instead.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response; non-2xx statuses
// come back as *APIError with the server's message.
func (c *Client) do(req *http.Request, into any) error {
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	return c.decode(resp, into)
}

// Submit posts one job. With wait, the call long-polls until the job is
// terminal (or ctx expires — the per-job deadline). 429 responses are
// retried here with the backoff schedule, honoring the server's Retry-After
// in both its seconds and HTTP-date forms; every other failure is returned
// to the caller, which owns requeue/retry policy across workers. Each retry
// iteration is a whole HTTP request plus a backoff sleep, so the per-
// iteration ctx check is coarse.
//
//vgiw:coarsepoll
func (c *Client) Submit(ctx context.Context, spec bench.JobSpec, wait bool) (*server.JobView, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	url := c.Base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.Tenant != "" {
			req.Header.Set(server.TenantHeader, c.Tenant)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			hint, _ := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			select {
			case <-time.After(c.Backoff.Delay(attempt, hint)):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		var v server.JobView
		if err := c.decode(resp, &v); err != nil {
			return nil, err
		}
		return &v, nil
	}
}

// decode drains and parses an already-issued response; non-2xx statuses
// come back as *APIError with the server's message.
func (c *Client) decode(resp *http.Response, into any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var ae struct {
			Error string `json:"error"`
		}
		json.Unmarshal(raw, &ae) //nolint:errcheck // best effort; fall back to raw body
		msg := ae.Error
		if msg == "" {
			msg = strings.TrimSpace(string(raw))
		}
		return &APIError{Status: resp.StatusCode, Msg: msg}
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(raw, into)
}

// Job fetches one job's status; with wait it long-polls until terminal.
func (c *Client) Job(ctx context.Context, id string, wait bool) (*server.JobView, error) {
	url := c.Base + "/v1/jobs/" + id
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	var v server.JobView
	if err := c.do(req, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Cancel detaches a job by ID.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Ready probes /readyz: nil means the worker is up and not draining.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Msg: "not ready"}
	}
	return nil
}

// Metrics scrapes the worker's Prometheus exposition into a flat
// name → value map (vgiw_metric samples only — counters and gauges; the
// histogram families are not needed for fleet accounting).
func (c *Client) Metrics(ctx context.Context) (map[string]uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Msg: "metrics scrape failed"}
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics reads `vgiw_metric{name="..."} N` samples out of a
// Prometheus text exposition.
func ParseMetrics(r io.Reader) (map[string]uint64, error) {
	out := make(map[string]uint64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, `vgiw_metric{name="`)
		if !ok {
			continue
		}
		name, rest, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			continue // histogram means etc. are not plain integers
		}
		out[name] = v
	}
	return out, sc.Err()
}
