package fleet

import (
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		// Seconds form (what vgiwd emits).
		{"0", 0, true},
		{"1", time.Second, true},
		{"120", 2 * time.Minute, true},
		{" 3 ", 3 * time.Second, true}, // whitespace-trimmed
		{"999999999999999999999", 24 * time.Hour, true}, // capped, not overflowed

		// HTTP-date form.
		{"Sat, 08 Aug 2026 12:00:05 GMT", 5 * time.Second, true},
		{"Sat, 08 Aug 2026 11:59:00 GMT", 0, true}, // past date clamps to now
		{"Saturday, 08-Aug-26 12:00:02 GMT", 2 * time.Second, true}, // RFC 850 form

		// Malformed values: fall back to the client's own backoff.
		{"", 0, false},
		{"-1", 0, false},
		{"1.5", 0, false},
		{"3s", 0, false},
		{"soon", 0, false},
		{"Sat, 99 Aug 2026 12:00:05 GMT", 0, false},
		{"18446744073709551616x", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
