package fleet

import (
	"testing"

	"vgiw/internal/leaktest"
)

// TestMain gates the whole suite on goroutine hygiene: coordinator slots,
// probe loops, and stub-worker servers started by any test here must all
// be gone (within leaktest's grace period) once the last test finishes.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
