package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/server"
)

// TestSubmitRetries429 pins the client's overload handling: 429 responses
// are retried in place (honoring Retry-After), the tenant header rides every
// attempt, and the eventual 2xx is decoded into a JobView.
func TestSubmitRetries429(t *testing.T) {
	var attempts atomic.Int64
	var tenants atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(server.TenantHeader) == "sweep-a" {
			tenants.Add(1)
		}
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`)) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(server.JobView{ID: "j1", State: server.StateDone}) //nolint:errcheck
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, Tenant: "sweep-a", Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}}
	v, err := c.Submit(context.Background(), bench.JobSpec{Kernel: "bfs.kernel1"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j1" || v.State != server.StateDone {
		t.Errorf("view = %+v", v)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 429s then success)", got)
	}
	if got := tenants.Load(); got != 3 {
		t.Errorf("tenant header on %d/3 attempts", got)
	}
}

// TestSubmit429RespectsContext pins that a permanently-overloaded worker
// cannot hold Submit past its context deadline.
func TestSubmit429RespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &Client{Base: ts.URL}
	_, err := c.Submit(ctx, bench.JobSpec{Kernel: "bfs.kernel1"}, false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context deadline", err)
	}
}

// TestDecodeAPIError pins that non-2xx responses surface the server's error
// envelope as *APIError, and that Permanent classifies statuses correctly.
func TestDecodeAPIError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"spec: unknown kernel \"nope\""}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL}
	_, err := c.Submit(context.Background(), bench.JobSpec{Kernel: "nope"}, false)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusBadRequest || !strings.Contains(ae.Msg, "unknown kernel") {
		t.Errorf("APIError = %+v", ae)
	}
	if !Permanent(err) {
		t.Error("400 should be permanent")
	}
	for status, perm := range map[int]bool{
		400: true, 404: true, 408: false, 429: false, 500: false, 503: false,
	} {
		if got := Permanent(&APIError{Status: status}); got != perm {
			t.Errorf("Permanent(%d) = %v, want %v", status, got, perm)
		}
	}
	if Permanent(errors.New("connection refused")) {
		t.Error("transport errors are never permanent")
	}
}

// TestBackoffDelay pins the deterministic schedule: exponential growth from
// Base capped at Max, with a longer Retry-After hint replacing the computed
// delay (still capped).
func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	for _, c := range []struct {
		attempt int
		hint    time.Duration
		want    time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{1, 0, 200 * time.Millisecond},
		{3, 0, 800 * time.Millisecond},
		{4, 0, time.Second},  // capped
		{10, 0, time.Second}, // stays capped, no overflow
		{0, 500 * time.Millisecond, 500 * time.Millisecond}, // hint longer: honored
		{3, 500 * time.Millisecond, 800 * time.Millisecond}, // hint shorter: schedule wins
		{0, time.Minute, time.Second},                       // hint beyond cap: capped
	} {
		if got := b.Delay(c.attempt, c.hint); got != c.want {
			t.Errorf("Delay(%d, %v) = %v, want %v", c.attempt, c.hint, got, c.want)
		}
	}
	// Jitter keeps the delay non-negative and near the base value.
	jb := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := jb.Delay(0, 0)
		if d < 0 || d > 20*time.Millisecond {
			t.Fatalf("jittered delay %v out of range", d)
		}
	}
}

// TestParseMetrics pins the exposition scrape: vgiw_metric samples parse,
// histogram lines and malformed values are skipped.
func TestParseMetrics(t *testing.T) {
	const exp = `# HELP vgiw_metric simulation counters
# TYPE vgiw_metric gauge
vgiw_metric{name="vgiwd/jobs_admitted"} 12
vgiw_metric{name="vgiwd/runs_executed"} 7
vgiw_hist_sum{name="vgiwd/job_ms"} 17.5
vgiw_metric{name="broken"} notanumber
`
	m, err := ParseMetrics(strings.NewReader(exp))
	if err != nil {
		t.Fatal(err)
	}
	if m["vgiwd/jobs_admitted"] != 12 || m["vgiwd/runs_executed"] != 7 {
		t.Errorf("parsed = %v", m)
	}
	if _, ok := m["broken"]; ok {
		t.Error("malformed sample should be skipped")
	}
	if len(m) != 2 {
		t.Errorf("got %d samples, want 2: %v", len(m), m)
	}
}
