package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/server"
	"vgiw/internal/store"
	"vgiw/internal/trace"
)

// Config sizes the coordinator.
type Config struct {
	// Workers are the vgiwd base URLs the matrix is sharded across.
	Workers []string
	// Tenant is the default tenant for tasks that carry none.
	Tenant string
	// TenantQuota caps how many of one tenant's jobs may be admitted to
	// worker queues (queued + in flight) at once, so one tenant's burst
	// cannot starve the others. 0 = unlimited.
	TenantQuota int
	// SlotsPerWorker is the number of concurrent in-flight jobs per worker
	// (0 = 2 — matching vgiwd's default worker pool).
	SlotsPerWorker int
	// QueuePerWorker bounds each worker's local dispatch queue, beyond the
	// in-flight slots (0 = 2×slots). Bounded queues keep the sharding
	// honest: a slow worker's backlog stays small enough to steal.
	QueuePerWorker int
	// RetryBudget is how many times one job may be re-dispatched after its
	// first attempt before it is failed (0 = 3).
	RetryBudget int
	// JobTimeout is the per-job client-side deadline covering one dispatch
	// attempt, queue wait on the worker included (0 = 2m).
	JobTimeout time.Duration
	// ProbeInterval is the /readyz probe cadence per worker (0 = 250ms);
	// ProbeFailures consecutive failures mark a worker dead (0 = 2). A dead
	// worker's queue is requeued and a recovered probe revives it.
	ProbeInterval time.Duration
	ProbeFailures int
	// StoreDir is the fleet-shared result store. When set, the coordinator
	// consults it before every dispatch, so a result persisted by ANY
	// worker (including one that died before answering) short-circuits
	// re-execution. Point the workers' -store-dir at the same directory.
	StoreDir string
	// Backoff shapes the per-worker clients' 429 retry schedule.
	Backoff Backoff
	// Logf, when non-nil, receives one line per notable fleet event
	// (dispatch outcomes, steals, deaths, requeues) for progress reporting.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Tenant == "" {
		c.Tenant = server.DefaultTenant
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = 2
	}
	if c.QueuePerWorker <= 0 {
		c.QueuePerWorker = 2 * c.SlotsPerWorker
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 2
	}
	return c
}

// Task is one cell of the sweep matrix: a job spec plus the tenant it is
// accounted to.
type Task struct {
	Spec   bench.JobSpec `json:"spec"`
	Tenant string        `json:"tenant,omitempty"`
}

// Task/ledger states.
const (
	statePending = iota
	stateQueued
	stateInflight
	stateDone
	stateFailed
)

// entry is one unique content key's ledger record. Duplicate tasks in the
// matrix attach to one entry — the fleet-wide analogue of the daemon's
// singleflight — so each key is dispatched at most once at a time and
// completed at most once overall.
type entry struct {
	key    string        // store.Key of the normalized spec
	spec   bench.JobSpec // normalized
	tenant string        // tenant charged for the dispatch (first submitter)
	tasks  []int         // input task indexes sharing this key

	state    int
	charged  bool   // counted against tenant quota (admitted to a worker queue)
	attempts int    // dispatch attempts so far
	worker   string // URL that produced the result
	cached   string // "" (real execution), "store" (worker disk), "disk" (coordinator short-circuit)
	result   json.RawMessage
	err      error
}

// TaskResult reports one input task's outcome, in input order.
type TaskResult struct {
	Index    int    `json:"index"`
	Key      string `json:"key"`
	Kernel   string `json:"kernel,omitempty"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"` // "done" or "failed"
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
	// Cached is "" for a real execution, "store" when the worker served its
	// shared-store copy, "disk" when the coordinator short-circuited
	// dispatch from the shared store, and "ledger" for a duplicate key that
	// attached to another task's entry.
	Cached string          `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"-"`
}

// Result is one sweep's outcome.
type Result struct {
	Tasks  []TaskResult
	Failed int
	// UniqueKeys is the ledger size: the number of distinct content keys in
	// the matrix — the fleet-wide exactly-once denominator.
	UniqueKeys int
}

// Coordinator shards a JobSpec matrix across a fleet of vgiwd workers. One
// coordinator runs one sweep at a time; its metrics registry accumulates
// across sweeps.
type Coordinator struct {
	cfg     Config
	reg     *trace.Registry
	st      *store.Store
	workers []*worker

	mu      sync.Mutex
	cond    *sync.Cond
	running bool
	stopped bool

	// Sweep state, guarded by mu.
	entries     map[string]*entry
	tenantOrder []string
	tenantQ     map[string][]*entry
	rr          int
	admitted    map[string]int // per-tenant jobs in worker custody
	outstanding int            // non-terminal entries
}

// worker is one vgiwd instance's dispatch state.
type worker struct {
	name   string // metric label: w0, w1, ...
	url    string
	client *Client

	// Guarded by the coordinator mutex.
	queue      []*entry
	healthy    bool
	probeFails int
}

// NewCoordinator builds a coordinator for the given fleet.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	if !server.ValidTenant(cfg.Tenant) {
		return nil, fmt.Errorf("fleet: invalid tenant %q", cfg.Tenant)
	}
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, reg: trace.NewRegistry(), st: st}
	c.cond = sync.NewCond(&c.mu)
	for i, url := range cfg.Workers {
		c.workers = append(c.workers, &worker{
			name:    fmt.Sprintf("w%d", i),
			url:     url,
			healthy: true,
			client:  &Client{Base: url, Backoff: cfg.Backoff},
		})
	}
	// Pre-touch the counters the chaos gate pins, so they are explicit
	// zeros on a quiet sweep.
	for _, name := range []string{
		"fleet/jobs_total", "fleet/jobs_deduped", "fleet/jobs_dispatched",
		"fleet/jobs_completed", "fleet/jobs_executed", "fleet/jobs_failed",
		"fleet/jobs_retried", "fleet/jobs_requeued", "fleet/jobs_stolen",
		"fleet/store_hits", "fleet/worker_store_hits",
		"fleet/worker_deaths", "fleet/worker_revivals",
	} {
		c.reg.Add(name, 0)
	}
	return c, nil
}

// Metrics exposes the coordinator's registry (the /metrics view).
func (c *Coordinator) Metrics() *trace.Registry { return c.reg }

// Store exposes the shared result store (nil when StoreDir is empty) for
// the combined history view.
func (c *Coordinator) Store() *store.Store { return c.st }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run shards the matrix across the fleet and blocks until every unique key
// is terminal or ctx is done. The returned Result reports per-task outcomes
// in input order; the error is non-nil when ctx expired or any task failed
// permanently.
func (c *Coordinator) Run(ctx context.Context, tasks []Task) (*Result, error) {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return nil, errors.New("fleet: coordinator already running a sweep")
	}
	c.running = true
	c.stopped = false
	c.entries = make(map[string]*entry)
	c.tenantOrder = nil
	c.tenantQ = make(map[string][]*entry)
	c.rr = 0
	c.admitted = make(map[string]int)
	c.outstanding = 0

	// Build the ledger: normalize, key, dedup. Order within a tenant is
	// matrix order; tenants round-robin at admission.
	order := make([]*entry, 0, len(tasks))
	badTask := make([]error, len(tasks))
	for i, t := range tasks {
		tenant := t.Tenant
		if tenant == "" {
			tenant = c.cfg.Tenant
		}
		spec := t.Spec
		if err := spec.Normalize(); err != nil {
			badTask[i] = err
			continue
		}
		if !server.ValidTenant(tenant) {
			badTask[i] = fmt.Errorf("fleet: invalid tenant %q", tenant)
			continue
		}
		key := store.Key(spec)
		c.reg.Add("fleet/jobs_total", 1)
		if e, ok := c.entries[key]; ok {
			e.tasks = append(e.tasks, i)
			c.reg.Add("fleet/jobs_deduped", 1)
			continue
		}
		e := &entry{key: key, spec: spec, tenant: tenant, tasks: []int{i}, state: statePending}
		c.entries[key] = e
		order = append(order, e)
		if _, ok := c.tenantQ[tenant]; !ok {
			c.tenantOrder = append(c.tenantOrder, tenant)
		}
		c.tenantQ[tenant] = append(c.tenantQ[tenant], e)
		c.outstanding++
	}
	uniqueKeys := len(order)
	c.fillLocked()
	c.mu.Unlock()

	// The probe and slot goroutines live for this sweep.
	sweepCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *worker) { defer wg.Done(); c.probe(sweepCtx, w) }(w)
		for s := 0; s < c.cfg.SlotsPerWorker; s++ {
			wg.Add(1)
			go func(w *worker) { defer wg.Done(); c.slot(sweepCtx, w) }(w)
		}
	}

	// Propagate ctx cancellation into the cond so waiters wake.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-sweepCtx.Done()
		c.mu.Lock()
		c.stopped = true
		c.cond.Broadcast()
		c.mu.Unlock()
	}()

	c.mu.Lock()
	for c.outstanding > 0 && !c.stopped {
		c.cond.Wait()
	}
	interrupted := c.outstanding > 0
	c.mu.Unlock()

	cancel()
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.running = false
	res := &Result{Tasks: make([]TaskResult, len(tasks)), UniqueKeys: uniqueKeys}
	var errs []error
	for i, t := range tasks {
		tr := TaskResult{Index: i, Kernel: t.Spec.Kernel, Tenant: t.Tenant}
		if tr.Tenant == "" {
			tr.Tenant = c.cfg.Tenant
		}
		if badTask[i] != nil {
			tr.State = "failed"
			tr.Error = badTask[i].Error()
			res.Failed++
			errs = append(errs, fmt.Errorf("task %d: %w", i, badTask[i]))
			res.Tasks[i] = tr
			continue
		}
		spec := t.Spec
		spec.Normalize() //nolint:errcheck // validated above
		e := c.entries[store.Key(spec)]
		tr.Key = e.key
		tr.Worker = e.worker
		tr.Attempts = e.attempts
		tr.Cached = e.cached
		if i != e.tasks[0] {
			tr.Cached = "ledger" // duplicate key: rode another task's entry
		}
		switch e.state {
		case stateDone:
			tr.State = "done"
			tr.Result = e.result
		default:
			tr.State = "failed"
			msg := "sweep interrupted before dispatch"
			if e.err != nil {
				msg = e.err.Error()
			}
			tr.Error = msg
			res.Failed++
			if i == e.tasks[0] {
				errs = append(errs, fmt.Errorf("task %d (%s): %s", i, t.Spec.Kernel, msg))
			}
		}
		res.Tasks[i] = tr
	}
	if interrupted {
		errs = append(errs, ctx.Err())
	}
	return res, errors.Join(errs...)
}

// fillLocked admits pending entries into worker queues: one task per tenant
// per round-robin turn, each to the shortest healthy queue with room,
// respecting per-tenant quotas. Called whenever capacity or work appears.
func (c *Coordinator) fillLocked() {
	for {
		n := len(c.tenantOrder)
		if n == 0 {
			return
		}
		admitted := false
		for i := 0; i < n; i++ {
			tenant := c.tenantOrder[(c.rr+i)%n]
			q := c.tenantQ[tenant]
			if len(q) == 0 {
				continue
			}
			if c.cfg.TenantQuota > 0 && c.admitted[tenant] >= c.cfg.TenantQuota {
				continue
			}
			w := c.pickWorkerLocked()
			if w == nil {
				return // no queue capacity anywhere; next completion refills
			}
			e := q[0]
			c.tenantQ[tenant] = q[1:]
			e.state = stateQueued
			e.charged = true
			w.queue = append(w.queue, e)
			c.admitted[tenant]++
			c.rr = (c.rr + i + 1) % n
			c.reg.Set("fleet/tenant_pending/"+tenant, uint64(len(c.tenantQ[tenant])))
			admitted = true
			break
		}
		if !admitted {
			return
		}
		c.cond.Broadcast()
	}
}

// pickWorkerLocked returns the healthy worker with the shortest non-full
// queue, or nil.
func (c *Coordinator) pickWorkerLocked() *worker {
	var best *worker
	for _, w := range c.workers {
		if !w.healthy || len(w.queue) >= c.cfg.QueuePerWorker {
			continue
		}
		if best == nil || len(w.queue) < len(best.queue) {
			best = w
		}
	}
	return best
}

// takeLocked pops the next entry for one of w's slots: its own queue first,
// else stolen from the back of the longest other healthy queue.
func (c *Coordinator) takeLocked(w *worker) *entry {
	if !w.healthy {
		return nil // a dead worker's slots idle until the prober revives it
	}
	if len(w.queue) > 0 {
		e := w.queue[0]
		w.queue = w.queue[1:]
		c.fillLocked()
		return e
	}
	var victim *worker
	for _, v := range c.workers {
		if v == w || !v.healthy || len(v.queue) == 0 {
			continue
		}
		if victim == nil || len(v.queue) > len(victim.queue) {
			victim = v
		}
	}
	if victim == nil {
		return nil
	}
	e := victim.queue[len(victim.queue)-1]
	victim.queue = victim.queue[:len(victim.queue)-1]
	c.reg.Add("fleet/jobs_stolen", 1)
	c.logf("fleet: %s stole %s (%s) from %s", w.name, e.key[:12], e.spec.Kernel, victim.name)
	c.fillLocked()
	return e
}

// slot is one worker's dispatch loop: claim a job (own queue, else steal),
// run it to a terminal state, repeat. Each iteration is a whole HTTP job
// round-trip, so polling ctx once per iteration is coarse.
//
//vgiw:coarsepoll
func (c *Coordinator) slot(ctx context.Context, w *worker) {
	for ctx.Err() == nil {
		c.mu.Lock()
		var e *entry
		for {
			if c.stopped || c.outstanding == 0 {
				c.mu.Unlock()
				return
			}
			if e = c.takeLocked(w); e != nil {
				break
			}
			c.cond.Wait()
		}
		e.state = stateInflight
		c.mu.Unlock()
		c.dispatch(ctx, w, e)
	}
}

// dispatch runs one entry to a terminal state or requeues it: shared-store
// short-circuit first, then a submit-and-wait against w with the per-job
// deadline, then outcome classification (done / permanent failure /
// retriable with budget).
func (c *Coordinator) dispatch(ctx context.Context, w *worker, e *entry) {
	// Disk hits from any worker short-circuit dispatch: a key persisted by
	// a worker that died before answering is served from the shared store
	// on retry instead of re-executing.
	if c.st != nil {
		if ent, err := c.st.Get(e.key); err == nil && ent != nil {
			c.mu.Lock()
			c.reg.Add("fleet/store_hits", 1)
			c.finishLocked(e, w, "disk", ent.Result, nil)
			c.mu.Unlock()
			return
		}
	}

	c.reg.Add("fleet/jobs_dispatched", 1)
	c.reg.Add("fleet/worker_dispatched/"+w.name, 1)
	jctx, cancel := context.WithTimeout(ctx, c.cfg.JobTimeout)
	cl := *w.client // shallow copy to stamp the entry's tenant on the submit
	cl.Tenant = e.tenant
	view, err := cl.Submit(jctx, e.spec, true)
	if err == nil && !view.Terminal() {
		// wait=1 normally returns terminal; poll defensively if not.
		view, err = c.pollTerminal(jctx, w, view.ID)
	}
	cancel()

	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil && view.State == server.StateDone:
		if view.Cached == "store" {
			c.reg.Add("fleet/worker_store_hits", 1)
		} else {
			c.reg.Add("fleet/jobs_executed", 1)
		}
		c.finishLocked(e, w, view.Cached, view.Result, nil)
	case err == nil && view.State == server.StateFailed:
		c.finishLocked(e, w, "", nil, fmt.Errorf("fleet: %s failed on %s: %s", e.spec.Kernel, w.url, view.Reason))
	default:
		// Cancelled on the worker (its deadline or drain), a transport
		// error, a 5xx, or our own job deadline: retriable.
		if err == nil {
			err = fmt.Errorf("fleet: job %s on %s: %s", view.ID, w.url, view.State)
		}
		if Permanent(err) {
			c.finishLocked(e, w, "", nil, err)
			return
		}
		var ae *APIError
		if !errors.As(err, &ae) && ctx.Err() == nil {
			// Transport-level failure: treat as probe evidence so a killed
			// worker is detected at dispatch speed, not probe cadence.
			w.probeFails++
			if w.healthy && w.probeFails >= c.cfg.ProbeFailures {
				c.killLocked(w)
			}
		}
		c.requeueLocked(e, w, err)
	}
}

// pollTerminal polls one job until it reaches a terminal state. Each
// iteration is an HTTP status fetch plus a sleep — coarse by construction.
//
//vgiw:coarsepoll
func (c *Coordinator) pollTerminal(ctx context.Context, w *worker, id string) (*server.JobView, error) {
	for {
		view, err := w.client.Job(ctx, id, true)
		if err != nil {
			return nil, err
		}
		if view.Terminal() {
			return view, nil
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// finishLocked makes an entry terminal and releases its quota charge.
func (c *Coordinator) finishLocked(e *entry, w *worker, cached string, result json.RawMessage, err error) {
	if e.charged {
		e.charged = false
		c.admitted[e.tenant]--
	}
	e.attempts++
	e.worker = w.url
	e.cached = cached
	e.result = result
	e.err = err
	if err == nil {
		e.state = stateDone
		c.reg.Add("fleet/jobs_completed", 1)
		c.logf("fleet: done %s (%s) on %s cached=%q attempts=%d", e.key[:12], e.spec.Kernel, w.name, cached, e.attempts)
	} else {
		e.state = stateFailed
		c.reg.Add("fleet/jobs_failed", 1)
		c.logf("fleet: FAILED %s (%s): %v", e.key[:12], e.spec.Kernel, err)
	}
	c.outstanding--
	c.fillLocked()
	c.cond.Broadcast()
}

// requeueLocked sends a failed attempt back to the front of its tenant's
// pending queue — unless its retry budget is spent, which fails it.
func (c *Coordinator) requeueLocked(e *entry, w *worker, cause error) {
	e.attempts++
	if e.attempts > c.cfg.RetryBudget {
		e.attempts-- // finishLocked re-counts the final attempt
		c.finishLocked(e, w, "", nil, fmt.Errorf("fleet: retry budget (%d) exhausted: %w", c.cfg.RetryBudget, cause))
		return
	}
	if e.charged {
		e.charged = false
		c.admitted[e.tenant]--
	}
	e.state = statePending
	c.tenantQ[e.tenant] = append([]*entry{e}, c.tenantQ[e.tenant]...)
	c.reg.Add("fleet/jobs_retried", 1)
	c.reg.Set("fleet/tenant_pending/"+e.tenant, uint64(len(c.tenantQ[e.tenant])))
	c.logf("fleet: retry %s (%s) after %s: %v (attempt %d/%d)",
		e.key[:12], e.spec.Kernel, w.name, cause, e.attempts, c.cfg.RetryBudget)
	c.fillLocked()
	c.cond.Broadcast()
}

// killLocked marks a worker dead and requeues everything it held.
func (c *Coordinator) killLocked(w *worker) {
	w.healthy = false
	c.reg.Add("fleet/worker_deaths", 1)
	c.logf("fleet: worker %s (%s) marked dead; requeueing %d queued jobs", w.name, w.url, len(w.queue))
	for _, e := range w.queue {
		if e.charged {
			e.charged = false
			c.admitted[e.tenant]--
		}
		e.state = statePending
		c.tenantQ[e.tenant] = append(c.tenantQ[e.tenant], e)
		c.reg.Add("fleet/jobs_requeued", 1)
		c.reg.Set("fleet/tenant_pending/"+e.tenant, uint64(len(c.tenantQ[e.tenant])))
	}
	w.queue = nil
	c.fillLocked()
	c.cond.Broadcast()
}

// probe tracks one worker's lifecycle over /readyz: consecutive failures
// kill it (requeueing its queue), a success revives it. Iterations are
// ticker-paced HTTP probes, so the ctx polling is coarse.
//
//vgiw:coarsepoll
func (c *Coordinator) probe(ctx context.Context, w *worker) {
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeInterval*4)
		err := w.client.Ready(pctx)
		cancel()
		c.mu.Lock()
		if err == nil {
			w.probeFails = 0
			if !w.healthy {
				w.healthy = true
				c.reg.Add("fleet/worker_revivals", 1)
				c.logf("fleet: worker %s (%s) revived", w.name, w.url)
				c.fillLocked()
				c.cond.Broadcast()
			}
		} else if ctx.Err() == nil {
			w.probeFails++
			if w.healthy && w.probeFails >= c.cfg.ProbeFailures {
				c.killLocked(w)
			}
		}
		c.mu.Unlock()
	}
}

// MergedReport merges a successful kernel-matrix sweep into one canonical
// suite report: per-task rows in matrix order, geomeans recomputed, host
// telemetry stripped — byte-identical to a single-process
// bench.RunMatrix + BuildJSON over the same matrix, in canonical form.
func (r *Result) MergedReport() (bench.JSONReport, error) {
	rows := make([]bench.JSONRun, 0, len(r.Tasks))
	scale := 0
	for _, tr := range r.Tasks {
		if tr.State != "done" {
			return bench.JSONReport{}, fmt.Errorf("fleet: task %d (%s) %s: %s", tr.Index, tr.Kernel, tr.State, tr.Error)
		}
		if tr.Kernel == "" {
			return bench.JSONReport{}, fmt.Errorf("fleet: task %d is not a kernel job; merged reports cover kernel matrices", tr.Index)
		}
		var rep bench.JSONReport
		if err := json.Unmarshal(tr.Result, &rep); err != nil {
			return bench.JSONReport{}, fmt.Errorf("fleet: task %d result: %w", tr.Index, err)
		}
		if len(rep.Runs) != 1 {
			return bench.JSONReport{}, fmt.Errorf("fleet: task %d result carries %d runs, want 1", tr.Index, len(rep.Runs))
		}
		if scale == 0 {
			scale = rep.Scale
		}
		rows = append(rows, rep.Runs[0])
	}
	return bench.MergeReport(rows, scale).Canonical(), nil
}
