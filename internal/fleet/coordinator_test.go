package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/kernels"
	"vgiw/internal/leaktest"
	"vgiw/internal/server"
	"vgiw/internal/store"
)

// realWorker boots an in-process vgiwd core behind an httptest frontend —
// the same server the daemon serves, minus the TCP listener.
func realWorker(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.RunParallelism == 0 {
		cfg.RunParallelism = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // double-shutdown across cleanups is fine
	})
	return s, ts
}

// stubWorker fakes just enough of the vgiwd API for dispatch-path tests:
// /readyz and POST /v1/jobs answering instantly (after delay) with a done
// view. onJob observes each arrival.
func stubWorker(t testing.TB, delay time.Duration, onJob func(spec bench.JobSpec, tenant string)) *httptest.Server {
	var seq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec bench.JobSpec
		json.NewDecoder(r.Body).Decode(&spec) //nolint:errcheck
		if onJob != nil {
			onJob(spec, r.Header.Get(server.TenantHeader))
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		json.NewEncoder(w).Encode(server.JobView{ //nolint:errcheck
			ID: fmt.Sprintf("job-%d", seq.Add(1)), State: server.StateDone,
			Spec: spec, Result: json.RawMessage(`{}`),
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatorMergeByteIdentical is the tentpole contract: a matrix
// (with a duplicate spec) sharded across two real workers merges into a
// report byte-identical to a single-process run of the same matrix, with
// the duplicate deduped fleet-wide — executed once, reported per task.
func TestCoordinatorMergeByteIdentical(t *testing.T) {
	// The full dispatch path spawns slot and probe goroutines per worker;
	// leaktest pins this test if Run returns without reaping them
	// (TestMain catches the same suite-wide, without naming the offender).
	// Registered before realWorker so the LIFO cleanup order runs the leak
	// check after the workers' own shutdown cleanups.
	t.Cleanup(leaktest.Check(t))
	_, w1 := realWorker(t, server.Config{})
	_, w2 := realWorker(t, server.Config{})

	tasks := []Task{
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1"}},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel2"}},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1"}}, // duplicate key
	}
	c, err := NewCoordinator(Config{Workers: []string{w1.URL, w2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.Run(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.UniqueKeys != 2 {
		t.Fatalf("failed=%d uniqueKeys=%d, want 0/2", res.Failed, res.UniqueKeys)
	}
	if res.Tasks[2].Cached != "ledger" {
		t.Errorf("duplicate task cached = %q, want ledger", res.Tasks[2].Cached)
	}
	merged, err := res.MergedReport()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}

	// Single-process ground truth over the same matrix, duplicate included.
	var runs []*bench.KernelRun
	for _, task := range tasks {
		spec := task.Spec
		opt, err := spec.Options()
		if err != nil {
			t.Fatal(err)
		}
		kspec, _ := kernels.ByName(spec.Kernel)
		kr, err := bench.RunOne(kspec, opt)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, kr)
	}
	wantJSON, err := json.Marshal(bench.BuildJSON(runs, 1).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("fleet report differs from single-process report:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	reg := c.Metrics()
	if got := reg.Counter("fleet/jobs_total"); got != 3 {
		t.Errorf("jobs_total = %d, want 3", got)
	}
	if got := reg.Counter("fleet/jobs_deduped"); got != 1 {
		t.Errorf("jobs_deduped = %d, want 1", got)
	}
	// Exactly-once: real executions must equal unique keys.
	if got := reg.Counter("fleet/jobs_executed"); got != 2 {
		t.Errorf("jobs_executed = %d, want 2", got)
	}
	if got := reg.Counter("fleet/jobs_completed"); got != 2 {
		t.Errorf("jobs_completed = %d, want 2", got)
	}
}

// TestCoordinatorStoreShortCircuit pins the shared-store fast path: keys a
// previous sweep persisted are served from disk by the coordinator itself —
// zero dispatches — and the merged report is byte-identical to the first
// sweep's.
func TestCoordinatorStoreShortCircuit(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := realWorker(t, server.Config{Store: st})

	tasks := []Task{
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1"}},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel2"}},
	}
	run := func(storeDir string) (*Result, *Coordinator) {
		t.Helper()
		c, err := NewCoordinator(Config{Workers: []string{w1.URL}, StoreDir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		res, err := c.Run(ctx, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return res, c
	}

	res1, _ := run("") // workers persist; coordinator not reading the store yet

	// The worker flushes to the store just after the wait=1 response is
	// released; wait for both entries before the second sweep reads them.
	for _, task := range tasks {
		spec := task.Spec
		if err := spec.Normalize(); err != nil {
			t.Fatal(err)
		}
		key := store.Key(spec)
		deadline := time.Now().Add(5 * time.Second)
		for {
			if ent, err := st.Get(key); err == nil && ent != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("store entry %s never appeared", key)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	res2, c2 := run(dir)

	rep1, err := res1.MergedReport()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := res2.MergedReport()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("store-served report differs:\n%s\nvs\n%s", b2, b1)
	}
	reg := c2.Metrics()
	if got := reg.Counter("fleet/store_hits"); got != 2 {
		t.Errorf("store_hits = %d, want 2", got)
	}
	if got := reg.Counter("fleet/jobs_dispatched"); got != 0 {
		t.Errorf("jobs_dispatched = %d, want 0 (disk short-circuits dispatch)", got)
	}
	for _, tr := range res2.Tasks {
		if tr.Cached != "disk" {
			t.Errorf("task %d cached = %q, want disk", tr.Index, tr.Cached)
		}
	}
}

// TestCoordinatorDeadWorkerRequeue pins the failure model: a worker that is
// down from the start eats dispatches as transport errors, gets marked dead,
// and its jobs are requeued and completed by the healthy worker — within the
// retry budget, every key exactly once.
func TestCoordinatorDeadWorkerRequeue(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from the first dispatch

	_, alive := realWorker(t, server.Config{})

	c, err := NewCoordinator(Config{
		Workers:       []string{deadURL, alive.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeFailures: 1,
		RetryBudget:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1"}},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel2"}},
		{Spec: bench.JobSpec{Kernel: "hotspot.kernel"}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.Run(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d: %+v", res.Failed, res.Tasks)
	}
	for _, tr := range res.Tasks {
		if tr.Worker != alive.URL {
			t.Errorf("task %d completed by %q, want the healthy worker", tr.Index, tr.Worker)
		}
	}
	reg := c.Metrics()
	if got := reg.Counter("fleet/worker_deaths"); got < 1 {
		t.Errorf("worker_deaths = %d, want >= 1", got)
	}
	if retried, requeued := reg.Counter("fleet/jobs_retried"), reg.Counter("fleet/jobs_requeued"); retried+requeued < 1 {
		t.Errorf("retried=%d requeued=%d, want at least one recovery", retried, requeued)
	}
	if got := reg.Counter("fleet/jobs_executed"); got != 3 {
		t.Errorf("jobs_executed = %d, want 3 (exactly once per key)", got)
	}
}

// TestCoordinatorTenantFairness pins round-robin admission under quota: with
// one serial worker and TenantQuota 1, tenant b's single job is served
// second, not behind tenant a's whole backlog.
func TestCoordinatorTenantFairness(t *testing.T) {
	var mu sync.Mutex
	var order []string
	ws := stubWorker(t, 0, func(spec bench.JobSpec, tenant string) {
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
	})

	c, err := NewCoordinator(Config{
		Workers:        []string{ws.URL},
		SlotsPerWorker: 1,
		TenantQuota:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1", Scale: 1}, Tenant: "a"},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1", Scale: 2}, Tenant: "a"},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1", Scale: 3}, Tenant: "a"},
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1", Scale: 4}, Tenant: "b"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("order = %v, want 4 arrivals", order)
	}
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("arrival order %v: tenant b should be served second under round-robin", order)
	}
}

// TestCoordinatorSteal pins work-stealing: a fast worker that drains its own
// queue steals from a slow one instead of idling.
func TestCoordinatorSteal(t *testing.T) {
	slow := stubWorker(t, 250*time.Millisecond, nil)
	var fastJobs atomic.Int64
	fast := stubWorker(t, time.Millisecond, func(bench.JobSpec, string) { fastJobs.Add(1) })

	c, err := NewCoordinator(Config{
		Workers:        []string{slow.URL, fast.URL},
		SlotsPerWorker: 1,
		QueuePerWorker: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []Task
	for i := 1; i <= 6; i++ {
		tasks = append(tasks, Task{Spec: bench.JobSpec{Kernel: "bfs.kernel1", Scale: i}})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	if got := c.Metrics().Counter("fleet/jobs_stolen"); got < 1 {
		t.Errorf("jobs_stolen = %d, want >= 1", got)
	}
	if got := fastJobs.Load(); got < 4 {
		t.Errorf("fast worker handled %d/6 jobs; stealing should shift load its way", got)
	}
}

// TestCoordinatorPermanentFailure pins the no-retry path: specs that cannot
// succeed anywhere (invalid spec, failing source job) fail once, consume no
// retry budget, and surface in the Run error.
func TestCoordinatorPermanentFailure(t *testing.T) {
	_, w1 := realWorker(t, server.Config{})
	c, err := NewCoordinator(Config{Workers: []string{w1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{
		{Spec: bench.JobSpec{Kernel: "bfs.kernel1"}},
		{Spec: bench.JobSpec{Kernel: "no.such.kernel"}}, // rejected at normalize
		{Spec: bench.JobSpec{Source: "this is not kasm"}}, // fails on the worker
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := c.Run(ctx, tasks)
	if err == nil {
		t.Fatal("Run should report the permanent failures")
	}
	if res.Failed != 2 {
		t.Fatalf("failed = %d, want 2: %+v", res.Failed, res.Tasks)
	}
	if res.Tasks[0].State != "done" {
		t.Errorf("healthy task state = %q", res.Tasks[0].State)
	}
	if got := c.Metrics().Counter("fleet/jobs_retried"); got != 0 {
		t.Errorf("jobs_retried = %d, want 0 (permanent failures burn no budget)", got)
	}
	if _, err := res.MergedReport(); err == nil {
		t.Error("MergedReport should refuse a sweep with failures")
	}
}

// TestCoordinatorObservability pins the coordinator's own surface: fleet
// counters on /metrics in the standard exposition, and the combined history
// listing over the shared store.
func TestCoordinatorObservability(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := realWorker(t, server.Config{Store: st})

	c, err := NewCoordinator(Config{Workers: []string{w1.URL}, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Run(ctx, []Task{{Spec: bench.JobSpec{Kernel: "bfs.kernel1"}}}); err != nil {
		t.Fatal(err)
	}

	obs := httptest.NewServer(c.Handler())
	defer obs.Close()

	resp, err := http.Get(obs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m["fleet/jobs_completed"] != 1 || m["fleet/jobs_dispatched"] != 1 {
		t.Errorf("fleet metrics = %v", m)
	}
	if _, ok := m["fleet/tenant_pending/default"]; !ok {
		t.Error("per-tenant queue-depth gauge missing from exposition")
	}

	// The worker persisted its result to the shared dir; the flush lands
	// just after the job response, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Get(obs.URL + "/v1/history")
		if err != nil {
			t.Fatal(err)
		}
		var hist struct {
			Entries []server.HistoryEntry `json:"entries"`
		}
		err = json.NewDecoder(resp.Body).Decode(&hist)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(hist.Entries) == 1 && hist.Entries[0].Kernel == "bfs.kernel1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("combined history = %+v, want the swept kernel", hist.Entries)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkCoordinatorDispatch measures coordinator overhead per job —
// ledger, scheduling, HTTP round-trip to an instant stub worker — with the
// simulation cost removed.
func BenchmarkCoordinatorDispatch(b *testing.B) {
	ws := stubWorker(b, 0, nil)
	c, err := NewCoordinator(Config{
		Workers:        []string{ws.URL},
		SlotsPerWorker: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	var tasks []Task
	for i := 1; i <= 64; i++ {
		tasks = append(tasks, Task{Spec: bench.JobSpec{Kernel: "bfs.kernel1", Scale: i}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(context.Background(), tasks)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed != 0 {
			b.Fatalf("failed = %d", res.Failed)
		}
	}
}
