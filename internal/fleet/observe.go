package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"

	"vgiw/internal/server"
)

// Handler serves the coordinator's observability surface:
//
//	GET /metrics          fleet counters (dispatched/stolen/retried/deduped,
//	                      per-tenant queue depths) in the same Prometheus
//	                      exposition the workers use
//	GET /v1/history       combined sweep history: the shared store listing —
//	                      one view over every worker's persisted results
//	GET /v1/history/{key} one stored entry in full
//
// Mount it on vgiwctl's -metrics-addr to watch a sweep from outside.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
	})
	mux.HandleFunc("GET /v1/history", func(w http.ResponseWriter, r *http.Request) {
		if c.st == nil {
			httpError(w, http.StatusNotFound, "no shared store; run vgiwctl with -store-dir")
			return
		}
		entries, lerr := c.st.List()
		out := make([]server.HistoryEntry, 0, len(entries))
		for _, e := range entries {
			h := server.HistoryEntry{
				Key:     e.Key,
				Kind:    e.Kind,
				Kernel:  e.Spec.Kernel,
				Spec:    e.Spec,
				Created: e.Created,
				Host:    e.Host,
			}
			if e.Metrics != nil {
				h.Metrics = len(e.Metrics.Metrics)
			}
			out = append(out, h)
		}
		resp := struct {
			Entries []server.HistoryEntry `json:"entries"`
			Skipped string                `json:"skipped,omitempty"`
		}{Entries: out}
		if lerr != nil {
			resp.Skipped = lerr.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/history/{key}", func(w http.ResponseWriter, r *http.Request) {
		if c.st == nil {
			httpError(w, http.StatusNotFound, "no shared store; run vgiwctl with -store-dir")
			return
		}
		key := r.PathValue("key")
		e, err := c.st.Get(key)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if e == nil {
			httpError(w, http.StatusNotFound, "no stored result for key %s", key)
			return
		}
		writeJSON(w, http.StatusOK, e)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-write
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
