package fleet

import (
	"net/http"
	"strings"
	"time"
)

// ParseRetryAfter interprets a Retry-After response header value against the
// given current time. RFC 9110 allows two forms: a non-negative integer
// delay in seconds ("3") and an HTTP-date ("Mon, 02 Jan 2006 15:04:05 GMT").
// vgiwd emits the seconds form, but the client accepts both so it stays
// correct behind proxies that rewrite the header. The second return reports
// whether the value parsed; malformed values (negative, fractional,
// non-numeric, bad dates) return (0, false) so callers fall back to their
// own backoff schedule instead of trusting garbage. A parsed HTTP-date in
// the past clamps to zero: "retry now" is the only sane reading.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	// Seconds form: all-digit, so "-1", "1.5", and "3s" are rejected here
	// and (not being valid HTTP-dates either) fall out as malformed.
	if isDigits(v) {
		// Cap absurd values instead of overflowing time.Duration: 24h of
		// Retry-After is already "come back tomorrow".
		const maxSeconds = 24 * 60 * 60
		var secs int64
		for i := 0; i < len(v); i++ {
			secs = secs*10 + int64(v[i]-'0')
			if secs > maxSeconds {
				secs = maxSeconds
				break
			}
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}
