package engine

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

func TestStatsCloneDeepCopies(t *testing.T) {
	s := &Stats{
		Injected:    3,
		EndCycle:    100,
		FPOps:       7,
		NodeLatency: []int64{1, 2, 3},
		NodeService: []int64{4, 5},
		UnitIssues:  []uint64{6},
	}
	s.Ops[kir.ClassALU] = 9
	c := s.Clone()
	if c == s {
		t.Fatal("Clone returned the receiver")
	}
	// Mutate the original: the clone must not move.
	s.Injected = 0
	s.Ops[kir.ClassALU] = 0
	s.NodeLatency[0] = 99
	s.NodeService[1] = 99
	s.UnitIssues[0] = 99
	if c.Injected != 3 || c.Ops[kir.ClassALU] != 9 {
		t.Errorf("clone shares scalar state: %+v", c)
	}
	if c.NodeLatency[0] != 1 || c.NodeService[1] != 5 || c.UnitIssues[0] != 6 {
		t.Errorf("clone aliases profile slices: lat=%v svc=%v iss=%v",
			c.NodeLatency, c.NodeService, c.UnitIssues)
	}
	// Nil profile slices stay nil (non-profiled runs).
	if n := (&Stats{}).Clone(); n.NodeLatency != nil || n.NodeService != nil || n.UnitIssues != nil {
		t.Error("clone materialized nil slices")
	}
}

// TestRunVectorStatsReuse pins the aliasing footgun Clone exists for: without
// Options.Profile the engine recycles one Stats across RunVector calls, so a
// caller that retains the pointer sees it overwritten by the next run — and
// Clone is the escape hatch.
func TestRunVectorStatsReuse(t *testing.T) {
	k := buildSaxpyBlock(t)
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.PlaceMax(grid, ck.DFGs[0])
	if err != nil {
		t.Fatal(err)
	}
	launch := kir.Launch1D(1, 32, 2, 0, 32)
	global := make([]uint32, 64)
	sys := mem.NewSystem(mem.DefaultConfig(mem.WriteBack))
	env, err := NewDataEnv(k, launch, global, sys)
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]int, launch.Threads())
	for i := range threads {
		threads[i] = i
	}
	e := New(grid, Options{})

	st1, err := e.RunVector(p, threads[:16], 0, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	saved := st1.Clone()
	firstEnd := st1.EndCycle

	st2, err := e.RunVector(p, threads, firstEnd, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatal("non-profiled RunVector returned a fresh Stats; the reuse contract changed — update Clone's docs and this test")
	}
	if st1.Injected != len(threads) {
		t.Fatalf("second run injected %d, want %d", st1.Injected, len(threads))
	}
	// The retained pointer was overwritten; the clone kept the first run.
	if saved.Injected != 16 || saved.EndCycle != firstEnd {
		t.Errorf("clone drifted: injected=%d end=%d, want 16/%d", saved.Injected, saved.EndCycle, firstEnd)
	}
}

// TestEngineTraceNodeFirings checks the engine emits one CatEngine span per
// node execution onto the hooks' track, and that a disabled sink emits none.
func TestEngineTraceNodeFirings(t *testing.T) {
	k := buildSaxpyBlock(t)
	sink := trace.NewSink(trace.CatEngine)
	pid := sink.AllocProcess("saxpy1b/test")
	opt := Options{Trace: sink}
	launch := kir.Launch1D(1, 8, 2, 0, 8)
	global := make([]uint32, 16)

	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.Place(grid, ck.DFGs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem(mem.DefaultConfig(mem.WriteBack))
	env, err := NewDataEnv(k, launch, global, sys)
	if err != nil {
		t.Fatal(err)
	}
	threads := []int{0, 1, 2, 3, 4, 5, 6, 7}
	hooks := env.Hooks()
	hooks.TraceTrack = trace.TrackID{Pid: pid, Tid: 0}
	if _, err := New(grid, opt).RunVector(p, threads, 0, hooks); err != nil {
		t.Fatal(err)
	}
	// Every node fires once per thread: len(nodes) * 8 events.
	want := len(ck.DFGs[0].Nodes) * len(threads)
	if sink.Len() != want {
		t.Errorf("recorded %d node events, want %d", sink.Len(), want)
	}
}
