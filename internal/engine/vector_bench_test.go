package engine

import "testing"

// benchEngine streams the hot-path thread vector through a warm engine under
// the given options (the BenchmarkEngineHotPath scenario, parameterized by
// executor).
func benchEngine(b *testing.B, opt Options) {
	e, p, threads, hooks := hotPathSetup(b, opt, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineVector pits the batched (default) executor against the
// scalar reference walk on the identical scenario, same process, same warmed
// memory system shape — the honest relative measurement the BENCH_engine.json
// trajectory tracks. Both sides must report 0 allocs/op; the scalar sub also
// keeps the reference walk's perf visible so a regression there (it remains
// the exactness oracle and the tracing path) is caught too.
func BenchmarkEngineVector(b *testing.B) {
	b.Run("batched", func(b *testing.B) { benchEngine(b, Options{}) })
	b.Run("scalar", func(b *testing.B) { benchEngine(b, Options{Scalar: true}) })
}

// BenchmarkEngineFast measures the functional-only mode (Options.Fast): no
// cycle accounting, no memory-system timing — the throughput ceiling for
// result validation and fuzzing sweeps.
func BenchmarkEngineFast(b *testing.B) {
	benchEngine(b, Options{Fast: true})
}
