// Package engine executes a placed dataflow graph for a vector of threads,
// producing both functional results and cycle-level timing. It models the
// MT-CGRF execution semantics of §3.5:
//
//   - one thread injected per initiator CVU per cycle (each basic-block
//     replica has its own initiator), bounded by the token-buffer depth
//     (virtual execution channels) of the units;
//   - pipelined functional units accept one token set per cycle;
//   - special compute units (SCUs) virtual-pipeline non-pipelined operations
//     across a pool of circuit instances;
//   - load/store units expose reservation buffers that bound outstanding
//     memory operations and let unblocked threads overtake stalled ones
//     (dynamic, tagged-token dataflow);
//   - tokens travel the interconnect with per-edge hop latencies from the
//     placement.
//
// The engine is shared by the VGIW core (per-block graphs) and the SGMF
// baseline (one whole-kernel graph).
package engine

import (
	"context"
	"errors"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

// Space distinguishes memory address spaces.
type Space uint8

const (
	SpaceGlobal Space = iota
	SpaceShared
)

// Hooks supplies the environment a graph executes in: memory, live values,
// launch geometry, and branch-outcome reporting. The engine itself owns no
// state between calls.
//
// Param and Geometry must be pure: their results may depend only on their
// arguments (and the launch they close over), never on call order or count.
// The batch executor exploits this — it resolves a Param once per node
// rather than once per thread, and evaluates geometry and parameter values
// node-major rather than thread-major. AccessMem, AccessLV and Branch carry
// the run's side effects and are always invoked in exact thread-major order
// (all of thread t's accesses before any of thread t+1's), whichever
// executor runs. The vector hooks preserve that contract in batched form:
// when AccessMemVector/AccessLVVector are non-nil the batch executor may
// replace a run of per-element calls with one vector call whose element
// planes are those same threads in the same order, and the vector
// implementation must be observably identical to the per-element loop.
type Hooks struct {
	// Param returns scalar launch parameter i.
	Param func(i int) uint32
	// Geometry resolves a geometry opcode for a thread.
	Geometry func(op kir.Op, tid int) uint32
	// AccessMem performs a data-memory access: functional effect plus
	// timing. For loads value is ignored and the loaded word returned;
	// for stores the returned word is ignored. done is the completion
	// cycle given issue at now.
	AccessMem func(space Space, addr int64, write bool, value uint32, tid int, now int64) (word uint32, done int64, err error)
	// AccessLV reads or writes live value lv for a thread through the LVC.
	// Unused by SGMF graphs (which have no LV nodes).
	AccessLV func(lv int, tid int, write bool, value uint32, now int64) (word uint32, done int64)
	// AccessMemVector settles one memory node's accesses for a whole wave
	// chunk in a single call: parallel element planes of address, store
	// value, thread id and issue cycle go in; loaded words and completion
	// cycles come back in words/dones. The implementation must be exactly
	// equivalent to calling AccessMem once per element in order — same
	// functional effects, same timing-model state, same first failing
	// element on errors (mem.System.AccessVector provides the timing leg).
	// When nil, the batch executor falls back to the per-element AccessMem
	// walk, so SIMT/SGMF environments and third-party hooks keep working
	// unchanged.
	AccessMemVector func(space Space, addrs []int64, store bool, values []uint32, tids []int, issues []int64, words []uint32, dones []int64) error
	// AccessLVVector is AccessMemVector's live-value twin: one LV node's
	// accesses for a whole wave in a single call, exactly equivalent to the
	// per-element AccessLV walk. When nil, the per-element walk runs.
	AccessLVVector func(lv int, tids []int, store bool, values []uint32, issues []int64, words []uint32, dones []int64)
	// Branch reports a thread's terminator outcome so the caller can update
	// the control vector table. cond is meaningful only for TermBranch; now
	// is the cycle the terminator CVU delivers its batch packet, which is
	// what timestamps the CVT enqueue trace events.
	Branch func(tid int, cond uint32, now int64)
	// AccessMemFast is the functional-only variant of AccessMem used by
	// Options.Fast: same functional effect and error behaviour, no timing.
	// When nil, the fast executor falls back to AccessMem (whose timing
	// side effects are then meaningless but harmless — fast-mode cycle
	// metrics are undefined either way).
	AccessMemFast func(space Space, addr int64, write bool, value uint32, tid int) (word uint32, err error)
	// AccessLVFast mirrors AccessMemFast for live-value accesses.
	AccessLVFast func(lv int, tid int, write bool, value uint32) uint32
	// TraceTrack attributes this run's engine-level trace events (node
	// firings) to one track of Options.Trace. Zero means the sink's default
	// track; callers running several graphs set a per-run track.
	TraceTrack trace.TrackID
}

// Options tune engine behaviour (used by ablation studies).
type Options struct {
	// InOrderThreads disables out-of-order thread overtaking: every node
	// processes threads in injection order (ablation for the reservation
	// buffers' dynamic dataflow).
	InOrderThreads bool
	// Profile records per-node latency statistics into Stats.NodeLatency.
	Profile bool
	// Trace, when non-nil, receives per-node firing events (trace.CatEngine)
	// on the track named by Hooks.TraceTrack. A nil sink (or one whose
	// filter excludes CatEngine) keeps the hot path allocation-free — the
	// contract BenchmarkEngineHotPath enforces. A sink that *does* enable
	// CatEngine forces the scalar executor, which emits firing events in
	// the reference per-thread order.
	Trace *trace.Sink
	// Scalar forces the reference per-thread graph walk (runThread) instead
	// of the batched executor. The batched path is bit-exact with the
	// scalar one — results and every cycle-level metric — which the
	// differential suite enforces; Scalar exists as the oracle escape
	// hatch, not a semantic knob.
	Scalar bool
	// Fast runs the functional-only executor: identical results and op
	// counts, but no cycle or occupancy accounting (EndCycle == StartCycle,
	// and the memory system's timing state is never touched). For CI
	// crosschecks, fuzzing throughput, and functional-only sweeps. Ignored
	// (with full timing restored) when CatEngine tracing is enabled, since
	// firing events need cycles.
	Fast bool
}

// ClassCounts is a dense per-unit-class counter array indexed by
// kir.UnitClass. The engine increments it on every node execution, so it is
// an array rather than a map to keep the hot path allocation-free.
type ClassCounts [kir.NumUnitClasses]uint64

// Map converts the counters to the map form used by the machine results
// (zero classes omitted, matching the previous map-based accounting).
func (c *ClassCounts) Map() map[kir.UnitClass]uint64 {
	m := make(map[kir.UnitClass]uint64)
	for cl, n := range c {
		if n != 0 {
			m[kir.UnitClass(cl)] = n
		}
	}
	return m
}

// Stats aggregates the events of one vector execution.
//
// Unless Options.Profile is set, the *Stats returned by RunVector aliases
// engine-owned scratch and is only valid until the next RunVector call on
// the same engine; callers that retain it across runs must copy it.
type Stats struct {
	Injected   int
	StartCycle int64
	EndCycle   int64

	// Executed node counts by unit class (per thread executions).
	Ops ClassCounts
	// FPOps counts floating-point ALU-class node executions (the energy
	// model prices FP lanes above integer lanes).
	FPOps uint64
	// TokenHops is the total distance traveled by data/control tokens.
	TokenHops uint64
	// TokenTransfers counts individual token deliveries.
	TokenTransfers uint64
	// LVLoads/LVStores count live-value cache accesses.
	LVLoads, LVStores uint64
	// GlobalAccesses/SharedAccesses count memory operations issued
	// (predicated-off SGMF accesses are excluded).
	GlobalAccesses, SharedAccesses uint64
	// SkippedMemOps counts predicated-off memory operations (SGMF).
	SkippedMemOps uint64
	// NodeLatency records, per node ID, the max completion minus injection
	// (per-thread latency contribution) — populated only when Profile is
	// set in Options.
	NodeLatency []int64
	// NodeService records, per node ID, the max completion minus operand
	// readiness (queueing + service time at the unit). Profile only.
	NodeService []int64
	// UnitIssues counts executions per physical unit ID. Profile only.
	UnitIssues []uint64
}

// Cycles is the wall-clock cycle count of the vector execution.
func (s *Stats) Cycles() int64 { return s.EndCycle - s.StartCycle }

// Clone returns an independent deep copy. Callers that retain the *Stats
// returned by RunVector across further runs on the same engine must clone
// it: without Options.Profile the engine recycles one Stats buffer, so a
// retained pointer would be retroactively overwritten by the next run.
func (s *Stats) Clone() *Stats {
	c := *s
	if s.NodeLatency != nil {
		c.NodeLatency = append([]int64(nil), s.NodeLatency...)
	}
	if s.NodeService != nil {
		c.NodeService = append([]int64(nil), s.NodeService...)
	}
	if s.UnitIssues != nil {
		c.UnitIssues = append([]uint64(nil), s.UnitIssues...)
	}
	return &c
}

// OpLatency is the per-opcode execution latency table shared by all
// simulators (the SIMT baseline uses it too, so the comparison is apples to
// apples).
func OpLatency(op kir.Op) int64 {
	switch op {
	case kir.OpMul:
		return 3
	case kir.OpFAdd, kir.OpFSub, kir.OpFMul, kir.OpFMin, kir.OpFMax, kir.OpFFloor,
		kir.OpFNeg, kir.OpFAbs:
		return 4
	case kir.OpFSetEQ, kir.OpFSetNE, kir.OpFSetLT, kir.OpFSetLE:
		return 4
	case kir.OpI2F, kir.OpF2I:
		return 2
	case kir.OpDiv, kir.OpRem, kir.OpFDiv, kir.OpFSqrt:
		return 16
	case kir.OpFExp, kir.OpFLog:
		return 20
	default:
		return 1
	}
}

// Engine executes placed graphs. Reusable across calls; not safe for
// concurrent use. All per-run scratch lives in a per-engine arena that is
// resized (never reallocated once warm) between runs, so steady-state token
// execution allocates nothing.
type Engine struct {
	grid *fabric.Grid
	opt  Options

	// per-run scratch, sized to the current graph
	vals     []uint32
	done     []int64
	units    []mem.SlotAlloc   // per-unit issue slots (1 initiation/cycle)
	scuPool  []mem.Outstanding // per-unit non-pipelined SCU instance pools (dense by unit id)
	resBuf   []mem.Outstanding // per-unit LDST reservation buffers (dense by unit id)
	lastDone []int64           // [replica*nNodes+node] completion of previous thread
	nNodes   int               // stride of lastDone

	// per-run injection bookkeeping, reused across runs
	injNext []int64
	vcs     []mem.Outstanding // per-replica virtual-channel occupancy

	// batch-executor state (vector.go): compiled node programs keyed by
	// placement identity (placements are immutable and cached by the
	// machines, so the map stays small and steady-state runs hit it), the
	// SoA operand planes, and the per-wave lane bookkeeping.
	progs   map[*fabric.Placement]*nodeProg
	pvals   []uint32 // [node*batchLanes+lane] value plane
	pdone   []int64  // [node*batchLanes+lane] completion plane
	laneTid []int
	laneRep []int32
	laneInj []int64
	laneEnd []int64
	pending []int32 // per-replica threads admitted but not yet recorded
	pendInj []int64 // per-replica inject cycle of the first pending thread
	repCnt  []int64 // per-replica lane count of the current wave (collapsed profile)

	// wave-vector batch planes (execDynWaveVec): gathered element planes
	// for the single stateful node's chunked AccessMemVector/AccessLVVector
	// calls, plus the per-lane ready cache and per-replica chunk bookkeeping.
	vAddr  []int64
	vVal   []uint32
	vTid   []int
	vIssue []int64
	vWord  []uint32
	vDone  []int64
	vLane  []int32
	vReady []int64 // per lane: the stateful node's ready cycle
	vMax   []int64 // per replica: running max ready in the open chunk
	vPend  []int32 // per replica: unsettled chunk members

	// stats is the reusable result buffer handed out by RunVector when
	// profiling is off (profiled runs get a fresh Stats, since callers
	// retain those per block).
	stats Stats
}

// New creates an engine bound to a grid.
func New(grid *fabric.Grid, opt Options) *Engine {
	return &Engine{grid: grid, opt: opt}
}

// cancelCheckStride is how many threads the engine streams between
// ctx.Err() polls. A poll is two atomic-ish loads, so the stride only needs
// to be large enough to keep it off the per-token path; 64 threads bound the
// cancellation latency to well under a millisecond of host time even on the
// largest graphs.
const cancelCheckStride = 64

// RunVector streams the given threads through the placement, starting at
// startCycle (reconfiguration cost is the caller's concern). It returns the
// execution statistics; the graph's side effects happen through the hooks.
func (e *Engine) RunVector(p *fabric.Placement, threads []int, startCycle int64, h *Hooks) (*Stats, error) {
	return e.RunVectorCtx(context.Background(), p, threads, startCycle, h)
}

// RunVectorCtx is RunVector with cooperative cancellation: the thread loop
// polls ctx every cancelCheckStride threads and returns ctx.Err() once the
// context is done, so a caller's deadline or cancel preempts a running
// vector rather than waiting for it to drain.
func (e *Engine) RunVectorCtx(ctx context.Context, p *fabric.Placement, threads []int, startCycle int64, h *Hooks) (*Stats, error) {
	g := p.Graph
	nNodes := len(g.Nodes)
	cfg := e.grid.Config()

	// Profiled runs hand out a fresh Stats (callers keep one per block);
	// otherwise the engine-owned buffer is recycled, keeping the steady
	// state allocation-free.
	st := &e.stats
	if e.opt.Profile {
		st = &Stats{}
	}
	*st = Stats{
		Injected:   len(threads),
		StartCycle: startCycle,
		EndCycle:   startCycle,
	}
	if len(threads) == 0 {
		return st, nil
	}
	// Profile buffers are sized once per run, not lazily per node visit
	// (profiled runs get a fresh Stats, so the slices start nil).
	if e.opt.Profile {
		st.NodeLatency = make([]int64, nNodes)
		st.NodeService = make([]int64, nNodes)
		st.UnitIssues = make([]uint64, e.grid.NumUnits())
	}

	// Executor selection: CatEngine tracing pins the scalar reference walk
	// (its per-thread order is what the firing-event stream documents);
	// otherwise Fast takes the functional-only path and everything else the
	// batched path, which is bit-exact with scalar.
	traceEngine := e.opt.Trace.Enabled(trace.CatEngine)
	if e.opt.Fast && !traceEngine {
		return e.runFast(ctx, p, threads, startCycle, h, st)
	}

	// Reset per-run unit state (the grid is reset between blocks, §3.2).
	// The scratch arrays keep their backing storage across runs.
	nUnits := e.grid.NumUnits()
	e.vals = resize(e.vals, nNodes)
	e.done = resize(e.done, nNodes)
	if cap(e.units) < nUnits {
		e.units = make([]mem.SlotAlloc, nUnits)
		e.scuPool = make([]mem.Outstanding, nUnits)
		e.resBuf = make([]mem.Outstanding, nUnits)
	}
	e.units = e.units[:nUnits]
	e.scuPool = e.scuPool[:nUnits]
	e.resBuf = e.resBuf[:nUnits]
	for i := range e.units {
		e.units[i].Reset()
		e.scuPool[i].Reset(cfg.SCUInstances)
		e.resBuf[i].Reset(cfg.ReservationSlots)
	}
	e.nNodes = nNodes
	e.lastDone = resize(e.lastDone, p.Replicas*nNodes)
	clear(e.lastDone)

	// Per-replica injection bookkeeping: the initiator CVU injects one
	// thread per cycle, and a thread needs a free virtual channel (token
	// buffer entry). Channels free as their threads complete — in any
	// order, so threads stalled on memory do not hold others back.
	e.injNext = resize(e.injNext, p.Replicas)
	if cap(e.vcs) < p.Replicas {
		e.vcs = make([]mem.Outstanding, p.Replicas)
	}
	e.vcs = e.vcs[:p.Replicas]
	for r := range e.vcs {
		e.injNext[r] = startCycle
		e.vcs[r].Reset(cfg.TokenBufDepth)
	}

	if !e.opt.Scalar && !traceEngine {
		return e.runBatched(ctx, p, threads, h, st)
	}

	for j, tid := range threads {
		if j%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		r := j % p.Replicas
		inject := e.vcs[r].Admit(e.injNext[r])
		if inject < e.injNext[r] {
			inject = e.injNext[r]
		}
		e.injNext[r] = inject + 1

		end, err := e.runThread(p, r, tid, inject, h, st)
		if err != nil {
			return nil, err
		}
		e.vcs[r].Record(end)
		if end > st.EndCycle {
			st.EndCycle = end
		}
	}
	return st, nil
}

// errUnknownNodeKind is the per-token path's only error of its own; a
// static value because runThread must not allocate (the verifier rejects
// graphs with unknown kinds long before they reach the engine).
var errUnknownNodeKind = errors.New("engine: unknown node kind")

// runThread executes every node of the graph for one thread and returns the
// thread's completion cycle.
//
//vgiw:hotpath
func (e *Engine) runThread(p *fabric.Placement, r, tid int, inject int64, h *Hooks, st *Stats) (int64, error) {
	g := p.Graph
	unitOf := p.UnitOf[r]
	threadEnd := inject

	for _, n := range g.Nodes {
		unit := unitOf[n.ID]

		// Dataflow firing rule: all operands (and control tokens) present.
		ready := inject
		for i, in := range n.In {
			if t := e.done[in] + p.EdgeLat[r][n.ID][i]; t > ready {
				ready = t
			}
		}
		for i, in := range n.CtlIn {
			if t := e.done[in] + p.CtlLat[r][n.ID][i]; t > ready {
				ready = t
			}
		}
		st.TokenHops += p.HopSum[r][n.ID]
		st.TokenTransfers += uint64(len(n.In) + len(n.CtlIn))

		if e.opt.InOrderThreads {
			if t := e.lastDone[r*e.nNodes+n.ID]; t > ready {
				ready = t
			}
		}

		var done int64
		var val uint32
		var err error
		switch n.Kind {
		case compile.NodeInit:
			done, val = inject, uint32(tid)

		case compile.NodeTerm:
			start := e.issuePipelined(unit, ready)
			done = start + 1
			cond := e.vals[n.In[0]]
			if h.Branch != nil {
				h.Branch(tid, cond, done)
			}

		case compile.NodeSplit:
			start := e.issuePipelined(unit, ready)
			done, val = start+1, e.vals[n.In[0]]

		case compile.NodeJoin:
			start := e.issuePipelined(unit, ready)
			done = start + 1

		case compile.NodeLVLoad:
			start := e.issuePipelined(unit, ready)
			val, done = h.AccessLV(n.LV, tid, false, 0, start)
			st.LVLoads++

		case compile.NodeLVStore:
			start := e.issuePipelined(unit, ready)
			_, done = h.AccessLV(n.LV, tid, true, e.vals[n.In[0]], start)
			st.LVStores++

		case compile.NodeOp:
			val, done, err = e.execOp(n, unit, tid, ready, h, st)
			if err != nil {
				return 0, err
			}
		default:
			return 0, errUnknownNodeKind
		}

		st.Ops[n.Class()]++
		if n.Kind == compile.NodeOp && n.Instr.Op.IsFloat() && n.Class() == kir.ClassALU {
			st.FPOps++
		}
		if e.opt.Trace.Enabled(trace.CatEngine) {
			dur := done - ready
			if dur < 0 {
				// LV hits can complete "before" issue (the value was already
				// resident); a span still needs a non-negative duration.
				dur = 0
			}
			e.opt.Trace.Emit(trace.Event{
				Name: nodeEventName(n), Cat: trace.CatEngine, Phase: trace.PhaseSpan,
				Track: h.TraceTrack, Ts: ready, Dur: dur,
				K1: "node", V1: int64(n.ID), K2: "tid", V2: int64(tid), K3: "replica", V3: int64(r),
			})
		}
		if e.opt.Profile {
			st.UnitIssues[unit]++
			if d := done - inject; d > st.NodeLatency[n.ID] {
				st.NodeLatency[n.ID] = d
			}
			if d := done - ready; d > st.NodeService[n.ID] {
				st.NodeService[n.ID] = d
			}
		}
		e.vals[n.ID] = val
		e.done[n.ID] = done
		e.lastDone[r*e.nNodes+n.ID] = done
		if done > threadEnd {
			threadEnd = done
		}
	}
	return threadEnd, nil
}

// execOp executes a kernel-instruction node.
//
//vgiw:hotpath
func (e *Engine) execOp(n *compile.Node, unit, tid int, ready int64, h *Hooks, st *Stats) (uint32, int64, error) {
	op := n.Instr.Op
	switch {
	case op.IsGeometry():
		start := e.issuePipelined(unit, ready)
		return h.Geometry(op, tid), start + OpLatency(op), nil

	case op == kir.OpParam:
		start := e.issuePipelined(unit, ready)
		return h.Param(int(n.Instr.Imm)), start + 1, nil

	case op.IsMemory():
		// Predicated-off SGMF memory ops skip the access entirely.
		if n.HasPred && e.vals[n.In[n.Pred]] == 0 {
			start := e.issuePipelined(unit, ready)
			st.SkippedMemOps++
			return 0, start + 1, nil
		}
		addr := int64(int32(e.vals[n.In[0]]) + n.Instr.Imm)
		var value uint32
		if op.IsStore() {
			value = e.vals[n.In[1]]
		}
		space := SpaceGlobal
		if op.IsShared() {
			space = SpaceShared
			st.SharedAccesses++
		} else {
			st.GlobalAccesses++
		}
		start := e.issueLDST(unit, ready)
		word, done, err := h.AccessMem(space, addr, op.IsStore(), value, tid, start)
		if err != nil {
			return 0, 0, err
		}
		e.noteLDSTCompletion(unit, done)
		return word, done, nil

	case op.Class() == kir.ClassSCU:
		start := e.issueSCU(unit, ready, OpLatency(op))
		val := kir.Eval(op, e.operand(n, 0), e.operand(n, 1), e.operand(n, 2), n.Instr.Imm)
		return val, start + OpLatency(op), nil

	default: // pipelined ALU/FPU
		start := e.issuePipelined(unit, ready)
		val := kir.Eval(op, e.operand(n, 0), e.operand(n, 1), e.operand(n, 2), n.Instr.Imm)
		return val, start + OpLatency(op), nil
	}
}

// nodeEventName labels a node-firing trace event. All returned strings are
// static (the op mnemonic table or literals), per the sink's no-copy rule.
func nodeEventName(n *compile.Node) string {
	switch n.Kind {
	case compile.NodeInit:
		return "init"
	case compile.NodeTerm:
		return "term"
	case compile.NodeSplit:
		return "split"
	case compile.NodeJoin:
		return "join"
	case compile.NodeLVLoad:
		return "lvload"
	case compile.NodeLVStore:
		return "lvstore"
	case compile.NodeOp:
		return n.Instr.Op.String()
	}
	return "node"
}

func (e *Engine) operand(n *compile.Node, i int) uint32 {
	if i < n.Instr.Op.NumSrc() && i < len(n.In) {
		return e.vals[n.In[i]]
	}
	return 0
}

// issuePipelined models a fully pipelined unit: one initiation per cycle,
// with out-of-order claiming so a late token does not delay earlier-ready
// ones (tagged-token dynamic dataflow).
//
//vgiw:hotpath
func (e *Engine) issuePipelined(unit int, ready int64) int64 {
	return e.units[unit].Alloc(ready)
}

// issueSCU models virtual pipelining: the SCU holds several instances of the
// non-pipelined circuit; an operation occupies one instance for its full
// latency, but a new operation can start whenever an instance and the issue
// port are free.
//
//vgiw:hotpath
func (e *Engine) issueSCU(unit int, ready, lat int64) int64 {
	pool := &e.scuPool[unit]
	start := e.issuePipelined(unit, pool.Admit(ready))
	pool.Record(start + lat)
	return start
}

// issueLDST models the reservation buffer: at most ReservationSlots memory
// operations outstanding per LDST unit. A slot frees when its own operation
// completes, so hits drain around a stalled miss.
//
//vgiw:hotpath
func (e *Engine) issueLDST(unit int, ready int64) int64 {
	return e.issuePipelined(unit, e.resBuf[unit].Admit(ready))
}

func (e *Engine) noteLDSTCompletion(unit int, done int64) {
	e.resBuf[unit].Record(done)
}

// resize returns s grown (or sliced) to length n, reusing the backing array
// when it is large enough. Contents are unspecified — callers overwrite.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
