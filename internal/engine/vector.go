package engine

// vector.go is the batched executor: instead of walking the whole graph once
// per thread (runThread), it runs per-node thread batches over struct-of-
// arrays operand planes. The paper's coalescing insight applied to the
// simulator itself — amortize per-node control over the whole thread vector.
//
// Bit-exactness contract. The batched path must reproduce the scalar walk's
// results AND every cycle-level metric byte for byte (the differential suite
// enforces it). Three facts make that possible:
//
//   - Placement assigns every (replica, node) a distinct physical unit, so a
//     unit's SlotAlloc/Outstanding call sequence is just "its node's threads
//     in thread order" — preserved whether the loop nest is thread-major or
//     node-major, as long as lanes stay in thread order.
//   - The memory system, LVC and CVT are call-order sensitive, so nodes
//     whose value or completion time depends on a stateful hook (memory,
//     live-value and terminator nodes, and everything downstream of them)
//     are walked thread-major, reproducing the scalar hook order exactly.
//     The remaining "static" nodes — pure dataflow whose inputs are pure —
//     execute node-major over the whole wave.
//   - Thread admission (one thread per initiator per cycle, bounded by the
//     token-buffer virtual channels) consumes completion times of earlier
//     threads. Waves admit threads only while admission is *provably*
//     independent of the completion times still being computed in this
//     wave, using a per-replica critical-path lower bound (see formWave);
//     otherwise the wave flushes. Degenerate waves of one thread reduce to
//     the scalar schedule, so exactness never depends on wave size.
//
// Side-effect order on the error path is likewise identical: hooks fire in
// scalar order, so the first failing access is the same one, and the partial
// functional state it leaves behind matches the scalar walk's.

import (
	"context"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
)

// batchLanes is the operand-plane width: the maximum number of threads one
// wave executes. It bounds the SoA arena at nNodes*batchLanes entries (the
// fabric caps nNodes*replicas at the unit count, so the arena stays small)
// while leaving waves wide enough to amortize per-node dispatch.
const batchLanes = 256

// exec codes: the batched executor's predecoded node dispatch.
const (
	xInit uint8 = iota
	xTerm
	xSplit
	xJoin
	xLVLoad
	xLVStore
	xGeom
	xParam
	xMem
	xSCU
	xALU
)

// progEdge is one predecoded input edge: source node plane and token latency.
type progEdge struct {
	src int32
	lat int64
}

// progNode is the predecoded form of one graph node.
type progNode struct {
	id     int32
	exec   uint8
	class  kir.UnitClass
	fp     bool
	store  bool
	shared bool
	op     kir.Op
	pred   int32 // predicate operand's node ID, -1 when unpredicated
	in0    int32 // operand node IDs; absent operands point at the zero slot
	in1    int32
	in2    int32
	lv     int32
	imm    int32
	eo, e1 int32 // this node's range in the per-replica edge array
	lat    int64
}

// nodeProg is a compiled placement: predecoded nodes, flattened per-replica
// edge latencies, the static/dynamic partition, per-replica critical-path
// lower bounds, and the batched (order-independent) statistic constants.
// Programs are immutable once built and cached per placement.
type nodeProg struct {
	n       int
	nodes   []progNode
	static  []progNode   // nodes executable node-major, topological order
	dynamic []progNode   // nodes walked thread-major, topological order
	unit    []int32      // [replica*n + node] physical unit
	edges   [][]progEdge // per replica: flat edge array addressed by eOff
	eOff    []int32      // [node+1] edge offsets into edges[r]
	tcrit   []int64      // per replica: lower bound on thread end - inject

	classCount  [kir.NumUnitClasses]uint64
	fpNodes     uint64
	lvLoadNodes uint64
	lvStoreNodes uint64
	transfers   uint64
	hopSum      []uint64 // per replica: total token hops per thread
}

// progFor returns the cached program for a placement, compiling it on first
// use. Placements are immutable and cached by the machines (one per basic
// block), so the map stays small and steady-state runs allocate nothing.
func (e *Engine) progFor(p *fabric.Placement) (*nodeProg, error) {
	if pr, ok := e.progs[p]; ok {
		return pr, nil
	}
	pr, err := compileProg(p)
	if err != nil {
		return nil, err
	}
	if e.progs == nil {
		e.progs = make(map[*fabric.Placement]*nodeProg)
	}
	e.progs[p] = pr
	return pr, nil
}

// compileProg predecodes a placement into a nodeProg.
func compileProg(p *fabric.Placement) (*nodeProg, error) {
	g := p.Graph
	n := len(g.Nodes)
	pr := &nodeProg{
		n:     n,
		nodes: make([]progNode, n),
		unit:  make([]int32, p.Replicas*n),
		eOff:  make([]int32, n+1),
		tcrit: make([]int64, p.Replicas),
		hopSum: make([]uint64, p.Replicas),
	}

	staticNode := make([]bool, n)
	for _, nd := range g.Nodes {
		pn := &pr.nodes[nd.ID]
		pn.id = int32(nd.ID)
		pn.class = nd.Class()
		pn.op = nd.Instr.Op
		pn.imm = nd.Instr.Imm
		pn.pred, pn.in0, pn.in1, pn.in2 = -1, -1, -1, -1
		pn.lv = int32(nd.LV)
		if len(nd.In) > 0 {
			pn.in0 = int32(nd.In[0])
		}
		if len(nd.In) > 1 {
			pn.in1 = int32(nd.In[1])
		}
		if len(nd.In) > 2 {
			pn.in2 = int32(nd.In[2])
		}
		switch nd.Kind {
		case compile.NodeInit:
			pn.exec, pn.lat = xInit, 0
		case compile.NodeTerm:
			pn.exec, pn.lat = xTerm, 1
		case compile.NodeSplit:
			pn.exec, pn.lat = xSplit, 1
		case compile.NodeJoin:
			pn.exec, pn.lat = xJoin, 1
		case compile.NodeLVLoad:
			pn.exec = xLVLoad
			pr.lvLoadNodes++
		case compile.NodeLVStore:
			pn.exec = xLVStore
			pr.lvStoreNodes++
		case compile.NodeOp:
			op := nd.Instr.Op
			switch {
			case op.IsGeometry():
				pn.exec, pn.lat = xGeom, OpLatency(op)
			case op == kir.OpParam:
				pn.exec, pn.lat = xParam, 1
			case op.IsMemory():
				pn.exec = xMem
				pn.store = op.IsStore()
				pn.shared = op.IsShared()
				if nd.HasPred {
					pn.pred = int32(nd.In[nd.Pred])
				}
			case op.Class() == kir.ClassSCU:
				pn.exec, pn.lat = xSCU, OpLatency(op)
			default:
				pn.exec, pn.lat = xALU, OpLatency(op)
			}
			// Zero operands beyond the opcode's source count, mirroring the
			// scalar walk's operand() rule.
			if op.NumSrc() < 3 {
				pn.in2 = -1
			}
			if op.NumSrc() < 2 {
				pn.in1 = -1
			}
			if op.NumSrc() < 1 {
				pn.in0 = -1
			}
			if op.IsFloat() && pn.class == kir.ClassALU {
				pn.fp = true
			}
		default:
			return nil, errUnknownNodeKind
		}

		// Operand planes are lane-major with one extra always-zero slot at
		// index n; pointing absent operands there makes every value read
		// unconditional (the scalar operand() rule, without the branch).
		if pn.in0 < 0 {
			pn.in0 = int32(n)
		}
		if pn.in1 < 0 {
			pn.in1 = int32(n)
		}
		if pn.in2 < 0 {
			pn.in2 = int32(n)
		}

		// Static = value and timing both independent of any stateful hook:
		// a pure node kind with all inputs static. Param/Geometry values
		// come from hooks but those are pure by the Hooks contract.
		pure := false
		switch pn.exec {
		case xInit, xSplit, xJoin, xGeom, xParam, xSCU, xALU:
			pure = true
		}
		if pure {
			for _, in := range nd.In {
				pure = pure && staticNode[in]
			}
			for _, in := range nd.CtlIn {
				pure = pure && staticNode[in]
			}
		}
		staticNode[nd.ID] = pure

		pr.classCount[pn.class]++
		if pn.fp {
			pr.fpNodes++
		}
		pr.transfers += uint64(len(nd.In) + len(nd.CtlIn))
		pr.eOff[nd.ID+1] = int32(len(nd.In) + len(nd.CtlIn))
	}
	for i := 0; i < n; i++ {
		pr.eOff[i+1] += pr.eOff[i]
		pr.nodes[i].eo = pr.eOff[i]
		pr.nodes[i].e1 = pr.eOff[i+1]
	}
	// Partition into the node-major static schedule and the thread-major
	// dynamic walk, as predecoded copies so the executors' inner loops touch
	// one dense array instead of chasing IDs.
	for i := 0; i < n; i++ {
		if staticNode[i] {
			pr.static = append(pr.static, pr.nodes[i])
		} else {
			pr.dynamic = append(pr.dynamic, pr.nodes[i])
		}
	}

	// Per-replica flattened edges, hop totals, and the critical-path lower
	// bound. A node whose completion the engine computes itself (everything
	// except memory and live-value accesses, whose hooks own their timing)
	// satisfies done >= inject + dist, where dist accumulates unit latency
	// plus edge hops along engine-timed paths; tcrit is the max such dist,
	// so every thread's end >= inject + tcrit no matter what the hooks do.
	dist := make([]int64, n)
	for r := 0; r < p.Replicas; r++ {
		edges := make([]progEdge, pr.eOff[n])
		var hops uint64
		var tc int64
		for _, nd := range g.Nodes {
			o := pr.eOff[nd.ID]
			for i, in := range nd.In {
				edges[o+int32(i)] = progEdge{src: int32(in), lat: p.EdgeLat[r][nd.ID][i]}
			}
			o += int32(len(nd.In))
			for i, in := range nd.CtlIn {
				edges[o+int32(i)] = progEdge{src: int32(in), lat: p.CtlLat[r][nd.ID][i]}
			}
			hops += p.HopSum[r][nd.ID]
			pr.unit[r*n+nd.ID] = int32(p.UnitOf[r][nd.ID])

			pn := &pr.nodes[nd.ID]
			if pn.exec == xMem || pn.exec == xLVLoad || pn.exec == xLVStore {
				dist[nd.ID] = -1 // hook-timed: no engine bound
				continue
			}
			d := int64(0)
			for i, in := range nd.In {
				if dist[in] >= 0 {
					if t := dist[in] + p.EdgeLat[r][nd.ID][i]; t > d {
						d = t
					}
				}
			}
			for i, in := range nd.CtlIn {
				if dist[in] >= 0 {
					if t := dist[in] + p.CtlLat[r][nd.ID][i]; t > d {
						d = t
					}
				}
			}
			dist[nd.ID] = d + pn.lat
			if dist[nd.ID] > tc {
				tc = dist[nd.ID]
			}
		}
		pr.edges = append(pr.edges, edges)
		pr.hopSum[r] = hops
		pr.tcrit[r] = tc
	}
	return pr, nil
}

// ensureLanes sizes the SoA planes and per-wave lane bookkeeping for a
// program (reusing warm backing arrays, so steady state allocates nothing).
// Planes are lane-major — lane l's values live at pvals[l*(n+1) : l*(n+1)+n]
// — so the thread-major dynamic walk touches one dense stripe per lane, just
// like the scalar walk's vals array; index n of each stripe is the shared
// always-zero operand slot, cleared here (values are reused across programs
// of different shapes, so a stale write could land anywhere).
func (e *Engine) ensureLanes(nNodes, replicas int) {
	stride := nNodes + 1
	e.pvals = resize(e.pvals, stride*batchLanes)
	e.pdone = resize(e.pdone, stride*batchLanes)
	clear(e.pvals)
	e.laneTid = resize(e.laneTid, batchLanes)
	e.laneRep = resize(e.laneRep, batchLanes)
	e.laneInj = resize(e.laneInj, batchLanes)
	e.laneEnd = resize(e.laneEnd, batchLanes)
	e.pending = resize(e.pending, replicas)
	e.pendInj = resize(e.pendInj, replicas)
	clear(e.pending)
}

// runBatched is the timed batch executor: waves of threads admitted under
// the exact scalar injection schedule, static nodes fired node-major over
// the wave, dynamic nodes walked thread-major for exact hook order.
//
// The cancellation poll runs once per wave, which is at least as coarse as
// the scalar path's per-64-thread stride.
//
//vgiw:coarsepoll
func (e *Engine) runBatched(ctx context.Context, p *fabric.Placement, threads []int, h *Hooks, st *Stats) (*Stats, error) {
	prog, err := e.progFor(p)
	if err != nil {
		return nil, err
	}
	e.ensureLanes(prog.n, p.Replicas)
	depth := e.grid.Config().TokenBufDepth

	base := 0
	for base < len(threads) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lanes := e.formWave(prog, threads, base, p.Replicas, depth)
		for i := range prog.static {
			e.execStaticNode(prog, &prog.static[i], lanes, h, st)
		}
		for l := 0; l < lanes; l++ {
			if err := e.execDynLane(prog, l, h, st); err != nil {
				return nil, err
			}
		}
		for l := 0; l < lanes; l++ {
			e.vcs[e.laneRep[l]].Record(e.laneEnd[l])
			if e.laneEnd[l] > st.EndCycle {
				st.EndCycle = e.laneEnd[l]
			}
		}
		clear(e.pending)
		base += lanes
	}
	addBatchedStats(prog, st, len(threads), p.Replicas)
	return st, nil
}

// formWave admits as many threads as the exact scalar injection schedule
// allows without knowing this wave's completion times. Per replica, the
// virtual-channel buffer (vcs) holds recorded completion times; `pending`
// counts threads admitted into this wave whose ends are not yet recorded.
// Admission at ready is exact when:
//
//   - the buffer is not full counting pending threads (the scalar Admit
//     would return ready whether or not a pending end had retired); or
//   - nothing is pending (the scalar pop-the-earliest is fully known); or
//   - every pending end provably exceeds ready AND the buffer's earliest
//     recorded end is <= the pending lower bound (so it is the global
//     earliest; ties go to the earlier-recorded entry, which is the
//     recorded one). The bound is firstPendingInject + tcrit.
//
// Otherwise the wave flushes: the admitted lanes execute, record their
// ends, and the next wave decides with full knowledge — which is exactly
// the scalar schedule.
//
//vgiw:hotpath
func (e *Engine) formWave(prog *nodeProg, threads []int, base, replicas, depth int) int {
	lanes := 0
	for j := base; j < len(threads) && lanes < batchLanes; j++ {
		r := j % replicas
		ready := e.injNext[r]
		vc := &e.vcs[r]
		vc.Retire(ready)
		inject := ready
		if vc.Len()+int(e.pending[r]) >= depth {
			if e.pending[r] == 0 {
				if m := vc.PopMin(); m > inject {
					inject = m
				}
			} else {
				lb := e.pendInj[r] + prog.tcrit[r]
				if lb <= ready || vc.Len() == 0 || vc.Min() > lb {
					break
				}
				if m := vc.PopMin(); m > inject {
					inject = m
				}
			}
		}
		e.injNext[r] = inject + 1
		if e.pending[r] == 0 {
			e.pendInj[r] = inject
		}
		e.pending[r]++
		e.laneTid[lanes] = threads[j]
		e.laneRep[lanes] = int32(r)
		e.laneInj[lanes] = inject
		e.laneEnd[lanes] = inject
		lanes++
	}
	return lanes
}

// execStaticNode fires one pure node for every lane of the wave: a timing
// pass (unit issue in thread order) and a branch-free value pass.
//
//vgiw:hotpath
func (e *Engine) execStaticNode(prog *nodeProg, pn *progNode, lanes int, h *Hooks, st *Stats) {
	ni := int(pn.id)
	stride := prog.n + 1

	inOrder := e.opt.InOrderThreads
	if pn.exec == xInit {
		// The initiator completes at injection without claiming an issue
		// slot; only the profile issue count and in-order bookkeeping move.
		for l := 0; l < lanes; l++ {
			e.pdone[l*stride+ni] = e.laneInj[l]
			e.pvals[l*stride+ni] = uint32(e.laneTid[l])
		}
		if inOrder || e.opt.Profile {
			for l := 0; l < lanes; l++ {
				r := int(e.laneRep[l])
				if inOrder {
					e.lastDone[r*e.nNodes+ni] = e.laneInj[l]
				}
				if e.opt.Profile {
					st.UnitIssues[prog.unit[r*prog.n+ni]]++
				}
			}
		}
		return
	}
	for l := 0; l < lanes; l++ {
		r := int(e.laneRep[l])
		ready := e.laneInj[l]
		dn := e.pdone[l*stride : l*stride+stride]
		for _, ed := range prog.edges[r][pn.eo:pn.e1] {
			if t := dn[ed.src] + ed.lat; t > ready {
				ready = t
			}
		}
		if inOrder {
			if t := e.lastDone[r*e.nNodes+ni]; t > ready {
				ready = t
			}
		}
		unit := int(prog.unit[r*prog.n+ni])
		var start int64
		if pn.exec == xSCU {
			pool := &e.scuPool[unit]
			start = e.units[unit].Alloc(pool.Admit(ready))
			pool.Record(start + pn.lat)
		} else {
			start = e.units[unit].Alloc(ready)
		}
		done := start + pn.lat
		dn[ni] = done
		if inOrder {
			e.lastDone[r*e.nNodes+ni] = done
		}
		if done > e.laneEnd[l] {
			e.laneEnd[l] = done
		}
		if e.opt.Profile {
			st.UnitIssues[unit]++
			if d := done - e.laneInj[l]; d > st.NodeLatency[ni] {
				st.NodeLatency[ni] = d
			}
			if d := done - ready; d > st.NodeService[ni] {
				st.NodeService[ni] = d
			}
		}
	}

	switch pn.exec {
	case xParam:
		v := h.Param(int(pn.imm))
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = v
		}
	case xGeom:
		op := pn.op
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = h.Geometry(op, e.laneTid[l])
		}
	case xSplit:
		src := int(pn.in0)
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = e.pvals[l*stride+src]
		}
	case xJoin:
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = 0
		}
	default: // xALU, xSCU: branch-free Eval over the wave's lane stripes
		a, b, c := int(pn.in0), int(pn.in1), int(pn.in2)
		op, imm := pn.op, pn.imm
		for l := 0; l < lanes; l++ {
			vals := e.pvals[l*stride : l*stride+stride]
			vals[ni] = kir.Eval(op, vals[a], vals[b], vals[c], imm)
		}
	}
}

// execDynLane walks the dynamic (hook-dependent) nodes of one lane in
// topological order — the scalar walk restricted to the nodes that touch
// stateful hooks, so every memory, live-value and branch callback fires in
// exact thread-major order.
//
//vgiw:hotpath
func (e *Engine) execDynLane(prog *nodeProg, l int, h *Hooks, st *Stats) error {
	tid := e.laneTid[l]
	r := int(e.laneRep[l])
	inject := e.laneInj[l]
	end := e.laneEnd[l]
	inOrder := e.opt.InOrderThreads
	edges := prog.edges[r]
	stride := prog.n + 1
	vals := e.pvals[l*stride : l*stride+stride]
	dn := e.pdone[l*stride : l*stride+stride]

	for i := range prog.dynamic {
		pn := &prog.dynamic[i]
		ni := int(pn.id)
		ready := inject
		for _, ed := range edges[pn.eo:pn.e1] {
			if t := dn[ed.src] + ed.lat; t > ready {
				ready = t
			}
		}
		if inOrder {
			if t := e.lastDone[r*e.nNodes+ni]; t > ready {
				ready = t
			}
		}
		unit := int(prog.unit[r*prog.n+ni])

		var done int64
		var val uint32
		switch pn.exec {
		case xTerm:
			done = e.units[unit].Alloc(ready) + 1
			if h.Branch != nil {
				h.Branch(tid, vals[pn.in0], done)
			}
		case xSplit:
			done = e.units[unit].Alloc(ready) + 1
			val = vals[pn.in0]
		case xJoin:
			done = e.units[unit].Alloc(ready) + 1
		case xLVLoad:
			start := e.units[unit].Alloc(ready)
			val, done = h.AccessLV(int(pn.lv), tid, false, 0, start)
		case xLVStore:
			start := e.units[unit].Alloc(ready)
			_, done = h.AccessLV(int(pn.lv), tid, true, vals[pn.in0], start)
		case xMem:
			if pn.pred >= 0 && vals[pn.pred] == 0 {
				st.SkippedMemOps++
				done = e.units[unit].Alloc(ready) + 1
			} else {
				addr := int64(int32(vals[pn.in0]) + pn.imm)
				var value uint32
				if pn.store {
					value = vals[pn.in1]
				}
				space := SpaceGlobal
				if pn.shared {
					space = SpaceShared
					st.SharedAccesses++
				} else {
					st.GlobalAccesses++
				}
				start := e.units[unit].Alloc(e.resBuf[unit].Admit(ready))
				word, d, err := h.AccessMem(space, addr, pn.store, value, tid, start)
				if err != nil {
					return err
				}
				e.resBuf[unit].Record(d)
				val, done = word, d
			}
		case xSCU:
			pool := &e.scuPool[unit]
			start := e.units[unit].Alloc(pool.Admit(ready))
			pool.Record(start + pn.lat)
			done = start + pn.lat
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		default: // xALU
			done = e.units[unit].Alloc(ready) + pn.lat
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		}

		vals[ni] = val
		dn[ni] = done
		if inOrder {
			e.lastDone[r*e.nNodes+ni] = done
		}
		if done > end {
			end = done
		}
		if e.opt.Profile {
			st.UnitIssues[unit]++
			if d := done - inject; d > st.NodeLatency[ni] {
				st.NodeLatency[ni] = d
			}
			if d := done - ready; d > st.NodeService[ni] {
				st.NodeService[ni] = d
			}
		}
	}
	e.laneEnd[l] = end
	return nil
}

// addBatchedStats folds in the order-independent per-thread constants: node
// executions by class, FP ops, token hops/transfers and LV access counts are
// all unconditional per (node, thread), so totals are per-node constants
// times thread counts — exactly what the scalar walk accumulates one
// increment at a time.
//
//vgiw:hotpath
func addBatchedStats(prog *nodeProg, st *Stats, nThreads, replicas int) {
	t := uint64(nThreads)
	for cl := range prog.classCount {
		st.Ops[cl] += prog.classCount[cl] * t
	}
	st.FPOps += prog.fpNodes * t
	st.TokenTransfers += prog.transfers * t
	st.LVLoads += prog.lvLoadNodes * t
	st.LVStores += prog.lvStoreNodes * t
	for r := 0; r < replicas; r++ {
		n := uint64(nThreads / replicas)
		if r < nThreads%replicas {
			n++
		}
		st.TokenHops += prog.hopSum[r] * n
	}
}

// runFast is the functional-only executor (Options.Fast): identical results
// and op counts, no timing. Static values fire node-major over full batches;
// dynamic nodes are walked thread-major so memory, live-value and branch
// side effects land in exact scalar order (which makes the results bit-exact
// even for kernels with cross-thread memory dependences).
//
// The cancellation poll runs once per batchLanes threads.
//
//vgiw:coarsepoll
func (e *Engine) runFast(ctx context.Context, p *fabric.Placement, threads []int, startCycle int64, h *Hooks, st *Stats) (*Stats, error) {
	prog, err := e.progFor(p)
	if err != nil {
		return nil, err
	}
	e.ensureLanes(prog.n, p.Replicas)

	for base := 0; base < len(threads); base += batchLanes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lanes := len(threads) - base
		if lanes > batchLanes {
			lanes = batchLanes
		}
		copy(e.laneTid[:lanes], threads[base:base+lanes])
		for i := range prog.static {
			e.fastStaticNode(prog, &prog.static[i], lanes, h)
		}
		for l := 0; l < lanes; l++ {
			if err := e.fastDynLane(prog, l, startCycle, h, st); err != nil {
				return nil, err
			}
		}
	}
	addBatchedStats(prog, st, len(threads), p.Replicas)
	return st, nil
}

// fastStaticNode computes one pure node's values for a batch of lanes.
//
//vgiw:hotpath
func (e *Engine) fastStaticNode(prog *nodeProg, pn *progNode, lanes int, h *Hooks) {
	ni := int(pn.id)
	stride := prog.n + 1
	switch pn.exec {
	case xInit:
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = uint32(e.laneTid[l])
		}
	case xParam:
		v := h.Param(int(pn.imm))
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = v
		}
	case xGeom:
		op := pn.op
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = h.Geometry(op, e.laneTid[l])
		}
	case xSplit:
		src := int(pn.in0)
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = e.pvals[l*stride+src]
		}
	case xJoin:
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = 0
		}
	default: // xALU, xSCU
		a, b, c := int(pn.in0), int(pn.in1), int(pn.in2)
		op, imm := pn.op, pn.imm
		for l := 0; l < lanes; l++ {
			vals := e.pvals[l*stride : l*stride+stride]
			vals[ni] = kir.Eval(op, vals[a], vals[b], vals[c], imm)
		}
	}
}

// fastDynLane walks one lane's dynamic nodes functionally, using the fast
// hook variants when wired (falling back to the timed hooks with their
// timing results discarded).
//
//vgiw:hotpath
func (e *Engine) fastDynLane(prog *nodeProg, l int, now int64, h *Hooks, st *Stats) error {
	tid := e.laneTid[l]
	stride := prog.n + 1
	vals := e.pvals[l*stride : l*stride+stride]
	for i := range prog.dynamic {
		pn := &prog.dynamic[i]
		ni := int(pn.id)
		var val uint32
		switch pn.exec {
		case xTerm:
			if h.Branch != nil {
				h.Branch(tid, vals[pn.in0], now)
			}
		case xSplit:
			val = vals[pn.in0]
		case xJoin:
		case xLVLoad:
			if h.AccessLVFast != nil {
				val = h.AccessLVFast(int(pn.lv), tid, false, 0)
			} else {
				val, _ = h.AccessLV(int(pn.lv), tid, false, 0, now)
			}
		case xLVStore:
			if h.AccessLVFast != nil {
				h.AccessLVFast(int(pn.lv), tid, true, vals[pn.in0])
			} else {
				_, _ = h.AccessLV(int(pn.lv), tid, true, vals[pn.in0], now)
			}
		case xMem:
			if pn.pred >= 0 && vals[pn.pred] == 0 {
				st.SkippedMemOps++
				break
			}
			addr := int64(int32(vals[pn.in0]) + pn.imm)
			var value uint32
			if pn.store {
				value = vals[pn.in1]
			}
			space := SpaceGlobal
			if pn.shared {
				space = SpaceShared
				st.SharedAccesses++
			} else {
				st.GlobalAccesses++
			}
			var word uint32
			var err error
			if h.AccessMemFast != nil {
				word, err = h.AccessMemFast(space, addr, pn.store, value, tid)
			} else {
				word, _, err = h.AccessMem(space, addr, pn.store, value, tid, now)
			}
			if err != nil {
				return err
			}
			val = word
		default: // xALU, xSCU
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		}
		vals[ni] = val
	}
	return nil
}
