package engine

// vector.go is the batched executor: instead of walking the whole graph once
// per thread (runThread), it runs per-node thread batches over struct-of-
// arrays operand planes. The paper's coalescing insight applied to the
// simulator itself — amortize per-node control over the whole thread vector.
//
// Bit-exactness contract. The batched path must reproduce the scalar walk's
// results AND every cycle-level metric byte for byte (the differential suite
// enforces it). Three facts make that possible:
//
//   - Placement assigns every (replica, node) a distinct physical unit, so a
//     unit's SlotAlloc/Outstanding call sequence is just "its node's threads
//     in thread order" — preserved whether the loop nest is thread-major or
//     node-major, as long as lanes stay in thread order.
//   - The memory system, LVC and CVT are call-order sensitive, so nodes
//     whose value or completion time depends on a stateful hook (memory,
//     live-value and terminator nodes, and everything downstream of them)
//     are walked thread-major, reproducing the scalar hook order exactly.
//     The remaining "static" nodes — pure dataflow whose inputs are pure —
//     execute node-major over the whole wave.
//   - Thread admission (one thread per initiator per cycle, bounded by the
//     token-buffer virtual channels) consumes completion times of earlier
//     threads. Waves admit threads only while admission is *provably*
//     independent of the completion times still being computed in this
//     wave, using a per-replica critical-path lower bound (see formWave);
//     otherwise the wave flushes. Degenerate waves of one thread reduce to
//     the scalar schedule, so exactness never depends on wave size.
//
// Side-effect order on the error path is likewise identical: hooks fire in
// scalar order, so the first failing access is the same one, and the partial
// functional state it leaves behind matches the scalar walk's. The one
// carve-out is the wave-vector memory path (execDynWaveVec): within a wave
// chunk it regroups the batched node's hook calls relative to the other
// lanes' terminator Branch calls, so an erroring batch may leave CVT side
// effects for chunk lanes the scalar walk would not have reached. Results
// and functional memory state are unaffected — the failing element and the
// partial data effects are still the scalar walk's, and the run aborts.

import (
	"context"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
)

// batchLanes is the operand-plane width: the maximum number of threads one
// wave executes. It bounds the SoA arena at nNodes*batchLanes entries (the
// fabric caps nNodes*replicas at the unit count, so the arena stays small)
// while leaving waves wide enough to amortize per-node dispatch.
const batchLanes = 256

// exec codes: the batched executor's predecoded node dispatch.
const (
	xInit uint8 = iota
	xTerm
	xSplit
	xJoin
	xLVLoad
	xLVStore
	xGeom
	xParam
	xMem
	xSCU
	xALU
)

// progEdge is one predecoded input edge: source node plane and token latency.
type progEdge struct {
	src int32
	lat int64
}

// dynNode is the per-replica predecoded form of a node walked per lane in
// collapsed mode: unit id and static-input fold resolved at compile time, and
// the first two dynamic-source edges inlined so the per-lane ready
// computation usually touches no side arrays at all. Overflow edges (third
// and beyond) live in the per-replica filtered edge array at [xo:x1).
type dynNode struct {
	id     int32
	exec   uint8
	fp     bool
	store  bool
	shared bool
	op     kir.Op
	pred   int32
	in0    int32
	in1    int32
	in2    int32
	lv     int32
	imm    int32
	unit   int32
	src0   int32 // first dynamic-source edge, -1 when absent
	src1   int32 // second dynamic-source edge, -1 when absent
	xo, x1 int32 // overflow dynamic-source edges in dedges[r]
	lat    int64
	lat0   int64
	lat1   int64
	sbase  int64 // folded static-input contribution to ready (>= 0)
}

// progNode is the predecoded form of one graph node.
type progNode struct {
	id     int32
	exec   uint8
	class  kir.UnitClass
	fp     bool
	store  bool
	shared bool
	op     kir.Op
	pred   int32 // predicate operand's node ID, -1 when unpredicated
	in0    int32 // operand node IDs; absent operands point at the zero slot
	in1    int32
	in2    int32
	lv     int32
	imm    int32
	eo, e1 int32 // this node's range in the per-replica edge array
	lat    int64
}

// nodeProg is a compiled placement: predecoded nodes, flattened per-replica
// edge latencies, the static/dynamic partition, per-replica critical-path
// lower bounds, and the batched (order-independent) statistic constants.
// Programs are immutable once built and cached per placement.
type nodeProg struct {
	n       int
	nodes   []progNode
	static  []progNode   // nodes executable node-major, topological order
	dynamic []progNode   // nodes walked thread-major, topological order
	unit    []int32      // [replica*n + node] physical unit
	edges   [][]progEdge // per replica: flat edge array addressed by eOff
	eOff    []int32      // [node+1] edge offsets into edges[r]
	tcrit   []int64      // per replica: lower bound on thread end - inject

	// Collapsed-timing compilation (see execStaticCollapsed): konst[r*n+i]
	// is node i's constant completion offset over injection in replica r, or
	// -1 when the node's timing is not collapsible; sbase/dedges/dOff carry
	// the static-fold + filtered dynamic edges for the remaining nodes; rdyn
	// is the per-replica predecoded dynamic walk; endK is the per-replica
	// folded static contribution to a lane's end time. canCollapse is false
	// when the placement shares a physical unit between nodes (then no
	// node's Alloc stream is provably private and every wave runs the
	// reference per-lane timing).
	canCollapse bool
	konst       []int64
	sbase       []int64
	dedges      [][]progEdge
	dOff        []int32
	rdyn        [][]dynNode
	endK        []int64

	// vecIdx is the index (into dynamic/rdyn) of the single stateful node
	// when the wave-vector memory path may engage, -1 otherwise. The path
	// requires collapsed mode (dedicated units, so splitting the per-lane
	// walk at the stateful node cannot reorder any unit's Alloc stream) and
	// exactly one node whose timing goes through a System-stateful hook
	// (memory or live-value — two such nodes couple through the shared
	// memory system, and batching either one would reorder their hook
	// interleaving). Terminators may sit on either side of the node: Branch
	// touches only the CVT, which is disjoint from the memory system, so
	// regrouping Branch calls around the batched hook call leaves every
	// run result byte-identical; the only observable difference is on an
	// erroring batch, where Branch side effects of other lanes in the same
	// chunk may already have fired (the run aborts either way, and the
	// functional memory state still stops at the same first failing
	// element).
	vecIdx int

	classCount   [kir.NumUnitClasses]uint64
	fpNodes      uint64
	lvLoadNodes  uint64
	lvStoreNodes uint64
	transfers    uint64
	hopSum       []uint64 // per replica: total token hops per thread
}

// progFor returns the cached program for a placement, compiling it on first
// use. Placements are immutable and cached by the machines (one per basic
// block), so the map stays small and steady-state runs allocate nothing.
func (e *Engine) progFor(p *fabric.Placement) (*nodeProg, error) {
	if pr, ok := e.progs[p]; ok {
		return pr, nil
	}
	pr, err := compileProg(p)
	if err != nil {
		return nil, err
	}
	if e.progs == nil {
		e.progs = make(map[*fabric.Placement]*nodeProg)
	}
	e.progs[p] = pr
	return pr, nil
}

// compileProg predecodes a placement into a nodeProg.
func compileProg(p *fabric.Placement) (*nodeProg, error) {
	g := p.Graph
	n := len(g.Nodes)
	pr := &nodeProg{
		n:      n,
		nodes:  make([]progNode, n),
		unit:   make([]int32, p.Replicas*n),
		eOff:   make([]int32, n+1),
		tcrit:  make([]int64, p.Replicas),
		hopSum: make([]uint64, p.Replicas),
	}

	staticNode := make([]bool, n)
	for _, nd := range g.Nodes {
		pn := &pr.nodes[nd.ID]
		pn.id = int32(nd.ID)
		pn.class = nd.Class()
		pn.op = nd.Instr.Op
		pn.imm = nd.Instr.Imm
		pn.pred, pn.in0, pn.in1, pn.in2 = -1, -1, -1, -1
		pn.lv = int32(nd.LV)
		if len(nd.In) > 0 {
			pn.in0 = int32(nd.In[0])
		}
		if len(nd.In) > 1 {
			pn.in1 = int32(nd.In[1])
		}
		if len(nd.In) > 2 {
			pn.in2 = int32(nd.In[2])
		}
		switch nd.Kind {
		case compile.NodeInit:
			pn.exec, pn.lat = xInit, 0
		case compile.NodeTerm:
			pn.exec, pn.lat = xTerm, 1
		case compile.NodeSplit:
			pn.exec, pn.lat = xSplit, 1
		case compile.NodeJoin:
			pn.exec, pn.lat = xJoin, 1
		case compile.NodeLVLoad:
			pn.exec = xLVLoad
			pr.lvLoadNodes++
		case compile.NodeLVStore:
			pn.exec = xLVStore
			pr.lvStoreNodes++
		case compile.NodeOp:
			op := nd.Instr.Op
			switch {
			case op.IsGeometry():
				pn.exec, pn.lat = xGeom, OpLatency(op)
			case op == kir.OpParam:
				pn.exec, pn.lat = xParam, 1
			case op.IsMemory():
				pn.exec = xMem
				pn.store = op.IsStore()
				pn.shared = op.IsShared()
				if nd.HasPred {
					pn.pred = int32(nd.In[nd.Pred])
				}
			case op.Class() == kir.ClassSCU:
				pn.exec, pn.lat = xSCU, OpLatency(op)
			default:
				pn.exec, pn.lat = xALU, OpLatency(op)
			}
			// Zero operands beyond the opcode's source count, mirroring the
			// scalar walk's operand() rule.
			if op.NumSrc() < 3 {
				pn.in2 = -1
			}
			if op.NumSrc() < 2 {
				pn.in1 = -1
			}
			if op.NumSrc() < 1 {
				pn.in0 = -1
			}
			if op.IsFloat() && pn.class == kir.ClassALU {
				pn.fp = true
			}
		default:
			return nil, errUnknownNodeKind
		}

		// Operand planes are lane-major with one extra always-zero slot at
		// index n; pointing absent operands there makes every value read
		// unconditional (the scalar operand() rule, without the branch).
		if pn.in0 < 0 {
			pn.in0 = int32(n)
		}
		if pn.in1 < 0 {
			pn.in1 = int32(n)
		}
		if pn.in2 < 0 {
			pn.in2 = int32(n)
		}

		// Static = value and timing both independent of any stateful hook:
		// a pure node kind with all inputs static. Param/Geometry values
		// come from hooks but those are pure by the Hooks contract.
		pure := false
		switch pn.exec {
		case xInit, xSplit, xJoin, xGeom, xParam, xSCU, xALU:
			pure = true
		}
		if pure {
			for _, in := range nd.In {
				pure = pure && staticNode[in]
			}
			for _, in := range nd.CtlIn {
				pure = pure && staticNode[in]
			}
		}
		staticNode[nd.ID] = pure

		pr.classCount[pn.class]++
		if pn.fp {
			pr.fpNodes++
		}
		pr.transfers += uint64(len(nd.In) + len(nd.CtlIn))
		pr.eOff[nd.ID+1] = int32(len(nd.In) + len(nd.CtlIn))
	}
	for i := 0; i < n; i++ {
		pr.eOff[i+1] += pr.eOff[i]
		pr.nodes[i].eo = pr.eOff[i]
		pr.nodes[i].e1 = pr.eOff[i+1]
	}
	// Partition into the node-major static schedule and the thread-major
	// dynamic walk, as predecoded copies so the executors' inner loops touch
	// one dense array instead of chasing IDs.
	for i := 0; i < n; i++ {
		if staticNode[i] {
			pr.static = append(pr.static, pr.nodes[i])
		} else {
			pr.dynamic = append(pr.dynamic, pr.nodes[i])
		}
	}

	// Per-replica flattened edges, hop totals, and the critical-path lower
	// bound. A node whose completion the engine computes itself (everything
	// except memory and live-value accesses, whose hooks own their timing)
	// satisfies done >= inject + dist, where dist accumulates unit latency
	// plus edge hops along engine-timed paths; tcrit is the max such dist,
	// so every thread's end >= inject + tcrit no matter what the hooks do.
	dist := make([]int64, n)
	for r := 0; r < p.Replicas; r++ {
		edges := make([]progEdge, pr.eOff[n])
		var hops uint64
		var tc int64
		for _, nd := range g.Nodes {
			o := pr.eOff[nd.ID]
			for i, in := range nd.In {
				edges[o+int32(i)] = progEdge{src: int32(in), lat: p.EdgeLat[r][nd.ID][i]}
			}
			o += int32(len(nd.In))
			for i, in := range nd.CtlIn {
				edges[o+int32(i)] = progEdge{src: int32(in), lat: p.CtlLat[r][nd.ID][i]}
			}
			hops += p.HopSum[r][nd.ID]
			pr.unit[r*n+nd.ID] = int32(p.UnitOf[r][nd.ID])

			pn := &pr.nodes[nd.ID]
			if pn.exec == xMem || pn.exec == xLVLoad || pn.exec == xLVStore {
				dist[nd.ID] = -1 // hook-timed: no engine bound
				continue
			}
			d := int64(0)
			for i, in := range nd.In {
				if dist[in] >= 0 {
					if t := dist[in] + p.EdgeLat[r][nd.ID][i]; t > d {
						d = t
					}
				}
			}
			for i, in := range nd.CtlIn {
				if dist[in] >= 0 {
					if t := dist[in] + p.CtlLat[r][nd.ID][i]; t > d {
						d = t
					}
				}
			}
			dist[nd.ID] = d + pn.lat
			if dist[nd.ID] > tc {
				tc = dist[nd.ID]
			}
		}
		pr.edges = append(pr.edges, edges)
		pr.hopSum[r] = hops
		pr.tcrit[r] = tc
	}
	compileCollapse(p, pr, staticNode)
	return pr, nil
}

// compileCollapse derives the collapsed-timing program: closed-form
// completion offsets for collapsible nodes and folded static inputs plus
// filtered dynamic edges for everything else.
//
// A node's timing collapses to done = inject + K when its completion is a
// pure function of its own injection cycle, which holds by induction when
// (a) the node is pure and engine-timed with a dedicated pipelined unit —
// not SCU (the instance pool couples lanes) and not hook-timed — and (b)
// every input is itself collapsible. Then each lane's ready is
// inject + max(0, max_e(K_src(e) + lat_e)), the per-replica injection
// sequence is strictly increasing, and a dedicated unit's SlotAlloc returns
// ready for a strictly increasing ready stream, so done = ready + lat:
// K = max(0, max_e(K_src + lat_e)) + lat, a per-replica compile-time
// constant. Collapsibility requires every (replica, node) pair to own a
// distinct physical unit — otherwise another node's allocations could land
// in the shared SlotAlloc and the closed form would diverge from the
// reference walk — so a placement with any shared unit disables collapse
// wholesale (canCollapse == false) rather than reasoning about which
// streams interleave.
func compileCollapse(p *fabric.Placement, pr *nodeProg, staticNode []bool) {
	n := pr.n
	reps := p.Replicas
	pr.konst = make([]int64, reps*n)
	pr.sbase = make([]int64, reps*n)
	pr.dOff = make([]int32, n+1)
	pr.endK = make([]int64, reps)

	pr.canCollapse = true
	seen := make(map[int32]bool, reps*n)
	for _, u := range pr.unit {
		if seen[u] {
			pr.canCollapse = false
			break
		}
		seen[u] = true
	}

	collapsible := make([]bool, n)
	for i := 0; i < n; i++ {
		pn := &pr.nodes[i]
		ok := staticNode[i] && pn.exec != xSCU
		if ok {
			for _, ed := range pr.edges[0][pn.eo:pn.e1] {
				ok = ok && collapsible[ed.src]
			}
		}
		collapsible[i] = ok
	}

	// Filtered dynamic-source edge offsets are replica-independent (edge
	// sources and collapsibility are graph properties; only latencies vary
	// per replica).
	for i := 0; i < n; i++ {
		pn := &pr.nodes[i]
		cnt := int32(0)
		for _, ed := range pr.edges[0][pn.eo:pn.e1] {
			if !collapsible[ed.src] {
				cnt++
			}
		}
		pr.dOff[i+1] = cnt
	}
	for i := 0; i < n; i++ {
		pr.dOff[i+1] += pr.dOff[i]
	}

	for r := 0; r < reps; r++ {
		dedges := make([]progEdge, pr.dOff[n])
		var endK int64
		for i := 0; i < n; i++ {
			pn := &pr.nodes[i]
			var sb int64
			o := pr.dOff[i]
			for _, ed := range pr.edges[r][pn.eo:pn.e1] {
				if collapsible[ed.src] {
					if t := pr.konst[r*n+int(ed.src)] + ed.lat; t > sb {
						sb = t
					}
				} else {
					dedges[o] = ed
					o++
				}
			}
			pr.sbase[r*n+i] = sb
			if collapsible[i] {
				pr.konst[r*n+i] = sb + pn.lat
				if pr.konst[r*n+i] > endK {
					endK = pr.konst[r*n+i]
				}
			} else {
				pr.konst[r*n+i] = -1
			}
		}
		pr.dedges = append(pr.dedges, dedges)
		pr.endK[r] = endK

		rd := make([]dynNode, len(pr.dynamic))
		for j := range pr.dynamic {
			pn := &pr.dynamic[j]
			i := int(pn.id)
			d := dynNode{
				id: pn.id, exec: pn.exec, fp: pn.fp, store: pn.store,
				shared: pn.shared, op: pn.op, pred: pn.pred,
				in0: pn.in0, in1: pn.in1, in2: pn.in2, lv: pn.lv, imm: pn.imm,
				unit: pr.unit[r*n+i], lat: pn.lat,
				src0: -1, src1: -1, sbase: pr.sbase[r*n+i],
			}
			eo, e1 := pr.dOff[i], pr.dOff[i+1]
			if e1 > eo {
				d.src0, d.lat0 = dedges[eo].src, dedges[eo].lat
				eo++
			}
			if e1 > eo {
				d.src1, d.lat1 = dedges[eo].src, dedges[eo].lat
				eo++
			}
			d.xo, d.x1 = eo, e1
			rd[j] = d
		}
		pr.rdyn = append(pr.rdyn, rd)
	}

	pr.vecIdx = -1
	if pr.canCollapse {
		cnt, idx := 0, -1
		for j := range pr.dynamic {
			switch pr.dynamic[j].exec {
			case xMem, xLVLoad, xLVStore:
				cnt++
				idx = j
			}
		}
		if cnt == 1 {
			pr.vecIdx = idx
		}
	}
}

// ensureLanes sizes the SoA planes and per-wave lane bookkeeping for a
// program (reusing warm backing arrays, so steady state allocates nothing).
// Planes are lane-major — lane l's values live at pvals[l*(n+1) : l*(n+1)+n]
// — so the thread-major dynamic walk touches one dense stripe per lane, just
// like the scalar walk's vals array; index n of each stripe is the shared
// always-zero operand slot, cleared here (values are reused across programs
// of different shapes, so a stale write could land anywhere).
func (e *Engine) ensureLanes(nNodes, replicas int) {
	stride := nNodes + 1
	e.pvals = resize(e.pvals, stride*batchLanes)
	e.pdone = resize(e.pdone, stride*batchLanes)
	clear(e.pvals)
	e.laneTid = resize(e.laneTid, batchLanes)
	e.laneRep = resize(e.laneRep, batchLanes)
	e.laneInj = resize(e.laneInj, batchLanes)
	e.laneEnd = resize(e.laneEnd, batchLanes)
	e.pending = resize(e.pending, replicas)
	e.pendInj = resize(e.pendInj, replicas)
	e.repCnt = resize(e.repCnt, replicas)
	e.vAddr = resize(e.vAddr, batchLanes)
	e.vVal = resize(e.vVal, batchLanes)
	e.vTid = resize(e.vTid, batchLanes)
	e.vIssue = resize(e.vIssue, batchLanes)
	e.vWord = resize(e.vWord, batchLanes)
	e.vDone = resize(e.vDone, batchLanes)
	e.vLane = resize(e.vLane, batchLanes)
	e.vReady = resize(e.vReady, batchLanes)
	e.vMax = resize(e.vMax, replicas)
	e.vPend = resize(e.vPend, replicas)
	clear(e.pending)
}

// runBatched is the timed batch executor: waves of threads admitted under
// the exact scalar injection schedule, static nodes fired node-major over
// the wave, dynamic nodes walked thread-major for exact hook order.
//
// The cancellation poll runs once per wave, which is at least as coarse as
// the scalar path's per-64-thread stride.
//
//vgiw:coarsepoll
func (e *Engine) runBatched(ctx context.Context, p *fabric.Placement, threads []int, h *Hooks, st *Stats) (*Stats, error) {
	prog, err := e.progFor(p)
	if err != nil {
		return nil, err
	}
	e.ensureLanes(prog.n, p.Replicas)
	depth := e.grid.Config().TokenBufDepth

	// Collapsed mode computes every collapsible node's completion in closed
	// form (done = inject + K, see compileCollapse) instead of walking its
	// lanes; it requires the constants to be valid (dedicated units) and no
	// cross-thread in-order constraint, whose lastDone coupling breaks the
	// closed form. Reference mode is the original per-lane walk.
	collapsed := prog.canCollapse && !e.opt.InOrderThreads

	// The wave-vector path batches the single stateful node's hook calls
	// per wave chunk; it needs the matching vector hook (nil keeps the
	// per-element walk, so external hook implementations work unchanged).
	vecNode := false
	if collapsed && prog.vecIdx >= 0 {
		if prog.dynamic[prog.vecIdx].exec == xMem {
			vecNode = h.AccessMemVector != nil
		} else {
			vecNode = h.AccessLVVector != nil
		}
	}

	base := 0
	for base < len(threads) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lanes := e.formWave(prog, threads, base, p.Replicas, depth)
		if collapsed {
			for l := 0; l < lanes; l++ {
				e.laneEnd[l] += prog.endK[e.laneRep[l]]
			}
			if e.opt.Profile {
				clear(e.repCnt)
				for l := 0; l < lanes; l++ {
					e.repCnt[e.laneRep[l]]++
				}
			}
		}
		for i := range prog.static {
			e.execStaticNode(prog, &prog.static[i], lanes, collapsed, h, st)
		}
		if collapsed {
			if vecNode {
				if err := e.execDynWaveVec(prog, lanes, h, st); err != nil {
					return nil, err
				}
			} else {
				for l := 0; l < lanes; l++ {
					if err := e.execDynLane(prog, l, 0, len(prog.dynamic), h, st); err != nil {
						return nil, err
					}
				}
			}
		} else {
			for l := 0; l < lanes; l++ {
				if err := e.execDynLaneRef(prog, l, h, st); err != nil {
					return nil, err
				}
			}
		}
		for l := 0; l < lanes; l++ {
			e.vcs[e.laneRep[l]].Record(e.laneEnd[l])
			if e.laneEnd[l] > st.EndCycle {
				st.EndCycle = e.laneEnd[l]
			}
		}
		clear(e.pending)
		base += lanes
	}
	addBatchedStats(prog, st, len(threads), p.Replicas)
	return st, nil
}

// formWave admits as many threads as the exact scalar injection schedule
// allows without knowing this wave's completion times. Per replica, the
// virtual-channel buffer (vcs) holds recorded completion times; `pending`
// counts threads admitted into this wave whose ends are not yet recorded.
// Admission at ready is exact when:
//
//   - the buffer is not full counting pending threads (the scalar Admit
//     would return ready whether or not a pending end had retired); or
//   - nothing is pending (the scalar pop-the-earliest is fully known); or
//   - every pending end provably exceeds ready AND the buffer's earliest
//     recorded end is <= the pending lower bound (so it is the global
//     earliest; ties go to the earlier-recorded entry, which is the
//     recorded one). The bound is firstPendingInject + tcrit.
//
// Otherwise the wave flushes: the admitted lanes execute, record their
// ends, and the next wave decides with full knowledge — which is exactly
// the scalar schedule.
//
//vgiw:hotpath
func (e *Engine) formWave(prog *nodeProg, threads []int, base, replicas, depth int) int {
	lanes := 0
	for j := base; j < len(threads) && lanes < batchLanes; j++ {
		r := j % replicas
		ready := e.injNext[r]
		vc := &e.vcs[r]
		vc.Retire(ready)
		inject := ready
		if vc.Len()+int(e.pending[r]) >= depth {
			if e.pending[r] == 0 {
				if m := vc.PopMin(); m > inject {
					inject = m
				}
			} else {
				lb := e.pendInj[r] + prog.tcrit[r]
				if lb <= ready || vc.Len() == 0 || vc.Min() > lb {
					break
				}
				if m := vc.PopMin(); m > inject {
					inject = m
				}
			}
		}
		e.injNext[r] = inject + 1
		if e.pending[r] == 0 {
			e.pendInj[r] = inject
		}
		e.pending[r]++
		e.laneTid[lanes] = threads[j]
		e.laneRep[lanes] = int32(r)
		e.laneInj[lanes] = inject
		e.laneEnd[lanes] = inject
		lanes++
	}
	return lanes
}

// execStaticNode fires one pure node for every lane of the wave: a timing
// pass (unit issue in thread order) and a branch-free value pass. In
// collapsed mode the timing pass of a collapsible node reduces to its
// closed form — done = inject + konst, already folded into laneEnd and the
// consumers' sbase by runBatched/compileCollapse — leaving per-replica
// profile bookkeeping (the per-lane statistics of a collapsed node are
// per-replica constants: issue count = lane count, latency = konst, service
// = unit latency); non-collapsible nodes keep the per-lane walk, reading
// collapsed inputs through the sbase fold and the filtered edge list since
// collapsed nodes no longer write their completion planes.
//
//vgiw:hotpath
func (e *Engine) execStaticNode(prog *nodeProg, pn *progNode, lanes int, collapsed bool, h *Hooks, st *Stats) {
	ni := int(pn.id)
	stride := prog.n + 1

	inOrder := e.opt.InOrderThreads
	switch {
	case collapsed && prog.konst[ni] >= 0:
		if e.opt.Profile {
			for r := 0; r < len(e.repCnt); r++ {
				cnt := e.repCnt[r]
				if cnt == 0 {
					continue
				}
				st.UnitIssues[prog.unit[r*prog.n+ni]] += uint64(cnt)
				if pn.exec == xInit {
					continue // the initiator records no latency/service
				}
				if k := prog.konst[r*prog.n+ni]; k > st.NodeLatency[ni] {
					st.NodeLatency[ni] = k
				}
				if pn.lat > st.NodeService[ni] {
					st.NodeService[ni] = pn.lat
				}
			}
		}
		if pn.exec == xInit {
			for l := 0; l < lanes; l++ {
				e.pvals[l*stride+ni] = uint32(e.laneTid[l])
			}
			return
		}
	case pn.exec == xInit:
		// The initiator completes at injection without claiming an issue
		// slot; only the profile issue count and in-order bookkeeping move.
		for l := 0; l < lanes; l++ {
			e.pdone[l*stride+ni] = e.laneInj[l]
			e.pvals[l*stride+ni] = uint32(e.laneTid[l])
		}
		if inOrder || e.opt.Profile {
			for l := 0; l < lanes; l++ {
				r := int(e.laneRep[l])
				if inOrder {
					e.lastDone[r*e.nNodes+ni] = e.laneInj[l]
				}
				if e.opt.Profile {
					st.UnitIssues[prog.unit[r*prog.n+ni]]++
				}
			}
		}
		return
	default:
		for l := 0; l < lanes; l++ {
			r := int(e.laneRep[l])
			ready := e.laneInj[l]
			dn := e.pdone[l*stride : l*stride+stride]
			if collapsed {
				ready += prog.sbase[r*prog.n+ni]
				for _, ed := range prog.dedges[r][prog.dOff[ni]:prog.dOff[ni+1]] {
					if t := dn[ed.src] + ed.lat; t > ready {
						ready = t
					}
				}
			} else {
				for _, ed := range prog.edges[r][pn.eo:pn.e1] {
					if t := dn[ed.src] + ed.lat; t > ready {
						ready = t
					}
				}
			}
			if inOrder {
				if t := e.lastDone[r*e.nNodes+ni]; t > ready {
					ready = t
				}
			}
			unit := int(prog.unit[r*prog.n+ni])
			var start int64
			if pn.exec == xSCU {
				pool := &e.scuPool[unit]
				start = e.units[unit].Alloc(pool.Admit(ready))
				pool.Record(start + pn.lat)
			} else {
				start = e.units[unit].Alloc(ready)
			}
			done := start + pn.lat
			dn[ni] = done
			if inOrder {
				e.lastDone[r*e.nNodes+ni] = done
			}
			if done > e.laneEnd[l] {
				e.laneEnd[l] = done
			}
			if e.opt.Profile {
				st.UnitIssues[unit]++
				if d := done - e.laneInj[l]; d > st.NodeLatency[ni] {
					st.NodeLatency[ni] = d
				}
				if d := done - ready; d > st.NodeService[ni] {
					st.NodeService[ni] = d
				}
			}
		}
	}

	switch pn.exec {
	case xParam:
		v := h.Param(int(pn.imm))
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = v
		}
	case xGeom:
		op := pn.op
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = h.Geometry(op, e.laneTid[l])
		}
	case xSplit:
		src := int(pn.in0)
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = e.pvals[l*stride+src]
		}
	case xJoin:
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = 0
		}
	default: // xALU, xSCU: branch-free Eval over the wave's lane stripes
		a, b, c := int(pn.in0), int(pn.in1), int(pn.in2)
		op, imm := pn.op, pn.imm
		for l := 0; l < lanes; l++ {
			vals := e.pvals[l*stride : l*stride+stride]
			vals[ni] = kir.Eval(op, vals[a], vals[b], vals[c], imm)
		}
	}
}

// execDynLane walks the dynamic (hook-dependent) nodes [lo, hi) of one lane
// in topological order — the scalar walk restricted to the nodes that touch
// stateful hooks, so every memory, live-value and branch callback fires in
// exact thread-major order. This is the collapsed-mode variant: static
// inputs arrive pre-folded into each node's sbase constant, the (almost
// always <= 2) remaining dynamic-source edges are inlined in the
// per-replica dynNode stream, and the in-order constraint is absent by
// construction (runBatched routes in-order runs to execDynLaneRef). The
// wave-vector path calls it twice per lane — the prefix before and the
// suffix after the batched stateful node.
//
//vgiw:hotpath
func (e *Engine) execDynLane(prog *nodeProg, l, lo, hi int, h *Hooks, st *Stats) error {
	tid := e.laneTid[l]
	r := int(e.laneRep[l])
	inject := e.laneInj[l]
	end := e.laneEnd[l]
	rd := prog.rdyn[r]
	dx := prog.dedges[r]
	stride := prog.n + 1
	vals := e.pvals[l*stride : l*stride+stride]
	dn := e.pdone[l*stride : l*stride+stride]

	for i := lo; i < hi; i++ {
		pn := &rd[i]
		ni := int(pn.id)
		ready := inject + pn.sbase
		if pn.src0 >= 0 {
			if t := dn[pn.src0] + pn.lat0; t > ready {
				ready = t
			}
			if pn.src1 >= 0 {
				if t := dn[pn.src1] + pn.lat1; t > ready {
					ready = t
				}
				for _, ed := range dx[pn.xo:pn.x1] {
					if t := dn[ed.src] + ed.lat; t > ready {
						ready = t
					}
				}
			}
		}
		unit := int(pn.unit)

		var done int64
		var val uint32
		switch pn.exec {
		case xTerm:
			done = e.units[unit].Alloc(ready) + 1
			if h.Branch != nil {
				h.Branch(tid, vals[pn.in0], done)
			}
		case xSplit:
			done = e.units[unit].Alloc(ready) + 1
			val = vals[pn.in0]
		case xJoin:
			done = e.units[unit].Alloc(ready) + 1
		case xLVLoad:
			start := e.units[unit].Alloc(ready)
			val, done = h.AccessLV(int(pn.lv), tid, false, 0, start)
		case xLVStore:
			start := e.units[unit].Alloc(ready)
			_, done = h.AccessLV(int(pn.lv), tid, true, vals[pn.in0], start)
		case xMem:
			if pn.pred >= 0 && vals[pn.pred] == 0 {
				st.SkippedMemOps++
				done = e.units[unit].Alloc(ready) + 1
			} else {
				addr := int64(int32(vals[pn.in0]) + pn.imm)
				var value uint32
				if pn.store {
					value = vals[pn.in1]
				}
				space := SpaceGlobal
				if pn.shared {
					space = SpaceShared
					st.SharedAccesses++
				} else {
					st.GlobalAccesses++
				}
				start := e.units[unit].Alloc(e.resBuf[unit].Admit(ready))
				word, d, err := h.AccessMem(space, addr, pn.store, value, tid, start)
				if err != nil {
					return err
				}
				e.resBuf[unit].Record(d)
				val, done = word, d
			}
		case xSCU:
			pool := &e.scuPool[unit]
			start := e.units[unit].Alloc(pool.Admit(ready))
			pool.Record(start + pn.lat)
			done = start + pn.lat
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		default: // xALU
			done = e.units[unit].Alloc(ready) + pn.lat
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		}

		vals[ni] = val
		dn[ni] = done
		if done > end {
			end = done
		}
		if e.opt.Profile {
			st.UnitIssues[unit]++
			if d := done - inject; d > st.NodeLatency[ni] {
				st.NodeLatency[ni] = d
			}
			if d := done - ready; d > st.NodeService[ni] {
				st.NodeService[ni] = d
			}
		}
	}
	e.laneEnd[l] = end
	return nil
}

// execDynWaveVec executes a wave's dynamic walk with the single stateful
// node (prog.vecIdx) batched through the vector hooks. Per lane it runs the
// dynamic prefix, computes the stateful node's ready cycle, and gathers the
// access into element planes; the whole batch settles in one
// AccessMemVector/AccessLVVector call, then the per-lane suffix runs. The
// result is byte-exact with the per-element walk:
//
//   - Splitting each lane's walk at the stateful node cannot reorder any
//     SlotAlloc or SCU-pool stream: collapsed mode guarantees dedicated
//     units, so every unit still sees exactly its own node's lanes in lane
//     order.
//   - The vector hooks are contractually equivalent to the per-element
//     hooks called in batch order, and batch order is lane order — the
//     exact order the per-lane walk would have issued them.
//   - A memory node's issue cycle feeds through its reservation buffer
//     (Admit), whose result depends on earlier lanes' completion times —
//     which the batch has not settled yet. Chunking restores exactness:
//     a lane joins the open chunk only while
//     LenAfter(maxReady) + chunkPending < cap proves the serial Admit
//     would have been a passthrough (the serial walk's window at lane l
//     holds at most the unretired pre-chunk entries — retirement is
//     cumulative, so LenAfter of the running max ready counts them
//     exactly — plus the chunk's own unsettled accesses). Then every
//     chunk member's issue is just Alloc(ready), computable before the
//     call; after settling, replaying Retire(ready_l); Record(done_l) in
//     lane order leaves the window byte-identical to the serial walk.
//     When the window is saturated the chunk degenerates to one element
//     settled through the real Admit — the serial schedule itself.
//
//vgiw:hotpath
func (e *Engine) execDynWaveVec(prog *nodeProg, lanes int, h *Hooks, st *Stats) error {
	vi := prog.vecIdx
	nd := len(prog.dynamic)
	stride := prog.n + 1
	pn0 := &prog.rdyn[0][vi]
	isMem := pn0.exec == xMem
	ni := int(pn0.id)

	// The whole wave's prefixes and the stateful node's ready cycles settle
	// upfront. Prefix nodes use dedicated units, so their per-unit Alloc
	// streams stay in lane order no matter how lanes later regroup around
	// the batched node, and no prefix node can depend on the batched node's
	// output (topological order).
	for l := 0; l < lanes; l++ {
		if vi > 0 {
			if err := e.execDynLane(prog, l, 0, vi, h, st); err != nil {
				return err
			}
		}
		r := int(e.laneRep[l])
		pn := &prog.rdyn[r][vi]
		dn := e.pdone[l*stride : l*stride+stride]
		ready := e.laneInj[l] + pn.sbase
		if pn.src0 >= 0 {
			if t := dn[pn.src0] + pn.lat0; t > ready {
				ready = t
			}
			if pn.src1 >= 0 {
				if t := dn[pn.src1] + pn.lat1; t > ready {
					ready = t
				}
				for _, ed := range prog.dedges[r][pn.xo:pn.x1] {
					if t := dn[ed.src] + ed.lat; t > ready {
						ready = t
					}
				}
			}
		}
		e.vReady[l] = ready
	}

	l := 0
	for l < lanes {
		a := l
		nb := 0
		for r := range e.vPend {
			e.vPend[r] = 0
			e.vMax[r] = -1
		}
		for l < lanes {
			r := int(e.laneRep[l])
			pn := &prog.rdyn[r][vi]
			unit := int(pn.unit)
			ready := e.vReady[l]
			vals := e.pvals[l*stride : l*stride+stride]
			if isMem && pn.pred >= 0 && vals[pn.pred] == 0 {
				st.SkippedMemOps++
				e.pdone[l*stride+ni] = e.units[unit].Alloc(ready) + 1
				vals[ni] = 0
				l++
				continue
			}
			if isMem {
				m := e.vMax[r]
				if ready > m {
					m = ready
				}
				rb := &e.resBuf[unit]
				// Retiring up to the running max ready is exactly the
				// cumulative effect of the serial walk's Admits so far
				// (retirement is monotone), so after it Len() is the true
				// serial window size before this lane's access.
				rb.Retire(m)
				if rb.Len()+int(e.vPend[r]) >= rb.Cap() {
					break // window may fill; settle this chunk, retry lane l
				}
				e.vMax[r] = m
				e.vPend[r]++
				e.vIssue[nb] = e.units[unit].Alloc(ready)
				e.vLane[nb] = int32(l)
				e.vAddr[nb] = int64(int32(vals[pn.in0]) + pn.imm)
				if pn.store {
					e.vVal[nb] = vals[pn.in1]
				} else {
					e.vVal[nb] = 0
				}
				e.vTid[nb] = e.laneTid[l]
				if pn.shared {
					st.SharedAccesses++
				} else {
					st.GlobalAccesses++
				}
				nb++
				l++
				continue
			}
			// Live-value node: no reservation buffer, so the whole wave is
			// one chunk.
			e.vIssue[nb] = e.units[unit].Alloc(ready)
			e.vLane[nb] = int32(l)
			if pn0.exec == xLVStore {
				e.vVal[nb] = vals[pn.in0]
			} else {
				e.vVal[nb] = 0
			}
			e.vTid[nb] = e.laneTid[l]
			nb++
			l++
		}
		if nb == 0 && l == a {
			// Saturated reservation window: replicate the serial element —
			// the real Admit (which may wait on the earliest completion)
			// followed by a one-element settle.
			r := int(e.laneRep[l])
			pn := &prog.rdyn[r][vi]
			unit := int(pn.unit)
			vals := e.pvals[l*stride : l*stride+stride]
			e.vIssue[0] = e.units[unit].Alloc(e.resBuf[unit].Admit(e.vReady[l]))
			e.vLane[0] = int32(l)
			e.vAddr[0] = int64(int32(vals[pn.in0]) + pn.imm)
			if pn.store {
				e.vVal[0] = vals[pn.in1]
			} else {
				e.vVal[0] = 0
			}
			e.vTid[0] = e.laneTid[l]
			if pn.shared {
				st.SharedAccesses++
			} else {
				st.GlobalAccesses++
			}
			nb = 1
			l++
		}
		if nb > 0 {
			if isMem {
				space := SpaceGlobal
				if pn0.shared {
					space = SpaceShared
				}
				if err := h.AccessMemVector(space, e.vAddr[:nb], pn0.store, e.vVal[:nb],
					e.vTid[:nb], e.vIssue[:nb], e.vWord[:nb], e.vDone[:nb]); err != nil {
					return err
				}
				for k := 0; k < nb; k++ {
					ll := int(e.vLane[k])
					r := int(e.laneRep[ll])
					rb := &e.resBuf[prog.rdyn[r][vi].unit]
					rb.Retire(e.vReady[ll])
					rb.Record(e.vDone[k])
					e.pdone[ll*stride+ni] = e.vDone[k]
					e.pvals[ll*stride+ni] = e.vWord[k]
				}
			} else {
				h.AccessLVVector(int(pn0.lv), e.vTid[:nb], pn0.exec == xLVStore,
					e.vVal[:nb], e.vIssue[:nb], e.vWord[:nb], e.vDone[:nb])
				for k := 0; k < nb; k++ {
					ll := int(e.vLane[k])
					e.pdone[ll*stride+ni] = e.vDone[k]
					e.pvals[ll*stride+ni] = e.vWord[k]
				}
			}
		}
		for q := a; q < l; q++ {
			done := e.pdone[q*stride+ni]
			if done > e.laneEnd[q] {
				e.laneEnd[q] = done
			}
			if e.opt.Profile {
				r := int(e.laneRep[q])
				st.UnitIssues[prog.rdyn[r][vi].unit]++
				if d := done - e.laneInj[q]; d > st.NodeLatency[ni] {
					st.NodeLatency[ni] = d
				}
				if d := done - e.vReady[q]; d > st.NodeService[ni] {
					st.NodeService[ni] = d
				}
			}
			if vi+1 < nd {
				if err := e.execDynLane(prog, q, vi+1, nd, h, st); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// execDynLaneRef is the reference per-lane dynamic walk used when collapsed
// timing is off (in-order runs, or placements with shared units): full edge
// lists against fully-populated completion planes.
//
//vgiw:hotpath
func (e *Engine) execDynLaneRef(prog *nodeProg, l int, h *Hooks, st *Stats) error {
	tid := e.laneTid[l]
	r := int(e.laneRep[l])
	inject := e.laneInj[l]
	end := e.laneEnd[l]
	inOrder := e.opt.InOrderThreads
	edges := prog.edges[r]
	stride := prog.n + 1
	vals := e.pvals[l*stride : l*stride+stride]
	dn := e.pdone[l*stride : l*stride+stride]

	for i := range prog.dynamic {
		pn := &prog.dynamic[i]
		ni := int(pn.id)
		ready := inject
		for _, ed := range edges[pn.eo:pn.e1] {
			if t := dn[ed.src] + ed.lat; t > ready {
				ready = t
			}
		}
		if inOrder {
			if t := e.lastDone[r*e.nNodes+ni]; t > ready {
				ready = t
			}
		}
		unit := int(prog.unit[r*prog.n+ni])

		var done int64
		var val uint32
		switch pn.exec {
		case xTerm:
			done = e.units[unit].Alloc(ready) + 1
			if h.Branch != nil {
				h.Branch(tid, vals[pn.in0], done)
			}
		case xSplit:
			done = e.units[unit].Alloc(ready) + 1
			val = vals[pn.in0]
		case xJoin:
			done = e.units[unit].Alloc(ready) + 1
		case xLVLoad:
			start := e.units[unit].Alloc(ready)
			val, done = h.AccessLV(int(pn.lv), tid, false, 0, start)
		case xLVStore:
			start := e.units[unit].Alloc(ready)
			_, done = h.AccessLV(int(pn.lv), tid, true, vals[pn.in0], start)
		case xMem:
			if pn.pred >= 0 && vals[pn.pred] == 0 {
				st.SkippedMemOps++
				done = e.units[unit].Alloc(ready) + 1
			} else {
				addr := int64(int32(vals[pn.in0]) + pn.imm)
				var value uint32
				if pn.store {
					value = vals[pn.in1]
				}
				space := SpaceGlobal
				if pn.shared {
					space = SpaceShared
					st.SharedAccesses++
				} else {
					st.GlobalAccesses++
				}
				start := e.units[unit].Alloc(e.resBuf[unit].Admit(ready))
				word, d, err := h.AccessMem(space, addr, pn.store, value, tid, start)
				if err != nil {
					return err
				}
				e.resBuf[unit].Record(d)
				val, done = word, d
			}
		case xSCU:
			pool := &e.scuPool[unit]
			start := e.units[unit].Alloc(pool.Admit(ready))
			pool.Record(start + pn.lat)
			done = start + pn.lat
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		default: // xALU
			done = e.units[unit].Alloc(ready) + pn.lat
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		}

		vals[ni] = val
		dn[ni] = done
		if inOrder {
			e.lastDone[r*e.nNodes+ni] = done
		}
		if done > end {
			end = done
		}
		if e.opt.Profile {
			st.UnitIssues[unit]++
			if d := done - inject; d > st.NodeLatency[ni] {
				st.NodeLatency[ni] = d
			}
			if d := done - ready; d > st.NodeService[ni] {
				st.NodeService[ni] = d
			}
		}
	}
	e.laneEnd[l] = end
	return nil
}

// addBatchedStats folds in the order-independent per-thread constants: node
// executions by class, FP ops, token hops/transfers and LV access counts are
// all unconditional per (node, thread), so totals are per-node constants
// times thread counts — exactly what the scalar walk accumulates one
// increment at a time.
//
//vgiw:hotpath
func addBatchedStats(prog *nodeProg, st *Stats, nThreads, replicas int) {
	t := uint64(nThreads)
	for cl := range prog.classCount {
		st.Ops[cl] += prog.classCount[cl] * t
	}
	st.FPOps += prog.fpNodes * t
	st.TokenTransfers += prog.transfers * t
	st.LVLoads += prog.lvLoadNodes * t
	st.LVStores += prog.lvStoreNodes * t
	for r := 0; r < replicas; r++ {
		n := uint64(nThreads / replicas)
		if r < nThreads%replicas {
			n++
		}
		st.TokenHops += prog.hopSum[r] * n
	}
}

// runFast is the functional-only executor (Options.Fast): identical results
// and op counts, no timing. Static values fire node-major over full batches;
// dynamic nodes are walked thread-major so memory, live-value and branch
// side effects land in exact scalar order (which makes the results bit-exact
// even for kernels with cross-thread memory dependences).
//
// The cancellation poll runs once per batchLanes threads.
//
//vgiw:coarsepoll
func (e *Engine) runFast(ctx context.Context, p *fabric.Placement, threads []int, startCycle int64, h *Hooks, st *Stats) (*Stats, error) {
	prog, err := e.progFor(p)
	if err != nil {
		return nil, err
	}
	e.ensureLanes(prog.n, p.Replicas)

	for base := 0; base < len(threads); base += batchLanes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lanes := len(threads) - base
		if lanes > batchLanes {
			lanes = batchLanes
		}
		copy(e.laneTid[:lanes], threads[base:base+lanes])
		for i := range prog.static {
			e.fastStaticNode(prog, &prog.static[i], lanes, h)
		}
		for l := 0; l < lanes; l++ {
			if err := e.fastDynLane(prog, l, startCycle, h, st); err != nil {
				return nil, err
			}
		}
	}
	addBatchedStats(prog, st, len(threads), p.Replicas)
	return st, nil
}

// fastStaticNode computes one pure node's values for a batch of lanes.
//
//vgiw:hotpath
func (e *Engine) fastStaticNode(prog *nodeProg, pn *progNode, lanes int, h *Hooks) {
	ni := int(pn.id)
	stride := prog.n + 1
	switch pn.exec {
	case xInit:
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = uint32(e.laneTid[l])
		}
	case xParam:
		v := h.Param(int(pn.imm))
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = v
		}
	case xGeom:
		op := pn.op
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = h.Geometry(op, e.laneTid[l])
		}
	case xSplit:
		src := int(pn.in0)
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = e.pvals[l*stride+src]
		}
	case xJoin:
		for l := 0; l < lanes; l++ {
			e.pvals[l*stride+ni] = 0
		}
	default: // xALU, xSCU
		a, b, c := int(pn.in0), int(pn.in1), int(pn.in2)
		op, imm := pn.op, pn.imm
		for l := 0; l < lanes; l++ {
			vals := e.pvals[l*stride : l*stride+stride]
			vals[ni] = kir.Eval(op, vals[a], vals[b], vals[c], imm)
		}
	}
}

// fastDynLane walks one lane's dynamic nodes functionally, using the fast
// hook variants when wired (falling back to the timed hooks with their
// timing results discarded).
//
//vgiw:hotpath
func (e *Engine) fastDynLane(prog *nodeProg, l int, now int64, h *Hooks, st *Stats) error {
	tid := e.laneTid[l]
	stride := prog.n + 1
	vals := e.pvals[l*stride : l*stride+stride]
	for i := range prog.dynamic {
		pn := &prog.dynamic[i]
		ni := int(pn.id)
		var val uint32
		switch pn.exec {
		case xTerm:
			if h.Branch != nil {
				h.Branch(tid, vals[pn.in0], now)
			}
		case xSplit:
			val = vals[pn.in0]
		case xJoin:
		case xLVLoad:
			if h.AccessLVFast != nil {
				val = h.AccessLVFast(int(pn.lv), tid, false, 0)
			} else {
				val, _ = h.AccessLV(int(pn.lv), tid, false, 0, now)
			}
		case xLVStore:
			if h.AccessLVFast != nil {
				h.AccessLVFast(int(pn.lv), tid, true, vals[pn.in0])
			} else {
				_, _ = h.AccessLV(int(pn.lv), tid, true, vals[pn.in0], now)
			}
		case xMem:
			if pn.pred >= 0 && vals[pn.pred] == 0 {
				st.SkippedMemOps++
				break
			}
			addr := int64(int32(vals[pn.in0]) + pn.imm)
			var value uint32
			if pn.store {
				value = vals[pn.in1]
			}
			space := SpaceGlobal
			if pn.shared {
				space = SpaceShared
				st.SharedAccesses++
			} else {
				st.GlobalAccesses++
			}
			var word uint32
			var err error
			if h.AccessMemFast != nil {
				word, err = h.AccessMemFast(space, addr, pn.store, value, tid)
			} else {
				word, _, err = h.AccessMem(space, addr, pn.store, value, tid, now)
			}
			if err != nil {
				return err
			}
			val = word
		default: // xALU, xSCU
			val = kir.Eval(pn.op, vals[pn.in0], vals[pn.in1], vals[pn.in2], pn.imm)
		}
		vals[ni] = val
	}
	return nil
}
