package engine

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/mem"
)

// DataEnv is the standard execution environment shared by the VGIW core and
// the SGMF baseline: a launch configuration, flat global memory, per-CTA
// scratchpads, and the memory-system timing model.
type DataEnv struct {
	Launch kir.Launch
	Global []uint32
	Shared [][]uint32 // indexed by CTA
	Sys    *mem.System
}

// NewDataEnv allocates the per-CTA scratchpads for a kernel launch.
func NewDataEnv(k *kir.Kernel, launch kir.Launch, global []uint32, sys *mem.System) (*DataEnv, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	if len(launch.Params) != k.NumParams {
		return nil, fmt.Errorf("engine: kernel %s wants %d params, launch has %d",
			k.Name, k.NumParams, len(launch.Params))
	}
	shared := make([][]uint32, launch.CTAs())
	for i := range shared {
		shared[i] = make([]uint32, k.SharedWds)
	}
	return &DataEnv{Launch: launch, Global: global, Shared: shared, Sys: sys}, nil
}

// Hooks builds the engine hooks for this environment. Branch and AccessLV
// start nil; the caller wires them in.
func (d *DataEnv) Hooks() *Hooks {
	return &Hooks{
		Param:    func(i int) uint32 { return d.Launch.Params[i] },
		Geometry: d.Launch.Geometry,
		AccessMem: func(space Space, addr int64, write bool, value uint32, tid int, now int64) (uint32, int64, error) {
			switch space {
			case SpaceGlobal:
				if addr < 0 || addr >= int64(len(d.Global)) {
					return 0, 0, fmt.Errorf("engine: thread %d: global %s out of bounds: %d (size %d)",
						tid, rw(write), addr, len(d.Global))
				}
				done := d.Sys.AccessWord(addr, write, now)
				if write {
					d.Global[addr] = value
					return 0, done, nil
				}
				return d.Global[addr], done, nil
			case SpaceShared:
				cta := d.Launch.CTAOf(tid)
				sh := d.Shared[cta]
				if addr < 0 || addr >= int64(len(sh)) {
					return 0, 0, fmt.Errorf("engine: thread %d: shared %s out of bounds: %d (size %d)",
						tid, rw(write), addr, len(sh))
				}
				done := d.Sys.AccessShared(addr, now)
				if write {
					sh[addr] = value
					return 0, done, nil
				}
				return sh[addr], done, nil
			}
			return 0, 0, fmt.Errorf("engine: unknown address space %d", space)
		},
		AccessMemFast: func(space Space, addr int64, write bool, value uint32, tid int) (uint32, error) {
			// Functional twin of AccessMem: identical bounds checks, errors
			// and data effects, no timing-model calls.
			switch space {
			case SpaceGlobal:
				if addr < 0 || addr >= int64(len(d.Global)) {
					return 0, fmt.Errorf("engine: thread %d: global %s out of bounds: %d (size %d)",
						tid, rw(write), addr, len(d.Global))
				}
				if write {
					d.Global[addr] = value
					return 0, nil
				}
				return d.Global[addr], nil
			case SpaceShared:
				cta := d.Launch.CTAOf(tid)
				sh := d.Shared[cta]
				if addr < 0 || addr >= int64(len(sh)) {
					return 0, fmt.Errorf("engine: thread %d: shared %s out of bounds: %d (size %d)",
						tid, rw(write), addr, len(sh))
				}
				if write {
					sh[addr] = value
					return 0, nil
				}
				return sh[addr], nil
			}
			return 0, fmt.Errorf("engine: unknown address space %d", space)
		},
	}
}

func rw(write bool) string {
	if write {
		return "store"
	}
	return "load"
}
