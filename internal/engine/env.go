package engine

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/mem"
)

// DataEnv is the standard execution environment shared by the VGIW core and
// the SGMF baseline: a launch configuration, flat global memory, per-CTA
// scratchpads, and the memory-system timing model.
type DataEnv struct {
	Launch kir.Launch
	Global []uint32
	Shared [][]uint32 // indexed by CTA
	Sys    *mem.System

	wr []bool // batch scratch for AccessMemVector, reused across waves
}

// NewDataEnv allocates the per-CTA scratchpads for a kernel launch.
func NewDataEnv(k *kir.Kernel, launch kir.Launch, global []uint32, sys *mem.System) (*DataEnv, error) {
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	if len(launch.Params) != k.NumParams {
		return nil, fmt.Errorf("engine: kernel %s wants %d params, launch has %d",
			k.Name, k.NumParams, len(launch.Params))
	}
	shared := make([][]uint32, launch.CTAs())
	for i := range shared {
		shared[i] = make([]uint32, k.SharedWds)
	}
	return &DataEnv{Launch: launch, Global: global, Shared: shared, Sys: sys}, nil
}

// Hooks builds the engine hooks for this environment. Branch and AccessLV
// start nil; the caller wires them in.
func (d *DataEnv) Hooks() *Hooks {
	return &Hooks{
		Param:           func(i int) uint32 { return d.Launch.Params[i] },
		Geometry:        d.Launch.Geometry,
		AccessMem:       d.accessMem,
		AccessMemVector: d.accessMemVector,
		AccessMemFast: func(space Space, addr int64, write bool, value uint32, tid int) (uint32, error) {
			// Functional twin of AccessMem: identical bounds checks, errors
			// and data effects, no timing-model calls.
			switch space {
			case SpaceGlobal:
				if addr < 0 || addr >= int64(len(d.Global)) {
					return 0, fmt.Errorf("engine: thread %d: global %s out of bounds: %d (size %d)",
						tid, rw(write), addr, len(d.Global))
				}
				if write {
					d.Global[addr] = value
					return 0, nil
				}
				return d.Global[addr], nil
			case SpaceShared:
				cta := d.Launch.CTAOf(tid)
				sh := d.Shared[cta]
				if addr < 0 || addr >= int64(len(sh)) {
					return 0, fmt.Errorf("engine: thread %d: shared %s out of bounds: %d (size %d)",
						tid, rw(write), addr, len(sh))
				}
				if write {
					sh[addr] = value
					return 0, nil
				}
				return sh[addr], nil
			}
			return 0, fmt.Errorf("engine: unknown address space %d", space)
		},
	}
}

// accessMem is the scalar timing-path memory hook: bounds check, timing-model
// access, then the data effect.
func (d *DataEnv) accessMem(space Space, addr int64, write bool, value uint32, tid int, now int64) (uint32, int64, error) {
	switch space {
	case SpaceGlobal:
		if addr < 0 || addr >= int64(len(d.Global)) {
			return 0, 0, fmt.Errorf("engine: thread %d: global %s out of bounds: %d (size %d)",
				tid, rw(write), addr, len(d.Global))
		}
		done := d.Sys.AccessWord(addr, write, now)
		if write {
			d.Global[addr] = value
			return 0, done, nil
		}
		return d.Global[addr], done, nil
	case SpaceShared:
		cta := d.Launch.CTAOf(tid)
		sh := d.Shared[cta]
		if addr < 0 || addr >= int64(len(sh)) {
			return 0, 0, fmt.Errorf("engine: thread %d: shared %s out of bounds: %d (size %d)",
				tid, rw(write), addr, len(sh))
		}
		done := d.Sys.AccessShared(addr, now)
		if write {
			sh[addr] = value
			return 0, done, nil
		}
		return sh[addr], done, nil
	}
	return 0, 0, fmt.Errorf("engine: unknown address space %d", space)
}

// accessMemVector settles a wave's accesses for one memory node in a single
// call, equivalent to accessMem per element in order. The fast path — global
// space, every element in bounds — batches the timing legs through
// mem.(*System).AccessVector and applies the data effects in element order;
// the timing model never reads Global, so the split preserves the serial
// interleaving exactly. Shared space (per-CTA scratchpads have no batched
// timing leg) and out-of-bounds batches fall back to the scalar hook per
// element, stopping at the first failing element exactly as the serial walk
// would.
//
//vgiw:hotpath
func (d *DataEnv) accessMemVector(space Space, addrs []int64, store bool, values []uint32, tids []int, issues []int64, words []uint32, dones []int64) error {
	n := len(addrs)
	if space == SpaceGlobal {
		inBounds := true
		for k := 0; k < n; k++ {
			if addrs[k] < 0 || addrs[k] >= int64(len(d.Global)) {
				inBounds = false
				break
			}
		}
		if inBounds {
			if cap(d.wr) < n {
				d.wr = make([]bool, n+n/2+8)
			}
			wr := d.wr[:n]
			for k := range wr {
				wr[k] = store
			}
			d.Sys.AccessVector(addrs[:n], wr, issues[:n], dones[:n])
			if store {
				for k := 0; k < n; k++ {
					d.Global[addrs[k]] = values[k]
					words[k] = 0
				}
			} else {
				for k := 0; k < n; k++ {
					words[k] = d.Global[addrs[k]]
				}
			}
			return nil
		}
	}
	for k := 0; k < n; k++ {
		w, done, err := d.accessMem(space, addrs[k], store, values[k], tids[k], issues[k])
		if err != nil {
			return err
		}
		words[k], dones[k] = w, done
	}
	return nil
}

func rw(write bool) string {
	if write {
		return "store"
	}
	return "load"
}
