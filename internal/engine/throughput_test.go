package engine

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
)

// runThroughput streams n threads through a single-replica placement and
// returns cycles per thread.
func runThroughput(t *testing.T, k *kir.Kernel, n, words int) float64 {
	t.Helper()
	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := fabric.Place(grid, ck.DFGs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	launch := kir.Launch1D(n/32, 32, 0)
	env, err := NewDataEnv(k, launch, make([]uint32, words), mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	st, err := New(grid, Options{}).RunVector(p, threads, 0, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	return float64(st.Cycles()) / float64(n)
}

// Pipelining: a short independent-op kernel must approach the 1
// thread/cycle/replica injection limit; a stalled thread (cache miss) must
// not serialize the threads behind it (tagged-token out-of-order dataflow).
func TestEnginePipelinesToInjectionLimit(t *testing.T) {
	b := kir.NewBuilder("short")
	b.SetParams(1)
	b.SetBlock(b.NewBlock("entry"))
	v := b.I2F(b.Tid())
	b.Store(b.Add(b.Param(0), b.Tid()), 0, b.FAdd(v, v))
	b.Ret()
	perThread := runThroughput(t, b.MustBuild(), 1024, 1024)
	if perThread > 2.0 {
		t.Errorf("short kernel runs at %.2f cycles/thread; expected near the 1/cycle injection limit", perThread)
	}
}

func TestEngineMissesDoNotSerialize(t *testing.T) {
	// Strided loads: every access misses to DRAM. With out-of-order
	// overtaking and 64 reservation slots, sustained throughput must stay
	// far below the ~330-cycle serial miss latency.
	b := kir.NewBuilder("misses")
	b.SetParams(1)
	b.SetBlock(b.NewBlock("entry"))
	addr := b.Add(b.Param(0), b.MulI(b.Tid(), 64))
	v := b.Load(addr, 0)
	b.Store(addr, 1, v)
	b.Ret()
	perThread := runThroughput(t, b.MustBuild(), 512, 512*64+2)
	if perThread > 40 {
		t.Errorf("all-miss kernel runs at %.1f cycles/thread; misses are serializing", perThread)
	}
}
