package engine

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
)

// buildSaxpyBlock is a one-block saxpy without a guard (always in range).
func buildSaxpyBlock(t testing.TB) *kir.Kernel {
	t.Helper()
	b := kir.NewBuilder("saxpy1b")
	b.SetParams(3) // a, xBase, yBase
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	tid := b.Tid()
	a := b.Param(0)
	x := b.Load(b.Add(b.Param(1), tid), 0)
	y := b.Load(b.Add(b.Param(2), tid), 0)
	b.Store(b.Add(b.Param(2), tid), 0, b.FAdd(b.FMul(a, x), y))
	b.Ret()
	return b.MustBuild()
}

func testGrid(t testing.TB) *fabric.Grid {
	t.Helper()
	g, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runBlockVector compiles the (single-block) kernel, places it with the given
// replica count (0 = max), and streams all launch threads through it.
func runBlockVector(t testing.TB, k *kir.Kernel, launch kir.Launch, global []uint32, replicas int, opt Options) (*Stats, []uint32) {
	t.Helper()
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.DFGs) != 1 {
		t.Fatalf("kernel has %d blocks, want 1", len(ck.DFGs))
	}
	grid := testGrid(t)
	var p *fabric.Placement
	if replicas == 0 {
		p, err = fabric.PlaceMax(grid, ck.DFGs[0])
	} else {
		p, err = fabric.Place(grid, ck.DFGs[0], replicas)
	}
	if err != nil {
		t.Fatal(err)
	}
	sys := mem.NewSystem(mem.DefaultConfig(mem.WriteBack))
	env, err := NewDataEnv(k, launch, global, sys)
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]int, launch.Threads())
	for i := range threads {
		threads[i] = i
	}
	e := New(grid, opt)
	st, err := e.RunVector(p, threads, 0, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	return st, global
}

func TestEngineSaxpyFunctional(t *testing.T) {
	k := buildSaxpyBlock(t)
	const n = 256
	global := make([]uint32, 2*n)
	want := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		global[i] = kir.F32(float32(i))
		global[n+i] = kir.F32(1.0)
		want[i] = global[i]
		want[n+i] = kir.F32(0.5*float32(i) + 1.0)
	}
	launch := kir.Launch1D(n/32, 32, kir.F32(0.5), 0, n)
	st, got := runBlockVector(t, k, launch, global, 0, Options{})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mem[%d] = %x, want %x", i, got[i], want[i])
		}
	}
	if st.Injected != n {
		t.Errorf("injected %d, want %d", st.Injected, n)
	}
	if st.Cycles() <= 0 {
		t.Error("no cycles elapsed")
	}
	if st.GlobalAccesses != 3*n {
		t.Errorf("global accesses = %d, want %d", st.GlobalAccesses, 3*n)
	}
	if st.Ops[kir.ClassCVU] != 2*n {
		t.Errorf("CVU ops = %d, want %d (init+term per thread)", st.Ops[kir.ClassCVU], 2*n)
	}
}

func TestEngineMatchesInterp(t *testing.T) {
	k := buildSaxpyBlock(t)
	const n = 128
	mkMem := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := 0; i < n; i++ {
			m[i] = kir.F32(float32(i) * 0.25)
			m[n+i] = kir.F32(float32(n - i))
		}
		return m
	}
	launch := kir.Launch1D(n/32, 32, kir.F32(1.5), 0, n)

	ref := mkMem()
	// Compile mutates block order; run the interpreter on a fresh build.
	in := &kir.Interp{Kernel: buildSaxpyBlock(t), Launch: launch, Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	_, got := runBlockVector(t, k, launch, mkMem(), 0, Options{})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: engine %x, interp %x", i, got[i], ref[i])
		}
	}
}

func TestEngineReplicationSpeedsUp(t *testing.T) {
	const n = 1024
	launch := kir.Launch1D(n/32, 32, kir.F32(2), 0, n)
	mk := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := range m {
			m[i] = kir.F32(1)
		}
		return m
	}
	st1, _ := runBlockVector(t, buildSaxpyBlock(t), launch, mk(), 1, Options{})
	stN, _ := runBlockVector(t, buildSaxpyBlock(t), launch, mk(), 0, Options{})
	if stN.Cycles() >= st1.Cycles() {
		t.Errorf("replication did not speed up: 1 replica %d cycles, max replicas %d cycles",
			st1.Cycles(), stN.Cycles())
	}
}

func TestEngineInOrderSlowerOrEqual(t *testing.T) {
	const n = 512
	launch := kir.Launch1D(n/32, 32, kir.F32(2), 0, n)
	mk := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := range m {
			m[i] = kir.F32(1)
		}
		return m
	}
	ooo, _ := runBlockVector(t, buildSaxpyBlock(t), launch, mk(), 2, Options{})
	ino, _ := runBlockVector(t, buildSaxpyBlock(t), launch, mk(), 2, Options{InOrderThreads: true})
	if ino.Cycles() < ooo.Cycles() {
		t.Errorf("in-order (%d cycles) beat out-of-order (%d cycles)", ino.Cycles(), ooo.Cycles())
	}
}

func TestEngineOutOfBounds(t *testing.T) {
	k := buildSaxpyBlock(t)
	launch := kir.Launch1D(1, 32, kir.F32(1), 0, 1<<20)
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.PlaceMax(grid, ck.DFGs[0])
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewDataEnv(k, launch, make([]uint32, 64), mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		t.Fatal(err)
	}
	e := New(grid, Options{})
	if _, err := e.RunVector(p, []int{0}, 0, env.Hooks()); err == nil {
		t.Error("want out-of-bounds error")
	}
}

// TestEngineSGMFDiamondFunctional checks that an if-converted divergent
// kernel produces the same memory state as the reference interpreter.
func TestEngineSGMFDiamondFunctional(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("fig1a")
		b.SetParams(2)
		bb1 := b.NewBlock("bb1")
		bb2 := b.NewBlock("bb2")
		bb3 := b.NewBlock("bb3")
		bb4 := b.NewBlock("bb4")
		bb5 := b.NewBlock("bb5")
		bb6 := b.NewBlock("bb6")
		b.SetBlock(bb1)
		tid := b.Tid()
		v := b.Load(b.Add(b.Param(0), tid), 0)
		b.Branch(b.SetLT(v, b.Const(10)), bb2, bb3)
		b.SetBlock(bb2)
		b.Store(b.Add(b.Param(1), tid), 0, b.MulI(v, 2))
		b.Jump(bb6)
		b.SetBlock(bb3)
		b.Branch(b.SetLT(v, b.Const(100)), bb4, bb5)
		b.SetBlock(bb4)
		b.Store(b.Add(b.Param(1), tid), 0, b.AddI(v, 7))
		b.Jump(bb6)
		b.SetBlock(bb5)
		b.Store(b.Add(b.Param(1), tid), 0, b.Sub(v, tid))
		b.Jump(bb6)
		b.SetBlock(bb6)
		b.Ret()
		return b.MustBuild()
	}

	const n = 64
	mkMem := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := 0; i < n; i++ {
			m[i] = uint32(i * 7 % 250) // mixes all three paths
		}
		return m
	}
	launch := kir.Launch1D(2, 32, 0, n)

	ref := mkMem()
	in := &kir.Interp{Kernel: build(), Launch: launch, Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}

	k := build()
	flat, err := compile.IfConvert(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.PlaceMax(grid, flat)
	if err != nil {
		t.Fatal(err)
	}
	global := mkMem()
	env, err := NewDataEnv(k, launch, global, mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	e := New(grid, Options{})
	st, err := e.RunVector(p, threads, 0, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if global[i] != ref[i] {
			t.Fatalf("mem[%d]: SGMF %d, interp %d", i, global[i], ref[i])
		}
	}
	if st.SkippedMemOps == 0 {
		t.Error("divergent SGMF run skipped no memory ops; predication inactive")
	}
}

func TestEngineVCBackpressure(t *testing.T) {
	// With a token-buffer depth of 1, threads serialize: each thread must
	// finish before the next is injected; total time ~ n * threadLatency.
	cfg := fabric.DefaultConfig()
	cfg.TokenBufDepth = 1
	gridNarrow, err := fabric.NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gridWide := testGrid(t)

	run := func(grid *fabric.Grid) int64 {
		k := buildSaxpyBlock(t)
		ck, err := compile.Compile(k)
		if err != nil {
			t.Fatal(err)
		}
		p, err := fabric.Place(grid, ck.DFGs[0], 1)
		if err != nil {
			t.Fatal(err)
		}
		const n = 128
		global := make([]uint32, 2*n)
		launch := kir.Launch1D(n/32, 32, kir.F32(1), 0, n)
		env, err := NewDataEnv(k, launch, global, mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
		if err != nil {
			t.Fatal(err)
		}
		threads := make([]int, n)
		for i := range threads {
			threads[i] = i
		}
		st, err := New(grid, Options{}).RunVector(p, threads, 0, env.Hooks())
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles()
	}
	narrow := run(gridNarrow)
	wide := run(gridWide)
	if narrow <= wide {
		t.Errorf("VC depth 1 (%d cycles) should be slower than depth 16 (%d cycles)", narrow, wide)
	}
}

func TestOpLatencyTable(t *testing.T) {
	if OpLatency(kir.OpAdd) != 1 {
		t.Error("integer add latency should be 1")
	}
	if OpLatency(kir.OpFDiv) <= OpLatency(kir.OpFMul) {
		t.Error("fdiv should be slower than fmul")
	}
	if OpLatency(kir.OpFExp) <= OpLatency(kir.OpFAdd) {
		t.Error("fexp should be slower than fadd")
	}
}

// TestEngineStatsConsistency: per-class op counts must equal nodes-of-class
// times threads, and every thread contributes its token traffic.
func TestEngineStatsConsistency(t *testing.T) {
	k := buildSaxpyBlock(t)
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.PlaceMax(grid, ck.DFGs[0])
	if err != nil {
		t.Fatal(err)
	}
	const n = 192
	launch := kir.Launch1D(n/32, 32, kir.F32(1), 0, n)
	env, err := NewDataEnv(k, launch, make([]uint32, 2*n), mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	st, err := New(grid, Options{}).RunVector(p, threads, 0, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	counts := ck.DFGs[0].ClassCounts()
	for cl, c := range counts {
		if got := st.Ops[cl]; got != uint64(c)*n {
			t.Errorf("%v ops = %d, want %d", cl, got, uint64(c)*n)
		}
	}
	edges := 0
	for _, nd := range ck.DFGs[0].Nodes {
		edges += len(nd.In) + len(nd.CtlIn)
	}
	if st.TokenTransfers != uint64(edges)*n {
		t.Errorf("token transfers = %d, want %d", st.TokenTransfers, uint64(edges)*n)
	}
	if st.TokenHops < st.TokenTransfers {
		t.Error("hops must be >= transfers (min 1 hop each)")
	}
}

// TestEngineEmptyVector: zero threads is a no-op.
func TestEngineEmptyVector(t *testing.T) {
	k := buildSaxpyBlock(t)
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.PlaceMax(grid, ck.DFGs[0])
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewDataEnv(k, kir.Launch1D(1, 32, kir.F32(1), 0, 32), make([]uint32, 64), mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(grid, Options{}).RunVector(p, nil, 500, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles() != 0 || st.Injected != 0 {
		t.Errorf("empty vector ran: %+v", st)
	}
}

// TestEnginePredicatedStoreSuppressed: an SGMF-style predicated store with a
// false predicate must neither write memory nor count as a global access.
func TestEnginePredicatedStoreSuppressed(t *testing.T) {
	// if (tid & 1) out[tid] = 7  — if-converted, odd threads store.
	b := kir.NewBuilder("pred")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	store := b.NewBlock("store")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	odd := b.SetEQ(b.And(b.Tid(), b.Const(1)), b.Const(1))
	b.Branch(odd, store, exit)
	b.SetBlock(store)
	b.Store(b.Add(b.Param(0), b.Tid()), 0, b.Const(7))
	b.Jump(exit)
	b.SetBlock(exit)
	b.Ret()
	k := b.MustBuild()
	if _, err := compile.ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	flat, err := compile.IfConvert(k)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	p, err := fabric.Place(grid, flat, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	global := make([]uint32, n)
	env, err := NewDataEnv(k, kir.Launch1D(2, 32, 0), global, mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		t.Fatal(err)
	}
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	st, err := New(grid, Options{}).RunVector(p, threads, 0, env.Hooks())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := uint32(0)
		if i%2 == 1 {
			want = 7
		}
		if global[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, global[i], want)
		}
	}
	if st.SkippedMemOps != n/2 {
		t.Errorf("skipped = %d, want %d", st.SkippedMemOps, n/2)
	}
	if st.GlobalAccesses != n/2 {
		t.Errorf("global accesses = %d, want %d (suppressed stores must not count)",
			st.GlobalAccesses, n/2)
	}
}
