package engine

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
)

// BenchmarkEngineHotPath streams a thread vector through a reused engine —
// the steady state of a kernel run, where every block execution revisits the
// same placement. After the first run sizes the engine's arenas, RunVector
// must not allocate: the allocs/op report is the regression guard.
func BenchmarkEngineHotPath(b *testing.B) {
	bld := kir.NewBuilder("hotpath")
	bld.SetParams(1)
	bld.SetBlock(bld.NewBlock("entry"))
	addr := bld.Add(bld.Param(0), bld.Tid())
	v := bld.Load(addr, 0)
	bld.Store(addr, 0, bld.FAdd(v, v))
	bld.Ret()
	k := bld.MustBuild()

	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ck, err := compile.Compile(k)
	if err != nil {
		b.Fatal(err)
	}
	p, err := fabric.Place(grid, ck.DFGs[0], 2)
	if err != nil {
		b.Fatal(err)
	}
	const n = 512
	launch := kir.Launch1D(n/32, 32, 0)
	env, err := NewDataEnv(k, launch, make([]uint32, n), mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		b.Fatal(err)
	}
	hooks := env.Hooks()
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	e := New(grid, Options{})
	// Warm-up run: grows the per-unit arenas to this placement's size.
	if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
			b.Fatal(err)
		}
	}
}
