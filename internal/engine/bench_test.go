package engine

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

// hotPathSetup builds the steady-state scenario shared by the hot-path
// benchmark and the zero-alloc guard: a one-block kernel, placed once, with a
// warm engine whose arenas already fit the placement. singleMem selects a
// one-memory-node kernel (store only), the shape where the batched executor's
// wave-vector path engages; the default load+store kernel has two stateful
// nodes and keeps the per-lane walk.
func hotPathSetup(tb testing.TB, opt Options, singleMem bool) (*Engine, *fabric.Placement, []int, *Hooks) {
	tb.Helper()
	bld := kir.NewBuilder("hotpath")
	bld.SetParams(1)
	bld.SetBlock(bld.NewBlock("entry"))
	addr := bld.Add(bld.Param(0), bld.Tid())
	if singleMem {
		bld.Store(addr, 0, bld.FAdd(addr, addr))
	} else {
		v := bld.Load(addr, 0)
		bld.Store(addr, 0, bld.FAdd(v, v))
	}
	bld.Ret()
	k := bld.MustBuild()

	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	ck, err := compile.Compile(k)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := fabric.Place(grid, ck.DFGs[0], 2)
	if err != nil {
		tb.Fatal(err)
	}
	const n = 512
	launch := kir.Launch1D(n/32, 32, 0)
	env, err := NewDataEnv(k, launch, make([]uint32, n), mem.NewSystem(mem.DefaultConfig(mem.WriteBack)))
	if err != nil {
		tb.Fatal(err)
	}
	hooks := env.Hooks()
	threads := make([]int, n)
	for i := range threads {
		threads[i] = i
	}
	e := New(grid, opt)
	// Warm-up runs: the first grows the per-unit arenas to this placement's
	// size; a couple more let the memory system's MSHR slab sizes settle.
	// (Those slabs still double occasionally as simulated time advances, so
	// a single iteration can observe one allocation; benchmark over enough
	// iterations to amortize it — the Makefile uses -benchtime 100x.)
	for i := 0; i < 3; i++ {
		if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
			tb.Fatal(err)
		}
	}
	return e, p, threads, hooks
}

// BenchmarkEngineHotPath streams a thread vector through a reused engine —
// the steady state of a kernel run, where every block execution revisits the
// same placement. After the first run sizes the engine's arenas, RunVector
// must not allocate: the allocs/op report is the regression guard. The
// filtered-sink variant pins the tracing overhead contract: a sink whose mask
// excludes CatEngine must also cost 0 allocs/op.
func BenchmarkEngineHotPath(b *testing.B) {
	run := func(b *testing.B, opt Options, singleMem bool) {
		e, p, threads, hooks := hotPathSetup(b, opt, singleMem)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no-sink", func(b *testing.B) { run(b, Options{}, false) })
	b.Run("filtered-sink", func(b *testing.B) {
		run(b, Options{Trace: trace.NewSink(trace.CatVGIW)}, false)
	})
	// The vec pair isolates the wave-vector memory path: the same
	// single-store kernel with the vector hook active (vec) and severed
	// (vec-scalar-hook), so their delta is the AccessVector batching win.
	b.Run("vec", func(b *testing.B) { run(b, Options{}, true) })
	b.Run("vec-scalar-hook", func(b *testing.B) {
		e, p, threads, hooks := hotPathSetup(b, Options{}, true)
		hooks.AccessMemVector = nil
		hooks.AccessLVVector = nil
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEngineHotPathZeroAllocDisabledSink enforces the tracing overhead
// contract as a hard failure (the benchmark only reports): with no sink, and
// with a sink filtered away from CatEngine, steady-state RunVector must have
// no unconditional per-op allocation. The memory model's MSHR bookkeeping
// (mem.SlotAlloc, mem.Outstanding) legitimately grows on rare runs as
// simulated time advances, so the guard takes the minimum over several
// rounds: if any round is alloc-free, the disabled-sink path itself costs
// nothing, and only an every-op allocation — which is what an Emit on the
// hot path would be — can fail it.
func TestEngineHotPathZeroAllocDisabledSink(t *testing.T) {
	for _, tc := range []struct {
		name      string
		opt       Options
		singleMem bool
	}{
		{"no-sink", Options{}, false},
		{"filtered-sink", Options{Trace: trace.NewSink(trace.CatVGIW)}, false},
		{"scalar", Options{Scalar: true}, false},
		{"fast", Options{Fast: true}, false},
		{"vec", Options{}, true}, // wave-vector memory path (AccessMemVector)
	} {
		e, p, threads, hooks := hotPathSetup(t, tc.opt, tc.singleMem)
		min := -1.0
		for round := 0; round < 5; round++ {
			allocs := testing.AllocsPerRun(1, func() {
				if _, err := e.RunVector(p, threads, 0, hooks); err != nil {
					t.Fatal(err)
				}
			})
			if min < 0 || allocs < min {
				min = allocs
			}
		}
		if min != 0 {
			t.Errorf("%s: RunVector allocates ≥%v/op on every round, want an alloc-free steady state", tc.name, min)
		}
	}
}
