package verify_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kasm"
	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// FuzzKasmVerify fuzzes the full front half of the toolchain with the
// verifier as the oracle:
//
//  1. kasm.Parse must never panic, whatever the input;
//  2. a kernel the Source-mode verifier accepts must not panic the
//     reference interpreter (errors — out-of-bounds accesses, runaway
//     loops — are fine; panics are bugs in either the verifier's rules or
//     the interpreter);
//  3. nor may it panic the compiler pipeline, whose Checked mode re-runs
//     the verifier after every pass;
//  4. when the interpreter runs the kernel to completion, the VGIW machine
//     in fast (functional-only) engine mode must produce the same final
//     global memory — a differential oracle between the reference
//     interpreter and the batched executor's fast path, on fuzzer-shaped
//     kernels rather than the curated registry.
//
// This test package is external (verify_test) so it can import compile,
// which itself depends on verify.
func FuzzKasmVerify(f *testing.F) {
	f.Add("kernel k params=0 shared=0\n@0 entry:\n  ret\n")
	f.Add("kernel loop params=1 shared=4\n@0 entry:\n  r0 = tid\n  r1 = const 0\n  jmp @1\n@1 body:\n  r1 = addi r1, 1\n  r2 = setlt r1 r0\n  br r2 @1 @2\n@2 exit:\n  ret\n")
	// Every invalid-corpus kernel doubles as a seed: near-valid inputs are
	// the interesting frontier.
	ents, err := os.ReadDir(filepath.Join("testdata", "invalid"))
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range ents {
		src, err := os.ReadFile(filepath.Join("testdata", "invalid", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}

	f.Fuzz(func(t *testing.T, src string) {
		k, err := kasm.Parse(src)
		if err != nil {
			return // rejection is fine; only a panic would fail the fuzz
		}
		if err := verify.Check("fuzz", k, verify.Source); err != nil {
			return
		}
		// Bound the resources a verifier-accepted kernel may claim before
		// running it; the fuzzer would otherwise find header-driven OOM,
		// which is not a property worth testing.
		if k.NumRegs > 1024 || k.SharedWds > 1<<14 || len(k.Blocks) > 256 {
			return
		}
		params := make([]uint32, k.NumParams)
		launch := kir.Launch1D(1, 4, params...)
		in := &kir.Interp{
			Kernel:   k,
			Launch:   launch,
			Global:   make([]uint32, 64),
			MaxSteps: 1 << 12,
		}
		interpErr := in.Run() // errors allowed, panics are not

		kk := k.Clone()
		if _, err := compile.ScheduleBlocks(kk); err != nil {
			return
		}
		_, _ = compile.Compile(kk, compile.Checked())

		if interpErr != nil {
			return
		}
		// The interpreter ran clean and within its step bound, so the kernel
		// terminates: run it through the machine's fast engine and demand the
		// same memory image. A compile/fit rejection is fine (the fabric is
		// finite); a timeout means the machine diverged where the interpreter
		// halted, which the deadline converts into a failure below.
		cfg := core.DefaultConfig()
		cfg.Engine.Fast = true
		m, err := core.NewMachine(cfg)
		if err != nil {
			t.Fatalf("machine: %v", err)
		}
		ck, err := m.Compile(k.Clone())
		if err != nil {
			return
		}
		prep, err := m.Prepare(ck)
		if err != nil {
			return
		}
		global := make([]uint32, 64)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := m.RunPreparedCtx(ctx, prep, launch, global); err != nil {
			t.Fatalf("fast machine failed where the interpreter succeeded: %v", err)
		}
		for i := range global {
			if global[i] != in.Global[i] {
				t.Fatalf("fast machine global[%d] = %#x, interpreter has %#x", i, global[i], in.Global[i])
			}
		}
	})
}
