package verify_test

import (
	"fmt"
	"strings"
	"testing"

	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

func TestDiagnosticError(t *testing.T) {
	d := verify.Diagnostic{
		Pass: "remat", Kernel: "k", Block: 2, Op: 3,
		Pos: kir.Pos{Line: 14, Col: 3}, Msg: "r7 used before definition",
	}
	got := d.Error()
	for _, want := range []string{"[remat]", "kernel k", "block 2", "instr 3", "line 14:3", "r7 used before definition"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}

	// Kernel-wide finding: no block/instr/pos fragments.
	whole := verify.Diagnostic{Pass: "launch", Kernel: "k", Block: -1, Op: -1, Msg: "m"}
	if got := whole.Error(); strings.Contains(got, "block") || strings.Contains(got, "instr") {
		t.Errorf("kernel-wide Error() = %q mentions block/instr", got)
	}
}

func TestJoinAndDiagnostics(t *testing.T) {
	if verify.Join(nil) != nil {
		t.Error("Join(nil) != nil")
	}
	ds := []verify.Diagnostic{
		{Pass: "a", Block: -1, Op: -1, Msg: "one"},
		{Pass: "b", Block: 0, Op: 1, Msg: "two"},
	}
	err := verify.Join(ds)
	if err == nil {
		t.Fatal("Join of two diagnostics is nil")
	}
	// Diagnostics must survive further wrapping, as compile does with %w.
	wrapped := fmt.Errorf("compile: pass a: %w", err)
	got := verify.Diagnostics(wrapped)
	if len(got) != 2 || got[0] != ds[0] || got[1] != ds[1] {
		t.Errorf("Diagnostics(wrapped) = %v, want %v", got, ds)
	}
	if verify.Diagnostics(fmt.Errorf("plain")) != nil {
		t.Error("Diagnostics of a plain error is non-nil")
	}
}

func TestLaunchChecks(t *testing.T) {
	k := &kir.Kernel{Name: "l", NumParams: 2}
	bad := kir.Launch{GridX: 0, GridY: 1, BlockX: 4, BlockY: 1, Params: []uint32{1}}
	ds := verify.Launch("launch", k, bad)
	if len(ds) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (dimensions + params):\n%s", len(ds), joinDiags(ds))
	}
	good := kir.Launch1D(1, 4, 1, 2)
	if ds := verify.Launch("launch", k, good); len(ds) != 0 {
		t.Errorf("valid launch flagged:\n%s", joinDiags(ds))
	}
}
