package verify_test

import (
	"testing"

	"vgiw/internal/kernels"
	"vgiw/internal/verify"
)

// TestRegistryKernelsVerify runs the source-level verifier over every
// benchmark kernel in the registry: the checks must hold on all real
// frontends, not just the invalid corpus. This is the false-positive gate
// for the type and def-use analyses.
func TestRegistryKernelsVerify(t *testing.T) {
	for _, spec := range kernels.All() {
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(1)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if ds := verify.Kernel("frontend", inst.Kernel, verify.Source); len(ds) > 0 {
				for _, d := range ds {
					t.Errorf("%v", d)
				}
			}
			if ds := verify.Launch("frontend", inst.Kernel, inst.Launch); len(ds) > 0 {
				for _, d := range ds {
					t.Errorf("%v", d)
				}
			}
		})
	}
}
