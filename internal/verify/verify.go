// Package verify statically checks kernel-IR invariants.
//
// It is the first layer of the repository's verification spine: structural
// well-formedness, def-before-use over the CFG, per-opcode operand/result
// type agreement, reachability and entry rules, the paper's block-schedule
// numbering (§3.1), and launch-configuration sanity. The second layer — the
// post-pass invariant checks that need compiler data structures (live-value
// allocation, dataflow graphs, if-conversion state) — lives in
// internal/compile and the placed-graph checks in internal/fabric; both
// report their findings with this package's Diagnostic type so every
// verification failure in the system has the same shape.
//
// verify imports only internal/kir. In particular it does not use
// internal/compile's CFG analyses: reverse postorder, reachability, and the
// definite-assignment dataflow are reimplemented here so that the verifier
// checks the compiler's results against an independent computation rather
// than against itself.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"vgiw/internal/kir"
)

// Diagnostic is one verifier finding. It implements error; multiple findings
// are combined with errors.Join (see Join) and recovered with Diagnostics.
type Diagnostic struct {
	Pass   string  // compiler pass or checker that found it ("structural", "remat", "dfg", ...)
	Kernel string  // kernel name
	Block  int     // block index, or -1 for a kernel-wide finding
	Op     int     // instruction index within Block, or -1 for the terminator / whole block
	Pos    kir.Pos // kasm source position when the kernel was parsed from text
	Msg    string
}

func (d Diagnostic) Error() string {
	var b strings.Builder
	b.WriteString("verify")
	if d.Pass != "" {
		fmt.Fprintf(&b, " [%s]", d.Pass)
	}
	if d.Kernel != "" {
		fmt.Fprintf(&b, ": kernel %s", d.Kernel)
	}
	if d.Block >= 0 {
		fmt.Fprintf(&b, ": block %d", d.Block)
	}
	if d.Op >= 0 {
		fmt.Fprintf(&b, ": instr %d", d.Op)
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	if !d.Pos.IsZero() {
		fmt.Fprintf(&b, " (%s)", d.Pos)
	}
	return b.String()
}

// Join combines diagnostics into a single error via errors.Join.
// It returns nil when there are none.
func Join(ds []Diagnostic) error {
	if len(ds) == 0 {
		return nil
	}
	errs := make([]error, len(ds))
	for i, d := range ds {
		errs[i] = d
	}
	return errors.Join(errs...)
}

// Diagnostics recovers every Diagnostic from an error tree built with Join,
// fmt.Errorf("%w"), or errors.Join. It returns nil if the error carries none.
func Diagnostics(err error) []Diagnostic {
	var out []Diagnostic
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if d, ok := e.(Diagnostic); ok {
			out = append(out, d)
			return
		}
		switch u := e.(type) {
		case interface{ Unwrap() []error }:
			for _, c := range u.Unwrap() {
				walk(c)
			}
		case interface{ Unwrap() error }:
			walk(u.Unwrap())
		}
	}
	walk(err)
	return out
}

// Mode selects which kernel checks run. Kernels straight out of the frontend
// satisfy Source; kernels that have been through compile.ScheduleBlocks must
// additionally satisfy Compiled.
type Mode uint8

const (
	Structural Mode = 1 << iota // opcode arity, register/param/target ranges, entry rules
	DefUse                      // every use definitely assigned on all paths from entry
	Types                       // operand/result types agree with each op's signature
	Reachable                   // every block reachable from the entry
	Scheduled                   // block IDs are in schedule (reverse-postorder) order

	// Source is the contract for freshly parsed or builder-made kernels.
	Source = Structural | DefUse | Types
	// Compiled is the contract after block scheduling: Source plus
	// reachability (ScheduleBlocks drops unreachable blocks) and the §3.1
	// block-numbering rule.
	Compiled = Source | Reachable | Scheduled
)

// Kernel runs the selected checks and returns every finding. pass names the
// compiler stage being verified and is recorded on each diagnostic.
func Kernel(pass string, k *kir.Kernel, mode Mode) []Diagnostic {
	c := &checker{pass: pass, k: k}
	if mode&Structural != 0 {
		c.structural()
	}
	// The dataflow checks index registers and blocks; without structural
	// sanity they could fault, so they only run on a structurally sound
	// kernel and otherwise stay silent behind the structural findings.
	if len(c.ds) == 0 {
		if mode&DefUse != 0 {
			c.defUse()
		}
		if mode&Types != 0 {
			c.types()
		}
		if mode&Reachable != 0 {
			c.reachability()
		}
		if mode&Scheduled != 0 {
			c.scheduleOrder()
		}
	}
	return c.ds
}

// Check is Kernel followed by Join: nil when the kernel satisfies mode.
func Check(pass string, k *kir.Kernel, mode Mode) error {
	return Join(Kernel(pass, k, mode))
}

// Launch checks a launch configuration against a kernel: positive dimensions
// and a parameter vector matching the kernel's declared parameter count.
func Launch(pass string, k *kir.Kernel, l kir.Launch) []Diagnostic {
	c := &checker{pass: pass, k: k}
	if l.GridX <= 0 || l.GridY <= 0 || l.BlockX <= 0 || l.BlockY <= 0 {
		c.addf(-1, -1, kir.Pos{}, "launch dimensions must be positive: grid %dx%d block %dx%d",
			l.GridX, l.GridY, l.BlockX, l.BlockY)
	}
	if len(l.Params) != k.NumParams {
		c.addf(-1, -1, kir.Pos{}, "kernel declares %d params, launch provides %d",
			k.NumParams, len(l.Params))
	}
	return c.ds
}
