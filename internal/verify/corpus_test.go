package verify_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vgiw/internal/kasm"
	"vgiw/internal/verify"
)

// TestInvalidCorpus runs every deliberately broken kernel in
// testdata/invalid through the parser and the verifier and asserts the
// specific diagnostic fires. Kernels that are malformed at the syntax or
// kir.Validate level never reach the verifier; for those the expected text
// is matched against the parse error instead.
func TestInvalidCorpus(t *testing.T) {
	cases := []struct {
		file     string
		want     string // substring of the diagnostic (or parse error)
		wantLine int32  // if nonzero, the diagnostic must carry this source line
	}{
		{"use_before_def.kasm", "r0 used before definition", 4},
		{"use_before_def_path.kasm", "r2 used before definition", 13},
		{"use_before_def_loop.kasm", "r1 used before definition", 7},
		{"type_clash_int_fadd.kasm", "src0 r0 is defined as int but fadd expects float", 5},
		{"type_clash_float_add.kasm", "src0 r1 is defined as float but add expects int", 6},
		{"type_clash_branch.kasm", "branch condition r1 is defined as float", 6},
		{"select_cond_float.kasm", "src0 r1 is defined as float but select expects int", 6},
		{"unreachable.kasm", `block "orphan" unreachable from entry`, 7},
		{"schedule_order.kasm", "schedule (reverse-postorder) position", 0},
		{"bad_terminator.kasm", "successor block 7 out of range", 0},
		{"bad_store.kasm", "st takes address and value registers", 0},
		{"unterminated.kasm", "not terminated", 0},
	}
	covered := make(map[string]bool, len(cases))
	for _, tc := range cases {
		covered[tc.file] = true
		t.Run(tc.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "invalid", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			k, err := kasm.Parse(string(src))
			if err != nil {
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("parse error %q does not mention %q", err, tc.want)
				}
				return
			}
			ds := verify.Kernel("corpus", k, verify.Compiled)
			if len(ds) == 0 {
				t.Fatalf("verifier accepted broken kernel %s", tc.file)
			}
			for _, d := range ds {
				if !strings.Contains(d.Error(), tc.want) {
					continue
				}
				if tc.wantLine != 0 && d.Pos.Line != tc.wantLine {
					t.Errorf("diagnostic %v at line %d, want line %d", d, d.Pos.Line, tc.wantLine)
				}
				if d.Pass != "corpus" {
					t.Errorf("diagnostic pass = %q, want %q", d.Pass, "corpus")
				}
				return
			}
			t.Fatalf("no diagnostic mentions %q; got:\n%s", tc.want, joinDiags(ds))
		})
	}

	// Every corpus file must be pinned by a case above.
	ents, err := os.ReadDir(filepath.Join("testdata", "invalid"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !covered[e.Name()] {
			t.Errorf("corpus file %s has no test case", e.Name())
		}
	}
}

func joinDiags(ds []verify.Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  ")
		b.WriteString(d.Error())
		b.WriteByte('\n')
	}
	return b.String()
}
