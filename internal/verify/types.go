package verify

import "vgiw/internal/kir"

// vt is the value-type lattice for the 32-bit registers: unknown (no def
// seen) below int and float, which join to any (a register that holds both —
// legal register reuse — or a value of statically unknown interpretation:
// constants, parameters, and loads all produce raw bits).
type vt uint8

const (
	tUnknown vt = iota
	tInt
	tFloat
	tAny
)

func (t vt) String() string {
	switch t {
	case tInt:
		return "int"
	case tFloat:
		return "float"
	case tAny:
		return "any"
	}
	return "unknown"
}

func joinVT(a, b vt) vt {
	switch {
	case a == b:
		return a
	case a == tUnknown:
		return b
	case b == tUnknown:
		return a
	default: // int ⊔ float, or anything with any
		return tAny
	}
}

// resultVT reports the type an instruction's destination holds. Mov and
// Select propagate their operand types, so the caller iterates to a fixpoint.
func resultVT(in kir.Instr, regs []vt) vt {
	switch in.Op {
	case kir.OpConst, kir.OpParam, kir.OpLoad, kir.OpLoadSh:
		return tAny // raw bits; either interpretation is legal
	case kir.OpMov:
		return regs[in.Src[0]]
	case kir.OpSelect:
		return joinVT(regs[in.Src[1]], regs[in.Src[2]])
	case kir.OpI2F:
		return tFloat
	case kir.OpF2I:
		return tInt
	case kir.OpFSetEQ, kir.OpFSetNE, kir.OpFSetLT, kir.OpFSetLE:
		return tInt // comparisons produce 0/1 regardless of operand type
	}
	if in.Op.IsFloat() {
		return tFloat
	}
	return tInt // geometry, integer arithmetic/logic, integer comparisons
}

// operandVT reports the type operand s of op must hold, or tAny when the op
// accepts raw bits there (mov, select arms, store values).
func operandVT(op kir.Op, s int) vt {
	switch op {
	case kir.OpMov:
		return tAny
	case kir.OpSelect:
		if s == 0 {
			return tInt // predicate: comparison results are ints
		}
		return tAny
	case kir.OpLoad, kir.OpLoadSh:
		return tInt // address
	case kir.OpStore, kir.OpStoreSh:
		if s == 0 {
			return tInt // address
		}
		return tAny // stored value is raw bits
	case kir.OpI2F:
		return tInt
	case kir.OpF2I:
		return tFloat
	}
	if op.IsFloat() {
		return tFloat
	}
	return tInt
}

// types checks operand/result type agreement per op signature. Register
// types are inferred kernel-wide as the join over all definitions, iterated
// to a fixpoint because mov and select propagate operand types. A use is
// flagged only when the inferred type and the signature are both definite
// and disagree, so bit-level idioms through const/param/load never trip it.
func (c *checker) types() {
	k := c.k
	regs := make([]vt, k.NumRegs)
	for changed := true; changed; {
		changed = false
		for _, b := range k.Blocks {
			for _, in := range b.Instrs {
				if !in.Op.HasDst() {
					continue
				}
				if nt := joinVT(regs[in.Dst], resultVT(in, regs)); nt != regs[in.Dst] {
					regs[in.Dst] = nt
					changed = true
				}
			}
		}
	}

	conflict := func(want, got vt) bool {
		return (want == tInt && got == tFloat) || (want == tFloat && got == tInt)
	}
	for bi, b := range k.Blocks {
		for ii, in := range b.Instrs {
			for s := 0; s < in.Op.NumSrc(); s++ {
				want, got := operandVT(in.Op, s), regs[in.Src[s]]
				if conflict(want, got) {
					c.addf(bi, ii, in.Pos, "src%d r%d is defined as %v but %v expects %v",
						s, in.Src[s], got, in.Op, want)
				}
			}
		}
		if t := b.Term; t.Kind == kir.TermBranch && conflict(tInt, regs[t.Cond]) {
			c.addf(bi, -1, t.Pos, "branch condition r%d is defined as %v", t.Cond, regs[t.Cond])
		}
	}
}
