package verify

import (
	"fmt"

	"vgiw/internal/kir"
)

// checker accumulates diagnostics for one kernel.
type checker struct {
	pass string
	k    *kir.Kernel
	ds   []Diagnostic
}

func (c *checker) addf(block, op int, pos kir.Pos, format string, args ...any) {
	c.ds = append(c.ds, Diagnostic{
		Pass:   c.pass,
		Kernel: c.k.Name,
		Block:  block,
		Op:     op,
		Pos:    pos,
		Msg:    fmt.Sprintf(format, args...),
	})
}

// structural mirrors kir.Kernel.Validate as diagnostics: every finding is
// reported (Validate stops at the first), and each carries its source
// position.
func (c *checker) structural() {
	k := c.k
	if len(k.Blocks) == 0 {
		c.addf(-1, -1, kir.Pos{}, "no blocks")
		return
	}
	if k.NumRegs < 0 || k.NumParams < 0 || k.SharedWds < 0 {
		c.addf(-1, -1, kir.Pos{}, "negative resource declaration: regs=%d params=%d shared=%d",
			k.NumRegs, k.NumParams, k.SharedWds)
	}
	if k.Blocks[0].Barrier {
		c.addf(0, -1, k.Blocks[0].Pos, "entry block cannot carry a barrier")
	}
	for bi, b := range k.Blocks {
		for ii := range b.Instrs {
			c.instr(bi, ii)
		}
		c.terminator(bi)
	}
}

func (c *checker) regOK(r kir.Reg) bool { return r >= 0 && int(r) < c.k.NumRegs }

func (c *checker) instr(bi, ii int) {
	in := c.k.Blocks[bi].Instrs[ii]
	if in.Op == kir.OpNop || !in.Op.Valid() {
		c.addf(bi, ii, in.Pos, "invalid opcode %v", in.Op)
		return
	}
	if in.Op.HasDst() {
		if !c.regOK(in.Dst) {
			c.addf(bi, ii, in.Pos, "dst register r%d out of range [0,%d)", in.Dst, c.k.NumRegs)
		}
	} else if in.Dst != kir.NoReg {
		c.addf(bi, ii, in.Pos, "%v must not define a destination", in.Op)
	}
	for s := 0; s < in.Op.NumSrc(); s++ {
		if !c.regOK(in.Src[s]) {
			c.addf(bi, ii, in.Pos, "src%d register r%d out of range [0,%d)", s, in.Src[s], c.k.NumRegs)
		}
	}
	for s := in.Op.NumSrc(); s < len(in.Src); s++ {
		if in.Src[s] != kir.NoReg {
			c.addf(bi, ii, in.Pos, "%v takes %d sources; src%d set", in.Op, in.Op.NumSrc(), s)
		}
	}
	if in.Op == kir.OpParam && (in.Imm < 0 || int(in.Imm) >= c.k.NumParams) {
		c.addf(bi, ii, in.Pos, "parameter %d out of range [0,%d)", in.Imm, c.k.NumParams)
	}
}

func (c *checker) terminator(bi int) {
	t := c.k.Blocks[bi].Term
	target := func(idx int) {
		if idx < 0 || idx >= len(c.k.Blocks) {
			c.addf(bi, -1, t.Pos, "successor block %d out of range [0,%d)", idx, len(c.k.Blocks))
		}
	}
	switch t.Kind {
	case kir.TermJump:
		target(t.Then)
	case kir.TermBranch:
		if !c.regOK(t.Cond) {
			c.addf(bi, -1, t.Pos, "branch condition r%d out of range [0,%d)", t.Cond, c.k.NumRegs)
		}
		target(t.Then)
		target(t.Else)
	case kir.TermRet:
	default:
		c.addf(bi, -1, t.Pos, "invalid terminator kind %d", t.Kind)
	}
}

// defUse checks that every register use is definitely assigned on all paths
// from the entry, by forward must-reach dataflow over the CFG: a register is
// available at block entry only if every predecessor provides it. Loops are
// handled by starting non-entry blocks from the optimistic full set and
// iterating to a fixpoint; unreachable blocks keep the full set and are left
// to the reachability check.
func (c *checker) defUse() {
	k := c.k
	n := len(k.Blocks)
	words := (k.NumRegs + 63) / 64

	defs := make([]bitset, n) // registers defined anywhere in block b
	for bi, b := range k.Blocks {
		defs[bi] = newBitset(words)
		for _, in := range b.Instrs {
			if in.Op.HasDst() {
				defs[bi].set(in.Dst)
			}
		}
	}

	preds := make([][]int, n)
	for bi, b := range k.Blocks {
		for _, s := range b.Term.Succs() {
			preds[s] = append(preds[s], bi)
		}
	}

	in := make([]bitset, n)
	in[0] = newBitset(words)
	for bi := 1; bi < n; bi++ {
		in[bi] = newBitset(words).fill()
	}

	changed := true
	for changed {
		changed = false
		for bi := 1; bi < n; bi++ {
			if len(preds[bi]) == 0 {
				continue // unreachable; reachability reports it
			}
			next := newBitset(words).fill()
			for _, p := range preds[bi] {
				out := in[p].clone()
				out.or(defs[p])
				next.and(out)
			}
			if !next.equal(in[bi]) {
				in[bi] = next
				changed = true
			}
		}
	}

	for bi, b := range k.Blocks {
		have := in[bi].clone()
		for ii, instr := range b.Instrs {
			for s := 0; s < instr.Op.NumSrc(); s++ {
				if r := instr.Src[s]; !have.has(r) {
					c.addf(bi, ii, instr.Pos, "r%d used before definition", r)
				}
			}
			if instr.Op.HasDst() {
				have.set(instr.Dst)
			}
		}
		if b.Term.Kind == kir.TermBranch && !have.has(b.Term.Cond) {
			c.addf(bi, -1, b.Term.Pos, "branch condition r%d used before definition", b.Term.Cond)
		}
	}
}

// reachability reports blocks no path from the entry reaches.
func (c *checker) reachability() {
	for bi, ok := range c.reachable() {
		if !ok {
			c.addf(bi, -1, c.k.Blocks[bi].Pos, "block %q unreachable from entry", c.k.Blocks[bi].Label)
		}
	}
}

func (c *checker) reachable() []bool {
	seen := make([]bool, len(c.k.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.k.Blocks[b].Term.Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// scheduleOrder checks the paper's §3.1 block-numbering rule: block IDs are
// the schedule order, which compile.ScheduleBlocks defines as reverse
// postorder with the then-branch visited first. The verifier recomputes that
// order independently and requires the identity mapping, which also implies
// every forward edge goes to a larger ID and only loop back edges go to
// smaller-or-equal IDs.
func (c *checker) scheduleOrder() {
	k := c.k
	seen := make([]bool, len(k.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		succs := k.Blocks[b].Term.Succs()
		for i := len(succs) - 1; i >= 0; i-- {
			if s := succs[i]; !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	for want, got := range post {
		if got != want {
			c.addf(got, -1, k.Blocks[got].Pos,
				"block %q has ID %d but schedule (reverse-postorder) position %d",
				k.Blocks[got].Label, got, want)
		}
	}
}

// bitset is a fixed-width register set.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) has(r kir.Reg) bool {
	if r < 0 || int(r) >= len(b)*64 {
		return false
	}
	return b[r/64]&(1<<(uint(r)%64)) != 0
}

func (b bitset) set(r kir.Reg) {
	if r >= 0 && int(r) < len(b)*64 {
		b[r/64] |= 1 << (uint(r) % 64)
	}
}

func (b bitset) fill() bitset {
	for i := range b {
		b[i] = ^uint64(0)
	}
	return b
}

func (b bitset) clone() bitset { return append(bitset(nil), b...) }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) and(o bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
