package kir

import "fmt"

// Launch describes one kernel invocation: a CUDA-style 2-D grid of 2-D
// thread blocks (CTAs) plus scalar parameters. Threads are identified by a
// global linear thread ID; geometry opcodes recover the per-axis coordinates.
type Launch struct {
	GridX, GridY   int // CTAs per axis
	BlockX, BlockY int // threads per CTA per axis
	Params         []uint32
}

// Launch1D is the common case: gridX CTAs of blockX threads.
func Launch1D(gridX, blockX int, params ...uint32) Launch {
	return Launch{GridX: gridX, GridY: 1, BlockX: blockX, BlockY: 1, Params: params}
}

// Threads reports the total number of threads in the launch.
func (l Launch) Threads() int { return l.GridX * l.GridY * l.BlockX * l.BlockY }

// CTAs reports the number of thread blocks in the launch.
func (l Launch) CTAs() int { return l.GridX * l.GridY }

// CTASize reports the number of threads per CTA.
func (l Launch) CTASize() int { return l.BlockX * l.BlockY }

// Validate checks that all dimensions are positive.
func (l Launch) Validate() error {
	if l.GridX <= 0 || l.GridY <= 0 || l.BlockX <= 0 || l.BlockY <= 0 {
		return fmt.Errorf("launch dimensions must be positive: grid %dx%d block %dx%d",
			l.GridX, l.GridY, l.BlockX, l.BlockY)
	}
	return nil
}

// Geometry resolves a geometry opcode for the given global linear thread ID.
// Thread IDs are laid out CTA-major: consecutive IDs fill a CTA (x fastest),
// then move to the next CTA (grid x fastest).
func (l Launch) Geometry(op Op, tid int) uint32 {
	if op == OpTID {
		// The common opcode is the identity; skip the CTA div/mod entirely
		// (integer division is the most expensive thing in this function,
		// and TID is on the engine's per-thread hot path).
		return uint32(tid)
	}
	ctaSize := l.CTASize()
	cta := tid / ctaSize
	local := tid % ctaSize
	switch op {
	case OpTIDX:
		return uint32(local % l.BlockX)
	case OpTIDY:
		return uint32(local / l.BlockX)
	case OpCTAX:
		return uint32(cta % l.GridX)
	case OpCTAY:
		return uint32(cta / l.GridX)
	case OpNTIDX:
		return uint32(l.BlockX)
	case OpNTIDY:
		return uint32(l.BlockY)
	case OpNCTAX:
		return uint32(l.GridX)
	case OpNCTAY:
		return uint32(l.GridY)
	}
	panic(fmt.Sprintf("kir: %v is not a geometry opcode", op))
}

// CTAOf reports the CTA index of a global thread ID.
func (l Launch) CTAOf(tid int) int { return tid / l.CTASize() }
