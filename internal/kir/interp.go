package kir

import "fmt"

// Interp is a sequential reference interpreter for the kernel IR. It defines
// the golden functional semantics that every simulator's output is validated
// against in tests. It has no timing model.
//
// Threads of a CTA execute in barrier-delimited phases: each phase runs every
// thread until it either returns or reaches a block flagged Barrier, then the
// next phase begins. This matches CUDA __syncthreads for well-structured
// kernels (all threads of a CTA reach the same barriers in the same order),
// which is the class of kernels this repository models.
type Interp struct {
	Kernel *Kernel
	Launch Launch
	Global []uint32 // global memory (word addressed)

	// MaxSteps bounds the dynamic block executions per thread to catch
	// runaway loops; 0 means the default of 1<<22.
	MaxSteps int
}

// threadState tracks one thread between phases.
type threadState struct {
	regs  []uint32
	block int  // next block to execute
	done  bool // thread returned
}

// Run executes the kernel launch to completion, mutating i.Global in place.
func (i *Interp) Run() error {
	if err := i.Kernel.Validate(); err != nil {
		return err
	}
	if err := i.Launch.Validate(); err != nil {
		return err
	}
	if len(i.Launch.Params) != i.Kernel.NumParams {
		return fmt.Errorf("kir: kernel %s wants %d params, launch has %d",
			i.Kernel.Name, i.Kernel.NumParams, len(i.Launch.Params))
	}
	maxSteps := i.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 22
	}
	ctaSize := i.Launch.CTASize()
	for cta := 0; cta < i.Launch.CTAs(); cta++ {
		shared := make([]uint32, i.Kernel.SharedWds)
		threads := make([]threadState, ctaSize)
		for t := range threads {
			threads[t] = threadState{regs: make([]uint32, i.Kernel.NumRegs)}
		}
		base := cta * ctaSize
		for {
			alive := false
			for t := range threads {
				ts := &threads[t]
				if ts.done {
					continue
				}
				alive = true
				if err := i.runPhase(ts, base+t, shared, maxSteps); err != nil {
					return err
				}
			}
			if !alive {
				break
			}
		}
	}
	return nil
}

// runPhase advances one thread until it returns or stops in front of a
// barrier block (having already executed at least one block this phase).
func (i *Interp) runPhase(ts *threadState, tid int, shared []uint32, maxSteps int) error {
	k := i.Kernel
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("kir: thread %d exceeded %d block executions in kernel %s (runaway loop?)",
				tid, maxSteps, k.Name)
		}
		blk := k.Blocks[ts.block]
		if steps > 0 && blk.Barrier {
			return nil // wait for the rest of the CTA
		}
		for _, in := range blk.Instrs {
			if err := i.exec(ts, in, tid, shared); err != nil {
				return fmt.Errorf("kernel %s block %d (%s): %w", k.Name, ts.block, blk.Label, err)
			}
		}
		switch blk.Term.Kind {
		case TermJump:
			ts.block = blk.Term.Then
		case TermBranch:
			if ts.regs[blk.Term.Cond] != 0 {
				ts.block = blk.Term.Then
			} else {
				ts.block = blk.Term.Else
			}
		case TermRet:
			ts.done = true
			return nil
		}
	}
}

func (i *Interp) exec(ts *threadState, in Instr, tid int, shared []uint32) error {
	r := ts.regs
	switch {
	case in.Op == OpParam:
		r[in.Dst] = i.Launch.Params[in.Imm]
	case in.Op.IsGeometry():
		r[in.Dst] = i.Launch.Geometry(in.Op, tid)
	case in.Op == OpLoad:
		addr := int(int32(r[in.Src[0]]) + in.Imm)
		if addr < 0 || addr >= len(i.Global) {
			return fmt.Errorf("thread %d: global load out of bounds: %d (size %d)", tid, addr, len(i.Global))
		}
		r[in.Dst] = i.Global[addr]
	case in.Op == OpStore:
		addr := int(int32(r[in.Src[0]]) + in.Imm)
		if addr < 0 || addr >= len(i.Global) {
			return fmt.Errorf("thread %d: global store out of bounds: %d (size %d)", tid, addr, len(i.Global))
		}
		i.Global[addr] = r[in.Src[1]]
	case in.Op == OpLoadSh:
		addr := int(int32(r[in.Src[0]]) + in.Imm)
		if addr < 0 || addr >= len(shared) {
			return fmt.Errorf("thread %d: shared load out of bounds: %d (size %d)", tid, addr, len(shared))
		}
		r[in.Dst] = shared[addr]
	case in.Op == OpStoreSh:
		addr := int(int32(r[in.Src[0]]) + in.Imm)
		if addr < 0 || addr >= len(shared) {
			return fmt.Errorf("thread %d: shared store out of bounds: %d (size %d)", tid, addr, len(shared))
		}
		shared[addr] = r[in.Src[1]]
	default:
		var a, b, c uint32
		n := in.Op.NumSrc()
		if n > 0 {
			a = r[in.Src[0]]
		}
		if n > 1 {
			b = r[in.Src[1]]
		}
		if n > 2 {
			c = r[in.Src[2]]
		}
		r[in.Dst] = Eval(in.Op, a, b, c, in.Imm)
	}
	return nil
}
