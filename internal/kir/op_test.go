package kir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpNamesRoundTrip(t *testing.T) {
	for op := OpConst; op < opCount; op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok {
			t.Fatalf("OpByName(%q) not found", name)
		}
		if got != op {
			t.Fatalf("OpByName(%q) = %v, want %v", name, got, op)
		}
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op    Op
		class UnitClass
	}{
		{OpAdd, ClassALU}, {OpFMul, ClassALU}, {OpSelect, ClassALU},
		{OpDiv, ClassSCU}, {OpFDiv, ClassSCU}, {OpFSqrt, ClassSCU},
		{OpFExp, ClassSCU}, {OpFLog, ClassSCU}, {OpRem, ClassSCU},
		{OpLoad, ClassLDST}, {OpStore, ClassLDST},
		{OpLoadSh, ClassLDST}, {OpStoreSh, ClassLDST},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.class {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.class)
		}
	}
}

func TestOpArityConsistency(t *testing.T) {
	for op := OpConst; op < opCount; op++ {
		n := op.NumSrc()
		if n < 0 || n > 3 {
			t.Errorf("%v.NumSrc() = %d out of range", op, n)
		}
		if op.IsStore() && op.HasDst() {
			t.Errorf("%v is a store but has a destination", op)
		}
		if op.IsGeometry() && n != 0 {
			t.Errorf("%v is geometry but takes %d sources", op, n)
		}
	}
}

// u32 reinterprets a signed value as a register word.
func u32(v int32) uint32 { return uint32(v) }

func TestEvalIntegerOps(t *testing.T) {
	cases := []struct {
		op      Op
		a, b, c uint32
		imm     int32
		want    uint32
	}{
		{OpConst, 0, 0, 0, -7, 0xFFFFFFF9},
		{OpMov, 42, 0, 0, 0, 42},
		{OpAdd, 3, 4, 0, 0, 7},
		{OpSub, 3, 4, 0, 0, uint32(0xFFFFFFFF)},
		{OpMul, 6, 7, 0, 0, 42},
		{OpDiv, u32(-7), 2, 0, 0, u32(-3)},
		{OpDiv, 5, 0, 0, 0, u32(-1)}, // saturating semantics
		{OpRem, 7, 3, 0, 0, 1},
		{OpRem, 7, 0, 0, 0, 7},
		{OpAnd, 0b1100, 0b1010, 0, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0, 0b0110},
		{OpNot, 0, 0, 0, 0, 0xFFFFFFFF},
		{OpShl, 1, 4, 0, 0, 16},
		{OpShl, 1, 36, 0, 0, 16}, // shift amount masked to 5 bits
		{OpShrL, 0x80000000, 31, 0, 0, 1},
		{OpShrA, 0x80000000, 31, 0, 0, 0xFFFFFFFF},
		{OpMin, u32(-1), 1, 0, 0, u32(-1)},
		{OpMax, u32(-1), 1, 0, 0, 1},
		{OpSetEQ, 5, 5, 0, 0, 1},
		{OpSetNE, 5, 5, 0, 0, 0},
		{OpSetLT, u32(-2), 1, 0, 0, 1},
		{OpSetLE, 1, 1, 0, 0, 1},
		{OpSetLTU, u32(-2), 1, 0, 0, 0}, // unsigned: huge > 1
		{OpSetLEU, 1, 2, 0, 0, 1},
		{OpSelect, 1, 10, 20, 0, 10},
		{OpSelect, 0, 10, 20, 0, 20},
		{OpI2F, u32(-2), 0, 0, 0, F32(-2)},
		{OpF2I, F32(3.7), 0, 0, 0, 3},
	}
	for _, cse := range cases {
		if got := Eval(cse.op, cse.a, cse.b, cse.c, cse.imm); got != cse.want {
			t.Errorf("Eval(%v, %d, %d, %d, %d) = %d, want %d",
				cse.op, cse.a, cse.b, cse.c, cse.imm, got, cse.want)
		}
	}
}

func TestEvalFloatOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float32
		want float32
	}{
		{OpFAdd, 1.5, 2.25, 3.75},
		{OpFSub, 1.5, 2.25, -0.75},
		{OpFMul, 1.5, 2.0, 3.0},
		{OpFDiv, 3.0, 2.0, 1.5},
		{OpFSqrt, 9.0, 0, 3.0},
		{OpFNeg, 1.5, 0, -1.5},
		{OpFAbs, -1.5, 0, 1.5},
		{OpFMin, 1.0, -2.0, -2.0},
		{OpFMax, 1.0, -2.0, 1.0},
		{OpFFloor, 2.9, 0, 2.0},
		{OpFFloor, -2.1, 0, -3.0},
	}
	for _, cse := range cases {
		got := AsF32(Eval(cse.op, F32(cse.a), F32(cse.b), 0, 0))
		if got != cse.want {
			t.Errorf("Eval(%v, %g, %g) = %g, want %g", cse.op, cse.a, cse.b, got, cse.want)
		}
	}
	if got := AsF32(Eval(OpFExp, F32(1), 0, 0, 0)); math.Abs(float64(got)-math.E) > 1e-6 {
		t.Errorf("fexp(1) = %g, want e", got)
	}
	if got := AsF32(Eval(OpFLog, F32(float32(math.E)), 0, 0, 0)); math.Abs(float64(got)-1) > 1e-6 {
		t.Errorf("flog(e) = %g, want 1", got)
	}
}

func TestEvalFloatComparisons(t *testing.T) {
	one, two := F32(1), F32(2)
	if Eval(OpFSetLT, one, two, 0, 0) != 1 || Eval(OpFSetLT, two, one, 0, 0) != 0 {
		t.Error("fsetlt wrong")
	}
	if Eval(OpFSetLE, one, one, 0, 0) != 1 {
		t.Error("fsetle wrong")
	}
	if Eval(OpFSetEQ, one, one, 0, 0) != 1 || Eval(OpFSetEQ, one, two, 0, 0) != 0 {
		t.Error("fseteq wrong")
	}
	if Eval(OpFSetNE, one, two, 0, 0) != 1 {
		t.Error("fsetne wrong")
	}
}

// Property: integer add/sub and xor are self-inverse; select always picks one
// of its inputs; comparisons are boolean.
func TestEvalProperties(t *testing.T) {
	addSub := func(a, b uint32) bool {
		return Eval(OpSub, Eval(OpAdd, a, b, 0, 0), b, 0, 0) == a
	}
	if err := quick.Check(addSub, nil); err != nil {
		t.Error(err)
	}
	xorTwice := func(a, b uint32) bool {
		return Eval(OpXor, Eval(OpXor, a, b, 0, 0), b, 0, 0) == a
	}
	if err := quick.Check(xorTwice, nil); err != nil {
		t.Error(err)
	}
	selPicks := func(c, a, b uint32) bool {
		got := Eval(OpSelect, c, a, b, 0)
		return got == a || got == b
	}
	if err := quick.Check(selPicks, nil); err != nil {
		t.Error(err)
	}
	cmpBool := func(a, b uint32) bool {
		for _, op := range []Op{OpSetEQ, OpSetNE, OpSetLT, OpSetLE, OpSetLTU, OpSetLEU} {
			if v := Eval(op, a, b, 0, 0); v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(cmpBool, nil); err != nil {
		t.Error(err)
	}
	minMax := func(a, b uint32) bool {
		lo, hi := Eval(OpMin, a, b, 0, 0), Eval(OpMax, a, b, 0, 0)
		return (lo == a && hi == b) || (lo == b && hi == a)
	}
	if err := quick.Check(minMax, nil); err != nil {
		t.Error(err)
	}
}
