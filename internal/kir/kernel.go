package kir

import (
	"fmt"
	"strings"
)

// Reg identifies a 32-bit virtual register. Registers are kernel-scoped:
// a register written in one block may be read in another; the compiler turns
// such cross-block uses into live-value traffic.
type Reg int32

// NoReg marks an absent operand.
const NoReg Reg = -1

// Instr is a single (non-terminator) kernel instruction.
type Instr struct {
	Op  Op
	Dst Reg    // NoReg when Op.HasDst() is false
	Src [3]Reg // unused slots hold NoReg
	Imm int32  // constant, parameter index, or address offset (in words)
	Pos Pos    // kasm source position; zero for synthesized instructions
}

func (in Instr) String() string {
	var b strings.Builder
	if in.Op.HasDst() {
		fmt.Fprintf(&b, "r%d = ", in.Dst)
	}
	b.WriteString(in.Op.String())
	for i := 0; i < in.Op.NumSrc(); i++ {
		fmt.Fprintf(&b, " r%d", in.Src[i])
	}
	switch in.Op {
	case OpConst, OpParam:
		fmt.Fprintf(&b, " %d", in.Imm)
	case OpLoad, OpStore, OpLoadSh, OpStoreSh:
		if in.Imm != 0 {
			fmt.Fprintf(&b, " +%d", in.Imm)
		}
	}
	return b.String()
}

// TermKind discriminates block terminators.
type TermKind uint8

const (
	TermJump   TermKind = iota // unconditional jump to Then
	TermBranch                 // if Cond != 0 goto Then else goto Else
	TermRet                    // thread exits the kernel
)

// Terminator ends a basic block and transfers control. On the VGIW machine it
// is executed by the block's terminator CVU, which registers the thread in
// the control vector table entry of the successor block (§3.5).
type Terminator struct {
	Kind TermKind
	Cond Reg // used by TermBranch
	Then int // successor block index
	Else int // successor block index (TermBranch only)
	Pos  Pos // kasm source position; zero for synthesized terminators
}

func (t Terminator) String() string {
	switch t.Kind {
	case TermJump:
		return fmt.Sprintf("jmp @%d", t.Then)
	case TermBranch:
		return fmt.Sprintf("br r%d @%d @%d", t.Cond, t.Then, t.Else)
	case TermRet:
		return "ret"
	}
	return fmt.Sprintf("Terminator(%d)", t.Kind)
}

// Succs returns the successor block indices of the terminator.
func (t Terminator) Succs() []int {
	switch t.Kind {
	case TermJump:
		return []int{t.Then}
	case TermBranch:
		if t.Then == t.Else {
			return []int{t.Then}
		}
		return []int{t.Then, t.Else}
	}
	return nil
}

// Block is a basic block. Its index in Kernel.Blocks is its block ID; block
// IDs follow the compiler's scheduling order (§3.1): the entry block has the
// reserved ID 0, and a successor with a smaller ID than its source indicates
// a loop back edge.
type Block struct {
	Label  string // human-readable name ("entry", "loop.body", ...)
	Instrs []Instr
	Term   Terminator
	Pos    Pos // kasm source position of the block header; zero if synthesized

	// Barrier marks a __syncthreads boundary: every thread of a CTA must
	// have completed all predecessor blocks before any thread executes
	// this block. The VGIW machine satisfies barriers for free because the
	// entire thread vector drains between blocks; the SIMT baseline
	// synchronizes the warps of each CTA.
	Barrier bool
}

// Kernel is a compiled-from-source compute kernel: a CFG over Blocks with
// Blocks[0] as the unique entry block.
type Kernel struct {
	Name      string
	Blocks    []*Block
	NumRegs   int // registers are numbered [0, NumRegs)
	NumParams int // scalar launch parameters
	SharedWds int // per-CTA scratchpad size in 32-bit words
}

// NumInstrs reports the static instruction count (terminators excluded).
func (k *Kernel) NumInstrs() int {
	n := 0
	for _, b := range k.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Validate checks structural invariants: a terminated entry block exists,
// successor indices are in range, register and parameter references are in
// range, operand arity matches each opcode, and barriers do not appear on
// the entry block.
func (k *Kernel) Validate() error {
	if len(k.Blocks) == 0 {
		return fmt.Errorf("kernel %s: no blocks", k.Name)
	}
	if k.Blocks[0].Barrier {
		return fmt.Errorf("kernel %s: entry block cannot carry a barrier", k.Name)
	}
	for bi, b := range k.Blocks {
		for ii, in := range b.Instrs {
			if err := k.checkInstr(in); err != nil {
				return fmt.Errorf("kernel %s: block %d (%s) instr %d: %w", k.Name, bi, b.Label, ii, err)
			}
		}
		if err := k.checkTerm(b.Term); err != nil {
			return fmt.Errorf("kernel %s: block %d (%s): %w", k.Name, bi, b.Label, err)
		}
	}
	return nil
}

func (k *Kernel) checkReg(r Reg) error {
	if r < 0 || int(r) >= k.NumRegs {
		return fmt.Errorf("register r%d out of range [0,%d)", r, k.NumRegs)
	}
	return nil
}

func (k *Kernel) checkInstr(in Instr) error {
	if in.Op == OpNop || in.Op >= opCount {
		return fmt.Errorf("invalid opcode %v", in.Op)
	}
	if in.Op.HasDst() {
		if err := k.checkReg(in.Dst); err != nil {
			return fmt.Errorf("dst: %w", err)
		}
	} else if in.Dst != NoReg {
		return fmt.Errorf("%v must not define a destination", in.Op)
	}
	for i := 0; i < in.Op.NumSrc(); i++ {
		if err := k.checkReg(in.Src[i]); err != nil {
			return fmt.Errorf("src%d: %w", i, err)
		}
	}
	for i := in.Op.NumSrc(); i < len(in.Src); i++ {
		if in.Src[i] != NoReg {
			return fmt.Errorf("%v takes %d sources; src%d set", in.Op, in.Op.NumSrc(), i)
		}
	}
	if in.Op == OpParam && (in.Imm < 0 || int(in.Imm) >= k.NumParams) {
		return fmt.Errorf("parameter %d out of range [0,%d)", in.Imm, k.NumParams)
	}
	if in.Op.IsStore() && in.Src[1] == NoReg {
		return fmt.Errorf("store missing value operand")
	}
	return nil
}

func (k *Kernel) checkTerm(t Terminator) error {
	checkTarget := func(idx int) error {
		if idx < 0 || idx >= len(k.Blocks) {
			return fmt.Errorf("successor block %d out of range [0,%d)", idx, len(k.Blocks))
		}
		return nil
	}
	switch t.Kind {
	case TermJump:
		return checkTarget(t.Then)
	case TermBranch:
		if err := k.checkReg(t.Cond); err != nil {
			return fmt.Errorf("branch condition: %w", err)
		}
		if err := checkTarget(t.Then); err != nil {
			return err
		}
		return checkTarget(t.Else)
	case TermRet:
		return nil
	}
	return fmt.Errorf("invalid terminator kind %d", t.Kind)
}

// String renders the kernel in kasm-compatible form.
func (k *Kernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s params=%d shared=%d\n", k.Name, k.NumParams, k.SharedWds)
	for bi, blk := range k.Blocks {
		fmt.Fprintf(&b, "@%d %s:", bi, blk.Label)
		if blk.Barrier {
			b.WriteString(" barrier")
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in.String())
		}
		fmt.Fprintf(&b, "  %s\n", blk.Term.String())
	}
	return b.String()
}

// HasLoops reports whether any terminator targets a block with an ID not
// larger than its own (the paper's loop manifestation rule, §3.1). It assumes
// blocks are in scheduling order, which compile.ScheduleBlocks guarantees.
func (k *Kernel) HasLoops() bool {
	for bi, b := range k.Blocks {
		for _, s := range b.Term.Succs() {
			if s <= bi {
				return true
			}
		}
	}
	return false
}

// Clone deep-copies the kernel (blocks, instruction slices, terminators),
// so compiler passes can speculate on a copy and discard it.
func (k *Kernel) Clone() *Kernel {
	nk := &Kernel{
		Name:      k.Name,
		NumRegs:   k.NumRegs,
		NumParams: k.NumParams,
		SharedWds: k.SharedWds,
		Blocks:    make([]*Block, len(k.Blocks)),
	}
	for i, b := range k.Blocks {
		nb := &Block{
			Label:   b.Label,
			Instrs:  append([]Instr(nil), b.Instrs...),
			Term:    b.Term,
			Pos:     b.Pos,
			Barrier: b.Barrier,
		}
		nk.Blocks[i] = nb
	}
	return nk
}
