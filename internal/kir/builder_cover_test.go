package kir

import (
	"testing"
)

// TestBuilderOpcodeCoverage exercises every builder helper against Eval
// through the interpreter: one straight-line kernel computes each opcode and
// stores its result; expected values come from Eval directly.
func TestBuilderOpcodeCoverage(t *testing.T) {
	b := NewBuilder("cover")
	b.SetParams(1)
	b.SetShared(4)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)

	out := b.Param(0)
	slot := int32(0)
	var wants []uint32
	emit := func(r Reg, want uint32) {
		b.Store(b.Add(out, b.Const(slot)), 0, r)
		wants = append(wants, want)
		slot++
	}

	a := b.Const(12)
	c := b.Const(5)
	neg := b.Const(-7)
	fa := b.ConstF(2.5)
	fb := b.ConstF(-1.25)

	emit(b.Mov(a), 12)
	emit(b.Add(a, c), Eval(OpAdd, 12, 5, 0, 0))
	emit(b.Sub(a, c), Eval(OpSub, 12, 5, 0, 0))
	emit(b.Mul(a, c), Eval(OpMul, 12, 5, 0, 0))
	emit(b.Div(a, c), Eval(OpDiv, 12, 5, 0, 0))
	emit(b.Rem(a, c), Eval(OpRem, 12, 5, 0, 0))
	emit(b.And(a, c), Eval(OpAnd, 12, 5, 0, 0))
	emit(b.Or(a, c), Eval(OpOr, 12, 5, 0, 0))
	emit(b.Xor(a, c), Eval(OpXor, 12, 5, 0, 0))
	emit(b.Not(a), Eval(OpNot, 12, 0, 0, 0))
	emit(b.Shl(a, c), Eval(OpShl, 12, 5, 0, 0))
	emit(b.ShrL(a, c), Eval(OpShrL, 12, 5, 0, 0))
	emit(b.ShrA(neg, c), Eval(OpShrA, u32(-7), 5, 0, 0))
	emit(b.Min(neg, c), Eval(OpMin, u32(-7), 5, 0, 0))
	emit(b.Max(neg, c), Eval(OpMax, u32(-7), 5, 0, 0))
	emit(b.SetEQ(a, a), 1)
	emit(b.SetNE(a, c), 1)
	emit(b.SetLT(c, a), 1)
	emit(b.SetLE(a, a), 1)
	emit(b.SetLTU(c, a), 1)
	emit(b.SetLEU(c, c), 1)
	emit(b.AddI(a, 3), 15)
	emit(b.MulI(a, 3), 36)
	emit(b.FAdd(fa, fb), Eval(OpFAdd, F32(2.5), F32(-1.25), 0, 0))
	emit(b.FSub(fa, fb), Eval(OpFSub, F32(2.5), F32(-1.25), 0, 0))
	emit(b.FMul(fa, fb), Eval(OpFMul, F32(2.5), F32(-1.25), 0, 0))
	emit(b.FDiv(fa, fb), Eval(OpFDiv, F32(2.5), F32(-1.25), 0, 0))
	emit(b.FSqrt(fa), Eval(OpFSqrt, F32(2.5), 0, 0, 0))
	emit(b.FExp(fb), Eval(OpFExp, F32(-1.25), 0, 0, 0))
	emit(b.FLog(fa), Eval(OpFLog, F32(2.5), 0, 0, 0))
	emit(b.FNeg(fa), Eval(OpFNeg, F32(2.5), 0, 0, 0))
	emit(b.FAbs(fb), Eval(OpFAbs, F32(-1.25), 0, 0, 0))
	emit(b.FMin(fa, fb), Eval(OpFMin, F32(2.5), F32(-1.25), 0, 0))
	emit(b.FMax(fa, fb), Eval(OpFMax, F32(2.5), F32(-1.25), 0, 0))
	emit(b.FFloor(fa), Eval(OpFFloor, F32(2.5), 0, 0, 0))
	emit(b.FSetEQ(fa, fa), 1)
	emit(b.FSetNE(fa, fb), 1)
	emit(b.FSetLT(fb, fa), 1)
	emit(b.FSetLE(fa, fa), 1)
	emit(b.I2F(a), Eval(OpI2F, 12, 0, 0, 0))
	emit(b.F2I(fa), Eval(OpF2I, F32(2.5), 0, 0, 0))
	emit(b.Select(b.Const(1), a, c), 12)
	emit(b.Select(b.Const(0), a, c), 5)

	// Geometry (single-thread launch: everything is 0 or 1).
	emit(b.Tid(), 0)
	emit(b.TidX(), 0)
	emit(b.TidY(), 0)
	emit(b.CtaX(), 0)
	emit(b.CtaY(), 0)
	emit(b.NTidX(), 1)
	emit(b.NTidY(), 1)
	emit(b.NCtaX(), 1)
	emit(b.NCtaY(), 1)

	// Shared round trip.
	b.StoreSh(b.Const(2), 0, a)
	emit(b.LoadSh(b.Const(2), 0), 12)

	b.Ret()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	global := make([]uint32, slot)
	in := &Interp{Kernel: k, Launch: Launch1D(1, 1, 0), Global: global}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range wants {
		if global[i] != want {
			t.Errorf("slot %d = %#x, want %#x", i, global[i], want)
		}
	}
	if slot < 50 {
		t.Errorf("coverage kernel only exercised %d helpers", slot)
	}
}
