// Package kir defines the kernel intermediate representation consumed by the
// VGIW compiler and by every simulator in this repository (VGIW, the SIMT
// baseline, and SGMF).
//
// A kernel is a control flow graph of basic blocks. Instructions read and
// write an unbounded set of 32-bit virtual registers; values that cross
// basic-block boundaries are later assigned live-value IDs by the compiler
// (see internal/compile), mirroring §3.1 of the paper. All data is 32 bits
// wide: integer opcodes interpret register contents as int32/uint32 and
// floating-point opcodes as IEEE-754 binary32.
package kir

import "fmt"

// Op enumerates the kernel IR opcodes.
type Op uint8

const (
	OpNop Op = iota

	// Constants, moves, and kernel inputs.
	OpConst // Dst = Imm
	OpMov   // Dst = Src0
	OpParam // Dst = launch parameter #Imm

	// Thread geometry (CUDA-style coordinates derived from the linear
	// thread ID and the launch configuration).
	OpTID   // global linear thread ID
	OpTIDX  // threadIdx.x
	OpTIDY  // threadIdx.y
	OpCTAX  // blockIdx.x
	OpCTAY  // blockIdx.y
	OpNTIDX // blockDim.x
	OpNTIDY // blockDim.y
	OpNCTAX // gridDim.x
	OpNCTAY // gridDim.y

	// Integer arithmetic and logic (32-bit).
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; non-pipelined (executes on an SCU)
	OpRem // signed; non-pipelined (executes on an SCU)
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShrL // logical shift right
	OpShrA // arithmetic shift right
	OpMin  // signed minimum
	OpMax  // signed maximum

	// Integer comparisons; result is 0 or 1.
	OpSetEQ
	OpSetNE
	OpSetLT // signed
	OpSetLE // signed
	OpSetLTU
	OpSetLEU

	// Floating point (binary32).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv  // non-pipelined (SCU)
	OpFSqrt // non-pipelined (SCU)
	OpFExp  // non-pipelined (SCU)
	OpFLog  // non-pipelined (SCU)
	OpFNeg
	OpFAbs
	OpFMin
	OpFMax
	OpFFloor

	// Floating-point comparisons; result is 0 or 1.
	OpFSetEQ
	OpFSetNE
	OpFSetLT
	OpFSetLE

	// Conversions.
	OpI2F // int32 -> float32
	OpF2I // float32 -> int32 (truncating)

	// Select: Dst = Src0 != 0 ? Src1 : Src2.
	OpSelect

	// Memory. Addresses are in 32-bit words. Effective address is
	// Src0 + Imm for loads and stores.
	OpLoad    // Dst = global[Src0+Imm]
	OpStore   // global[Src0+Imm] = Src1
	OpLoadSh  // Dst = shared[Src0+Imm] (per-CTA scratchpad)
	OpStoreSh // shared[Src0+Imm] = Src1

	opCount // sentinel; keep last
)

// UnitClass categorizes an opcode by the MT-CGRF functional unit that
// executes it (§3.5). Geometry ops execute on compute units fed by the
// block's thread-initiator CVU.
type UnitClass uint8

const (
	ClassALU  UnitClass = iota // combined FPU-ALU compute unit
	ClassSCU                   // special compute unit (non-pipelined ops)
	ClassLDST                  // load/store unit (global + shared memory)
	ClassLVU                   // live value load/store unit (inserted by the compiler)
	ClassSJU                   // split/join unit (inserted by the compiler)
	ClassCVU                   // control vector unit (thread initiator/terminator)

	// NumUnitClasses is the number of unit classes; dense per-class counter
	// arrays index by UnitClass.
	NumUnitClasses = int(ClassCVU) + 1
)

func (c UnitClass) String() string {
	switch c {
	case ClassALU:
		return "ALU"
	case ClassSCU:
		return "SCU"
	case ClassLDST:
		return "LDST"
	case ClassLVU:
		return "LVU"
	case ClassSJU:
		return "SJU"
	case ClassCVU:
		return "CVU"
	}
	return fmt.Sprintf("UnitClass(%d)", uint8(c))
}

// Valid reports whether op is an executable opcode: in range and not OpNop
// (which never appears in well-formed kernels).
func (op Op) Valid() bool { return op > OpNop && op < opCount }

// Class reports the functional-unit class that executes op.
func (op Op) Class() UnitClass {
	switch op {
	case OpDiv, OpRem, OpFDiv, OpFSqrt, OpFExp, OpFLog:
		return ClassSCU
	case OpLoad, OpStore, OpLoadSh, OpStoreSh:
		return ClassLDST
	default:
		return ClassALU
	}
}

// IsMemory reports whether op accesses memory.
func (op Op) IsMemory() bool { return op.Class() == ClassLDST }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op == OpStore || op == OpStoreSh }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op == OpLoad || op == OpLoadSh }

// IsShared reports whether op accesses the per-CTA scratchpad.
func (op Op) IsShared() bool { return op == OpLoadSh || op == OpStoreSh }

// IsGeometry reports whether op produces a thread coordinate. Geometry values
// are derived from the thread identity injected by the initiator CVU and need
// no register operands.
func (op Op) IsGeometry() bool {
	switch op {
	case OpTID, OpTIDX, OpTIDY, OpCTAX, OpCTAY, OpNTIDX, OpNTIDY, OpNCTAX, OpNCTAY:
		return true
	}
	return false
}

// IsFloat reports whether op interprets its operands as float32.
func (op Op) IsFloat() bool {
	switch op {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFSqrt, OpFExp, OpFLog, OpFNeg,
		OpFAbs, OpFMin, OpFMax, OpFFloor, OpFSetEQ, OpFSetNE, OpFSetLT,
		OpFSetLE, OpF2I:
		return true
	}
	return false
}

// NumSrc reports how many register source operands op consumes.
func (op Op) NumSrc() int {
	switch op {
	case OpNop, OpConst, OpParam, OpTID, OpTIDX, OpTIDY, OpCTAX, OpCTAY,
		OpNTIDX, OpNTIDY, OpNCTAX, OpNCTAY:
		return 0
	case OpMov, OpNot, OpFNeg, OpFAbs, OpFSqrt, OpFExp, OpFLog, OpFFloor,
		OpI2F, OpF2I, OpLoad, OpLoadSh:
		return 1
	case OpSelect:
		return 3
	default:
		return 2
	}
}

// HasDst reports whether op defines a destination register.
func (op Op) HasDst() bool {
	switch op {
	case OpNop, OpStore, OpStoreSh:
		return false
	}
	return true
}

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov", OpParam: "param",
	OpTID: "tid", OpTIDX: "tidx", OpTIDY: "tidy", OpCTAX: "ctax",
	OpCTAY: "ctay", OpNTIDX: "ntidx", OpNTIDY: "ntidy", OpNCTAX: "nctax",
	OpNCTAY: "nctay",
	OpAdd:   "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not", OpShl: "shl",
	OpShrL: "shrl", OpShrA: "shra", OpMin: "min", OpMax: "max",
	OpSetEQ: "seteq", OpSetNE: "setne", OpSetLT: "setlt", OpSetLE: "setle",
	OpSetLTU: "setltu", OpSetLEU: "setleu",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFSqrt: "fsqrt", OpFExp: "fexp", OpFLog: "flog", OpFNeg: "fneg",
	OpFAbs: "fabs", OpFMin: "fmin", OpFMax: "fmax", OpFFloor: "ffloor",
	OpFSetEQ: "fseteq", OpFSetNE: "fsetne", OpFSetLT: "fsetlt", OpFSetLE: "fsetle",
	OpI2F: "i2f", OpF2I: "f2i", OpSelect: "select",
	OpLoad: "ld", OpStore: "st", OpLoadSh: "ldsh", OpStoreSh: "stsh",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// OpByName resolves a mnemonic back to its opcode; it is the inverse of
// Op.String and is used by the kasm parser.
func OpByName(name string) (Op, bool) {
	op, ok := namesToOp[name]
	return op, ok
}

var namesToOp = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()
