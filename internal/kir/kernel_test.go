package kir

import (
	"strings"
	"testing"
)

// saxpyKernel builds y[i] = a*x[i] + y[i] with a bounds guard.
func saxpyKernel(t testing.TB) *Kernel {
	t.Helper()
	b := NewBuilder("saxpy")
	b.SetParams(4) // n, a(bits), xBase, yBase
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	n := b.Param(0)
	inRange := b.SetLT(tid, n)
	b.Branch(inRange, body, exit)

	b.SetBlock(body)
	tid2 := b.Tid()
	a := b.Param(1)
	xb := b.Param(2)
	yb := b.Param(3)
	xa := b.Add(xb, tid2)
	ya := b.Add(yb, tid2)
	x := b.Load(xa, 0)
	y := b.Load(ya, 0)
	ax := b.FMul(a, x)
	r := b.FAdd(ax, y)
	b.Store(ya, 0, r)
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()

	k, err := b.Build()
	if err != nil {
		t.Fatalf("build saxpy: %v", err)
	}
	return k
}

func TestBuilderSaxpyValidates(t *testing.T) {
	k := saxpyKernel(t)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(k.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(k.Blocks))
	}
	if k.HasLoops() {
		t.Error("saxpy should be loop-free")
	}
	if k.NumInstrs() == 0 {
		t.Error("no instructions")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("unterminated block", func(t *testing.T) {
		b := NewBuilder("bad")
		b.NewBlock("entry")
		if _, err := b.Build(); err == nil {
			t.Error("want error for unterminated block")
		}
	})
	t.Run("emit after terminator", func(t *testing.T) {
		b := NewBuilder("bad")
		blk := b.NewBlock("entry")
		b.SetBlock(blk)
		b.Ret()
		b.Const(1)
		if _, err := b.Build(); err == nil {
			t.Error("want error for emit into terminated block")
		}
	})
	t.Run("double terminator", func(t *testing.T) {
		b := NewBuilder("bad")
		b.SetBlock(b.NewBlock("entry"))
		b.Ret()
		b.Ret()
		if _, err := b.Build(); err == nil {
			t.Error("want error for double termination")
		}
	})
	t.Run("foreign block", func(t *testing.T) {
		b1 := NewBuilder("a")
		other := b1.NewBlock("x")
		b2 := NewBuilder("b")
		b2.SetBlock(b2.NewBlock("entry"))
		b2.Jump(other)
		if _, err := b2.Build(); err == nil {
			t.Error("want error for jump to foreign block")
		}
	})
	t.Run("bad param index", func(t *testing.T) {
		b := NewBuilder("bad")
		b.SetBlock(b.NewBlock("entry"))
		b.Param(3) // no params declared
		b.Ret()
		if _, err := b.Build(); err == nil {
			t.Error("want error for out-of-range parameter")
		}
	})
}

func TestValidateCatchesCorruption(t *testing.T) {
	k := saxpyKernel(t)
	k.Blocks[1].Instrs[0].Src[0] = Reg(k.NumRegs + 5)
	if err := k.Validate(); err == nil {
		t.Error("want error for out-of-range register")
	}

	k = saxpyKernel(t)
	k.Blocks[0].Term.Then = 99
	if err := k.Validate(); err == nil {
		t.Error("want error for out-of-range successor")
	}

	k = saxpyKernel(t)
	k.Blocks[0].Barrier = true
	if err := k.Validate(); err == nil {
		t.Error("want error for barrier on entry block")
	}
}

func TestKernelString(t *testing.T) {
	s := saxpyKernel(t).String()
	for _, want := range []string{"kernel saxpy", "@0 entry:", "fmul", "ret", "br r"} {
		if !strings.Contains(s, want) {
			t.Errorf("kernel dump missing %q:\n%s", want, s)
		}
	}
}

func TestLaunchGeometry(t *testing.T) {
	l := Launch{GridX: 3, GridY: 2, BlockX: 4, BlockY: 2}
	if got := l.Threads(); got != 48 {
		t.Fatalf("Threads = %d, want 48", got)
	}
	if got := l.CTAs(); got != 6 {
		t.Fatalf("CTAs = %d, want 6", got)
	}
	// Thread 13 = CTA 1 (ctaX=1, ctaY=0), local 5 (tidx=1, tidy=1).
	tid := 13
	checks := map[Op]uint32{
		OpTID: 13, OpTIDX: 1, OpTIDY: 1, OpCTAX: 1, OpCTAY: 0,
		OpNTIDX: 4, OpNTIDY: 2, OpNCTAX: 3, OpNCTAY: 2,
	}
	for op, want := range checks {
		if got := l.Geometry(op, tid); got != want {
			t.Errorf("Geometry(%v, %d) = %d, want %d", op, tid, got, want)
		}
	}
	if l.CTAOf(13) != 1 {
		t.Errorf("CTAOf(13) = %d, want 1", l.CTAOf(13))
	}
}

func TestLaunchGeometryCoversAllThreads(t *testing.T) {
	l := Launch{GridX: 2, GridY: 3, BlockX: 5, BlockY: 2}
	seen := make(map[[4]uint32]bool)
	for tid := 0; tid < l.Threads(); tid++ {
		key := [4]uint32{
			l.Geometry(OpTIDX, tid), l.Geometry(OpTIDY, tid),
			l.Geometry(OpCTAX, tid), l.Geometry(OpCTAY, tid),
		}
		if seen[key] {
			t.Fatalf("duplicate coordinates %v for tid %d", key, tid)
		}
		seen[key] = true
		if key[0] >= uint32(l.BlockX) || key[1] >= uint32(l.BlockY) ||
			key[2] >= uint32(l.GridX) || key[3] >= uint32(l.GridY) {
			t.Fatalf("coordinates %v out of range for tid %d", key, tid)
		}
	}
}

func TestInterpSaxpy(t *testing.T) {
	k := saxpyKernel(t)
	const n = 100
	mem := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		mem[i] = F32(float32(i))       // x
		mem[n+i] = F32(float32(2 * i)) // y
	}
	launch := Launch1D(4, 32, n, F32(0.5), 0, n) // 128 threads; 28 masked off by the guard
	in := &Interp{Kernel: k, Launch: launch, Global: mem}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 0.5*float32(i) + float32(2*i)
		if got := AsF32(mem[n+i]); got != want {
			t.Fatalf("y[%d] = %g, want %g", i, got, want)
		}
	}
}

// loopKernel sums 0..tid into out[tid] using a data-dependent loop.
func loopKernel(t testing.TB) *Kernel {
	t.Helper()
	b := NewBuilder("loopsum")
	b.SetParams(1) // outBase
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	sum := b.Const(0)
	b.Jump(loop)

	// Loop-carried registers i and sum are redefined each iteration.
	b.SetBlock(loop)
	sum1 := b.Add(sum, i)
	i1 := b.AddI(i, 1)
	b.MovTo(sum, sum1)
	b.MovTo(i, i1)
	cont := b.SetLE(i1, tid)
	b.Branch(cont, loop, exit)

	b.SetBlock(exit)
	out := b.Param(0)
	addr := b.Add(out, tid)
	b.Store(addr, 0, sum)
	b.Ret()

	k, err := b.Build()
	if err != nil {
		t.Fatalf("build loopsum: %v", err)
	}
	return k
}

func TestInterpLoop(t *testing.T) {
	k := loopKernel(t)
	if !k.HasLoops() {
		t.Fatal("loopsum should report loops")
	}
	const n = 64
	mem := make([]uint32, n)
	in := &Interp{Kernel: k, Launch: Launch1D(2, 32, 0), Global: mem}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < n; tid++ {
		want := uint32(tid * (tid + 1) / 2)
		if mem[tid] != want {
			t.Fatalf("out[%d] = %d, want %d", tid, mem[tid], want)
		}
	}
}

func TestInterpSharedMemoryBarrier(t *testing.T) {
	// Each thread stores tid into shared[tidx], syncs, then reads its
	// neighbour's slot (reversal within the CTA) and writes it out.
	b := NewBuilder("reverse")
	b.SetParams(1) // outBase
	b.SetShared(32)
	entry := b.NewBlock("entry")
	after := b.NewBlock("after")
	b.SetBlock(entry)
	tidx := b.TidX()
	tid := b.Tid()
	b.StoreSh(tidx, 0, tid)
	b.Jump(after)
	b.MarkBarrier(after)

	b.SetBlock(after)
	last := b.Const(31)
	rev := b.Sub(last, b.TidX())
	v := b.LoadSh(rev, 0)
	out := b.Param(0)
	addr := b.Add(out, b.Tid())
	b.Store(addr, 0, v)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	mem := make([]uint32, 64)
	in := &Interp{Kernel: k, Launch: Launch1D(2, 32, 0), Global: mem}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 64; tid++ {
		cta, tidx := tid/32, tid%32
		want := uint32(cta*32 + (31 - tidx))
		if mem[tid] != want {
			t.Fatalf("out[%d] = %d, want %d", tid, mem[tid], want)
		}
	}
}

func TestInterpRunawayLoopDetected(t *testing.T) {
	b := NewBuilder("spin")
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	b.Jump(blk)
	k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in := &Interp{Kernel: k, Launch: Launch1D(1, 1), MaxSteps: 100}
	if err := in.Run(); err == nil {
		t.Error("want runaway-loop error")
	}
}

func TestInterpParamCountMismatch(t *testing.T) {
	k := saxpyKernel(t)
	in := &Interp{Kernel: k, Launch: Launch1D(1, 32), Global: make([]uint32, 16)}
	if err := in.Run(); err == nil {
		t.Error("want error for wrong parameter count")
	}
}

func TestInterpOutOfBoundsMemory(t *testing.T) {
	k := saxpyKernel(t)
	launch := Launch1D(1, 32, 32, F32(1), 0, 1<<20) // yBase far out of range
	in := &Interp{Kernel: k, Launch: launch, Global: make([]uint32, 64)}
	if err := in.Run(); err == nil {
		t.Error("want out-of-bounds error")
	}
}

func TestTerminatorSuccs(t *testing.T) {
	if got := (Terminator{Kind: TermRet}).Succs(); len(got) != 0 {
		t.Errorf("ret succs = %v", got)
	}
	if got := (Terminator{Kind: TermJump, Then: 3}).Succs(); len(got) != 1 || got[0] != 3 {
		t.Errorf("jump succs = %v", got)
	}
	if got := (Terminator{Kind: TermBranch, Then: 1, Else: 2}).Succs(); len(got) != 2 {
		t.Errorf("branch succs = %v", got)
	}
	if got := (Terminator{Kind: TermBranch, Then: 1, Else: 1}).Succs(); len(got) != 1 {
		t.Errorf("degenerate branch succs = %v", got)
	}
}
