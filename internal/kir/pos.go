package kir

import "fmt"

// Pos is a position in the kasm source text a kernel was parsed from.
// Builder-constructed kernels leave it zero; the kasm parser fills it in so
// verifier diagnostics and compile errors can point at the offending assembly
// line. Positions are metadata only: they never influence kernel semantics,
// printing, or compiler decisions, and passes that synthesize instructions
// (remat, if-conversion, splitting) leave the position zero on new code while
// struct copies preserve it on moved code.
type Pos struct {
	Line int32 // 1-based line in the kasm source; 0 = unknown
	Col  int32 // 1-based column of the first token; 0 = unknown
}

// IsZero reports whether the position is unset.
func (p Pos) IsZero() bool { return p.Line == 0 }

func (p Pos) String() string {
	if p.IsZero() {
		return ""
	}
	if p.Col == 0 {
		return fmt.Sprintf("line %d", p.Line)
	}
	return fmt.Sprintf("line %d:%d", p.Line, p.Col)
}
