package kir

import (
	"fmt"
	"math"
)

// Eval computes the result of a pure (non-memory, non-geometry) opcode on
// 32-bit operands. It is the single functional-semantics definition shared by
// all three simulators, so that VGIW, the SIMT baseline, and SGMF cannot
// disagree on arithmetic.
func Eval(op Op, a, b, c uint32, imm int32) uint32 {
	switch op {
	case OpConst:
		return uint32(imm)
	case OpMov:
		return a
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return uint32(sdiv(int32(a), int32(b)))
	case OpRem:
		return uint32(srem(int32(a), int32(b)))
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNot:
		return ^a
	case OpShl:
		return a << (b & 31)
	case OpShrL:
		return a >> (b & 31)
	case OpShrA:
		return uint32(int32(a) >> (b & 31))
	case OpMin:
		if int32(a) < int32(b) {
			return a
		}
		return b
	case OpMax:
		if int32(a) > int32(b) {
			return a
		}
		return b
	case OpSetEQ:
		return boolWord(a == b)
	case OpSetNE:
		return boolWord(a != b)
	case OpSetLT:
		return boolWord(int32(a) < int32(b))
	case OpSetLE:
		return boolWord(int32(a) <= int32(b))
	case OpSetLTU:
		return boolWord(a < b)
	case OpSetLEU:
		return boolWord(a <= b)
	case OpFAdd:
		return f(fv(a) + fv(b))
	case OpFSub:
		return f(fv(a) - fv(b))
	case OpFMul:
		return f(fv(a) * fv(b))
	case OpFDiv:
		return f(fv(a) / fv(b))
	case OpFSqrt:
		return f(float32(math.Sqrt(float64(fv(a)))))
	case OpFExp:
		return f(float32(math.Exp(float64(fv(a)))))
	case OpFLog:
		return f(float32(math.Log(float64(fv(a)))))
	case OpFNeg:
		return f(-fv(a))
	case OpFAbs:
		return f(float32(math.Abs(float64(fv(a)))))
	case OpFMin:
		return f(float32(math.Min(float64(fv(a)), float64(fv(b)))))
	case OpFMax:
		return f(float32(math.Max(float64(fv(a)), float64(fv(b)))))
	case OpFFloor:
		return f(float32(math.Floor(float64(fv(a)))))
	case OpFSetEQ:
		return boolWord(fv(a) == fv(b))
	case OpFSetNE:
		return boolWord(fv(a) != fv(b))
	case OpFSetLT:
		return boolWord(fv(a) < fv(b))
	case OpFSetLE:
		return boolWord(fv(a) <= fv(b))
	case OpI2F:
		return f(float32(int32(a)))
	case OpF2I:
		return uint32(int32(fv(a)))
	case OpSelect:
		if a != 0 {
			return b
		}
		return c
	}
	panic(fmt.Sprintf("kir: Eval called with non-pure opcode %v", op))
}

// sdiv is signed division with GPU-like saturation semantics: division by
// zero yields -1 (all bits set) and MinInt32/-1 yields MinInt32, so the
// simulators never fault on degenerate inputs.
func sdiv(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt32 && b == -1:
		return math.MinInt32
	}
	return a / b
}

func srem(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt32 && b == -1:
		return 0
	}
	return a % b
}

func boolWord(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

func fv(bits uint32) float32 { return math.Float32frombits(bits) }
func f(v float32) uint32     { return math.Float32bits(v) }

// F32 converts a float32 to its register encoding.
func F32(v float32) uint32 { return math.Float32bits(v) }

// AsF32 converts a register value to float32.
func AsF32(bits uint32) float32 { return math.Float32frombits(bits) }
