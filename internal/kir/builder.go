package kir

import "fmt"

// Builder constructs kernels programmatically. It is the Go-side equivalent
// of the paper's CUDA/LLVM frontend: benchmark kernels and examples assemble
// their IR through it.
//
// Errors are sticky: the first mistake is recorded and returned by Build, so
// construction code can stay free of error plumbing.
type Builder struct {
	k       *Kernel
	cur     *Block
	indexOf map[*Block]int
	done    map[*Block]bool
	err     error
}

// NewBuilder starts a kernel with the given name. The first block created
// becomes the entry block (ID 0).
func NewBuilder(name string) *Builder {
	return &Builder{
		k:       &Kernel{Name: name},
		indexOf: make(map[*Block]int),
		done:    make(map[*Block]bool),
	}
}

// SetParams declares the number of scalar launch parameters.
func (b *Builder) SetParams(n int) { b.k.NumParams = n }

// SetShared declares the per-CTA scratchpad size in 32-bit words.
func (b *Builder) SetShared(words int) { b.k.SharedWds = words }

// NewBlock appends a new basic block and returns it. It does not change the
// current emission block; call SetBlock to emit into it.
func (b *Builder) NewBlock(label string) *Block {
	blk := &Block{Label: label}
	b.indexOf[blk] = len(b.k.Blocks)
	b.k.Blocks = append(b.k.Blocks, blk)
	if b.cur == nil {
		b.cur = blk
	}
	return blk
}

// SetBlock selects the block that subsequent instructions are emitted into.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Current returns the block instructions are currently emitted into.
func (b *Builder) Current() *Block { return b.cur }

// MarkBarrier flags blk as a __syncthreads boundary (see Block.Barrier).
func (b *Builder) MarkBarrier(blk *Block) { blk.Barrier = true }

func (b *Builder) fail(format string, args ...any) Reg {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return NoReg
}

func (b *Builder) newReg() Reg {
	r := Reg(b.k.NumRegs)
	b.k.NumRegs++
	return r
}

func (b *Builder) emit(op Op, imm int32, src ...Reg) Reg {
	if b.err != nil {
		return NoReg
	}
	if b.cur == nil {
		return b.fail("kir: emit %v with no current block", op)
	}
	if b.done[b.cur] {
		return b.fail("kir: emit %v into terminated block %q", op, b.cur.Label)
	}
	if len(src) != op.NumSrc() {
		return b.fail("kir: %v takes %d sources, got %d", op, op.NumSrc(), len(src))
	}
	in := Instr{Op: op, Dst: NoReg, Src: [3]Reg{NoReg, NoReg, NoReg}, Imm: imm}
	copy(in.Src[:], src)
	if op.HasDst() {
		in.Dst = b.newReg()
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in.Dst
}

func (b *Builder) terminate(t Terminator) {
	if b.err != nil {
		return
	}
	if b.cur == nil {
		b.fail("kir: terminator with no current block")
		return
	}
	if b.done[b.cur] {
		b.fail("kir: block %q terminated twice", b.cur.Label)
		return
	}
	b.cur.Term = t
	b.done[b.cur] = true
}

// Constants and inputs.

// Const emits an integer constant.
func (b *Builder) Const(v int32) Reg { return b.emit(OpConst, v) }

// ConstF emits a float32 constant.
func (b *Builder) ConstF(v float32) Reg { return b.emit(OpConst, int32(F32(v))) }

// Param reads scalar launch parameter i.
func (b *Builder) Param(i int) Reg { return b.emit(OpParam, int32(i)) }

// Mov copies a register.
func (b *Builder) Mov(src Reg) Reg { return b.emit(OpMov, 0, src) }

// MovTo copies src into the existing register dst. The IR is not SSA:
// redefining a register is how loop-carried values are expressed, and the
// compiler's liveness pass turns cross-iteration uses into live-value traffic.
func (b *Builder) MovTo(dst, src Reg) {
	if b.err != nil {
		return
	}
	if dst < 0 || int(dst) >= b.k.NumRegs {
		b.fail("kir: MovTo target r%d was never defined", dst)
		return
	}
	if b.cur == nil || b.done[b.cur] {
		b.fail("kir: MovTo outside an open block")
		return
	}
	b.cur.Instrs = append(b.cur.Instrs, Instr{
		Op: OpMov, Dst: dst, Src: [3]Reg{src, NoReg, NoReg},
	})
}

// Thread geometry.

func (b *Builder) Tid() Reg   { return b.emit(OpTID, 0) }
func (b *Builder) TidX() Reg  { return b.emit(OpTIDX, 0) }
func (b *Builder) TidY() Reg  { return b.emit(OpTIDY, 0) }
func (b *Builder) CtaX() Reg  { return b.emit(OpCTAX, 0) }
func (b *Builder) CtaY() Reg  { return b.emit(OpCTAY, 0) }
func (b *Builder) NTidX() Reg { return b.emit(OpNTIDX, 0) }
func (b *Builder) NTidY() Reg { return b.emit(OpNTIDY, 0) }
func (b *Builder) NCtaX() Reg { return b.emit(OpNCTAX, 0) }
func (b *Builder) NCtaY() Reg { return b.emit(OpNCTAY, 0) }

// Integer arithmetic.

func (b *Builder) Add(x, y Reg) Reg    { return b.emit(OpAdd, 0, x, y) }
func (b *Builder) Sub(x, y Reg) Reg    { return b.emit(OpSub, 0, x, y) }
func (b *Builder) Mul(x, y Reg) Reg    { return b.emit(OpMul, 0, x, y) }
func (b *Builder) Div(x, y Reg) Reg    { return b.emit(OpDiv, 0, x, y) }
func (b *Builder) Rem(x, y Reg) Reg    { return b.emit(OpRem, 0, x, y) }
func (b *Builder) And(x, y Reg) Reg    { return b.emit(OpAnd, 0, x, y) }
func (b *Builder) Or(x, y Reg) Reg     { return b.emit(OpOr, 0, x, y) }
func (b *Builder) Xor(x, y Reg) Reg    { return b.emit(OpXor, 0, x, y) }
func (b *Builder) Not(x Reg) Reg       { return b.emit(OpNot, 0, x) }
func (b *Builder) Shl(x, y Reg) Reg    { return b.emit(OpShl, 0, x, y) }
func (b *Builder) ShrL(x, y Reg) Reg   { return b.emit(OpShrL, 0, x, y) }
func (b *Builder) ShrA(x, y Reg) Reg   { return b.emit(OpShrA, 0, x, y) }
func (b *Builder) Min(x, y Reg) Reg    { return b.emit(OpMin, 0, x, y) }
func (b *Builder) Max(x, y Reg) Reg    { return b.emit(OpMax, 0, x, y) }
func (b *Builder) SetEQ(x, y Reg) Reg  { return b.emit(OpSetEQ, 0, x, y) }
func (b *Builder) SetNE(x, y Reg) Reg  { return b.emit(OpSetNE, 0, x, y) }
func (b *Builder) SetLT(x, y Reg) Reg  { return b.emit(OpSetLT, 0, x, y) }
func (b *Builder) SetLE(x, y Reg) Reg  { return b.emit(OpSetLE, 0, x, y) }
func (b *Builder) SetLTU(x, y Reg) Reg { return b.emit(OpSetLTU, 0, x, y) }
func (b *Builder) SetLEU(x, y Reg) Reg { return b.emit(OpSetLEU, 0, x, y) }

// AddI adds an immediate by materializing a constant.
func (b *Builder) AddI(x Reg, v int32) Reg { return b.Add(x, b.Const(v)) }

// MulI multiplies by an immediate by materializing a constant.
func (b *Builder) MulI(x Reg, v int32) Reg { return b.Mul(x, b.Const(v)) }

// Floating point.

func (b *Builder) FAdd(x, y Reg) Reg   { return b.emit(OpFAdd, 0, x, y) }
func (b *Builder) FSub(x, y Reg) Reg   { return b.emit(OpFSub, 0, x, y) }
func (b *Builder) FMul(x, y Reg) Reg   { return b.emit(OpFMul, 0, x, y) }
func (b *Builder) FDiv(x, y Reg) Reg   { return b.emit(OpFDiv, 0, x, y) }
func (b *Builder) FSqrt(x Reg) Reg     { return b.emit(OpFSqrt, 0, x) }
func (b *Builder) FExp(x Reg) Reg      { return b.emit(OpFExp, 0, x) }
func (b *Builder) FLog(x Reg) Reg      { return b.emit(OpFLog, 0, x) }
func (b *Builder) FNeg(x Reg) Reg      { return b.emit(OpFNeg, 0, x) }
func (b *Builder) FAbs(x Reg) Reg      { return b.emit(OpFAbs, 0, x) }
func (b *Builder) FMin(x, y Reg) Reg   { return b.emit(OpFMin, 0, x, y) }
func (b *Builder) FMax(x, y Reg) Reg   { return b.emit(OpFMax, 0, x, y) }
func (b *Builder) FFloor(x Reg) Reg    { return b.emit(OpFFloor, 0, x) }
func (b *Builder) FSetEQ(x, y Reg) Reg { return b.emit(OpFSetEQ, 0, x, y) }
func (b *Builder) FSetNE(x, y Reg) Reg { return b.emit(OpFSetNE, 0, x, y) }
func (b *Builder) FSetLT(x, y Reg) Reg { return b.emit(OpFSetLT, 0, x, y) }
func (b *Builder) FSetLE(x, y Reg) Reg { return b.emit(OpFSetLE, 0, x, y) }
func (b *Builder) I2F(x Reg) Reg       { return b.emit(OpI2F, 0, x) }
func (b *Builder) F2I(x Reg) Reg       { return b.emit(OpF2I, 0, x) }

// Select returns src1 when cond != 0, else src2.
func (b *Builder) Select(cond, ifTrue, ifFalse Reg) Reg {
	return b.emit(OpSelect, 0, cond, ifTrue, ifFalse)
}

// Memory. Addresses are word-granular; off is a constant word offset.

func (b *Builder) Load(addr Reg, off int32) Reg       { return b.emit(OpLoad, off, addr) }
func (b *Builder) Store(addr Reg, off int32, v Reg)   { b.emit(OpStore, off, addr, v) }
func (b *Builder) LoadSh(addr Reg, off int32) Reg     { return b.emit(OpLoadSh, off, addr) }
func (b *Builder) StoreSh(addr Reg, off int32, v Reg) { b.emit(OpStoreSh, off, addr, v) }

// Terminators.

// Jump ends the current block with an unconditional jump.
func (b *Builder) Jump(dst *Block) {
	b.terminate(Terminator{Kind: TermJump, Then: b.blockIndex(dst)})
}

// Branch ends the current block with a conditional branch.
func (b *Builder) Branch(cond Reg, then, els *Block) {
	b.terminate(Terminator{Kind: TermBranch, Cond: cond, Then: b.blockIndex(then), Else: b.blockIndex(els)})
}

// Ret ends the current block by terminating the thread.
func (b *Builder) Ret() { b.terminate(Terminator{Kind: TermRet}) }

func (b *Builder) blockIndex(blk *Block) int {
	idx, ok := b.indexOf[blk]
	if !ok {
		b.fail("kir: jump to block not created by this builder")
		return 0
	}
	return idx
}

// Build finalizes the kernel: every block must be terminated, and the kernel
// must pass Validate.
func (b *Builder) Build() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i, blk := range b.k.Blocks {
		if !b.done[blk] {
			return nil, fmt.Errorf("kir: block %d (%s) not terminated", i, blk.Label)
		}
	}
	if err := b.k.Validate(); err != nil {
		return nil, err
	}
	return b.k, nil
}

// MustBuild is Build for tests and examples with known-good construction.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
