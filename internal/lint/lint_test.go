package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// findingKey compresses a finding to "check:function-ish substring" for
// matching: the fixture encodes intent in function names, so expectations
// reference those instead of line numbers.
func contains(fs []Finding, check, msgSub string) bool {
	for _, f := range fs {
		if f.Check == check && strings.Contains(f.Msg, msgSub) {
			return true
		}
	}
	return false
}

func TestFixtureFindings(t *testing.T) {
	fs, err := Dir(filepath.Join("testdata", "src", "fixture"), "fixture")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ check, msg string }{
		{"hotpath", "append"},
		{"hotpath", "map literal"},
		{"hotpath", "make(map)"},
		{"hotpath", "function literal"},
		{"hotpath", "fmt.Errorf"},
		{"ctxpoll", "pollEvery"},
		{"ctxpoll", "pollInCond"},
	}
	for _, w := range want {
		if !contains(fs, w.check, w.msg) {
			t.Errorf("missing %s finding matching %q in:\n%s", w.check, w.msg, dump(fs))
		}
	}
	if len(fs) != len(want) {
		t.Errorf("got %d findings, want %d:\n%s", len(fs), len(want), dump(fs))
	}
	// The clean functions must not appear at all.
	for _, clean := range []string{"hotClean", "coldAlloc", "pollStrided", "pollCountdown", "pollCoarse", "pollOutsideLoop"} {
		for _, f := range fs {
			if strings.Contains(f.Msg, clean) {
				t.Errorf("clean function %s flagged: %v", clean, f)
			}
		}
	}
}

func TestNilGuardFindings(t *testing.T) {
	fs, err := Dir(filepath.Join("testdata", "src", "trace"), "fixturetrace")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Len", "LateGuard"} {
		if !contains(fs, "nilguard", "(*Sink)."+w) {
			t.Errorf("missing nilguard finding for %s in:\n%s", w, dump(fs))
		}
	}
	if len(fs) != 2 {
		t.Errorf("got %d findings, want 2:\n%s", len(fs), dump(fs))
	}
}

// TestRepoIsClean is the enforcement test: the real tree must lint clean.
// A failure here IS the lint report — fix the code or annotate it.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	fs, err := Walk(filepath.Join("..", ".."), "vgiw")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) > 0 {
		t.Errorf("vgiwlint findings in the tree:\n%s", dump(fs))
	}
}

func dump(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}
