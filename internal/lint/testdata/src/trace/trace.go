// Package trace is a fixture standing in for the real internal/trace: the
// nilguard check keys on the package name and the Sink type name.
package trace

// Sink mimics the real sink: a nil *Sink means tracing is off.
type Sink struct {
	mask uint64
	n    int
}

// Enabled guards in-expression: clean.
func (s *Sink) Enabled(c uint64) bool { return s != nil && s.mask&c != 0 }

// Emit guards with a leading if: clean.
func (s *Sink) Emit(v uint64) {
	if s == nil || s.mask&v == 0 {
		return
	}
	s.n++
}

// Len forgets the guard: flagged.
func (s *Sink) Len() int { // want nilguard
	return s.n
}

// LateGuard checks nil only after touching the receiver: flagged.
func (s *Sink) LateGuard() int { // want nilguard
	n := s.n
	if s == nil {
		return 0
	}
	return n
}

// reset is unexported: internal callers hold the non-nil invariant.
func (s *Sink) reset() { s.n = 0 }

// Other is not a Sink; its methods are out of scope.
type Other struct{ n int }

// Count needs no guard.
func (o *Other) Count() int { return o.n }
