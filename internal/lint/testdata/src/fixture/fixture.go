// Package fixture seeds one violation per vgiwlint check, plus clean
// variants, for the lint package's tests. Line positions matter to the
// test expectations only loosely (findings are matched by check name and
// function), so edits here just need the matching test update.
package fixture

import (
	"context"
	"fmt"
)

var sink uint64

// hotAppend grows a slice on the hot path.
//
//vgiw:hotpath
func hotAppend(xs []int, v int) []int {
	return append(xs, v) // want hotpath append
}

// hotMapLit builds a map literal on the hot path.
//
//vgiw:hotpath
func hotMapLit(k string) map[string]int {
	return map[string]int{k: 1} // want hotpath map literal
}

// hotMakeMap allocates a map on the hot path.
//
//vgiw:hotpath
func hotMakeMap() map[int]int {
	return make(map[int]int) // want hotpath make(map)
}

// hotClosure allocates a closure on the hot path.
//
//vgiw:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want hotpath closure
}

// hotFmt formats on the hot path.
//
//vgiw:hotpath
func hotFmt(n int) error {
	return fmt.Errorf("bad value %d", n) // want hotpath fmt
}

// hotClean is a hot-path function with only allowed constructs: arithmetic,
// slice indexing, and slice make (pre-sizing a reusable buffer).
//
//vgiw:hotpath
func hotClean(xs []int64, n int) []int64 {
	if cap(xs) < n {
		xs = make([]int64, n)
	}
	xs = xs[:n]
	for i := range xs {
		xs[i] = int64(i * i)
	}
	return xs
}

// coldAlloc is unmarked: the same constructs are fine off the hot path.
func coldAlloc(k string) (map[string]int, error) {
	m := map[string]int{k: 1}
	return m, fmt.Errorf("%d entries", len(m))
}

// pollEvery polls the context on every iteration: flagged.
func pollEvery(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil { // want ctxpoll
			return err
		}
		sink++
	}
	return nil
}

// pollInCond polls inside the loop condition: flagged.
func pollInCond(ctx context.Context) {
	for ctx.Err() == nil { // want ctxpoll
		sink++
	}
}

// pollStrided uses the modulus idiom: clean.
func pollStrided(ctx context.Context, n int) error {
	const stride = 64
	for i := 0; i < n; i++ {
		if i%stride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sink++
	}
	return nil
}

// pollCountdown uses the countdown idiom: clean.
func pollCountdown(ctx context.Context, n int) error {
	checkIn := 4096
	for i := 0; i < n; i++ {
		if checkIn--; checkIn <= 0 {
			checkIn = 4096
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sink++
	}
	return nil
}

// pollCoarse is annotated: each iteration is a whole coarse work item.
//
//vgiw:coarsepoll
func pollCoarse(ctx context.Context, items []func()) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		it()
	}
	return nil
}

// pollOutsideLoop is a plain poll with no loop: clean.
func pollOutsideLoop(ctx context.Context) error {
	return ctx.Err()
}
