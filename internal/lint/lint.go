// Package lint is the legacy entry point for the three original vgiwlint
// checks (hotpath allocation bans, trace.Sink nil-receiver guards, strided
// context polling). The checks themselves migrated to internal/analysis,
// which runs them alongside the det/lock/golife passes under cmd/vgiwcheck
// and `make analyze`; this package remains only as a thin shim so
// cmd/vgiwlint keeps working during the deprecation window.
//
// Deprecated: use vgiw/internal/analysis (cmd/vgiwcheck). This shim will
// be removed once nothing invokes vgiwlint directly.
package lint

import (
	"go/token"

	"vgiw/internal/analysis"
)

// MarkerHotpath and MarkerCoarsepoll are the magic comments the checks key
// on. They live in a function's doc comment.
const (
	MarkerHotpath    = analysis.MarkerHotpath
	MarkerCoarsepoll = analysis.MarkerCoarsepoll
)

// Finding is one lint violation.
type Finding struct {
	Pos   token.Position
	Check string // "hotpath", "nilguard", or "ctxpoll"
	Msg   string
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Check + ": " + f.Msg
}

// legacyPasses returns the three migrated checks, the exact surface this
// shim exposes.
func legacyPasses() []*analysis.Pass {
	return []*analysis.Pass{
		analysis.HotpathPass(),
		analysis.NilguardPass(),
		analysis.CtxpollPass(),
	}
}

func run(prog *analysis.Program) []Finding {
	a := &analysis.Analyzer{Passes: legacyPasses()}
	diags := a.Run(prog)
	fs := make([]Finding, 0, len(diags))
	for _, d := range diags {
		fs = append(fs, Finding{Pos: d.Pos, Check: d.Check, Msg: d.Msg})
	}
	return fs
}

// Dir lints the single package in dir, type-checked as pkgPath.
func Dir(dir, pkgPath string) ([]Finding, error) {
	prog, err := analysis.LoadDir(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	return run(prog), nil
}

// Walk lints every package directory under root (skipping testdata and
// hidden directories), deriving each import path as modPath/rel.
func Walk(root, modPath string) ([]Finding, error) {
	prog, err := analysis.Load(root, modPath)
	if err != nil {
		return nil, err
	}
	return run(prog), nil
}
