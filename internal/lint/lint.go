// Package lint implements vgiwlint, the repo-specific static checks that
// guard contracts the compiler and simulators rely on but go vet cannot see:
//
//   - hotpath: a function whose doc comment carries the //vgiw:hotpath
//     marker must not contain allocating constructs — append, map literals,
//     make(map), closures, or fmt calls. The simulator hot loops are
//     engineered to 0 allocs/op (BenchmarkEngineHotPath pins this); the
//     marker turns that benchmark's property into a compile-time-checkable
//     contract on each function.
//
//   - nilguard: exported pointer-receiver methods of trace.Sink must start
//     by handling a nil receiver. A nil *Sink is the documented "tracing
//     off" state, passed through every simulator; one unguarded method is a
//     latent crash on every untraced run.
//
//   - ctxpoll: a ctx.Err() poll inside a loop must be strided (guarded by a
//     modulus or countdown) or the function must carry //vgiw:coarsepoll,
//     declaring its iterations coarse enough to poll every time. Per-token
//     polls in the simulator loops are a measured multi-percent tax.
//
// The package uses only go/parser and go/types (source importer) — no
// dependencies beyond the standard library.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MarkerHotpath and MarkerCoarsepoll are the magic comments the checks key
// on. They live in a function's doc comment.
const (
	MarkerHotpath    = "//vgiw:hotpath"
	MarkerCoarsepoll = "//vgiw:coarsepoll"
)

// Finding is one lint violation.
type Finding struct {
	Pos   token.Position
	Check string // "hotpath", "nilguard", or "ctxpoll"
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Check, f.Msg)
}

// Dir parses and type-checks the single package in dir (test files
// excluded) and returns its findings. pkgPath is the import path to
// type-check under; the source importer resolves any module-internal
// imports from the surrounding module.
func Dir(dir, pkgPath string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var names []string
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var all []Finding
	for _, name := range names {
		pkg := pkgs[name]
		var files []*ast.File
		var fnames []string
		for fname := range pkg.Files {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			files = append(files, pkg.Files[fname])
		}
		info := &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		if _, err := conf.Check(pkgPath, fset, files, info); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		all = append(all, Package(fset, name, files, info)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return all, nil
}

// Package runs all checks over one type-checked package.
func Package(fset *token.FileSet, pkgName string, files []*ast.File, info *types.Info) []Finding {
	var fs []Finding
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasMarker(fd.Doc, MarkerHotpath) {
				fs = append(fs, checkHotpath(fset, fd, info)...)
			}
			if pkgName == "trace" {
				fs = append(fs, checkNilGuard(fset, fd)...)
			}
			if !hasMarker(fd.Doc, MarkerCoarsepoll) {
				fs = append(fs, checkCtxPoll(fset, fd, info)...)
			}
		}
	}
	return fs
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// checkHotpath flags allocating constructs in a //vgiw:hotpath function:
// append, map literals, make(map), func literals, and fmt calls. Slice
// make() is allowed — the hot loops pre-size reusable buffers, which is
// exactly the pattern that keeps the steady state allocation-free.
func checkHotpath(fset *token.FileSet, fd *ast.FuncDecl, info *types.Info) []Finding {
	var fs []Finding
	add := func(pos token.Pos, format string, args ...any) {
		fs = append(fs, Finding{Pos: fset.Position(pos), Check: "hotpath",
			Msg: fmt.Sprintf(format, args...) + " in //vgiw:hotpath function " + fd.Name.Name})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "function literal (closure allocation)")
			return false // the closure's own body is off the hot path
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					add(n.Pos(), "map literal")
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if obj, ok := info.Uses[fun].(*types.Builtin); ok {
					switch obj.Name() {
					case "append":
						add(n.Pos(), "append (may grow and allocate)")
					case "make":
						if len(n.Args) > 0 {
							if t := info.TypeOf(n.Args[0]); t != nil {
								if _, isMap := t.Underlying().(*types.Map); isMap {
									add(n.Pos(), "make(map)")
								}
							}
						}
					}
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
						add(n.Pos(), "fmt.%s call (allocates on every call)", fun.Sel.Name)
					}
				}
			}
		}
		return true
	})
	return fs
}

// checkNilGuard enforces the trace.Sink receiver contract: every exported
// pointer-receiver method of Sink must handle a nil receiver before touching
// it, either with a leading `if s == nil` statement or, for one-line
// methods, a `s != nil`/`s == nil` test inside the single return expression.
func checkNilGuard(fset *token.FileSet, fd *ast.FuncDecl) []Finding {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return nil
	}
	star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return nil
	}
	id, ok := star.X.(*ast.Ident)
	if !ok || id.Name != "Sink" {
		return nil
	}
	if len(fd.Recv.List[0].Names) != 1 {
		return nil // unnamed receiver cannot be dereferenced at all
	}
	recv := fd.Recv.List[0].Names[0].Name
	if len(fd.Body.List) > 0 {
		switch first := fd.Body.List[0].(type) {
		case *ast.IfStmt:
			if mentionsNilTest(first.Cond, recv) {
				return nil
			}
		case *ast.ReturnStmt:
			for _, e := range first.Results {
				if mentionsNilTest(e, recv) {
					return nil
				}
			}
		}
	}
	return []Finding{{Pos: fset.Position(fd.Pos()), Check: "nilguard",
		Msg: fmt.Sprintf("exported method (*Sink).%s must start by handling a nil receiver (a nil sink means tracing is off)", fd.Name.Name)}}
}

// mentionsNilTest reports whether expr contains `recv == nil` or
// `recv != nil` (possibly inside a larger boolean expression).
func mentionsNilTest(expr ast.Expr, recv string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, xo := be.X.(*ast.Ident)
		y, yo := be.Y.(*ast.Ident)
		if xo && yo && ((x.Name == recv && y.Name == "nil") || (y.Name == recv && x.Name == "nil")) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkCtxPoll flags context.Context Err() polls that run on every
// iteration of a loop. A poll is accepted when it sits under an if with a
// modulus in its condition (`if j%stride == 0`) or an init/countdown
// statement (`if n--; n <= 0`), the two strided idioms the simulators use.
func checkCtxPoll(fset *token.FileSet, fd *ast.FuncDecl, info *types.Info) []Finding {
	var fs []Finding
	type frame struct {
		loop    bool // ForStmt or RangeStmt
		strided bool // IfStmt with a modulus condition or an init statement
	}
	var stack []frame

	// ast.Inspect cannot report which node a post-order visit is leaving,
	// and the check needs matched push/pop around loops and ifs, so walk
	// with explicit recursion instead.
	var rec func(n ast.Node)
	rec = func(n ast.Node) {
		if n == nil {
			return
		}
		pushed := false
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			stack = append(stack, frame{loop: true})
			pushed = true
		case *ast.IfStmt:
			// An if with a modulus condition or a countdown init is a stride
			// guard — but `if err := ctx.Err(); ...` is the poll itself, not
			// a guard, so an init that contains the poll does not count.
			strided := hasModulus(n.Cond) ||
				(n.Init != nil && !containsCtxErr(n.Init, info))
			stack = append(stack, frame{strided: strided})
			pushed = true
		case *ast.FuncLit:
			// A nested closure polls on its own schedule; its loops are
			// judged on their own, not against the enclosing function's.
			saved := stack
			stack = nil
			rec(n.Body)
			stack = saved
			return
		case *ast.CallExpr:
			if isCtxErrCall(n, info) {
				inLoop, strided := false, false
				for _, f := range stack {
					if f.loop {
						inLoop, strided = true, false // reset at each loop level
					}
					if f.strided {
						strided = true
					}
				}
				if inLoop && !strided {
					fs = append(fs, Finding{Pos: fset.Position(n.Pos()), Check: "ctxpoll",
						Msg: fmt.Sprintf("ctx.Err() polled every loop iteration in %s; stride the poll or mark the function %s", fd.Name.Name, MarkerCoarsepoll)})
				}
			}
		}
		for _, c := range children(n) {
			rec(c)
		}
		if pushed {
			stack = stack[:len(stack)-1]
		}
	}
	rec(fd.Body)
	return fs
}

// children returns the direct child nodes of n, in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // skip n itself, descend
		}
		if c != nil {
			out = append(out, c)
		}
		return false // do not descend further; rec handles recursion
	})
	return out
}

func containsCtxErr(n ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok && isCtxErrCall(call, info) {
			found = true
			return false
		}
		return true
	})
	return found
}

func hasModulus(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.REM {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCtxErrCall reports whether n is x.Err() with x a context.Context.
func isCtxErrCall(n *ast.CallExpr, info *types.Info) bool {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Err" || len(n.Args) != 0 {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// Walk lints every package directory under root (skipping testdata and
// hidden directories), deriving each import path as modPath/rel.
func Walk(root, modPath string) ([]Finding, error) {
	var all []Finding
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if base == "testdata" || strings.HasPrefix(base, ".") && path != root {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGo(path)
		if err != nil || !hasGo {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		fs, err := Dir(path, pkgPath)
		if err != nil {
			return err
		}
		all = append(all, fs...)
		return nil
	})
	return all, err
}

func dirHasGo(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
