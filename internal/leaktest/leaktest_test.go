package leaktest

import (
	"strings"
	"testing"
	"time"
)

// recorder captures failures instead of failing the real test.
type recorder struct {
	testing.TB
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Error(args ...any) {
	r.failed = true
	for _, a := range args {
		if s, ok := a.(string); ok {
			r.msg += s
		}
	}
}

func TestCleanBodyPasses(t *testing.T) {
	r := &recorder{TB: t}
	done := Check(r)
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
	done()
	if r.failed {
		t.Fatalf("clean body reported a leak:\n%s", r.msg)
	}
}

func TestWindDownWithinGracePasses(t *testing.T) {
	r := &recorder{TB: t}
	done := Check(r)
	stop := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		<-stop
	}()
	// The goroutine is still parked when teardown begins; it exits only
	// after a delay, inside the grace window.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	done()
	<-exited
	if r.failed {
		t.Fatalf("goroutine exiting within grace reported as leak:\n%s", r.msg)
	}
}

func TestLeakIsCaught(t *testing.T) {
	r := &recorder{TB: t}
	done := Check(r)
	stop := make(chan struct{})
	go func() {
		<-stop // parked for the whole grace period: a leak
	}()
	start := time.Now()
	done()
	close(stop)
	if !r.failed {
		t.Fatal("leaked goroutine not reported")
	}
	if !strings.Contains(r.msg, "leaked goroutine") || !strings.Contains(r.msg, "leaktest.TestLeakIsCaught") {
		t.Fatalf("leak report missing the offending stack:\n%s", r.msg)
	}
	if elapsed := time.Since(start); elapsed < grace {
		t.Fatalf("teardown gave up after %v, before the %v grace elapsed", elapsed, grace)
	}
}

func TestBenignFilters(t *testing.T) {
	for _, stack := range []string{
		"goroutine 7 [syscall]:\nos/signal.signal_recv()\n",
		"goroutine 8 [IO wait]:\nnet/http.(*persistConn).readLoop(0xc000100000)\n",
		"goroutine 9 [select]:\nnet/http.(*persistConn).writeLoop(0xc000100000)\n",
		"goroutine 2 [force gc (idle)]:\nruntime.goparkunlock(...)\n\tcreated by runtime.init\n",
	} {
		if !benign(stack) {
			t.Errorf("stack not filtered as benign:\n%s", stack)
		}
	}
	if benign("goroutine 12 [chan receive]:\nvgiw/internal/fleet.(*Coordinator).probe(0xc0001a2000)\n") {
		t.Error("application goroutine wrongly filtered as benign")
	}
}

func TestSnapshotSeesSelf(t *testing.T) {
	gs := snapshot()
	if len(gs) == 0 {
		t.Fatal("snapshot returned no goroutines")
	}
	found := false
	for _, g := range gs {
		if strings.Contains(g.stack, "leaktest.TestSnapshotSeesSelf") {
			found = true
			if !strings.HasPrefix(g.id, "goroutine ") {
				t.Errorf("malformed goroutine id %q", g.id)
			}
		}
	}
	if !found {
		t.Fatal("snapshot missing the current test goroutine")
	}
}
