// Package leaktest detects goroutines that outlive the code under test.
// It is a stdlib-only snapshot-and-diff over runtime.Stack: record the
// live goroutines before the test body, then at teardown re-snapshot
// (with a grace period, since legitimate goroutines need a moment to wind
// down after cancel/close) and fail if any new, non-benign goroutine is
// still running. The golife static pass (internal/analysis) proves every
// `go` statement is tied to a cancel mechanism; this helper proves the
// mechanism actually fires.
//
// Per-test use — register the check BEFORE anything that tears down via
// t.Cleanup, so the LIFO cleanup order runs it after those teardowns
// (a plain defer fires before cleanups and would flag still-draining
// servers):
//
//	func TestServer(t *testing.T) {
//		t.Cleanup(leaktest.Check(t))
//		...
//	}
//
// Whole-suite use (wired into internal/server and internal/fleet):
//
//	func TestMain(m *testing.M) { leaktest.Main(m) }
package leaktest

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long teardown keeps re-snapshotting before declaring a
// goroutine leaked. Wound-down goroutines (HTTP conns draining, workers
// observing a closed channel) usually exit within a few milliseconds; the
// retry loop polls with backoff so clean tests pay almost nothing.
const grace = 2 * time.Second

// goroutine is one parsed stack from runtime.Stack output.
type goroutine struct {
	id    string // the "goroutine N" header token; stable for a goroutine's lifetime
	stack string // full stack text, used for filtering and reporting
}

// snapshot parses an all-goroutine dump into per-goroutine records.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var gs []goroutine
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(chunk, "\n")
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id := strings.Join(strings.Fields(header)[:2], " ")
		gs = append(gs, goroutine{id: id, stack: chunk})
	}
	return gs
}

// benign reports stacks that are never leaks: runtime and test-harness
// machinery, plus stdlib goroutines with process lifetime (signal
// handling, DNS resolution in flight, keep-alive HTTP transport conns —
// the transport parks those for reuse and reaps them on its own timer,
// so a retained conn after a client request is pooling, not a leak).
func benign(stack string) bool {
	for _, marker := range []string{
		"created by runtime.",
		"runtime.ReadTrace",
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.(*T).Parallel(",
		"testing.runFuzzing(",
		"testing.runTests(",
		"os/signal.signal_recv",
		"os/signal.loop",
		"net.(*Resolver)",
		"net/http.(*persistConn).readLoop",
		"net/http.(*persistConn).writeLoop",
		"net/http.setupRewindBody",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// leaked diffs a teardown snapshot against the set of goroutine ids that
// existed at setup.
func leaked(before map[string]bool) []goroutine {
	var out []goroutine
	for _, g := range snapshot() {
		if !before[g.id] && !benign(g.stack) {
			out = append(out, g)
		}
	}
	return out
}

// await polls until no leaked goroutines remain or the grace period runs
// out, returning the final leak set.
func await(before map[string]bool) []goroutine {
	deadline := time.Now().Add(grace)
	delay := time.Millisecond
	for {
		gs := leaked(before)
		if len(gs) == 0 || time.Now().After(deadline) {
			return gs
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

func report(gs []goroutine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d leaked goroutine(s) after %v grace:\n", len(gs), grace)
	for _, g := range gs {
		b.WriteString(g.stack)
		b.WriteString("\n\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// Check snapshots the live goroutines and returns the teardown func;
// defer it at the top of a test to require that the test leaves no new
// goroutines behind.
func Check(t testing.TB) func() {
	t.Helper()
	before := make(map[string]bool)
	for _, g := range snapshot() {
		before[g.id] = true
	}
	return func() {
		t.Helper()
		if gs := await(before); len(gs) > 0 {
			t.Error(report(gs))
		}
	}
}

// Main wraps testing.M for a package-level gate: every goroutine started
// anywhere in the suite must be gone once the last test finishes. It
// os.Exits with the suite's status, or 1 when the suite passed but leaked.
func Main(m *testing.M) {
	before := make(map[string]bool)
	for _, g := range snapshot() {
		before[g.id] = true
	}
	code := m.Run()
	if gs := await(before); len(gs) > 0 {
		fmt.Fprintln(os.Stderr, "leaktest:", report(gs))
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
