// Package store is the daemon's persistence tier: an embedded,
// content-addressed result store. Every successful job the daemon executes
// is flushed here as one JSON file keyed by the job's content key (the
// normalized bench.JobSpec plus the store schema version), holding the full
// result document, the vgiw-metrics/v1 snapshot, the per-stage host timings,
// and host/build metadata. A restarted daemon consults the store before the
// singleflight path, so warm results survive the process — the same
// content-keying idea the ArtifactCache applies per artifact and the
// singleflight applies per in-flight job, extended to disk and to forever.
//
// The layout is one file per key (<dir>/<key>.json, written atomically via
// rename) plus free-form snapshot files (<dir>/<name>.snapshot.json) for the
// shutdown flight recorder. Files are self-describing: each entry embeds the
// schema version and its own spec, so Get verifies the content actually
// matches the key before serving it.
//
// A nil *Store is valid and means "persistence disabled": Get always misses,
// Put and PutSnapshot discard, List is empty — mirroring the nil Sink and
// nil Registry contracts.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/trace"
	"vgiw/internal/version"
)

// Schema versions the on-disk entry format AND participates in the content
// key: bumping it orphans (not corrupts) old entries, so a format change can
// never serve a stale result under a new reading.
const Schema = "vgiw-store/v1"

// Key derives the store's content key for a spec: a hex SHA-256 over the
// schema version and the canonical JSON of the job-level content key
// (JobSpec.Key(), which strips the deadline — a deadline changes when a job
// may fail, never what it computes). Equal keys guarantee byte-identical
// results, so a stored entry can be served in place of a re-execution.
func Key(spec bench.JobSpec) string {
	b, err := json.Marshal(spec.Key())
	if err != nil {
		// JobSpec is plain data; Marshal cannot fail on it. Keep the
		// signature ergonomic and make any future regression unmissable.
		panic(fmt.Sprintf("store: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(Schema))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// HostMeta records where an entry was produced, for provenance when store
// directories are copied between machines.
type HostMeta struct {
	Version string `json:"version"` // vgiw build identifier
	Go      string `json:"go"`
	OS      string `json:"os"`
	Arch    string `json:"arch"`
}

// StageMS is the per-stage host timing split of the stored run, in
// milliseconds. Host telemetry, not simulated data: byte-identity claims
// cover Result, never these.
type StageMS struct {
	Instance float64 `json:"instance,omitempty"`
	Compile  float64 `json:"compile,omitempty"`
	Place    float64 `json:"place,omitempty"`
	Simulate float64 `json:"simulate,omitempty"`
}

// Entry is one stored job result.
type Entry struct {
	Schema  string        `json:"schema"`
	Key     string        `json:"key"`
	Spec    bench.JobSpec `json:"spec"` // normalized content key (TimeoutMS stripped)
	Kind    string        `json:"kind"` // "kernel", "suite", or "source"
	Created time.Time     `json:"created"`
	Host    HostMeta      `json:"host"`
	StageMS StageMS       `json:"stage_ms"`

	// Result is the job's result document, stored and served verbatim — a
	// store hit is byte-identical to the execution that produced it.
	Result json.RawMessage `json:"result"`

	// Metrics is the run's vgiw-metrics/v1 snapshot (absent for source
	// jobs, which simulate nothing). /v1/history/diff and benchgate
	// baselines read these.
	Metrics *trace.Snapshot `json:"metrics,omitempty"`
}

// NewHostMeta fills the provenance fields from the running binary.
func NewHostMeta() HostMeta {
	return HostMeta{
		Version: version.String(),
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
	}
}

// Kind classifies a spec for history filtering.
func Kind(spec bench.JobSpec) string {
	switch {
	case spec.Suite:
		return "suite"
	case spec.Source != "":
		return "source"
	default:
		return "kernel"
	}
}

// Store is a directory of entries. Methods are safe for concurrent use by
// the daemon's workers: writes are atomic (temp file + rename) and reads
// only ever observe complete files.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store directory. An empty dir returns
// a nil store — persistence disabled — so callers thread the flag value
// straight through.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the backing directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) entryPath(key string) string { return filepath.Join(s.dir, key+".json") }

// Get loads the entry for a key. A missing entry is (nil, nil); a present
// but unreadable/mismatched entry is an error, so the caller can count it
// and fall through to a real execution instead of serving garbage.
func (s *Store) Get(key string) (*Entry, error) {
	if s == nil {
		return nil, nil
	}
	data, err := os.ReadFile(s.entryPath(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("store: %s: %w", key, err)
	}
	if e.Schema != Schema {
		return nil, fmt.Errorf("store: %s: schema %q, want %q", key, e.Schema, Schema)
	}
	// Self-check: the embedded spec must hash back to the key it was filed
	// under (guards hand-edited or cross-copied files).
	if got := Key(e.Spec); got != key {
		return nil, fmt.Errorf("store: %s: content is for key %s", key, got)
	}
	return &e, nil
}

// Put files one entry under its spec's key, atomically. The entry's Schema,
// Key, and Kind fields are filled here so callers cannot file inconsistent
// records.
func (s *Store) Put(e *Entry) error {
	if s == nil {
		return nil
	}
	e.Schema = Schema
	e.Key = Key(e.Spec)
	e.Kind = Kind(e.Spec)
	if e.Created.IsZero() {
		e.Created = time.Now().UTC()
	}
	// Compact, not indented: indentation would rewrite the embedded Result
	// bytes, and the store's whole point is serving them back verbatim.
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.writeAtomic(s.entryPath(e.Key), append(data, '\n'))
}

// List loads every entry, ordered stably by creation time then key.
// Unreadable files are skipped (a torn copy must not take the history API
// down) and reported in the error alongside the successfully loaded entries.
func (s *Store) List() ([]*Entry, error) {
	if s == nil {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var entries []*Entry
	var bad []string
	for _, name := range names {
		if strings.HasSuffix(name, ".snapshot.json") {
			continue // flight-recorder snapshots are not result entries
		}
		key := strings.TrimSuffix(filepath.Base(name), ".json")
		e, err := s.Get(key)
		if err != nil || e == nil {
			bad = append(bad, filepath.Base(name))
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].Created.Equal(entries[j].Created) {
			return entries[i].Created.Before(entries[j].Created)
		}
		return entries[i].Key < entries[j].Key
	})
	if len(bad) > 0 {
		err = fmt.Errorf("store: skipped %d unreadable entries (%s)", len(bad), strings.Join(bad, ", "))
	}
	return entries, err
}

// PutSnapshot persists a registry as a named vgiw-metrics/v1 snapshot file
// (<dir>/<name>.snapshot.json), overwriting any previous one. The daemon
// writes a final "shutdown" snapshot during SIGTERM drain, so the last
// process state survives for post-mortems instead of living only in stderr.
func (s *Store) PutSnapshot(name string, reg *trace.Registry, scale int) error {
	if s == nil {
		return nil
	}
	var buf strings.Builder
	if err := reg.WriteSnapshot(&buf, scale); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.writeAtomic(filepath.Join(s.dir, name+".snapshot.json"), []byte(buf.String()))
}

// ReadSnapshot loads a named snapshot written by PutSnapshot. Missing is
// (nil, nil).
func (s *Store) ReadSnapshot(name string) (*trace.Snapshot, error) {
	if s == nil {
		return nil, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name+".snapshot.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return trace.ReadSnapshot(data)
}

// writeAtomic writes data to path via a same-directory temp file + rename,
// so concurrent readers and a mid-write crash both observe either the old
// complete file or the new complete file, never a torn one.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("store: %w", werr)
	}
	return nil
}
