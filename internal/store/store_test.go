package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/trace"
)

func TestKeyContentAddressing(t *testing.T) {
	a := bench.JobSpec{Kernel: "bfs.kernel1", Scale: 2}
	b := bench.JobSpec{Kernel: "bfs.kernel1", Scale: 2, TimeoutMS: 5000}
	if Key(a) != Key(b) {
		t.Error("TimeoutMS leaked into the content key")
	}
	c := bench.JobSpec{Kernel: "bfs.kernel1", Scale: 3}
	if Key(a) == Key(c) {
		t.Error("different specs share a key")
	}
	if len(Key(a)) != 64 {
		t.Errorf("key %q is not hex sha256", Key(a))
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := bench.JobSpec{Kernel: "bfs.kernel1"}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	result := json.RawMessage(`{"scale":1,"runs":[{"kernel":"bfs.kernel1"}]}`)
	reg := trace.NewRegistry()
	reg.Set("bfs.kernel1/vgiw.cycles", 1234)
	ent := &Entry{
		Spec:    spec.Key(),
		Host:    NewHostMeta(),
		StageMS: StageMS{Simulate: 12.5},
		Result:  result,
		Metrics: &trace.Snapshot{Schema: trace.MetricsSchema, Scale: 1, Metrics: reg.Flat()},
	}
	if err := s.Put(ent); err != nil {
		t.Fatal(err)
	}

	got, err := s.Get(Key(spec))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("stored entry missing")
	}
	if !bytes.Equal(got.Result, result) {
		t.Errorf("result not byte-identical: %s vs %s", got.Result, result)
	}
	if got.Kind != "kernel" || got.Schema != Schema || got.Spec != spec.Key() {
		t.Errorf("entry envelope wrong: %+v", got)
	}
	if got.Metrics == nil || got.Metrics.Metrics["bfs.kernel1/vgiw.cycles"] != 1234 {
		t.Errorf("metrics snapshot lost: %+v", got.Metrics)
	}
	if got.Created.IsZero() {
		t.Error("Created not stamped")
	}
	if got.Host.Go == "" || got.Host.OS == "" {
		t.Errorf("host meta empty: %+v", got.Host)
	}

	// Unknown key: clean miss, no error.
	if e, err := s.Get(Key(bench.JobSpec{Suite: true})); e != nil || err != nil {
		t.Errorf("miss = (%v, %v), want (nil, nil)", e, err)
	}
}

func TestGetRejectsCorruptAndMismatched(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	spec := bench.JobSpec{Kernel: "bfs.kernel1", Scale: 1}
	key := Key(spec)

	// Corrupt JSON under a valid key name: error, not a crash or a hit.
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); err == nil {
		t.Error("corrupt entry served without error")
	}

	// An entry filed under the wrong key must be rejected by the self-check.
	other := bench.JobSpec{Kernel: "bfs.kernel2", Scale: 1}
	if err := s.Put(&Entry{Spec: other, Result: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, Key(other)+".json"), filepath.Join(dir, key+".json")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key); err == nil {
		t.Error("cross-filed entry served without error")
	}
}

func TestListStableOrder(t *testing.T) {
	s, _ := Open(t.TempDir())
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	specs := []bench.JobSpec{
		{Kernel: "bfs.kernel2", Scale: 1},
		{Kernel: "bfs.kernel1", Scale: 1},
		{Kernel: "bfs.kernel1", Scale: 2},
	}
	for i, sp := range specs {
		ent := &Entry{Spec: sp, Result: json.RawMessage(`{}`), Created: base.Add(time.Duration(2-i) * time.Hour)}
		if err := s.Put(ent); err != nil {
			t.Fatal(err)
		}
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d entries, want 3", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Created.Before(list[i-1].Created) {
			t.Errorf("list not ordered by Created: %v after %v", list[i].Created, list[i-1].Created)
		}
	}
	// The scale-2 entry was created first and must list first.
	if list[0].Spec.Scale != 2 {
		t.Errorf("oldest entry not first: %+v", list[0].Spec)
	}
}

func TestSnapshotRoundTripAndListExclusion(t *testing.T) {
	s, _ := Open(t.TempDir())
	reg := trace.NewRegistry()
	reg.Add("vgiwd/jobs_completed", 7)
	if err := s.PutSnapshot("shutdown", reg, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := s.ReadSnapshot("shutdown")
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Metrics["vgiwd/jobs_completed"] != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Snapshots must not pollute the entry listing.
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("snapshot leaked into List(): %+v", list)
	}
	// Missing snapshot: clean miss.
	if snap, err := s.ReadSnapshot("nope"); snap != nil || err != nil {
		t.Errorf("missing snapshot = (%v, %v), want (nil, nil)", snap, err)
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if s2, err := Open(""); s2 != nil || err != nil {
		t.Fatalf("Open(\"\") = (%v, %v), want (nil, nil)", s2, err)
	}
	if e, err := s.Get("abc"); e != nil || err != nil {
		t.Error("nil store Get not a miss")
	}
	if err := s.Put(&Entry{}); err != nil {
		t.Error("nil store Put errored")
	}
	if l, err := s.List(); l != nil || err != nil {
		t.Error("nil store List not empty")
	}
	if err := s.PutSnapshot("x", nil, 0); err != nil {
		t.Error("nil store PutSnapshot errored")
	}
	if s.Dir() != "" {
		t.Error("nil store has a dir")
	}
}
