package sgmf

import (
	"testing"

	"vgiw/internal/kir"
)

// checkedConfig is the default machine with the verifier on: every mapping
// pass and placement in the tests is checked.
func checkedConfig() Config {
	cfg := DefaultConfig()
	cfg.Checked = true
	return cfg
}

func buildDiamond() *kir.Kernel {
	b := kir.NewBuilder("fig1a")
	b.SetParams(2)
	bb1 := b.NewBlock("bb1")
	bb2 := b.NewBlock("bb2")
	bb3 := b.NewBlock("bb3")
	bb4 := b.NewBlock("bb4")
	bb5 := b.NewBlock("bb5")
	bb6 := b.NewBlock("bb6")
	b.SetBlock(bb1)
	tid := b.Tid()
	v := b.Load(b.Add(b.Param(0), tid), 0)
	b.Branch(b.SetLT(v, b.Const(10)), bb2, bb3)
	b.SetBlock(bb2)
	b.Store(b.Add(b.Param(1), tid), 0, b.MulI(v, 2))
	b.Jump(bb6)
	b.SetBlock(bb3)
	b.Branch(b.SetLT(v, b.Const(100)), bb4, bb5)
	b.SetBlock(bb4)
	b.Store(b.Add(b.Param(1), tid), 0, b.AddI(v, 7))
	b.Jump(bb6)
	b.SetBlock(bb5)
	b.Store(b.Add(b.Param(1), tid), 0, b.Sub(v, tid))
	b.Jump(bb6)
	b.SetBlock(bb6)
	b.Ret()
	return b.MustBuild()
}

func TestSGMFDiamondMatchesReference(t *testing.T) {
	const n = 256
	mk := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := 0; i < n; i++ {
			m[i] = uint32(i * 7 % 250)
		}
		return m
	}
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := mk()
	in := &kir.Interp{Kernel: buildDiamond(), Launch: launch, Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := mk()
	res, err := m.Run(buildDiamond(), launch, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: sgmf %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Divergence waste: with 3 exclusive store paths, 2/3 of the predicated
	// stores are skipped — the units are occupied but idle (Figure 1c).
	if res.SkippedMemOps == 0 {
		t.Error("no skipped memory ops under divergence")
	}
	if res.Replicas < 1 {
		t.Error("no replicas placed")
	}
	if res.GraphNodes == 0 {
		t.Error("empty graph")
	}
}

func TestSGMFRejectsLoops(t *testing.T) {
	b := kir.NewBuilder("loopy")
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	i := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLT(i1, b.Tid()), loop, exit)
	b.SetBlock(exit)
	b.Ret()
	k := b.MustBuild()

	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Supported(k) {
		t.Error("loopy kernel should not be SGMF-supported")
	}
}

func TestSGMFRejectsOversizedKernels(t *testing.T) {
	// More ALU work than the fabric has ALUs (32): 40 chained multiplies.
	b := kir.NewBuilder("huge")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	v := b.Param(0)
	acc := b.Tid()
	for i := 0; i < 40; i++ {
		acc = b.Mul(acc, acc)
	}
	b.Store(v, 0, acc)
	b.Ret()
	k := b.MustBuild()

	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Supported(k) {
		t.Error("oversized kernel should not fit the SGMF fabric")
	}
}

func TestSGMFSingleConfiguration(t *testing.T) {
	// SGMF pays the configuration cost exactly once, regardless of thread
	// count: doubling threads should add ~threads/replicas cycles, not
	// another configuration.
	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(n int) int64 {
		launch := kir.Launch1D(n/32, 32, 0, uint32(n))
		global := make([]uint32, 2*n)
		res, err := m.Run(buildDiamond(), launch, global)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	// Compare sizes in the same cache-banking regime (both large enough
	// that load and store streams share L1 banks) so the only difference
	// is amortization of the one-time configuration.
	small := run(1024)
	large := run(4096)
	if large <= small {
		t.Error("more threads should take longer")
	}
	perThreadSmall := float64(small) / 1024
	perThreadLarge := float64(large) / 4096
	if perThreadLarge > perThreadSmall*1.01 {
		t.Errorf("per-thread cost grew with thread count: %.2f -> %.2f (configuration not amortized?)",
			perThreadSmall, perThreadLarge)
	}
}

// TestSGMFReplicationThroughput: a tiny kernel replicates several times and
// should outrun a single-replica fabric configuration of the same graph.
func TestSGMFReplicationThroughput(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("tiny")
		b.SetParams(1)
		blk := b.NewBlock("entry")
		b.SetBlock(blk)
		addr := b.Add(b.Param(0), b.Tid())
		b.Store(addr, 0, b.Add(b.Load(addr, 0), b.Tid()))
		b.Ret()
		return b.MustBuild()
	}
	const n = 2048
	launch := kir.Launch1D(n/32, 32, 0)

	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(build(), launch, make([]uint32, n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas < 2 {
		t.Fatalf("tiny kernel placed only %d replicas", res.Replicas)
	}

	cfgOne := checkedConfig()
	cfgOne.Fabric.MaxReplicas = 1
	mOne, err := NewMachine(cfgOne)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := mOne.Run(build(), launch, make([]uint32, n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles >= resOne.Cycles {
		t.Errorf("replicated run (%d cycles) not faster than single replica (%d)",
			res.Cycles, resOne.Cycles)
	}
}

// TestSGMFUnrollsCountedLoops: a constant-trip loop becomes mappable via the
// compiler's full unrolling.
func TestSGMFUnrollsCountedLoops(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("trip3")
		b.SetParams(1)
		entry := b.NewBlock("entry")
		loop := b.NewBlock("loop")
		exit := b.NewBlock("exit")
		b.SetBlock(entry)
		tid := b.Tid()
		i := b.Const(0)
		acc := b.Const(0)
		b.Jump(loop)
		b.SetBlock(loop)
		a1 := b.Add(acc, i)
		b.MovTo(acc, a1)
		i1 := b.AddI(i, 1)
		b.MovTo(i, i1)
		b.Branch(b.SetLT(i1, b.Const(3)), loop, exit)
		b.SetBlock(exit)
		b.Store(b.Add(b.Param(0), tid), 0, acc)
		b.Ret()
		return b.MustBuild()
	}
	const n = 128
	ref := make([]uint32, n)
	in := &kir.Interp{Kernel: build(), Launch: kir.Launch1D(n/32, 32, 0), Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}

	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, n)
	if _, err := m.Run(build(), kir.Launch1D(n/32, 32, 0), got); err != nil {
		t.Fatalf("unrollable loop should be SGMF-mappable: %v", err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
}

// TestSGMFParamMismatch surfaces launch errors.
func TestSGMFParamMismatch(t *testing.T) {
	m, err := NewMachine(checkedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(buildDiamond(), kir.Launch1D(1, 32), make([]uint32, 64)); err == nil {
		t.Error("want error for missing params")
	}
}
