// Package sgmf models the Single-Graph Multiple-Flows dataflow GPGPU
// (Voitsechov & Etsion, ISCA 2014), the paper's second baseline. SGMF maps
// the *entire* kernel — all control paths, if-converted into predicated
// dataflow — onto the MT-CGRF at once (Figure 1c). It therefore:
//
//   - cannot run kernels whose flattened graph exceeds the fabric, nor
//     kernels with data-dependent loops or barriers (§2, §5);
//   - wastes units on not-taken paths under control divergence;
//   - needs no reconfiguration, no live value cache, and no control vector
//     table, which makes it faster than VGIW on small low-divergence kernels
//     (Figures 8 and 11).
package sgmf

import (
	"context"
	"fmt"

	"vgiw/internal/compile"
	"vgiw/internal/engine"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

// Config assembles an SGMF core.
type Config struct {
	Fabric fabric.Config
	Mem    mem.Config
	Engine engine.Options
	// Checked runs the kernel-IR verifier after every mapping pass and
	// the placed-graph checker after placement (internal/verify). On in
	// tests and the daemon's compile path; off in timed runs.
	Checked bool
}

// DefaultConfig matches the VGIW fabric and memory system so comparisons
// isolate the execution model.
func DefaultConfig() Config {
	return Config{
		Fabric: fabric.DefaultConfig(),
		Mem:    mem.DefaultConfig(mem.WriteBack),
	}
}

// Result aggregates a kernel execution on the SGMF core.
type Result struct {
	Kernel  string
	Threads int
	Cycles  int64

	GraphNodes int
	Replicas   int

	Ops            map[kir.UnitClass]uint64
	FPOps          uint64
	TokenHops      uint64
	TokenTransfers uint64
	SkippedMemOps  uint64 // predicated-off accesses: the divergence waste
	GlobalAccesses uint64
	SharedAccesses uint64
	MemStats       mem.SystemStats
}

// Machine is an SGMF core instance.
type Machine struct {
	cfg  Config
	grid *fabric.Grid
	eng  *engine.Engine
}

// NewMachine builds the core.
func NewMachine(cfg Config) (*Machine, error) {
	grid, err := fabric.NewGrid(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, grid: grid, eng: engine.New(grid, cfg.Engine)}, nil
}

// Mapped is SGMF's compile/place artifact: the scheduled, unrolled,
// if-converted kernel together with its whole-kernel placement. It is
// immutable once built — RunMapped only reads it — so one Mapped may be
// shared by concurrent runs on machines with the same fabric configuration.
type Mapped struct {
	// Kernel is the transformed kernel the graph was built from (the
	// mapping passes mutate their input in place; keep this one, not the
	// original, alongside the placement).
	Kernel    *kir.Kernel
	Placement *fabric.Placement
}

// Translate lowers a kernel to SGMF's whole-kernel dataflow graph,
// reporting why a kernel is not SGMF-mappable (loops, barriers). The kernel
// is mutated in place (block scheduling, loop unrolling).
func (m *Machine) Translate(k *kir.Kernel) (*compile.BlockDFG, error) {
	var opts []compile.Option
	if m.cfg.Checked {
		opts = append(opts, compile.Checked())
	}
	if _, err := compile.ScheduleBlocks(k); err != nil {
		return nil, err
	}
	// Counted loops with compile-time trip counts can be fully unrolled,
	// which turns some loopy kernels into SGMF-mappable acyclic graphs
	// (bounded so the result still has a chance of fitting the fabric).
	if _, err := compile.UnrollLoops(k, 16, 96, opts...); err != nil {
		return nil, err
	}
	return compile.IfConvert(k, opts...)
}

// PlaceGraph maps the whole-kernel graph onto the fabric with as many
// replicas as fit, reporting oversize failures.
func (m *Machine) PlaceGraph(name string, g *compile.BlockDFG) (*fabric.Placement, error) {
	p, err := fabric.PlaceMax(m.grid, g)
	if err != nil {
		return nil, fmt.Errorf("sgmf: kernel %s: %w", name, err)
	}
	if m.cfg.Checked {
		// numLVs 0: the flattened whole-kernel graph must not touch the LVC.
		if err := fabric.VerifyPlaced("place", m.grid, p, 0); err != nil {
			return nil, fmt.Errorf("sgmf: kernel %s: %w", name, err)
		}
	}
	return p, nil
}

// Map if-converts and places the kernel, reporting why a kernel is not
// SGMF-mappable (loops, barriers, or exceeding the fabric). The input kernel
// is mutated in place; the returned artifact retains it.
func (m *Machine) Map(k *kir.Kernel) (*Mapped, error) {
	g, err := m.Translate(k)
	if err != nil {
		return nil, err
	}
	p, err := m.PlaceGraph(k.Name, g)
	if err != nil {
		return nil, err
	}
	return &Mapped{Kernel: k, Placement: p}, nil
}

// Supported reports whether the kernel can run on SGMF at all.
func (m *Machine) Supported(k *kir.Kernel) bool {
	_, err := m.Map(k)
	return err == nil
}

// Run executes a kernel launch: one static configuration, every thread
// streamed through the whole-kernel graph.
func (m *Machine) Run(k *kir.Kernel, launch kir.Launch, global []uint32) (*Result, error) {
	mapped, err := m.Map(k)
	if err != nil {
		return nil, err
	}
	return m.RunMapped(mapped, launch, global)
}

// RunMapped executes a pre-mapped kernel launch. It treats mapped as
// read-only, so a cached Mapped can be executed concurrently by independent
// machines.
func (m *Machine) RunMapped(mapped *Mapped, launch kir.Launch, global []uint32) (*Result, error) {
	return m.RunMappedCtx(context.Background(), mapped, launch, global)
}

// RunMappedCtx is RunMapped with cooperative cancellation: the engine polls
// ctx while the thread vector streams through the whole-kernel graph, so a
// deadline or cancel preempts a running kernel.
func (m *Machine) RunMappedCtx(ctx context.Context, mapped *Mapped, launch kir.Launch, global []uint32) (*Result, error) {
	k, p := mapped.Kernel, mapped.Placement
	sys := mem.NewSystem(m.cfg.Mem)
	env, err := engine.NewDataEnv(k, launch, global, sys)
	if err != nil {
		return nil, err
	}
	threads := make([]int, launch.Threads())
	for i := range threads {
		threads[i] = i
	}
	hooks := env.Hooks()
	sink := m.cfg.Engine.Trace
	var tracks struct{ run, fabric, mem trace.TrackID }
	traced := sink.Enabled(trace.CatSGMF | trace.CatEngine | trace.CatMem)
	if traced {
		pid := sink.AllocProcess(k.Name + "/sgmf")
		tracks.run = trace.TrackID{Pid: pid, Tid: 0}
		tracks.fabric = trace.TrackID{Pid: pid, Tid: 1}
		tracks.mem = trace.TrackID{Pid: pid, Tid: 2}
		sink.DefineTrack(tracks.run, "run")
		sink.DefineTrack(tracks.fabric, "fabric")
		sink.DefineTrack(tracks.mem, "mem")
		hooks.TraceTrack = tracks.fabric
	}
	// A single configuration at kernel load; afterwards threads stream
	// continuously (no BBS, no reconfiguration).
	start := m.cfg.Fabric.ConfigCycles
	if sink.Enabled(trace.CatSGMF) {
		sink.Emit(trace.Event{Name: "configure", Cat: trace.CatSGMF, Phase: trace.PhaseSpan,
			Track: tracks.run, Ts: 0, Dur: start, K1: "nodes", V1: int64(len(p.Graph.Nodes))})
	}
	st, err := m.eng.RunVectorCtx(ctx, p, threads, start, hooks)
	if err != nil {
		return nil, err
	}
	if sink.Enabled(trace.CatSGMF) {
		// One span for the whole streamed kernel: SGMF has no block schedule.
		sink.Emit(trace.Event{Name: k.Name, Cat: trace.CatSGMF, Phase: trace.PhaseSpan,
			Track: tracks.run, Ts: st.StartCycle, Dur: st.Cycles(),
			K1: "threads", V1: int64(launch.Threads()), K2: "replicas", V2: int64(p.Replicas)})
	}
	if sink.Enabled(trace.CatMem) {
		ms := sys.Stats()
		sink.Emit(trace.Event{Name: "l1", Cat: trace.CatMem, Phase: trace.PhaseCounter,
			Track: tracks.mem, Ts: st.EndCycle,
			K1: "accesses", V1: int64(ms.L1.Accesses()), K2: "misses", V2: int64(ms.L1.Misses())})
		sink.Emit(trace.Event{Name: "l2", Cat: trace.CatMem, Phase: trace.PhaseCounter,
			Track: tracks.mem, Ts: st.EndCycle,
			K1: "accesses", V1: int64(ms.L2.Accesses()), K2: "misses", V2: int64(ms.L2.Misses())})
		sink.Emit(trace.Event{Name: "dram", Cat: trace.CatMem, Phase: trace.PhaseCounter,
			Track: tracks.mem, Ts: st.EndCycle,
			K1: "reads", V1: int64(ms.DRAM.Reads), K2: "writes", V2: int64(ms.DRAM.Writes)})
	}
	defer sys.Release() // stats snapshotted below; recycle the directories
	return &Result{
		Kernel:         k.Name,
		Threads:        launch.Threads(),
		Cycles:         st.EndCycle,
		GraphNodes:     len(p.Graph.Nodes),
		Replicas:       p.Replicas,
		Ops:            st.Ops.Map(),
		FPOps:          st.FPOps,
		TokenHops:      st.TokenHops,
		TokenTransfers: st.TokenTransfers,
		SkippedMemOps:  st.SkippedMemOps,
		GlobalAccesses: st.GlobalAccesses,
		SharedAccesses: st.SharedAccesses,
		MemStats:       sys.Stats(),
	}, nil
}
