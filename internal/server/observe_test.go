package server

// Tests for the persistence-and-live-observation tier: the result store
// behind Submit, the /v1/history API, and the /v1/jobs/{id}/events SSE
// stream.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"vgiw/internal/store"
	"vgiw/internal/trace"
)

func newStoreServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	return newTestServer(t, cfg)
}

// metricValue scrapes one counter's current value out of the exposition.
func metricValue(t *testing.T, ts *httptest.Server, name string) int {
	t.Helper()
	re := regexp.MustCompile(`vgiw_metric\{name="` + regexp.QuoteMeta(name) + `"\} (\d+)`)
	m := re.FindStringSubmatch(scrapeMetrics(t, ts))
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestStoreRoundTrip is the persistence acceptance test: a result computed
// by one server is served byte-identically by a second server sharing the
// store directory — the restart scenario — marked "cached": "store", counted
// in store_hits, and visible through the history API.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kernel":"bfs.kernel1","scale":2}`

	sA, tsA := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 4})
	respA, vA := postJob(t, tsA, spec, "?wait=1")
	if respA.StatusCode != http.StatusOK || vA.State != StateDone {
		t.Fatalf("first run: status %d state %q", respA.StatusCode, vA.State)
	}
	if vA.Cached != "" {
		t.Fatalf("first run claims cached=%q", vA.Cached)
	}
	// Drain server A: its worker flushes the store entry before exiting, so
	// the directory now holds everything a new process can see.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sA.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	_, tsB := newStoreServer(t, dir, Config{Workers: 1, QueueDepth: 4})
	respB, vB := postJob(t, tsB, spec, "?wait=1")
	if respB.StatusCode != http.StatusOK || vB.State != StateDone {
		t.Fatalf("store hit: status %d state %q", respB.StatusCode, vB.State)
	}
	if vB.Cached != "store" {
		t.Errorf(`store hit not marked: cached = %q, want "store"`, vB.Cached)
	}
	if !bytes.Equal(vB.Result, vA.Result) {
		t.Errorf("store hit is not byte-identical:\n%s\nvs\n%s", vB.Result, vA.Result)
	}
	if got := metricValue(t, tsB, "vgiwd/store_hits"); got != 1 {
		t.Errorf("store_hits = %d, want 1", got)
	}
	if got := metricValue(t, tsB, "vgiwd/runs_executed"); got != 0 {
		t.Errorf("runs_executed = %d on a pure store hit, want 0", got)
	}

	// The stored result is listed (and filterable) in /v1/history.
	var hist struct {
		Entries []HistoryEntry `json:"entries"`
	}
	getJSON(t, tsB, "/v1/history?kernel=bfs.kernel1", &hist)
	if len(hist.Entries) != 1 {
		t.Fatalf("history entries = %d, want 1", len(hist.Entries))
	}
	he := hist.Entries[0]
	if he.Kind != "kernel" || he.Kernel != "bfs.kernel1" || he.Metrics == 0 {
		t.Errorf("history entry = %+v", he)
	}
	getJSON(t, tsB, "/v1/history?kernel=nonexistent", &hist)
	if len(hist.Entries) != 0 {
		t.Errorf("kernel filter leaked %d entries", len(hist.Entries))
	}

	// Full entry fetch serves the stored result verbatim.
	var full store.Entry
	getJSON(t, tsB, "/v1/history/"+he.Key, &full)
	if full.Key != he.Key || full.Metrics == nil || full.Metrics.Schema != trace.MetricsSchema {
		t.Errorf("full entry = key %q, metrics %+v", full.Key, full.Metrics)
	}

	// Self-diff: everything unchanged, nothing moved.
	var diff HistoryDiff
	getJSON(t, tsB, "/v1/history/diff?from="+he.Key+"&to="+he.Key, &diff)
	if len(diff.Changed) != 0 || diff.Unchanged == 0 {
		t.Errorf("self-diff: changed=%d unchanged=%d", len(diff.Changed), diff.Unchanged)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// TestHistoryWithoutStore pins the disabled-persistence behavior: the routes
// exist but answer 404.
func TestHistoryWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for _, path := range []string{"/v1/history", "/v1/history/abc", "/v1/history/diff?from=a&to=b"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without a store: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	event string
	data  []byte
}

func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
	return frames
}

// TestEventsStream is the streaming acceptance test: for a finished traced
// job, the SSE stream's trace frames are — in order — exactly the
// non-metadata records of the Chrome trace export, followed by a metrics
// snapshot and a done frame.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, v := postJob(t, ts, `{"kernel":"bfs.kernel1","trace":true,"trace_filter":"vgiw,cvt"}`, "?wait=1")
	if resp.StatusCode != http.StatusOK || v.State != StateDone {
		t.Fatalf("status %d state %q", resp.StatusCode, v.State)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, es)
	if es.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", es.StatusCode)
	}
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	frames := parseSSE(t, body)
	if len(frames) < 3 {
		t.Fatalf("only %d frames", len(frames))
	}

	tr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody := readAll(t, tr)
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(traceBody), &doc); err != nil {
		t.Fatal(err)
	}
	var records [][]byte // export records, metadata ("M") excluded
	for _, raw := range doc.TraceEvents {
		var ph struct {
			Ph string `json:"ph"`
		}
		if err := json.Unmarshal(raw, &ph); err != nil {
			t.Fatal(err)
		}
		if ph.Ph != "M" {
			records = append(records, []byte(raw))
		}
	}

	var got [][]byte
	sawMetrics, sawDone := false, false
	for i, f := range frames {
		switch f.event {
		case "trace":
			if sawMetrics || sawDone {
				t.Fatalf("trace frame %d after metrics/done", i)
			}
			got = append(got, f.data)
		case "metrics":
			var snap trace.Snapshot
			if err := json.Unmarshal(f.data, &snap); err != nil || snap.Schema != trace.MetricsSchema {
				t.Errorf("metrics frame: schema %q err %v", snap.Schema, err)
			}
			sawMetrics = true
		case "done":
			var final struct {
				ID    string `json:"id"`
				State string `json:"state"`
			}
			if err := json.Unmarshal(f.data, &final); err != nil || final.ID != v.ID || final.State != StateDone {
				t.Errorf("done frame = %s (err %v)", f.data, err)
			}
			sawDone = true
		default:
			t.Errorf("unknown frame event %q", f.event)
		}
	}
	if !sawMetrics || !sawDone {
		t.Errorf("stream ended without metrics/done (metrics=%v done=%v)", sawMetrics, sawDone)
	}
	// In-order prefix of the export; for a finished job the prefix is total.
	if len(got) != len(records) {
		t.Fatalf("stream carried %d trace frames, export has %d records", len(got), len(records))
	}
	for i := range got {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("frame %d differs from export record:\n%s\nvs\n%s", i, got[i], records[i])
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestEventsDisconnectAndDrop pins the non-blocking consumer discipline: a
// subscriber with a tiny ring that never reads loses events (counted in
// vgiwd/stream_dropped) while the job runs to completion untouched.
func TestEventsDisconnectAndDrop(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Pin the single worker so the traced job is admitted but not yet
	// running when the stream attaches — the subscription must predate the
	// event flood for the drop count to be deterministic.
	_, blocker := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":4}`, "")
	waitState(t, ts, blocker.ID, StateRunning)
	_, traced := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":2,"trace":true,"trace_filter":"engine"}`, "")

	es, err := http.Get(ts.URL + "/v1/jobs/" + traced.ID + "/events?buf=1")
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the worker; the traced run now floods a 1-slot ring that
	// nobody drains (this client never reads the body).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}

	done := waitState(t, ts, traced.ID, StateDone)
	if done.State != StateDone {
		t.Fatalf("traced job state %q", done.State)
	}
	es.Body.Close() // disconnect: must cancel nothing

	// The handler unsubscribes on its way out and folds the ring's losses
	// into the metric; poll briefly for that hand-off.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := metricValue(t, ts, "vgiwd/stream_dropped"); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream_dropped never became positive")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The job survived its consumer: still done, result intact.
	final, err := http.Get(ts.URL + "/v1/jobs/" + traced.ID)
	if err != nil {
		t.Fatal(err)
	}
	fv := decodeView(t, final)
	if fv.State != StateDone || len(fv.Result) == 0 {
		t.Errorf("after disconnect: state %q, result %d bytes", fv.State, len(fv.Result))
	}
}

// TestEventsEndpointErrors covers the stream's refusal paths.
func TestEventsEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, plain := postJob(t, ts, `{"kernel":"bfs.kernel1"}`, "?wait=1")

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/jobs/nope/events", http.StatusNotFound},
		{"/v1/jobs/" + plain.ID + "/events", http.StatusConflict}, // untraced
		{"/v1/jobs/" + plain.ID + "/events?buf=zero", http.StatusConflict},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestTraceEndpointContract completes the trace handler's coverage: unknown
// job 404, in-flight traced job 409, and a happy path whose payload passes
// the full Chrome trace-event validator.
func TestTraceEndpointContract(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}

	// A traced job that is still running must refuse (the sink is live).
	_, slow := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":4,"trace":true}`, "")
	waitState(t, ts, slow.ID, StateRunning)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + slow.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("running job trace: status %d, want 409", resp.StatusCode)
	}
	waitState(t, ts, slow.ID, StateDone)

	resp, err = http.Get(ts.URL + "/v1/jobs/" + slow.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", resp.StatusCode)
	}
	n, err := trace.ValidateChromeTrace([]byte(body))
	if err != nil {
		t.Fatalf("trace failed validation: %v", err)
	}
	if n == 0 {
		t.Error("validated trace has no events")
	}
}
