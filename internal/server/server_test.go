package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/kernels"
	"vgiw/internal/leaktest"
)

// newTestServer builds a server + httptest frontend and registers shutdown
// cleanup (idempotence is handled by ignoring the double-shutdown error).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.RunParallelism == 0 {
		cfg.RunParallelism = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // tests that care assert explicitly
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body, query string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeView(t, resp)
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job response %q: %v", raw, err)
		}
	}
	return v
}

// waitState polls a job until it reaches the wanted state.
func waitState(t *testing.T, ts *httptest.Server, id, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		v := decodeView(t, resp)
		if v.State == want {
			return v
		}
		if terminal(v.State) {
			t.Fatalf("job %s reached %q (reason %q), want %q", id, v.State, v.Reason, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return JobView{}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func metricLine(name string, v int) string {
	return fmt.Sprintf("vgiw_metric{name=%q} %d", name, v)
}

// TestSingleflightDedup is the exactly-once acceptance test: N concurrent
// identical submissions share one execution and serve byte-identical result
// JSON. A slow blocker pins the single worker so the identical jobs are all
// admitted while their shared execution is still queued.
func TestSingleflightDedup(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	_, blocker := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":4}`, "")
	waitState(t, ts, blocker.ID, StateRunning)

	const n = 8
	var wg sync.WaitGroup
	views := make([]JobView, n)
	for i := range views {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, v := postJob(t, ts, `{"kernel":"bfs.kernel1"}`, "?wait=1")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("submission %d: status %d, want 200", i, resp.StatusCode)
			}
			views[i] = v
		}()
	}
	wg.Wait()
	waitState(t, ts, blocker.ID, StateDone)

	shared := 0
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("job %d: state %q (reason %q), want done", i, v.State, v.Reason)
		}
		if len(v.Result) == 0 {
			t.Fatalf("job %d: empty result", i)
		}
		if !bytes.Equal(v.Result, views[0].Result) {
			t.Fatalf("job %d result differs from job 0:\n%s\nvs\n%s", i, v.Result, views[0].Result)
		}
		if v.Shared {
			shared++
		}
	}
	if shared != n-1 {
		t.Errorf("shared jobs = %d, want %d", shared, n-1)
	}

	metrics := scrapeMetrics(t, ts)
	// Exactly two executions ran: the blocker and ONE for all n identical jobs.
	if want := metricLine("vgiwd/runs_executed", 2); !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q:\n%s", want, metrics)
	}
	if want := metricLine("vgiwd/jobs_deduped", n-1); !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestDeadlineCancelsSimulator submits a job whose deadline is far shorter
// than its simulation and asserts the job reports cancelled and the worker
// goroutine is released (Shutdown drains cleanly — under -race this also
// proves no simulator goroutine leaks past its deadline).
func TestDeadlineCancelsSimulator(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, v := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":4,"timeout_ms":25}`, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if v.State != StateCancelled {
		t.Fatalf("state %q (reason %q), want cancelled", v.State, v.Reason)
	}
	if v.Reason != "deadline" {
		t.Errorf("reason %q, want deadline", v.Reason)
	}
	if len(v.Result) != 0 {
		t.Errorf("cancelled job carries a result")
	}

	// The worker must come free promptly once the simulator observes the
	// cancelled context: a fast follow-up job completes.
	_, next := postJob(t, ts, `{"kernel":"bfs.kernel1"}`, "?wait=1")
	if next.State != StateDone {
		t.Fatalf("follow-up job state %q, want done", next.State)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after deadline-cancel: %v", err)
	}
}

// TestOverloadRejects fills the bounded queue and asserts admission control:
// 429 with Retry-After, a rejection counter on /metrics, and no effect on
// the jobs already admitted.
func TestOverloadRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})

	_, running := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":4}`, "")
	waitState(t, ts, running.ID, StateRunning)
	resp2, queued := postJob(t, ts, `{"kernel":"bfs.kernel2","scale":8}`, "")
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submission: status %d, want 202", resp2.StatusCode)
	}

	resp3, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kernel":"bfs.kernel1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body) //nolint:errcheck
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submission: status %d, want 429", resp3.StatusCode)
	}
	if got := resp3.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}

	metrics := scrapeMetrics(t, ts)
	if want := metricLine("vgiwd/jobs_rejected", 1); !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q:\n%s", want, metrics)
	}

	// The admitted jobs are unaffected: cancel them and drain. The queued
	// job goes first — it cannot start while the single worker is pinned by
	// the running one, so both DELETEs land on live jobs.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if v := decodeView(t, resp); v.State != StateCancelled {
			t.Errorf("job %s after DELETE: state %q, want cancelled", id, v.State)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after cancellations: %v", err)
	}
	if !s.Draining() {
		t.Error("Draining() false after Shutdown")
	}
}

// TestGracefulDrain lets queued work finish during Shutdown and verifies
// post-drain submissions are refused with 503.
func TestGracefulDrain(t *testing.T) {
	// Drain is the server's lifecycle teardown; leaktest pins the exact
	// test if a worker or watchdog goroutine survives it (TestMain catches
	// the same suite-wide, but without naming the offender). Registered
	// before newTestServer so the LIFO cleanup order runs the leak check
	// after the server's own shutdown cleanup.
	t.Cleanup(leaktest.Check(t))
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	var admitted []JobView
	for i := 0; i < 3; i++ {
		_, v := postJob(t, ts, fmt.Sprintf(`{"kernel":"bfs.kernel1","scale":%d}`, i+1), "")
		admitted = append(admitted, v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	for _, v := range admitted {
		got := s.viewByID(t, v.ID)
		if got.State != StateDone {
			t.Errorf("job %s after drain: state %q (reason %q), want done", v.ID, got.State, got.Reason)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kernel":"bfs.kernel1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submission: status %d, want 503", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("post-drain readyz: status %d, want 503", resp.StatusCode)
		}
	}
}

// viewByID fetches a job view straight off the server (the HTTP layer is
// exercised elsewhere; drain assertions should not depend on the listener).
func (s *Server) viewByID(t *testing.T, id string) JobView {
	t.Helper()
	j, ok := s.Get(id)
	if !ok {
		t.Fatalf("job %s evicted", id)
	}
	return s.View(j)
}

// TestForcedDrainPreempts verifies an expired drain deadline force-cancels
// running simulations instead of hanging.
func TestForcedDrainPreempts(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	_, v := postJob(t, ts, `{"kernel":"hotspot.kernel","scale":4}`, "")
	waitState(t, ts, v.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("forced drain returned nil, want deadline error")
	}
	// Workers still exited: Shutdown only returns once wg.Wait completes,
	// and the preempted simulation must have yielded quickly.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	if got := s.viewByID(t, v.ID); got.State != StateCancelled {
		t.Errorf("job after forced drain: state %q, want cancelled", got.State)
	}
}

// TestKernelResultCrosschecksHarness proves the daemon's kernel-job result
// is the same document vgiw-experiments produces for the same spec — every
// simulated field byte-compatible, with only the host-timing telemetry
// (elapsed/stage milliseconds, inherently wall-clock) allowed to differ.
func TestKernelResultCrosschecksHarness(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, v := postJob(t, ts, `{"kernel":"bfs.kernel2","lvc_kb":16,"mem":"writethrough"}`, "?wait=1")
	if resp.StatusCode != http.StatusOK || v.State != StateDone {
		t.Fatalf("status %d state %q (reason %q), want 200/done", resp.StatusCode, v.State, v.Reason)
	}

	spec := bench.JobSpec{Kernel: "bfs.kernel2", LVCKB: 16, Mem: "writethrough"}
	opt, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 2
	ks, _ := kernels.ByName(spec.Kernel)
	kr, err := bench.RunOne(ks, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := bench.BuildJSON([]*bench.KernelRun{kr}, opt.Scale)

	var got bench.JSONReport
	if err := json.Unmarshal(v.Result, &got); err != nil {
		t.Fatalf("daemon result is not a JSONReport: %v\n%s", err, v.Result)
	}
	stripHostTimings(&got)
	stripHostTimings(&want)
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("daemon result diverges from harness run:\ndaemon: %s\nharness: %s", gb, wb)
	}
}

// stripHostTimings zeroes the wall-clock telemetry fields that legitimately
// differ between two executions of the same simulation.
func stripHostTimings(r *bench.JSONReport) {
	for i := range r.Runs {
		r.Runs[i].ElapsedMS = 0
		r.Runs[i].InstanceMS = 0
		r.Runs[i].CompileMS = 0
		r.Runs[i].PlaceMS = 0
		r.Runs[i].SimulateMS = 0
	}
	r.WallClockMS = 0
	r.StageInstanceMS = 0
	r.StageCompileMS = 0
	r.StagePlaceMS = 0
	r.StageSimulateMS = 0
}

// TestTraceEndpoint runs a traced job and fetches its Chrome trace.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, v := postJob(t, ts, `{"kernel":"bfs.kernel1","trace":true,"trace_filter":"vgiw,cvt"}`, "?wait=1")
	if resp.StatusCode != http.StatusOK || v.State != StateDone {
		t.Fatalf("status %d state %q, want 200/done", resp.StatusCode, v.State)
	}

	tr, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", tr.StatusCode)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace has no events")
	}

	// An untraced job must refuse the trace endpoint.
	_, plain := postJob(t, ts, `{"kernel":"bfs.kernel1"}`, "?wait=1")
	tr2, err := http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tr2.Body.Close()
	if tr2.StatusCode != http.StatusConflict {
		t.Errorf("untraced job trace fetch: status %d, want 409", tr2.StatusCode)
	}
}

// TestSourceJob compiles the example kasm kernel through the API.
func TestSourceJob(t *testing.T) {
	src, err := os.ReadFile("../../examples/kasm/kernel.kasm")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body, _ := json.Marshal(map[string]any{"source": string(src)})
	resp, v := postJob(t, ts, string(body), "?wait=1")
	if resp.StatusCode != http.StatusOK || v.State != StateDone {
		t.Fatalf("status %d state %q (reason %q), want 200/done", resp.StatusCode, v.State, v.Reason)
	}
	var rep CompileReport
	if err := json.Unmarshal(v.Result, &rep); err != nil {
		t.Fatalf("source job result: %v\n%s", err, v.Result)
	}
	if rep.Kernel != "absdiff" || rep.Blocks != 3 || len(rep.Placements) != 3 {
		t.Errorf("compile report = %+v, want absdiff with 3 placed blocks", rep)
	}

	// Parse errors surface as a failed job, not a hung one.
	resp2, v2 := postJob(t, ts, `{"source":"kernel broken\n@0 entry:\n  r0 = bogus\n"}`, "?wait=1")
	if resp2.StatusCode != http.StatusOK || v2.State != StateFailed {
		t.Fatalf("bad source: status %d state %q, want failed", resp2.StatusCode, v2.State)
	}
}

// TestBadSpecsRejected covers the 400 path.
func TestBadSpecsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for _, body := range []string{
		`{`,
		`{}`,
		`{"kernel":"no.such.kernel"}`,
		`{"kernel":"bfs.kernel1","unknown_field":1}`,
		`{"kernel":"bfs.kernel1","suite":true}`,
		`{"kernel":"bfs.kernel1","trace_filter":"vgiw"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestListAndNotFound covers GET /v1/jobs and 404s.
func TestListAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, v := postJob(t, ts, `{"kernel":"bfs.kernel1"}`, "?wait=1")

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Fatalf("list = %+v, want the one submitted job", list.Jobs)
	}
	if len(list.Jobs[0].Result) != 0 {
		t.Error("list view includes result payloads")
	}

	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
