// Package server turns the experiment harness into a multi-tenant
// simulation service: an HTTP/JSON job API with a bounded queue, admission
// control, per-job deadlines, singleflight result dedup, live Prometheus
// metrics, and graceful drain. It is the shape of an inference-serving
// frontend — queue, backpressure, deadlines, drain — grafted onto the
// simulators.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/trace"
)

// execution is one simulation actually running (or queued to run). Several
// jobs whose specs share a content key attach to one execution — the
// singleflight dedup — and all serve its byte-identical result. An execution
// is cancelled only when every attached job has detached (or the server
// force-drains).
type execution struct {
	spec bench.JobSpec // normalized; TimeoutMS stripped (it is per job)

	ctx    context.Context
	cancel context.CancelCauseFunc

	// sink captures the run's cycle-level trace when spec.Trace is set.
	// Live subscribers (GET /v1/jobs/{id}/events) tee off it.
	sink *trace.Sink

	// fromStore marks an execution that never ran: its result was served
	// from the persistent result store (surfaced as `"cached": "store"`).
	fromStore bool

	// Guarded by the server mutex.
	refs      int  // attached (non-detached, non-terminal) jobs
	started   bool // a worker has picked this execution up
	startedAt time.Time
	createdAt time.Time

	// Written by the worker before done is closed; reading after <-done is
	// race-free (channel close is a happens-before edge).
	result   []byte          // final result JSON (nil on error)
	metrics  *trace.Snapshot // the run's vgiw-metrics/v1 snapshot (nil for source jobs)
	stages   bench.StageTimes
	err      error
	finished time.Time

	done chan struct{}
}

// Job is one client submission: a spec, a deadline, and a reference to the
// (possibly shared) execution computing its result.
type Job struct {
	ID      string
	Spec    bench.JobSpec // as submitted (normalized, deadline included)
	Tenant  string        // who submitted it (X-VGIW-Tenant; "default" for bare clients)
	Shared  bool          // attached to an execution another job started
	created time.Time

	exec *execution

	// Guarded by the server mutex.
	detached bool   // cancelled independently of the execution
	cause    string // why it detached: "cancelled", "deadline", "disconnect"
	timer    *time.Timer

	// done closes when the job detaches; waiters select on it alongside
	// exec.done.
	done chan struct{}
}

// Job states reported by the API.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// stateLocked resolves the job's current state and (for terminal states) the
// reason. Caller holds the server mutex.
func (j *Job) stateLocked() (state, reason string) {
	if j.detached {
		return StateCancelled, j.cause
	}
	e := j.exec
	select {
	case <-e.done:
		switch {
		case e.err == nil:
			return StateDone, ""
		case errors.Is(e.err, context.Canceled), errors.Is(e.err, context.DeadlineExceeded):
			return StateCancelled, e.err.Error()
		default:
			return StateFailed, e.err.Error()
		}
	default:
	}
	if e.started {
		return StateRunning, ""
	}
	return StateQueued, ""
}

// terminal reports whether state is one clients can stop polling on.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Terminal reports whether the view's state is one clients can stop
// polling on.
func (v *JobView) Terminal() bool { return terminal(v.State) }

// JobView is the wire form of a job's status.
type JobView struct {
	ID      string        `json:"id"`
	State   string        `json:"state"`
	Reason  string        `json:"reason,omitempty"`
	Spec    bench.JobSpec `json:"spec"`
	Tenant  string        `json:"tenant,omitempty"` // submitting tenant (never part of the content key)
	Shared  bool          `json:"shared,omitempty"` // deduped onto an in-flight execution
	Created time.Time     `json:"created"`
	Started *time.Time    `json:"started,omitempty"`
	Ended   *time.Time    `json:"ended,omitempty"`

	// Cached is "store" when the result was served from the persistent
	// result store instead of a fresh execution (byte-identical either way).
	Cached string `json:"cached,omitempty"`

	// Result is the job's result document once State is "done": a
	// bench.JSONReport for kernel and suite jobs, a CompileReport for
	// source jobs. Byte-identical across every job that shared the
	// execution.
	Result json.RawMessage `json:"result,omitempty"`
}
