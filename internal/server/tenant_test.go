package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"default", "team-a", "a", "A.b_c-9", strings.Repeat("x", 64)} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "sémantics", "a/b", `x"y`, strings.Repeat("x", 65), "new\nline"} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true, want false", bad)
		}
	}
}

// TestTenantPropagation pins the X-VGIW-Tenant plumbing: the header lands in
// the job view, bare clients get the default tenant, per-tenant admission
// counters appear on /metrics, and the tenant never perturbs the content key
// (two tenants submitting the same spec share one execution).
func TestTenantPropagation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	submit := func(tenant string) JobView {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?wait=1",
			strings.NewReader(`{"kernel":"bfs.kernel1"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return decodeView(t, resp)
	}

	if v := submit("sweep-a"); v.Tenant != "sweep-a" || v.State != StateDone {
		t.Fatalf("tenant submit: %+v", v)
	}
	if v := submit(""); v.Tenant != DefaultTenant {
		t.Fatalf("bare submit got tenant %q, want %q", v.Tenant, DefaultTenant)
	}
	// A second tenant submitting the same spec must still dedup/store-share:
	// tenant is metadata, never part of the key. (With no store configured
	// and the first execution finished, this runs again — but the tenant
	// counter must label the right tenant either way.)
	if v := submit("sweep-b"); v.Tenant != "sweep-b" {
		t.Fatalf("second tenant: %+v", v)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`vgiw_metric{name="vgiwd/tenant_admitted/sweep-a"} 1`,
		`vgiw_metric{name="vgiwd/tenant_admitted/sweep-b"} 1`,
		`vgiw_metric{name="vgiwd/tenant_admitted/default"} 1`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// An invalid tenant id is rejected before admission.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"kernel":"bfs.kernel1"}`))
	req.Header.Set(TenantHeader, "bad tenant!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant admitted: status %d", resp.StatusCode)
	}
	if got := s.Metrics().Counter("vgiwd/jobs_admitted"); got != 3 {
		t.Errorf("jobs_admitted = %d, want 3", got)
	}
}
