package server

import (
	"testing"

	"vgiw/internal/leaktest"
)

// TestMain gates the whole suite on goroutine hygiene: job runners, SSE
// streams, and watchdog tickers started by any test here must all be gone
// (within leaktest's grace period) once the last test finishes.
func TestMain(m *testing.M) {
	leaktest.Main(m)
}
