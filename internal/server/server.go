package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/store"
	"vgiw/internal/trace"
)

// Config sizes the daemon's robustness core.
type Config struct {
	// QueueDepth bounds the number of executions admitted but not yet
	// finished being picked up. A full queue rejects submissions with 429 +
	// Retry-After rather than growing goroutines or memory without bound.
	// 0 = 64.
	QueueDepth int
	// Workers is the number of executions simulated concurrently. 0 = 2
	// (each suite execution fans its kernels across RunParallelism workers
	// of its own, so a small number of executions already saturates the
	// host).
	Workers int
	// RunParallelism is the per-execution harness parallelism (Options.
	// Parallelism). 0 = NumCPU/Workers, so the default configuration
	// saturates without oversubscribing.
	RunParallelism int
	// DefaultTimeout applies to jobs that set no timeout_ms; MaxTimeout
	// caps what a client may request. The deadline covers queue wait plus
	// execution. Defaults: 2m / 10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429 responses. 0 = 1s.
	RetryAfter time.Duration
	// MaxJobs caps retained job records; the oldest terminal jobs are
	// evicted first. 0 = 1024.
	MaxJobs int
	// Store is the persistent result store. Submissions are looked up here
	// before the singleflight path (a hit is served without executing,
	// marked `"cached": "store"`), and every successful execution is
	// flushed here on completion. nil = persistence disabled.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.RunParallelism <= 0 {
		c.RunParallelism = max(1, runtime.NumCPU()/c.Workers)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// Server is the simulation-as-a-service daemon core: a bounded job queue in
// front of a worker pool running the bench harness, with per-job deadlines,
// singleflight dedup on job content keys, and live metrics.
type Server struct {
	cfg   Config
	cache *bench.ArtifactCache
	store *store.Store // nil = persistence disabled

	// reg holds the server's own counters/histograms ("vgiwd/..."); simReg
	// accumulates the per-kernel metrics registries folded from completed
	// runs. Both are exposed on GET /metrics.
	reg    *trace.Registry
	simReg *trace.Registry

	baseCtx context.Context
	stop    context.CancelCauseFunc

	mu       sync.Mutex
	draining bool
	seq      uint64
	jobs     map[string]*Job
	order    []string                     // insertion order, for listing + eviction
	byKey    map[bench.JobSpec]*execution // in-flight executions, by content key

	queue chan *execution
	wg    sync.WaitGroup
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   bench.NewArtifactCache(),
		store:   cfg.Store,
		reg:     trace.NewRegistry(),
		simReg:  trace.NewRegistry(),
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*Job),
		byKey:   make(map[bench.JobSpec]*execution),
		queue:   make(chan *execution, cfg.QueueDepth),
	}
	// Pre-touch the counters overload/drain tests assert on, so /metrics
	// exposes them as explicit zeros from the first scrape.
	for _, name := range []string{
		"vgiwd/jobs_admitted", "vgiwd/jobs_rejected", "vgiwd/jobs_deduped",
		"vgiwd/jobs_completed", "vgiwd/jobs_failed", "vgiwd/jobs_cancelled",
		"vgiwd/runs_executed", "vgiwd/queue_depth",
		"vgiwd/store_hits", "vgiwd/store_misses", "vgiwd/store_errors",
		"vgiwd/stream_dropped",
	} {
		s.reg.Add(name, 0)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Metrics exposes the server's own registry (tests and the drain path read
// final counters from it).
func (s *Server) Metrics() *trace.Registry { return s.reg }

// errQueueFull is returned by Submit when admission control rejects a job.
var errQueueFull = errors.New("server: queue full")

// errDraining is returned by Submit once Shutdown has begun.
var errDraining = errors.New("server: draining")

// TenantHeader is the request header carrying the submitting tenant's id,
// and DefaultTenant is what a bare client (no header) is filed under — so
// per-tenant accounting always has a real key.
const (
	TenantHeader  = "X-VGIW-Tenant"
	DefaultTenant = "default"
)

// ValidTenant reports whether a tenant id is acceptable: 1–64 characters
// from [A-Za-z0-9._-]. Tenant ids become metric-name components, so the
// charset is restricted to keep the exposition parseable and to bound what
// an arbitrary client can inject into it.
func ValidTenant(t string) bool {
	if len(t) == 0 || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// errBadTenant is returned by SubmitTenant for ids ValidTenant rejects.
var errBadTenant = errors.New("server: invalid tenant id (want 1-64 chars of [A-Za-z0-9._-])")

// Submit admits one job under the default tenant. See SubmitTenant.
func (s *Server) Submit(spec bench.JobSpec) (*Job, error) {
	return s.SubmitTenant(spec, "")
}

// SubmitTenant admits one job: it normalizes the spec, dedups it against
// in-flight executions by content key, and otherwise enqueues a new
// execution — non-blocking, so a full queue rejects with errQueueFull (the
// HTTP layer's 429) instead of stalling the client or growing without bound.
// The tenant id ("" = DefaultTenant) is job metadata for quotas and metric
// labels; it is never part of the content key, so jobs from different
// tenants still dedup onto one execution.
func (s *Server) SubmitTenant(spec bench.JobSpec, tenant string) (*Job, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !ValidTenant(tenant) {
		return nil, errBadTenant
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	key := spec.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}

	// Persistent-store lookup comes before the singleflight path: a hit is
	// served without queueing anything, byte-identical to the execution that
	// produced it (possibly in a previous process). Traced jobs always run —
	// a stored result carries no event sink to stream or export.
	if s.store != nil && !spec.Trace {
		if j, ok := s.admitFromStoreLocked(spec, key, tenant); ok {
			return j, nil
		}
	}

	e, shared := s.byKey[key]
	if !shared {
		ctx, cancel := context.WithCancelCause(s.baseCtx)
		e = &execution{
			spec:      key,
			ctx:       ctx,
			cancel:    cancel,
			createdAt: time.Now(),
			done:      make(chan struct{}),
		}
		if spec.Trace {
			mask, err := trace.ParseCats(spec.TraceFilter)
			if err != nil {
				cancel(err)
				return nil, err
			}
			e.sink = trace.NewSink(mask)
		}
		select {
		case s.queue <- e:
		default:
			cancel(errQueueFull)
			s.reg.Add("vgiwd/jobs_rejected", 1)
			return nil, errQueueFull
		}
		s.byKey[key] = e
	} else {
		s.reg.Add("vgiwd/jobs_deduped", 1)
	}

	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Spec:    spec,
		Tenant:  tenant,
		Shared:  shared,
		created: time.Now(),
		exec:    e,
		done:    make(chan struct{}),
	}
	e.refs++
	j.timer = time.AfterFunc(timeout, func() { s.detach(j, "deadline") })
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()
	s.reg.Add("vgiwd/jobs_admitted", 1)
	s.reg.Add("vgiwd/tenant_admitted/"+tenant, 1)
	s.reg.Set("vgiwd/queue_depth", uint64(len(s.queue)))
	return j, nil
}

// admitFromStoreLocked tries to satisfy a submission from the persistent
// store. On a hit it files a pre-completed job (no execution runs, no
// deadline timer — the result already exists) and reports true. Store errors
// are counted and fall through to a real execution: a corrupt entry must
// never wedge the job path. Caller holds the server mutex.
func (s *Server) admitFromStoreLocked(spec, key bench.JobSpec, tenant string) (*Job, bool) {
	ent, err := s.store.Get(store.Key(key))
	if err != nil {
		s.reg.Add("vgiwd/store_errors", 1)
		return nil, false
	}
	if ent == nil {
		s.reg.Add("vgiwd/store_misses", 1)
		return nil, false
	}
	s.reg.Add("vgiwd/store_hits", 1)
	now := time.Now()
	e := &execution{
		spec:      key,
		fromStore: true,
		createdAt: now,
		finished:  now,
		result:    ent.Result,
		metrics:   ent.Metrics,
		done:      make(chan struct{}),
	}
	close(e.done) // born terminal
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Spec:    spec,
		Tenant:  tenant,
		created: now,
		exec:    e,
		done:    make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()
	s.reg.Add("vgiwd/jobs_admitted", 1)
	s.reg.Add("vgiwd/tenant_admitted/"+tenant, 1)
	s.reg.Add("vgiwd/jobs_completed", 1)
	return j, true
}

// Get looks a job up by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel detaches a job by ID (the DELETE handler). It reports whether the
// job existed.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		s.detach(j, "cancelled")
	}
	return ok
}

// detach removes one job from its execution: the job becomes terminal
// ("cancelled" with the given cause) and, when it was the execution's last
// attached job, the execution's context is cancelled so the simulator
// preempts. Safe to call multiple times; only the first wins.
func (s *Server) detach(j *Job, cause string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.detached {
		return
	}
	if state, _ := j.stateLocked(); terminal(state) {
		return // execution already finished; nothing to cancel
	}
	j.detached = true
	j.cause = cause
	if j.timer != nil { // store-hit jobs are born terminal and carry no timer
		j.timer.Stop()
	}
	close(j.done)
	j.exec.refs--
	if j.exec.refs == 0 {
		j.exec.cancel(fmt.Errorf("server: job %s", cause))
	}
	s.reg.Add("vgiwd/jobs_cancelled", 1)
}

// View renders a job's wire form. Terminal jobs include the result document.
func (s *Server) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	state, reason := j.stateLocked()
	v := JobView{
		ID:      j.ID,
		State:   state,
		Reason:  reason,
		Spec:    j.Spec,
		Tenant:  j.Tenant,
		Shared:  j.Shared,
		Created: j.created,
	}
	e := j.exec
	if e.fromStore {
		v.Cached = "store"
	}
	if e.started {
		t := e.startedAt
		v.Started = &t
	}
	if state == StateDone {
		v.Result = json.RawMessage(e.result)
	}
	if terminal(state) && !e.finished.IsZero() {
		t := e.finished
		v.Ended = &t
	}
	return v
}

// Wait blocks until the job is terminal or ctx is done, and reports whether
// the job reached a terminal state.
func (s *Server) Wait(ctx context.Context, j *Job) bool {
	select {
	case <-j.exec.done:
		return true
	case <-j.done:
		return true
	case <-ctx.Done():
		// Lost race: terminal and ctx-done at once still counts.
		select {
		case <-j.exec.done:
			return true
		case <-j.done:
			return true
		default:
			return false
		}
	}
}

// evictLocked drops the oldest terminal jobs once the retained-record cap is
// exceeded. Non-terminal jobs are never evicted (their count is bounded by
// the queue depth plus dedup attachments, which MaxJobs also caps overall
// growth of).
func (s *Server) evictLocked() {
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 {
			if state, _ := j.stateLocked(); terminal(state) {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// worker consumes executions until the queue closes (drain) and runs each
// one. Worker count — not submission rate — bounds simulation concurrency.
func (s *Server) worker() {
	defer s.wg.Done()
	for e := range s.queue {
		s.runExecution(e)
	}
}

// runExecution simulates one admitted execution and publishes its result.
func (s *Server) runExecution(e *execution) {
	s.mu.Lock()
	e.started = true
	e.startedAt = time.Now()
	s.reg.Set("vgiwd/queue_depth", uint64(len(s.queue)))
	s.mu.Unlock()
	s.reg.Observe("vgiwd/queue_wait_ms", e.startedAt.Sub(e.createdAt).Milliseconds())

	var result []byte
	var met *trace.Registry
	var stages bench.StageTimes
	err := e.ctx.Err() // a fully-detached or drain-killed queued job runs nothing
	if err != nil {
		err = context.Cause(e.ctx)
	} else {
		result, met, stages, err = s.execute(e)
	}

	s.mu.Lock()
	e.result, e.err = result, err
	e.stages = stages
	if met != nil {
		e.metrics = &trace.Snapshot{
			Schema:  trace.MetricsSchema,
			Scale:   e.spec.Scale,
			Metrics: met.Flat(),
		}
	}
	e.finished = time.Now()
	delete(s.byKey, e.spec)
	n := uint64(e.refs)
	switch {
	case err == nil:
		s.reg.Add("vgiwd/jobs_completed", n)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.reg.Add("vgiwd/jobs_cancelled", n)
	default:
		s.reg.Add("vgiwd/jobs_failed", n)
	}
	s.reg.Add("vgiwd/runs_executed", 1)
	close(e.done)
	s.mu.Unlock()
	s.reg.Observe("vgiwd/run_ms", e.finished.Sub(e.startedAt).Milliseconds())
	if err == nil {
		s.flushToStore(e)
	}
}

// flushToStore files a successful execution's result in the persistent
// store. Failures are counted, not fatal: persistence is an add-on to the
// serving path, never a gate on it. Called after e.done is closed, so the
// result fields are stable.
func (s *Server) flushToStore(e *execution) {
	if s.store == nil {
		return
	}
	err := s.store.Put(&store.Entry{
		Spec: e.spec,
		Host: store.NewHostMeta(),
		StageMS: store.StageMS{
			Instance: float64(e.stages.Instance.Nanoseconds()) / 1e6,
			Compile:  float64(e.stages.Compile.Nanoseconds()) / 1e6,
			Place:    float64(e.stages.Place.Nanoseconds()) / 1e6,
			Simulate: float64(e.stages.Simulate.Nanoseconds()) / 1e6,
		},
		Result:  e.result,
		Metrics: e.metrics,
	})
	if err != nil {
		s.reg.Add("vgiwd/store_errors", 1)
	}
}

// execute dispatches on the spec kind and marshals the result document. It
// also returns the run's simulated-metrics registry and aggregate host stage
// split (zero for source jobs, which simulate nothing), which runExecution
// snapshots for the store and the /events metrics frame.
func (s *Server) execute(e *execution) ([]byte, *trace.Registry, bench.StageTimes, error) {
	if e.spec.Source != "" {
		b, err := s.compileSource(e.ctx, e.spec.Source)
		return b, nil, bench.StageTimes{}, err
	}
	opt, err := e.spec.Options()
	if err != nil {
		return nil, nil, bench.StageTimes{}, err
	}
	opt.Parallelism = s.cfg.RunParallelism
	opt.Cache = s.cache
	opt.Trace = e.sink

	if e.spec.Suite {
		suite, err := bench.RunSuiteCtx(e.ctx, opt)
		if err != nil {
			return nil, nil, bench.StageTimes{}, err
		}
		s.foldRunMetrics(suite.Metrics, suite.Runs)
		b, err := json.Marshal(suite.Report(opt.Scale))
		return b, suite.Metrics, suite.Stages, err
	}
	kr, err := bench.RunOneCtx(e.ctx, e.spec.Specs()[0], opt)
	if err != nil {
		return nil, nil, bench.StageTimes{}, err
	}
	runs := []*bench.KernelRun{kr}
	met := bench.CollectMetrics(runs)
	s.foldRunMetrics(met, runs)
	b, err := json.Marshal(bench.BuildJSON(runs, opt.Scale))
	return b, met, kr.Stages, err
}

// foldRunMetrics accumulates completed runs' simulated metrics into the
// /metrics exposition and their host-side stage split into the per-stage
// latency histograms.
func (s *Server) foldRunMetrics(met *trace.Registry, runs []*bench.KernelRun) {
	s.simReg.Merge(met)
	for _, kr := range runs {
		s.reg.Observe("vgiwd/stage_instance_ms", kr.Stages.Instance.Milliseconds())
		s.reg.Observe("vgiwd/stage_compile_ms", kr.Stages.Compile.Milliseconds())
		s.reg.Observe("vgiwd/stage_place_ms", kr.Stages.Place.Milliseconds())
		s.reg.Observe("vgiwd/stage_simulate_ms", kr.Stages.Simulate.Milliseconds())
	}
}

// SnapshotRegistry merges the server's own counters with the accumulated
// simulation metrics into one registry — the same view /metrics exposes,
// reusable for the shutdown snapshot the daemon persists to the store.
func (s *Server) SnapshotRegistry() *trace.Registry {
	merged := trace.NewRegistry()
	merged.Merge(s.reg)
	merged.Merge(s.simReg)
	return merged
}

// WriteMetrics renders the merged server + simulation registries as
// Prometheus text exposition.
func (s *Server) WriteMetrics(w io.Writer) error {
	return s.SnapshotRegistry().WritePrometheus(w)
}

// Draining reports whether Shutdown has begun (readyz turns 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: stop admitting, let workers finish the queued
// and in-flight executions, and — if ctx expires first — cancel the base
// context so every running simulation preempts at its next ctx poll, then
// wait for the workers to exit. It returns nil on a clean drain and
// ctx.Err() when the drain had to force-cancel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	// Submissions check draining under this same mutex before sending, so
	// closing the queue here cannot race a send.
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stop(fmt.Errorf("server: drain timeout: %w", context.Cause(ctx)))
		// The simulators poll their contexts every few thousand cycles, so
		// this second wait is bounded by host milliseconds, not sim time.
		<-done
		return ctx.Err()
	}
}
