package server

// The history API reads the persistent result store back out over HTTP:
// GET /v1/history lists stored entries (filterable), GET /v1/history/{key}
// returns one full entry, and GET /v1/history/diff compares the metric
// snapshots of two entries — the server-side half of the regression story
// cmd/benchgate implements offline.

import (
	"net/http"
	"sort"
	"strings"
	"time"

	"vgiw/internal/bench"
	"vgiw/internal/store"
)

// HistoryEntry is the list-level summary of one stored result (the full
// entry, result document included, is at /v1/history/{key}).
type HistoryEntry struct {
	Key     string         `json:"key"`
	Kind    string         `json:"kind"`
	Kernel  string         `json:"kernel,omitempty"`
	Spec    bench.JobSpec  `json:"spec"`
	Created time.Time      `json:"created"`
	Host    store.HostMeta `json:"host"`
	Metrics int            `json:"metrics,omitempty"` // metric count in the snapshot
}

// storeOr404 fetches the server's store, answering 404 when persistence is
// disabled (the routes exist; the resource does not).
func (s *Server) storeOr404(w http.ResponseWriter) (*store.Store, bool) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "result store disabled; start vgiwd with -store-dir")
		return nil, false
	}
	return s.store, true
}

// handleHistory lists stored results in stable (created, key) order.
// Filters: ?kernel= (exact kernel name), ?kind= (kernel|suite|source),
// ?key= (exact spec content key).
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	entries, lerr := st.List()
	q := r.URL.Query()
	kernel, kind, key := q.Get("kernel"), q.Get("kind"), q.Get("key")
	out := make([]HistoryEntry, 0, len(entries))
	for _, e := range entries {
		if kernel != "" && e.Spec.Kernel != kernel {
			continue
		}
		if kind != "" && e.Kind != kind {
			continue
		}
		if key != "" && e.Key != key {
			continue
		}
		h := HistoryEntry{
			Key:     e.Key,
			Kind:    e.Kind,
			Kernel:  e.Spec.Kernel,
			Spec:    e.Spec,
			Created: e.Created,
			Host:    e.Host,
		}
		if e.Metrics != nil {
			h.Metrics = len(e.Metrics.Metrics)
		}
		out = append(out, h)
	}
	resp := struct {
		Entries []HistoryEntry `json:"entries"`
		Skipped string         `json:"skipped,omitempty"` // unreadable files List stepped over
	}{Entries: out}
	if lerr != nil {
		resp.Skipped = lerr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHistoryGet returns one stored entry in full, result bytes included.
func (s *Server) handleHistoryGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	key := r.PathValue("key")
	e, err := st.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if e == nil {
		writeError(w, http.StatusNotFound, "no stored result for key %s", key)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// MetricDelta is one metric that differs between two stored snapshots.
type MetricDelta struct {
	Name  string `json:"name"`
	From  uint64 `json:"from"`
	To    uint64 `json:"to"`
	Delta int64  `json:"delta"` // to - from
}

// HistoryDiff is the wire form of /v1/history/diff.
type HistoryDiff struct {
	From        string        `json:"from"`
	To          string        `json:"to"`
	FromCreated time.Time     `json:"from_created"`
	ToCreated   time.Time     `json:"to_created"`
	Changed     []MetricDelta `json:"changed"`
	OnlyFrom    []string      `json:"only_from,omitempty"`
	OnlyTo      []string      `json:"only_to,omitempty"`
	Unchanged   int           `json:"unchanged"`
}

// DiffSnapshots compares two metric maps, name-sorted. Shared by the HTTP
// diff endpoint and benchgate's offline gate.
func DiffSnapshots(from, to map[string]uint64, prefix string) (changed []MetricDelta, onlyFrom, onlyTo []string, unchanged int) {
	for name, fv := range from {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		tv, ok := to[name]
		switch {
		case !ok:
			onlyFrom = append(onlyFrom, name)
		case tv == fv:
			unchanged++
		default:
			changed = append(changed, MetricDelta{Name: name, From: fv, To: tv, Delta: int64(tv) - int64(fv)})
		}
	}
	for name := range to {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if _, ok := from[name]; !ok {
			onlyTo = append(onlyTo, name)
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i].Name < changed[j].Name })
	sort.Strings(onlyFrom)
	sort.Strings(onlyTo)
	return changed, onlyFrom, onlyTo, unchanged
}

// handleHistoryDiff compares the metric snapshots of two stored entries:
// GET /v1/history/diff?from=<key>&to=<key>[&prefix=<metric prefix>].
func (s *Server) handleHistoryDiff(w http.ResponseWriter, r *http.Request) {
	st, ok := s.storeOr404(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	fromKey, toKey := q.Get("from"), q.Get("to")
	if fromKey == "" || toKey == "" {
		writeError(w, http.StatusBadRequest, "diff needs both ?from= and ?to= entry keys")
		return
	}
	load := func(key string) (*store.Entry, bool) {
		e, err := st.Get(key)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return nil, false
		}
		if e == nil {
			writeError(w, http.StatusNotFound, "no stored result for key %s", key)
			return nil, false
		}
		return e, true
	}
	from, ok := load(fromKey)
	if !ok {
		return
	}
	to, ok := load(toKey)
	if !ok {
		return
	}
	metricsOf := func(e *store.Entry) map[string]uint64 {
		if e.Metrics == nil {
			return nil
		}
		return e.Metrics.Metrics
	}
	d := HistoryDiff{
		From:        from.Key,
		To:          to.Key,
		FromCreated: from.Created,
		ToCreated:   to.Created,
	}
	d.Changed, d.OnlyFrom, d.OnlyTo, d.Unchanged = DiffSnapshots(metricsOf(from), metricsOf(to), q.Get("prefix"))
	if d.Changed == nil {
		d.Changed = []MetricDelta{}
	}
	writeJSON(w, http.StatusOK, d)
}
