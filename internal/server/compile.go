package server

import (
	"context"
	"encoding/json"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kasm"
)

// CompileReport is the result document of a source job: the compiler
// pipeline's per-block summary, the JSON twin of kasmc's text output. Source
// jobs carry no workload, so nothing is simulated.
type CompileReport struct {
	Kernel     string        `json:"kernel"`
	Blocks     int           `json:"blocks"`
	Instrs     int           `json:"instructions"`
	Regs       int           `json:"registers"`
	LiveValues int           `json:"live_values"`
	Placements []BlockReport `json:"placements"`
}

// BlockReport summarizes one basic block's dataflow graph and placement.
type BlockReport struct {
	Index        int     `json:"index"`
	Label        string  `json:"label"`
	Barrier      bool    `json:"barrier,omitempty"`
	Nodes        int     `json:"nodes"`
	Replicas     int     `json:"replicas"`
	CriticalPath int     `json:"critical_path"`
	AvgHops      float64 `json:"avg_hop_latency"`
	Terminator   string  `json:"terminator"`
}

// compileSource runs the compiler pipeline (parse, fabric-fitted compile,
// per-block place) on kasm source and marshals a CompileReport. The ctx
// polls sit between blocks — placement of a single block is fast, so that is
// granularity enough.
//
//vgiw:coarsepoll
func (s *Server) compileSource(ctx context.Context, src string) ([]byte, error) {
	k, err := kasm.Parse(src)
	if err != nil {
		return nil, err
	}
	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// The daemon's compile path always verifies: a source job is a
	// compile-service request, and the verifier's cost is noise next to the
	// HTTP round trip.
	ck, err := compile.CompileFitted(k, grid.Fits, compile.Checked())
	if err != nil {
		return nil, err
	}
	rep := CompileReport{
		Kernel:     k.Name,
		Blocks:     len(k.Blocks),
		Instrs:     k.NumInstrs(),
		Regs:       k.NumRegs,
		LiveValues: ck.LV.NumIDs,
	}
	for bi, g := range ck.DFGs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		blk := k.Blocks[bi]
		replicas := fabric.MaxReplicasFor(grid, g)
		p, err := fabric.Place(grid, g, replicas)
		if err != nil {
			return nil, err
		}
		if err := fabric.VerifyPlaced("place", grid, p, ck.LV.NumIDs); err != nil {
			return nil, err
		}
		rep.Placements = append(rep.Placements, BlockReport{
			Index:        bi,
			Label:        blk.Label,
			Barrier:      blk.Barrier,
			Nodes:        len(g.Nodes),
			Replicas:     replicas,
			CriticalPath: g.CriticalPathLen(),
			AvgHops:      p.AvgHops,
			Terminator:   blk.Term.String(),
		})
	}
	return json.Marshal(rep)
}
