package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"vgiw/internal/bench"
)

// Handler builds the daemon's HTTP API on the Go 1.22 pattern mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/history", s.handleHistory)
	mux.HandleFunc("GET /v1/history/diff", s.handleHistoryDiff)
	mux.HandleFunc("GET /v1/history/{key}", s.handleHistoryGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are sent; nothing left to report
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit admits a job. With ?wait=1 the response blocks until the job
// is terminal — and, symmetrically, a client that disconnects mid-wait
// cancels its job (a shared execution keeps running for its other holders).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec bench.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, err := s.SubmitTenant(spec, r.Header.Get(TenantHeader))
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, "queue full, retry later")
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if !s.Wait(r.Context(), j) {
			// Client gone (or the server-side write deadline fired): treat
			// like a hangup and release this job's claim on the execution.
			s.detach(j, "disconnect")
		}
	}
	status := http.StatusAccepted
	v := s.View(j)
	if terminal(v.State) {
		status = http.StatusOK
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, status, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	views := make([]JobView, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Get(id); ok {
			v := s.View(j)
			v.Result = nil // list is a summary; fetch the job for its result
			views = append(views, v)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

// handleGet reports one job. ?wait=1 blocks until terminal or the client
// hangs up; a read never cancels the job.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.Wait(r.Context(), j)
	}
	writeJSON(w, http.StatusOK, s.View(j))
}

// handleTrace streams the job's cycle-level trace as Chrome trace-event
// JSON. The job must have been submitted with "trace": true and be done.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.Spec.Trace {
		writeError(w, http.StatusConflict, "job was not submitted with trace enabled")
		return
	}
	s.mu.Lock()
	state, _ := j.stateLocked()
	sink := j.exec.sink
	s.mu.Unlock()
	if !terminal(state) {
		writeError(w, http.StatusConflict, "job still %s; trace is available once it finishes", state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	sink.WriteChromeTrace(w) //nolint:errcheck // mid-stream failure means the client went away
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.detach(j, "cancelled")
	writeJSON(w, http.StatusOK, s.View(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz flips to 503 once drain begins, so load balancers stop
// routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w) //nolint:errcheck
}
