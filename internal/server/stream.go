package server

// Live job streaming: GET /v1/jobs/{id}/events pushes the job's trace events
// over Server-Sent Events as the simulation emits them, then a final metrics
// snapshot and a done frame. Each connection owns a bounded subscriber ring
// on the execution's trace.Sink; a slow or disconnected consumer drops
// events — counted in vgiwd/stream_dropped — and never slows the simulator
// or cancels the job. Every `trace` frame's data payload is byte-identical
// to the record GET /v1/jobs/{id}/trace exports for the same event, so a
// lossless stream is an in-order prefix of the final Chrome trace.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"vgiw/internal/trace"
)

// Subscriber ring bounds for ?buf= (events buffered per connection).
const (
	defaultStreamBuf = 4096
	maxStreamBuf     = 1 << 16
)

// writeSSE emits one Server-Sent Event frame.
func writeSSE(w io.Writer, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// writeTraceFrame renders one trace event as an SSE frame whose data bytes
// match the Chrome exporter's record for the same event.
func writeTraceFrame(w io.Writer, e *trace.Event) error {
	b, err := trace.MarshalChromeEvent(e)
	if err != nil {
		return err
	}
	return writeSSE(w, "trace", b)
}

// handleEvents streams a traced job's events live. The job must have been
// submitted with "trace": true; it need not be finished — a stream opened
// mid-run replays what the sink retains and follows the live flow.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.Spec.Trace {
		writeError(w, http.StatusConflict, "job was not submitted with trace enabled")
		return
	}
	buf := defaultStreamBuf
	if v := r.URL.Query().Get("buf"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "buf must be a positive integer")
			return
		}
		buf = min(n, maxStreamBuf)
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	sink := j.exec.sink
	sub, replay := sink.Subscribe(buf)
	defer func() {
		// The ring's losses feed the metric whether the stream ended cleanly
		// or the client vanished mid-run.
		if n := sink.Unsubscribe(sub); n > 0 {
			s.reg.Add("vgiwd/stream_dropped", n)
		}
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	for i := range replay {
		if writeTraceFrame(w, &replay[i]) != nil {
			return // client went away; the job keeps running
		}
	}
	fl.Flush()

	for {
		select {
		case e, open := <-sub.C():
			if !open {
				// Sink released out from under us; end what we can.
				s.finishStream(w, j)
				fl.Flush()
				return
			}
			if writeTraceFrame(w, &e) != nil {
				return
			}
			if len(sub.C()) == 0 {
				fl.Flush()
			}
		case <-r.Context().Done():
			return // disconnect cancels nothing
		case <-j.exec.done:
			// Emission has ceased (results publish after the simulators
			// return), so draining the ring completes the event flow.
			s.drainRing(w, sub)
			s.finishStream(w, j)
			fl.Flush()
			return
		case <-j.done:
			// The job detached (deadline or cancel) while the shared
			// execution lives on; this stream's claim ends with its job.
			s.drainRing(w, sub)
			s.finishStream(w, j)
			fl.Flush()
			return
		}
	}
}

// drainRing forwards whatever the subscriber ring still buffers.
func (s *Server) drainRing(w io.Writer, sub *trace.Subscriber) {
	for {
		select {
		case e, open := <-sub.C():
			if !open {
				return
			}
			if writeTraceFrame(w, &e) != nil {
				return
			}
		default:
			return
		}
	}
}

// finishStream closes a stream with the run's metrics snapshot (when one
// exists) and a final done frame carrying the job's terminal state.
func (s *Server) finishStream(w io.Writer, j *Job) {
	s.mu.Lock()
	state, reason := j.stateLocked()
	met := j.exec.metrics
	s.mu.Unlock()
	if met != nil {
		if b, err := json.Marshal(met); err == nil {
			if writeSSE(w, "metrics", b) != nil {
				return
			}
		}
	}
	final := struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Reason string `json:"reason,omitempty"`
	}{ID: j.ID, State: state, Reason: reason}
	b, err := json.Marshal(final)
	if err != nil {
		return
	}
	writeSSE(w, "done", b) //nolint:errcheck // stream is ending either way
}
