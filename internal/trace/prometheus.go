package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), the wire format `GET /metrics` scrapers expect.
//
// Registry names ("bfs.kernel1/vgiw.cycles") contain characters a Prometheus
// metric name may not, so the registry is exposed as two fixed metric
// families keyed by a `name` label:
//
//	vgiw_metric{name="bfs.kernel1/vgiw.cycles"} 12345
//	vgiw_hist_bucket{name="vgiwd/run_ms",le="3"} 7
//	vgiw_hist_sum{name="vgiwd/run_ms"} 42
//	vgiw_hist_count{name="vgiwd/run_ms"} 9
//
// Counters become `vgiw_metric` samples (untyped: the registry does not
// distinguish monotonic counters from gauges). Histograms become native
// Prometheus histograms: the power-of-two buckets map to cumulative buckets
// with upper bounds 0, 1, 3, 7, ..., 2^i-1 (bucket i of Hist holds samples
// with bits.Len64(v) == i), trailing empty buckets elided, `le="+Inf"`
// always present. Output is sorted by name, so it is byte-deterministic for
// a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	counters, hists := r.snapshot()

	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := bw.WriteString("# HELP vgiw_metric Flat " + MetricsSchema + " registry counters and gauges.\n# TYPE vgiw_metric untyped\n"); err != nil {
			return err
		}
		for _, n := range names {
			writeSample(bw, "vgiw_metric", n, "", strconv.FormatUint(counters[n], 10))
		}
	}

	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := bw.WriteString("# HELP vgiw_hist Power-of-two-bucket " + MetricsSchema + " registry histograms.\n# TYPE vgiw_hist histogram\n"); err != nil {
			return err
		}
		for _, n := range names {
			h := hists[n]
			// Highest non-empty bucket bounds the emitted range; the +Inf
			// bucket carries the total count either way.
			top := -1
			for i, c := range h.Buckets {
				if c != 0 {
					top = i
				}
			}
			var cum uint64
			for i := 0; i <= top; i++ {
				cum += h.Buckets[i]
				// Bucket i holds samples with bits.Len64(v) == i, so its
				// inclusive upper bound is 2^i - 1.
				le := strconv.FormatUint(1<<uint(i)-1, 10)
				writeSample(bw, "vgiw_hist_bucket", n, le, strconv.FormatUint(cum, 10))
			}
			writeSample(bw, "vgiw_hist_bucket", n, "+Inf", strconv.FormatUint(h.Count, 10))
			writeSample(bw, "vgiw_hist_sum", n, "", strconv.FormatInt(h.Sum, 10))
			writeSample(bw, "vgiw_hist_count", n, "", strconv.FormatUint(h.Count, 10))
		}
	}
	return bw.Flush()
}

// snapshot copies the registry state out from under the mutex so rendering
// does not hold it.
func (r *Registry) snapshot() (map[string]uint64, map[string]Hist) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]uint64, len(r.counters))
	for n, v := range r.counters {
		counters[n] = v
	}
	hists := make(map[string]Hist, len(r.hists))
	for n, h := range r.hists {
		hists[n] = *h
	}
	return counters, hists
}

// writeSample emits one exposition line: family{name="...",le="..."} value.
func writeSample(bw *bufio.Writer, family, name, le, value string) {
	bw.WriteString(family)
	bw.WriteString(`{name="`)
	bw.WriteString(escapeLabel(name))
	if le != "" {
		bw.WriteString(`",le="`)
		bw.WriteString(le)
	}
	bw.WriteString(`"} `)
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
