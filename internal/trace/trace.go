// Package trace is the cycle-level observability layer shared by the three
// simulators (VGIW, SIMT, SGMF). It provides:
//
//   - Sink: an event sink the backends emit cycle-stamped spans, instants,
//     and counter samples into. A nil or category-filtered sink costs one
//     pointer/mask check per call site and allocates nothing, so tracing can
//     stay compiled into the hot paths (the engine's 0 allocs/op contract is
//     enforced by BenchmarkEngineHotPath). Storage is ring-buffered in
//     fixed-size blocks drawn from a sync.Pool: when the retention cap is
//     reached the oldest block is recycled in place, so a trace of an
//     arbitrarily long run holds bounded memory and keeps the newest events.
//   - Chrome trace-event JSON export (chrome.go), loadable in Perfetto, with
//     one process per machine run and one track per scheduler/fabric
//     unit/memory feed.
//   - Registry (registry.go): a flat named counter/histogram registry that
//     the experiment harness folds results into, giving BENCH_*.json a
//     stable schema.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Cat is a bitmask of event categories, used by -trace-filter to bound event
// volume (per-node firings and per-access LVC events dwarf the scheduler
// spans by orders of magnitude).
type Cat uint32

const (
	// CatVGIW covers the BBS: block-vector launch/retire spans and
	// reconfiguration windows.
	CatVGIW Cat = 1 << iota
	// CatCVT covers control vector table enqueue (terminator batch packets)
	// and coalesce (read-and-reset drain) events.
	CatCVT
	// CatLVC covers live value cache hit/miss/spill events.
	CatLVC
	// CatSIMT covers warp issue/stall/divergence/reconvergence/barrier
	// events on the baseline SM.
	CatSIMT
	// CatSGMF covers the SGMF whole-kernel run spans.
	CatSGMF
	// CatEngine covers per-node firing events on the MT-CGRF fabric (both
	// VGIW block graphs and the SGMF whole-kernel graph). High volume.
	CatEngine
	// CatMem covers the per-epoch memory-system counter samples.
	CatMem

	// CatAll enables everything.
	CatAll Cat = 1<<7 - 1
)

// catNames maps -trace-filter tokens to category bits.
var catNames = map[string]Cat{
	"vgiw":   CatVGIW,
	"cvt":    CatCVT,
	"lvc":    CatLVC,
	"simt":   CatSIMT,
	"sgmf":   CatSGMF,
	"engine": CatEngine,
	"mem":    CatMem,
	"all":    CatAll,
}

// ParseCats parses a comma-separated category filter ("vgiw,cvt,mem"). The
// empty string means all categories.
func ParseCats(s string) (Cat, error) {
	if strings.TrimSpace(s) == "" {
		return CatAll, nil
	}
	var c Cat
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		if tok == "" {
			continue
		}
		bit, ok := catNames[tok]
		if !ok {
			return 0, fmt.Errorf("trace: unknown category %q (have %s)", tok, CatNames())
		}
		c |= bit
	}
	if c == 0 {
		return 0, fmt.Errorf("trace: empty category filter")
	}
	return c, nil
}

// CatNames lists the recognised filter tokens.
func CatNames() string {
	names := make([]string, 0, len(catNames))
	for n := range catNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func (c Cat) String() string {
	if c == CatAll {
		return "all"
	}
	var parts []string
	for _, n := range []string{"vgiw", "cvt", "lvc", "simt", "sgmf", "engine", "mem"} {
		if c&catNames[n] != 0 {
			parts = append(parts, n)
		}
	}
	return strings.Join(parts, ",")
}

// Phase is the Chrome trace-event phase of an event.
type Phase byte

const (
	// PhaseSpan is a complete event ("X"): a [Ts, Ts+Dur) interval.
	PhaseSpan Phase = 'X'
	// PhaseInstant is a point event ("i").
	PhaseInstant Phase = 'i'
	// PhaseCounter is a counter sample ("C"): V1 under K1 (and optionally
	// V2/K2, V3/K3) plotted as a counter track.
	PhaseCounter Phase = 'C'
)

// TrackID addresses one horizontal track of the trace: Pid groups tracks
// into a process (one machine run), Tid is the track within it.
type TrackID struct {
	Pid int32
	Tid int32
}

// Event is one trace record. Name and the arg keys must be static (or
// otherwise long-lived) strings: the sink stores them by reference and never
// copies, which is what keeps Emit allocation-free.
type Event struct {
	Name  string
	Cat   Cat
	Phase Phase
	Track TrackID
	Ts    int64 // cycle the event starts
	Dur   int64 // span length in cycles (PhaseSpan only)

	// Up to three integer args, rendered into the Chrome "args" object.
	// An empty key ends the list.
	K1, K2, K3 string
	V1, V2, V3 int64
}

// blockEvents is the per-block capacity. 2048 events * ~2 cache lines keeps
// a block comfortably pool-recyclable without large single allocations.
const blockEvents = 2048

type eventBlock struct {
	ev [blockEvents]Event
	n  int
}

var blockPool = sync.Pool{New: func() any { return new(eventBlock) }}

// DefaultMaxEvents bounds a sink's retained events (~1M events, a few
// hundred MB worst case) unless overridden with SetMaxEvents.
const DefaultMaxEvents = 1 << 20

// Sink collects events. The zero value is not usable; construct with
// NewSink. A nil *Sink is valid everywhere and means "tracing disabled":
// every method is a cheap no-op, so backends hold a possibly-nil sink and
// call it unconditionally.
type Sink struct {
	mask Cat

	mu      sync.Mutex
	blocks  []*eventBlock // ring: blocks[head] is the oldest
	head    int
	maxBlk  int
	dropped uint64 // events lost to ring wrap-around

	// Live streaming (stream.go): registered subscribers plus the drop
	// count already accumulated by departed ones.
	subs          []*Subscriber
	streamDropped uint64

	nextPid int32
	procs   map[int32]string
	tracks  map[TrackID]string
}

// NewSink creates a sink accepting the given categories.
func NewSink(mask Cat) *Sink {
	if mask == 0 {
		mask = CatAll
	}
	return &Sink{
		mask:    mask,
		maxBlk:  (DefaultMaxEvents + blockEvents - 1) / blockEvents,
		nextPid: 1,
		procs:   make(map[int32]string),
		tracks:  make(map[TrackID]string),
	}
}

// SetMaxEvents bounds the retained event count (rounded up to whole blocks).
// Older events are recycled once the bound is hit.
func (s *Sink) SetMaxEvents(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.maxBlk = (n + blockEvents - 1) / blockEvents
	if s.maxBlk < 1 {
		s.maxBlk = 1
	}
	s.mu.Unlock()
}

// Enabled reports whether events of the category would be recorded. Call
// sites with non-trivial argument construction should guard on it; plain
// Emit calls need not (Emit performs the same check).
//
//vgiw:hotpath
func (s *Sink) Enabled(c Cat) bool { return s != nil && s.mask&c != 0 }

// Emit records one event. Safe for concurrent use; a nil sink or a filtered
// category is a no-op with no allocation.
//
//vgiw:hotpath
func (s *Sink) Emit(e Event) {
	if s == nil || s.mask&e.Cat == 0 {
		return
	}
	s.mu.Lock()
	blk := s.tail()
	if blk == nil || blk.n == blockEvents {
		blk = s.grow()
	}
	blk.ev[blk.n] = e
	blk.n++
	if len(s.subs) > 0 {
		s.publishLocked(e)
	}
	s.mu.Unlock()
}

// tail returns the newest block, or nil when empty. Caller holds mu.
func (s *Sink) tail() *eventBlock {
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[(s.head+len(s.blocks)-1)%len(s.blocks)]
}

// grow appends a fresh (pooled) block, recycling the oldest block in place
// once the ring is full. Caller holds mu.
func (s *Sink) grow() *eventBlock {
	if len(s.blocks) < s.maxBlk {
		blk := blockPool.Get().(*eventBlock)
		blk.n = 0
		// Insert as the newest element: ring order is blocks[head..head-1].
		if s.head == 0 {
			s.blocks = append(s.blocks, blk)
		} else {
			s.blocks = append(s.blocks, nil)
			copy(s.blocks[s.head+1:], s.blocks[s.head:])
			s.blocks[s.head] = blk
			s.head++
		}
		return blk
	}
	// Ring full: the oldest block becomes the newest, its events dropped.
	blk := s.blocks[s.head]
	s.head = (s.head + 1) % len(s.blocks)
	s.dropped += uint64(blk.n)
	blk.n = 0
	return blk
}

// Dropped reports how many events were lost to the retention cap.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len reports the number of retained events.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lenLocked()
}

// forEach visits retained events oldest-first. Caller must hold mu.
func (s *Sink) forEach(fn func(*Event)) {
	for i := 0; i < len(s.blocks); i++ {
		blk := s.blocks[(s.head+i)%len(s.blocks)]
		for j := 0; j < blk.n; j++ {
			fn(&blk.ev[j])
		}
	}
}

// Release returns the sink's blocks to the pool. The sink must not be used
// afterwards.
func (s *Sink) Release() {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, b := range s.blocks {
		b.n = 0
		blockPool.Put(b)
	}
	s.blocks = nil
	s.head = 0
	// End any live streams: their event flow is over.
	for _, u := range s.subs {
		s.streamDropped += u.dropped
		close(u.ch)
	}
	s.subs = nil
	s.mu.Unlock()
}

// AllocProcess reserves a fresh process ID named after one machine run
// ("bfs.kernel1/vgiw"). Each backend groups its tracks under the pid so
// traces of multi-kernel sweeps stay readable.
func (s *Sink) AllocProcess(name string) int32 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	pid := s.nextPid
	s.nextPid++
	s.procs[pid] = name
	s.mu.Unlock()
	return pid
}

// DefineTrack names one track (thread) of a process. Re-definitions
// overwrite, so per-run track layouts can reuse tids.
func (s *Sink) DefineTrack(t TrackID, name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tracks[t] = name
	s.mu.Unlock()
}
