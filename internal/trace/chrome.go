package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is the JSON form of one Chrome trace-event record
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Perfetto's legacy JSON importer loads this format directly.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Pid  int32            `json:"pid"`
	Tid  int32            `json:"tid"`
	Ts   int64            `json:"ts"`
	Dur  *int64           `json:"dur,omitempty"`
	Cat  string           `json:"cat,omitempty"`
	S    string           `json:"s,omitempty"`    // instant scope
	Args map[string]int64 `json:"args,omitempty"` // numeric args only
}

// chromeMeta is a metadata record ("M"): process/thread names.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int32             `json:"pid"`
	Tid  int32             `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeRecord renders one event as its Chrome trace-event record — the
// single source of truth for both the file exporter and the SSE stream, so
// a live stream replays exactly what the export would contain.
func chromeRecord(e *Event) chromeEvent {
	ce := chromeEvent{
		Name: e.Name,
		Ph:   string(rune(e.Phase)),
		Pid:  e.Track.Pid,
		Tid:  e.Track.Tid,
		Ts:   e.Ts,
		Cat:  e.Cat.String(),
	}
	if e.Phase == PhaseSpan {
		d := e.Dur
		ce.Dur = &d
	}
	if e.Phase == PhaseInstant {
		ce.S = "t" // thread-scoped instant
	}
	if e.K1 != "" {
		ce.Args = map[string]int64{e.K1: e.V1}
		if e.K2 != "" {
			ce.Args[e.K2] = e.V2
		}
		if e.K3 != "" {
			ce.Args[e.K3] = e.V3
		}
	}
	return ce
}

// MarshalChromeEvent renders one event as the same standalone JSON record
// WriteChromeTrace would emit for it, for streaming consumers (the daemon's
// SSE endpoint frames these as `data:` payloads).
func MarshalChromeEvent(e *Event) ([]byte, error) {
	return json.Marshal(chromeRecord(e))
}

// WriteChromeTrace exports the retained events as Chrome trace-event JSON
// ({"traceEvents": [...]}). Timestamps are simulated cycles (the viewer's
// time unit is microseconds; 1 us == 1 cycle here). Events appear
// oldest-first; process and thread name metadata precedes them so Perfetto
// labels every track.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Metadata: stable pid/tid order so exports diff cleanly.
	pids := make([]int32, 0, len(s.procs))
	for pid := range s.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		if err := emit(chromeMeta{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": s.procs[pid]}}); err != nil {
			return err
		}
	}
	tracks := make([]TrackID, 0, len(s.tracks))
	for t := range s.tracks {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].Pid != tracks[j].Pid {
			return tracks[i].Pid < tracks[j].Pid
		}
		return tracks[i].Tid < tracks[j].Tid
	})
	for _, t := range tracks {
		if err := emit(chromeMeta{Name: "thread_name", Ph: "M", Pid: t.Pid, Tid: t.Tid,
			Args: map[string]string{"name": s.tracks[t]}}); err != nil {
			return err
		}
	}

	var exportErr error
	s.forEach(func(e *Event) {
		if exportErr != nil {
			return
		}
		exportErr = emit(chromeRecord(e))
	})
	if exportErr != nil {
		return exportErr
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace checks that data parses as a Chrome trace-event JSON
// object and that every record satisfies the schema the viewers require:
// a known phase, a name, non-negative timestamps, a duration on complete
// events, and args on counter samples. It returns the number of non-metadata
// events.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: not a trace-event JSON object: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("trace: missing traceEvents array")
	}
	n := 0
	for i, raw := range doc.TraceEvents {
		var e struct {
			Name *string         `json:"name"`
			Ph   string          `json:"ph"`
			Pid  *int64          `json:"pid"`
			Tid  *int64          `json:"tid"`
			Ts   *int64          `json:"ts"`
			Dur  *int64          `json:"dur"`
			Args json.RawMessage `json:"args"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			return n, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if e.Name == nil || *e.Name == "" {
			return n, fmt.Errorf("trace: event %d: missing name", i)
		}
		if e.Pid == nil {
			return n, fmt.Errorf("trace: event %d (%s): missing pid", i, *e.Name)
		}
		switch e.Ph {
		case "M":
			if len(e.Args) == 0 {
				return n, fmt.Errorf("trace: metadata event %d (%s): missing args", i, *e.Name)
			}
			continue
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return n, fmt.Errorf("trace: event %d (%s): complete event needs dur >= 0", i, *e.Name)
			}
		case "i", "I":
			// instant: ts only
		case "C":
			if len(e.Args) == 0 {
				return n, fmt.Errorf("trace: counter event %d (%s): missing args", i, *e.Name)
			}
		default:
			return n, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, *e.Name, e.Ph)
		}
		if e.Ts == nil || *e.Ts < 0 {
			return n, fmt.Errorf("trace: event %d (%s): missing or negative ts", i, *e.Name)
		}
		n++
	}
	return n, nil
}
