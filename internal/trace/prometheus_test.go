package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updatePromGolden = flag.Bool("update-prom-golden", false, "rewrite testdata/prometheus_golden.txt from the fixture registry")

// fixtureRegistry builds a deterministic registry exercising counters,
// label-escaping, an empty histogram, and multi-bucket histograms.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Set("bfs.kernel1/vgiw.cycles", 8930)
	r.Add("vgiwd/jobs_admitted", 12)
	r.Set("vgiwd/queue_depth", 3)
	r.Set(`odd"name\with.escapes`, 1)
	r.Observe("vgiwd/run_ms", 0)
	r.Observe("vgiwd/run_ms", 1)
	r.Observe("vgiwd/run_ms", 2)
	r.Observe("vgiwd/run_ms", 5)
	r.Observe("vgiwd/run_ms", 900)
	r.Observe("bfs.kernel1/vgiw.block_threads", 512)
	return r
}

// TestWritePrometheusGolden pins the exposition output byte-for-byte, the
// same way the vgiw-metrics/v1 snapshot schema is pinned.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus_golden.txt")
	if *updatePromGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -run TestWritePrometheusGolden -update-prom-golden` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus exposition changed (rerun with -update-prom-golden if intended).\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusFormat validates structural invariants scrapers rely on:
// line grammar, cumulative buckets, a +Inf bucket per histogram, and
// _count == +Inf == Hist.Count.
func TestWritePrometheusFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sampleRE := regexp.MustCompile(`^(vgiw_metric|vgiw_hist_bucket|vgiw_hist_sum|vgiw_hist_count)\{name="(?:[^"\\]|\\.)*"(?:,le="[^"]+")?\} -?\d+$`)
	var lastBucket, infBucket, histCount int64 = -1, -1, -1
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRE.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		switch {
		case strings.HasPrefix(line, "vgiw_hist_bucket") && strings.Contains(line, `le="+Inf"`):
			infBucket = v
			if lastBucket >= 0 && v < lastBucket {
				t.Fatalf("+Inf bucket %d below last finite bucket %d: %q", v, lastBucket, line)
			}
			lastBucket = -1
		case strings.HasPrefix(line, "vgiw_hist_bucket"):
			if v < lastBucket {
				t.Fatalf("buckets not cumulative at %q", line)
			}
			lastBucket = v
		case strings.HasPrefix(line, "vgiw_hist_count"):
			histCount = v
			if infBucket != v {
				t.Fatalf("hist_count %d != +Inf bucket %d", v, infBucket)
			}
		}
	}
	if infBucket < 0 || histCount < 0 {
		t.Fatal("no histogram emitted")
	}
}

// TestWritePrometheusNil covers the nil-registry contract shared with the
// rest of the Registry API.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}
