package trace

import (
	"bytes"
	"testing"
)

func ev(name string, ts int64) Event {
	return Event{Name: name, Cat: CatVGIW, Phase: PhaseInstant, Ts: ts}
}

// TestSubscribeReplayThenLive pins the no-gap/no-dup contract: Subscribe
// atomically returns what the sink already holds, and everything emitted
// afterwards arrives on the channel, in order.
func TestSubscribeReplayThenLive(t *testing.T) {
	s := NewSink(CatAll)
	s.Emit(ev("a", 1))
	s.Emit(ev("b", 2))

	sub, replay := s.Subscribe(16)
	if len(replay) != 2 || replay[0].Name != "a" || replay[1].Name != "b" {
		t.Fatalf("replay = %+v", replay)
	}

	s.Emit(ev("c", 3))
	s.Emit(ev("d", 4))
	for i, want := range []string{"c", "d"} {
		got := <-sub.C()
		if got.Name != want {
			t.Errorf("live event %d = %q, want %q", i, got.Name, want)
		}
	}
	if n := s.Unsubscribe(sub); n != 0 {
		t.Errorf("dropped = %d, want 0", n)
	}
	if _, ok := <-sub.C(); ok {
		t.Error("channel not closed after Unsubscribe")
	}
	// Emitting after unsubscribe must not panic or misroute.
	s.Emit(ev("e", 5))
}

// TestSubscriberOverflowDrops pins the non-blocking discipline: a full ring
// drops (counted), never stalls the emitter.
func TestSubscriberOverflowDrops(t *testing.T) {
	s := NewSink(CatAll)
	sub, _ := s.Subscribe(1)
	for i := 0; i < 5; i++ {
		s.Emit(ev("x", int64(i)))
	}
	if got := s.StreamDropped(); got != 4 {
		t.Errorf("StreamDropped = %d, want 4", got)
	}
	if e := <-sub.C(); e.Ts != 0 {
		t.Errorf("survivor = %+v, want the first event", e)
	}
	if n := s.Unsubscribe(sub); n != 4 {
		t.Errorf("Unsubscribe dropped = %d, want 4", n)
	}
	// Drop history survives the subscriber's departure.
	if got := s.StreamDropped(); got != 4 {
		t.Errorf("StreamDropped after unsubscribe = %d, want 4", got)
	}
}

// TestSubscriberFilteredSink verifies masked categories never reach
// subscribers (the tee sits behind the existing category mask).
func TestSubscriberFilteredSink(t *testing.T) {
	s := NewSink(CatVGIW)
	sub, _ := s.Subscribe(4)
	s.Emit(Event{Name: "lvc", Cat: CatLVC, Phase: PhaseInstant, Ts: 1})
	s.Emit(ev("keep", 2))
	got := <-sub.C()
	if got.Name != "keep" {
		t.Errorf("received %q, want the unfiltered event", got.Name)
	}
	if s.StreamDropped() != 0 {
		t.Error("filtered event counted as a stream drop")
	}
	s.Unsubscribe(sub)
}

func TestSubscribeNilSink(t *testing.T) {
	var s *Sink
	sub, replay := s.Subscribe(8)
	if sub != nil || replay != nil {
		t.Errorf("nil sink Subscribe = (%v, %v)", sub, replay)
	}
	if n := s.Unsubscribe(sub); n != 0 {
		t.Errorf("nil Unsubscribe = %d", n)
	}
	if s.StreamDropped() != 0 {
		t.Error("nil StreamDropped != 0")
	}
}

// TestReleaseClosesSubscribers: releasing the sink ends live streams instead
// of leaking blocked readers.
func TestReleaseClosesSubscribers(t *testing.T) {
	s := NewSink(CatAll)
	sub, _ := s.Subscribe(1)
	s.Emit(ev("a", 1))
	s.Emit(ev("b", 2)) // overflows the ring
	s.Release()
	<-sub.C() // buffered survivor
	if _, ok := <-sub.C(); ok {
		t.Error("channel not closed by Release")
	}
	if got := s.StreamDropped(); got != 1 {
		t.Errorf("StreamDropped after Release = %d, want 1", got)
	}
}

// TestMarshalChromeEventMatchesExport guarantees the SSE frame for an event
// is byte-identical to the record WriteChromeTrace emits for it — the
// property the daemon's /events endpoint builds its prefix contract on.
func TestMarshalChromeEventMatchesExport(t *testing.T) {
	s := NewSink(CatAll)
	events := []Event{
		{Name: "span", Cat: CatVGIW, Phase: PhaseSpan, Ts: 10, Dur: 5, K1: "threads", V1: 64},
		{Name: "inst", Cat: CatCVT, Phase: PhaseInstant, Ts: 11},
		{Name: "ctr", Cat: CatMem, Phase: PhaseCounter, Ts: 12, K1: "hits", V1: 3, K2: "misses", V2: 1},
	}
	for _, e := range events {
		s.Emit(e)
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		b, err := MarshalChromeEvent(&e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(buf.Bytes(), b) {
			t.Errorf("export does not contain the standalone record %s:\n%s", b, buf.Bytes())
		}
	}
}
