package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
)

// MetricsSchema versions the flat metrics namespace. Bump it whenever a
// metric is renamed or its meaning changes; adding metrics is
// backward-compatible and needs no bump.
const MetricsSchema = "vgiw-metrics/v1"

// Hist is a power-of-two-bucketed histogram of non-negative int64 samples.
// Bucket i counts samples v with bits.Len64(v) == i (bucket 0 holds v == 0),
// so the buckets are [0], [1], [2,3], [4,7], ... — cheap, allocation-free,
// and wide enough for cycle counts.
type Hist struct {
	Count    uint64
	Sum      int64
	Min, Max int64
	Buckets  [65]uint64
}

// Observe adds one sample. Negative samples are clamped to 0 (cycle deltas
// are never negative; clamping keeps a bug from corrupting the buckets).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

// Mean is the average sample.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Registry is a flat, named metrics store: counters and histograms keyed by
// slash/dot-separated names ("bfs.kernel1/vgiw.cycles"). It is the stable
// schema behind the BENCH_*.json exports: names are pinned by a golden test,
// and Snapshot/WriteJSON render deterministically (sorted by name).
//
// A nil *Registry is valid and discards everything, mirroring the Sink
// contract.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	hists    map[string]*Hist
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Hist),
	}
}

// Add increments the named counter.
func (r *Registry) Add(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Set overwrites the named counter (for gauges like tile size).
func (r *Registry) Set(name string, v uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = v
	r.mu.Unlock()
}

// Observe adds a sample to the named histogram.
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &Hist{}
		r.hists[name] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// Merge folds other's counters and histograms into r.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, v := range other.counters {
		r.counters[n] += v
	}
	for n, oh := range other.hists {
		h, ok := r.hists[n]
		if !ok {
			h = &Hist{}
			r.hists[n] = h
		}
		if oh.Count == 0 {
			continue
		}
		if h.Count == 0 || oh.Min < h.Min {
			h.Min = oh.Min
		}
		if oh.Max > h.Max {
			h.Max = oh.Max
		}
		h.Count += oh.Count
		h.Sum += oh.Sum
		for i := range h.Buckets {
			h.Buckets[i] += oh.Buckets[i]
		}
	}
}

// Names returns every metric name, sorted. Histograms contribute their base
// name (the flat export derives .count/.sum/.min/.max from it).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Counter reads one counter (0 when absent).
func (r *Registry) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Histogram reads one histogram snapshot (zero value when absent).
func (r *Registry) Histogram(name string) Hist {
	if r == nil {
		return Hist{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return *h
	}
	return Hist{}
}

// Flat renders the registry as a flat map: counters verbatim, histograms as
// <name>.count/.sum/.min/.max/.mean_x1000 (fixed-point mean keeps the map
// integer-valued and byte-stable). encoding/json sorts map keys, so the
// serialized form is deterministic.
func (r *Registry) Flat() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters)+4*len(r.hists))
	for n, v := range r.counters {
		out[n] = v
	}
	for n, h := range r.hists {
		out[n+".count"] = h.Count
		out[n+".sum"] = uint64(h.Sum)
		out[n+".min"] = uint64(h.Min)
		out[n+".max"] = uint64(h.Max)
		out[n+".mean_x1000"] = uint64(h.Mean() * 1000)
	}
	return out
}

// Snapshot is the one-line, schema-versioned export written next to
// BENCH_*.json files: a stable envelope around the flat metric map.
type Snapshot struct {
	Schema  string            `json:"schema"`
	Scale   int               `json:"scale,omitempty"`
	Metrics map[string]uint64 `json:"metrics"`
}

// WriteSnapshot emits the registry as a single line of JSON under the
// current metrics schema version.
func (r *Registry) WriteSnapshot(w io.Writer, scale int) error {
	snap := Snapshot{Schema: MetricsSchema, Scale: scale, Metrics: r.Flat()}
	if snap.Metrics == nil {
		snap.Metrics = map[string]uint64{}
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(b); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot parses a snapshot produced by WriteSnapshot, rejecting
// unknown schema versions.
func ReadSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("trace: bad metrics snapshot: %w", err)
	}
	if snap.Schema != MetricsSchema {
		return nil, fmt.Errorf("trace: metrics snapshot schema %q, want %q", snap.Schema, MetricsSchema)
	}
	return &snap, nil
}
