package trace

// Live streaming: subscribers tee the event flow out of a Sink as it is
// recorded, without ever slowing the simulation down. Each Subscriber owns a
// bounded ring (a buffered channel); Emit offers each recorded event to
// every subscriber with a non-blocking send, so a slow or disconnected
// consumer loses events — counted per subscriber — while the simulator never
// waits. The disabled-sink contract is untouched: a nil sink or a filtered
// category returns before any subscriber work, so the engine's zero-alloc
// hot path (TestEngineHotPathZeroAllocDisabledSink) is unaffected.

// Subscriber is one live consumer of a sink's event flow. Receive from C();
// the channel closes when the subscriber is removed (Unsubscribe or sink
// Release).
type Subscriber struct {
	ch      chan Event
	dropped uint64 // events lost to a full ring; guarded by the sink's mu
}

// C is the subscriber's event channel.
func (u *Subscriber) C() <-chan Event { return u.ch }

// Subscribe registers a live consumer with a ring of the given capacity
// (minimum 1) and atomically returns a replay of the events the sink has
// already retained: the replay plus the channel flow reproduce, in order and
// without duplication, every event recorded from the sink's ring onward.
// A nil sink has no event flow and returns (nil, nil).
func (s *Sink) Subscribe(buf int) (*Subscriber, []Event) {
	if s == nil {
		return nil, nil
	}
	if buf < 1 {
		buf = 1
	}
	u := &Subscriber{ch: make(chan Event, buf)}
	s.mu.Lock()
	replay := make([]Event, 0, s.lenLocked())
	s.forEach(func(e *Event) { replay = append(replay, *e) })
	s.subs = append(s.subs, u)
	s.mu.Unlock()
	return u, replay
}

// Unsubscribe removes a subscriber and closes its channel, returning how
// many events it lost to ring overflow. Safe to call once per subscriber;
// unknown subscribers report 0. A nil sink (paired with the nil subscriber
// Subscribe returned) is a no-op.
func (s *Sink) Unsubscribe(u *Subscriber) uint64 {
	if s == nil || u == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, got := range s.subs {
		if got == u {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			s.streamDropped += u.dropped
			close(u.ch)
			return u.dropped
		}
	}
	return 0
}

// StreamDropped reports the total events lost across all past and present
// subscribers (the stream_dropped metric's source of truth on the sink side).
func (s *Sink) StreamDropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.streamDropped
	for _, u := range s.subs {
		n += u.dropped
	}
	return n
}

// publishLocked offers one recorded event to every subscriber without
// blocking. Caller holds mu (Emit's lock), so subscriber bookkeeping needs
// no atomics.
//
//vgiw:hotpath
func (s *Sink) publishLocked(e Event) {
	for _, u := range s.subs {
		select {
		case u.ch <- e:
		default:
			u.dropped++
		}
	}
}

// lenLocked counts retained events. Caller holds mu.
func (s *Sink) lenLocked() int {
	n := 0
	for _, b := range s.blocks {
		n += b.n
	}
	return n
}
