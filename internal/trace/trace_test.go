package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseCats(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Cat
		ok   bool
	}{
		{"", CatAll, true},
		{"all", CatAll, true},
		{"vgiw", CatVGIW, true},
		{"vgiw,cvt,lvc", CatVGIW | CatCVT | CatLVC, true},
		{" SIMT , mem ", CatSIMT | CatMem, true},
		{"bogus", 0, false},
		{",", 0, false},
	} {
		got, err := ParseCats(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseCats(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseCats(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSinkFilters(t *testing.T) {
	s := NewSink(CatVGIW)
	s.Emit(Event{Name: "keep", Cat: CatVGIW, Phase: PhaseInstant})
	s.Emit(Event{Name: "drop", Cat: CatSIMT, Phase: PhaseInstant})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (filtered category must be dropped)", s.Len())
	}
	if !s.Enabled(CatVGIW) || s.Enabled(CatSIMT) {
		t.Fatal("Enabled does not reflect the mask")
	}
}

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	s.Emit(Event{Name: "x", Cat: CatVGIW})
	s.DefineTrack(TrackID{1, 1}, "t")
	s.AllocProcess("p")
	s.SetMaxEvents(10)
	s.Release()
	if s.Enabled(CatAll) || s.Len() != 0 || s.Dropped() != 0 {
		t.Fatal("nil sink must report disabled/empty")
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("nil sink export invalid: %v", err)
	}
}

// TestEmitDisabledZeroAlloc pins the overhead contract: a nil sink and a
// category-filtered sink allocate nothing on Emit. The engine hot path
// relies on this (BenchmarkEngineHotPath's 0 allocs/op).
func TestEmitDisabledZeroAlloc(t *testing.T) {
	var nilSink *Sink
	filtered := NewSink(CatVGIW)
	ev := Event{Name: "node", Cat: CatEngine, Phase: PhaseSpan, Ts: 1, Dur: 2, K1: "tid", V1: 3}
	if n := testing.AllocsPerRun(100, func() { nilSink.Emit(ev) }); n != 0 {
		t.Errorf("nil sink Emit allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { filtered.Emit(ev) }); n != 0 {
		t.Errorf("filtered Emit allocates %v/op, want 0", n)
	}
}

// TestEmitEnabledSteadyStateZeroAlloc checks that recording events does not
// allocate per event once a block exists (blocks come from the pool).
func TestEmitEnabledSteadyStateZeroAlloc(t *testing.T) {
	s := NewSink(CatAll)
	s.SetMaxEvents(blockEvents) // single block, ring recycles in place
	ev := Event{Name: "node", Cat: CatEngine, Phase: PhaseInstant, Ts: 1}
	s.Emit(ev) // allocate the first block
	if n := testing.AllocsPerRun(2*blockEvents, func() { s.Emit(ev) }); n > 0.01 {
		t.Errorf("steady-state Emit allocates %v/op, want ~0", n)
	}
}

func TestRingRecyclesOldest(t *testing.T) {
	s := NewSink(CatAll)
	s.SetMaxEvents(2 * blockEvents)
	total := 5 * blockEvents
	for i := 0; i < total; i++ {
		s.Emit(Event{Name: "e", Cat: CatVGIW, Phase: PhaseInstant, Ts: int64(i)})
	}
	if s.Len() != 2*blockEvents {
		t.Fatalf("Len = %d, want %d", s.Len(), 2*blockEvents)
	}
	if got, want := s.Dropped(), uint64(total-2*blockEvents); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	// The retained window must be the newest events, oldest-first.
	s.mu.Lock()
	var first, last int64 = -1, -1
	prev := int64(-1)
	ordered := true
	s.forEach(func(e *Event) {
		if first == -1 {
			first = e.Ts
		}
		if e.Ts <= prev {
			ordered = false
		}
		prev = e.Ts
		last = e.Ts
	})
	s.mu.Unlock()
	if !ordered {
		t.Fatal("retained events out of order")
	}
	if first != int64(total-2*blockEvents) || last != int64(total-1) {
		t.Fatalf("retained window [%d,%d], want [%d,%d]", first, last, total-2*blockEvents, total-1)
	}
}

func TestChromeExportAndValidate(t *testing.T) {
	s := NewSink(CatAll)
	pid := s.AllocProcess("bfs.kernel1/vgiw")
	bbs := TrackID{pid, 0}
	s.DefineTrack(bbs, "bbs")
	s.Emit(Event{Name: "reconfig", Cat: CatVGIW, Phase: PhaseSpan, Track: bbs, Ts: 0, Dur: 16})
	s.Emit(Event{Name: "entry", Cat: CatVGIW, Phase: PhaseSpan, Track: bbs, Ts: 16, Dur: 120,
		K1: "block", V1: 0, K2: "threads", V2: 64})
	s.Emit(Event{Name: "cvt.coalesce", Cat: CatCVT, Phase: PhaseInstant, Track: bbs, Ts: 140, K1: "block", V1: 1})
	s.Emit(Event{Name: "mem", Cat: CatMem, Phase: PhaseCounter, Track: bbs, Ts: 150,
		K1: "l1_accesses", V1: 10, K2: "l1_misses", V2: 2})

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("export fails own validation: %v\n%s", err, buf.String())
	}
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"bfs.kernel1/vgiw"`, `"thread_name"`, `"bbs"`,
		`"reconfig"`, `"threads":64`, `"ph":"C"`, `"ph":"i"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
	// Round-trip through encoding/json to confirm it is plain JSON.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":     `{"traceEvents":`,
		"no array":     `{}`,
		"unnamed":      `{"traceEvents":[{"ph":"i","pid":1,"tid":0,"ts":1}]}`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":0,"ts":1}]}`,
		"span no dur":  `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":1}]}`,
		"neg ts":       `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":0,"ts":-5}]}`,
		"counter bare": `{"traceEvents":[{"name":"x","ph":"C","pid":1,"tid":0,"ts":1}]}`,
		"no pid":       `{"traceEvents":[{"name":"x","ph":"i","tid":0,"ts":1}]}`,
	} {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", name)
		}
	}
}

func TestRegistryCountersAndHists(t *testing.T) {
	r := NewRegistry()
	r.Add("a.count", 2)
	r.Add("a.count", 3)
	r.Set("a.gauge", 7)
	r.Observe("a.lat", 0)
	r.Observe("a.lat", 5)
	r.Observe("a.lat", 100)
	if got := r.Counter("a.count"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	h := r.Histogram("a.lat")
	if h.Count != 3 || h.Sum != 105 || h.Min != 0 || h.Max != 100 {
		t.Errorf("hist = %+v", h)
	}
	if h.Buckets[0] != 1 || h.Buckets[3] != 1 || h.Buckets[7] != 1 {
		t.Errorf("buckets = %v", h.Buckets[:10])
	}
	names := r.Names()
	want := []string{"a.count", "a.gauge", "a.lat"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}

	flat := r.Flat()
	if flat["a.lat.count"] != 3 || flat["a.lat.sum"] != 105 || flat["a.lat.mean_x1000"] != 35000 {
		t.Errorf("flat = %v", flat)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add("c", 1)
	a.Observe("h", 10)
	b.Add("c", 2)
	b.Add("only-b", 4)
	b.Observe("h", 2)
	a.Merge(b)
	if a.Counter("c") != 3 || a.Counter("only-b") != 4 {
		t.Errorf("merged counters wrong: c=%d only-b=%d", a.Counter("c"), a.Counter("only-b"))
	}
	h := a.Histogram("h")
	if h.Count != 2 || h.Sum != 12 || h.Min != 2 || h.Max != 10 {
		t.Errorf("merged hist = %+v", h)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("suite/kernels", 15)
	r.Observe("bfs.kernel1/vgiw.block_threads", 64)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n"); n != 0 {
		t.Fatalf("snapshot is %d+1 lines, want exactly one", n+1)
	}
	snap, err := ReadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != MetricsSchema || snap.Scale != 2 {
		t.Fatalf("snapshot envelope = %+v", snap)
	}
	if snap.Metrics["suite/kernels"] != 15 {
		t.Fatalf("metrics = %v", snap.Metrics)
	}
	if _, err := ReadSnapshot([]byte(`{"schema":"vgiw-metrics/v999","metrics":{}}`)); err == nil {
		t.Fatal("ReadSnapshot accepted an unknown schema version")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Set("x", 1)
	r.Observe("x", 1)
	r.Merge(NewRegistry())
	if r.Names() != nil || r.Counter("x") != 0 {
		t.Fatal("nil registry must be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}
