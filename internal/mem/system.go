package mem

import "fmt"

// DRAMConfig sizes the GDDR5-like main memory model.
type DRAMConfig struct {
	Channels  int
	Banks     int   // banks per channel
	AccessLat int64 // access latency in core cycles
	BusyCyc   int64 // per-access bank occupancy (burst time)
}

// Validate checks the configuration.
func (d DRAMConfig) Validate() error {
	if d.Channels <= 0 || d.Banks <= 0 || d.AccessLat <= 0 || d.BusyCyc <= 0 {
		return fmt.Errorf("mem: DRAM config must be positive: %+v", d)
	}
	return nil
}

// DRAMStats counts DRAM events.
type DRAMStats struct {
	Reads  uint64
	Writes uint64
}

// Accesses is the total access count.
func (s DRAMStats) Accesses() uint64 { return s.Reads + s.Writes }

// DRAM models channel/bank occupancy with a fixed access latency.
type DRAM struct {
	cfg   DRAMConfig
	banks []SlotAlloc
	Stats DRAMStats
}

// NewDRAM builds the DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{cfg: cfg, banks: make([]SlotAlloc, cfg.Channels*cfg.Banks)}
}

// Access returns the completion cycle of one line access.
func (d *DRAM) Access(lineAddr int64, write bool, now int64) int64 {
	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	bank := int(lineAddr % int64(len(d.banks)))
	// Occupy BusyCyc consecutive cycles on the bank.
	start := d.banks[bank].Alloc(now)
	for i := int64(1); i < d.cfg.BusyCyc; i++ {
		d.banks[bank].Alloc(start + i)
	}
	return start + d.cfg.AccessLat
}

// Config bundles the whole memory-system configuration.
type Config struct {
	L1   CacheConfig
	L2   CacheConfig
	DRAM DRAMConfig
	// L1MSHRs bounds outstanding L1 read misses (miss-status holding
	// registers). GPGPU-Sim's GTX480 L1 has 32.
	L1MSHRs int
	// WordBytes is the access granularity (4 for this ISA).
	WordBytes int
	// SharedBanks is the number of scratchpad banks (shared-memory
	// accesses are 1-cycle plus bank conflicts).
	SharedBanks int
	// SharedLat is the scratchpad access latency.
	SharedLat int64
}

// DefaultConfig mirrors Table 1 / §3.6: 64KB 32-bank 4-way L1 with 128B
// lines, 768KB 6-bank 16-way L2, 16-bank 6-channel DRAM. The write policy
// of the L1/L2 is chosen per architecture (write-back for VGIW, write-through
// L1 for Fermi).
func DefaultConfig(policy WritePolicy) Config {
	return Config{
		L1: CacheConfig{
			SizeBytes: 64 << 10, LineBytes: 128, Ways: 4, Banks: 32,
			HitLat: 24, Policy: policy,
		},
		L2: CacheConfig{
			SizeBytes: 768 << 10, LineBytes: 128, Ways: 16, Banks: 6,
			// L2 runs at half the core clock (Table 1); latency in core cycles.
			HitLat: 90, Policy: WriteBack,
		},
		DRAM:        DRAMConfig{Channels: 6, Banks: 16, AccessLat: 220, BusyCyc: 4},
		L1MSHRs:     32,
		WordBytes:   4,
		SharedBanks: 32,
		SharedLat:   2,
	}
}

// SystemStats aggregates the per-level statistics.
type SystemStats struct {
	L1   CacheStats
	L2   CacheStats
	DRAM DRAMStats
}

// System is one core's view of the memory hierarchy: a private L1 backed by
// the shared L2 and DRAM. All addresses passed in are *word* addresses.
type System struct {
	cfg         Config
	L1          *Cache
	L2          *Cache
	DRAM        *DRAM
	mshrs       *Outstanding
	sharedBanks []SlotAlloc
	// lineShift is the power-of-two fast path for word→line address
	// translation in AccessWord (negative when the geometry is not a power
	// of two and the generic multiply/divide must run).
	lineShift int8
	// Batch scratch for AccessVector (vector.go), reused across calls.
	vline []int64
	vres  []AccessResult
}

// NewSystem builds a memory system from the configuration.
func NewSystem(cfg Config) *System {
	if cfg.WordBytes <= 0 {
		cfg.WordBytes = 4
	}
	if cfg.SharedBanks <= 0 {
		cfg.SharedBanks = 32
	}
	if cfg.SharedLat <= 0 {
		cfg.SharedLat = 1
	}
	if cfg.L1MSHRs <= 0 {
		cfg.L1MSHRs = 32
	}
	lineShift := int8(-1)
	if cfg.L1.LineBytes%cfg.WordBytes == 0 {
		lineShift = pow2Shift(int64(cfg.L1.LineBytes / cfg.WordBytes))
	}
	return &System{
		cfg:         cfg,
		L1:          NewCache(cfg.L1),
		L2:          NewCache(cfg.L2),
		DRAM:        NewDRAM(cfg.DRAM),
		mshrs:       NewOutstanding(cfg.L1MSHRs),
		sharedBanks: make([]SlotAlloc, cfg.SharedBanks),
		lineShift:   lineShift,
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Stats snapshots the event counters.
func (s *System) Stats() SystemStats {
	return SystemStats{L1: s.L1.Stats, L2: s.L2.Stats, DRAM: s.DRAM.Stats}
}

// Release returns the cache directories to the slab pool. Call once a run is
// finished and its Stats have been snapshotted; the system must not be
// accessed afterwards.
func (s *System) Release() {
	s.L1.Release()
	s.L2.Release()
}

// AccessWord performs a global-memory access for one word and returns its
// completion cycle. Write-through L1s forward writes to the L2 immediately;
// write-back L1s absorb them and emit writebacks on eviction.
func (s *System) AccessWord(wordAddr int64, write bool, now int64) int64 {
	var lineAddr int64
	if s.lineShift >= 0 && wordAddr >= 0 {
		lineAddr = wordAddr >> s.lineShift
	} else {
		lineAddr = (wordAddr * int64(s.cfg.WordBytes)) / int64(s.cfg.L1.LineBytes)
	}
	// Word-interleaved banking: word-granular requests from different
	// units to the same line land on different banks.
	return s.access(lineAddr, wordAddr, write, now)
}

// AccessLine performs a global-memory access at line granularity (the SIMT
// baseline coalesces a warp's accesses into line transactions).
func (s *System) AccessLine(lineAddr int64, write bool, now int64) int64 {
	return s.access(lineAddr, lineAddr, write, now)
}

func (s *System) access(lineAddr, bankSel int64, write bool, now int64) int64 {
	r1 := s.L1.AccessBanked(lineAddr, bankSel, write, now)
	done := r1.Ready + s.cfg.L1.HitLat
	if r1.Writeback >= 0 {
		// Dirty eviction goes to L2 off the critical path.
		s.accessL2(r1.Writeback, true, r1.Ready)
	}
	if r1.Hit {
		return done
	}
	if write {
		// Stores are acknowledged once the L1 accepts them: a store buffer
		// hides the fill (write-back allocate) or forward (write-through)
		// latency. The downstream traffic still happens for stats/banking.
		if s.cfg.L1.Policy == WriteThrough {
			s.accessL2(lineAddr, true, r1.Ready)
			return r1.Ready + 1
		}
		s.accessL2(lineAddr, false, r1.Ready) // fetch-on-write, off the critical path
		return done
	}
	// Load miss: allocate an MSHR and fetch the line from L2/DRAM.
	start := s.mshrs.Admit(r1.Ready)
	done = s.accessL2(lineAddr, false, start) + s.cfg.L1.HitLat
	s.mshrs.Record(done)
	return done
}

// accessL2 is the L2+DRAM leg, also used directly by the live value cache
// (the LVC is backed by the L2, §3.4).
func (s *System) accessL2(lineAddr int64, write bool, now int64) int64 {
	r2 := s.L2.Access(lineAddr, write, now)
	done := r2.Ready + s.cfg.L2.HitLat
	if r2.Writeback >= 0 {
		s.DRAM.Access(r2.Writeback, true, r2.Ready)
	}
	if r2.Hit {
		return done
	}
	if write && s.cfg.L2.Policy == WriteThrough {
		return s.DRAM.Access(lineAddr, true, r2.Ready)
	}
	return s.DRAM.Access(lineAddr, false, r2.Ready) + s.cfg.L2.HitLat
}

// AccessViaL2 lets a core-side structure backed by the L2 (the LVC) spill or
// fill a line, bypassing the L1.
func (s *System) AccessViaL2(lineAddr int64, write bool, now int64) int64 {
	return s.accessL2(lineAddr, write, now)
}

// AccessShared performs a scratchpad access: fixed latency plus bank
// conflicts (one request per bank per cycle).
func (s *System) AccessShared(wordAddr int64, now int64) int64 {
	bank := int(wordAddr % int64(len(s.sharedBanks)))
	return s.sharedBanks[bank].Alloc(now) + s.cfg.SharedLat
}
