package mem

import (
	"math/rand"
	"testing"
)

// vectorConfig builds a small memory system so random streams exercise
// evictions, writebacks, MSHR pressure and bank conflicts quickly.
func vectorConfig(policy WritePolicy, l1Banks, l2Banks int) Config {
	return Config{
		L1: CacheConfig{
			SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Banks: l1Banks,
			HitLat: 24, Policy: policy,
		},
		L2: CacheConfig{
			SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Banks: l2Banks,
			HitLat: 90, Policy: WriteBack,
		},
		DRAM:        DRAMConfig{Channels: 2, Banks: 4, AccessLat: 220, BusyCyc: 4},
		L1MSHRs:     8,
		WordBytes:   4,
		SharedBanks: 8,
		SharedLat:   2,
	}
}

// TestAccessVectorMatchesAccessWord drives random mixed load/store streams
// through System.AccessVector in random-sized batches and through the
// per-word AccessWord loop on a twin system, asserting identical completion
// cycles, statistics, and cache directory state. This is the drift gate for
// the batched path: AccessBankedVector duplicates AccessBanked's directory
// and settlement logic, and this test is what keeps them in lockstep.
func TestAccessVectorMatchesAccessWord(t *testing.T) {
	geometries := []struct {
		name             string
		l1Banks, l2Banks int
	}{
		{"pow2-banks", 8, 4},
		{"non-pow2-banks", 6, 3},
	}
	for _, pol := range []WritePolicy{WriteBack, WriteThrough} {
		for _, g := range geometries {
			name := pol.String() + "/" + g.name
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(0x5eed + int64(g.l1Banks) + 64*int64(pol)))
				cfg := vectorConfig(pol, g.l1Banks, g.l2Banks)
				ref := NewSystem(cfg)
				vec := NewSystem(cfg)

				const rounds = 64
				const maxBatch = 96
				addrSpace := int64(4096)
				now := int64(0)
				addrs := make([]int64, maxBatch)
				writes := make([]bool, maxBatch)
				issues := make([]int64, maxBatch)
				dones := make([]int64, maxBatch)
				touched := map[int64]bool{}

				for round := 0; round < rounds; round++ {
					n := 1 + rng.Intn(maxBatch)
					base := now
					for i := 0; i < n; i++ {
						// Mix strided, clustered and random addresses so
						// combining, conflicts and misses all occur.
						switch rng.Intn(3) {
						case 0:
							addrs[i] = int64(i) * 7 % addrSpace
						case 1:
							addrs[i] = rng.Int63n(64)
						default:
							addrs[i] = rng.Int63n(addrSpace)
						}
						writes[i] = rng.Intn(3) == 0
						// Issue times drift forward with jitter, including
						// ties and small inversions (out-of-order lanes).
						issues[i] = base + int64(i)/2 + rng.Int63n(5) - 2
						touched[addrs[i]/16] = true
					}
					now += int64(n) / 2

					vec.AccessVector(addrs[:n], writes[:n], issues[:n], dones[:n])
					for i := 0; i < n; i++ {
						want := ref.AccessWord(addrs[i], writes[i], issues[i])
						if dones[i] != want {
							t.Fatalf("round %d elem %d (addr %d write %v issue %d): vector done %d, serial %d",
								round, i, addrs[i], writes[i], issues[i], dones[i], want)
						}
					}
					if ref.Stats() != vec.Stats() {
						t.Fatalf("round %d: stats diverged:\nserial %+v\nvector %+v", round, ref.Stats(), vec.Stats())
					}
				}

				// Directory state must match line for line.
				for line := range touched {
					if ref.L1.Contains(line) != vec.L1.Contains(line) {
						t.Fatalf("L1 line %d: serial contains=%v vector contains=%v",
							line, ref.L1.Contains(line), vec.L1.Contains(line))
					}
					if ref.L2.Contains(line) != vec.L2.Contains(line) {
						t.Fatalf("L2 line %d: serial contains=%v vector contains=%v",
							line, ref.L2.Contains(line), vec.L2.Contains(line))
					}
				}

				// Hidden state (dirty bits, LRU, rings, bank slots, MSHRs)
				// must agree too: a follow-up serial sweep over both systems
				// only completes identically if every piece of timing state
				// was left byte-equal by the batched walk.
				for i := int64(0); i < 512; i++ {
					a := i * 3 % addrSpace
					w := i%5 == 0
					d1 := ref.AccessWord(a, w, now+i)
					d2 := vec.AccessWord(a, w, now+i)
					if d1 != d2 {
						t.Fatalf("post-sweep access %d (addr %d): serial %d vector %d", i, a, d1, d2)
					}
				}
				if ref.Stats() != vec.Stats() {
					t.Fatalf("post-sweep stats diverged:\nserial %+v\nvector %+v", ref.Stats(), vec.Stats())
				}
			})
		}
	}
}

// TestAccessVectorSingleElement pins the degenerate batch: a one-element
// vector call is exactly one AccessWord.
func TestAccessVectorSingleElement(t *testing.T) {
	cfg := DefaultConfig(WriteBack)
	ref := NewSystem(cfg)
	vec := NewSystem(cfg)
	addrs := []int64{129}
	writes := []bool{false}
	issues := []int64{5}
	dones := []int64{0}
	vec.AccessVector(addrs, writes, issues, dones)
	if want := ref.AccessWord(129, false, 5); dones[0] != want {
		t.Fatalf("single-element vector done %d, serial %d", dones[0], want)
	}
}

func TestOutstandingLenAfter(t *testing.T) {
	o := NewOutstanding(4)
	o.Record(10)
	o.Record(20)
	o.Record(30)
	for _, tc := range []struct {
		ready int64
		want  int
	}{{5, 3}, {10, 2}, {25, 1}, {30, 0}} {
		if got := o.LenAfter(tc.ready); got != tc.want {
			t.Fatalf("LenAfter(%d) = %d, want %d", tc.ready, got, tc.want)
		}
	}
	if o.Len() != 3 {
		t.Fatalf("LenAfter mutated the window: Len = %d", o.Len())
	}
}
