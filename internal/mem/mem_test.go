package mem

import (
	"testing"
	"testing/quick"
)

func smallCache(policy WritePolicy) *Cache {
	return NewCache(CacheConfig{
		SizeBytes: 1024, LineBytes: 64, Ways: 2, Banks: 4, HitLat: 4, Policy: policy,
	})
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, Banks: 4, HitLat: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 8 {
		t.Fatalf("Sets = %d, want 8", good.Sets())
	}
	bad := good
	bad.SizeBytes = 1000
	if err := bad.Validate(); err == nil {
		t.Error("want error for non-divisible size")
	}
	bad = good
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero ways")
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := smallCache(WriteBack)
	r := c.Access(5, false, 0)
	if r.Hit {
		t.Error("cold access hit")
	}
	r = c.Access(5, false, 10)
	if !r.Hit {
		t.Error("second access missed")
	}
	if c.Stats.Reads != 2 || c.Stats.ReadMiss != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

// conflictingLines returns three distinct lines that map to the same set
// under the hashed index.
func conflictingLines(c *Cache) (int64, int64, int64) {
	want := c.setOf(0)
	var found []int64
	for l := int64(0); len(found) < 3 && l < 1<<20; l++ {
		if c.setOf(l) == want {
			found = append(found, l)
		}
	}
	return found[0], found[1], found[2]
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache(WriteBack) // 8 sets, 2 ways
	a, b2, c3 := conflictingLines(c)
	c.Access(a, false, 0)
	c.Access(b2, false, 1)
	c.Access(c3, false, 2) // evicts a (LRU)
	if c.Contains(a) {
		t.Errorf("line %d should be evicted", a)
	}
	if !c.Contains(b2) || !c.Contains(c3) {
		t.Error("later lines should be present")
	}
}

func TestCacheWriteBackDirtyEviction(t *testing.T) {
	c := smallCache(WriteBack)
	a, b2, c3 := conflictingLines(c)
	c.Access(a, true, 0) // allocate dirty
	c.Access(b2, false, 1)
	r := c.Access(c3, false, 2) // evicts dirty line a
	if r.Writeback != a {
		t.Errorf("writeback = %d, want line %d", r.Writeback, a)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestHashedIndexBreaksStrideAliasing(t *testing.T) {
	// Power-of-two strides (struct-of-arrays plane bases) must not land in
	// one set: with plain modulo indexing lines 0, sets, 2*sets... all
	// alias; the hash must spread them.
	c := smallCache(WriteBack)
	sets := int64(c.Config().Sets())
	seen := map[int]bool{}
	for j := int64(0); j < 8; j++ {
		seen[c.setOf(j*sets)] = true
	}
	if len(seen) < 4 {
		t.Errorf("stride-%d lines map to only %d sets", sets, len(seen))
	}
}

func TestCacheWriteThroughNoAllocate(t *testing.T) {
	c := smallCache(WriteThrough)
	r := c.Access(3, true, 0)
	if r.Hit {
		t.Error("cold write hit")
	}
	if c.Contains(3) {
		t.Error("write-through no-allocate cache allocated on write miss")
	}
	// A read fill then a write hit must not mark dirty (write-through).
	c.Access(4, false, 1)
	c.Access(4, true, 2)
	c.Access(12, false, 3)
	r = c.Access(20, false, 4) // force eviction in that set
	if r.Writeback != -1 {
		t.Error("write-through cache produced a writeback")
	}
}

func TestCacheBankConflicts(t *testing.T) {
	c := smallCache(WriteBack)
	// Same bank (line addresses congruent mod 4), same cycle: serialized.
	r1 := c.Access(4, false, 100)
	r2 := c.Access(8, false, 100)
	if r1.Ready != 100 {
		t.Errorf("first ready = %d, want 100", r1.Ready)
	}
	if r2.Ready != 101 {
		t.Errorf("conflicting ready = %d, want 101", r2.Ready)
	}
	// Different bank: no conflict.
	r3 := c.Access(5, false, 100)
	if r3.Ready != 100 {
		t.Errorf("different-bank ready = %d, want 100", r3.Ready)
	}
}

func TestDRAMOccupancy(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 2, Banks: 2, AccessLat: 100, BusyCyc: 4})
	t1 := d.Access(0, false, 0)
	t2 := d.Access(4, false, 0) // same bank (4 % 4 == 0)
	if t1 != 100 {
		t.Errorf("t1 = %d, want 100", t1)
	}
	if t2 != 104 {
		t.Errorf("t2 = %d, want 104 (bank busy)", t2)
	}
	t3 := d.Access(1, false, 0) // different bank
	if t3 != 100 {
		t.Errorf("t3 = %d, want 100", t3)
	}
	if d.Stats.Reads != 3 {
		t.Errorf("reads = %d, want 3", d.Stats.Reads)
	}
}

func TestSystemHitFasterThanMiss(t *testing.T) {
	s := NewSystem(DefaultConfig(WriteBack))
	cold := s.AccessWord(0, false, 0)
	warm := s.AccessWord(1, false, cold) // same 128B line
	if warm-cold >= cold {
		t.Errorf("warm access latency %d not better than cold %d", warm-cold, cold)
	}
	st := s.Stats()
	if st.L1.ReadMiss != 1 || st.L2.ReadMiss != 1 || st.DRAM.Reads != 1 {
		t.Errorf("miss path stats = %+v", st)
	}
	if st.L1.Reads != 2 {
		t.Errorf("L1 reads = %d, want 2", st.L1.Reads)
	}
}

func TestSystemWritePolicyTrafficDiffers(t *testing.T) {
	// Repeated writes to one line: write-back L1 absorbs them; a
	// write-through L1 forwards each one to the L2.
	wb := NewSystem(DefaultConfig(WriteBack))
	wt := NewSystem(DefaultConfig(WriteThrough))
	now := int64(0)
	for i := 0; i < 64; i++ {
		wb.AccessWord(int64(i%4), true, now)
		wt.AccessWord(int64(i%4), true, now)
		now += 10
	}
	if got := wb.Stats().L2.Writes; got > 2 {
		t.Errorf("write-back L2 writes = %d, want <= 2", got)
	}
	if got := wt.Stats().L2.Writes; got != 64 {
		t.Errorf("write-through L2 writes = %d, want 64", got)
	}
}

func TestSystemSharedBankConflict(t *testing.T) {
	s := NewSystem(DefaultConfig(WriteBack))
	t1 := s.AccessShared(0, 50)
	t2 := s.AccessShared(32, 50) // same bank (32 banks)
	t3 := s.AccessShared(1, 50)  // different bank
	if t2 <= t1 {
		t.Errorf("conflicting shared access t2=%d not after t1=%d", t2, t1)
	}
	if t3 != t1 {
		t.Errorf("independent shared access t3=%d, want %d", t3, t1)
	}
}

func TestAccessViaL2BypassesL1(t *testing.T) {
	s := NewSystem(DefaultConfig(WriteBack))
	s.AccessViaL2(7, false, 0)
	st := s.Stats()
	if st.L1.Accesses() != 0 {
		t.Errorf("L1 accesses = %d, want 0", st.L1.Accesses())
	}
	if st.L2.Reads != 1 {
		t.Errorf("L2 reads = %d, want 1", st.L2.Reads)
	}
}

// Properties: completion time never precedes issue time and is monotone in
// issue time for a private cache line.
func TestSystemTimingProperties(t *testing.T) {
	s := NewSystem(DefaultConfig(WriteBack))
	f := func(addr uint16, write bool, now uint16) bool {
		done := s.AccessWord(int64(addr), write, int64(now))
		return done > int64(now)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCacheStatsConsistency(t *testing.T) {
	c := smallCache(WriteBack)
	for i := int64(0); i < 1000; i++ {
		c.Access(i%37, i%3 == 0, i)
	}
	st := c.Stats
	if st.Accesses() != 1000 {
		t.Fatalf("accesses = %d, want 1000", st.Accesses())
	}
	if st.Misses() > st.Accesses() {
		t.Error("more misses than accesses")
	}
	if st.Fills < st.ReadMiss {
		t.Error("every read miss must fill")
	}
}

// Properties of the out-of-order slot allocator.
func TestSlotAllocProperties(t *testing.T) {
	var a SlotAlloc
	seen := map[int64]bool{}
	rng := int64(12345)
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		ready := (rng >> 33) % 512
		if ready < 0 {
			ready = -ready
		}
		got := a.Alloc(ready)
		if got < ready {
			t.Fatalf("Alloc(%d) = %d < ready", ready, got)
		}
		if seen[got] {
			t.Fatalf("cycle %d double-booked", got)
		}
		seen[got] = true
	}
	if len(a.spans) > maxSpans {
		t.Errorf("span list grew to %d", len(a.spans))
	}
}

func TestOutstandingCapacity(t *testing.T) {
	o := NewOutstanding(4)
	// Fill with completions far in the future.
	for i := 0; i < 4; i++ {
		if got := o.Admit(int64(i)); got != int64(i) {
			t.Fatalf("Admit(%d) = %d with free slots", i, got)
		}
		o.Record(1000 + int64(i))
	}
	// Full: must wait for the earliest completion (1000).
	if got := o.Admit(10); got != 1000 {
		t.Fatalf("Admit at capacity = %d, want 1000", got)
	}
	o.Record(2000)
	// 1001 is now the earliest of {1001,1002,1003,2000}.
	if got := o.Admit(10); got != 1001 {
		t.Fatalf("second Admit = %d, want 1001", got)
	}
}

func TestReadCombining(t *testing.T) {
	c := smallCache(WriteBack)
	// Warm the line.
	c.Access(0, false, 0)
	base := c.Stats.Combined
	// Burst of reads to the same line within the window: all but the first
	// (already recorded) combine.
	for i := int64(1); i <= 5; i++ {
		c.Access(0, false, i)
	}
	if c.Stats.Combined < base+4 {
		t.Errorf("combined = %d, want >= %d", c.Stats.Combined, base+4)
	}
	// Writes never combine on a write-back cache without CombineWrites.
	w0 := c.Stats.Combined
	c.Access(0, true, 6)
	c.Access(0, true, 6)
	if c.Stats.Combined != w0 {
		t.Error("writes combined without CombineWrites")
	}
}

func TestWriteCombiningExtension(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, Banks: 4,
		HitLat: 4, Policy: WriteBack, CombineWrites: true}
	c := NewCache(cfg)
	c.Access(0, true, 0)
	before := c.Stats.Combined
	c.Access(0, true, 1)
	c.Access(0, true, 2)
	if c.Stats.Combined != before+2 {
		t.Errorf("combined = %d, want %d", c.Stats.Combined, before+2)
	}
}
