package mem

// vector.go is the wave-level batch entry into the memory-timing model: one
// call settles a whole vector of word accesses while reproducing, byte for
// byte, the state and results of the equivalent sequential AccessWord loop.
//
// The equivalence rests on a three-pass decomposition of AccessBanked + the
// downstream walk, justified by state disjointness:
//
//   Pass A (original order)  — cache directory: tick, hit/miss, LRU update,
//     victim choice, fill, and the hit/miss statistics. The directory never
//     reads bank-slot or ring state, and its own evolution depends only on
//     the element order, so walking it first for the whole batch leaves it
//     in exactly the serial loop's state.
//   Pass B (bank-sorted)     — per-bank combine ring + SlotAlloc settlement.
//     Ring and slot state are private to a bank, and a stable sort keeps
//     each bank's elements in original relative order, so every element's
//     accepted cycle (and every ring/slot mutation) matches the serial loop.
//   Pass C (original order)  — downstream traffic: L2, DRAM and the L1 MSHR
//     window, which are shared across banks and order-sensitive, walked in
//     element order exactly as the serial loop interleaves them.
//
// The passes commute with each other because they touch disjoint state: A
// only the directory, B only per-bank rings/slots, C only L2/DRAM/MSHRs.
// Within each pass the serial loop's per-element order (total order for A
// and C, per-bank relative order for B) is preserved, so the composition is
// exact for any batch and any per-element issue times. The property test
// (vector_test.go) enforces this against the serial loop directly.

// AccessBankedVector performs the timing access for a batch of lines with
// explicit per-element bank selectors, equivalent to calling AccessBanked
// once per element in order. Results land in out (len(out) == len(lineAddrs));
// all slices must be the same length. Scratch is reused across calls, so
// steady-state batches allocate nothing.
//
//vgiw:hotpath
func (c *Cache) AccessBankedVector(lineAddrs, bankSels []int64, writes []bool, nows []int64, out []AccessResult) {
	n := len(lineAddrs)
	if cap(c.vbank) < n {
		c.vbank = make([]int32, n+n/2+8)
		c.vperm = make([]int32, n+n/2+8)
	}
	if len(c.vcnt) != c.cfg.Banks+1 {
		c.vcnt = make([]int32, c.cfg.Banks+1)
	}
	bankOf := c.vbank[:n]
	cnt := c.vcnt
	clear(cnt)

	// Pass A — original order: bank binning plus the directory walk of
	// AccessBanked (tick, hit/miss stats, LRU touch, victim/fill). Keep this
	// block in lockstep with AccessBanked; the property test enforces it.
	for i := 0; i < n; i++ {
		c.tick++
		sel := bankSels[i]
		var bank int
		if c.bankMask != 0 && sel >= 0 {
			bank = int(sel & c.bankMask)
		} else {
			bank = int(sel % int64(c.cfg.Banks))
		}
		bankOf[i] = int32(bank)
		cnt[bank+1]++

		la := lineAddrs[i]
		write := writes[i]
		if write {
			c.Stats.Writes++
		} else {
			c.Stats.Reads++
		}
		res := AccessResult{Writeback: -1}
		set := c.setOf(la)
		ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
		hit := false
		for j := range ways {
			if ways[j].valid && ways[j].tag == la {
				hit = true
				ways[j].lru = c.tick
				if write && c.cfg.Policy == WriteBack {
					ways[j].dirty = true
				}
				break
			}
		}
		if hit {
			res.Hit = true
			out[i] = res
			continue
		}
		if write {
			c.Stats.WriteMiss++
			if c.cfg.Policy == WriteThrough {
				// no-allocate: the write just goes to the next level.
				out[i] = res
				continue
			}
		} else {
			c.Stats.ReadMiss++
		}
		victim := 0
		for j := range ways {
			if !ways[j].valid {
				victim = j
				break
			}
			if ways[j].lru < ways[victim].lru {
				victim = j
			}
		}
		v := &ways[victim]
		if v.valid {
			res.Evicted = true
			if v.dirty {
				c.Stats.Writebacks++
				res.Writeback = v.tag
			}
		}
		c.Stats.Fills++
		*v = line{tag: la, valid: true, dirty: write && c.cfg.Policy == WriteBack, lru: c.tick}
		out[i] = res
	}

	// Pass B — per-bank combine ring + SlotAlloc settlement. Exactness needs
	// only each bank's elements in original relative order, which ANY stable
	// grouping satisfies — including the original order itself. The stable
	// counting sort exists purely to amortize bank pointer, ring and slot
	// loads over each bank's whole group, so it engages only when some bank
	// sees enough elements to pay for the permutation (conflict-heavy
	// batches); low-conflict batches walk in original order at exactly the
	// serial loop's cost.
	maxCnt := int32(0)
	for b := 1; b < len(cnt); b++ {
		if cnt[b] > maxCnt {
			maxCnt = cnt[b]
		}
	}
	perm := c.vperm[:n]
	sorted := maxCnt >= 3
	if sorted {
		for b := 1; b < len(cnt); b++ {
			cnt[b] += cnt[b-1]
		}
		for i := 0; i < n; i++ {
			b := bankOf[i]
			perm[cnt[b]] = int32(i)
			cnt[b]++
		}
	}
	var ring *combineRing
	var slot *SlotAlloc
	curBank := int32(-1)
	for k := 0; k < n; k++ {
		i := k
		if sorted {
			i = int(perm[k])
		}
		if b := bankOf[i]; b != curBank {
			curBank = b
			ring = &c.recent[b]
			slot = &c.banks[b]
		}
		la := lineAddrs[i]
		now := nows[i]
		var start int64
		combined := false
		if !writes[i] || c.cfg.CombineWrites {
			for q := int8(0); q < ring.n; q++ {
				e := &ring.e[(ring.head+q)&(combineDepth-1)]
				if e.line == la && absDiff(now, e.start) <= combineWindow {
					start = e.start
					combined = true
					c.Stats.Combined++
					break
				}
			}
		}
		if !combined {
			start = slot.Alloc(now)
			ring.push(la, start)
		}
		out[i].Ready = start
	}
}

// AccessVector performs a batch of global-memory word accesses, equivalent
// to calling AccessWord once per element in order: dones[i] is element i's
// completion cycle given issue at issues[i]. All slices must share a length.
// Per-element write flags let mixed batches (and the property test) use the
// same entry; the engine's per-node batches are uniform. Scratch lives in
// the System and is reused, so steady-state batches allocate nothing.
//
//vgiw:hotpath
func (s *System) AccessVector(addrs []int64, writes []bool, issues, dones []int64) {
	n := len(addrs)
	if cap(s.vline) < n {
		s.vline = make([]int64, n+n/2+8)
		s.vres = make([]AccessResult, n+n/2+8)
	}
	lines := s.vline[:n]
	for i, a := range addrs {
		if s.lineShift >= 0 && a >= 0 {
			lines[i] = a >> s.lineShift
		} else {
			lines[i] = (a * int64(s.cfg.WordBytes)) / int64(s.cfg.L1.LineBytes)
		}
	}
	res := s.vres[:n]
	s.L1.AccessBankedVector(lines, addrs, writes, issues, res)

	// Pass C — downstream traffic in original order: writebacks, fills and
	// load misses reach the shared L2/DRAM/MSHR state exactly as the serial
	// loop interleaves them (none of it reads L1 directory or bank state,
	// so running it after the whole batch's L1 legs is exact).
	for i := 0; i < n; i++ {
		r1 := res[i]
		done := r1.Ready + s.cfg.L1.HitLat
		if r1.Writeback >= 0 {
			s.accessL2(r1.Writeback, true, r1.Ready)
		}
		if r1.Hit {
			dones[i] = done
			continue
		}
		if writes[i] {
			if s.cfg.L1.Policy == WriteThrough {
				s.accessL2(lines[i], true, r1.Ready)
				dones[i] = r1.Ready + 1
				continue
			}
			s.accessL2(lines[i], false, r1.Ready) // fetch-on-write, off the critical path
			dones[i] = done
			continue
		}
		start := s.mshrs.Admit(r1.Ready)
		d := s.accessL2(lines[i], false, start) + s.cfg.L1.HitLat
		s.mshrs.Record(d)
		dones[i] = d
	}
}
