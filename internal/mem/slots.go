package mem

// SlotAlloc models a fully pipelined unit that accepts one new token set per
// cycle, with tagged-token out-of-order semantics: a request ready at cycle c
// takes the smallest *free* cycle >= c, even if later-arriving work already
// claimed later cycles. This is what lets unblocked threads overtake threads
// stalled on memory (§3.5) — a simple monotonic next-free counter would
// serialize everything behind the slowest thread.
//
// Busy cycles are kept as disjoint inclusive spans; allocations are mostly
// sequential, so the span list stays short. If pathological interleavings
// fragment it, the list is compacted pessimistically (adjacent spans merge
// across their gap), which can only over-estimate contention.
//
// The trailing span — the one almost every allocation extends — lives in
// dedicated fields (tailLo, tailEnd) rather than at the end of the slice, so
// the hot path of Alloc is small enough for the compiler to inline at the
// engine's call sites. tailEnd is the exclusive end (hi+1); tailEnd == 0
// doubles as "no trailing span" so the zero value is an empty allocator.
type SlotAlloc struct {
	spans   []span // all spans except the trailing one, in order
	tailLo  int64
	tailEnd int64
	// hint/hint2 remember where the two most recent distinct before-tail
	// allocations landed. A stream of rising ready times revisits the same
	// (large, merged) span many times before moving on, and a bank typically
	// serves two interleaved streams probing two distant regions (e.g. a load
	// stream inside the long-merged past and a store stream in the recently
	// archived suffix), so checking both recent positions almost always
	// replaces the binary search. Purely accelerators: validity is re-checked
	// on every use, so a stale hint costs one failed check, never a wrong
	// slot.
	hint  int
	hint2 int
}

type span struct{ lo, hi int64 }

// maxSpans bounds the span list; beyond it, smallest gaps are merged away.
const maxSpans = 128

// Alloc claims and returns the smallest free cycle >= ready. The body is
// just the hottest case — extending the trailing span by one cycle, which is
// what happens when unit ready times advance with simulated time; everything
// else lives in allocSlow. (A genuine trailing span ending at cycle -1 also
// has tailEnd == 0 and falls through to the slow path, which handles it
// correctly — the fast path only needs to never extend the empty state.)
func (a *SlotAlloc) Alloc(ready int64) int64 {
	if ready == a.tailEnd && ready != 0 {
		a.tailEnd = ready + 1
		return ready
	}
	return a.allocSlow(ready)
}

// allocSlow handles everything the inline fast path does not. The two
// common residual cases — ready past the trailing span (banks see strided
// arrival times) and a completely empty allocator — stay O(1). An allocation
// before the trailing span runs allocBefore on the archived span list with
// the tail kept in its dedicated fields: banks that see two interleaved
// arrival streams (one ahead of the other, e.g. loads trailing the store
// stream that owns the tail) land past every archived span, which
// allocBefore resolves with one O(1) comparison instead of materializing the
// tail into the slice and searching around it.
func (a *SlotAlloc) allocSlow(ready int64) int64 {
	// Empty is exactly (0, 0): a genuine span ending at -1 (possible only
	// with negative cycles) has a nonzero tailLo, so it is not mistaken for
	// the empty state.
	hasTail := a.tailEnd != 0 || a.tailLo != 0
	if hasTail && ready > a.tailEnd {
		// Gap past the trailing span: archive it and open a new one.
		a.spans = append(a.spans, span{a.tailLo, a.tailEnd - 1})
		a.tailLo, a.tailEnd = ready, ready+1
		if len(a.spans)+1 > maxSpans {
			a.compactAll()
		}
		return ready
	}
	if hasTail && ready >= a.tailLo {
		// Ready inside (or abutting) the trailing span: the smallest free
		// cycle is just past it — the tail is the last span, so nothing
		// claimed lies beyond. This is the steady state of a warm allocator
		// whose spans have merged into one long busy run.
		got := a.tailEnd
		a.tailEnd = got + 1
		return got
	}
	if !hasTail {
		// Invariant: no trailing span means no spans at all.
		a.tailLo, a.tailEnd = ready, ready+1
		return ready
	}
	return a.allocBefore(ready)
}

// compactAll runs compact over the whole span set including the trailing
// span.
func (a *SlotAlloc) compactAll() {
	a.spans = append(a.spans, span{a.tailLo, a.tailEnd - 1})
	a.compact()
	n := len(a.spans) - 1
	a.tailLo, a.tailEnd = a.spans[n].lo, a.spans[n].hi+1
	a.spans = a.spans[:n]
}

// allocBefore claims the smallest free cycle >= ready when ready lies
// strictly before the trailing span (so the result never lands inside the
// tail: archived spans are separated from it by at least one free cycle).
// The span list plus the tail fields always describe the same claimed set
// the old materialize-search-restore algorithm kept, in the same canonical
// sorted disjoint form, so allocation results are bit-identical — only the
// bookkeeping cost changed.
func (a *SlotAlloc) allocBefore(ready int64) int64 {
	n := len(a.spans)
	// Ready past every archived span: the gap between the archived spans and
	// the trailing span is free. This is the hot case for banks serving two
	// interleaved arrival streams and costs one comparison.
	if n == 0 || ready > a.spans[n-1].hi {
		touchPrev := n > 0 && a.spans[n-1].hi == ready-1
		touchTail := a.tailLo == ready+1
		switch {
		case touchPrev && touchTail:
			a.tailLo = a.spans[n-1].lo
			a.spans = a.spans[:n-1]
		case touchPrev:
			a.spans[n-1].hi = ready
		case touchTail:
			a.tailLo = ready
		default:
			a.spans = append(a.spans, span{ready, ready})
			if len(a.spans)+1 > maxSpans {
				a.compactAll()
			}
		}
		return ready
	}

	// Find the first span with hi >= ready (it exists: the last span
	// qualifies). The hint checks match the search's postcondition exactly —
	// spans[i].hi >= ready and either i == 0 or spans[i-1].hi < ready — so
	// hint hits and misses produce the same index. Miss on both recent
	// positions: plain binary search, kept closure-free.
	i := a.hint
	if !(i < n && a.spans[i].hi >= ready && (i == 0 || a.spans[i-1].hi < ready)) {
		i = a.hint2
		if !(i < n && a.spans[i].hi >= ready && (i == 0 || a.spans[i-1].hi < ready)) {
			lo, hi := 0, n-1
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if a.spans[mid].hi >= ready {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			i = lo
		}
	}
	if i != a.hint {
		a.hint2 = a.hint
		a.hint = i
	}

	start := ready
	if a.spans[i].lo <= start {
		// ready is inside span i: the next candidate is just after it;
		// skip across any subsequent abutting spans (defensive — archived
		// spans keep a free cycle between neighbours).
		start = a.spans[i].hi + 1
		for i+1 < n && a.spans[i+1].lo <= start {
			i++
			start = a.spans[i].hi + 1
		}
		// Extend span i and merge with its successor — or with the trailing
		// span — if they now touch.
		a.spans[i].hi = start
		switch {
		case i+1 < n && a.spans[i+1].lo == start+1:
			a.spans[i].hi = a.spans[i+1].hi
			a.spans = append(a.spans[:i+1], a.spans[i+2:]...)
		case i+1 == n && a.tailLo == start+1:
			a.tailLo = a.spans[i].lo
			a.spans = a.spans[:i]
		}
		return start
	}

	// `start` is free. It may abut span i-1 (hi == start-1) or span i
	// (lo == start+1), or both.
	touchPrev := i > 0 && a.spans[i-1].hi == start-1
	touchNext := a.spans[i].lo == start+1
	switch {
	case touchPrev && touchNext:
		a.spans[i-1].hi = a.spans[i].hi
		a.spans = append(a.spans[:i], a.spans[i+1:]...)
	case touchPrev:
		a.spans[i-1].hi = start
	case touchNext:
		a.spans[i].lo = start
	default:
		a.spans = append(a.spans, span{})
		copy(a.spans[i+1:], a.spans[i:])
		a.spans[i] = span{start, start}
		if len(a.spans)+1 > maxSpans {
			a.compactAll()
		}
	}
	return start
}

// compact halves the span list by merging each pair of neighbours across
// their gap (a pessimistic approximation used only under fragmentation).
func (a *SlotAlloc) compact() {
	out := a.spans[:0]
	for i := 0; i < len(a.spans); i += 2 {
		s := a.spans[i]
		if i+1 < len(a.spans) {
			s.hi = a.spans[i+1].hi
		}
		out = append(out, s)
	}
	a.spans = out
}

// Reset clears all allocations.
func (a *SlotAlloc) Reset() {
	a.spans = a.spans[:0]
	a.tailLo, a.tailEnd = 0, 0
	a.hint = 0
}

// Outstanding models a reservation buffer: at most cap operations in flight.
// A new operation ready at cycle c must wait until fewer than cap previously
// issued operations are still incomplete — but, unlike a FIFO ring, a slot
// frees as soon as *its* operation completes, so one slow miss does not
// block the other slots (dynamic dataflow overtaking).
//
// In-flight completion times live in a sorted sliding window: buf[front:]
// is nondecreasing, the minimum sits at the front, and Record inserts with a
// stable backward shift (equal completion times keep their issue order, so
// the pop sequence is exactly the reference (done, issue-order) order — a
// total order, since ties break deterministically by position). Completion
// times arrive nearly sorted (simulated time moves forward), so the shift is
// almost always zero steps and every operation is O(1) in practice — pops
// and retires are a single index bump, with none of a heap's data-dependent
// branch misses. The worst case (fully reversed arrivals) degrades to the
// O(cap) shift the reference list paid on every Admit anyway.
type Outstanding struct {
	cap   int
	front int
	buf   []int64
}

func NewOutstanding(capacity int) *Outstanding {
	return &Outstanding{cap: capacity}
}

// Reset re-arms the buffer for a new run with the given capacity, keeping
// the window's storage. This lets callers embed Outstanding by value in
// reusable scratch arrays (the engine's per-unit pools) so steady-state runs
// allocate nothing.
func (o *Outstanding) Reset(capacity int) {
	o.cap = capacity
	o.buf = o.buf[:0]
	o.front = 0
}

// Admit returns the earliest cycle >= ready at which a slot is available,
// retiring completed operations as time advances. The body is the
// inline-friendly fast path: a free slot and nothing to retire (the window
// minimum still in flight at `ready` means Retire would be a no-op).
// The unsigned compare folds "0 < len < cap" into one branch; it requires a
// positive capacity, which every caller has (the fabric and memory configs
// validate theirs, and a zero-capacity buffer is useless — Admit would
// serialize on an empty window).
func (o *Outstanding) Admit(ready int64) int64 {
	b, f := o.buf, o.front
	if uint(len(b)-f-1) < uint(o.cap-1) && b[f] > ready {
		return ready
	}
	return o.admitSlow(ready)
}

func (o *Outstanding) admitSlow(ready int64) int64 {
	o.Retire(ready)
	if len(o.buf)-o.front < o.cap {
		return ready
	}
	// Full: wait for the earliest completion (ties broken by issue order).
	return o.PopMin()
}

// Record notes a newly issued operation's completion time, keeping the
// window sorted. Completion times usually arrive in order — then this is a
// plain append — and an out-of-order arrival finds its slot by binary search
// for the first strictly-greater entry, so equal completion times land after
// earlier ones: issue order, preserved without storing it. The displaced
// suffix moves with one copy instead of an element-by-element shift, which
// matters when completion times interleave across banks with different
// backlogs and the insertion point is deep inside the window.
func (o *Outstanding) Record(done int64) {
	b := append(o.buf, done)
	if i := len(b) - 1; i > o.front && b[i-1] > done {
		lo, hi := o.front, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] <= done {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(b[lo+1:], b[lo:i])
		b[lo] = done
	}
	o.buf = b
}

// Retire drops every in-flight operation that completes by `ready`. Admit
// does this implicitly; the engine's batch executor calls it directly while
// deciding wave admission.
func (o *Outstanding) Retire(ready int64) {
	f := o.front
	b := o.buf
	for f < len(b) && b[f] <= ready {
		f++
	}
	o.front = f
	o.shrink()
}

// Len is the number of operations still in flight.
func (o *Outstanding) Len() int { return len(o.buf) - o.front }

// LenAfter returns how many operations would remain in flight after retiring
// every completion <= ready, without mutating the window. The batch executor
// uses it to prove, before settling a wave's memory accesses in one vector
// call, that every Admit in the chunk would have been a passthrough.
func (o *Outstanding) LenAfter(ready int64) int {
	lo, hi := o.front, len(o.buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.buf[mid] <= ready {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return len(o.buf) - lo
}

// Cap returns the window capacity.
func (o *Outstanding) Cap() int { return o.cap }

// Min returns the earliest in-flight completion time; the buffer must be
// non-empty.
func (o *Outstanding) Min() int64 { return o.buf[o.front] }

// PopMin removes and returns the earliest in-flight completion time (ties
// broken by issue order); the buffer must be non-empty.
func (o *Outstanding) PopMin() int64 {
	v := o.buf[o.front]
	o.front++
	o.shrink()
	return v
}

// shrink reclaims the retired prefix once it reaches the window capacity, so
// buf never grows past live + cap elements: each retired slot is copied down
// at most once before the next compaction, keeping Retire amortized O(1).
func (o *Outstanding) shrink() {
	if o.front >= o.cap {
		n := copy(o.buf, o.buf[o.front:])
		o.buf = o.buf[:n]
		o.front = 0
	}
}
