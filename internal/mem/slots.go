package mem

import "sort"

// SlotAlloc models a fully pipelined unit that accepts one new token set per
// cycle, with tagged-token out-of-order semantics: a request ready at cycle c
// takes the smallest *free* cycle >= c, even if later-arriving work already
// claimed later cycles. This is what lets unblocked threads overtake threads
// stalled on memory (§3.5) — a simple monotonic next-free counter would
// serialize everything behind the slowest thread.
//
// Busy cycles are kept as disjoint inclusive spans; allocations are mostly
// sequential, so the span list stays short. If pathological interleavings
// fragment it, the list is compacted pessimistically (adjacent spans merge
// across their gap), which can only over-estimate contention.
type SlotAlloc struct {
	spans []span
}

type span struct{ lo, hi int64 }

// maxSpans bounds the span list; beyond it, smallest gaps are merged away.
const maxSpans = 128

// alloc claims and returns the smallest free cycle >= ready.
func (a *SlotAlloc) Alloc(ready int64) int64 {
	// Find the first span that could contain or follow `ready`.
	i := sort.Search(len(a.spans), func(i int) bool { return a.spans[i].hi >= ready })

	start := ready
	if i < len(a.spans) && a.spans[i].lo <= start {
		// ready is inside span i: the next candidate is just after it;
		// skip across any subsequent abutting spans.
		start = a.spans[i].hi + 1
		for i+1 < len(a.spans) && a.spans[i+1].lo <= start {
			i++
			start = a.spans[i].hi + 1
		}
		// Extend span i and merge with its successor if they now touch.
		a.spans[i].hi = start
		if i+1 < len(a.spans) && a.spans[i+1].lo == start+1 {
			a.spans[i].hi = a.spans[i+1].hi
			a.spans = append(a.spans[:i+1], a.spans[i+2:]...)
		}
		return start
	}

	// `start` is free. It may abut span i-1 (hi == start-1) or span i
	// (lo == start+1), or both.
	touchPrev := i > 0 && a.spans[i-1].hi == start-1
	touchNext := i < len(a.spans) && a.spans[i].lo == start+1
	switch {
	case touchPrev && touchNext:
		a.spans[i-1].hi = a.spans[i].hi
		a.spans = append(a.spans[:i], a.spans[i+1:]...)
	case touchPrev:
		a.spans[i-1].hi = start
	case touchNext:
		a.spans[i].lo = start
	default:
		a.spans = append(a.spans, span{})
		copy(a.spans[i+1:], a.spans[i:])
		a.spans[i] = span{start, start}
	}
	if len(a.spans) > maxSpans {
		a.compact()
	}
	return start
}

// compact halves the span list by merging each pair of neighbours across
// their gap (a pessimistic approximation used only under fragmentation).
func (a *SlotAlloc) compact() {
	out := a.spans[:0]
	for i := 0; i < len(a.spans); i += 2 {
		s := a.spans[i]
		if i+1 < len(a.spans) {
			s.hi = a.spans[i+1].hi
		}
		out = append(out, s)
	}
	a.spans = out
}

// reset clears all allocations.
func (a *SlotAlloc) Reset() { a.spans = a.spans[:0] }

// Outstanding models a reservation buffer: at most cap operations in flight.
// A new operation ready at cycle c must wait until fewer than cap previously
// issued operations are still incomplete — but, unlike a FIFO ring, a slot
// frees as soon as *its* operation completes, so one slow miss does not
// block the other slots (dynamic dataflow overtaking).
type Outstanding struct {
	cap  int
	done []int64 // completion times of in-flight ops
}

func NewOutstanding(capacity int) *Outstanding {
	return &Outstanding{cap: capacity}
}

// Reset re-arms the buffer for a new run with the given capacity, keeping
// the in-flight list's storage. This lets callers embed Outstanding by value
// in reusable scratch arrays (the engine's per-unit pools) so steady-state
// runs allocate nothing.
func (o *Outstanding) Reset(capacity int) {
	o.cap = capacity
	o.done = o.done[:0]
}

// admit returns the earliest cycle >= ready at which a slot is available,
// retiring completed operations as time advances.
func (o *Outstanding) Admit(ready int64) int64 {
	// Retire everything that completes by `ready`.
	live := o.done[:0]
	for _, d := range o.done {
		if d > ready {
			live = append(live, d)
		}
	}
	o.done = live
	if len(o.done) < o.cap {
		return ready
	}
	// Full: wait for the earliest completion.
	minIdx := 0
	for i, d := range o.done {
		if d < o.done[minIdx] {
			minIdx = i
		}
	}
	start := o.done[minIdx]
	o.done = append(o.done[:minIdx], o.done[minIdx+1:]...)
	return start
}

// record notes a newly issued operation's completion time.
func (o *Outstanding) Record(done int64) { o.done = append(o.done, done) }
