// Package mem models the GPU memory system of §3.6: a banked L1 cache, a
// banked L2, and GDDR5-like DRAM, with configurable write policies (VGIW uses
// write-back + write-allocate L1; the Fermi baseline uses write-through +
// no-allocate). The model is timing + event-counting only: functional data
// lives in a flat word-addressed array owned by the simulators.
package mem

import (
	"fmt"
	"sync"
)

// WritePolicy selects the cache write behaviour.
type WritePolicy uint8

const (
	// WriteBack marks lines dirty and writes them to the next level on
	// eviction; write misses allocate (fetch-on-write).
	WriteBack WritePolicy = iota
	// WriteThrough forwards every write to the next level; write misses do
	// not allocate.
	WriteThrough
)

func (p WritePolicy) String() string {
	if p == WriteBack {
		return "write-back"
	}
	return "write-through"
}

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Banks     int
	HitLat    int64 // access latency on a hit, in cycles
	Policy    WritePolicy
	// CombineWrites extends the MSHR-style merge window to stores: writes
	// to one line from several units coalesce into a single bank access
	// (a write-combining buffer). This is the §5 "memory coalescing on
	// MT-CGRFs" future-work extension; off by default to match the paper.
	CombineWrites bool
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Validate checks the configuration is internally consistent.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 || c.Banks <= 0 {
		return fmt.Errorf("mem: cache dimensions must be positive: %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("mem: cache size %d not divisible by line*ways", c.SizeBytes)
	}
	if c.Sets() == 0 {
		return fmt.Errorf("mem: cache has zero sets: %+v", c)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Reads      uint64
	Writes     uint64
	ReadMiss   uint64
	WriteMiss  uint64
	Writebacks uint64 // dirty evictions
	Fills      uint64 // lines brought in
	Combined   uint64 // reads merged with an in-flight same-line access
}

// Accesses is the total number of accesses.
func (s CacheStats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses is the total number of misses.
func (s CacheStats) Misses() uint64 { return s.ReadMiss + s.WriteMiss }

// line is one cache line's bookkeeping.
type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a banked, set-associative cache timing model. It tracks presence
// and dirtiness, not data. Addresses are byte addresses.
type Cache struct {
	cfg CacheConfig
	// lines is a flat slab of sets*ways entries; set s occupies
	// lines[s*ways : (s+1)*ways]. Flat storage keeps the whole directory in
	// one allocation so it can be recycled through linePool across runs.
	lines []line
	banks []SlotAlloc
	// Per-bank recent-access rings, for read combining: concurrent reads of
	// one line (a broadcast — every thread loading the same table entry, or
	// the words of one coalesced-range line arriving from several LDST
	// units) merge into a single bank access, like MSHR merging in a real
	// cache. Each ring is a fixed circular buffer scanned oldest-first —
	// the same order as the shifting slice it replaces, without the
	// per-access memmove.
	recent []combineRing
	tick   uint64
	// setShift/bankMask are the power-of-two fast-path constants for setOf
	// and bank selection (setShift < 0 / bankMask == 0 when the geometry is
	// not a power of two and the generic divide path must run).
	setShift int8
	bankMask int64
	// Batch scratch for AccessBankedVector's stable bank sort (vector.go),
	// reused across calls so steady-state batches allocate nothing.
	vbank []int32
	vperm []int32
	vcnt  []int32
	Stats CacheStats
}

type combineEntry struct {
	line  int64
	start int64
}

// combineWindow is how close (in cycles) a read must be to an in-flight
// same-line access to piggyback on it; combineDepth is how many recent
// accesses each bank remembers (MSHR-merge capacity; must stay a power of
// two for the ring index mask).
const (
	combineWindow = 16
	combineDepth  = 8
)

// combineRing is one bank's recent-access window: a fixed-capacity FIFO
// whose entries are scanned oldest-first (insertion order, like the
// reference shifting slice) and which overwrites its oldest entry when full.
type combineRing struct {
	e       [combineDepth]combineEntry
	head, n int8
}

// push appends an entry, displacing the oldest when full.
func (r *combineRing) push(line, start int64) {
	if r.n < combineDepth {
		r.e[(r.head+r.n)&(combineDepth-1)] = combineEntry{line: line, start: start}
		r.n++
		return
	}
	r.e[r.head] = combineEntry{line: line, start: start}
	r.head = (r.head + 1) & (combineDepth - 1)
}

// linePool recycles cache directory slabs across runs. The experiment
// harness builds a fresh memory system per kernel run (tens of thousands of
// lines for the L2 alone); with the parallel harness those runs churn fast
// enough that recycling the slabs measurably cuts allocator pressure.
var linePool = sync.Pool{}

// newLineSlab returns a zeroed slab of n entries, reusing a pooled one when
// it is large enough.
func newLineSlab(n int) []line {
	if v := linePool.Get(); v != nil {
		if s := v.([]line); cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
		// Too small for this geometry; drop it and allocate.
	}
	return make([]line, n)
}

// NewCache builds a cache; the configuration must be valid.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:      cfg,
		lines:    newLineSlab(cfg.Sets() * cfg.Ways),
		banks:    make([]SlotAlloc, cfg.Banks),
		recent:   make([]combineRing, cfg.Banks),
		setShift: pow2Shift(int64(cfg.Sets())),
		bankMask: pow2Mask(int64(cfg.Banks)),
	}
}

// pow2Shift returns log2(n) if n is a positive power of two, else -1.
func pow2Shift(n int64) int8 {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	var s int8
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// pow2Mask returns n-1 if n is a positive power of two, else 0.
func pow2Mask(n int64) int64 {
	if n > 0 && n&(n-1) == 0 {
		return n - 1
	}
	return 0
}

// Release returns the directory slab to the pool. The cache must not be
// accessed afterwards; Stats remain readable.
func (c *Cache) Release() {
	if c.lines != nil {
		linePool.Put(c.lines)
		c.lines = nil
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr maps a byte address to its line address.
func (c *Cache) LineAddr(addr int64) int64 { return addr / int64(c.cfg.LineBytes) }

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	Hit       bool
	Ready     int64 // cycle when the bank accepted the request
	Writeback int64 // line address of a dirty eviction, -1 if none
	Evicted   bool  // a valid line was displaced (dirty or not)
}

// Access performs the timing access for one line, selecting the bank by the
// line address. GPU data caches that serve word-granular requests are
// word-interleaved across banks; use AccessBanked for those.
func (c *Cache) Access(lineAddr int64, write bool, now int64) AccessResult {
	return c.AccessBanked(lineAddr, lineAddr, write, now)
}

// AccessBanked performs the timing access for one line with an explicit bank
// selector (callers pass the word address for word-interleaved banking, as
// in the 32-bank L1 the perimeter LDST/LVU units reach over a crossbar). It
// accounts bank contention (each bank accepts one request per cycle) and
// returns whether the line hit, when the bank accepted the request, and
// whether a dirty eviction must be written to the next level. Fill decisions
// follow the write policy; the caller orchestrates the next level.
func (c *Cache) AccessBanked(lineAddr, bankSel int64, write bool, now int64) AccessResult {
	c.tick++
	var bank int
	if c.bankMask != 0 && bankSel >= 0 {
		bank = int(bankSel & c.bankMask)
	} else {
		bank = int(bankSel % int64(c.cfg.Banks))
	}
	set := c.setOf(lineAddr)
	var start int64
	combined := false
	ring := &c.recent[bank]
	if !write || c.cfg.CombineWrites {
		for k := int8(0); k < ring.n; k++ {
			e := &ring.e[(ring.head+k)&(combineDepth-1)]
			if e.line == lineAddr && absDiff(now, e.start) <= combineWindow {
				// Read combining: ride the in-flight access, no bank slot.
				start = e.start
				combined = true
				c.Stats.Combined++
				break
			}
		}
	}
	if !combined {
		start = c.banks[bank].Alloc(now)
		ring.push(lineAddr, start)
	}

	res := AccessResult{Ready: start, Writeback: -1}

	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}

	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			res.Hit = true
			ways[i].lru = c.tick
			if write && c.cfg.Policy == WriteBack {
				ways[i].dirty = true
			}
			return res
		}
	}

	// Miss.
	if write {
		c.Stats.WriteMiss++
		if c.cfg.Policy == WriteThrough {
			// no-allocate: the write just goes to the next level.
			return res
		}
	} else {
		c.Stats.ReadMiss++
	}

	// Allocate: pick the LRU victim.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	v := &ways[victim]
	if v.valid {
		res.Evicted = true
		if v.dirty {
			c.Stats.Writebacks++
			res.Writeback = v.tag
		}
	}
	c.Stats.Fills++
	*v = line{tag: lineAddr, valid: true, dirty: write && c.cfg.Policy == WriteBack, lru: c.tick}
	return res
}

// setOf maps a line to a set with hashed indexing (upper address bits XORed
// into the index), dissolving the power-of-two stride aliasing that plain
// modulo indexing suffers on struct-of-arrays layouts. GPU L1/L2 caches hash
// their set index the same way. Tags store the full line address.
func (c *Cache) setOf(lineAddr int64) int {
	if c.setShift > 0 && lineAddr >= 0 {
		// Power-of-two set count: shifts and a mask compute the identical
		// hash (for non-negative addresses, /2^k == >>k and %2^k == &mask).
		s := c.setShift
		h := lineAddr ^ (lineAddr >> s) ^ (lineAddr >> (2 * s))
		return int(h & (int64(1)<<s - 1))
	}
	sets := int64(c.cfg.Sets())
	h := lineAddr ^ (lineAddr / sets) ^ (lineAddr / (sets * sets))
	h %= sets
	if h < 0 {
		h += sets
	}
	return int(h)
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Contains reports whether the line is present (no state change); used by
// tests.
func (c *Cache) Contains(lineAddr int64) bool {
	set := c.setOf(lineAddr)
	for _, l := range c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways] {
		if l.valid && l.tag == lineAddr {
			return true
		}
	}
	return false
}
