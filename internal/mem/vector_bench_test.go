package mem

import (
	"math/rand"
	"testing"
)

// benchStream builds a deterministic mixed load/store address stream. The
// conflict knob picks how many distinct cache lines the stream touches: a
// high-conflict stream hammers a handful of lines (and therefore a handful
// of banks, maximizing per-bank settlement runs), a low-conflict stream
// strides across the whole space so consecutive accesses land on different
// banks.
func benchStream(n int, conflictLines int64, seed int64) (addrs []int64, writes []bool) {
	rng := rand.New(rand.NewSource(seed))
	addrs = make([]int64, n)
	writes = make([]bool, n)
	for i := 0; i < n; i++ {
		if conflictLines > 0 {
			addrs[i] = rng.Int63n(conflictLines) * 16 // 16 words per 64B line
		} else {
			addrs[i] = int64(i) * 17 % 4096
		}
		writes[i] = i%3 == 0
	}
	return addrs, writes
}

func benchConfig(banks int) Config {
	cfg := DefaultConfig(WriteBack)
	cfg.L1.Banks = banks
	return cfg
}

const memBatch = 64

// BenchmarkMemAccessWord is the serial baseline: the per-word loop the
// engine's scalar hook path issues, over the same streams the vector
// benchmark uses.
func BenchmarkMemAccessWord(b *testing.B) {
	for _, bc := range []struct {
		name          string
		banks         int
		conflictLines int64
	}{
		{"banks8/low", 8, 0},
		{"banks8/high", 8, 4},
		{"banks32/low", 32, 0},
		{"banks32/high", 32, 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sys := NewSystem(benchConfig(bc.banks))
			addrs, writes := benchStream(memBatch, bc.conflictLines, 42)
			now := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < memBatch; k++ {
					sys.AccessWord(addrs[k], writes[k], now+int64(k))
				}
				now += memBatch
			}
		})
	}
}

// BenchmarkMemAccessVector runs the identical streams through the batched
// entry. Low-conflict streams skip the bank sort (adaptive Pass B) and track
// the serial loop; high-conflict streams are where the per-bank amortization
// pays.
func BenchmarkMemAccessVector(b *testing.B) {
	for _, bc := range []struct {
		name          string
		banks         int
		conflictLines int64
	}{
		{"banks8/low", 8, 0},
		{"banks8/high", 8, 4},
		{"banks32/low", 32, 0},
		{"banks32/high", 32, 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sys := NewSystem(benchConfig(bc.banks))
			addrs, writes := benchStream(memBatch, bc.conflictLines, 42)
			issues := make([]int64, memBatch)
			dones := make([]int64, memBatch)
			now := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := range issues {
					issues[k] = now + int64(k)
				}
				sys.AccessVector(addrs, writes, issues, dones)
				now += memBatch
			}
		})
	}
}
