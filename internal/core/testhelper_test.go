package core

import "vgiw/internal/mem"

// newTestSystem builds a memory system from a machine config (test helper).
func newTestSystem(cfg Config) *mem.System { return mem.NewSystem(cfg.Mem) }
