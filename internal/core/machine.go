package core

import (
	"context"
	"fmt"

	"vgiw/internal/compile"
	"vgiw/internal/engine"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

// Config assembles a full VGIW processor (Table 1 by default).
type Config struct {
	Fabric fabric.Config
	Mem    mem.Config
	LVC    mem.CacheConfig
	// CVTCapacityBits is the total bit budget of the control vector table;
	// the tile size follows §3.2:
	// tile = CVT_size / #basic_blocks (rounded to whole CTAs).
	CVTCapacityBits int
	CVTBanks        int
	Engine          engine.Options
	// ReplicationOff forces one replica per block (ablation).
	ReplicationOff bool
	// SplitForThroughput enables the compiler's speculative block
	// splitting (compile.OptimizeSplits). Off by default: on these
	// workloads the extra reconfigurations and live-value traffic usually
	// cost more than the replication gain — kept as an ablation knob.
	SplitForThroughput bool
	// WriteCoalescing enables the §5 future-work extension: a
	// write-combining buffer in front of the L1 banks that merges
	// same-line stores from different LDST units. Off by default (the
	// paper's VGIW performs no memory coalescing).
	WriteCoalescing bool
	// Checked runs the kernel-IR verifier after every compiler pass and
	// the placed-graph checker after placement (internal/verify). On in
	// tests and the daemon's compile path; off in timed runs — the checks
	// re-derive whole-kernel analyses and would distort measurements.
	Checked bool
}

// DefaultConfig is the evaluated machine: Table 1 fabric, §3.6 memory system
// with write-back L1, 64KB LVC, 8-bank CVT.
func DefaultConfig() Config {
	return Config{
		Fabric:          fabric.DefaultConfig(),
		Mem:             mem.DefaultConfig(mem.WriteBack),
		LVC:             DefaultLVCConfig(),
		CVTCapacityBits: 1 << 16,
		CVTBanks:        8,
	}
}

// Machine is a VGIW processor instance.
type Machine struct {
	cfg  Config
	grid *fabric.Grid
	eng  *engine.Engine

	// threadScratch is the reusable coalesced-vector buffer handed to the
	// engine each block run (the engine only reads it during the call).
	threadScratch []int

	// tr is the per-run trace track layout (zero when tracing is off).
	tr vgiwTracks
}

// vgiwTracks lays out one VGIW run's trace tracks: the BBS schedule (block
// vectors + reconfigurations), the CVT feed, the LVC feed, the memory-system
// counters, and the fabric's node firings. All share one process per run.
type vgiwTracks struct {
	on                         bool
	bbs, cvt, lvc, mem, fabric trace.TrackID
}

// setupTrace allocates the run's trace process and names its tracks.
func (m *Machine) setupTrace(kernelName string) {
	sink := m.cfg.Engine.Trace
	m.tr = vgiwTracks{}
	if !sink.Enabled(trace.CatVGIW | trace.CatCVT | trace.CatLVC | trace.CatMem | trace.CatEngine) {
		return
	}
	pid := sink.AllocProcess(kernelName + "/vgiw")
	m.tr = vgiwTracks{
		on:     true,
		bbs:    trace.TrackID{Pid: pid, Tid: 0},
		cvt:    trace.TrackID{Pid: pid, Tid: 1},
		lvc:    trace.TrackID{Pid: pid, Tid: 2},
		mem:    trace.TrackID{Pid: pid, Tid: 3},
		fabric: trace.TrackID{Pid: pid, Tid: 4},
	}
	sink.DefineTrack(m.tr.bbs, "bbs")
	sink.DefineTrack(m.tr.cvt, "cvt")
	sink.DefineTrack(m.tr.lvc, "lvc")
	sink.DefineTrack(m.tr.mem, "mem")
	sink.DefineTrack(m.tr.fabric, "fabric")
}

// NewMachine builds the processor.
func NewMachine(cfg Config) (*Machine, error) {
	grid, err := fabric.NewGrid(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, grid: grid, eng: engine.New(grid, cfg.Engine)}, nil
}

// Grid exposes the fabric (for reporting).
func (m *Machine) Grid() *fabric.Grid { return m.grid }

// BlockRun records one scheduled block execution.
type BlockRun struct {
	Block   int
	Threads int
	Start   int64 // cycle the vector began streaming (after reconfiguration)
	Cycles  int64
	// Stats and ThreadIDs hold the engine statistics and the coalesced
	// thread vector for this run when profiling is enabled
	// (Config.Engine.Profile).
	Stats     *engine.Stats
	ThreadIDs []int
}

// Result aggregates a kernel execution on the VGIW machine.
type Result struct {
	Kernel   string
	Threads  int
	Tiles    int
	TileSize int

	Cycles       int64  // total runtime
	Reconfigs    uint64 // grid reconfigurations
	ConfigCycles int64  // cycles spent reconfiguring
	BlockRuns    []BlockRun

	CVTReads, CVTWrites uint64
	LVCLoads, LVCStores uint64
	LVCStats            mem.CacheStats
	MemStats            mem.SystemStats

	Ops            map[kir.UnitClass]uint64
	opsAcc         engine.ClassCounts // dense accumulator; folded into Ops once per run
	FPOps          uint64
	TokenHops      uint64
	TokenTransfers uint64
	GlobalAccesses uint64
	SharedAccesses uint64

	// ReplicasOf maps block ID to the replication factor used.
	ReplicasOf map[int]int
}

// ConfigOverhead is the fraction of runtime spent reconfiguring (§3.2
// reports an average of 0.18% with a sub-0.1% median).
func (r *Result) ConfigOverhead() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.ConfigCycles) / float64(r.Cycles)
}

// Prepared bundles a compiled kernel with its per-block placements — the
// full compile/place artifact a VGIW run executes. It is immutable once
// built: RunPrepared only reads it, so one Prepared may be shared by any
// number of concurrent runs on machines with the same fabric configuration
// (the placements' unit IDs refer to the deterministic grid layout that
// configuration produces). Placement does not depend on the LVC or CVT
// sizing, so design-space sweeps over those parameters reuse one Prepared.
type Prepared struct {
	CK         *compile.CompiledKernel
	Placements []*fabric.Placement
	// Replicas[bi] is the replication factor block bi was placed with.
	Replicas []int
}

// Prepare places every block of a compiled kernel onto the fabric once
// (the BBS holds the per-block configurations and prefetches them into its
// FIFO, §3.2).
func (m *Machine) Prepare(ck *compile.CompiledKernel) (*Prepared, error) {
	k := ck.Kernel
	p := &Prepared{
		CK:         ck,
		Placements: make([]*fabric.Placement, len(k.Blocks)),
		Replicas:   make([]int, len(k.Blocks)),
	}
	for bi, g := range ck.DFGs {
		replicas := fabric.MaxReplicasFor(m.grid, g)
		if replicas == 0 {
			return nil, fmt.Errorf("core: block %d of %s (%d nodes) does not fit the fabric",
				bi, k.Name, len(g.Nodes))
		}
		if m.cfg.ReplicationOff {
			replicas = 1
		}
		pl, err := fabric.Place(m.grid, g, replicas)
		if err != nil {
			return nil, err
		}
		if m.cfg.Checked {
			if err := fabric.VerifyPlaced("place", m.grid, pl, ck.LV.NumIDs); err != nil {
				return nil, fmt.Errorf("core: kernel %s: %w", k.Name, err)
			}
		}
		p.Placements[bi] = pl
		p.Replicas[bi] = replicas
	}
	return p, nil
}

// Run executes a compiled kernel launch to completion, mutating global
// memory in place.
func (m *Machine) Run(ck *compile.CompiledKernel, launch kir.Launch, global []uint32) (*Result, error) {
	prep, err := m.Prepare(ck)
	if err != nil {
		return nil, err
	}
	return m.RunPrepared(prep, launch, global)
}

// RunPrepared executes a prepared kernel launch to completion, mutating
// global memory in place. It treats prep as read-only, so a cached Prepared
// can be executed concurrently by independent machines.
func (m *Machine) RunPrepared(prep *Prepared, launch kir.Launch, global []uint32) (*Result, error) {
	return m.RunPreparedCtx(context.Background(), prep, launch, global)
}

// RunPreparedCtx is RunPrepared with cooperative cancellation: the BBS
// schedule checks ctx between block-vector executions and the engine polls it
// while a vector streams, so a deadline or cancel preempts a running kernel
// mid-simulation.
func (m *Machine) RunPreparedCtx(ctx context.Context, prep *Prepared, launch kir.Launch, global []uint32) (*Result, error) {
	ck := prep.CK
	k := ck.Kernel
	nBlocks := len(k.Blocks)
	placements := prep.Placements
	res := &Result{
		Kernel:     k.Name,
		Threads:    launch.Threads(),
		ReplicasOf: make(map[int]int),
	}
	for bi, r := range prep.Replicas {
		res.ReplicasOf[bi] = r
	}

	// Thread tiling (§3.2, §3.4): the CVT bit budget is split across the
	// kernel's blocks, and the tile is also capped so the kernel's live
	// values fit the LVC ("spilling ... is generally prevented by thread
	// tiling"). Tiles are whole CTAs so barriers stay inside a tile.
	ctaSize := launch.CTASize()
	tile := m.cfg.CVTCapacityBits / nBlocks
	if ck.LV.NumIDs > 0 {
		if lvcTile := m.cfg.LVC.SizeBytes / (4 * ck.LV.NumIDs); lvcTile < tile {
			tile = lvcTile
		}
	}
	if tile < ctaSize {
		tile = ctaSize
	}
	tile -= tile % ctaSize
	if tile > launch.Threads() {
		tile = launch.Threads()
	}
	res.TileSize = tile

	memCfg := m.cfg.Mem
	if m.cfg.WriteCoalescing {
		memCfg.L1.CombineWrites = true
	}
	sys := mem.NewSystem(memCfg)
	env, err := engine.NewDataEnv(k, launch, global, sys)
	if err != nil {
		return nil, err
	}
	lvc := NewLVC(m.cfg.LVC, sys, ck.LV.NumIDs, tile)
	m.setupTrace(k.Name)
	if m.tr.on {
		lvc.SetTrace(m.cfg.Engine.Trace, m.tr.lvc)
	}

	now := int64(0)
	total := launch.Threads()
	for base := 0; base < total; base += tile {
		n := tile
		if base+n > total {
			n = total - base
		}
		end, err := m.runTile(ctx, ck, placements, env, lvc, base, n, now, res)
		if err != nil {
			return nil, err
		}
		now = end
	}
	res.Cycles = now
	// One map materialization per run; the per-block hot loop only touches
	// the dense accumulator.
	res.Ops = res.opsAcc.Map()
	res.LVCLoads = lvc.Loads
	res.LVCStores = lvc.Stores
	res.LVCStats = lvc.Stats()
	res.MemStats = sys.Stats()
	// Stats are snapshotted; recycle the cache directories for the next run
	// (the parallel harness builds a fresh machine + memory system per run).
	lvc.Release()
	sys.Release()
	return res, nil
}

// runTile drives one tile of threads from the entry block to completion.
func (m *Machine) runTile(ctx context.Context, ck *compile.CompiledKernel, placements []*fabric.Placement,
	env *engine.DataEnv, lvc *LVC, base, n int, now int64, res *Result) (int64, error) {

	k := ck.Kernel
	cvt := NewCVT(len(k.Blocks), n, m.cfg.CVTBanks)
	cvt.SetAll(0, n)
	lvc.Reset()
	res.Tiles++
	sink := m.cfg.Engine.Trace

	hooks := env.Hooks()
	hooks.TraceTrack = m.tr.fabric
	hooks.AccessLV = func(lv, tid int, write bool, value uint32, at int64) (uint32, int64) {
		return lvc.Access(lv, tid-base, write, value, at)
	}
	hooks.AccessLVFast = func(lv, tid int, write bool, value uint32) uint32 {
		return lvc.AccessFast(lv, tid-base, write, value)
	}
	hooks.AccessLVVector = func(lv int, tids []int, store bool, values []uint32, issues []int64, words []uint32, dones []int64) {
		lvc.AccessVector(lv, base, tids, store, values, issues, words, dones)
	}
	curBlock := 0
	hooks.Branch = func(tid int, cond uint32, now int64) {
		t := k.Blocks[curBlock].Term
		target := -1
		switch t.Kind {
		case kir.TermJump:
			target = t.Then
		case kir.TermBranch:
			if cond != 0 {
				target = t.Then
			} else {
				target = t.Else
			}
		case kir.TermRet:
			// Thread retires.
		}
		if target < 0 {
			return
		}
		cvt.Register(target, tid-base)
		if sink.Enabled(trace.CatCVT) {
			sink.Emit(trace.Event{Name: "cvt.enqueue", Cat: trace.CatCVT, Phase: trace.PhaseInstant,
				Track: m.tr.cvt, Ts: now, K1: "block", V1: int64(target), K2: "tid", V2: int64(tid)})
		}
	}

	lastBlock := -1
	for {
		b := cvt.NextBlock()
		if b < 0 {
			break
		}
		// Blocks with no instructions need no fabric pass: the BBS retires
		// threads headed for an empty ret block directly, and forwards
		// threads through an empty jump block to its successor (the
		// terminator CVU already delivered the successor ID).
		if blk := k.Blocks[b]; len(blk.Instrs) == 0 {
			rel := cvt.Drain(b)
			switch blk.Term.Kind {
			case kir.TermRet:
				continue
			case kir.TermJump:
				for _, r := range rel {
					cvt.Register(blk.Term.Then, r)
				}
				continue
			}
			// A branch with no body still needs its condition evaluated on
			// the fabric: fall through to a normal run.
			for _, r := range rel {
				cvt.Register(b, r)
			}
		}
		rel := cvt.Drain(b)
		threads := m.threadScratch[:0]
		for _, r := range rel {
			threads = append(threads, base+r)
		}
		m.threadScratch = threads
		if sink.Enabled(trace.CatCVT) {
			sink.Emit(trace.Event{Name: "cvt.coalesce", Cat: trace.CatCVT, Phase: trace.PhaseInstant,
				Track: m.tr.cvt, Ts: now, K1: "block", V1: int64(b), K2: "threads", V2: int64(len(threads))})
		}
		// Reconfigure unless the grid already holds this block's graph.
		// Configurations are prefetched during the previous block's
		// execution, so only the reset+feed cost lands on the critical
		// path (§3.2).
		if b != lastBlock {
			if sink.Enabled(trace.CatVGIW) {
				sink.Emit(trace.Event{Name: "reconfig", Cat: trace.CatVGIW, Phase: trace.PhaseSpan,
					Track: m.tr.bbs, Ts: now, Dur: m.cfg.Fabric.ConfigCycles, K1: "block", V1: int64(b)})
			}
			now += m.cfg.Fabric.ConfigCycles
			res.Reconfigs++
			res.ConfigCycles += m.cfg.Fabric.ConfigCycles
			lastBlock = b
		}
		curBlock = b
		st, err := m.eng.RunVectorCtx(ctx, placements[b], threads, now, hooks)
		if err != nil {
			return 0, err
		}
		br := BlockRun{Block: b, Threads: len(threads), Start: st.StartCycle, Cycles: st.Cycles()}
		if m.cfg.Engine.Profile {
			// The profiled engine returns a fresh Stats per run, but Clone
			// anyway so a retained BlockRun can never alias engine scratch
			// (the reuse footgun Stats.Clone documents). The thread vector
			// is scratch, so retain a copy too.
			br.Stats = st.Clone()
			br.ThreadIDs = append([]int(nil), threads...)
		}
		if sink.Enabled(trace.CatVGIW) {
			// One span per coalesced block-vector execution: launch at
			// StartCycle, retire at EndCycle. The label is the block's
			// compile-time name, so the Perfetto track reads as the BBS
			// schedule.
			sink.Emit(trace.Event{Name: k.Blocks[b].Label, Cat: trace.CatVGIW, Phase: trace.PhaseSpan,
				Track: m.tr.bbs, Ts: st.StartCycle, Dur: st.Cycles(),
				K1: "block", V1: int64(b), K2: "threads", V2: int64(len(threads)),
				K3: "replicas", V3: int64(placements[b].Replicas)})
		}
		if sink.Enabled(trace.CatMem) {
			// Epoch sample: cumulative memory-system counters after every
			// block-vector execution, rendered as counter tracks.
			ms := env.Sys.Stats()
			ls := lvc.Stats()
			sink.Emit(trace.Event{Name: "l1", Cat: trace.CatMem, Phase: trace.PhaseCounter,
				Track: m.tr.mem, Ts: st.EndCycle,
				K1: "accesses", V1: int64(ms.L1.Accesses()), K2: "misses", V2: int64(ms.L1.Misses())})
			sink.Emit(trace.Event{Name: "l2", Cat: trace.CatMem, Phase: trace.PhaseCounter,
				Track: m.tr.mem, Ts: st.EndCycle,
				K1: "accesses", V1: int64(ms.L2.Accesses()), K2: "misses", V2: int64(ms.L2.Misses())})
			sink.Emit(trace.Event{Name: "dram", Cat: trace.CatMem, Phase: trace.PhaseCounter,
				Track: m.tr.mem, Ts: st.EndCycle,
				K1: "reads", V1: int64(ms.DRAM.Reads), K2: "writes", V2: int64(ms.DRAM.Writes)})
			sink.Emit(trace.Event{Name: "lvc", Cat: trace.CatMem, Phase: trace.PhaseCounter,
				Track: m.tr.mem, Ts: st.EndCycle,
				K1: "accesses", V1: int64(ls.Accesses()), K2: "misses", V2: int64(ls.Misses())})
		}
		res.BlockRuns = append(res.BlockRuns, br)
		for cl, c := range st.Ops {
			res.opsAcc[cl] += c
		}
		res.FPOps += st.FPOps
		res.TokenHops += st.TokenHops
		res.TokenTransfers += st.TokenTransfers
		res.GlobalAccesses += st.GlobalAccesses
		res.SharedAccesses += st.SharedAccesses
		now = st.EndCycle
	}
	res.CVTReads += cvt.Reads
	res.CVTWrites += cvt.Writes
	return now, nil
}

// Compile runs the full compiler pipeline for this machine: fabric fitting,
// plus (optionally) throughput-driven block splitting.
func (m *Machine) Compile(k *kir.Kernel) (*compile.CompiledKernel, error) {
	var opts []compile.Option
	if m.cfg.Checked {
		opts = append(opts, compile.Checked())
	}
	if m.cfg.SplitForThroughput {
		return compile.OptimizeSplits(k,
			func(g *compile.BlockDFG) int { return fabric.MaxReplicasFor(m.grid, g) },
			m.cfg.Fabric.MaxReplicas, opts...)
	}
	return compile.CompileFitted(k, m.grid.Fits, opts...)
}

// RunKernel compiles (with fabric-fitting block splitting) and runs a kernel.
func (m *Machine) RunKernel(k *kir.Kernel, launch kir.Launch, global []uint32) (*Result, error) {
	ck, err := m.Compile(k)
	if err != nil {
		return nil, err
	}
	return m.Run(ck, launch, global)
}
