package core

import (
	"reflect"
	"testing"

	"vgiw/internal/engine"
	"vgiw/internal/kernels"
	"vgiw/internal/kir"
	"vgiw/internal/sgmf"
)

// TestDifferentialEngines is the executor-equivalence gate for the batched
// engine: every registry kernel runs through the scalar reference walk, the
// batched (default) executor, and the functional-only fast mode, on both the
// VGIW machine and (where mappable) the SGMF baseline.
//
//   - scalar vs batched must agree on EVERYTHING — final global memory and
//     the entire Result, including cycle counts, per-block schedules, memory
//     and LVC statistics, and the profiled per-node latency/service/issue
//     vectors (Profile is forced on so those are populated and compared).
//   - fast mode must agree on final global memory and on every cycle-
//     independent count (ops by class, FP ops, token traffic, access and
//     live-value counters); its cycle-level fields are all zero by contract.
//
// The test runs under -race in CI, so it also exercises the batched
// executor's scratch reuse for data races.
func TestDifferentialEngines(t *testing.T) {
	for _, spec := range kernels.All() {
		t.Run(spec.Name, func(t *testing.T) {
			runVGIW := func(scalar, fast bool) (*Result, []uint32) {
				t.Helper()
				inst, err := spec.Build(1)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				cfg := DefaultConfig()
				cfg.Engine.Profile = true
				cfg.Engine.Scalar = scalar
				cfg.Engine.Fast = fast
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatalf("machine: %v", err)
				}
				res, err := m.RunKernel(inst.Kernel, inst.Launch, inst.Global)
				if err != nil {
					t.Fatalf("run (scalar=%v fast=%v): %v", scalar, fast, err)
				}
				if err := inst.Check(inst.Global); err != nil {
					t.Fatalf("validation (scalar=%v fast=%v): %v", scalar, fast, err)
				}
				return res, inst.Global
			}

			sres, sglob := runVGIW(true, false)
			vres, vglob := runVGIW(false, false)
			fres, fglob := runVGIW(false, true)

			if !reflect.DeepEqual(sglob, vglob) {
				t.Errorf("VGIW batched global memory differs from scalar")
			}
			if !reflect.DeepEqual(sres, vres) {
				t.Errorf("VGIW batched Result differs from scalar:\nscalar:  %+v\nbatched: %+v", sres, vres)
			}
			if !reflect.DeepEqual(sglob, fglob) {
				t.Errorf("VGIW fast global memory differs from scalar")
			}
			checkCounts(t, "VGIW fast", countSet{
				ops:       sres.Ops,
				fpOps:     sres.FPOps,
				hops:      sres.TokenHops,
				transfers: sres.TokenTransfers,
				global:    sres.GlobalAccesses,
				shared:    sres.SharedAccesses,
				lvLoads:   sres.LVCLoads,
				lvStores:  sres.LVCStores,
			}, countSet{
				ops:       fres.Ops,
				fpOps:     fres.FPOps,
				hops:      fres.TokenHops,
				transfers: fres.TokenTransfers,
				global:    fres.GlobalAccesses,
				shared:    fres.SharedAccesses,
				lvLoads:   fres.LVCLoads,
				lvStores:  fres.LVCStores,
			})
			// Fast mode contributes zero execution cycles; only the BBS's
			// reconfiguration cost (accounted outside the engine) remains.
			if fres.Cycles != fres.ConfigCycles {
				t.Errorf("VGIW fast mode reported %d cycles, want reconfiguration cost only (%d)",
					fres.Cycles, fres.ConfigCycles)
			}

			if !spec.SGMF {
				return
			}
			runSGMF := func(scalar, fast bool) (*sgmf.Result, []uint32) {
				t.Helper()
				inst, err := spec.Build(1)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				cfg := sgmf.DefaultConfig()
				cfg.Engine = engine.Options{Profile: true, Scalar: scalar, Fast: fast}
				m, err := sgmf.NewMachine(cfg)
				if err != nil {
					t.Fatalf("sgmf machine: %v", err)
				}
				res, err := m.Run(inst.Kernel, inst.Launch, inst.Global)
				if err != nil {
					t.Fatalf("sgmf run (scalar=%v fast=%v): %v", scalar, fast, err)
				}
				if err := inst.Check(inst.Global); err != nil {
					t.Fatalf("sgmf validation (scalar=%v fast=%v): %v", scalar, fast, err)
				}
				return res, inst.Global
			}
			ssres, ssglob := runSGMF(true, false)
			svres, svglob := runSGMF(false, false)
			sfres, sfglob := runSGMF(false, true)
			if !reflect.DeepEqual(ssglob, svglob) {
				t.Errorf("SGMF batched global memory differs from scalar")
			}
			if !reflect.DeepEqual(ssres, svres) {
				t.Errorf("SGMF batched Result differs from scalar:\nscalar:  %+v\nbatched: %+v", ssres, svres)
			}
			if !reflect.DeepEqual(ssglob, sfglob) {
				t.Errorf("SGMF fast global memory differs from scalar")
			}
			checkCounts(t, "SGMF fast", countSet{
				ops:       ssres.Ops,
				fpOps:     ssres.FPOps,
				hops:      ssres.TokenHops,
				transfers: ssres.TokenTransfers,
				global:    ssres.GlobalAccesses,
				shared:    ssres.SharedAccesses,
			}, countSet{
				ops:       sfres.Ops,
				fpOps:     sfres.FPOps,
				hops:      sfres.TokenHops,
				transfers: sfres.TokenTransfers,
				global:    sfres.GlobalAccesses,
				shared:    sfres.SharedAccesses,
			})
			// SGMF configures once at kernel load; fast mode adds no
			// execution cycles past that.
			if want := sgmf.DefaultConfig().Fabric.ConfigCycles; sfres.Cycles != want {
				t.Errorf("SGMF fast mode reported %d cycles, want configuration cost only (%d)",
					sfres.Cycles, want)
			}
		})
	}
}

// countSet is the cycle-independent slice of a result that fast mode must
// reproduce exactly.
type countSet struct {
	ops               map[kir.UnitClass]uint64
	fpOps             uint64
	hops, transfers   uint64
	global, shared    uint64
	lvLoads, lvStores uint64
}

func checkCounts(t *testing.T, what string, want, got countSet) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s counts differ:\nwant %+v\ngot  %+v", what, want, got)
	}
}
