// Package core implements the VGIW processor of §3: the basic block
// scheduler (BBS), the control vector table (CVT), the live value cache
// (LVC), and the orchestration that streams dynamically coalesced thread
// vectors through the MT-CGRF execution engine.
package core

import "math/bits"

// CVT is the control vector table (§3.3): one bit vector per basic block,
// indexed by (tile-relative) thread ID. A set bit means the thread must
// execute that block next. The table is banked and delivers 64-bit words
// with a read-and-reset policy; reads and writes are counted for the energy
// model.
type CVT struct {
	vecs  [][]uint64 // [block][word]
	banks int

	Reads  uint64 // 64-bit word reads (read-and-reset scans)
	Writes uint64 // 64-bit word writes (batch packet ORs)
}

// NewCVT builds a table for numBlocks blocks and a tile of tileSize threads.
func NewCVT(numBlocks, tileSize, banks int) *CVT {
	words := (tileSize + 63) / 64
	vecs := make([][]uint64, numBlocks)
	for i := range vecs {
		vecs[i] = make([]uint64, words)
	}
	if banks <= 0 {
		banks = 1
	}
	return &CVT{vecs: vecs, banks: banks}
}

// Banks reports the bank count (used for access-time modeling by the BBS).
func (c *CVT) Banks() int { return c.banks }

// SetAll marks every thread in [0, n) as pending for the given block (used
// to launch a tile into the entry block).
func (c *CVT) SetAll(block, n int) {
	v := c.vecs[block]
	for i := 0; i < n; i++ {
		v[i/64] |= 1 << (i % 64)
	}
	c.Writes += uint64((n + 63) / 64)
}

// Register ORs a thread into a block's vector, counting one word write per
// touched word. The BBS receives <base, bitmap> batch packets from the
// terminator CVUs; threads completing out of order still coalesce into the
// same word, so the write count tracks touched words, not threads.
//
//vgiw:hotpath
func (c *CVT) Register(block, thread int) {
	w := &c.vecs[block][thread/64]
	if *w&(1<<(thread%64)) == 0 {
		*w |= 1 << (thread % 64)
	}
	c.Writes++
}

// RegisterBatch ORs a whole batch bitmap at the given word index.
//
//vgiw:hotpath
func (c *CVT) RegisterBatch(block, wordIdx int, bitmap uint64) {
	c.vecs[block][wordIdx] |= bitmap
	c.Writes++
}

// Drain reads-and-resets a block's vector, returning the pending
// tile-relative thread IDs in ascending order. Every scanned non-empty word
// counts as one read (empty words are skipped by the per-word valid bits).
func (c *CVT) Drain(block int) []int {
	var out []int
	v := c.vecs[block]
	for wi, w := range v {
		if w == 0 {
			continue
		}
		c.Reads++
		base := wi * 64
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, base+b)
			w &^= 1 << b
		}
		v[wi] = 0
	}
	return out
}

// Pending reports whether the block has any waiting threads.
func (c *CVT) Pending(block int) bool {
	for _, w := range c.vecs[block] {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextBlock returns the smallest block ID with a non-empty vector, or -1.
// This is the paper's hardware scheduling rule (§3.1): block IDs follow the
// compile-time schedule, so picking the smallest pending ID preserves
// control dependencies and makes loops re-execute before their epilogues.
func (c *CVT) NextBlock() int {
	for b := range c.vecs {
		if c.Pending(b) {
			return b
		}
	}
	return -1
}
