package core

import (
	"testing"
	"testing/quick"

	"vgiw/internal/compile"
	"vgiw/internal/kir"
)

// buildDiamond is the Figure 1a kernel: three-way divergent paths that
// reconverge, with per-path stores.
func buildDiamond() *kir.Kernel {
	b := kir.NewBuilder("fig1a")
	b.SetParams(2)
	bb1 := b.NewBlock("bb1")
	bb2 := b.NewBlock("bb2")
	bb3 := b.NewBlock("bb3")
	bb4 := b.NewBlock("bb4")
	bb5 := b.NewBlock("bb5")
	bb6 := b.NewBlock("bb6")
	b.SetBlock(bb1)
	tid := b.Tid()
	v := b.Load(b.Add(b.Param(0), tid), 0)
	b.Branch(b.SetLT(v, b.Const(10)), bb2, bb3)
	b.SetBlock(bb2)
	r := b.Mov(b.MulI(v, 2))
	b.Jump(bb6)
	b.SetBlock(bb3)
	b.Branch(b.SetLT(v, b.Const(100)), bb4, bb5)
	b.SetBlock(bb4)
	b.MovTo(r, b.AddI(v, 7))
	b.Jump(bb6)
	b.SetBlock(bb5)
	b.MovTo(r, b.Sub(v, tid))
	b.Jump(bb6)
	b.SetBlock(bb6)
	b.Store(b.Add(b.Param(1), tid), 0, r)
	b.Ret()
	return b.MustBuild()
}

// buildLoopSum sums 0..tid via a data-dependent loop.
func buildLoopSum() *kir.Kernel {
	b := kir.NewBuilder("loopsum")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	sum := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	sum1 := b.Add(sum, i)
	i1 := b.AddI(i, 1)
	b.MovTo(sum, sum1)
	b.MovTo(i, i1)
	b.Branch(b.SetLE(i1, tid), loop, exit)
	b.SetBlock(exit)
	b.Store(b.Add(b.Param(0), tid), 0, sum)
	b.Ret()
	return b.MustBuild()
}

// runVGIW compiles and runs a kernel on a default machine. Tests always run
// with the verifier on, so every pass and placement here is checked.
func runVGIW(t testing.TB, build func() *kir.Kernel, launch kir.Launch, global []uint32, cfg Config) (*Result, []uint32) {
	t.Helper()
	cfg.Checked = true
	ck, err := compile.Compile(build(), compile.Checked())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(ck, launch, global)
	if err != nil {
		t.Fatal(err)
	}
	return res, global
}

// reference runs the golden interpreter.
func reference(t testing.TB, build func() *kir.Kernel, launch kir.Launch, global []uint32) []uint32 {
	t.Helper()
	in := &kir.Interp{Kernel: build(), Launch: launch, Global: global}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	return global
}

func diamondInput(n int) []uint32 {
	m := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		m[i] = uint32(i * 7 % 250)
	}
	return m
}

func TestVGIWDiamondMatchesReference(t *testing.T) {
	const n = 256
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := reference(t, buildDiamond, launch, diamondInput(n))
	res, got := runVGIW(t, buildDiamond, launch, diamondInput(n), DefaultConfig())
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: vgiw %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Control flow coalescing: each of the 6 blocks is scheduled exactly
	// once (single tile), regardless of the 3 distinct control paths.
	if res.Reconfigs != 6 {
		t.Errorf("reconfigs = %d, want 6 (one per block)", res.Reconfigs)
	}
	if len(res.BlockRuns) != 6 {
		t.Errorf("block runs = %d, want 6", len(res.BlockRuns))
	}
	// Divergent blocks ran only their own threads.
	threadsPerBlock := map[int]int{}
	for _, br := range res.BlockRuns {
		threadsPerBlock[br.Block] += br.Threads
	}
	if threadsPerBlock[0] != n {
		t.Errorf("entry ran %d threads, want %d", threadsPerBlock[0], n)
	}
	sumMid := threadsPerBlock[1] + threadsPerBlock[2]
	if sumMid != n && threadsPerBlock[1] >= n {
		t.Errorf("divergent blocks not coalesced: %v", threadsPerBlock)
	}
	if threadsPerBlock[5] != n {
		t.Errorf("merge block ran %d threads, want %d", threadsPerBlock[5], n)
	}
	// Live values flowed through the LVC.
	if res.LVCLoads == 0 || res.LVCStores == 0 {
		t.Errorf("LVC traffic: loads=%d stores=%d, want > 0", res.LVCLoads, res.LVCStores)
	}
	if res.CVTWrites == 0 || res.CVTReads == 0 {
		t.Errorf("CVT traffic: reads=%d writes=%d, want > 0", res.CVTReads, res.CVTWrites)
	}
}

func TestVGIWLoopMatchesReference(t *testing.T) {
	const n = 128
	launch := kir.Launch1D(n/32, 32, 0)
	ref := reference(t, buildLoopSum, launch, make([]uint32, n))
	_, got := runVGIW(t, buildLoopSum, launch, make([]uint32, n), DefaultConfig())
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: vgiw %d, ref %d", i, got[i], ref[i])
		}
	}
}

func TestVGIWLoopSchedulesBackEdge(t *testing.T) {
	const n = 64
	launch := kir.Launch1D(2, 32, 0)
	res, _ := runVGIW(t, buildLoopSum, launch, make([]uint32, n), DefaultConfig())
	// The loop block re-executes: more block runs than blocks, and the
	// loop body (block 1) appears multiple times with shrinking vectors.
	loopRuns := 0
	prev := 1 << 30
	shrinks := true
	for _, br := range res.BlockRuns {
		if br.Block == 1 {
			loopRuns++
			if br.Threads > prev {
				shrinks = false
			}
			prev = br.Threads
		}
	}
	if loopRuns < 10 {
		t.Errorf("loop ran %d times, want >= 10 (tid up to 63)", loopRuns)
	}
	if !shrinks {
		t.Error("loop thread vectors should shrink monotonically as threads exit")
	}
}

func TestVGIWBarrierSharedMemory(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("reverse")
		b.SetParams(1)
		b.SetShared(32)
		entry := b.NewBlock("entry")
		after := b.NewBlock("after")
		b.SetBlock(entry)
		tidx := b.TidX()
		b.StoreSh(tidx, 0, b.Tid())
		b.Jump(after)
		b.MarkBarrier(after)
		b.SetBlock(after)
		rev := b.Sub(b.Const(31), b.TidX())
		v := b.LoadSh(rev, 0)
		b.Store(b.Add(b.Param(0), b.Tid()), 0, v)
		b.Ret()
		return b.MustBuild()
	}
	const n = 128
	launch := kir.Launch1D(n/32, 32, 0)
	ref := reference(t, build, launch, make([]uint32, n))
	_, got := runVGIW(t, build, launch, make([]uint32, n), DefaultConfig())
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: vgiw %d, ref %d", i, got[i], ref[i])
		}
	}
}

func TestVGIWTiling(t *testing.T) {
	// Force tiny tiles: CVT budget of 6 blocks * 32 threads.
	cfg := DefaultConfig()
	cfg.CVTCapacityBits = 6 * 32
	const n = 256
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := reference(t, buildDiamond, launch, diamondInput(n))
	res, got := runVGIW(t, buildDiamond, launch, diamondInput(n), cfg)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: vgiw %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.TileSize != 32 {
		t.Errorf("tile size = %d, want 32", res.TileSize)
	}
	if res.Tiles != n/32 {
		t.Errorf("tiles = %d, want %d", res.Tiles, n/32)
	}
	if res.Reconfigs < uint64(res.Tiles) {
		t.Errorf("reconfigs = %d < tiles = %d", res.Reconfigs, res.Tiles)
	}
}

func TestVGIWReplicationAblation(t *testing.T) {
	const n = 2048
	launch := kir.Launch1D(n/32, 32, 0, n)
	on, _ := runVGIW(t, buildDiamond, launch, diamondInput(n), DefaultConfig())
	cfg := DefaultConfig()
	cfg.ReplicationOff = true
	off, _ := runVGIW(t, buildDiamond, launch, diamondInput(n), cfg)
	if on.Cycles >= off.Cycles {
		t.Errorf("replication should speed up: on=%d off=%d cycles", on.Cycles, off.Cycles)
	}
	for b, r := range on.ReplicasOf {
		if r < 1 {
			t.Errorf("block %d has %d replicas", b, r)
		}
	}
	for _, r := range off.ReplicasOf {
		if r != 1 {
			t.Errorf("ablation used %d replicas", r)
		}
	}
}

func TestVGIWConfigOverheadSmall(t *testing.T) {
	// With large thread vectors, reconfiguration is negligible (§3.2:
	// average 0.18% of runtime).
	const n = 16384
	launch := kir.Launch1D(n/64, 64, 0, n)
	res, _ := runVGIW(t, buildDiamond, launch, diamondInput(n), DefaultConfig())
	// The diamond kernel does ~1 cycle of work per thread per block, which
	// is the worst case for amortizing the 34-cycle reconfiguration; the
	// Rodinia-class kernels in internal/kernels land well under 1%.
	if oh := res.ConfigOverhead(); oh > 0.05 {
		t.Errorf("config overhead %.4f too large for %d threads", oh, n)
	}
}

func TestCVTReadResetAndBatches(t *testing.T) {
	c := NewCVT(3, 130, 8)
	c.Register(1, 0)
	c.Register(1, 64)
	c.Register(1, 129)
	c.Register(2, 5)
	if got := c.NextBlock(); got != 1 {
		t.Fatalf("NextBlock = %d, want 1", got)
	}
	ids := c.Drain(1)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 64 || ids[2] != 129 {
		t.Fatalf("Drain = %v", ids)
	}
	if c.Pending(1) {
		t.Error("block 1 still pending after read-and-reset")
	}
	if got := c.NextBlock(); got != 2 {
		t.Fatalf("NextBlock = %d, want 2", got)
	}
	if c.Reads != 3 {
		t.Errorf("reads = %d, want 3 (three words touched)", c.Reads)
	}
	if c.Writes != 4 {
		t.Errorf("writes = %d, want 4", c.Writes)
	}
	c.RegisterBatch(0, 1, 0xFF)
	ids = c.Drain(0)
	if len(ids) != 8 || ids[0] != 64 {
		t.Fatalf("batch drain = %v", ids)
	}
}

func TestCVTSetAll(t *testing.T) {
	c := NewCVT(2, 100, 8)
	c.SetAll(0, 100)
	ids := c.Drain(0)
	if len(ids) != 100 {
		t.Fatalf("drained %d ids, want 100", len(ids))
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("ids[%d] = %d", i, id)
		}
	}
}

func TestLVCRoundTripAndTiming(t *testing.T) {
	cfgSys := DefaultConfig()
	sys := newTestSystem(cfgSys)
	l := NewLVC(DefaultLVCConfig(), sys, 4, 256)
	_, d1 := l.Access(2, 10, true, 42, 0)
	v, d2 := l.Access(2, 10, false, 0, d1)
	if v != 42 {
		t.Fatalf("read back %d, want 42", v)
	}
	if d2 <= d1 {
		t.Error("read completion should advance time")
	}
	if l.Loads != 1 || l.Stores != 1 {
		t.Errorf("loads=%d stores=%d", l.Loads, l.Stores)
	}
	// Cold write missed; warm read hit the same line.
	st := l.Stats()
	if st.Misses() == 0 {
		t.Error("first access should miss")
	}
	l.Reset()
	v, _ = l.Access(2, 10, false, 0, d2)
	if v != 0 {
		t.Errorf("after reset read %d, want 0", v)
	}
}

// TestVGIWElidesEmptyBlocks: threads registered to an instruction-less ret
// block retire in the BBS without a fabric pass, and an empty jump block
// forwards without one.
func TestVGIWElidesEmptyBlocks(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("elide")
		b.SetParams(1)
		entry := b.NewBlock("entry")
		hop := b.NewBlock("hop") // empty jump block
		body := b.NewBlock("body")
		exit := b.NewBlock("exit") // empty ret block
		b.SetBlock(entry)
		b.Branch(b.SetLT(b.Tid(), b.Const(64)), hop, exit)
		b.SetBlock(hop)
		b.Jump(body)
		b.SetBlock(body)
		b.Store(b.Add(b.Param(0), b.Tid()), 0, b.Tid())
		b.Jump(exit)
		b.SetBlock(exit)
		b.Ret()
		return b.MustBuild()
	}
	const n = 128
	launch := kir.Launch1D(n/32, 32, 0)
	ref := reference(t, build, launch, make([]uint32, n))
	res, got := runVGIW(t, build, launch, make([]uint32, n), DefaultConfig())
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: vgiw %d, ref %d", i, got[i], ref[i])
		}
	}
	// Only entry and body should be scheduled on the fabric.
	for _, br := range res.BlockRuns {
		if br.Threads == 0 {
			t.Errorf("scheduled an empty vector for block %d", br.Block)
		}
	}
	if len(res.BlockRuns) != 2 {
		t.Errorf("scheduled %d fabric passes, want 2 (hop and exit elided)", len(res.BlockRuns))
	}
}

// TestVGIWTileRespectsLVCapacity: a kernel with many live values must tile
// so that the live-value matrix fits the LVC.
func TestVGIWTileRespectsLVCapacity(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("manylv")
		b.SetParams(1)
		entry := b.NewBlock("entry")
		body := b.NewBlock("body")
		b.SetBlock(entry)
		base := b.Add(b.Param(0), b.MulI(b.Tid(), 8))
		// Eight loaded values crossing into the next block.
		var vals []kir.Reg
		for i := int32(0); i < 8; i++ {
			vals = append(vals, b.Load(base, i))
		}
		b.Branch(b.SetLT(b.Tid(), b.Const(1<<30)), body, body)
		b.SetBlock(body)
		acc := vals[0]
		for _, v := range vals[1:] {
			acc = b.Add(acc, v)
		}
		b.Store(b.Add(b.Param(0), b.MulI(b.Tid(), 8)), 0, acc)
		b.Ret()
		return b.MustBuild()
	}
	const n = 8192
	launch := kir.Launch1D(n/64, 64, 0)
	cfg := DefaultConfig()
	cfg.LVC.SizeBytes = 16 << 10 // 16KB: 8 LVs * 4B => tile <= 512
	res, _ := runVGIW(t, build, launch, make([]uint32, 8*n), cfg)
	if res.TileSize > 512 {
		t.Errorf("tile %d exceeds the LVC capacity bound 512", res.TileSize)
	}
	if res.Tiles < n/512 {
		t.Errorf("tiles = %d, want >= %d", res.Tiles, n/512)
	}
}

// Property: Register/Drain is lossless and sorted for arbitrary thread sets.
func TestCVTQuickProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewCVT(2, 1<<16, 8)
		want := map[int]bool{}
		for _, r := range raw {
			c.Register(1, int(r))
			want[int(r)] = true
		}
		got := c.Drain(1)
		if len(got) != len(want) {
			return false
		}
		prev := -1
		for _, id := range got {
			if id <= prev || !want[id] {
				return false
			}
			prev = id
		}
		return !c.Pending(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLVCSpillsToMemory: a matrix bigger than the cache forces evictions
// and spills through the L2 (§3.4).
func TestLVCSpillsToMemory(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LVC.SizeBytes = 4 << 10 // 4KB cache over a 64KB matrix
	sys := newTestSystem(cfg)
	l := NewLVC(cfg.LVC, sys, 16, 1024)
	now := int64(0)
	for lv := 0; lv < 16; lv++ {
		for tid := 0; tid < 1024; tid += 32 {
			_, now = l.Access(lv, tid, true, uint32(lv*tid), now)
		}
	}
	// Re-read everything: values survive eviction (the matrix is the
	// functional store; the cache only affects timing).
	for lv := 0; lv < 16; lv++ {
		for tid := 0; tid < 1024; tid += 32 {
			v, done := l.Access(lv, tid, false, 0, now)
			if v != uint32(lv*tid) {
				t.Fatalf("lv %d tid %d = %d, want %d", lv, tid, v, lv*tid)
			}
			now = done
		}
	}
	if l.Stats().Writebacks == 0 {
		t.Error("undersized LVC produced no spills")
	}
	if sys.Stats().L2.Accesses() == 0 {
		t.Error("spills did not reach the L2")
	}
}

// TestVGIWErrorPaths: invalid launches and parameter mismatches surface as
// errors, not panics.
func TestVGIWErrorPaths(t *testing.T) {
	m, err := NewMachine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := buildDiamond()
	ck, err := compile.Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ck, kir.Launch1D(1, 32), make([]uint32, 64)); err == nil {
		t.Error("want error for missing params")
	}
	if _, err := m.Run(ck, kir.Launch{GridX: 0, GridY: 1, BlockX: 32, BlockY: 1,
		Params: []uint32{0, 32}}, make([]uint32, 64)); err == nil {
		t.Error("want error for zero grid")
	}
	// Out-of-bounds memory.
	if _, err := m.Run(ck, kir.Launch1D(2, 32, 1<<20, 1<<20), make([]uint32, 8)); err == nil {
		t.Error("want out-of-bounds error")
	}
}

// TestVGIWTinyFabric: a kernel that cannot fit even after splitting (every
// block needs an initiator and a terminator CVU, and this fabric has none)
// is reported as a compile error, not a panic or a hang.
func TestVGIWTinyFabric(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fabric.Cols, cfg.Fabric.Rows = 4, 4
	cfg.Fabric.NumALU, cfg.Fabric.NumSCU = 6, 1
	cfg.Fabric.NumLDST, cfg.Fabric.NumLVU = 2, 2
	cfg.Fabric.NumSJU, cfg.Fabric.NumCVU = 5, 0
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := kir.NewBuilder("one")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	b.Store(b.Param(0), 0, b.Tid())
	b.Ret()
	if _, err := m.Compile(b.MustBuild()); err == nil {
		t.Error("want error: no CVUs means no initiators/terminators")
	}
}
