package core

import (
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

// LVC is the live value cache (§3.4): a banked cache over the memory-resident
// live-value matrix, which is indexed by (live value ID, thread ID) and
// backed by the L2. Functional storage is the matrix itself; the embedded
// cache provides timing and spill traffic.
type LVC struct {
	cache   *mem.Cache
	sys     *mem.System
	matrix  [][]uint32 // [liveValueID][threadID]
	threads int

	sink  *trace.Sink
	track trace.TrackID

	// Batch scratch for AccessVector, reused across waves.
	vword []int64
	vline []int64
	vwr   []bool
	vres  []mem.AccessResult

	Loads  uint64
	Stores uint64
}

// SetTrace routes per-access hit/miss/spill events (trace.CatLVC) to a sink
// track. A nil sink (the default) keeps Access allocation-free.
func (l *LVC) SetTrace(s *trace.Sink, track trace.TrackID) {
	l.sink, l.track = s, track
}

// DefaultLVCConfig is the evaluated 64KB LVC (§3.4): banked like a GPGPU L1,
// backed by the L2.
func DefaultLVCConfig() mem.CacheConfig {
	return mem.CacheConfig{
		SizeBytes: 64 << 10, LineBytes: 128, Ways: 4, Banks: 8,
		HitLat: 4, Policy: mem.WriteBack,
	}
}

// NewLVC sizes the live-value matrix for numLVs live values across
// `threads` concurrently tracked threads (one tile).
func NewLVC(cfg mem.CacheConfig, sys *mem.System, numLVs, threads int) *LVC {
	matrix := make([][]uint32, numLVs)
	for i := range matrix {
		matrix[i] = make([]uint32, threads)
	}
	return &LVC{cache: NewLVCache(cfg), sys: sys, matrix: matrix, threads: threads}
}

// NewLVCache builds the cache component (exposed for tests).
func NewLVCache(cfg mem.CacheConfig) *mem.Cache { return mem.NewCache(cfg) }

// Reset zeroes the matrix between tiles (live values do not cross tiles:
// each tile runs the kernel start to finish for its threads).
func (l *LVC) Reset() {
	for i := range l.matrix {
		for j := range l.matrix[i] {
			l.matrix[i][j] = 0
		}
	}
}

// Access reads or writes live value lv for tile-relative thread tid.
// Timing: LVC bank access on a hit; L2 fill on a miss; dirty evictions spill
// to the L2 (§3.4: "allows live values to be spilled to memory").
//
//vgiw:hotpath
func (l *LVC) Access(lv, tid int, write bool, value uint32, now int64) (uint32, int64) {
	if write {
		l.Stores++
	} else {
		l.Loads++
	}
	// Byte address inside the live-value matrix; banks are word-interleaved
	// so the 16 LVUs reach distinct banks in parallel (§3.4: "accessed at
	// word granularity, in contrast to a GPGPU's vector register file").
	word := int64(lv)*int64(l.threads) + int64(tid)
	lineAddr := word * 4 / int64(l.cache.Config().LineBytes)
	res := l.cache.AccessBanked(lineAddr, word, write, now)
	done := res.Ready + l.cache.Config().HitLat
	if res.Writeback >= 0 {
		l.sys.AccessViaL2(res.Writeback, true, res.Ready)
	}
	if !res.Hit {
		done = l.sys.AccessViaL2(lineAddr, false, res.Ready) + l.cache.Config().HitLat
	}
	if l.sink.Enabled(trace.CatLVC) {
		name := "lvc.hit"
		if !res.Hit {
			name = "lvc.miss"
		}
		l.sink.Emit(trace.Event{Name: name, Cat: trace.CatLVC, Phase: trace.PhaseInstant,
			Track: l.track, Ts: now, K1: "lv", V1: int64(lv), K2: "tid", V2: int64(tid)})
		if res.Writeback >= 0 {
			l.sink.Emit(trace.Event{Name: "lvc.spill", Cat: trace.CatLVC, Phase: trace.PhaseInstant,
				Track: l.track, Ts: res.Ready, K1: "line", V1: res.Writeback})
		}
	}

	out := uint32(0)
	if write {
		l.matrix[lv][tid] = value
	} else {
		out = l.matrix[lv][tid]
	}
	return out, done
}

// AccessVector settles one LV node's accesses for a whole wave, equivalent
// to calling Access once per element in order (tid = tids[k]-tidOff): the
// LVC cache legs settle per bank via mem.(*Cache).AccessBankedVector, while
// the order-sensitive pieces — L2 spill/fill traffic, trace events, and the
// matrix reads/writes — run in original element order, so completion cycles,
// stats, cache state and the trace stream are byte-identical to the serial
// loop. Scratch is reused across calls; steady-state waves allocate nothing.
//
//vgiw:hotpath
func (l *LVC) AccessVector(lv, tidOff int, tids []int, write bool, values []uint32, issues []int64, words []uint32, dones []int64) {
	n := len(tids)
	if write {
		l.Stores += uint64(n)
	} else {
		l.Loads += uint64(n)
	}
	if cap(l.vword) < n {
		l.vword = make([]int64, n+n/2+8)
		l.vline = make([]int64, n+n/2+8)
		l.vwr = make([]bool, n+n/2+8)
		l.vres = make([]mem.AccessResult, n+n/2+8)
	}
	wordPl, linePl, wr := l.vword[:n], l.vline[:n], l.vwr[:n]
	lineBytes := int64(l.cache.Config().LineBytes)
	for k := 0; k < n; k++ {
		word := int64(lv)*int64(l.threads) + int64(tids[k]-tidOff)
		wordPl[k] = word
		linePl[k] = word * 4 / lineBytes
		wr[k] = write
	}
	res := l.vres[:n]
	l.cache.AccessBankedVector(linePl, wordPl, wr, issues, res)

	hitLat := int64(l.cache.Config().HitLat)
	for k := 0; k < n; k++ {
		r := res[k]
		done := r.Ready + hitLat
		if r.Writeback >= 0 {
			l.sys.AccessViaL2(r.Writeback, true, r.Ready)
		}
		if !r.Hit {
			done = l.sys.AccessViaL2(linePl[k], false, r.Ready) + hitLat
		}
		if l.sink.Enabled(trace.CatLVC) {
			tid := tids[k] - tidOff
			name := "lvc.hit"
			if !r.Hit {
				name = "lvc.miss"
			}
			l.sink.Emit(trace.Event{Name: name, Cat: trace.CatLVC, Phase: trace.PhaseInstant,
				Track: l.track, Ts: issues[k], K1: "lv", V1: int64(lv), K2: "tid", V2: int64(tid)})
			if r.Writeback >= 0 {
				l.sink.Emit(trace.Event{Name: "lvc.spill", Cat: trace.CatLVC, Phase: trace.PhaseInstant,
					Track: l.track, Ts: r.Ready, K1: "line", V1: r.Writeback})
			}
		}
		if write {
			l.matrix[lv][tids[k]-tidOff] = values[k]
			words[k] = 0
		} else {
			words[k] = l.matrix[lv][tids[k]-tidOff]
		}
		dones[k] = done
	}
}

// AccessFast is the functional twin of Access for the engine's fast mode:
// identical matrix effects and Loads/Stores counters, no cache, spill or
// trace activity.
func (l *LVC) AccessFast(lv, tid int, write bool, value uint32) uint32 {
	if write {
		l.Stores++
		l.matrix[lv][tid] = value
		return 0
	}
	l.Loads++
	return l.matrix[lv][tid]
}

// Stats returns the cache-level statistics.
func (l *LVC) Stats() mem.CacheStats { return l.cache.Stats }

// Release returns the embedded cache's directory to the slab pool; the LVC
// must not be accessed afterwards (Stats snapshots stay valid).
func (l *LVC) Release() { l.cache.Release() }
