package compile

import (
	"fmt"

	"vgiw/internal/kir"
)

// IfConvert flattens an acyclic kernel CFG into a single dataflow graph for
// the SGMF baseline, which statically maps *all* control paths of a kernel
// onto the fabric (§2, Figure 1c). Every thread flows through every node;
// divergence is realized through predicated memory operations and select
// nodes at control-flow merges. This is exactly the property the paper
// criticizes: units on the not-taken path are occupied but do no useful work.
//
// Kernels with loops or barriers are rejected — the SGMF fabric cannot
// express data-dependent iteration, which is the limitation VGIW removes.
// Callers decide whether a kernel is SGMF-eligible by whether IfConvert
// succeeds and whether the resulting graph fits the fabric.
func IfConvert(k *kir.Kernel) (*BlockDFG, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.HasLoops() {
		return nil, fmt.Errorf("compile: kernel %s has loops; not SGMF-mappable", k.Name)
	}
	for _, b := range k.Blocks {
		if b.Barrier {
			return nil, fmt.Errorf("compile: kernel %s uses barriers; not SGMF-mappable", k.Name)
		}
	}
	reach := Reachable(k)
	preds := Preds(k)

	g := &BlockDFG{BlockID: -1}
	newNode := func(n *Node) int {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}
	g.Init = newNode(&Node{Kind: NodeInit})

	noRegs := [3]kir.Reg{kir.NoReg, kir.NoReg, kir.NoReg}
	// synth creates an ALU helper node; operands come from edges only.
	synth := func(op kir.Op, in ...int) int {
		return newNode(&Node{Kind: NodeOp, Instr: kir.Instr{Op: op, Dst: kir.NoReg, Src: noRegs}, In: in})
	}
	constNode := func(v int32) int {
		return newNode(&Node{Kind: NodeOp, Instr: kir.Instr{Op: kir.OpConst, Dst: kir.NoReg, Src: noRegs, Imm: v}, In: []int{g.Init}})
	}

	// Predicates are node IDs; -1 means "always true".
	type edge struct{ from, to int }
	edgePred := make(map[edge]int)
	// outStates[b] maps each register to the node holding its value at the
	// exit of block b (valid once b has been processed).
	outStates := make([]map[kir.Reg]int, len(k.Blocks))

	type memState struct {
		lastStore       int
		loadsSinceStore []int
	}
	global := memState{lastStore: -1}
	shared := memState{lastStore: -1}

	// ScheduleBlocks numbers blocks in RPO, so for an acyclic CFG ascending
	// index is a topological order.
	for bi := range k.Blocks {
		if !reach[bi] {
			continue
		}
		b := k.Blocks[bi]

		st := make(map[kir.Reg]int)
		bp := -1
		if bi != 0 {
			type incoming struct {
				pred int
				st   map[kir.Reg]int
			}
			var inc []incoming
			for _, p := range preds[bi] {
				inc = append(inc, incoming{edgePred[edge{p, bi}], outStates[p]})
			}
			if len(inc) == 0 {
				return nil, fmt.Errorf("compile: kernel %s block %d (%s) reachable but has no predecessors", k.Name, bi, b.Label)
			}
			// Block predicate = OR of incoming edge predicates; an
			// always-true edge makes the whole block unconditional.
			bp = inc[0].pred
			for _, ic := range inc[1:] {
				if bp == -1 || ic.pred == -1 {
					bp = -1
					break
				}
				bp = synth(kir.OpOr, bp, ic.pred)
			}
			// Merge register states. Use the last incoming state as the
			// fallback and wrap selects for the others.
			seen := make(map[kir.Reg]bool)
			var regs []kir.Reg
			for _, ic := range inc {
				for r := range ic.st {
					seen[r] = true
				}
			}
			for r := range seen {
				regs = append(regs, r)
			}
			// Sorted so synthesized selects get deterministic node order
			// (map iteration order varies run to run).
			sortRegs(regs)
			for _, r := range regs {
				cur, have := -1, false
				allSame := true
				for _, ic := range inc {
					v, ok := ic.st[r]
					if !ok {
						continue
					}
					if !have {
						cur, have = v, true
					} else if v != cur {
						allSame = false
					}
				}
				if !have {
					continue
				}
				if allSame {
					st[r] = cur
					continue
				}
				sel := -1
				for _, ic := range inc {
					v, ok := ic.st[r]
					if !ok {
						continue
					}
					switch {
					case sel == -1:
						sel = v // base value (fallback path)
					case ic.pred == -1:
						sel = v // unconditional path dominates
					default:
						sel = synth(kir.OpSelect, ic.pred, v, sel)
					}
				}
				st[r] = sel
			}
		}

		for _, in := range b.Instrs {
			n := &Node{Kind: NodeOp, Instr: in}
			nsrc := in.Op.NumSrc()
			if nsrc == 0 {
				n.In = []int{g.Init}
			} else {
				for i := 0; i < nsrc; i++ {
					v, ok := st[in.Src[i]]
					if !ok {
						return nil, fmt.Errorf("compile: kernel %s block %d (%s): r%d undefined on some path",
							k.Name, bi, b.Label, in.Src[i])
					}
					n.In = append(n.In, v)
				}
			}
			if in.Op.IsMemory() {
				if bp != -1 {
					n.HasPred = true
					n.Pred = len(n.In) // index of the predicate within In
					n.In = append(n.In, bp)
				}
				ms := &global
				if in.Op.IsShared() {
					ms = &shared
				}
				if in.Op.IsStore() {
					if ms.lastStore >= 0 {
						n.CtlIn = append(n.CtlIn, ms.lastStore)
					}
					n.CtlIn = append(n.CtlIn, ms.loadsSinceStore...)
				} else if ms.lastStore >= 0 {
					n.CtlIn = append(n.CtlIn, ms.lastStore)
				}
				id := newNode(n)
				if in.Op.IsStore() {
					ms.lastStore = id
					ms.loadsSinceStore = nil
				} else {
					ms.loadsSinceStore = append(ms.loadsSinceStore, id)
				}
				if in.Op.HasDst() {
					st[in.Dst] = id
				}
				continue
			}
			id := newNode(n)
			if in.Op.HasDst() {
				st[in.Dst] = id
			}
		}
		outStates[bi] = st

		switch b.Term.Kind {
		case kir.TermJump:
			edgePred[edge{bi, b.Term.Then}] = bp
		case kir.TermBranch:
			c, ok := st[b.Term.Cond]
			if !ok {
				return nil, fmt.Errorf("compile: kernel %s block %d (%s): branch condition undefined", k.Name, bi, b.Label)
			}
			// Normalize the condition to 0/1 so predicates compose with
			// bitwise AND/OR (branches may test arbitrary nonzero values).
			zero := constNode(0)
			cNorm := synth(kir.OpSetNE, c, zero)
			ncond := synth(kir.OpSetEQ, c, zero)
			tPred, ePred := cNorm, ncond
			if bp != -1 {
				tPred = synth(kir.OpAnd, bp, cNorm)
				ePred = synth(kir.OpAnd, bp, ncond)
			}
			edgePred[edge{bi, b.Term.Then}] = tPred
			edgePred[edge{bi, b.Term.Else}] = ePred
		case kir.TermRet:
			// Threads simply finish; the single terminator below collects
			// them.
		}
	}

	g.Term = newNode(&Node{Kind: NodeTerm, In: []int{g.Init}})
	g.computeOut()
	g.insertSplits()
	g.normalize()
	return g, nil
}
