package compile

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// IfConvert flattens an acyclic kernel CFG into a single dataflow graph for
// the SGMF baseline, which statically maps *all* control paths of a kernel
// onto the fabric (§2, Figure 1c). Every thread flows through every node;
// divergence is realized through predicated memory operations and select
// nodes at control-flow merges. This is exactly the property the paper
// criticizes: units on the not-taken path are occupied but do no useful work.
//
// Kernels with loops or barriers are rejected — the SGMF fabric cannot
// express data-dependent iteration, which is the limitation VGIW removes.
// Callers decide whether a kernel is SGMF-eligible by whether IfConvert
// succeeds and whether the resulting graph fits the fabric.
func IfConvert(k *kir.Kernel, opts ...Option) (*BlockDFG, error) {
	o := buildOptions(opts)
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.HasLoops() {
		return nil, fmt.Errorf("compile: kernel %s has loops; not SGMF-mappable", k.Name)
	}
	for _, b := range k.Blocks {
		if b.Barrier {
			return nil, fmt.Errorf("compile: kernel %s uses barriers; not SGMF-mappable", k.Name)
		}
	}
	reach := Reachable(k)
	preds := Preds(k)

	g := &BlockDFG{BlockID: -1}
	newNode := func(n *Node) int {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}
	g.Init = newNode(&Node{Kind: NodeInit})

	noRegs := [3]kir.Reg{kir.NoReg, kir.NoReg, kir.NoReg}
	// synth creates an ALU helper node; operands come from edges only.
	synth := func(op kir.Op, in ...int) int {
		return newNode(&Node{Kind: NodeOp, Instr: kir.Instr{Op: op, Dst: kir.NoReg, Src: noRegs}, In: in})
	}
	constNode := func(v int32) int {
		return newNode(&Node{Kind: NodeOp, Instr: kir.Instr{Op: kir.OpConst, Dst: kir.NoReg, Src: noRegs, Imm: v}, In: []int{g.Init}})
	}

	// Predicates are node IDs; -1 means "always true".
	type edge struct{ from, to int }
	edgePred := make(map[edge]int)
	// outStates[b] maps each register to the node holding its value at the
	// exit of block b (valid once b has been processed).
	outStates := make([]map[kir.Reg]int, len(k.Blocks))

	type memState struct {
		lastStore       int
		loadsSinceStore []int
	}
	global := memState{lastStore: -1}
	shared := memState{lastStore: -1}

	// ScheduleBlocks numbers blocks in RPO, so for an acyclic CFG ascending
	// index is a topological order.
	for bi := range k.Blocks {
		if !reach[bi] {
			continue
		}
		b := k.Blocks[bi]

		st := make(map[kir.Reg]int)
		bp := -1
		if bi != 0 {
			type incoming struct {
				pred int
				st   map[kir.Reg]int
			}
			var inc []incoming
			for _, p := range preds[bi] {
				inc = append(inc, incoming{edgePred[edge{p, bi}], outStates[p]})
			}
			if len(inc) == 0 {
				return nil, fmt.Errorf("compile: kernel %s block %d (%s) reachable but has no predecessors", k.Name, bi, b.Label)
			}
			// Block predicate = OR of incoming edge predicates; an
			// always-true edge makes the whole block unconditional.
			bp = inc[0].pred
			for _, ic := range inc[1:] {
				if bp == -1 || ic.pred == -1 {
					bp = -1
					break
				}
				bp = synth(kir.OpOr, bp, ic.pred)
			}
			// Merge register states. Use the last incoming state as the
			// fallback and wrap selects for the others.
			seen := make(map[kir.Reg]bool)
			var regs []kir.Reg
			for _, ic := range inc {
				for r := range ic.st {
					seen[r] = true
				}
			}
			for r := range seen {
				regs = append(regs, r)
			}
			// Sorted so synthesized selects get deterministic node order
			// (map iteration order varies run to run).
			sortRegs(regs)
			for _, r := range regs {
				cur, have := -1, false
				allSame := true
				for _, ic := range inc {
					v, ok := ic.st[r]
					if !ok {
						continue
					}
					if !have {
						cur, have = v, true
					} else if v != cur {
						allSame = false
					}
				}
				if !have {
					continue
				}
				if allSame {
					st[r] = cur
					continue
				}
				sel := -1
				var provided []predVal // edges providing r, in merge order
				for _, ic := range inc {
					v, ok := ic.st[r]
					if !ok {
						continue
					}
					provided = append(provided, predVal{ic.pred, v})
					switch {
					case sel == -1:
						sel = v // base value (fallback path)
					case ic.pred == -1:
						sel = v // unconditional path dominates
					default:
						sel = synth(kir.OpSelect, ic.pred, v, sel)
					}
				}
				st[r] = sel
				if o.checked {
					if err := verify.Join(checkSelectChain(g, k.Name, bi, r, provided, sel)); err != nil {
						return nil, fmt.Errorf("compile: ifconv: %w", err)
					}
				}
			}
		}

		for _, in := range b.Instrs {
			n := &Node{Kind: NodeOp, Instr: in}
			nsrc := in.Op.NumSrc()
			if nsrc == 0 {
				n.In = []int{g.Init}
			} else {
				for i := 0; i < nsrc; i++ {
					v, ok := st[in.Src[i]]
					if !ok {
						return nil, fmt.Errorf("compile: kernel %s block %d (%s): r%d undefined on some path",
							k.Name, bi, b.Label, in.Src[i])
					}
					n.In = append(n.In, v)
				}
			}
			if in.Op.IsMemory() {
				if bp != -1 {
					n.HasPred = true
					n.Pred = len(n.In) // index of the predicate within In
					n.In = append(n.In, bp)
				}
				ms := &global
				if in.Op.IsShared() {
					ms = &shared
				}
				if in.Op.IsStore() {
					if ms.lastStore >= 0 {
						n.CtlIn = append(n.CtlIn, ms.lastStore)
					}
					n.CtlIn = append(n.CtlIn, ms.loadsSinceStore...)
				} else if ms.lastStore >= 0 {
					n.CtlIn = append(n.CtlIn, ms.lastStore)
				}
				id := newNode(n)
				if in.Op.IsStore() {
					ms.lastStore = id
					ms.loadsSinceStore = nil
				} else {
					ms.loadsSinceStore = append(ms.loadsSinceStore, id)
				}
				if in.Op.HasDst() {
					st[in.Dst] = id
				}
				continue
			}
			id := newNode(n)
			if in.Op.HasDst() {
				st[in.Dst] = id
			}
		}
		outStates[bi] = st

		switch b.Term.Kind {
		case kir.TermJump:
			edgePred[edge{bi, b.Term.Then}] = bp
		case kir.TermBranch:
			c, ok := st[b.Term.Cond]
			if !ok {
				return nil, fmt.Errorf("compile: kernel %s block %d (%s): branch condition undefined", k.Name, bi, b.Label)
			}
			// Normalize the condition to 0/1 so predicates compose with
			// bitwise AND/OR (branches may test arbitrary nonzero values).
			zero := constNode(0)
			cNorm := synth(kir.OpSetNE, c, zero)
			ncond := synth(kir.OpSetEQ, c, zero)
			tPred, ePred := cNorm, ncond
			if bp != -1 {
				tPred = synth(kir.OpAnd, bp, cNorm)
				ePred = synth(kir.OpAnd, bp, ncond)
			}
			edgePred[edge{bi, b.Term.Then}] = tPred
			edgePred[edge{bi, b.Term.Else}] = ePred
		case kir.TermRet:
			// Threads simply finish; the single terminator below collects
			// them.
		}
	}

	g.Term = newNode(&Node{Kind: NodeTerm, In: []int{g.Init}})
	g.computeOut()
	g.insertSplits()
	g.normalize()
	if o.checked {
		// numLVs 0: the flattened SGMF graph must not contain LV nodes —
		// all values travel on fabric channels.
		if err := verify.Join(VerifyGraph("ifconv", g, 0)); err != nil {
			return nil, fmt.Errorf("compile: ifconv: %w", err)
		}
	}
	return g, nil
}

// predVal is one incoming (edge predicate, value node) pair at a merge.
type predVal struct{ pred, val int }

// checkSelectChain verifies mask-completeness of one merged register: the
// select chain the merge built for r must account for every incoming edge
// that provides r. The chain's fallback must be the first providing edge's
// value (or the value of the last unconditional edge, which subsumes all
// earlier ones), and each later conditional edge must contribute exactly one
// select level keyed by that edge's predicate, outermost last. An edge
// missing from the chain would make threads on that path read another
// path's value — exactly the silent wrong-result bug predication invites.
func checkSelectChain(g *BlockDFG, kernel string, bi int, r kir.Reg, inc []predVal, final int) []verify.Diagnostic {
	c := diagList{pass: "ifconv", kernel: kernel, block: bi}
	// The fallback is the first providing edge, unless an unconditional
	// edge appears later: its value overwrites everything before it.
	base := 0
	uncond := 0
	for i, pv := range inc {
		if pv.pred == -1 {
			base = i
			uncond++
		}
	}
	if uncond > 1 {
		c.addf(bi, "merge of r%d has %d unconditional incoming edges, at most 1 possible", r, uncond)
		return c.ds
	}
	wrapped := inc[base+1:]

	// Walk the chain from the outside in. Synthesized selects carry no
	// destination register; a kernel-level select instruction does, so the
	// walk cannot descend into real instruction nodes.
	node := final
	for i := len(wrapped) - 1; i >= 0; i-- {
		n := g.Nodes[node]
		if n.Kind != NodeOp || n.Instr.Op != kir.OpSelect || n.Instr.Dst != kir.NoReg {
			c.addf(bi, "merge of r%d: select chain has %d levels, %d incoming edges unaccounted for",
				r, len(wrapped)-1-i, i+1)
			return c.ds
		}
		if n.In[0] != wrapped[i].pred || n.In[1] != wrapped[i].val {
			c.addf(bi, "merge of r%d: select level %d keys (pred %d, value %d), want edge (pred %d, value %d)",
				r, i, n.In[0], n.In[1], wrapped[i].pred, wrapped[i].val)
			return c.ds
		}
		node = n.In[2]
	}
	if node != inc[base].val {
		c.addf(bi, "merge of r%d: chain fallback is node %d, want node %d", r, node, inc[base].val)
	}
	return c.ds
}
