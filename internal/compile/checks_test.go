package compile

import (
	"strings"
	"testing"

	"vgiw/internal/kernels"
	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// passOf returns the Pass fields of every diagnostic carried by err.
func passOf(t *testing.T, err error) []string {
	t.Helper()
	if err == nil {
		t.Fatal("expected a verification error, got nil")
	}
	ds := verify.Diagnostics(err)
	if len(ds) == 0 {
		t.Fatalf("error carries no structured diagnostics: %v", err)
	}
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Pass
	}
	return out
}

// TestBrokenPassCaught simulates a buggy compiler pass at each pipeline
// stage and asserts the Checked pipeline fails with a structured diagnostic
// naming that stage. The mutations mirror real pass-bug classes: dropping a
// definition (broken remat), reordering blocks (broken scheduling), and
// stale analysis results (broken split bookkeeping).
func TestBrokenPassCaught(t *testing.T) {
	o := buildOptions([]Option{Checked()})

	t.Run("remat drops a definition", func(t *testing.T) {
		k := diamond(t)
		Rematerialize(k)
		// A buggy remat that deletes the cloned def instead of inserting it:
		// remove the first defining instruction of a multi-use register.
		b := k.Blocks[0]
		b.Instrs = b.Instrs[1:]
		err := o.checkKernel("remat", k, verify.Source)
		for _, p := range passOf(t, err) {
			if p != "remat" {
				t.Errorf("diagnostic names pass %q, want remat", p)
			}
		}
		if !strings.Contains(err.Error(), "used before definition") {
			t.Errorf("error %v does not name the broken invariant", err)
		}
	})

	t.Run("scheduling misnumbers blocks", func(t *testing.T) {
		k := diamond(t)
		if _, err := ScheduleBlocks(k); err != nil {
			t.Fatal(err)
		}
		// A buggy scheduler that swaps two blocks but fixes up the
		// terminator targets, so kir.Validate still passes.
		swap := func(a, b int) {
			k.Blocks[a], k.Blocks[b] = k.Blocks[b], k.Blocks[a]
			for _, blk := range k.Blocks {
				tm := &blk.Term
				fix := func(x int) int {
					switch x {
					case a:
						return b
					case b:
						return a
					}
					return x
				}
				tm.Then, tm.Else = fix(tm.Then), fix(tm.Else)
			}
		}
		swap(1, 2)
		if err := k.Validate(); err != nil {
			t.Fatalf("mutation must keep the kernel kir-valid: %v", err)
		}
		err := o.checkKernel("schedule", k, verify.Compiled)
		for _, p := range passOf(t, err) {
			if p != "schedule" {
				t.Errorf("diagnostic names pass %q, want schedule", p)
			}
		}
		if !strings.Contains(err.Error(), "reverse-postorder") {
			t.Errorf("error %v does not name the schedule rule", err)
		}
	})

	t.Run("stale live-value allocation", func(t *testing.T) {
		k := diamond(t)
		if _, err := ScheduleBlocks(k); err != nil {
			t.Fatal(err)
		}
		lv := AllocateLiveValues(k)
		// A buggy split pass that moves instructions between blocks without
		// re-running liveness: move the tail of block 1 into block 2.
		b1, b2 := k.Blocks[1], k.Blocks[2]
		n := len(b1.Instrs)
		b2.Instrs = append(append([]kir.Instr(nil), b1.Instrs[n-1:]...), b2.Instrs...)
		b1.Instrs = b1.Instrs[:n-1]
		ds := VerifyLiveValues("split", k, lv)
		if len(ds) == 0 {
			t.Fatal("stale allocation not detected")
		}
		for _, d := range ds {
			if d.Pass != "split" {
				t.Errorf("diagnostic names pass %q, want split", d.Pass)
			}
		}
	})
}

// TestCheckedCompileCatchesMutation drives the mutation through the public
// entry point: a kernel corrupted before Compile fails under Checked with a
// diagnostic naming the input stage, and compiles to the same artifact as
// the unchecked pipeline when healthy.
func TestCheckedCompileCatchesMutation(t *testing.T) {
	k := diamond(t)
	// Corrupt: make some instruction reference a register that is never
	// defined anywhere. The reg stays in range, so kir.Validate still passes.
	k.NumRegs++
	b := k.Blocks[5]
	for i := range b.Instrs {
		if b.Instrs[i].Op.NumSrc() > 0 {
			b.Instrs[i].Src[0] = kir.Reg(k.NumRegs - 1)
			break
		}
	}
	if _, err := Compile(k.Clone()); err != nil {
		t.Fatalf("unchecked compile must still accept it (DFG build sees the use as live-in): %v", err)
	}
	_, err := Compile(k, Checked())
	for _, p := range passOf(t, err) {
		if p != "input" {
			t.Errorf("diagnostic names pass %q, want input", p)
		}
	}
}

func TestVerifyGraphCatchesCorruption(t *testing.T) {
	fresh := func(t *testing.T) *CompiledKernel {
		ck, err := Compile(diamond(t), Checked())
		if err != nil {
			t.Fatal(err)
		}
		return ck
	}

	t.Run("clean graphs pass", func(t *testing.T) {
		ck := fresh(t)
		for _, g := range ck.DFGs {
			if ds := VerifyGraph("dfg", g, ck.LV.NumIDs); len(ds) > 0 {
				t.Fatalf("clean graph flagged: %v", verify.Join(ds))
			}
		}
	})

	t.Run("backward edge", func(t *testing.T) {
		ck := fresh(t)
		g := ck.DFGs[0]
		n := g.Nodes[1]
		n.In = append([]int(nil), n.In...)
		n.In[0] = len(g.Nodes) - 1 // point at a later node
		ds := VerifyGraph("dfg", g, ck.LV.NumIDs)
		if !diagMentions(ds, "backward edge") {
			t.Fatalf("backward edge not flagged: %v", verify.Join(ds))
		}
	})

	t.Run("fanout over limit", func(t *testing.T) {
		ck := fresh(t)
		g := ck.DFGs[0]
		var victim *Node
		for _, n := range g.Nodes {
			if n.Kind != NodeInit && len(n.Out) > 0 {
				victim = n
				break
			}
		}
		for len(victim.Out) <= MaxFanout {
			victim.Out = append(victim.Out, g.Term)
		}
		ds := VerifyGraph("dfg", g, ck.LV.NumIDs)
		if !diagMentions(ds, "fans out") {
			t.Fatalf("fanout violation not flagged: %v", verify.Join(ds))
		}
	})

	t.Run("live-value ID out of range", func(t *testing.T) {
		ck := fresh(t)
		for _, g := range ck.DFGs {
			for _, n := range g.Nodes {
				if n.Kind == NodeLVLoad || n.Kind == NodeLVStore {
					n.LV = ck.LV.NumIDs + 3
					ds := VerifyGraph("dfg", g, ck.LV.NumIDs)
					if !diagMentions(ds, "live-value ID") {
						t.Fatalf("LV bound not flagged: %v", verify.Join(ds))
					}
					return
				}
			}
		}
		t.Fatal("diamond kernel has no LV nodes to corrupt")
	})
}

func diagMentions(ds []verify.Diagnostic, sub string) bool {
	for _, d := range ds {
		if strings.Contains(d.Msg, sub) {
			return true
		}
	}
	return false
}

// TestRegistryPipelinesChecked runs every registry kernel through the full
// compiler pipelines with Checked() on, so each pass is followed by a
// verifier run over real kernels. Any diagnostic is a compiler bug (or a
// verifier false positive — both block the suite).
func TestRegistryPipelinesChecked(t *testing.T) {
	// A fits predicate small enough to force splitBlock rounds on the
	// larger kernels, so the "split" check sees post-split kernels.
	fits := func(g *BlockDFG) bool { return len(g.Nodes) <= 24 }
	replicasFor := func(g *BlockDFG) int {
		r := 64 / len(g.Nodes)
		if r > 4 {
			r = 4
		}
		return r
	}
	for _, spec := range kernels.All() {
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := CompileFitted(inst.Kernel.Clone(), fits, Checked()); err != nil {
				t.Errorf("CompileFitted: %v", err)
			}
			if _, err := OptimizeSplits(inst.Kernel.Clone(), replicasFor, 8, Checked()); err != nil {
				t.Errorf("OptimizeSplits: %v", err)
			}
			// SGMF path: schedule, unroll, if-convert (acyclic kernels only).
			k := inst.Kernel.Clone()
			if _, err := ScheduleBlocks(k); err != nil {
				t.Fatalf("ScheduleBlocks: %v", err)
			}
			if _, err := UnrollLoops(k, 16, 96, Checked()); err != nil {
				t.Fatalf("UnrollLoops: %v", err)
			}
			if !k.HasLoops() && !hasBarrier(k) {
				if _, err := IfConvert(k, Checked()); err != nil {
					t.Errorf("IfConvert: %v", err)
				}
			}
		})
	}
}

func hasBarrier(k *kir.Kernel) bool {
	for _, b := range k.Blocks {
		if b.Barrier {
			return true
		}
	}
	return false
}

// TestCheckSelectChain unit-tests the if-conversion mask-completeness
// checker against hand-built chains.
func TestCheckSelectChain(t *testing.T) {
	g := &BlockDFG{BlockID: -1}
	add := func(n *Node) int {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}
	noRegs := [3]kir.Reg{kir.NoReg, kir.NoReg, kir.NoReg}
	val := func() int {
		return add(&Node{Kind: NodeOp, Instr: kir.Instr{Op: kir.OpConst, Dst: kir.NoReg, Src: noRegs}})
	}
	sel := func(pred, a, b int) int {
		return add(&Node{Kind: NodeOp, Instr: kir.Instr{Op: kir.OpSelect, Dst: kir.NoReg, Src: noRegs}, In: []int{pred, a, b}})
	}
	p1, p2 := val(), val()
	v1, v2, v3 := val(), val(), val()

	// Complete chain: fallback v1, then v2 under p1, then v3 under p2.
	chain := sel(p2, v3, sel(p1, v2, v1))
	inc := []predVal{{99, v1}, {p1, v2}, {p2, v3}} // fallback pred unused by checker
	if ds := checkSelectChain(g, "k", 3, 7, inc, chain); len(ds) != 0 {
		t.Fatalf("complete chain flagged: %v", verify.Join(ds))
	}

	// Mask-incomplete: the p1 edge's value never got a select level.
	short := sel(p2, v3, v1)
	ds := checkSelectChain(g, "k", 3, 7, inc, short)
	if !diagMentions(ds, "unaccounted") {
		t.Fatalf("incomplete chain not flagged: %v", verify.Join(ds))
	}

	// Wrong predicate on a level.
	wrong := sel(p1, v3, sel(p1, v2, v1))
	ds = checkSelectChain(g, "k", 3, 7, inc, wrong)
	if !diagMentions(ds, "select level") {
		t.Fatalf("wrong predicate not flagged: %v", verify.Join(ds))
	}

	// Unconditional edge subsumes earlier ones: chain is just its value.
	uncondInc := []predVal{{99, v1}, {-1, v2}}
	if ds := checkSelectChain(g, "k", 3, 7, uncondInc, v2); len(ds) != 0 {
		t.Fatalf("unconditional merge flagged: %v", verify.Join(ds))
	}
	ds = checkSelectChain(g, "k", 3, 7, uncondInc, v1)
	if !diagMentions(ds, "fallback") {
		t.Fatalf("wrong unconditional fallback not flagged: %v", verify.Join(ds))
	}
}
