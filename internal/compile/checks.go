package compile

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// Option configures the compile pipeline entry points (Compile,
// CompileFitted, OptimizeSplits, UnrollLoops, IfConvert, ScheduleBlocks).
type Option func(*options)

type options struct {
	checked bool
}

// Checked makes every pass run the verifier on its output: the kernel-level
// checks of internal/verify plus the pass-specific invariants in this file
// (live-value allocation, dataflow-graph structure, if-conversion select
// coverage). A broken transform then fails loudly at the offending pass —
// with a verify.Diagnostic naming it — instead of surfacing as a wrong cycle
// count three subsystems later. Checked mode is on throughout the test suite
// and in the daemon's compile path, and off in timed runs: with no Option
// the pipeline does no verification work at all.
func Checked() Option { return func(o *options) { o.checked = true } }

func buildOptions(opts []Option) options {
	var o options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// checkKernel verifies the kernel after the named pass under Checked mode.
func (o options) checkKernel(pass string, k *kir.Kernel, mode verify.Mode) error {
	if !o.checked {
		return nil
	}
	if err := verify.Check(pass, k, mode); err != nil {
		return fmt.Errorf("compile: %s: %w", pass, err)
	}
	return nil
}

// VerifyLiveValues checks a live-value allocation against the kernel: the
// recorded loads, stores, and IDs must be exactly what liveness analysis
// derives from the current kernel text. Because AllocateLiveValues is a pure
// function of the kernel, any drift means a pass mutated blocks after
// allocation without re-running it — live values would silently read or miss
// the wrong LVC rows.
func VerifyLiveValues(pass string, k *kir.Kernel, lv *LiveValues) []verify.Diagnostic {
	c := diagList{pass: pass, kernel: k.Name, block: -1}
	for r, id := range lv.IDOf {
		if id < 0 || id >= lv.NumIDs {
			c.addf(-1, "live-value ID %d for r%d out of range [0,%d)", id, r, lv.NumIDs)
		}
	}
	if len(lv.Loads) != len(k.Blocks) || len(lv.Stores) != len(k.Blocks) {
		c.addf(-1, "live-value tables cover %d/%d blocks, kernel has %d",
			len(lv.Loads), len(lv.Stores), len(k.Blocks))
		return c.ds
	}
	want := AllocateLiveValues(k)
	if lv.NumIDs != want.NumIDs {
		c.addf(-1, "allocation has %d live-value IDs, liveness requires %d", lv.NumIDs, want.NumIDs)
	}
	for bi := range k.Blocks {
		if !regsEqual(lv.Loads[bi], want.Loads[bi]) {
			c.addf(bi, "LVC loads %v do not match liveness %v", lv.Loads[bi], want.Loads[bi])
		}
		if !regsEqual(lv.Stores[bi], want.Stores[bi]) {
			c.addf(bi, "LVC stores %v do not match liveness %v", lv.Stores[bi], want.Stores[bi])
		}
	}
	for r, id := range want.IDOf {
		if got, ok := lv.IDOf[r]; !ok || got != id {
			c.addf(-1, "r%d allocated live-value ID %v, liveness requires %d", r, got, id)
		}
	}
	for r := range lv.IDOf {
		if _, ok := want.IDOf[r]; !ok {
			c.addf(-1, "r%d has a live-value ID but never crosses a block boundary", r)
		}
	}
	return c.ds
}

// VerifyGraph structurally checks one dataflow graph: dense topologically
// ordered node IDs (all edges point backward to producers — the only
// sanctioned "back edges" on the fabric are block re-entries through the
// CVT, never intra-graph channels), a single initiator and terminator,
// per-op operand arity, predication only on memory nodes, the MaxFanout
// channel limit, consumer lists consistent with the edges, and live-value
// indices within the allocation (numLVs 0 bans LV nodes entirely, as in the
// flattened SGMF graphs).
func VerifyGraph(pass string, g *BlockDFG, numLVs int) []verify.Diagnostic {
	c := diagList{pass: pass, block: g.BlockID}
	n := len(g.Nodes)
	inits, terms := 0, 0
	type edgeKey struct{ from, to int }
	outWant := make(map[edgeKey]int, n)
	for i, nd := range g.Nodes {
		if nd == nil {
			c.addf(-1, "node %d is nil", i)
			return c.ds
		}
		if nd.ID != i {
			c.addf(-1, "node at index %d carries ID %d", i, nd.ID)
			return c.ds
		}
		for _, p := range append(append([]int(nil), nd.In...), nd.CtlIn...) {
			if p < 0 || p >= n {
				c.addf(-1, "node %d has edge from nonexistent node %d", i, p)
			} else if p >= i {
				c.addf(-1, "node %d has backward edge from node %d (graph must be topologically ordered)", i, p)
			} else {
				outWant[edgeKey{p, i}]++
			}
		}
		switch nd.Kind {
		case NodeInit:
			inits++
			if len(nd.In) != 0 || len(nd.CtlIn) != 0 {
				c.addf(-1, "initiator node %d has inputs", i)
			}
		case NodeTerm:
			terms++
			if len(nd.In) != 1 {
				c.addf(-1, "terminator node %d has %d inputs, want 1", i, len(nd.In))
			}
		case NodeOp:
			c.checkOpNode(nd)
		case NodeLVLoad, NodeLVStore:
			if nd.LV < 0 || nd.LV >= numLVs {
				c.addf(-1, "node %d: live-value ID %d out of range [0,%d)", i, nd.LV, numLVs)
			}
			if len(nd.In) != 1 {
				c.addf(-1, "LV node %d has %d inputs, want 1", i, len(nd.In))
			}
		case NodeSplit:
			if len(nd.In) != 1 {
				c.addf(-1, "split node %d has %d inputs, want 1", i, len(nd.In))
			}
		case NodeJoin:
		default:
			c.addf(-1, "node %d has invalid kind %d", i, nd.Kind)
		}
		if nd.Kind != NodeInit && len(nd.Out) > MaxFanout {
			c.addf(-1, "node %d fans out to %d consumers, fabric limit is %d", i, len(nd.Out), MaxFanout)
		}
	}
	if inits != 1 || n == 0 || g.Init < 0 || g.Init >= n || g.Nodes[g.Init].Kind != NodeInit {
		c.addf(-1, "graph needs exactly one initiator at Init=%d, found %d", g.Init, inits)
	}
	if terms != 1 || g.Term < 0 || g.Term >= n || g.Nodes[g.Term].Kind != NodeTerm {
		c.addf(-1, "graph needs exactly one terminator at Term=%d, found %d", g.Term, terms)
	}
	outGot := make(map[edgeKey]int, n)
	for i, nd := range g.Nodes {
		for _, cns := range nd.Out {
			if cns < 0 || cns >= n {
				c.addf(-1, "node %d lists nonexistent consumer %d", i, cns)
				continue
			}
			outGot[edgeKey{i, cns}]++
		}
	}
	for e, want := range outWant {
		if outGot[e] != want {
			c.addf(-1, "consumer lists disagree with edges: %d->%d appears %d times in Out, %d in In/CtlIn",
				e.from, e.to, outGot[e], want)
		}
	}
	for e := range outGot {
		if outWant[e] == 0 {
			c.addf(-1, "node %d lists consumer %d but no such edge exists", e.from, e.to)
		}
	}
	return c.ds
}

func (c *diagList) checkOpNode(nd *Node) {
	op := nd.Instr.Op
	if !op.Valid() {
		c.addf(-1, "node %d has invalid opcode %v", nd.ID, op)
		return
	}
	wantIn := op.NumSrc()
	if wantIn == 0 {
		wantIn = 1 // const/param/geometry take the initiator trigger
	}
	if nd.HasPred {
		if !op.IsMemory() {
			c.addf(-1, "node %d: predication on non-memory op %v", nd.ID, op)
		}
		if nd.Pred != wantIn {
			c.addf(-1, "node %d: predicate at input %d, want %d (last)", nd.ID, nd.Pred, wantIn)
		}
		wantIn++
	}
	if len(nd.In) != wantIn {
		c.addf(-1, "node %d: %v has %d inputs, want %d", nd.ID, op, len(nd.In), wantIn)
	}
}

// VerifyCompiled runs every invariant over a compiled kernel: the scheduled
// kernel contract, the live-value allocation, and each block's graph.
func VerifyCompiled(pass string, ck *CompiledKernel) []verify.Diagnostic {
	ds := verify.Kernel(pass, ck.Kernel, verify.Compiled)
	ds = append(ds, VerifyLiveValues(pass, ck.Kernel, ck.LV)...)
	if len(ck.DFGs) != len(ck.Kernel.Blocks) {
		ds = append(ds, verify.Diagnostic{
			Pass: pass, Kernel: ck.Kernel.Name, Block: -1, Op: -1,
			Msg: fmt.Sprintf("%d dataflow graphs for %d blocks", len(ck.DFGs), len(ck.Kernel.Blocks)),
		})
		return ds
	}
	for bi, g := range ck.DFGs {
		if g.BlockID != bi {
			ds = append(ds, verify.Diagnostic{
				Pass: pass, Kernel: ck.Kernel.Name, Block: bi, Op: -1,
				Msg: fmt.Sprintf("graph carries block ID %d", g.BlockID),
			})
		}
		gds := VerifyGraph(pass, g, ck.LV.NumIDs)
		for i := range gds {
			gds[i].Kernel = ck.Kernel.Name
		}
		ds = append(ds, gds...)
	}
	return ds
}

// diagList accumulates diagnostics for pass-level checks.
type diagList struct {
	pass   string
	kernel string
	block  int
	ds     []verify.Diagnostic
}

func (c *diagList) addf(block int, format string, args ...any) {
	if block == -1 {
		block = c.block
	}
	c.ds = append(c.ds, verify.Diagnostic{
		Pass:   c.pass,
		Kernel: c.kernel,
		Block:  block,
		Op:     -1,
		Msg:    fmt.Sprintf(format, args...),
	})
}

func regsEqual(a, b []kir.Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
