package compile

import (
	"testing"

	"vgiw/internal/kir"
)

func compileDiamond(t testing.TB) *CompiledKernel {
	t.Helper()
	ck, err := Compile(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestCompileDiamond(t *testing.T) {
	ck := compileDiamond(t)
	if len(ck.DFGs) != 6 {
		t.Fatalf("got %d DFGs, want 6", len(ck.DFGs))
	}
	for bi, g := range ck.DFGs {
		if g.BlockID != bi {
			t.Errorf("DFG %d has BlockID %d", bi, g.BlockID)
		}
		checkDFGWellFormed(t, g)
	}
}

// checkDFGWellFormed verifies structural DFG invariants: unique IDs, edge
// references in range, producers precede consumers (topological creation
// order), exactly one initiator and one terminator, fanout within bounds.
func checkDFGWellFormed(t *testing.T, g *BlockDFG) {
	t.Helper()
	inits, terms := 0, 0
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		switch n.Kind {
		case NodeInit:
			inits++
		case NodeTerm:
			terms++
		}
		for _, p := range n.In {
			if p < 0 || p >= len(g.Nodes) {
				t.Fatalf("node %d input %d out of range", i, p)
			}
			if p >= i {
				t.Fatalf("node %d consumes node %d: not topological", i, p)
			}
		}
		for _, p := range n.CtlIn {
			if p >= i || p < 0 {
				t.Fatalf("node %d ctl-input %d not topological", i, p)
			}
		}
		if n.Kind != NodeInit && len(n.Out) > MaxFanout {
			t.Errorf("node %d (%v) fanout %d exceeds %d", i, n.Kind, len(n.Out), MaxFanout)
		}
	}
	if inits != 1 || terms != 1 {
		t.Fatalf("got %d initiators, %d terminators; want 1 each", inits, terms)
	}
}

func TestDFGLiveValueNodes(t *testing.T) {
	ck := compileDiamond(t)
	// Entry block (bb1) should emit LV stores (v, tid live-out) and no LV
	// loads.
	entry := ck.DFGs[0]
	loads, stores := 0, 0
	for _, n := range entry.Nodes {
		switch n.Kind {
		case NodeLVLoad:
			loads++
		case NodeLVStore:
			stores++
		}
	}
	if loads != 0 {
		t.Errorf("entry DFG has %d LV loads, want 0", loads)
	}
	if stores < 1 {
		t.Errorf("entry DFG has %d LV stores, want >= 1 (v crosses blocks; tid is rematerialized)", stores)
	}
	// The merge block (bb6) should load its inputs and store nothing.
	exitG := ck.DFGs[5]
	loads, stores = 0, 0
	for _, n := range exitG.Nodes {
		switch n.Kind {
		case NodeLVLoad:
			loads++
		case NodeLVStore:
			stores++
		}
	}
	if loads < 1 {
		t.Errorf("exit DFG has %d LV loads, want >= 1 (the merged result)", loads)
	}
	if stores != 0 {
		t.Errorf("exit DFG has %d LV stores, want 0", stores)
	}
}

func TestDFGMemoryOrdering(t *testing.T) {
	// load a; store b; load c; store d — all global. Expect: store b waits
	// for load a; load c waits for store b; store d waits for store b and
	// load c.
	b := kir.NewBuilder("memorder")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	base := b.Param(0)
	v0 := b.Load(base, 0)
	b.Store(base, 1, v0)
	v1 := b.Load(base, 2)
	b.Store(base, 3, v1)
	b.Ret()
	k := b.MustBuild()
	ck, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	g := ck.DFGs[0]

	var memNodes []*Node
	for _, n := range g.Nodes {
		if n.Kind == NodeOp && n.Instr.Op.IsMemory() {
			memNodes = append(memNodes, n)
		}
	}
	if len(memNodes) != 4 {
		t.Fatalf("got %d memory nodes, want 4", len(memNodes))
	}
	ld0, st0, ld1, st1 := memNodes[0], memNodes[1], memNodes[2], memNodes[3]
	if len(ld0.CtlIn) != 0 {
		t.Errorf("first load has ctl deps %v", ld0.CtlIn)
	}
	if !contains(st0.CtlIn, ld0.ID) {
		t.Errorf("store0 ctl deps %v missing load0 (%d)", st0.CtlIn, ld0.ID)
	}
	if !contains(ld1.CtlIn, st0.ID) {
		t.Errorf("load1 ctl deps %v missing store0 (%d)", ld1.CtlIn, st0.ID)
	}
	if !contains(st1.CtlIn, st0.ID) || !contains(st1.CtlIn, ld1.ID) {
		t.Errorf("store1 ctl deps %v missing store0/load1", st1.CtlIn)
	}
}

func TestDFGSharedAndGlobalIndependent(t *testing.T) {
	b := kir.NewBuilder("spaces")
	b.SetParams(1)
	b.SetShared(8)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	base := b.Param(0)
	tidx := b.TidX()
	b.StoreSh(tidx, 0, tidx) // shared store
	v := b.Load(base, 0)     // global load: must NOT depend on the shared store
	b.Store(base, 1, v)
	b.Ret()
	ck, err := Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	g := ck.DFGs[0]
	for _, n := range g.Nodes {
		if n.Kind == NodeOp && n.Instr.Op == kir.OpLoad {
			if len(n.CtlIn) != 0 {
				t.Errorf("global load has ctl deps %v; shared and global spaces must be independent", n.CtlIn)
			}
		}
	}
}

func TestDFGSplitInsertion(t *testing.T) {
	// One value consumed by 9 adds: fanout 9 > MaxFanout, so splits appear.
	b := kir.NewBuilder("fanout")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	base := b.Param(0)
	v := b.Load(base, 0)
	sum := b.Const(0)
	for i := 0; i < 9; i++ {
		nv := b.Add(v, sum)
		b.MovTo(sum, nv)
	}
	b.Store(base, 1, sum)
	b.Ret()
	ck, err := Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	g := ck.DFGs[0]
	splits := 0
	for _, n := range g.Nodes {
		if n.Kind == NodeSplit {
			splits++
		}
		if n.Kind != NodeInit && len(n.Out) > MaxFanout {
			t.Errorf("node %d fanout %d after split insertion", n.ID, len(n.Out))
		}
	}
	if splits == 0 {
		t.Error("no split nodes inserted for fanout 9")
	}
	checkDFGWellFormed(t, g)
}

func TestDFGClassCounts(t *testing.T) {
	ck := compileDiamond(t)
	g := ck.DFGs[0] // entry: tid, param, add, load, const, setlt + init/term + LV stores
	counts := g.ClassCounts()
	if counts[kir.ClassCVU] != 2 {
		t.Errorf("CVU count = %d, want 2 (init+term)", counts[kir.ClassCVU])
	}
	if counts[kir.ClassLDST] != 1 {
		t.Errorf("LDST count = %d, want 1", counts[kir.ClassLDST])
	}
	if counts[kir.ClassLVU] < 1 {
		t.Errorf("LVU count = %d, want >= 1", counts[kir.ClassLVU])
	}
	if counts[kir.ClassALU] == 0 {
		t.Error("no ALU nodes")
	}
	if g.CriticalPathLen() < 3 {
		t.Errorf("critical path %d suspiciously short", g.CriticalPathLen())
	}
}

func TestDFGUndefinedUseRejected(t *testing.T) {
	// A register used before definition that is NOT live-in anywhere:
	// construct by hand (builders cannot produce it).
	k := &kir.Kernel{
		Name:    "bad",
		NumRegs: 2,
		Blocks: []*kir.Block{{
			Label: "entry",
			Instrs: []kir.Instr{
				{Op: kir.OpMov, Dst: 1, Src: [3]kir.Reg{0, kir.NoReg, kir.NoReg}},
			},
			Term: kir.Terminator{Kind: kir.TermRet},
		}},
	}
	// r0 is never defined; liveness will make it an LV load of an
	// uninitialized value (reads zero), matching interpreter semantics.
	ck, err := Compile(k)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// The LV load must exist so the DFG is still well-formed.
	found := false
	for _, n := range ck.DFGs[0].Nodes {
		if n.Kind == NodeLVLoad {
			found = true
		}
	}
	if !found {
		t.Error("expected an LV load for the uninitialized register")
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
