package compile

import (
	"testing"

	"vgiw/internal/kir"
)

// countedLoopKernel: out[tid] = sum of (tid+j) for j in [0, trips).
func countedLoopKernel(trips int32) *kir.Kernel {
	b := kir.NewBuilder("counted")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	sum := b.Const(0)
	b.Jump(loop)

	b.SetBlock(loop)
	sum1 := b.Add(sum, b.Add(tid, i))
	b.MovTo(sum, sum1)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLT(i1, b.Const(trips)), loop, exit)

	b.SetBlock(exit)
	b.Store(b.Add(b.Param(0), tid), 0, sum)
	b.Ret()
	return b.MustBuild()
}

func TestDominatorsDiamond(t *testing.T) {
	k := diamond(t)
	idom := Dominators(k)
	// bb1 dominates everything; bb3 dominates bb4/bb5; bb6's idom is bb1.
	if idom[0] != 0 {
		t.Errorf("idom[entry] = %d", idom[0])
	}
	if idom[3] != 2 || idom[4] != 2 {
		t.Errorf("idom of bb4/bb5 = %d/%d, want bb3 (2)", idom[3], idom[4])
	}
	if idom[5] != 0 {
		t.Errorf("idom[merge] = %d, want entry", idom[5])
	}
}

func TestNaturalLoops(t *testing.T) {
	k := countedLoopKernel(4)
	if _, err := ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	loops := NaturalLoops(k)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != l.Latch {
		t.Errorf("self loop expected: header %d latch %d", l.Header, l.Latch)
	}
	if len(l.Body) != 1 {
		t.Errorf("body = %v, want single block", l.Body)
	}
}

func TestCountedTrip(t *testing.T) {
	for _, trips := range []int32{1, 3, 7, 16} {
		k := countedLoopKernel(trips)
		if _, err := ScheduleBlocks(k); err != nil {
			t.Fatal(err)
		}
		loops := NaturalLoops(k)
		if len(loops) != 1 {
			t.Fatalf("trips=%d: %d loops", trips, len(loops))
		}
		got, _, ok := countedTrip(k, loops[0])
		if !ok {
			t.Fatalf("trips=%d: not recognized as counted", trips)
		}
		if got != int(trips) {
			t.Errorf("trips=%d: counted %d", trips, got)
		}
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	const trips = 5
	const n = 64
	ref := make([]uint32, n)
	in := &kir.Interp{Kernel: countedLoopKernel(trips), Launch: kir.Launch1D(2, 32, 0), Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}

	k := countedLoopKernel(trips)
	unrolled, err := UnrollLoops(k, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	if unrolled != 1 {
		t.Fatalf("unrolled %d loops, want 1", unrolled)
	}
	if _, err := ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	if k.HasLoops() {
		t.Fatal("kernel still has loops after full unroll")
	}
	got := make([]uint32, n)
	in2 := &kir.Interp{Kernel: k, Launch: kir.Launch1D(2, 32, 0), Global: got}
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestUnrollMakesSGMFMappable(t *testing.T) {
	k := countedLoopKernel(4)
	if _, err := ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	if _, err := IfConvert(k.Clone()); err == nil {
		t.Fatal("loopy kernel should not if-convert")
	}
	if _, err := UnrollLoops(k, 16, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	if _, err := IfConvert(k); err != nil {
		t.Fatalf("unrolled kernel should if-convert: %v", err)
	}
}

func TestUnrollRespectsLimits(t *testing.T) {
	k := countedLoopKernel(100)
	un, err := UnrollLoops(k, 16, 512) // 100 trips > 16 cap
	if err != nil {
		t.Fatal(err)
	}
	if un != 0 {
		t.Error("should not unroll beyond maxTrips")
	}

	k = countedLoopKernel(8)
	un, err = UnrollLoops(k, 16, 10) // 8 trips * ~7 instrs > 10 cap
	if err != nil {
		t.Fatal(err)
	}
	if un != 0 {
		t.Error("should not unroll beyond maxInstrs")
	}
}

func TestUnrollSkipsDataDependentLoops(t *testing.T) {
	// Bound is the thread ID — not a compile-time constant.
	b := kir.NewBuilder("datadep")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLT(i1, tid), loop, exit)
	b.SetBlock(exit)
	b.Store(b.Add(b.Param(0), tid), 0, i)
	b.Ret()
	k := b.MustBuild()

	un, err := UnrollLoops(k, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	if un != 0 {
		t.Error("data-dependent loop must not unroll")
	}
}

func TestUnrollSkipsBarrierLoops(t *testing.T) {
	b := kir.NewBuilder("barloop")
	b.SetShared(4)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.MarkBarrier(loop)
	b.SetBlock(entry)
	i := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	tidx := b.TidX()
	b.StoreSh(tidx, 0, i)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLT(i1, b.Const(4)), loop, exit)
	b.SetBlock(exit)
	b.Ret()
	k := b.MustBuild()

	un, err := UnrollLoops(k, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	if un != 0 {
		t.Error("barrier loop must not unroll")
	}
}
