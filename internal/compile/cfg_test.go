package compile

import (
	"testing"

	"vgiw/internal/kir"
)

// diamond builds the Figure 1a CFG shape:
//
//	BB1 -> {BB2, BB3}; BB3 -> {BB4, BB5}; BB2,BB4,BB5 -> BB6.
func diamond(t testing.TB) *kir.Kernel {
	t.Helper()
	b := kir.NewBuilder("fig1a")
	b.SetParams(2) // inBase, outBase
	bb1 := b.NewBlock("bb1")
	bb2 := b.NewBlock("bb2")
	bb3 := b.NewBlock("bb3")
	bb4 := b.NewBlock("bb4")
	bb5 := b.NewBlock("bb5")
	bb6 := b.NewBlock("bb6")

	b.SetBlock(bb1)
	tid := b.Tid()
	inB := b.Param(0)
	addr := b.Add(inB, tid)
	v := b.Load(addr, 0)
	c1 := b.SetLT(v, b.Const(10))
	b.Branch(c1, bb2, bb3)

	b.SetBlock(bb2)
	x2 := b.MulI(v, 2)
	r2 := b.Mov(x2)
	b.Jump(bb6)

	b.SetBlock(bb3)
	c2 := b.SetLT(v, b.Const(100))
	b.Branch(c2, bb4, bb5)

	b.SetBlock(bb4)
	x4 := b.AddI(v, 7)
	b.MovTo(r2, x4)
	b.Jump(bb6)

	b.SetBlock(bb5)
	x5 := b.Sub(v, tid)
	b.MovTo(r2, x5)
	b.Jump(bb6)

	b.SetBlock(bb6)
	outB := b.Param(1)
	oaddr := b.Add(outB, tid)
	b.Store(oaddr, 0, r2)
	b.Ret()

	return b.MustBuild()
}

func TestPredsAndRPO(t *testing.T) {
	k := diamond(t)
	preds := Preds(k)
	if len(preds[0]) != 0 {
		t.Errorf("entry preds = %v, want none", preds[0])
	}
	if len(preds[5]) != 3 {
		t.Errorf("bb6 preds = %v, want 3", preds[5])
	}
	rpo := ReversePostorder(k)
	if rpo[0] != 0 {
		t.Fatalf("rpo[0] = %d, want 0 (entry)", rpo[0])
	}
	if len(rpo) != 6 {
		t.Fatalf("rpo covers %d blocks, want 6", len(rpo))
	}
	pos := make([]int, len(k.Blocks))
	for i, b := range rpo {
		pos[b] = i
	}
	// In RPO of a DAG every edge goes forward.
	for bi, b := range k.Blocks {
		for _, s := range b.Term.Succs() {
			if pos[s] <= pos[bi] {
				t.Errorf("edge %d->%d not forward in RPO", bi, s)
			}
		}
	}
}

func TestReachableDropsOrphans(t *testing.T) {
	k := diamond(t)
	// Add an orphan block by hand.
	k.Blocks = append(k.Blocks, &kir.Block{Label: "orphan", Term: kir.Terminator{Kind: kir.TermRet}})
	reach := Reachable(k)
	if reach[len(k.Blocks)-1] {
		t.Error("orphan reported reachable")
	}
	if _, err := ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	if len(k.Blocks) != 6 {
		t.Errorf("scheduling kept %d blocks, want 6 (orphan dropped)", len(k.Blocks))
	}
}

func TestImmPostDomsDiamond(t *testing.T) {
	k := diamond(t)
	ipdom := ImmPostDoms(k)
	// bb1(0) and bb3(2) reconverge at bb6(5); bb2/bb4/bb5 also flow to 5.
	for _, b := range []int{0, 1, 2, 3, 4} {
		if ipdom[b] != 5 {
			t.Errorf("ipdom[%d] = %d, want 5", b, ipdom[b])
		}
	}
	if ipdom[5] != -1 {
		t.Errorf("ipdom[exit] = %d, want -1", ipdom[5])
	}
}

func TestImmPostDomsLoop(t *testing.T) {
	// entry -> loop; loop -> {loop, exit}; exit -> ret.
	b := kir.NewBuilder("loopy")
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	i := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	c := b.SetLT(i1, b.Const(10))
	b.Branch(c, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	k := b.MustBuild()

	ipdom := ImmPostDoms(k)
	if ipdom[0] != 1 {
		t.Errorf("ipdom[entry] = %d, want loop (1)", ipdom[0])
	}
	if ipdom[1] != 2 {
		t.Errorf("ipdom[loop] = %d, want exit (2)", ipdom[1])
	}
	if ipdom[2] != -1 {
		t.Errorf("ipdom[exit] = %d, want -1", ipdom[2])
	}
	if !k.HasLoops() {
		t.Error("kernel should report loops")
	}
}

func TestScheduleBlocksNormalizesOrder(t *testing.T) {
	// Build with blocks declared out of order: entry jumps to a block
	// declared last.
	b := kir.NewBuilder("scrambled")
	entry := b.NewBlock("entry")
	late := b.NewBlock("late") // declared second, reached last
	mid := b.NewBlock("mid")
	b.SetBlock(entry)
	c := b.SetLT(b.Tid(), b.Const(4))
	b.Branch(c, mid, late)
	b.SetBlock(mid)
	b.Jump(late)
	b.SetBlock(late)
	b.Ret()
	k := b.MustBuild()

	if _, err := ScheduleBlocks(k); err != nil {
		t.Fatal(err)
	}
	// After scheduling: every forward edge goes to a larger ID.
	for bi, blk := range k.Blocks {
		for _, s := range blk.Term.Succs() {
			if s <= bi {
				t.Errorf("edge %d->%d should be forward after scheduling", bi, s)
			}
		}
	}
	if k.Blocks[0].Label != "entry" {
		t.Errorf("entry block is %q, want entry", k.Blocks[0].Label)
	}
	if k.Blocks[len(k.Blocks)-1].Label != "late" {
		t.Errorf("last block is %q, want late", k.Blocks[len(k.Blocks)-1].Label)
	}
}

func TestLivenessDiamond(t *testing.T) {
	k := diamond(t)
	flows := Liveness(k)
	// v (the load result) is defined in bb1 and used in bb2, bb3, bb4, bb5.
	vReg := k.Blocks[0].Instrs[3].Dst
	if !flows[0].LiveOut[vReg] {
		t.Error("v should be live-out of bb1")
	}
	for _, bi := range []int{1, 2, 3, 4} {
		if !flows[bi].LiveIn[vReg] {
			t.Errorf("v should be live-in of block %d", bi)
		}
	}
	if flows[5].LiveIn[vReg] {
		t.Error("v should not be live-in of bb6")
	}
	// tid is used in bb1, bb5 (x5 = v - tid) and bb6 (output address).
	tidReg := k.Blocks[0].Instrs[0].Dst
	if !flows[4].LiveIn[tidReg] || !flows[5].LiveIn[tidReg] {
		t.Error("tid should be live into bb5 and bb6")
	}
}

func TestAllocateLiveValues(t *testing.T) {
	k := diamond(t)
	lv := AllocateLiveValues(k)
	if lv.NumIDs == 0 {
		t.Fatal("no live values allocated in a divergent kernel")
	}
	// Each crossing register gets exactly one ID; IDs are dense.
	seen := make(map[int]bool)
	for r, id := range lv.IDOf {
		if id < 0 || id >= lv.NumIDs {
			t.Errorf("r%d has out-of-range LV id %d", r, id)
		}
		if seen[id] {
			t.Errorf("LV id %d assigned twice", id)
		}
		seen[id] = true
	}
	// bb6 stores the merged result; it must load r2 and tid.
	if len(lv.Loads[5]) < 2 {
		t.Errorf("bb6 loads %v, want at least r2 and tid", lv.Loads[5])
	}
	// bb1 must store v (and tid) for downstream blocks.
	if len(lv.Stores[0]) < 2 {
		t.Errorf("bb1 stores %v, want at least v and tid", lv.Stores[0])
	}
	// Entry block loads nothing.
	if len(lv.Loads[0]) != 0 {
		t.Errorf("entry block loads %v, want none", lv.Loads[0])
	}
}

func TestLoopLiveValues(t *testing.T) {
	b := kir.NewBuilder("loopsum")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	sum := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	sum1 := b.Add(sum, i)
	i1 := b.AddI(i, 1)
	b.MovTo(sum, sum1)
	b.MovTo(i, i1)
	c := b.SetLE(i1, tid)
	b.Branch(c, loop, exit)
	b.SetBlock(exit)
	addr := b.Add(b.Param(0), tid)
	b.Store(addr, 0, sum)
	b.Ret()
	k := b.MustBuild()

	lv := AllocateLiveValues(k)
	// The loop block must both load and store the carried registers.
	if len(lv.Loads[1]) < 3 { // i, sum, tid
		t.Errorf("loop loads %v, want i, sum, tid", lv.Loads[1])
	}
	if len(lv.Stores[1]) < 2 { // i, sum
		t.Errorf("loop stores %v, want i, sum", lv.Stores[1])
	}
}
