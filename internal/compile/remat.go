package compile

import "vgiw/internal/kir"

// Rematerialize rewrites cross-block uses of cheaply recomputable values —
// constants, launch parameters, and thread-geometry coordinates — into fresh
// per-block definitions. On the VGIW machine these values are free in every
// block anyway (constants and parameters live in configuration registers;
// the initiator CVU delivers the thread coordinates, §3.5), so carrying them
// through the live value cache would charge phantom LVC traffic and waste
// LVU units. The paper's compiler performs the same rematerialization
// implicitly by generating per-block configurations from SSA form.
//
// A register qualifies when it has exactly one definition kernel-wide and
// that definition is a zero-input opcode. The pass runs before liveness, so
// rematerialized registers simply stop being live across blocks.
func Rematerialize(k *kir.Kernel) {
	// Count definitions and remember the single defining instruction.
	defCount := make(map[kir.Reg]int)
	defInstr := make(map[kir.Reg]kir.Instr)
	defBlock := make(map[kir.Reg]int)
	for bi, b := range k.Blocks {
		for _, in := range b.Instrs {
			if !in.Op.HasDst() {
				continue
			}
			defCount[in.Dst]++
			defInstr[in.Dst] = in
			defBlock[in.Dst] = bi
		}
	}
	remat := func(r kir.Reg) (kir.Instr, bool) {
		if defCount[r] != 1 {
			return kir.Instr{}, false
		}
		in := defInstr[r]
		if in.Op.NumSrc() != 0 {
			return kir.Instr{}, false
		}
		switch {
		case in.Op == kir.OpConst, in.Op == kir.OpParam, in.Op.IsGeometry():
			return in, true
		}
		return kir.Instr{}, false
	}

	for bi, b := range k.Blocks {
		// Find upward-exposed rematerializable uses.
		defined := make(map[kir.Reg]bool)
		needed := make(map[kir.Reg]kir.Instr)
		noteUse := func(r kir.Reg) {
			if defined[r] || defBlock[r] == bi && defCount[r] == 1 {
				// Defined locally before use (conservatively: single def in
				// this block counts as local regardless of position, since
				// builders emit defs before uses).
				return
			}
			if in, ok := remat(r); ok {
				needed[r] = in
			}
		}
		for _, in := range b.Instrs {
			for i := 0; i < in.Op.NumSrc(); i++ {
				noteUse(in.Src[i])
			}
			if in.Op.HasDst() {
				defined[in.Dst] = true
			}
		}
		if b.Term.Kind == kir.TermBranch {
			noteUse(b.Term.Cond)
		}
		if len(needed) == 0 {
			continue
		}
		// Prepend fresh definitions and rewrite the block's uses. Fresh
		// register numbers are handed out in sorted source-register order —
		// map iteration order would leak into the numbering and make
		// repeated compiles disagree.
		order := make([]kir.Reg, 0, len(needed))
		for r := range needed {
			order = append(order, r)
		}
		sortRegs(order)
		replace := make(map[kir.Reg]kir.Reg, len(needed))
		prefix := make([]kir.Instr, 0, len(needed))
		for _, r := range order {
			in := needed[r]
			nr := kir.Reg(k.NumRegs)
			k.NumRegs++
			in.Dst = nr
			prefix = append(prefix, in)
			replace[r] = nr
		}
		rewritten := make([]kir.Instr, 0, len(prefix)+len(b.Instrs))
		rewritten = append(rewritten, prefix...)
		local := make(map[kir.Reg]bool)
		for _, in := range b.Instrs {
			for i := 0; i < in.Op.NumSrc(); i++ {
				if nr, ok := replace[in.Src[i]]; ok && !local[in.Src[i]] {
					in.Src[i] = nr
				}
			}
			rewritten = append(rewritten, in)
			if in.Op.HasDst() {
				local[in.Dst] = true
			}
		}
		b.Instrs = rewritten
		if b.Term.Kind == kir.TermBranch {
			if nr, ok := replace[b.Term.Cond]; ok && !local[b.Term.Cond] {
				b.Term.Cond = nr
			}
		}
	}
}
