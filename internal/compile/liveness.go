package compile

import "vgiw/internal/kir"

// BlockFlow summarizes one block's register dataflow.
type BlockFlow struct {
	// UpwardUse holds registers read before any definition in the block
	// (they must arrive from a predecessor).
	UpwardUse map[kir.Reg]bool
	// Def holds registers defined anywhere in the block.
	Def map[kir.Reg]bool
	// LiveIn / LiveOut are the fixed-point liveness sets.
	LiveIn, LiveOut map[kir.Reg]bool
}

// Liveness computes classic backward liveness over the kernel CFG. The
// terminator's condition register counts as a use at the end of its block.
func Liveness(k *kir.Kernel) []BlockFlow {
	n := len(k.Blocks)
	flows := make([]BlockFlow, n)
	for bi, b := range k.Blocks {
		f := BlockFlow{
			UpwardUse: make(map[kir.Reg]bool),
			Def:       make(map[kir.Reg]bool),
			LiveIn:    make(map[kir.Reg]bool),
			LiveOut:   make(map[kir.Reg]bool),
		}
		for _, in := range b.Instrs {
			for i := 0; i < in.Op.NumSrc(); i++ {
				if r := in.Src[i]; !f.Def[r] {
					f.UpwardUse[r] = true
				}
			}
			if in.Op.HasDst() {
				f.Def[in.Dst] = true
			}
		}
		if b.Term.Kind == kir.TermBranch {
			if r := b.Term.Cond; !f.Def[r] {
				f.UpwardUse[r] = true
			}
		}
		flows[bi] = f
	}

	changed := true
	for changed {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			f := &flows[bi]
			for _, s := range k.Blocks[bi].Term.Succs() {
				for r := range flows[s].LiveIn {
					if !f.LiveOut[r] {
						f.LiveOut[r] = true
						changed = true
					}
				}
			}
			for r := range f.UpwardUse {
				if !f.LiveIn[r] {
					f.LiveIn[r] = true
					changed = true
				}
			}
			for r := range f.LiveOut {
				if !f.Def[r] && !f.LiveIn[r] {
					f.LiveIn[r] = true
					changed = true
				}
			}
			// A register used after a redefinition point inside the block
			// is not upward-exposed; handled by UpwardUse above. A register
			// that is live-out and also defined needs no LiveIn entry.
		}
	}
	return flows
}

// LiveValues is the compiler's live-value allocation (§3.1): every register
// that crosses a basic-block boundary gets a live-value ID, and each block
// records which live values it must load from and store to the LVC.
type LiveValues struct {
	// IDOf maps a register to its live-value ID; registers that never
	// cross a block boundary are absent.
	IDOf map[kir.Reg]int
	// NumIDs is the number of allocated live-value IDs.
	NumIDs int
	// Loads[b] lists registers block b must fetch from the LVC (sorted).
	Loads [][]kir.Reg
	// Stores[b] lists registers block b must write to the LVC: registers
	// the block defines that are live-out (sorted).
	Stores [][]kir.Reg
}

// AllocateLiveValues assigns live-value IDs. The allocation is one ID per
// crossing register, which mirrors the paper's "similar to traditional
// register allocation" description without the reuse optimization (IDs index
// a memory-resident matrix, so reuse only affects footprint, not traffic).
func AllocateLiveValues(k *kir.Kernel) *LiveValues {
	flows := Liveness(k)
	lv := &LiveValues{
		IDOf:   make(map[kir.Reg]int),
		Loads:  make([][]kir.Reg, len(k.Blocks)),
		Stores: make([][]kir.Reg, len(k.Blocks)),
	}
	assign := func(r kir.Reg) {
		if _, ok := lv.IDOf[r]; !ok {
			lv.IDOf[r] = lv.NumIDs
			lv.NumIDs++
		}
	}
	for bi := range k.Blocks {
		f := &flows[bi]
		// Loads: upward-exposed uses that are live-in.
		for r := range f.UpwardUse {
			if f.LiveIn[r] {
				lv.Loads[bi] = append(lv.Loads[bi], r)
			}
		}
		// Stores: definitions that are live-out.
		for r := range f.Def {
			if f.LiveOut[r] {
				lv.Stores[bi] = append(lv.Stores[bi], r)
			}
		}
		sortRegs(lv.Loads[bi])
		sortRegs(lv.Stores[bi])
		// Assign IDs from the sorted lists, not the map iterations above:
		// the numbering must be a pure function of the kernel (block order,
		// then register order) so repeated compiles agree bit-for-bit.
		for _, r := range lv.Loads[bi] {
			assign(r)
		}
		for _, r := range lv.Stores[bi] {
			assign(r)
		}
	}
	return lv
}

func sortRegs(rs []kir.Reg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
