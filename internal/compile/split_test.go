package compile

import (
	"testing"

	"vgiw/internal/kir"
)

// wideKernel builds a single block with `adds` chained integer adds.
func wideKernel(adds int) *kir.Kernel {
	b := kir.NewBuilder("wide")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	tid := b.Tid()
	acc := tid
	for i := 0; i < adds; i++ {
		acc = b.Add(acc, tid)
	}
	b.Store(b.Add(b.Param(0), b.Tid()), 0, acc)
	b.Ret()
	return b.MustBuild()
}

// aluLimit is a fits predicate capping ALU nodes per block.
func aluLimit(n int) func(*BlockDFG) bool {
	return func(g *BlockDFG) bool {
		return g.ClassCounts()[kir.ClassALU] <= n
	}
}

func TestCompileFittedSplitsOversized(t *testing.T) {
	k := wideKernel(40)
	ck, err := CompileFitted(k, aluLimit(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Kernel.Blocks) < 3 {
		t.Errorf("expected >= 3 blocks after splitting a 40-add chain at 16 ALU/block, got %d",
			len(ck.Kernel.Blocks))
	}
	for bi, g := range ck.DFGs {
		if c := g.ClassCounts()[kir.ClassALU]; c > 16 {
			t.Errorf("block %d still has %d ALU nodes", bi, c)
		}
	}
}

func TestCompileFittedPreservesSemantics(t *testing.T) {
	const n = 64
	run := func(k *kir.Kernel) []uint32 {
		mem := make([]uint32, n)
		in := &kir.Interp{Kernel: k, Launch: kir.Launch1D(2, 32, 0), Global: mem}
		if err := in.Run(); err != nil {
			t.Fatal(err)
		}
		return mem
	}
	ref := run(wideKernel(40))

	k := wideKernel(40)
	if _, err := CompileFitted(k, aluLimit(10)); err != nil {
		t.Fatal(err)
	}
	got := run(k)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestCompileFittedUnsatisfiable(t *testing.T) {
	k := wideKernel(4)
	if _, err := CompileFitted(k, func(*BlockDFG) bool { return false }); err == nil {
		t.Error("want error when nothing can fit")
	}
}

func TestSplitBlockKeepsBranches(t *testing.T) {
	// Splitting a block inside a diamond must keep all edges consistent.
	k := diamond(t)
	// Make bb3 (index 2 in builder order) large enough to matter.
	if err := splitBlock(k, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	// The split block's continuation should carry the original branch.
	if k.Blocks[0].Term.Kind != kir.TermJump || k.Blocks[0].Term.Then != 1 {
		t.Errorf("first half terminator = %v", k.Blocks[0].Term)
	}
	if k.Blocks[1].Term.Kind != kir.TermBranch {
		t.Errorf("continuation terminator = %v", k.Blocks[1].Term)
	}

	// Functional check against the unsplit kernel.
	const n = 64
	mk := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := 0; i < n; i++ {
			m[i] = uint32(i * 7 % 250)
		}
		return m
	}
	ref := mk()
	in := &kir.Interp{Kernel: diamond(t), Launch: kir.Launch1D(2, 32, 0, n), Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	got := mk()
	in2 := &kir.Interp{Kernel: k, Launch: kir.Launch1D(2, 32, 0, n), Global: got}
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: split %d, ref %d", i, got[i], ref[i])
		}
	}
}

func TestSplitBlockSelfLoop(t *testing.T) {
	// A self-looping block splits into a two-block loop.
	b := kir.NewBuilder("selfloop")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	sum := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	s1 := b.Add(sum, i)
	b.MovTo(sum, s1)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLE(i1, tid), loop, exit)
	b.SetBlock(exit)
	b.Store(b.Add(b.Param(0), tid), 0, sum)
	b.Ret()
	k := b.MustBuild()

	const n = 64
	ref := make([]uint32, n)
	in := &kir.Interp{Kernel: k.Clone(), Launch: kir.Launch1D(2, 32, 0), Global: ref}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}

	if err := splitBlock(k, 1); err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, n)
	in2 := &kir.Interp{Kernel: k, Launch: kir.Launch1D(2, 32, 0), Global: got}
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], ref[i])
		}
	}
}

func TestOptimizeSplitsImprovesRoundingWaste(t *testing.T) {
	// ~17 ALU nodes with a 32-ALU budget: R=1 wastes nearly half the
	// units; two ~9-ALU halves replicate 3-4x each (cost well under 1).
	// The synthetic replicas-for function mimics fabric.MaxReplicasFor on
	// ALUs only.
	replicasFor := func(g *BlockDFG) int {
		alu := g.ClassCounts()[kir.ClassALU]
		if alu == 0 {
			return 8
		}
		r := 32 / alu
		if r > 8 {
			r = 8
		}
		return r
	}
	k := wideKernel(14)
	ck, err := OptimizeSplits(k, replicasFor, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Kernel.Blocks) < 2 {
		t.Errorf("expected the rounding-waste block to split, got %d blocks", len(ck.Kernel.Blocks))
	}
	total := 0.0
	for _, g := range ck.DFGs {
		total += 1 / float64(replicasFor(g))
	}
	if total >= 1.0 {
		t.Errorf("summed per-thread cost %.2f did not improve on the unsplit 1.0", total)
	}
}

func TestRematerializeRemovesCrossBlockGeometry(t *testing.T) {
	// tid defined in entry and used in a later block must not become a
	// live value.
	b := kir.NewBuilder("remat")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	tid := b.Tid()
	base := b.Param(0)
	c := b.SetLT(tid, b.Const(100))
	b.Branch(c, body, exit)
	b.SetBlock(body)
	b.Store(b.Add(base, tid), 0, tid) // cross-block uses of tid and base
	b.Jump(exit)
	b.SetBlock(exit)
	b.Ret()
	k := b.MustBuild()

	ck, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if ck.LV.NumIDs != 0 {
		t.Errorf("rematerializable values produced %d live values", ck.LV.NumIDs)
	}

	// And semantics are preserved.
	const n = 128
	got := make([]uint32, n)
	in := &kir.Interp{Kernel: k, Launch: kir.Launch1D(4, 32, 0), Global: got}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got[i] != uint32(i) {
			t.Fatalf("out[%d] = %d", i, got[i])
		}
	}
	for i := 100; i < n; i++ {
		if got[i] != 0 {
			t.Fatalf("guarded store leaked to %d", i)
		}
	}
}

func TestRematerializeKeepsComputedValues(t *testing.T) {
	// A loaded value crossing blocks must remain a live value.
	b := kir.NewBuilder("keep")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	b.SetBlock(entry)
	v := b.Load(b.Add(b.Param(0), b.Tid()), 0)
	b.Branch(b.SetLT(v, b.Const(10)), body, body)
	b.SetBlock(body)
	b.Store(b.Add(b.Param(0), b.Tid()), 0, b.Add(v, v))
	b.Ret()
	k := b.MustBuild()
	ck, err := Compile(k)
	if err != nil {
		t.Fatal(err)
	}
	if ck.LV.NumIDs == 0 {
		t.Error("the loaded value must cross through the LVC")
	}
}
