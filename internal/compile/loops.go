package compile

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// Dominators computes the immediate dominator of every reachable block
// (entry's idom is itself; unreachable blocks get -1), by iterative dataflow
// over full dominator sets — kernels here are small.
func Dominators(k *kir.Kernel) []int {
	n := len(k.Blocks)
	reach := Reachable(k)
	preds := Preds(k)

	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	dom := make([][]bool, n)
	for b := 0; b < n; b++ {
		if !reach[b] {
			continue
		}
		if b == 0 {
			dom[b] = make([]bool, n)
			dom[b][0] = true
		} else {
			dom[b] = append([]bool(nil), full...)
		}
	}
	changed := true
	for changed {
		changed = false
		for b := 1; b < n; b++ {
			if !reach[b] {
				continue
			}
			next := append([]bool(nil), full...)
			any := false
			for _, p := range preds[b] {
				if !reach[p] {
					continue
				}
				any = true
				for i := 0; i < n; i++ {
					next[i] = next[i] && dom[p][i]
				}
			}
			if !any {
				next = make([]bool, n)
			}
			next[b] = true
			for i := 0; i < n; i++ {
				if next[i] != dom[b][i] {
					dom[b] = next
					changed = true
					break
				}
			}
		}
	}

	idom := make([]int, n)
	for b := 0; b < n; b++ {
		idom[b] = -1
		if !reach[b] {
			continue
		}
		if b == 0 {
			idom[b] = 0
			continue
		}
		best, bestSize := -1, -1
		for c := 0; c < n; c++ {
			if c == b || !dom[b][c] {
				continue
			}
			size := 0
			for i := 0; i < n; i++ {
				if dom[c][i] {
					size++
				}
			}
			if size > bestSize {
				best, bestSize = c, size
			}
		}
		idom[b] = best
	}
	return idom
}

// Loop describes a natural loop: a single back edge latch->header whose body
// is the set of blocks that reach the latch without passing the header.
type Loop struct {
	Header int
	Latch  int
	Body   []int // includes header and latch, ascending
}

// NaturalLoops finds the natural loops of a scheduled kernel (back edges are
// edges to a block with an ID <= the source's, per the §3.1 numbering). Back
// edges whose target does not dominate their source (irreducible flow) are
// skipped.
func NaturalLoops(k *kir.Kernel) []Loop {
	idom := Dominators(k)
	dominates := func(a, b int) bool {
		for b >= 0 {
			if a == b {
				return true
			}
			if b == 0 {
				return false
			}
			b = idom[b]
		}
		return false
	}
	preds := Preds(k)
	var loops []Loop
	for latch, b := range k.Blocks {
		for _, h := range b.Term.Succs() {
			if h > latch || !dominates(h, latch) {
				continue
			}
			// Collect the body: walk predecessors back from the latch,
			// stopping at the header.
			in := map[int]bool{h: true, latch: true}
			stack := []int{latch}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if x == h {
					continue
				}
				for _, p := range preds[x] {
					if !in[p] {
						in[p] = true
						stack = append(stack, p)
					}
				}
			}
			var body []int
			for bi := range k.Blocks {
				if in[bi] {
					body = append(body, bi)
				}
			}
			loops = append(loops, Loop{Header: h, Latch: latch, Body: body})
		}
	}
	return loops
}

// countedTrip recognizes the builder's canonical counted-loop shape and
// returns its constant trip count. The shape the Builder emits is
//
//	(preheader)  i  = const INIT
//	(body)       t  = add i, const STEP     ; or add STEP, i
//	(body)       mov i, t                   ; loop-carried update
//	(latch)      c  = setlt/setle t, const BOUND
//	(latch)      br c @header @exit
//
// The body executes once with i = INIT, then repeats while the comparison
// holds on the post-increment value t.
func countedTrip(k *kir.Kernel, l Loop) (int, kir.Reg, bool) {
	latch := k.Blocks[l.Latch]
	term := latch.Term
	if term.Kind != kir.TermBranch || term.Then != l.Header {
		return 0, kir.NoReg, false
	}
	inBody := map[int]bool{}
	for _, bi := range l.Body {
		inBody[bi] = true
	}
	// defInLoop returns the unique in-loop definition of r.
	defInLoop := func(r kir.Reg) (kir.Instr, bool) {
		var found kir.Instr
		count := 0
		for bi := range k.Blocks {
			if !inBody[bi] {
				continue
			}
			for _, in := range k.Blocks[bi].Instrs {
				if in.Op.HasDst() && in.Dst == r {
					found = in
					count++
				}
			}
		}
		return found, count == 1
	}

	cmp, ok := defInLoop(term.Cond)
	if !ok || (cmp.Op != kir.OpSetLT && cmp.Op != kir.OpSetLE) {
		return 0, kir.NoReg, false
	}
	bound, ok := findConst(k, l, cmp.Src[1])
	if !ok {
		return 0, kir.NoReg, false
	}
	// cmp compares the post-increment temp t = add(i, STEP).
	add, ok := defInLoop(cmp.Src[0])
	if !ok || add.Op != kir.OpAdd {
		return 0, kir.NoReg, false
	}
	var ind kir.Reg
	var step int32
	if c, isC := findConst(k, l, add.Src[1]); isC {
		ind, step = add.Src[0], c
	} else if c, isC := findConst(k, l, add.Src[0]); isC {
		ind, step = add.Src[1], c
	} else {
		return 0, kir.NoReg, false
	}
	if step == 0 {
		return 0, kir.NoReg, false
	}
	// The carried update `mov ind, t` must be the induction register's only
	// in-loop definition.
	mov, ok := defInLoop(ind)
	if !ok || mov.Op != kir.OpMov || mov.Src[0] != add.Dst {
		return 0, kir.NoReg, false
	}
	init, ok := initialValue(k, l, ind)
	if !ok {
		return 0, kir.NoReg, false
	}

	trips := 0
	v := init
	for {
		trips++
		if trips > 1024 {
			return 0, kir.NoReg, false // too big to unroll
		}
		v += step
		var cont bool
		if cmp.Op == kir.OpSetLT {
			cont = v < bound
		} else {
			cont = v <= bound
		}
		if !cont {
			break
		}
	}
	return trips, ind, true
}

// findConst resolves a register to a compile-time constant: its unique
// definition is OpConst and it is not redefined inside the loop.
func findConst(k *kir.Kernel, l Loop, r kir.Reg) (int32, bool) {
	var val int32
	defs := 0
	for bi, b := range k.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasDst() && in.Dst == r {
				defs++
				if in.Op != kir.OpConst {
					return 0, false
				}
				val = in.Imm
				_ = bi
			}
		}
	}
	return val, defs == 1
}

// initialValue resolves the induction register's value at loop entry: its
// unique definition outside the loop must be a constant.
func initialValue(k *kir.Kernel, l Loop, ind kir.Reg) (int32, bool) {
	inBody := map[int]bool{}
	for _, b := range l.Body {
		inBody[b] = true
	}
	var val int32
	defs := 0
	for bi, b := range k.Blocks {
		if inBody[bi] {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op.HasDst() && in.Dst == ind {
				defs++
				if in.Op != kir.OpConst {
					return 0, false
				}
				val = in.Imm
			}
		}
	}
	return val, defs == 1
}

// UnrollLoops fully unrolls counted loops with compile-time-constant trip
// counts (up to maxTrips iterations and maxInstrs emitted instructions per
// loop). This is what lets fixed-trip kernels — e.g. kmeans' feature loop —
// flatten into acyclic CFGs that the SGMF baseline can map. The kernel is
// modified in place; returns how many loops were unrolled.
func UnrollLoops(k *kir.Kernel, maxTrips, maxInstrs int, opts ...Option) (int, error) {
	o := buildOptions(opts)
	unrolled := 0
	for rounds := 0; rounds < 8; rounds++ {
		if _, err := ScheduleBlocks(k); err != nil {
			return unrolled, err
		}
		loops := NaturalLoops(k)
		done := true
		for _, l := range loops {
			// Only single-block self loops and simple two-block bodies are
			// handled: the body must not contain further branching.
			if !simpleBody(k, l) {
				continue
			}
			trips, _, ok := countedTrip(k, l)
			if !ok || trips > maxTrips {
				continue
			}
			bodyInstrs := 0
			for _, bi := range l.Body {
				bodyInstrs += len(k.Blocks[bi].Instrs)
			}
			if trips*bodyInstrs > maxInstrs {
				continue
			}
			unrollOne(k, l, trips)
			unrolled++
			if err := o.checkKernel("unroll", k, verify.Source); err != nil {
				return unrolled, err
			}
			done = false
			break // CFG changed; re-analyze
		}
		if done {
			return unrolled, nil
		}
	}
	return unrolled, nil
}

// simpleBody reports whether the loop body is a straight-line chain ending
// at the latch (no inner branches besides the latch's).
func simpleBody(k *kir.Kernel, l Loop) bool {
	for _, bi := range l.Body {
		if k.Blocks[bi].Barrier {
			return false // barrier loops stay loops
		}
		t := k.Blocks[bi].Term
		if bi == l.Latch {
			continue
		}
		if t.Kind != kir.TermJump {
			return false
		}
	}
	// The body must be a single chain header -> ... -> latch inside the loop.
	inBody := map[int]bool{}
	for _, bi := range l.Body {
		inBody[bi] = true
	}
	cur, steps := l.Header, 0
	for cur != l.Latch {
		cur = k.Blocks[cur].Term.Then
		steps++
		if !inBody[cur] || steps > len(l.Body) {
			return false
		}
	}
	if steps+1 != len(l.Body) {
		return false
	}
	// Single back edge into the header: the header's only in-loop
	// predecessor is the latch.
	preds := Preds(k)
	for _, p := range preds[l.Header] {
		inBody := false
		for _, bi := range l.Body {
			if p == bi {
				inBody = true
			}
		}
		if inBody && p != l.Latch {
			return false
		}
	}
	return true
}

// unrollOne replaces the loop with `trips` copies of its body chained by
// jumps, ending at the latch's exit successor.
func unrollOne(k *kir.Kernel, l Loop, trips int) {
	// Gather the body in control order: header .. latch (body is a chain).
	order := bodyChain(k, l)
	exit := k.Blocks[l.Latch].Term.Else // the not-taken side leaves the loop

	// Build the unrolled instruction stream in fresh blocks appended at the
	// end; then rewrite the header to jump at the first copy.
	var copies []*kir.Block
	for it := 0; it < trips; it++ {
		nb := &kir.Block{Label: fmt.Sprintf("%s.unroll%d", k.Blocks[l.Header].Label, it)}
		for _, bi := range order {
			nb.Instrs = append(nb.Instrs, append([]kir.Instr(nil), k.Blocks[bi].Instrs...)...)
		}
		copies = append(copies, nb)
	}
	base := len(k.Blocks)
	for i, nb := range copies {
		if i+1 < len(copies) {
			nb.Term = kir.Terminator{Kind: kir.TermJump, Then: base + i + 1}
		} else {
			nb.Term = kir.Terminator{Kind: kir.TermJump, Then: exit}
		}
		k.Blocks = append(k.Blocks, nb)
	}
	// Redirect every edge that entered the header from outside the loop to
	// the first copy, and neuter the old loop blocks (they become
	// unreachable and are dropped by the next ScheduleBlocks).
	inBody := map[int]bool{}
	for _, bi := range l.Body {
		inBody[bi] = true
	}
	for bi, b := range k.Blocks[:base] {
		if inBody[bi] {
			continue
		}
		t := &b.Term
		switch t.Kind {
		case kir.TermJump:
			if t.Then == l.Header {
				t.Then = base
			}
		case kir.TermBranch:
			if t.Then == l.Header {
				t.Then = base
			}
			if t.Else == l.Header {
				t.Else = base
			}
		}
	}
}

// bodyChain returns the loop body blocks in control order starting at the
// header (the body is a straight-line chain per simpleBody).
func bodyChain(k *kir.Kernel, l Loop) []int {
	order := []int{l.Header}
	cur := l.Header
	for cur != l.Latch {
		cur = k.Blocks[cur].Term.Then
		order = append(order, cur)
	}
	return order
}
