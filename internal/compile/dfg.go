package compile

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// NodeKind discriminates dataflow-graph nodes. Besides the kernel's own
// instructions, the compiler inserts the structural nodes of §3.5: a thread
// initiator and terminator (CVUs), live-value load/store nodes (LVUs), join
// nodes that preserve per-thread memory ordering, and split nodes that extend
// fanout beyond the interconnect limit (both SJUs).
type NodeKind uint8

const (
	NodeInit    NodeKind = iota // thread initiator CVU
	NodeTerm                    // thread terminator CVU (executes the branch)
	NodeOp                      // a kernel instruction
	NodeLVLoad                  // LVU: load a live value from the LVC
	NodeLVStore                 // LVU: store a live value to the LVC
	NodeJoin                    // SJU: collect control tokens (memory ordering)
	NodeSplit                   // SJU: replicate a token to extend fanout
)

func (k NodeKind) String() string {
	switch k {
	case NodeInit:
		return "init"
	case NodeTerm:
		return "term"
	case NodeOp:
		return "op"
	case NodeLVLoad:
		return "lvload"
	case NodeLVStore:
		return "lvstore"
	case NodeJoin:
		return "join"
	case NodeSplit:
		return "split"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// MaxFanout is the number of direct consumers a node can feed before the
// compiler inserts split nodes (the switch fabric connects each unit to a
// limited neighborhood, §3.5).
const MaxFanout = 4

// Node is one vertex of a basic block's dataflow graph.
type Node struct {
	ID    int
	Kind  NodeKind
	Instr kir.Instr // valid for NodeOp
	Reg   kir.Reg   // the register carried by LV nodes / split of a value
	LV    int       // live-value ID for LV nodes

	// In lists data-edge producers. For NodeOp, In[i] produces operand i
	// (memory nodes: In[0] = address, In[1] = store value). Nodes without
	// register operands (const, param, geometry, lvload) take a single
	// trigger edge from the initiator, following the dataflow firing rule.
	In []int
	// CtlIn lists control-token producers that must fire before this node
	// (per-thread memory ordering, §3.5's join discussion).
	CtlIn []int
	// Out is the computed consumer list (data and control edges).
	Out []int

	// HasPred marks predicated execution (SGMF if-conversion only): when
	// the predicate operand — In[Pred], always the last input — yields 0
	// for a thread, a memory node skips its access (and a load yields 0).
	// The predicate rides a normal data edge so firing still follows the
	// dataflow rule.
	HasPred bool
	Pred    int
}

// Class reports the functional-unit class the node occupies on the fabric.
func (n *Node) Class() kir.UnitClass {
	switch n.Kind {
	case NodeInit, NodeTerm:
		return kir.ClassCVU
	case NodeLVLoad, NodeLVStore:
		return kir.ClassLVU
	case NodeJoin, NodeSplit:
		return kir.ClassSJU
	default:
		return n.Instr.Op.Class()
	}
}

// BlockDFG is the dataflow graph ("graph instruction word") of one basic
// block, ready for placement on the MT-CGRF.
type BlockDFG struct {
	BlockID int
	Nodes   []*Node
	Init    int // initiator node ID
	Term    int // terminator node ID
}

// ClassCounts tallies how many units of each class the graph needs.
func (g *BlockDFG) ClassCounts() map[kir.UnitClass]int {
	m := make(map[kir.UnitClass]int)
	for _, n := range g.Nodes {
		m[n.Class()]++
	}
	return m
}

// CriticalPathLen returns the longest path length (in nodes) through the
// graph, a lower bound on per-thread latency.
func (g *BlockDFG) CriticalPathLen() int {
	depth := make([]int, len(g.Nodes))
	longest := 0
	// Nodes are created in topological order (producers precede
	// consumers), so a single forward sweep suffices.
	for _, n := range g.Nodes {
		d := 1
		for _, p := range append(append([]int(nil), n.In...), n.CtlIn...) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[n.ID] = d
		if d > longest {
			longest = d
		}
	}
	return longest
}

// BuildBlockDFG converts basic block bi of the kernel into its dataflow
// graph, using the kernel-wide live-value allocation.
func BuildBlockDFG(k *kir.Kernel, lv *LiveValues, bi int) (*BlockDFG, error) {
	b := k.Blocks[bi]
	g := &BlockDFG{BlockID: bi}
	newNode := func(n *Node) int {
		n.ID = len(g.Nodes)
		g.Nodes = append(g.Nodes, n)
		return n.ID
	}

	g.Init = newNode(&Node{Kind: NodeInit})

	// Live-value loads come first; they fire off the initiator's trigger.
	defOf := make(map[kir.Reg]int) // register -> producing node
	for _, r := range lv.Loads[bi] {
		id := newNode(&Node{Kind: NodeLVLoad, Reg: r, LV: lv.IDOf[r], In: []int{g.Init}})
		defOf[r] = id
	}

	// Memory-ordering state, tracked separately per address space.
	type memState struct {
		lastStore       int   // node ID of the last store, -1 if none
		loadsSinceStore []int // loads issued after lastStore
	}
	global := memState{lastStore: -1}
	shared := memState{lastStore: -1}

	for _, in := range b.Instrs {
		n := &Node{Kind: NodeOp, Instr: in}
		nsrc := in.Op.NumSrc()
		if nsrc == 0 {
			// const/param/geometry: triggered by the initiator.
			n.In = []int{g.Init}
		} else {
			for i := 0; i < nsrc; i++ {
				r := in.Src[i]
				p, ok := defOf[r]
				if !ok {
					return nil, fmt.Errorf("compile: kernel %s block %d (%s): r%d used before definition and not live-in",
						k.Name, bi, b.Label, r)
				}
				n.In = append(n.In, p)
			}
		}
		if in.Op.IsMemory() {
			ms := &global
			if in.Op.IsShared() {
				ms = &shared
			}
			if in.Op.IsStore() {
				// WAW + WAR: wait for the previous store and every load
				// issued since it.
				if ms.lastStore >= 0 {
					n.CtlIn = append(n.CtlIn, ms.lastStore)
				}
				n.CtlIn = append(n.CtlIn, ms.loadsSinceStore...)
			} else if ms.lastStore >= 0 {
				// RAW: wait for the previous store.
				n.CtlIn = append(n.CtlIn, ms.lastStore)
			}
			id := newNode(n)
			if in.Op.IsStore() {
				ms.lastStore = id
				ms.loadsSinceStore = nil
			} else {
				ms.loadsSinceStore = append(ms.loadsSinceStore, id)
			}
			if in.Op.HasDst() {
				defOf[in.Dst] = id
			}
			continue
		}
		id := newNode(n)
		if in.Op.HasDst() {
			defOf[in.Dst] = id
		}
	}

	// Live-value stores for definitions that are live-out.
	for _, r := range lv.Stores[bi] {
		p, ok := defOf[r]
		if !ok {
			// The register is live-out but this block only passes it
			// through (it was loaded, not redefined). No store needed:
			// the LVC still holds it.
			continue
		}
		if g.Nodes[p].Kind == NodeLVLoad {
			continue // unchanged pass-through
		}
		newNode(&Node{Kind: NodeLVStore, Reg: r, LV: lv.IDOf[r], In: []int{p}})
	}

	// Terminator.
	term := &Node{Kind: NodeTerm}
	if b.Term.Kind == kir.TermBranch {
		p, ok := defOf[b.Term.Cond]
		if !ok {
			return nil, fmt.Errorf("compile: kernel %s block %d (%s): branch condition r%d undefined",
				k.Name, bi, b.Label, b.Term.Cond)
		}
		term.In = []int{p}
	} else {
		term.In = []int{g.Init}
	}
	g.Term = newNode(term)

	g.computeOut()
	g.insertSplits()
	g.normalize()
	return g, nil
}

// normalize renumbers nodes in topological order (producers before
// consumers). Split insertion appends nodes at the end even though they feed
// earlier consumers; the rest of the pipeline (critical-path computation,
// the execution engines) relies on forward-only edges.
func (g *BlockDFG) normalize() {
	n := len(g.Nodes)
	indeg := make([]int, n)
	for _, nd := range g.Nodes {
		indeg[nd.ID] = len(nd.In) + len(nd.CtlIn)
	}
	g.computeOut()
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for _, nd := range g.Nodes {
		if indeg[nd.ID] == 0 {
			queue = append(queue, nd.ID)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, c := range g.Nodes[id].Out {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("compile: DFG for block %d has a cycle", g.BlockID))
	}
	remap := make([]int, n)
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	nodes := make([]*Node, n)
	for _, nd := range g.Nodes {
		id := remap[nd.ID]
		nd.ID = id
		for i := range nd.In {
			nd.In[i] = remap[nd.In[i]]
		}
		for i := range nd.CtlIn {
			nd.CtlIn[i] = remap[nd.CtlIn[i]]
		}
		nodes[id] = nd
	}
	g.Nodes = nodes
	g.Init = remap[g.Init]
	g.Term = remap[g.Term]
	g.computeOut()
}

// computeOut rebuilds the consumer lists from In/CtlIn.
func (g *BlockDFG) computeOut() {
	for _, n := range g.Nodes {
		n.Out = nil
	}
	for _, n := range g.Nodes {
		for _, p := range n.In {
			g.Nodes[p].Out = append(g.Nodes[p].Out, n.ID)
		}
		for _, p := range n.CtlIn {
			g.Nodes[p].Out = append(g.Nodes[p].Out, n.ID)
		}
	}
}

// insertSplits rewrites high-fanout producers through trees of split nodes so
// no node feeds more than MaxFanout consumers. The initiator is exempt: its
// trigger distribution is part of the batch broadcast (§3.5 describes
// splits for data fanout).
func (g *BlockDFG) insertSplits() {
	for idx := 0; idx < len(g.Nodes); idx++ {
		n := g.Nodes[idx]
		if n.Kind == NodeInit || len(n.Out) <= MaxFanout {
			continue
		}
		consumers := append([]int(nil), n.Out...)
		// Build split nodes, each serving up to MaxFanout consumers.
		var splits []int
		for i := 0; i < len(consumers); i += MaxFanout {
			end := i + MaxFanout
			if end > len(consumers) {
				end = len(consumers)
			}
			s := &Node{ID: len(g.Nodes), Kind: NodeSplit, Reg: n.Reg, In: []int{n.ID}}
			g.Nodes = append(g.Nodes, s)
			splits = append(splits, s.ID)
			for _, c := range consumers[i:end] {
				replaceInput(g.Nodes[c], n.ID, s.ID)
			}
		}
		// If the split layer itself exceeds the fanout limit, the loop
		// will process the producer again on a later pass; with MaxFanout
		// consumers per split, the producer now feeds len(splits) nodes.
		n.Out = splits
		if len(splits) > MaxFanout {
			idx-- // reprocess n to add another split layer
		}
	}
}

func replaceInput(n *Node, old, new int) {
	for i, p := range n.In {
		if p == old {
			n.In[i] = new
			return
		}
	}
	for i, p := range n.CtlIn {
		if p == old {
			n.CtlIn[i] = new
			return
		}
	}
}

// CompiledKernel bundles a scheduled kernel with its analysis results and
// per-block dataflow graphs — everything the VGIW machine needs to run.
type CompiledKernel struct {
	Kernel *kir.Kernel
	LV     *LiveValues
	DFGs   []*BlockDFG
	// IPDom holds immediate post-dominators for the SIMT baseline.
	IPDom []int
}

// Compile schedules the kernel's blocks, allocates live values, and builds
// every block's dataflow graph. Under Checked, the verifier runs after each
// pass — rematerialization, scheduling, live-value allocation, graph
// construction — and the returned error names the pass that broke the kernel.
func Compile(k *kir.Kernel, opts ...Option) (*CompiledKernel, error) {
	o := buildOptions(opts)
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := o.checkKernel("input", k, verify.Source); err != nil {
		return nil, err
	}
	Rematerialize(k)
	if err := o.checkKernel("remat", k, verify.Source); err != nil {
		return nil, err
	}
	if _, err := ScheduleBlocks(k); err != nil {
		return nil, err
	}
	if err := o.checkKernel("schedule", k, verify.Compiled); err != nil {
		return nil, err
	}
	lv := AllocateLiveValues(k)
	if o.checked {
		if err := verify.Join(VerifyLiveValues("liveness", k, lv)); err != nil {
			return nil, fmt.Errorf("compile: liveness: %w", err)
		}
	}
	ck := &CompiledKernel{Kernel: k, LV: lv, IPDom: ImmPostDoms(k)}
	for bi := range k.Blocks {
		g, err := BuildBlockDFG(k, lv, bi)
		if err != nil {
			return nil, err
		}
		if o.checked {
			if err := verify.Join(VerifyGraph("dfg", g, lv.NumIDs)); err != nil {
				return nil, fmt.Errorf("compile: dfg: %w", err)
			}
		}
		ck.DFGs = append(ck.DFGs, g)
	}
	return ck, nil
}
