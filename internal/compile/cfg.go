// Package compile implements the VGIW compiler passes of §3.1: control-flow
// analysis, block scheduling (block-ID assignment), liveness and live-value
// allocation, per-block dataflow-graph construction (including split/join
// insertion, §3.5), and if-conversion for the SGMF baseline.
package compile

import (
	"fmt"

	"vgiw/internal/kir"
)

// Preds computes the predecessor lists of every block.
func Preds(k *kir.Kernel) [][]int {
	preds := make([][]int, len(k.Blocks))
	for bi, b := range k.Blocks {
		for _, s := range b.Term.Succs() {
			preds[s] = append(preds[s], bi)
		}
	}
	return preds
}

// ReversePostorder returns the blocks reachable from the entry in reverse
// postorder of a depth-first walk. The entry block is always first.
func ReversePostorder(k *kir.Kernel) []int {
	seen := make([]bool, len(k.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		// Visit successors in reverse so the reverse postorder lists the
		// then-branch before the else-branch (the paper's Figure 2 block
		// numbering: BB2 is scheduled before BB3).
		succs := k.Blocks[b].Term.Succs()
		for i := len(succs) - 1; i >= 0; i-- {
			if s := succs[i]; !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable reports which blocks are reachable from the entry.
func Reachable(k *kir.Kernel) []bool {
	seen := make([]bool, len(k.Blocks))
	for _, b := range ReversePostorder(k) {
		seen[b] = true
	}
	return seen
}

// ImmPostDoms computes the immediate post-dominator of every block over a CFG
// augmented with a single virtual exit that every returning block flows to.
// A block whose immediate post-dominator is the virtual exit gets -1, as do
// unreachable blocks. The SIMT baseline uses this to find warp reconvergence
// points after a divergent branch.
//
// The implementation computes full post-dominator sets by iterative dataflow
// (kernels here have at most a few dozen blocks) and then extracts the
// immediate post-dominator as the smallest strict post-dominator.
func ImmPostDoms(k *kir.Kernel) []int {
	n := len(k.Blocks)
	reach := Reachable(k)

	// pdom[b] = set of blocks that post-dominate b (excluding the virtual
	// exit, which post-dominates everything). Initialize reachable blocks
	// to the full set, ret blocks to {b}.
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	pdom := make([][]bool, n)
	for b := 0; b < n; b++ {
		if !reach[b] {
			continue
		}
		if k.Blocks[b].Term.Kind == kir.TermRet {
			pdom[b] = make([]bool, n)
			pdom[b][b] = true
		} else {
			pdom[b] = append([]bool(nil), full...)
		}
	}

	changed := true
	for changed {
		changed = false
		for b := 0; b < n; b++ {
			if !reach[b] || k.Blocks[b].Term.Kind == kir.TermRet {
				continue
			}
			next := append([]bool(nil), full...)
			for _, s := range k.Blocks[b].Term.Succs() {
				for i := 0; i < n; i++ {
					next[i] = next[i] && pdom[s][i]
				}
			}
			next[b] = true
			for i := 0; i < n; i++ {
				if next[i] != pdom[b][i] {
					pdom[b] = next
					changed = true
					break
				}
			}
		}
	}

	// The strict post-dominators of b form a chain ordered by their own
	// post-dominator sets; the immediate post-dominator is the nearest one,
	// i.e. the strict post-dominator with the *largest* set.
	out := make([]int, n)
	for b := 0; b < n; b++ {
		out[b] = -1
		if !reach[b] {
			continue
		}
		best, bestSize := -1, -1
		for c := 0; c < n; c++ {
			if c == b || !pdom[b][c] {
				continue
			}
			size := 0
			for i := 0; i < n; i++ {
				if pdom[c][i] {
					size++
				}
			}
			if size > bestSize {
				best, bestSize = c, size
			}
		}
		out[b] = best
	}
	return out
}

// ScheduleBlocks renumbers the kernel's blocks in reverse postorder so that
// block IDs follow the paper's scheduling rule (§3.1): the entry block is ID
// 0, forward control flow goes to larger IDs, and loop back edges go to
// smaller-or-equal IDs. The runtime scheduler (BBS) then simply picks the
// smallest block ID with a non-empty thread vector.
//
// Unreachable blocks are dropped. The kernel is modified in place and also
// returned for convenience.
func ScheduleBlocks(k *kir.Kernel) (*kir.Kernel, error) {
	order := ReversePostorder(k)
	remap := make([]int, len(k.Blocks))
	for i := range remap {
		remap[i] = -1
	}
	for newID, oldID := range order {
		remap[oldID] = newID
	}
	blocks := make([]*kir.Block, len(order))
	for newID, oldID := range order {
		b := k.Blocks[oldID]
		t := &b.Term
		switch t.Kind {
		case kir.TermJump:
			t.Then = remap[t.Then]
		case kir.TermBranch:
			t.Then = remap[t.Then]
			t.Else = remap[t.Else]
		}
		blocks[newID] = b
	}
	k.Blocks = blocks
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("compile: scheduling broke kernel %s: %w", k.Name, err)
	}
	return k, nil
}
