package compile

import (
	"testing"

	"vgiw/internal/kir"
)

func TestIfConvertDiamond(t *testing.T) {
	k := diamond(t)
	g, err := IfConvert(k)
	if err != nil {
		t.Fatal(err)
	}
	checkDFGWellFormed(t, g)

	var selects, predMem, stores int
	for _, n := range g.Nodes {
		if n.Kind != NodeOp {
			continue
		}
		switch {
		case n.Instr.Op == kir.OpSelect && n.Instr.Dst == kir.NoReg:
			selects++
		case n.Instr.Op.IsMemory():
			if n.HasPred {
				predMem++
				if n.In[n.Pred] >= n.ID {
					t.Errorf("node %d predicate edge not topological", n.ID)
				}
			}
			if n.Instr.Op.IsStore() {
				stores++
			}
		}
	}
	// The merged result needs at least one select (bb2/bb4/bb5 values of
	// r2 converge at bb6).
	if selects == 0 {
		t.Error("no select nodes at merge points")
	}
	// The final store in bb6 executes for every thread (all paths reach
	// bb6), so its block predicate should be an OR chain — still predicated
	// is fine; but there must be exactly 1 store node.
	if stores != 1 {
		t.Errorf("store count = %d, want 1", stores)
	}
	// No live-value traffic in SGMF graphs.
	for _, n := range g.Nodes {
		if n.Kind == NodeLVLoad || n.Kind == NodeLVStore {
			t.Fatalf("SGMF graph contains LV node %d", n.ID)
		}
	}
}

func TestIfConvertRejectsLoops(t *testing.T) {
	b := kir.NewBuilder("loopy")
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	i := b.Const(0)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	c := b.SetLT(i1, b.Const(4))
	b.Branch(c, entry, entry)
	k := b.MustBuild()
	if _, err := IfConvert(k); err == nil {
		t.Error("want error for loopy kernel")
	}
}

func TestIfConvertRejectsBarriers(t *testing.T) {
	b := kir.NewBuilder("barrier")
	b.SetShared(4)
	entry := b.NewBlock("entry")
	after := b.NewBlock("after")
	b.SetBlock(entry)
	tidx := b.TidX()
	b.StoreSh(tidx, 0, tidx)
	b.Jump(after)
	b.MarkBarrier(after)
	b.SetBlock(after)
	b.Ret()
	k := b.MustBuild()
	if _, err := IfConvert(k); err == nil {
		t.Error("want error for barrier kernel")
	}
}

func TestIfConvertStraightLine(t *testing.T) {
	// A single-block kernel needs no predicates or selects at all.
	b := kir.NewBuilder("straight")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	base := b.Param(0)
	tid := b.Tid()
	addr := b.Add(base, tid)
	v := b.Load(addr, 0)
	b.Store(addr, 0, b.Add(v, v))
	b.Ret()
	k := b.MustBuild()
	g, err := IfConvert(k)
	if err != nil {
		t.Fatal(err)
	}
	checkDFGWellFormed(t, g)
	for _, n := range g.Nodes {
		if n.HasPred {
			t.Errorf("node %d predicated in straight-line kernel", n.ID)
		}
		if n.Kind == NodeOp && n.Instr.Op == kir.OpSelect && n.Instr.Dst == kir.NoReg {
			t.Errorf("synthetic select in straight-line kernel")
		}
	}
}
