package compile

import (
	"fmt"

	"vgiw/internal/kir"
	"vgiw/internal/verify"
)

// CompileFitted compiles the kernel, splitting any basic block whose
// dataflow graph does not satisfy the fits predicate (e.g., it needs more
// units of some class than the fabric provides). Splitting a block turns
// values that cross the new boundary into live-value traffic — the honest
// cost of running big blocks on a finite fabric, which the paper's compiler
// pays the same way when partitioning large kernels.
//
// The split point starts at the instruction midpoint and the pass iterates
// until every block fits or no further split is possible.
func CompileFitted(k *kir.Kernel, fits func(*BlockDFG) bool, opts ...Option) (*CompiledKernel, error) {
	o := buildOptions(opts)
	const maxRounds = 256
	for round := 0; ; round++ {
		ck, err := Compile(k, opts...)
		if err != nil {
			return nil, err
		}
		oversized := -1
		for bi, g := range ck.DFGs {
			if !fits(g) {
				oversized = bi
				break
			}
		}
		if oversized < 0 {
			return ck, nil
		}
		if round >= maxRounds {
			return nil, fmt.Errorf("compile: kernel %s still has oversized blocks after %d splits", k.Name, maxRounds)
		}
		if err := splitBlock(k, oversized); err != nil {
			return nil, err
		}
		if err := o.checkKernel("split", k, verify.Source); err != nil {
			return nil, err
		}
	}
}

// splitBlock divides block bi at its instruction midpoint: the first half
// keeps the original label and jumps into a new continuation block holding
// the second half and the original terminator.
func splitBlock(k *kir.Kernel, bi int) error {
	b := k.Blocks[bi]
	n := len(b.Instrs)
	if n < 2 {
		return fmt.Errorf("compile: kernel %s block %d (%s) cannot be split further", k.Name, bi, b.Label)
	}
	m := n / 2
	cont := &kir.Block{
		Label:  b.Label + ".cont",
		Instrs: b.Instrs[m:],
		Term:   b.Term,
	}
	b.Instrs = b.Instrs[:m]

	// Insert cont right after b and shift all terminator targets.
	at := bi + 1
	k.Blocks = append(k.Blocks, nil)
	copy(k.Blocks[at+1:], k.Blocks[at:])
	k.Blocks[at] = cont
	for _, blk := range k.Blocks {
		if blk == b {
			continue // b's terminator is replaced below
		}
		t := &blk.Term
		switch t.Kind {
		case kir.TermJump:
			if t.Then >= at {
				t.Then++
			}
		case kir.TermBranch:
			if t.Then >= at {
				t.Then++
			}
			if t.Else >= at {
				t.Else++
			}
		}
	}
	b.Term = kir.Terminator{Kind: kir.TermJump, Then: at}
	return k.Validate()
}

// OptimizeSplits performs throughput-driven block splitting on top of
// fabric fitting. A basic block streams one thread per cycle per replica, so
// its per-thread cost is 1/R where R = replicasFor(graph); a block whose
// bottleneck unit class leaves most of the fabric idle (e.g. 20 of 32 ALUs,
// so R=1) can be cheaper as two half-blocks that each replicate more. The
// pass greedily accepts any split that lowers the summed per-thread cost,
// which automatically accounts for the live-value traffic a split adds (the
// new LVU nodes lower the halves' replication).
func OptimizeSplits(k *kir.Kernel, replicasFor func(*BlockDFG) int, maxReplicas int, opts ...Option) (*CompiledKernel, error) {
	fits := func(g *BlockDFG) bool { return replicasFor(g) > 0 }
	ck, err := CompileFitted(k, fits, opts...)
	if err != nil {
		return nil, err
	}
	// Per-thread streaming cost 1/R plus the per-scheduling fixed cost a
	// block pays regardless of vector size: reconfiguration plus pipeline
	// drain (roughly proportional to the critical path), amortized over a
	// nominal thread vector. Without the fixed term the pass would shred
	// loop bodies into confetti and drown in reconfigurations.
	const nominalVector = 1024.0
	const configCost = 34.0
	cost := func(c *CompiledKernel) float64 {
		total := 0.0
		for _, g := range c.DFGs {
			r := replicasFor(g)
			if r < 1 {
				r = 1
			}
			drain := 3.0 * float64(g.CriticalPathLen())
			total += 1/float64(r) + (configCost+drain)/nominalVector
		}
		return total
	}
	cur := cost(ck)
	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		improved := false
		for bi := 0; bi < len(ck.Kernel.Blocks); bi++ {
			if len(ck.Kernel.Blocks[bi].Instrs) < 2 {
				continue
			}
			if g := ck.DFGs[bi]; replicasFor(g) >= maxReplicas {
				continue // already at the replication cap
			}
			trial := ck.Kernel.Clone()
			if err := splitBlock(trial, bi); err != nil {
				continue
			}
			ckTrial, err := CompileFitted(trial, fits, opts...)
			if err != nil {
				continue
			}
			if c := cost(ckTrial); c < cur-1e-9 {
				ck, cur = ckTrial, c
				improved = true
				break
			}
		}
		if !improved {
			return ck, nil
		}
	}
	return ck, nil
}
