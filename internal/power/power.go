// Package power is the event-based energy model (the GPUWattch analogue of
// §4). Each architectural event carries a per-event energy drawn from a
// table of 40nm-class constants; total kernel energy is the event-weighted
// sum plus static leakage integrated over the runtime.
//
// Following the paper's methodology, energy efficiency is defined as
// work/energy; since the compared architectures execute the same kernel, the
// efficiency ratio of A over B is E_B / E_A (§5).
//
// The component buckets reproduce Figure 10's three levels:
//
//	core   = compute engine (+ RF / LVC / CVT / token traffic / pipeline)
//	die    = core + L1 + L2 + memory controller
//	system = die + DRAM
package power

import (
	"vgiw/internal/core"
	"vgiw/internal/kir"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
)

// Table holds per-event energies in picojoules and per-cycle static power in
// picojoules per cycle. The defaults are calibrated so that (a) the Fermi
// baseline's pipeline + register file overhead lands near the ~30% of power
// that the paper (citing [3,4]) attributes to them, and (b) the VGIW core's
// advantage comes from eliminating exactly those structures.
type Table struct {
	// Compute (per active lane / per node execution).
	IntOp float64
	FPOp  float64
	SFUOp float64

	// Von Neumann overheads (per warp instruction / per lane word).
	PipelineWarp float64 // fetch+decode+schedule per warp instruction
	RFWord       float64 // register file access per lane word

	// Dataflow overheads.
	TokenHop    float64 // interconnect energy per hop
	TokenBuffer float64 // token buffer write+read per transfer
	SJUOp       float64 // split/join execution
	CVUOp       float64 // control vector unit execution
	LVCAccess   float64 // live value cache access (word)
	CVTAccess   float64 // control vector table access (64-bit word)
	ConfigUnit  float64 // per functional unit per reconfiguration

	// Memory hierarchy (per access).
	L1Access     float64
	L2Access     float64
	MCAccess     float64 // memory controller, per DRAM transaction
	DRAMAccess   float64
	SharedAccess float64

	// Static power, pJ per core cycle, by bucket.
	StaticCore float64
	StaticL1   float64
	StaticL2   float64
	StaticMC   float64
	StaticDRAM float64
}

// DefaultTable returns the calibrated constants.
func DefaultTable() Table {
	return Table{
		IntOp: 0.8,
		FPOp:  2.2,
		SFUOp: 12,

		PipelineWarp: 32,
		RFWord:       0.9,

		TokenHop:    0.35,
		TokenBuffer: 0.30,
		SJUOp:       0.3,
		CVUOp:       0.5,
		LVCAccess:   1.6,
		CVTAccess:   1.0,
		ConfigUnit:  8,

		L1Access:     20,
		L2Access:     45,
		MCAccess:     25,
		DRAMAccess:   320,
		SharedAccess: 2.5,

		StaticCore: 14,
		StaticL1:   2,
		StaticL2:   4,
		StaticMC:   1.5,
		StaticDRAM: 8,
	}
}

// Breakdown is kernel energy by component, in picojoules.
type Breakdown struct {
	Core float64
	L1   float64
	L2   float64
	MC   float64
	DRAM float64
}

// CoreLevel is the compute-engine energy (Figure 10 "core").
func (b Breakdown) CoreLevel() float64 { return b.Core }

// DieLevel adds the on-die memory system (Figure 10 "die").
func (b Breakdown) DieLevel() float64 { return b.Core + b.L1 + b.L2 + b.MC }

// SystemLevel adds DRAM (Figure 10 "system").
func (b Breakdown) SystemLevel() float64 { return b.DieLevel() + b.DRAM }

// memEnergy prices the shared memory-hierarchy events.
func memEnergy(t Table, l1, l2, dram uint64, cycles int64) Breakdown {
	c := float64(cycles)
	return Breakdown{
		L1:   float64(l1)*t.L1Access + c*t.StaticL1,
		L2:   float64(l2)*t.L2Access + c*t.StaticL2,
		MC:   float64(dram)*t.MCAccess + c*t.StaticMC,
		DRAM: float64(dram)*t.DRAMAccess + c*t.StaticDRAM,
	}
}

// VGIW prices a VGIW kernel execution.
func VGIW(r *core.Result, t Table) Breakdown {
	b := memEnergy(t, r.MemStats.L1.Accesses(), r.MemStats.L2.Accesses(),
		r.MemStats.DRAM.Accesses(), r.Cycles)

	intOps := float64(r.Ops[kir.ClassALU] - r.FPOps)
	b.Core = intOps*t.IntOp +
		float64(r.FPOps)*t.FPOp +
		float64(r.Ops[kir.ClassSCU])*t.SFUOp +
		float64(r.Ops[kir.ClassSJU])*t.SJUOp +
		float64(r.Ops[kir.ClassCVU]+r.Ops[kir.ClassLVU]+r.Ops[kir.ClassLDST])*t.CVUOp +
		float64(r.TokenHops)*t.TokenHop +
		float64(r.TokenTransfers)*t.TokenBuffer +
		float64(r.LVCLoads+r.LVCStores)*t.LVCAccess +
		float64(r.CVTReads+r.CVTWrites)*t.CVTAccess +
		float64(r.Reconfigs)*108*t.ConfigUnit +
		float64(r.SharedAccesses)*t.SharedAccess +
		float64(r.Cycles)*t.StaticCore
	return b
}

// SIMT prices a Fermi-SM kernel execution.
func SIMT(r *simt.Result, t Table) Breakdown {
	b := memEnergy(t, r.MemStats.L1.Accesses(), r.MemStats.L2.Accesses(),
		r.MemStats.DRAM.Accesses(), r.Cycles)

	intOps := float64(r.ALUOps - r.FPOps)
	b.Core = intOps*t.IntOp +
		float64(r.FPOps)*t.FPOp +
		float64(r.SFUOps)*t.SFUOp +
		float64(r.MemOps)*t.CVUOp + // LD/ST unit issue energy, same rate as VGIW's
		float64(r.WarpInstrs)*t.PipelineWarp +
		float64(r.RFReads+r.RFWrites)*t.RFWord +
		float64(r.ShTrans)*t.SharedAccess +
		float64(r.Cycles)*t.StaticCore
	return b
}

// SGMF prices an SGMF kernel execution.
func SGMF(r *sgmf.Result, t Table) Breakdown {
	b := memEnergy(t, r.MemStats.L1.Accesses(), r.MemStats.L2.Accesses(),
		r.MemStats.DRAM.Accesses(), r.Cycles)

	intOps := float64(r.Ops[kir.ClassALU] - r.FPOps)
	b.Core = intOps*t.IntOp +
		float64(r.FPOps)*t.FPOp +
		float64(r.Ops[kir.ClassSCU])*t.SFUOp +
		float64(r.Ops[kir.ClassSJU])*t.SJUOp +
		float64(r.Ops[kir.ClassCVU]+r.Ops[kir.ClassLVU]+r.Ops[kir.ClassLDST])*t.CVUOp +
		float64(r.TokenHops)*t.TokenHop +
		float64(r.TokenTransfers)*t.TokenBuffer +
		108*t.ConfigUnit + // configured exactly once
		float64(r.SharedAccesses)*t.SharedAccess +
		float64(r.Cycles)*t.StaticCore
	return b
}

// Efficiency returns the energy-efficiency ratio of the architecture whose
// energy is `over` relative to the one whose energy is `base`, following the
// paper's work/energy definition: ratio = E_base / E_over.
func Efficiency(base, over float64) float64 {
	if over == 0 {
		return 0
	}
	return base / over
}
