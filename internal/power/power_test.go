package power

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/core"
	"vgiw/internal/kernels"
	"vgiw/internal/kir"
	"vgiw/internal/sgmf"
	"vgiw/internal/simt"
)

// buildCompute is a compute-dense kernel (chain of FP ops per element).
func buildCompute() *kir.Kernel {
	b := kir.NewBuilder("compute")
	b.SetParams(1)
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	tid := b.Tid()
	addr := b.Add(b.Param(0), tid)
	v := b.Load(addr, 0)
	for i := 0; i < 12; i++ {
		v = b.FAdd(b.FMul(v, v), v)
	}
	b.Store(addr, 0, v)
	b.Ret()
	return b.MustBuild()
}

func runBoth(t *testing.T, build func() *kir.Kernel, n int) (*core.Result, *simt.Result) {
	t.Helper()
	launch := kir.Launch1D(n/32, 32, 0)
	mk := func() []uint32 {
		m := make([]uint32, n)
		for i := range m {
			m[i] = kir.F32(1.0 + float32(i%7)*0.125)
		}
		return m
	}

	ckV, err := compile.Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	mv, err := core.NewMachine(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rv, err := mv.Run(ckV, launch, mk())
	if err != nil {
		t.Fatal(err)
	}

	ckS, err := compile.Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := simt.NewMachine(simt.DefaultConfig()).Run(ckS, launch, mk())
	if err != nil {
		t.Fatal(err)
	}
	return rv, rs
}

func TestBreakdownLevelsNest(t *testing.T) {
	rv, rs := runBoth(t, buildCompute, 1024)
	tab := DefaultTable()
	for _, b := range []Breakdown{VGIW(rv, tab), SIMT(rs, tab)} {
		if b.CoreLevel() <= 0 {
			t.Fatal("core energy must be positive")
		}
		if b.DieLevel() <= b.CoreLevel() {
			t.Error("die level must exceed core level")
		}
		if b.SystemLevel() <= b.DieLevel() {
			t.Error("system level must exceed die level")
		}
	}
}

// The headline claim: on a compute-dense kernel the VGIW core is more
// energy-efficient than the Fermi SM, and the advantage is largest at the
// core level (Figure 10).
func TestVGIWMoreEfficientOnComputeKernel(t *testing.T) {
	rv, rs := runBoth(t, buildCompute, 2048)
	tab := DefaultTable()
	ev, es := VGIW(rv, tab), SIMT(rs, tab)

	coreEff := Efficiency(es.CoreLevel(), ev.CoreLevel())
	sysEff := Efficiency(es.SystemLevel(), ev.SystemLevel())
	if coreEff <= 1 {
		t.Errorf("core-level efficiency %.2f, want > 1", coreEff)
	}
	if sysEff <= 0.7 {
		t.Errorf("system-level efficiency %.2f unreasonably low", sysEff)
	}
	if coreEff < sysEff {
		t.Errorf("core-level efficiency (%.2f) should exceed system-level (%.2f): the win is in the compute engine",
			coreEff, sysEff)
	}
}

// Fermi's pipeline + RF overhead should be a large minority of core energy
// (the ~30% the paper cites for the whole GPU maps to a bigger share of the
// core alone).
func TestFermiPipelineRFShare(t *testing.T) {
	_, rs := runBoth(t, buildCompute, 2048)
	tab := DefaultTable()
	b := SIMT(rs, tab)
	overhead := float64(rs.WarpInstrs)*tab.PipelineWarp + float64(rs.RFReads+rs.RFWrites)*tab.RFWord
	share := overhead / b.CoreLevel()
	if share < 0.2 || share > 0.75 {
		t.Errorf("pipeline+RF share of core = %.2f, want 0.2..0.75", share)
	}
	sysShare := overhead / b.SystemLevel()
	if sysShare < 0.1 || sysShare > 0.6 {
		t.Errorf("pipeline+RF share of system = %.2f, want 0.1..0.6", sysShare)
	}
}

func TestEfficiencyRatio(t *testing.T) {
	if Efficiency(200, 100) != 2 {
		t.Error("Efficiency(200,100) != 2")
	}
	if Efficiency(100, 0) != 0 {
		t.Error("division by zero not guarded")
	}
}

func TestStaticEnergyScalesWithCycles(t *testing.T) {
	rv, _ := runBoth(t, buildCompute, 1024)
	tab := DefaultTable()
	e1 := VGIW(rv, tab)
	slower := *rv
	slower.Cycles *= 2
	e2 := VGIW(&slower, tab)
	if e2.SystemLevel() <= e1.SystemLevel() {
		t.Error("doubling cycles must increase energy (static power)")
	}
}

func TestSGMFEnergyComputes(t *testing.T) {
	spec, ok := kernels.ByName("nn.euclid")
	if !ok {
		t.Fatal("nn.euclid missing")
	}
	inst, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sgmf.NewMachine(sgmf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(inst.Kernel, inst.Launch, inst.Global)
	if err != nil {
		t.Fatal(err)
	}
	b := SGMF(res, DefaultTable())
	if b.CoreLevel() <= 0 || b.SystemLevel() <= b.DieLevel() {
		t.Errorf("SGMF breakdown malformed: %+v", b)
	}
	// SGMF pays configuration exactly once and has no LVC/CVT energy; its
	// core energy must be below a VGIW run of the same kernel plus those
	// structures... at minimum it must be in the same order of magnitude.
	if b.CoreLevel() > 100*b.DRAM && b.DRAM > 0 {
		t.Errorf("core/DRAM balance implausible: %+v", b)
	}
}

func TestBreakdownComponentsNonNegative(t *testing.T) {
	rv, rs := runBoth(t, buildCompute, 512)
	tab := DefaultTable()
	for _, b := range []Breakdown{VGIW(rv, tab), SIMT(rs, tab)} {
		for name, v := range map[string]float64{
			"core": b.Core, "l1": b.L1, "l2": b.L2, "mc": b.MC, "dram": b.DRAM,
		} {
			if v < 0 {
				t.Errorf("%s energy negative: %f", name, v)
			}
		}
		if got := b.SystemLevel(); got != b.Core+b.L1+b.L2+b.MC+b.DRAM {
			t.Errorf("system level %f != component sum", got)
		}
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	small, _ := runBoth(t, buildCompute, 512)
	large, _ := runBoth(t, buildCompute, 2048)
	tab := DefaultTable()
	if VGIW(large, tab).SystemLevel() <= VGIW(small, tab).SystemLevel() {
		t.Error("4x work did not increase energy")
	}
}
