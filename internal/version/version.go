// Package version derives a build identifier for the vgiw binaries from the
// information the Go toolchain embeds, so every binary answers -version
// without a linker-flag build ritual.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String renders "vgiw <module-version> (<vcs-rev>[, dirty]) <go-version>".
// Fields missing from the build info (e.g. a plain `go build` outside a VCS
// checkout) are omitted rather than faked.
func String() string {
	var b strings.Builder
	b.WriteString("vgiw")
	info, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprintf(&b, " (no build info) %s", runtime.Version())
		return b.String()
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.WriteString(" " + v)
	} else {
		b.WriteString(" devel")
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = ", dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " (%s%s)", rev, dirty)
	}
	b.WriteString(" " + info.GoVersion)
	return b.String()
}
