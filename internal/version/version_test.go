package version

import (
	"runtime"
	"strings"
	"testing"
)

func TestStringShape(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "vgiw ") {
		t.Fatalf("version %q does not start with the product name", s)
	}
	if !strings.Contains(s, runtime.Version()) {
		t.Errorf("version %q omits the Go toolchain version", s)
	}
	if strings.ContainsAny(s, "\n\r") {
		t.Errorf("version %q is not a single line", s)
	}
}
