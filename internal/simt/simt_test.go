package simt

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/kir"
)

func buildDiamond() *kir.Kernel {
	b := kir.NewBuilder("fig1a")
	b.SetParams(2)
	bb1 := b.NewBlock("bb1")
	bb2 := b.NewBlock("bb2")
	bb3 := b.NewBlock("bb3")
	bb4 := b.NewBlock("bb4")
	bb5 := b.NewBlock("bb5")
	bb6 := b.NewBlock("bb6")
	b.SetBlock(bb1)
	tid := b.Tid()
	v := b.Load(b.Add(b.Param(0), tid), 0)
	b.Branch(b.SetLT(v, b.Const(10)), bb2, bb3)
	b.SetBlock(bb2)
	r := b.Mov(b.MulI(v, 2))
	b.Jump(bb6)
	b.SetBlock(bb3)
	b.Branch(b.SetLT(v, b.Const(100)), bb4, bb5)
	b.SetBlock(bb4)
	b.MovTo(r, b.AddI(v, 7))
	b.Jump(bb6)
	b.SetBlock(bb5)
	b.MovTo(r, b.Sub(v, tid))
	b.Jump(bb6)
	b.SetBlock(bb6)
	b.Store(b.Add(b.Param(1), tid), 0, r)
	b.Ret()
	return b.MustBuild()
}

func buildLoopSum() *kir.Kernel {
	b := kir.NewBuilder("loopsum")
	b.SetParams(1)
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")
	b.SetBlock(entry)
	tid := b.Tid()
	i := b.Const(0)
	sum := b.Const(0)
	b.Jump(loop)
	b.SetBlock(loop)
	sum1 := b.Add(sum, i)
	i1 := b.AddI(i, 1)
	b.MovTo(sum, sum1)
	b.MovTo(i, i1)
	b.Branch(b.SetLE(i1, b.Rem(tid, b.Const(17))), loop, exit)
	b.SetBlock(exit)
	b.Store(b.Add(b.Param(0), tid), 0, sum)
	b.Ret()
	return b.MustBuild()
}

func buildBarrierReverse() *kir.Kernel {
	b := kir.NewBuilder("reverse")
	b.SetParams(1)
	b.SetShared(32)
	entry := b.NewBlock("entry")
	after := b.NewBlock("after")
	b.SetBlock(entry)
	tidx := b.TidX()
	b.StoreSh(tidx, 0, b.Tid())
	b.Jump(after)
	b.MarkBarrier(after)
	b.SetBlock(after)
	rev := b.Sub(b.Const(31), b.TidX())
	v := b.LoadSh(rev, 0)
	b.Store(b.Add(b.Param(0), b.Tid()), 0, v)
	b.Ret()
	return b.MustBuild()
}

func runSIMT(t testing.TB, build func() *kir.Kernel, launch kir.Launch, global []uint32) (*Result, []uint32) {
	t.Helper()
	ck, err := compile.Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewMachine(DefaultConfig()).Run(ck, launch, global)
	if err != nil {
		t.Fatal(err)
	}
	return res, global
}

func reference(t testing.TB, build func() *kir.Kernel, launch kir.Launch, global []uint32) []uint32 {
	t.Helper()
	in := &kir.Interp{Kernel: build(), Launch: launch, Global: global}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	return global
}

func diamondInput(n int) []uint32 {
	m := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		m[i] = uint32(i * 7 % 250)
	}
	return m
}

func TestSIMTDiamondMatchesReference(t *testing.T) {
	const n = 256
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := reference(t, buildDiamond, launch, diamondInput(n))
	res, got := runSIMT(t, buildDiamond, launch, diamondInput(n))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if res.Divergences == 0 {
		t.Error("divergent kernel reported no divergences")
	}
	if res.MaskedLanes == 0 {
		t.Error("divergent kernel reported no masked lanes (the Fig. 1b waste)")
	}
	if res.RFReads == 0 || res.RFWrites == 0 {
		t.Error("no register file traffic")
	}
	if res.WarpInstrs == 0 || res.ThreadInstrs == 0 {
		t.Error("no instructions issued")
	}
	if res.ThreadInstrs > res.WarpInstrs*32 {
		t.Error("more thread-instructions than lanes allow")
	}
}

func TestSIMTLoopMatchesReference(t *testing.T) {
	const n = 160
	launch := kir.Launch1D(n/32, 32, 0)
	ref := reference(t, buildLoopSum, launch, make([]uint32, n))
	res, got := runSIMT(t, buildLoopSum, launch, make([]uint32, n))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
	// Data-dependent trip counts diverge inside warps.
	if res.Divergences == 0 {
		t.Error("variable-trip loop reported no divergence")
	}
}

func TestSIMTBarrierMatchesReference(t *testing.T) {
	const n = 128
	launch := kir.Launch1D(n/32, 32, 0)
	ref := reference(t, buildBarrierReverse, launch, make([]uint32, n))
	res, got := runSIMT(t, buildBarrierReverse, launch, make([]uint32, n))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.Barriers == 0 {
		t.Error("barrier kernel recorded no barrier waits")
	}
	if res.ShTrans == 0 {
		t.Error("no shared-memory transactions")
	}
}

func TestSIMTCoalescing(t *testing.T) {
	// Unit-stride: each warp's 32 loads hit one 128B line => 1 transaction
	// per warp access. Stride-32: 32 distinct lines per warp access.
	build := func(stride int32) func() *kir.Kernel {
		return func() *kir.Kernel {
			b := kir.NewBuilder("stride")
			b.SetParams(1)
			blk := b.NewBlock("entry")
			b.SetBlock(blk)
			addr := b.Add(b.Param(0), b.MulI(b.Tid(), stride))
			v := b.Load(addr, 0)
			b.Store(addr, 0, b.Add(v, v))
			b.Ret()
			return b.MustBuild()
		}
	}
	const n = 128
	launch := kir.Launch1D(n/32, 32, 0)
	unit, _ := runSIMT(t, build(1), launch, make([]uint32, n))
	strided, _ := runSIMT(t, build(32), launch, make([]uint32, n*32))
	if unit.L1Trans*16 > strided.L1Trans {
		t.Errorf("coalescing broken: unit-stride %d transactions, strided %d",
			unit.L1Trans, strided.L1Trans)
	}
	if strided.Cycles <= unit.Cycles {
		t.Error("strided access should be slower than unit-stride")
	}
}

func TestSIMTManyCTAs(t *testing.T) {
	// More CTAs than can be resident: admission must rotate through all.
	const n = 32 * 40 // 40 CTAs of one warp each
	launch := kir.Launch1D(40, 32, 0, n)
	ref := reference(t, buildDiamond, launch, diamondInput(n))
	_, got := runSIMT(t, buildDiamond, launch, diamondInput(n))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
}

func TestSIMTPartialWarp(t *testing.T) {
	// CTA size 20: the last 12 lanes of the warp never activate.
	launch := kir.Launch1D(2, 20, 0, 40)
	ref := reference(t, buildDiamond, launch, diamondInput(40))
	_, got := runSIMT(t, buildDiamond, launch, diamondInput(40))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
}

func TestSIMTOutOfBounds(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("oob")
		b.SetParams(0)
		blk := b.NewBlock("entry")
		b.SetBlock(blk)
		b.Store(b.Const(1<<20), 0, b.Tid())
		b.Ret()
		return b.MustBuild()
	}
	ck, err := compile.Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(DefaultConfig()).Run(ck, kir.Launch1D(1, 32), make([]uint32, 8)); err == nil {
		t.Error("want out-of-bounds error")
	}
}

func TestSIMTUniformFasterThanDivergent(t *testing.T) {
	// A kernel where all threads take the same path vs. one where lanes
	// alternate: divergence must cost cycles (Figure 1b).
	build := func() *kir.Kernel {
		b := kir.NewBuilder("cond")
		b.SetParams(2)
		entry := b.NewBlock("entry")
		then := b.NewBlock("then")
		els := b.NewBlock("else")
		exit := b.NewBlock("exit")
		b.SetBlock(entry)
		tid := b.Tid()
		v := b.Load(b.Add(b.Param(0), tid), 0)
		b.Branch(b.SetNE(v, b.Const(0)), then, els)
		b.SetBlock(then)
		acc := b.Mov(tid)
		for i := 0; i < 10; i++ {
			acc = b.Mul(acc, acc)
		}
		r := b.Mov(acc)
		b.Jump(exit)
		b.SetBlock(els)
		acc2 := b.AddI(tid, 1)
		for i := 0; i < 10; i++ {
			acc2 = b.Mul(acc2, acc2)
		}
		b.MovTo(r, acc2)
		b.Jump(exit)
		b.SetBlock(exit)
		b.Store(b.Add(b.Param(1), tid), 0, r)
		b.Ret()
		return b.MustBuild()
	}
	const n = 512
	uniformIn := make([]uint32, 2*n) // all zero: everyone takes else
	alternate := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		alternate[i] = uint32(i % 2)
	}
	launch := kir.Launch1D(n/32, 32, 0, n)
	uni, _ := runSIMT(t, build, launch, uniformIn)
	div, _ := runSIMT(t, build, launch, alternate)
	if div.Cycles <= uni.Cycles {
		t.Errorf("divergent run (%d cycles) not slower than uniform (%d cycles)",
			div.Cycles, uni.Cycles)
	}
	if div.MaskedLanes <= uni.MaskedLanes {
		t.Error("divergent run should mask more lanes")
	}
}

// TestSIMTNestedDivergence exercises the reconvergence stack with two
// nesting levels where the inner reconvergence point coincides with the
// outer one, plus a divergent early return.
func TestSIMTNestedDivergence(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("nested")
		b.SetParams(2)
		entry := b.NewBlock("entry")
		outerT := b.NewBlock("outer_then")
		innerT := b.NewBlock("inner_then")
		innerE := b.NewBlock("inner_else")
		merge := b.NewBlock("merge")
		early := b.NewBlock("early")
		b.SetBlock(entry)
		tid := b.Tid()
		v := b.Load(b.Add(b.Param(0), tid), 0)
		r := b.Mov(b.Const(0))
		b.Branch(b.SetLT(v, b.Const(64)), outerT, merge)
		b.SetBlock(outerT)
		// Inner divergence reconverging at the same merge block.
		b.Branch(b.SetLT(v, b.Const(16)), innerT, innerE)
		b.SetBlock(innerT)
		b.MovTo(r, b.MulI(v, 3))
		// Divergent early return for a subset of lanes.
		b.Branch(b.SetEQ(b.And(v, b.Const(1)), b.Const(1)), early, merge)
		b.SetBlock(early)
		b.Store(b.Add(b.Param(1), tid), 0, b.Const(999))
		b.Ret()
		b.SetBlock(innerE)
		b.MovTo(r, b.AddI(v, 100))
		b.Jump(merge)
		b.SetBlock(merge)
		b.Store(b.Add(b.Param(1), b.Tid()), 0, r)
		b.Ret()
		return b.MustBuild()
	}
	const n = 256
	mk := func() []uint32 {
		m := make([]uint32, 2*n)
		for i := 0; i < n; i++ {
			m[i] = uint32(i % 97)
		}
		return m
	}
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := reference(t, build, launch, mk())
	res, got := runSIMT(t, build, launch, mk())
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.Divergences < 2 {
		t.Errorf("nested kernel produced only %d divergences", res.Divergences)
	}
}

// TestSIMTAllLanesReturnEarly: a whole warp retiring via a divergent path.
func TestSIMTWholeWarpEarlyReturn(t *testing.T) {
	build := func() *kir.Kernel {
		b := kir.NewBuilder("early")
		b.SetParams(1)
		entry := b.NewBlock("entry")
		ret1 := b.NewBlock("ret1")
		rest := b.NewBlock("rest")
		b.SetBlock(entry)
		tid := b.Tid()
		// Warp 0 (tid < 32) returns early as a unit.
		b.Branch(b.SetLT(tid, b.Const(32)), ret1, rest)
		b.SetBlock(ret1)
		b.Store(b.Add(b.Param(0), tid), 0, b.Const(1))
		b.Ret()
		b.SetBlock(rest)
		b.Store(b.Add(b.Param(0), tid), 0, b.Const(2))
		b.Ret()
		return b.MustBuild()
	}
	const n = 128
	launch := kir.Launch1D(n/32, 32, 0)
	ref := reference(t, build, launch, make([]uint32, n))
	_, got := runSIMT(t, build, launch, make([]uint32, n))
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
}

// TestSIMTSchedulerPolicies: both policies must be functionally identical;
// their cycle counts may differ.
func TestSIMTSchedulerPolicies(t *testing.T) {
	const n = 256
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := reference(t, buildDiamond, launch, diamondInput(n))

	for _, pol := range []SchedPolicy{SchedLRR, SchedGTO} {
		cfg := DefaultConfig()
		cfg.Scheduler = pol
		ck, err := compile.Compile(buildDiamond())
		if err != nil {
			t.Fatal(err)
		}
		got := diamondInput(n)
		res, err := NewMachine(cfg).Run(ck, launch, got)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v: mem[%d] mismatch", pol, i)
			}
		}
		if res.Cycles <= 0 {
			t.Fatalf("%v: no cycles", pol)
		}
	}
	if SchedLRR.String() != "lrr" || SchedGTO.String() != "gto" {
		t.Error("policy names wrong")
	}
}
