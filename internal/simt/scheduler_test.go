package simt

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/kir"
)

// TestGTOGreedySurvivesCompaction pins the greedy-target tracking across
// warp-list compaction. The greedy target must be tracked by identity: before
// the fix it was stored as a warp ID and used as an index into r.warps, so
// after compact() renumbered the list the "greedy" pick silently switched to
// whichever warp inherited the index.
func TestGTOGreedySurvivesCompaction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheduler = SchedGTO
	k := buildDiamond()
	r := &run{m: NewMachine(cfg), k: k, res: &Result{}}

	// Ten warps: 0..7 retired, 8 live but stalled far in the future, 9 live
	// and ready. GTO must latch warp 9 as the greedy target.
	for i := 0; i < 10; i++ {
		w := &warp{
			id:       i,
			regReady: make([]int64, k.NumRegs),
			stack:    []stackEntry{{block: 0, instr: 0, rpc: -1, mask: 1}},
			active:   1,
		}
		switch {
		case i < 8:
			w.done = true
		case i == 8:
			w.readyAt = 1 << 40
		}
		r.warps = append(r.warps, w)
	}
	greedy := r.pickWarp()
	if greedy != r.warps[9] {
		t.Fatalf("GTO picked warp %d, want the only ready warp 9", greedy.id)
	}

	// Compact renumbers: the stalled warp becomes index/ID 0, the greedy
	// target becomes index/ID 1. Wake the stalled warp so both are ready.
	r.compact()
	r.warps[0].readyAt = 0
	r.warps[0].issueValid = false
	if got := r.pickWarp(); got != greedy {
		t.Fatalf("greedy target switched across compaction: got warp %d, want the pre-compaction greedy (now warp %d)",
			got.id, greedy.id)
	}

	// A retired greedy target must be dropped, not pinned forever.
	greedy.done = true
	r.compact()
	if r.greedy != nil {
		t.Error("compact kept a retired greedy target")
	}
	if got := r.pickWarp(); got != r.warps[0] {
		t.Fatalf("after greedy retirement GTO picked warp %d, want oldest ready warp 0", got.id)
	}
}

// TestSIMTGTOCompactionMatchesReference drives a GTO run with resident
// limits small enough that the warp list compacts repeatedly mid-run
// (compaction fires once the list outgrows 4*MaxWarps), and checks the
// output against the scalar reference.
func TestSIMTGTOCompactionMatchesReference(t *testing.T) {
	const n = 1024 // 32 CTAs of 32 threads: 32 warps through a 4-warp budget
	cfg := DefaultConfig()
	cfg.Scheduler = SchedGTO
	cfg.MaxCTAs = 2
	cfg.MaxWarps = 4
	launch := kir.Launch1D(n/32, 32, 0, n)
	ref := reference(t, buildDiamond, launch, diamondInput(n))

	ck, err := compile.Compile(buildDiamond())
	if err != nil {
		t.Fatal(err)
	}
	got := diamondInput(n)
	res, err := NewMachine(cfg).Run(ck, launch, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mem[%d]: simt %d, ref %d", i, got[i], ref[i])
		}
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
}

// TestEarliestIssueCacheMatchesRecompute runs every kernel shape (diamond
// divergence, data-dependent loop, barrier) under both schedulers with the
// cache-verification hook armed: each cached earliestIssue read is recomputed
// from scratch and the run panics on any divergence. This pins the cache's
// invalidation points (issue, terminator, barrier release) to the events
// that actually change the scoreboard answer.
func TestEarliestIssueCacheMatchesRecompute(t *testing.T) {
	debugVerifyIssueCache = true
	defer func() { debugVerifyIssueCache = false }()

	const n = 256
	kernels := []struct {
		name   string
		build  func() *kir.Kernel
		input  func() []uint32
		launch kir.Launch
	}{
		{"diamond", buildDiamond, func() []uint32 { return diamondInput(n) }, kir.Launch1D(n/32, 32, 0, n)},
		{"loopsum", buildLoopSum, func() []uint32 { return make([]uint32, n) }, kir.Launch1D(n/32, 32, 0)},
		{"barrier", buildBarrierReverse, func() []uint32 { return make([]uint32, n) }, kir.Launch1D(n/32, 32, 0)},
	}
	for _, pol := range []SchedPolicy{SchedLRR, SchedGTO} {
		for _, kc := range kernels {
			cfg := DefaultConfig()
			cfg.Scheduler = pol
			ck, err := compile.Compile(kc.build())
			if err != nil {
				t.Fatal(err)
			}
			ref := reference(t, kc.build, kc.launch, kc.input())
			got := kc.input()
			if _, err := NewMachine(cfg).Run(ck, kc.launch, got); err != nil {
				t.Fatalf("%s/%v: %v", kc.name, pol, err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s/%v: mem[%d]: simt %d, ref %d", kc.name, pol, i, got[i], ref[i])
				}
			}
		}
	}
}
