// Package simt is the von Neumann GPGPU baseline: a cycle-approximate model
// of an NVIDIA Fermi streaming multiprocessor. It executes kernels in
// lockstep warps of 32 threads with a SIMT reconvergence stack (execution
// masks under divergence), dual warp schedulers, a register scoreboard,
// per-warp memory coalescing, and a write-through/no-allocate L1 (§3.6).
//
// The model exists to reproduce the paper's comparisons: Figure 3 (register
// file traffic), Figure 7 (speedup), and Figures 9/10 (energy efficiency).
package simt

import (
	"context"
	"fmt"
	"math/bits"

	"vgiw/internal/compile"
	"vgiw/internal/engine"
	"vgiw/internal/kir"
	"vgiw/internal/mem"
	"vgiw/internal/trace"
)

// Config sizes the SM.
type Config struct {
	WarpSize   int // 32 lanes
	MaxCTAs    int // resident CTAs (Fermi: 8)
	MaxWarps   int // resident warps (Fermi: 48)
	IssueWidth int // warp instructions issued per cycle (dual schedulers)

	// Execution-port occupancies: cycles one warp instruction holds the
	// shared unit array (32 lanes over N units of that kind).
	ALUOccupancy int64 // 32 CUDA cores: 1 warp instruction per cycle
	SFUOccupancy int64 // 4 SFUs: 8 cycles
	MemOccupancy int64 // 16 LD/ST units: 2 cycles
	// BranchLat is the pipeline-refill bubble a warp pays at every block
	// terminator (branch resolution + instruction fetch redirect).
	BranchLat int64
	// PipelineLat is the register-file round-trip added to every dependent
	// latency: operand collection, the execution pipeline's writeback
	// stage, and the RF write. Fermi's measured dependent ALU latency is
	// ~18 cycles; the dataflow fabric forwards tokens directly and pays
	// only hop latency instead — one of the two von Neumann overheads the
	// paper targets (§1).
	PipelineLat int64
	// Scheduler selects the warp scheduling policy.
	Scheduler SchedPolicy
	Mem       mem.Config
	// Trace, when non-nil, receives cycle-level events (trace.CatSIMT for
	// warp issue/stall/divergence/reconvergence/barrier, trace.CatMem for
	// periodic memory-system counter samples). A nil sink keeps the issue
	// loop allocation-free.
	Trace *trace.Sink
}

// SchedPolicy selects how the warp scheduler picks among ready warps.
type SchedPolicy uint8

const (
	// SchedLRR is loose round robin (the default).
	SchedLRR SchedPolicy = iota
	// SchedGTO is greedy-then-oldest: stick with the last issued warp
	// while it stays ready, else fall back to the oldest ready warp —
	// the policy family the paper's related work ([11], two-level warp
	// scheduling) improves on.
	SchedGTO
)

func (p SchedPolicy) String() string {
	if p == SchedGTO {
		return "gto"
	}
	return "lrr"
}

// DefaultConfig is a GTX480-class SM with the §3.6 memory system
// (write-through, no-allocate L1).
func DefaultConfig() Config {
	return Config{
		WarpSize: 32,
		MaxCTAs:  8,
		MaxWarps: 48,
		// Fermi's two schedulers run at the half-rate scheduler clock; at
		// the 1.4GHz core clock the SM sustains one warp instruction per
		// cycle (32 CUDA cores = one full warp ALU op per core cycle).
		IssueWidth:   1,
		ALUOccupancy: 1,
		SFUOccupancy: 8,
		MemOccupancy: 2,
		BranchLat:    4,
		PipelineLat:  14,
		Mem:          mem.DefaultConfig(mem.WriteThrough),
	}
}

// Result aggregates a kernel execution on the SM.
type Result struct {
	Kernel  string
	Threads int
	Cycles  int64

	WarpInstrs   uint64 // issued warp instructions (terminators included)
	ThreadInstrs uint64 // sum of active lanes over issued instructions
	MaskedLanes  uint64 // lanes disabled by divergence on issued instructions

	// Register file traffic. RFReads/RFWrites count per-lane word accesses
	// (the RF reads a full vector register per warp operand, so all
	// WarpSize lanes are charged); RFWarpAccesses counts one access per
	// warp operand.
	RFReads, RFWrites uint64
	RFWarpAccesses    uint64

	ALUOps  uint64 // active ALU lane-operations
	FPOps   uint64 // active floating-point lane-operations (subset of ALUOps)
	SFUOps  uint64 // active SFU lane-operations
	MemOps  uint64 // active memory lane-operations
	L1Trans uint64 // coalesced L1 transactions
	ShTrans uint64 // shared-memory transactions

	Divergences uint64 // stack pushes (branches where lanes split)
	Barriers    uint64

	MemStats mem.SystemStats
}

// stackEntry is one SIMT reconvergence stack level: execute `block` under
// `mask`; pop when control reaches `rpc`.
type stackEntry struct {
	block int
	instr int
	rpc   int
	mask  uint32
}

type warp struct {
	id    int
	cta   int
	lanes []int // global thread IDs (one per lane; -1 for absent)

	regs     [][]uint32 // [lane][reg]
	regReady []int64    // scoreboard: cycle each register's value is ready

	stack   []stackEntry
	active  uint32 // lanes that have not returned
	readyAt int64  // structural: next cycle this warp may issue

	atBarrier bool
	done      bool

	// Issue-readiness cache: the scoreboard half of earliestIssue (readyAt
	// folded with the operand regReady of the warp's next instruction),
	// memoized until the warp issues or a barrier release bumps readyAt.
	// Those are the only events that change it — regReady is per-warp and
	// only the warp's own issues write it. The execution-port half is global
	// and read live. issuePort is the next instruction's port, -1 for
	// terminators (which need no port).
	issueReady int64
	issuePort  int
	issueValid bool
}

func (w *warp) top() *stackEntry { return &w.stack[len(w.stack)-1] }

// Machine is the SM simulator.
type Machine struct {
	cfg Config
}

// NewMachine builds an SM.
func NewMachine(cfg Config) *Machine { return &Machine{cfg: cfg} }

// Run executes a compiled kernel launch, mutating global memory in place.
func (m *Machine) Run(ck *compile.CompiledKernel, launch kir.Launch, global []uint32) (*Result, error) {
	return m.RunCtx(context.Background(), ck, launch, global)
}

// RunCtx is Run with cooperative cancellation: the warp-scheduler loop polls
// ctx every ctxCheckCycles scheduling rounds and returns ctx.Err() once the
// context is done, so a deadline or cancel preempts a running kernel.
func (m *Machine) RunCtx(ctx context.Context, ck *compile.CompiledKernel, launch kir.Launch, global []uint32) (*Result, error) {
	k := ck.Kernel
	if err := launch.Validate(); err != nil {
		return nil, err
	}
	if len(launch.Params) != k.NumParams {
		return nil, fmt.Errorf("simt: kernel %s wants %d params, launch has %d",
			k.Name, k.NumParams, len(launch.Params))
	}
	r := &run{
		m:      m,
		ctx:    ctx,
		k:      k,
		ipdom:  ck.IPDom,
		launch: launch,
		global: global,
		sys:    mem.NewSystem(m.cfg.Mem),
		res:    &Result{Kernel: k.Name, Threads: launch.Threads()},
		sink:   m.cfg.Trace,
	}
	if r.sink.Enabled(trace.CatSIMT | trace.CatMem) {
		pid := r.sink.AllocProcess(k.Name + "/simt")
		r.tr = simtTracks{
			sched: trace.TrackID{Pid: pid, Tid: 0},
			div:   trace.TrackID{Pid: pid, Tid: 1},
			mem:   trace.TrackID{Pid: pid, Tid: 2},
		}
		r.sink.DefineTrack(r.tr.sched, "sched")
		r.sink.DefineTrack(r.tr.div, "divergence")
		r.sink.DefineTrack(r.tr.mem, "mem")
	}
	r.shared = make([][]uint32, launch.CTAs())
	for i := range r.shared {
		r.shared[i] = make([]uint32, k.SharedWds)
	}
	if err := r.execute(); err != nil {
		return nil, err
	}
	r.res.Cycles = r.cycle
	r.res.MemStats = r.sys.Stats()
	r.sys.Release() // stats snapshotted; recycle the cache directories
	return r.res, nil
}

type run struct {
	m      *Machine
	ctx    context.Context
	k      *kir.Kernel
	ipdom  []int
	launch kir.Launch
	global []uint32
	shared [][]uint32
	sys    *mem.System
	res    *Result

	warps    []*warp
	nextCTA  int
	liveCTA  map[int]int // cta -> live warps
	barriers map[int]int // cta -> warps waiting
	cycle    int64
	lastPick int   // LRR rotation cursor (index into warps; reset by compact)
	greedy   *warp // GTO greedy target, tracked by identity: compact()
	// renumbers warp IDs, so an index or ID would silently redirect the
	// greedy policy to a different warp across compaction.

	// Shared execution ports: next cycle the ALU array / SFUs / LD-ST
	// units accept a new warp instruction.
	portFree [3]int64

	// memScratch dedupes line/bank ids in execMem. Reused across
	// instructions so the hot path allocates nothing; lane order (not map
	// order) decides the access sequence, keeping runs reproducible.
	memScratch []int64

	// sink/tr route cycle-level events; lastMemSample throttles the
	// memory-counter track to one sample per memSampleCycles.
	sink          *trace.Sink
	tr            simtTracks
	lastMemSample int64
}

// simtTracks lays out one SIMT run's trace tracks: the issue stream
// (issue spans + stall gaps), divergence-stack activity, and memory-system
// counter samples.
type simtTracks struct {
	sched, div, mem trace.TrackID
}

// memSampleCycles is the SIMT memory-counter sampling period. The SM has no
// natural epoch boundary like VGIW's block-vector retirement, so counters are
// sampled on a fixed cycle grid.
const memSampleCycles = 1024

// sampleMem emits cumulative memory-system counters onto the mem track, at
// most once per memSampleCycles.
func (r *run) sampleMem() {
	if !r.sink.Enabled(trace.CatMem) || r.cycle-r.lastMemSample < memSampleCycles {
		return
	}
	r.lastMemSample = r.cycle
	ms := r.sys.Stats()
	r.sink.Emit(trace.Event{Name: "l1", Cat: trace.CatMem, Phase: trace.PhaseCounter,
		Track: r.tr.mem, Ts: r.cycle,
		K1: "accesses", V1: int64(ms.L1.Accesses()), K2: "misses", V2: int64(ms.L1.Misses())})
	r.sink.Emit(trace.Event{Name: "l2", Cat: trace.CatMem, Phase: trace.PhaseCounter,
		Track: r.tr.mem, Ts: r.cycle,
		K1: "accesses", V1: int64(ms.L2.Accesses()), K2: "misses", V2: int64(ms.L2.Misses())})
	r.sink.Emit(trace.Event{Name: "dram", Cat: trace.CatMem, Phase: trace.PhaseCounter,
		Track: r.tr.mem, Ts: r.cycle,
		K1: "reads", V1: int64(ms.DRAM.Reads), K2: "writes", V2: int64(ms.DRAM.Writes)})
}

// Execution port indices.
const (
	portALU = iota
	portSFU
	portMEM
)

// portOf classifies an instruction onto an execution port.
func portOf(op kir.Op) int {
	switch {
	case op.IsMemory():
		return portMEM
	case op.Class() == kir.ClassSCU:
		return portSFU
	}
	return portALU
}

// execute drives the warp schedulers until every CTA has completed.
func (r *run) execute() error {
	ctaSize := r.launch.CTASize()
	warpsPerCTA := (ctaSize + r.m.cfg.WarpSize - 1) / r.m.cfg.WarpSize
	if warpsPerCTA > r.m.cfg.MaxWarps {
		return fmt.Errorf("simt: CTA of %d threads exceeds %d resident warps", ctaSize, r.m.cfg.MaxWarps)
	}
	r.liveCTA = make(map[int]int)
	r.barriers = make(map[int]int)

	// Cooperative cancellation: one ctx poll per ctxCheckCycles scheduling
	// rounds keeps the per-cycle cost negligible while bounding cancellation
	// latency to well under a millisecond of host time.
	const ctxCheckCycles = 4096
	checkIn := ctxCheckCycles

	for {
		if checkIn--; checkIn <= 0 {
			checkIn = ctxCheckCycles
			if err := r.ctx.Err(); err != nil {
				return err
			}
		}
		// Admit resident CTAs up to the occupancy limits; compact retired
		// warps away once they dominate the list.
		for r.nextCTA < r.launch.CTAs() &&
			len(r.liveCTA) < r.m.cfg.MaxCTAs &&
			r.liveWarps()+warpsPerCTA <= r.m.cfg.MaxWarps {
			r.admitCTA(r.nextCTA, warpsPerCTA)
			r.nextCTA++
		}
		if len(r.warps) > 4*r.m.cfg.MaxWarps {
			r.compact()
		}
		if r.liveWarps() == 0 {
			if r.nextCTA >= r.launch.CTAs() {
				return nil
			}
			continue
		}

		issued := 0
		for issued < r.m.cfg.IssueWidth {
			w := r.pickWarp()
			if w == nil {
				break
			}
			if err := r.issue(w); err != nil {
				return err
			}
			issued++
		}
		if issued > 0 {
			r.cycle++
			r.sampleMem()
			continue
		}
		// Nothing issuable this cycle: jump to the next event.
		next := int64(1<<62 - 1)
		for _, w := range r.warps {
			if w.done || w.atBarrier {
				continue
			}
			if t := r.earliestIssue(w); t < next {
				next = t
			}
		}
		if next >= 1<<62-1 {
			return fmt.Errorf("simt: deadlock at cycle %d (all warps blocked)", r.cycle)
		}
		if next <= r.cycle {
			next = r.cycle + 1
		}
		if r.sink.Enabled(trace.CatSIMT) {
			// An issue-less gap: every resident warp is stalled on the
			// scoreboard, an execution port, or a barrier.
			r.sink.Emit(trace.Event{Name: "stall", Cat: trace.CatSIMT, Phase: trace.PhaseSpan,
				Track: r.tr.sched, Ts: r.cycle, Dur: next - r.cycle,
				K1: "warps", V1: int64(r.liveWarps())})
		}
		r.cycle = next
		r.sampleMem()
	}
}

// compact drops retired warps and renumbers the rest. The GTO greedy target
// is held by pointer, so it survives renumbering; only a retired target is
// dropped.
func (r *run) compact() {
	live := r.warps[:0]
	for _, w := range r.warps {
		if !w.done {
			w.id = len(live)
			live = append(live, w)
		}
	}
	r.warps = live
	r.lastPick = 0
	if r.greedy != nil && r.greedy.done {
		r.greedy = nil
	}
}

func (r *run) liveWarps() int {
	n := 0
	for _, w := range r.warps {
		if !w.done {
			n++
		}
	}
	return n
}

func (r *run) admitCTA(cta, warpsPerCTA int) {
	ctaSize := r.launch.CTASize()
	base := cta * ctaSize
	for wi := 0; wi < warpsPerCTA; wi++ {
		w := &warp{
			id:       len(r.warps),
			cta:      cta,
			lanes:    make([]int, r.m.cfg.WarpSize),
			regs:     make([][]uint32, r.m.cfg.WarpSize),
			regReady: make([]int64, r.k.NumRegs),
			readyAt:  r.cycle,
		}
		var mask uint32
		for l := 0; l < r.m.cfg.WarpSize; l++ {
			t := wi*r.m.cfg.WarpSize + l
			if t < ctaSize {
				w.lanes[l] = base + t
				w.regs[l] = make([]uint32, r.k.NumRegs)
				mask |= 1 << l
			} else {
				w.lanes[l] = -1
			}
		}
		w.active = mask
		w.stack = []stackEntry{{block: 0, instr: 0, rpc: -1, mask: mask}}
		r.warps = append(r.warps, w)
		r.liveCTA[cta]++
	}
}

// debugVerifyIssueCache, set by tests only, recomputes the scoreboard scan
// on every cached earliestIssue read and panics if the memoized value ever
// diverges from the fresh one.
var debugVerifyIssueCache bool

// earliestIssue computes when the warp's next instruction could issue. The
// scoreboard half is memoized per warp (the scheduler polls every stalled
// warp each idle cycle, but the answer only changes when the warp issues or
// a barrier release bumps readyAt); the shared execution ports are read live.
func (r *run) earliestIssue(w *warp) int64 {
	if !w.issueValid {
		w.issueReady, w.issuePort = r.scoreboardReady(w)
		w.issueValid = true
	} else if debugVerifyIssueCache {
		ready, port := r.scoreboardReady(w)
		if ready != w.issueReady || port != w.issuePort {
			panic(fmt.Sprintf("simt: stale issue cache for warp %d: cached (%d, port %d), fresh (%d, port %d)",
				w.id, w.issueReady, w.issuePort, ready, port))
		}
	}
	t := w.issueReady
	if w.issuePort >= 0 {
		if pf := r.portFree[w.issuePort]; pf > t {
			t = pf
		}
	}
	return t
}

// scoreboardReady scans the warp's next instruction: the cycle its operands
// and the warp itself are ready, plus the execution port it needs (-1 for
// terminators).
func (r *run) scoreboardReady(w *warp) (int64, int) {
	t := w.readyAt
	e := w.top()
	blk := r.k.Blocks[e.block]
	if e.instr < len(blk.Instrs) {
		in := blk.Instrs[e.instr]
		for i := 0; i < in.Op.NumSrc(); i++ {
			if rr := w.regReady[in.Src[i]]; rr > t {
				t = rr
			}
		}
		return t, portOf(in.Op)
	}
	if blk.Term.Kind == kir.TermBranch {
		if rr := w.regReady[blk.Term.Cond]; rr > t {
			t = rr
		}
	}
	return t, -1
}

// pickWarp selects a ready warp according to the configured policy.
func (r *run) pickWarp() *warp {
	n := len(r.warps)
	if n == 0 {
		return nil
	}
	if r.m.cfg.Scheduler == SchedGTO {
		// Greedy: stay on the last issued warp while it remains ready.
		if w := r.greedy; w != nil && !w.done && !w.atBarrier && r.earliestIssue(w) <= r.cycle {
			return w
		}
		// Then oldest: lowest warp ID that is ready (admission order is
		// age order, and compact preserves it).
		for _, w := range r.warps {
			if w.done || w.atBarrier {
				continue
			}
			if r.earliestIssue(w) <= r.cycle {
				r.greedy = w
				return w
			}
		}
		return nil
	}
	// Loose round robin.
	for i := 0; i < n; i++ {
		w := r.warps[(r.lastPick+1+i)%n]
		if w.done || w.atBarrier {
			continue
		}
		if r.earliestIssue(w) <= r.cycle {
			r.lastPick = w.id
			return w
		}
	}
	return nil
}

// issue executes one warp instruction (or terminator) at the current cycle.
func (r *run) issue(w *warp) error {
	e := w.top()
	blk := r.k.Blocks[e.block]
	if e.instr < len(blk.Instrs) {
		return r.issueInstr(w, blk.Instrs[e.instr])
	}
	return r.issueTerm(w, blk.Term)
}

// countRF charges register-file traffic for one issued warp instruction.
func (r *run) countRF(reads, writes int) {
	ws := uint64(r.m.cfg.WarpSize)
	r.res.RFReads += uint64(reads) * ws
	r.res.RFWrites += uint64(writes) * ws
	r.res.RFWarpAccesses += uint64(reads + writes)
}

func (r *run) issueInstr(w *warp, in kir.Instr) error {
	e := w.top()
	mask := e.mask
	lanesOn := bits.OnesCount32(mask)
	r.res.WarpInstrs++
	r.res.ThreadInstrs += uint64(lanesOn)
	r.res.MaskedLanes += uint64(bits.OnesCount32(w.active &^ mask))
	r.countRF(in.Op.NumSrc(), boolInt(in.Op.HasDst()))

	lat := engine.OpLatency(in.Op)
	occupancy := r.m.cfg.ALUOccupancy
	done := r.cycle + lat

	switch {
	case in.Op.IsMemory():
		r.res.MemOps += uint64(lanesOn)
		var trans int
		var err error
		done, trans, err = r.execMem(w, in, mask)
		if err != nil {
			return err
		}
		// An uncoalesced access replays: the LD/ST port is held once per
		// generated transaction (memory divergence), not per instruction.
		occupancy = r.m.cfg.MemOccupancy
		if t := int64(trans); t > occupancy {
			occupancy = t
		}
	case in.Op.Class() == kir.ClassSCU:
		occupancy = r.m.cfg.SFUOccupancy
		r.res.SFUOps += uint64(lanesOn)
		r.execALU(w, in, mask)
	default:
		r.res.ALUOps += uint64(lanesOn)
		if in.Op.IsFloat() {
			r.res.FPOps += uint64(lanesOn)
		}
		r.execALU(w, in, mask)
	}

	if in.Op.HasDst() {
		w.regReady[in.Dst] = done + r.m.cfg.PipelineLat
	}
	r.portFree[portOf(in.Op)] = r.cycle + occupancy
	w.readyAt = r.cycle + 1
	e.instr++
	w.issueValid = false // next instruction, new readyAt, new regReady[dst]
	if r.sink.Enabled(trace.CatSIMT) {
		// One span per issued warp instruction: issue to execution-complete
		// (the op name labels the span; the register writeback lands
		// PipelineLat later).
		r.sink.Emit(trace.Event{Name: in.Op.String(), Cat: trace.CatSIMT, Phase: trace.PhaseSpan,
			Track: r.tr.sched, Ts: r.cycle, Dur: done - r.cycle,
			K1: "warp", V1: int64(w.id), K2: "block", V2: int64(e.block), K3: "lanes", V3: int64(lanesOn)})
	}
	return nil
}

func (r *run) execALU(w *warp, in kir.Instr, mask uint32) {
	for l := 0; l < r.m.cfg.WarpSize; l++ {
		if mask&(1<<l) == 0 {
			continue
		}
		regs := w.regs[l]
		switch {
		case in.Op == kir.OpParam:
			regs[in.Dst] = r.launch.Params[in.Imm]
		case in.Op.IsGeometry():
			regs[in.Dst] = r.launch.Geometry(in.Op, w.lanes[l])
		default:
			var a, b, c uint32
			n := in.Op.NumSrc()
			if n > 0 {
				a = regs[in.Src[0]]
			}
			if n > 1 {
				b = regs[in.Src[1]]
			}
			if n > 2 {
				c = regs[in.Src[2]]
			}
			regs[in.Dst] = kir.Eval(in.Op, a, b, c, in.Imm)
		}
	}
}

// execMem performs a coalesced memory access for the active lanes and
// returns the completion cycle of the slowest transaction plus the number of
// transactions generated (line transactions for global memory, conflicting
// bank groups for shared memory).
func (r *run) execMem(w *warp, in kir.Instr, mask uint32) (int64, int, error) {
	write := in.Op.IsStore()
	sharedSpace := in.Op.IsShared()
	lineWords := int64(r.m.cfg.Mem.L1.LineBytes / 4)

	done := r.cycle + 1
	// ids collects the distinct line (global) or bank (shared) numbers the
	// active lanes touch, deduped in lane order with a linear scan — the warp
	// is at most 32 lanes wide, and unlike a map the resulting access order
	// is reproducible (bank/port timing depends on it).
	ids := r.memScratch[:0]
	addID := func(id int64) {
		for _, v := range ids {
			if v == id {
				return
			}
		}
		ids = append(ids, id)
	}
	for l := 0; l < r.m.cfg.WarpSize; l++ {
		if mask&(1<<l) == 0 {
			continue
		}
		regs := w.regs[l]
		addr := int64(int32(regs[in.Src[0]]) + in.Imm)
		if sharedSpace {
			sh := r.shared[w.cta]
			if addr < 0 || addr >= int64(len(sh)) {
				return 0, 0, fmt.Errorf("simt: thread %d: shared access out of bounds: %d (size %d)",
					w.lanes[l], addr, len(sh))
			}
			if write {
				sh[addr] = regs[in.Src[1]]
			} else {
				regs[in.Dst] = sh[addr]
			}
			addID(addr % int64(r.m.cfg.Mem.SharedBanks))
			continue
		}
		if addr < 0 || addr >= int64(len(r.global)) {
			return 0, 0, fmt.Errorf("simt: thread %d: global access out of bounds: %d (size %d)",
				w.lanes[l], addr, len(r.global))
		}
		if write {
			r.global[addr] = regs[in.Src[1]]
		} else {
			regs[in.Dst] = r.global[addr]
		}
		addID(addr / lineWords)
	}
	r.memScratch = ids

	if sharedSpace {
		// Bank conflicts serialize; each distinct bank is one transaction.
		r.res.ShTrans += uint64(len(ids))
		for _, b := range ids {
			if t := r.sys.AccessShared(b, r.cycle); t > done {
				done = t
			}
		}
		return done, len(ids), nil
	}
	// Coalescing: one transaction per distinct 128B line (Fermi-style).
	r.res.L1Trans += uint64(len(ids))
	for _, line := range ids {
		if t := r.sys.AccessLine(line, write, r.cycle); t > done {
			done = t
		}
	}
	return done, len(ids), nil
}

// issueTerm executes a block terminator: branch resolution, divergence-stack
// maintenance, reconvergence pops, barrier arrival, and thread retirement.
func (r *run) issueTerm(w *warp, t kir.Terminator) error {
	e := w.top()
	r.res.WarpInstrs++
	r.res.ThreadInstrs += uint64(bits.OnesCount32(e.mask))

	switch t.Kind {
	case kir.TermRet:
		exiting := e.mask
		w.active &^= exiting
		for i := range w.stack {
			w.stack[i].mask &^= exiting
		}
		w.stack = w.stack[:len(w.stack)-1]
		r.popEmpty(w)
		if w.active == 0 || len(w.stack) == 0 {
			r.retireWarp(w)
			return nil
		}

	case kir.TermJump:
		e.block = t.Then
		e.instr = 0
		r.reconverge(w)

	case kir.TermBranch:
		r.countRF(1, 0) // the condition register read
		var maskThen, maskElse uint32
		for l := 0; l < r.m.cfg.WarpSize; l++ {
			if e.mask&(1<<l) == 0 {
				continue
			}
			if w.regs[l][t.Cond] != 0 {
				maskThen |= 1 << l
			} else {
				maskElse |= 1 << l
			}
		}
		switch {
		case maskElse == 0:
			e.block, e.instr = t.Then, 0
		case maskThen == 0:
			e.block, e.instr = t.Else, 0
		default:
			r.res.Divergences++
			d := r.ipdom[e.block]
			full := e.mask
			if r.sink.Enabled(trace.CatSIMT) {
				r.sink.Emit(trace.Event{Name: "diverge", Cat: trace.CatSIMT, Phase: trace.PhaseInstant,
					Track: r.tr.div, Ts: r.cycle,
					K1: "warp", V1: int64(w.id), K2: "block", V2: int64(e.block), K3: "depth", V3: int64(len(w.stack) + 2)})
			}
			// Continuation at the reconvergence point, then the two paths.
			*e = stackEntry{block: d, instr: 0, rpc: e.rpc, mask: full}
			w.stack = append(w.stack,
				stackEntry{block: t.Else, instr: 0, rpc: d, mask: maskElse},
				stackEntry{block: t.Then, instr: 0, rpc: d, mask: maskThen},
			)
		}
		r.reconverge(w)
	}

	w.readyAt = r.cycle + 1 + r.m.cfg.BranchLat
	w.issueValid = false // control moved and readyAt changed
	r.checkBarrier(w)
	return nil
}

// reconverge pops stack levels whose control reached their reconvergence
// point, then drops empty-mask levels (all lanes exited).
func (r *run) reconverge(w *warp) {
	pops := 0
	for len(w.stack) > 0 {
		e := w.top()
		if e.mask == 0 || (e.rpc >= 0 && e.block == e.rpc && e.instr == 0) {
			w.stack = w.stack[:len(w.stack)-1]
			pops++
			continue
		}
		break
	}
	if pops > 0 && r.sink.Enabled(trace.CatSIMT) {
		r.sink.Emit(trace.Event{Name: "reconverge", Cat: trace.CatSIMT, Phase: trace.PhaseInstant,
			Track: r.tr.div, Ts: r.cycle,
			K1: "warp", V1: int64(w.id), K2: "pops", V2: int64(pops), K3: "depth", V3: int64(len(w.stack))})
	}
	if len(w.stack) == 0 {
		r.retireWarp(w)
	}
}

func (r *run) popEmpty(w *warp) {
	for len(w.stack) > 0 && w.top().mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	// A revealed entry may itself sit at its reconvergence point.
	if len(w.stack) > 0 {
		r.reconverge(w)
	}
}

func (r *run) retireWarp(w *warp) {
	if w.done {
		return
	}
	w.done = true
	r.liveCTA[w.cta]--
	if r.liveCTA[w.cta] == 0 {
		delete(r.liveCTA, w.cta)
	}
	r.releaseBarrier(w.cta)
}

// checkBarrier stalls the warp if its next block is a barrier block and the
// rest of the CTA has not arrived yet.
func (r *run) checkBarrier(w *warp) {
	if w.done || len(w.stack) == 0 {
		return
	}
	e := w.top()
	if e.instr != 0 || !r.k.Blocks[e.block].Barrier {
		return
	}
	r.barriers[w.cta]++
	w.atBarrier = true
	r.res.Barriers++
	if r.sink.Enabled(trace.CatSIMT) {
		r.sink.Emit(trace.Event{Name: "barrier.wait", Cat: trace.CatSIMT, Phase: trace.PhaseInstant,
			Track: r.tr.div, Ts: r.cycle,
			K1: "warp", V1: int64(w.id), K2: "cta", V2: int64(w.cta), K3: "waiting", V3: int64(r.barriers[w.cta])})
	}
	r.releaseBarrier(w.cta)
}

// releaseBarrier opens the barrier once every live warp of the CTA waits.
func (r *run) releaseBarrier(cta int) {
	if r.barriers[cta] == 0 {
		return
	}
	if r.barriers[cta] < r.liveCTA[cta] {
		return
	}
	for _, w := range r.warps {
		if w.cta == cta && w.atBarrier {
			w.atBarrier = false
			if w.readyAt < r.cycle+1 {
				w.readyAt = r.cycle + 1
			}
			w.issueValid = false // readyAt may have moved
		}
	}
	if r.sink.Enabled(trace.CatSIMT) {
		r.sink.Emit(trace.Event{Name: "barrier.release", Cat: trace.CatSIMT, Phase: trace.PhaseInstant,
			Track: r.tr.div, Ts: r.cycle,
			K1: "cta", V1: int64(cta), K2: "released", V2: int64(r.barriers[cta])})
	}
	r.barriers[cta] = 0
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
