package kernels

import "vgiw/internal/kir"

// bfs ports Rodinia's breadth-first-search kernels. The graph is CSR:
// starting[i] is node i's first edge index, noEdges[i] its edge count, and
// edges[] the destination list. One launch of Kernel processes one frontier
// expansion; Kernel2 promotes the updating mask into the next frontier.
//
// The instance reproduces a mid-search frontier: the host runs the first few
// BFS levels, then the simulators execute the next level.
func init() {
	register(Spec{
		Name:        "bfs.kernel1",
		App:         "BFS",
		Domain:      "Graph Algorithms",
		Description: "Breadth-first search: frontier expansion",
		PaperBlocks: 8,
		Class:       Memory,
		SGMF:        false, // data-dependent edge loop
		Build:       buildBFS1,
	})
	register(Spec{
		Name:        "bfs.kernel2",
		App:         "BFS",
		Domain:      "Graph Algorithms",
		Description: "Breadth-first search: frontier promotion",
		PaperBlocks: 3,
		Class:       Memory,
		SGMF:        true,
		Build:       buildBFS2,
	})
}

// bfsGraph holds a synthetic random graph plus BFS state arrays laid out in
// one flat memory image.
type bfsGraph struct {
	n        int
	starting []int32
	noEdges  []int32
	edges    []int32

	// word-addressed bases
	startBase, countBase, edgeBase         int
	maskBase, updBase, visitBase, costBase int
	overAddr                               int
	words                                  int
}

func makeBFSGraph(scale int) *bfsGraph {
	n := 2048 * clampScale(scale)
	const avgDeg = 4
	r := newRNG(67)
	g := &bfsGraph{n: n}
	g.starting = make([]int32, n)
	g.noEdges = make([]int32, n)
	for i := 0; i < n; i++ {
		g.noEdges[i] = int32(1 + r.intn(2*avgDeg-1))
	}
	total := int32(0)
	for i := 0; i < n; i++ {
		g.starting[i] = total
		total += g.noEdges[i]
	}
	g.edges = make([]int32, total)
	for i := range g.edges {
		g.edges[i] = int32(r.intn(n))
	}

	g.startBase = 0
	g.countBase = g.startBase + n
	g.edgeBase = g.countBase + n
	g.maskBase = g.edgeBase + len(g.edges)
	g.updBase = g.maskBase + n
	g.visitBase = g.updBase + n
	g.costBase = g.visitBase + n
	g.overAddr = g.costBase + n
	g.words = g.overAddr + 1
	return g
}

// image lays out graph + state into a memory image. State arrays are the
// BFS state after `levels` host-side frontier expansions from node 0.
func (g *bfsGraph) image(levels int) []uint32 {
	mem := make([]uint32, g.words)
	for i := 0; i < g.n; i++ {
		mem[g.startBase+i] = uint32(g.starting[i])
		mem[g.countBase+i] = uint32(g.noEdges[i])
	}
	for i, e := range g.edges {
		mem[g.edgeBase+i] = uint32(e)
	}
	mask := make([]bool, g.n)
	visited := make([]bool, g.n)
	cost := make([]int32, g.n)
	for i := range cost {
		cost[i] = -1
	}
	mask[0], visited[0], cost[0] = true, true, 0
	for l := 0; l < levels; l++ {
		next := make([]bool, g.n)
		for i := 0; i < g.n; i++ {
			if !mask[i] {
				continue
			}
			mask[i] = false
			for e := g.starting[i]; e < g.starting[i]+g.noEdges[i]; e++ {
				id := int(g.edges[e])
				if !visited[id] {
					cost[id] = cost[i] + 1
					next[id] = true
				}
			}
		}
		for i := 0; i < g.n; i++ {
			if next[i] {
				mask[i], visited[i] = true, true
			}
		}
	}
	for i := 0; i < g.n; i++ {
		mem[g.maskBase+i] = boolWord(mask[i])
		mem[g.visitBase+i] = boolWord(visited[i])
		mem[g.costBase+i] = uint32(cost[i])
	}
	return mem
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// buildBFS1: one frontier expansion.
func buildBFS1(scale int) (*Instance, error) {
	g := makeBFSGraph(scale)
	global := g.image(2) // state after two host-side levels

	b := kir.NewBuilder("bfs.kernel1")
	b.SetParams(8) // n, startBase, countBase, edgeBase, maskBase, updBase, visitBase, costBase
	entry := b.NewBlock("entry")
	checkMask := b.NewBlock("check_mask")
	setup := b.NewBlock("setup")
	loopHead := b.NewBlock("loop_head")
	update := b.NewBlock("update")
	latch := b.NewBlock("latch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	b.Branch(b.SetLT(tid, b.Param(0)), checkMask, exit)

	b.SetBlock(checkMask)
	inFrontier := b.Load(b.Add(b.Param(4), b.Tid()), 0)
	b.Branch(inFrontier, setup, exit)

	b.SetBlock(setup)
	b.Store(b.Add(b.Param(4), b.Tid()), 0, b.Const(0)) // graph_mask[tid] = false
	myCost := b.Load(b.Add(b.Param(7), b.Tid()), 0)
	e := b.Mov(b.Load(b.Add(b.Param(1), b.Tid()), 0))
	end := b.Add(e, b.Load(b.Add(b.Param(2), b.Tid()), 0))
	b.Branch(b.SetLT(e, end), loopHead, exit)

	b.SetBlock(loopHead)
	id := b.Load(b.Add(b.Param(3), e), 0)
	vis := b.Load(b.Add(b.Param(6), id), 0)
	b.Branch(b.SetEQ(vis, b.Const(0)), update, latch)

	b.SetBlock(update)
	b.Store(b.Add(b.Param(7), id), 0, b.AddI(myCost, 1)) // cost[id] = cost[tid]+1
	b.Store(b.Add(b.Param(5), id), 0, b.Const(1))        // updating_mask[id] = true
	b.Jump(latch)

	b.SetBlock(latch)
	e1 := b.AddI(e, 1)
	b.MovTo(e, e1)
	b.Branch(b.SetLT(e1, end), loopHead, exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host reference: apply one expansion to a copy.
	want := make([]uint32, len(global))
	copy(want, global)
	for i := 0; i < g.n; i++ {
		if want[g.maskBase+i] == 0 {
			continue
		}
		want[g.maskBase+i] = 0
		myCost := int32(want[g.costBase+i])
		for e := g.starting[i]; e < g.starting[i]+g.noEdges[i]; e++ {
			id := int(g.edges[e])
			if want[g.visitBase+id] == 0 {
				want[g.costBase+id] = uint32(myCost + 1)
				want[g.updBase+id] = 1
			}
		}
	}

	const blockX = 128
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(g.n/blockX, blockX,
			uint32(g.n), uint32(g.startBase), uint32(g.countBase), uint32(g.edgeBase),
			uint32(g.maskBase), uint32(g.updBase), uint32(g.visitBase), uint32(g.costBase)),
		Global: global,
		Check: func(final []uint32) error {
			// Frontier nodes at the same level write the same cost, so the
			// result is deterministic despite concurrent writers.
			return expectWords(final, 0, want, "bfs1.mem")
		},
	}, nil
}

// buildBFS2: promote updating mask into the frontier.
func buildBFS2(scale int) (*Instance, error) {
	g := makeBFSGraph(scale)
	global := g.image(2)
	// Seed the updating mask as kernel1 would have left it.
	for i := 0; i < g.n; i++ {
		if global[g.maskBase+i] != 0 {
			for e := g.starting[i]; e < g.starting[i]+g.noEdges[i]; e++ {
				id := int(g.edges[e])
				if global[g.visitBase+id] == 0 {
					global[g.updBase+id] = 1
				}
			}
		}
		global[g.maskBase+i] = 0
	}

	b := kir.NewBuilder("bfs.kernel2")
	b.SetParams(5) // n, maskBase, updBase, visitBase, overAddr
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	guard := b.SetLT(tid, b.Param(0))
	upd := b.Load(b.Add(b.Param(2), tid), 0)
	b.Branch(b.And(guard, upd), body, exit)

	b.SetBlock(body)
	b.Store(b.Add(b.Param(1), b.Tid()), 0, b.Const(1)) // graph_mask = true
	b.Store(b.Add(b.Param(3), b.Tid()), 0, b.Const(1)) // visited = true
	b.Store(b.Param(4), 0, b.Const(1))                 // *over = true
	b.Store(b.Add(b.Param(2), b.Tid()), 0, b.Const(0)) // updating_mask = false
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, len(global))
	copy(want, global)
	for i := 0; i < g.n; i++ {
		if want[g.updBase+i] != 0 {
			want[g.maskBase+i] = 1
			want[g.visitBase+i] = 1
			want[g.overAddr] = 1
			want[g.updBase+i] = 0
		}
	}

	const blockX = 128
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(g.n/blockX, blockX,
			uint32(g.n), uint32(g.maskBase), uint32(g.updBase), uint32(g.visitBase), uint32(g.overAddr)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, 0, want, "bfs2.mem")
		},
	}, nil
}
