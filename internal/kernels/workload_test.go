package kernels

import (
	"reflect"
	"testing"
)

// TestWorkloadImageIsolation pins the copy-on-write handoff: a run may
// scribble over every word of the memory image it checked out, and neither
// the cached image nor any later checkout may see it.
func TestWorkloadImageIsolation(t *testing.T) {
	spec := All()[0]
	w, err := NewWorkload(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	frozen := append([]uint32(nil), w.baseImage()...)

	g := w.Global()
	if len(g) != w.Words() {
		t.Fatalf("checkout has %d words, workload reports %d", len(g), w.Words())
	}
	for i := range g {
		g[i] = ^g[i] // simulate a run trashing its heap
	}
	for i, v := range w.baseImage() {
		if v != frozen[i] {
			t.Fatalf("run mutation leaked into the cached image at word %d: %d -> %d", i, frozen[i], v)
		}
	}
	g2 := w.Global()
	for i := range g2 {
		if g2[i] != frozen[i] {
			t.Fatalf("second checkout saw the first run's writes at word %d", i)
		}
	}
}

// TestWorkloadKernelIsolation: every Kernel() checkout is a private deep
// copy, so a compile mutating it in place cannot corrupt the shared artifact.
func TestWorkloadKernelIsolation(t *testing.T) {
	spec := All()[0]
	w, err := NewWorkload(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	k1 := w.Kernel()
	if k1 == w.kernel {
		t.Fatal("Kernel() handed out the cached kernel itself")
	}
	orig := w.kernel.Blocks[0].Label
	k1.Blocks[0].Label = "mutated-by-compile"
	k1.Blocks[0].Instrs = nil
	if w.kernel.Blocks[0].Label != orig || len(w.kernel.Blocks[0].Instrs) == 0 {
		t.Fatal("mutating a checked-out kernel reached the cached kernel")
	}
	if k2 := w.Kernel(); k2.Blocks[0].Label != orig {
		t.Fatal("second checkout saw the first checkout's mutations")
	}
}

// TestWorkloadInstanceMatchesBuild: the artifact path must hand out the same
// instance a fresh Spec.Build would (deterministic generators), so cached and
// uncached runs start from identical state.
func TestWorkloadInstanceMatchesBuild(t *testing.T) {
	spec := All()[0]
	w, err := NewWorkload(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Instance()
	if !reflect.DeepEqual(inst.Launch, fresh.Launch) {
		t.Errorf("launch mismatch: %+v vs %+v", inst.Launch, fresh.Launch)
	}
	if len(inst.Global) != len(fresh.Global) {
		t.Fatalf("image sizes differ: %d vs %d", len(inst.Global), len(fresh.Global))
	}
	for i := range inst.Global {
		if inst.Global[i] != fresh.Global[i] {
			t.Fatalf("image word %d differs: %d vs %d", i, inst.Global[i], fresh.Global[i])
		}
	}
}
