package kernels

import "vgiw/internal/kir"

// nw ports Rodinia's Needleman-Wunsch sequence alignment kernels. The score
// matrix is (n+1)x(n+1) int32; cell (y,x) depends on its NW, W and N
// neighbors:
//
//	score[y][x] = max(score[y-1][x-1] + ref[y][x],
//	                  score[y][x-1] - penalty,
//	                  score[y-1][x] - penalty)
//
// Tiles on one anti-diagonal are independent; each CTA processes one 16x16
// tile in shared memory, sweeping the tile's anti-diagonals with a barrier
// per step. needle1 runs the longest ascending tile-diagonal and needle2 the
// first descending one (the original's two kernels cover exactly these two
// phases).
const (
	nwB       = 16
	nwPenalty = 10
)

func init() {
	register(Spec{
		Name:        "nw.needle1",
		App:         "NW",
		Domain:      "Bioinformatics",
		Description: "Sequence alignment: ascending tile diagonal",
		PaperBlocks: 13,
		Class:       Compute,
		SGMF:        false,
		Build:       func(scale int) (*Instance, error) { return buildNW(scale, false) },
	})
	register(Spec{
		Name:        "nw.needle2",
		App:         "NW",
		Domain:      "Bioinformatics",
		Description: "Sequence alignment: descending tile diagonal",
		PaperBlocks: 13,
		Class:       Compute,
		SGMF:        false,
		Build:       func(scale int) (*Instance, error) { return buildNW(scale, true) },
	})
}

func buildNW(scale int, descending bool) (*Instance, error) {
	n := nwB * 8 * clampScale(scale) // sequence length
	dim := n + 1
	tiles := n / nwB
	scoreBase := 0
	refBase := dim * dim
	global := make([]uint32, refBase+dim*dim)
	r := newRNG(139)

	// Reference (substitution) matrix and DP initialization.
	ref := make([]int32, dim*dim)
	for y := 1; y < dim; y++ {
		for x := 1; x < dim; x++ {
			ref[y*dim+x] = int32(r.intn(21) - 10)
			global[refBase+y*dim+x] = uint32(ref[y*dim+x])
		}
	}
	full := make([]int32, dim*dim)
	for x := 0; x < dim; x++ {
		full[x] = int32(-x * nwPenalty)
	}
	for y := 0; y < dim; y++ {
		full[y*dim] = int32(-y * nwPenalty)
	}
	max3 := func(a, b, c int32) int32 {
		m := a
		if b > m {
			m = b
		}
		if c > m {
			m = c
		}
		return m
	}
	for y := 1; y < dim; y++ {
		for x := 1; x < dim; x++ {
			full[y*dim+x] = max3(full[(y-1)*dim+x-1]+ref[y*dim+x],
				full[y*dim+x-1]-nwPenalty, full[(y-1)*dim+x]-nwPenalty)
		}
	}

	// Which tile diagonal does this kernel compute? Ascending phase ends at
	// diagonal tiles-1 (tiles CTAs); descending starts at diagonal tiles
	// (tiles-1 CTAs). Tile (tiY, tiX) covers score rows/cols
	// [ti*16+1, ti*16+16].
	diag := tiles - 1
	ctas := tiles
	if descending {
		diag = tiles
		ctas = tiles - 1
	}
	// Seed the score matrix: everything from the full solution except the
	// interiors of the target tiles, which the kernel must produce.
	inTarget := func(y, x int) bool {
		if y == 0 || x == 0 {
			return false
		}
		tY, tX := (y-1)/nwB, (x-1)/nwB
		return tY+tX == diag && tY < tiles && tX < tiles &&
			(!descending && tY <= diag || descending && tY >= diag-tiles+1)
	}
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			if inTarget(y, x) {
				global[scoreBase+y*dim+x] = 0
			} else {
				global[scoreBase+y*dim+x] = uint32(full[y*dim+x])
			}
		}
	}

	b := kir.NewBuilder("nw.needle")
	b.SetParams(4) // dim, scoreBase, refBase, tileYBase (tileY = tileYBase + ctaX)
	// Shared: temp (17x17) then ref tile (16x16).
	const shTemp = 0
	const shRef = 17 * 17
	b.SetShared(17*17 + nwB*nwB)

	entry := b.NewBlock("entry")
	refLoop := b.NewBlock("ref_loop")
	d1head := b.NewBlock("d1_head")
	d1comp := b.NewBlock("d1_comp")
	d1w := b.NewBlock("d1_w")
	d1n := b.NewBlock("d1_ncheck")
	d1nset := b.NewBlock("d1_nset")
	d1store := b.NewBlock("d1_store")
	d1latch := b.NewBlock("d1_latch")
	d2head := b.NewBlock("d2_head")
	d2comp := b.NewBlock("d2_comp")
	d2w := b.NewBlock("d2_w")
	d2n := b.NewBlock("d2_ncheck")
	d2nset := b.NewBlock("d2_nset")
	d2store := b.NewBlock("d2_store")
	d2latch := b.NewBlock("d2_latch")
	wbLoop := b.NewBlock("wb_loop")
	exit := b.NewBlock("exit")
	b.MarkBarrier(d1head)
	b.MarkBarrier(d2head)
	b.MarkBarrier(wbLoop)

	dimOf := func() kir.Reg { return b.Param(0) }
	tileY := func() kir.Reg { return b.Add(b.Param(3), b.CtaX()) }
	tileX := func() kir.Reg { return b.Sub(b.Const(int32(diag)), tileY()) }
	// Tile origin cell (row tileY*16, col tileX*16) — the halo corner.
	origin := func() kir.Reg {
		row := b.Mul(tileY(), b.Const(nwB))
		col := b.Mul(tileX(), b.Const(nwB))
		return b.Add(b.Add(b.Param(1), b.Mul(row, dimOf())), col)
	}

	b.SetBlock(entry)
	tx := b.TidX()
	// Halo: temp[0][tx+1] = north row; temp[tx+1][0] = west col;
	// thread 0 also loads the corner.
	b.StoreSh(b.AddI(tx, 1), shTemp, b.Load(b.Add(origin(), b.AddI(tx, 1)), 0))
	b.StoreSh(b.MulI(b.AddI(tx, 1), 17), shTemp,
		b.Load(b.Add(origin(), b.Mul(b.AddI(tx, 1), dimOf())), 0))
	b.StoreSh(b.Const(0), shTemp, b.Load(origin(), 0))
	ri := b.Mov(b.Const(0))
	b.Jump(refLoop)

	b.SetBlock(refLoop)
	// ref tile row ri: global cell (tileY*16+ri+1, tileX*16+tx+1).
	refAddr := b.Add(b.Sub(origin(), b.Param(1)), b.Add(b.Param(2),
		b.Add(b.Mul(b.AddI(ri, 1), dimOf()), b.AddI(b.TidX(), 1))))
	b.StoreSh(b.Add(b.MulI(ri, nwB), b.TidX()), shRef, b.Load(refAddr, 0))
	ri1 := b.AddI(ri, 1)
	b.MovTo(ri, ri1)
	m := b.Mov(b.Const(0))
	best := b.Mov(b.Const(0))
	b.Branch(b.SetLT(ri1, b.Const(nwB)), refLoop, d1head)

	// Phase 1: ascending anti-diagonals (m = 0..15); thread tx computes
	// in-tile cell (y0, x0) = (m-tx, tx) when tx <= m.
	b.SetBlock(d1head)
	b.Branch(b.SetLE(b.TidX(), m), d1comp, d1latch)

	b.SetBlock(d1comp)
	x0 := b.TidX()
	y0 := b.Sub(m, b.TidX())
	// temp coords are +1.
	nwV := b.LoadSh(b.Add(b.MulI(y0, 17), x0), shTemp)
	wV := b.LoadSh(b.Add(b.MulI(b.AddI(y0, 1), 17), x0), shTemp)
	nV := b.LoadSh(b.Add(b.MulI(y0, 17), b.AddI(x0, 1)), shTemp)
	rV := b.LoadSh(b.Add(b.MulI(y0, nwB), x0), shRef)
	b.MovTo(best, b.Add(nwV, rV))
	wCand := b.Sub(wV, b.Const(nwPenalty))
	b.Branch(b.SetLT(best, wCand), d1w, d1n)

	b.SetBlock(d1w)
	b.MovTo(best, wCand)
	b.Jump(d1n)

	b.SetBlock(d1n)
	nCand := b.Sub(nV, b.Const(nwPenalty))
	b.Branch(b.SetLT(best, nCand), d1nset, d1store)

	b.SetBlock(d1nset)
	b.MovTo(best, nCand)
	b.Jump(d1store)

	b.SetBlock(d1store)
	b.StoreSh(b.Add(b.MulI(b.AddI(y0, 1), 17), b.AddI(x0, 1)), shTemp, best)
	b.Jump(d1latch)

	b.SetBlock(d1latch)
	m1 := b.AddI(m, 1)
	b.MovTo(m, m1)
	m2 := b.Mov(b.Const(nwB - 2)) // phase-2 index, counts down
	b.Branch(b.SetLT(m1, b.Const(nwB)), d1head, d2head)

	// Phase 2: descending anti-diagonals (m2 = 14..0); thread tx <= m2
	// computes (y0, x0) = (15-m2+tx, 15-tx).
	b.SetBlock(d2head)
	b.Branch(b.SetLE(b.TidX(), m2), d2comp, d2latch)

	b.SetBlock(d2comp)
	x2 := b.Sub(b.Const(nwB-1), b.TidX())
	y2 := b.Add(b.Sub(b.Const(nwB-1), m2), b.TidX())
	nwV2 := b.LoadSh(b.Add(b.MulI(y2, 17), x2), shTemp)
	wV2 := b.LoadSh(b.Add(b.MulI(b.AddI(y2, 1), 17), x2), shTemp)
	nV2 := b.LoadSh(b.Add(b.MulI(y2, 17), b.AddI(x2, 1)), shTemp)
	rV2 := b.LoadSh(b.Add(b.MulI(y2, nwB), x2), shRef)
	b.MovTo(best, b.Add(nwV2, rV2))
	wCand2 := b.Sub(wV2, b.Const(nwPenalty))
	b.Branch(b.SetLT(best, wCand2), d2w, d2n)

	b.SetBlock(d2w)
	b.MovTo(best, wCand2)
	b.Jump(d2n)

	b.SetBlock(d2n)
	nCand2 := b.Sub(nV2, b.Const(nwPenalty))
	b.Branch(b.SetLT(best, nCand2), d2nset, d2store)

	b.SetBlock(d2nset)
	b.MovTo(best, nCand2)
	b.Jump(d2store)

	b.SetBlock(d2store)
	b.StoreSh(b.Add(b.MulI(b.AddI(y2, 1), 17), b.AddI(x2, 1)), shTemp, best)
	b.Jump(d2latch)

	b.SetBlock(d2latch)
	m3 := b.AddI(m2, -1)
	b.MovTo(m2, m3)
	wr := b.Mov(b.Const(0))
	b.Branch(b.SetLE(b.Const(0), m3), d2head, wbLoop)

	// Write back the tile interior: row wr, column tx.
	b.SetBlock(wbLoop)
	dst := b.Add(origin(), b.Add(b.Mul(b.AddI(wr, 1), dimOf()), b.AddI(b.TidX(), 1)))
	b.Store(dst, 0, b.LoadSh(b.Add(b.MulI(b.AddI(wr, 1), 17), b.AddI(b.TidX(), 1)), shTemp))
	wr1 := b.AddI(wr, 1)
	b.MovTo(wr, wr1)
	b.Branch(b.SetLT(wr1, b.Const(nwB)), wbLoop, exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, dim*dim)
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			want[y*dim+x] = uint32(full[y*dim+x])
		}
	}
	// Cells outside the target tiles keep their seeded values (identical to
	// full), so comparing the whole matrix against `full` is exact.

	tileYBase := 0
	if descending {
		tileYBase = diag - tiles + 1
	}
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(ctas, nwB,
			uint32(dim), uint32(scoreBase), uint32(refBase), uint32(tileYBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, scoreBase, want, "nw.score")
		},
	}, nil
}
