package kernels

import "vgiw/internal/kir"

// pf ports Rodinia particlefilter's normalize_weights kernel: every particle
// divides its weight by the global sum (computed by an earlier reduction and
// passed in partial_sums[0]), and thread 0 seeds the resampling offset u[0].
func init() {
	register(Spec{
		Name:        "pf.normalize_weights",
		App:         "PF",
		Domain:      "Medical Imaging",
		Description: "Particle filter: weight normalization",
		PaperBlocks: 5,
		Class:       Compute,
		SGMF:        true,
		Build:       buildPF,
	})
}

func buildPF(scale int) (*Instance, error) {
	n := 4096 * clampScale(scale)
	weightBase := 0
	sumAddr := n
	uAddr := n + 1
	global := make([]uint32, n+2)
	r := newRNG(71)
	var sum float32
	// Mirror a host-side partial-sum reduction: accumulate in input order.
	for i := 0; i < n; i++ {
		w := r.f32Range(0.1, 2)
		global[weightBase+i] = kir.F32(w)
		sum = sum + w
	}
	global[sumAddr] = kir.F32(sum)

	b := kir.NewBuilder("pf.normalize_weights")
	b.SetParams(4) // n, weightBase, sumAddr, uAddr
	entry := b.NewBlock("entry")
	norm := b.NewBlock("norm")
	seed := b.NewBlock("seed")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	b.Branch(b.SetLT(tid, b.Param(0)), norm, exit)

	b.SetBlock(norm)
	addr := b.Add(b.Param(1), b.Tid())
	w := b.Load(addr, 0)
	total := b.Load(b.Param(2), 0)
	b.Store(addr, 0, b.FDiv(w, total))
	b.Branch(b.SetEQ(b.Tid(), b.Const(0)), seed, exit)

	b.SetBlock(seed)
	// u[0] = (1/N) * u1, with u1 a fixed uniform draw (the original uses a
	// device-side RNG; we pin the draw so results are reproducible).
	u1 := b.ConstF(0.5)
	invN := b.FDiv(b.ConstF(1), b.I2F(b.Param(0)))
	b.Store(b.Param(3), 0, b.FMul(invN, u1))
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, n)
	for i := 0; i < n; i++ {
		want[i] = kir.F32(kir.AsF32(global[i]) / sum)
	}
	wantU := kir.F32((1 / float32(n)) * 0.5)

	const blockX = 256
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(n/blockX, blockX,
			uint32(n), uint32(weightBase), uint32(sumAddr), uint32(uAddr)),
		Global: global,
		Check: func(final []uint32) error {
			if err := expectWords(final, weightBase, want, "pf.weights"); err != nil {
				return err
			}
			if final[uAddr] != wantU {
				return wordMismatch("pf.u", 0, final[uAddr], wantU)
			}
			return nil
		},
	}, nil
}
