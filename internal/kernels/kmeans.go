package kernels

import "vgiw/internal/kir"

// kmeans is Rodinia's `invert_mapping` kernel: transpose the feature matrix
// from point-major to feature-major layout.
//
//	if (point_id < npoints)
//	    for (i = 0; i < nfeatures; i++)
//	        output[point_id + npoints*i] = input[point_id*nfeatures + i]
func init() {
	register(Spec{
		Name:        "kmeans.invert_mapping",
		App:         "KMEANS",
		Domain:      "Data Mining",
		Description: "Clustering algorithm (feature matrix transpose)",
		PaperBlocks: 3,
		Class:       Memory,
		SGMF:        false, // data-dependent loop over features
		Build:       buildKmeans,
	})
}

func buildKmeans(scale int) (*Instance, error) {
	scale = clampScale(scale)
	npoints := 1024 * scale
	const nfeatures = 8
	const blockX = 128
	inBase, outBase := 0, npoints*nfeatures
	r := newRNG(11)
	global := make([]uint32, 2*npoints*nfeatures)
	for i := 0; i < npoints*nfeatures; i++ {
		global[i] = kir.F32(r.f32Range(-4, 4))
	}

	b := kir.NewBuilder("kmeans.invert_mapping")
	b.SetParams(4) // npoints, nfeatures, inBase, outBase
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	np := b.Param(0)
	guard := b.SetLT(tid, np)
	i := b.Const(0)
	b.Branch(guard, loop, exit)

	b.SetBlock(loop)
	// input index: tid*nfeatures + i; output index: i*npoints + tid.
	inAddr := b.Add(b.Param(2), b.Add(b.Mul(tid, b.Param(1)), i))
	v := b.Load(inAddr, 0)
	outAddr := b.Add(b.Param(3), b.Add(b.Mul(i, np), tid))
	b.Store(outAddr, 0, v)
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLT(i1, b.Param(1)), loop, exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, npoints*nfeatures)
	for p := 0; p < npoints; p++ {
		for f := 0; f < nfeatures; f++ {
			want[f*npoints+p] = global[p*nfeatures+f]
		}
	}

	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(npoints/blockX, blockX,
			uint32(npoints), nfeatures, uint32(inBase), uint32(outBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "kmeans.out")
		},
	}, nil
}
