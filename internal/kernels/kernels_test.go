package kernels

import (
	"testing"

	"vgiw/internal/compile"
	"vgiw/internal/fabric"
	"vgiw/internal/kir"
	"vgiw/internal/sgmf"
)

// TestRegistryComplete checks the registry covers Table 2's applications.
func TestRegistryComplete(t *testing.T) {
	apps := map[string]bool{}
	for _, s := range All() {
		apps[s.App] = true
	}
	for _, want := range []string{"BFS", "KMEANS", "CFD", "LUD", "GE", "HOTSPOT",
		"LAVAMD", "NN", "PF", "BPNN", "NW", "SM"} {
		if !apps[want] {
			t.Errorf("application %s missing from registry", want)
		}
	}
	if len(All()) < 13 {
		t.Errorf("registry has %d kernels, want >= 13", len(All()))
	}
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name] {
			t.Errorf("duplicate kernel name %s", s.Name)
		}
		seen[s.Name] = true
		if s.PaperBlocks <= 0 || s.Build == nil || s.Description == "" || s.Domain == "" {
			t.Errorf("kernel %s has incomplete metadata", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("nn.euclid"); !ok {
		t.Error("nn.euclid not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("found nonexistent kernel")
	}
	if len(Names()) != len(All()) {
		t.Error("Names/All mismatch")
	}
}

// TestAllKernelsMatchHostReference is the IR-correctness gate: the golden
// interpreter must reproduce each workload's host-side Go reference exactly.
func TestAllKernelsMatchHostReference(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Kernel.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := inst.Launch.Validate(); err != nil {
				t.Fatal(err)
			}
			in := &kir.Interp{Kernel: inst.Kernel, Launch: inst.Launch, Global: inst.Global}
			if err := in.Run(); err != nil {
				t.Fatal(err)
			}
			if err := inst.Check(inst.Global); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelsCompile checks every kernel survives the full compiler pipeline
// and that each block's DFG fits the default fabric.
func TestKernelsCompile(t *testing.T) {
	grid, err := fabric.NewGrid(fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := compile.CompileFitted(inst.Kernel, grid.Fits)
			if err != nil {
				t.Fatal(err)
			}
			for bi, g := range ck.DFGs {
				if fit := fabric.MaxReplicasFor(grid, g); fit == 0 {
					t.Errorf("block %d (%d nodes, %v) does not fit the fabric",
						bi, len(g.Nodes), g.ClassCounts())
				}
			}
			t.Logf("%s: %d blocks (paper: %d), %d instrs",
				spec.Name, len(ck.Kernel.Blocks), spec.PaperBlocks, ck.Kernel.NumInstrs())
		})
	}
}

// TestSGMFEligibilityClaims verifies the registry's SGMF flags against the
// actual SGMF compiler outcome (unrolling + if-conversion + placement).
func TestSGMFEligibilityClaims(t *testing.T) {
	m, err := sgmf.NewMachine(sgmf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if mappable := m.Supported(inst.Kernel); mappable != spec.SGMF {
				t.Errorf("SGMF flag %v but mappable=%v", spec.SGMF, mappable)
			}
		})
	}
}

// TestScalesProduceLargerInstances sanity-checks the scale knob.
func TestScalesProduceLargerInstances(t *testing.T) {
	spec, _ := ByName("nn.euclid")
	small, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if big.Launch.Threads() <= small.Launch.Threads() {
		t.Error("scale 2 not larger than scale 1")
	}
	if clamped, _ := spec.Build(-5); clamped.Launch.Threads() != small.Launch.Threads() {
		t.Error("negative scale should clamp to 1")
	}
}

// TestInstancesAreFresh: two builds must not share memory (machines mutate
// Global in place).
func TestInstancesAreFresh(t *testing.T) {
	spec, _ := ByName("ge.fan1")
	a, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	a.Global[0] ^= 0xFFFFFFFF
	if a.Global[0] == b.Global[0] {
		t.Error("instances share global memory")
	}
	if a.Kernel == b.Kernel {
		t.Error("instances share the kernel object")
	}
}

// TestKernelsScale2 revalidates every workload at a larger scale, guarding
// the input generators' scaling logic.
func TestKernelsScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(2)
			if err != nil {
				t.Fatal(err)
			}
			in := &kir.Interp{Kernel: inst.Kernel, Launch: inst.Launch, Global: inst.Global}
			if err := in.Run(); err != nil {
				t.Fatal(err)
			}
			if err := inst.Check(inst.Global); err != nil {
				t.Fatal(err)
			}
		})
	}
}
