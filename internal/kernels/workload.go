package kernels

import "vgiw/internal/kir"

// Workload is the shared, immutable product of one Spec.Build call: the
// pristine kernel IR, the launch configuration, the initial memory image, and
// the host-reference validator. It is the cacheable half of an Instance —
// everything a run needs that does not change between runs.
//
// Immutability contract: the cached kernel and image are never handed out
// directly. Compiler passes mutate kernels in place (block scheduling,
// rematerialization, fabric-driven splitting), so Kernel() returns a deep
// copy; machines mutate global memory in place, so Global() returns a private
// copy of the image. Launch and Check are shared — Launch is read-only by
// every simulator (Params is never written), and Check closures only read the
// expected-output slices captured at build time.
type Workload struct {
	Spec   Spec
	Scale  int
	Launch kir.Launch

	// Check validates a run's final global memory against the host
	// reference. Safe for concurrent use: it reads only its argument and
	// the expected values precomputed by Build.
	Check func(final []uint32) error

	kernel *kir.Kernel
	image  []uint32
}

// NewWorkload builds the spec once and freezes the result for sharing.
func NewWorkload(spec Spec, scale int) (*Workload, error) {
	inst, err := spec.Build(scale)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Spec:   spec,
		Scale:  scale,
		Launch: inst.Launch,
		Check:  inst.Check,
		kernel: inst.Kernel,
		image:  inst.Global,
	}, nil
}

// Kernel returns a private deep copy of the pristine kernel IR. Every
// compile consumes its own copy because the compiler reorders blocks, splits
// them, and renumbers registers in place.
func (w *Workload) Kernel() *kir.Kernel { return w.kernel.Clone() }

// Global is the copy-on-write handoff of the initial memory image: the cached
// image stays immutable and each caller receives a private mutable heap.
// Every benchmark writes its output into global memory, so the "write" always
// happens and the copy is taken eagerly at checkout — true page-level COW
// would pay the same copy plus per-store interception in the simulators.
func (w *Workload) Global() []uint32 {
	g := make([]uint32, len(w.image))
	copy(g, w.image)
	return g
}

// Words reports the memory image size (for sizing diagnostics).
func (w *Workload) Words() int { return len(w.image) }

// baseImage exposes the shared image for tests that verify run mutations
// never leak back into the cache.
func (w *Workload) baseImage() []uint32 { return w.image }

// Instance materializes a fresh runnable Instance from the shared artifact:
// a private kernel copy and a private memory image, with the shared launch
// and validator. Equivalent to Spec.Build but without re-synthesizing inputs.
func (w *Workload) Instance() *Instance {
	return &Instance{
		Kernel: w.Kernel(),
		Launch: w.Launch,
		Global: w.Global(),
		Check:  w.Check,
	}
}
