package kernels

import "vgiw/internal/kir"

// lud ports Rodinia's blocked LU decomposition kernels for one elimination
// step. The matrix is split into 16x16 tiles:
//
//	lud_diagonal  — factorize a diagonal tile in shared memory (batched:
//	                one CTA per diagonal tile, as independent subproblems);
//	lud_perimeter — update the step's row tiles (forward substitution with
//	                the unit-lower factor) and column tiles (solve against
//	                the upper factor);
//	lud_internal  — rank-BLOCK update of the trailing tiles.
const ludB = 16 // tile side (BLOCK_SIZE)

func init() {
	register(Spec{
		Name:        "lud.diagonal",
		App:         "LUD",
		Domain:      "Linear Algebra",
		Description: "LU decomposition: diagonal tile factorization",
		PaperBlocks: 11,
		Class:       Compute,
		SGMF:        false,
		Build:       buildLUDDiagonal,
	})
	register(Spec{
		Name:        "lud.perimeter",
		App:         "LUD",
		Domain:      "Linear Algebra",
		Description: "LU decomposition: perimeter tile updates",
		PaperBlocks: 22,
		Class:       Compute,
		SGMF:        false,
		Build:       buildLUDPerimeter,
	})
	register(Spec{
		Name:        "lud.internal",
		App:         "LUD",
		Domain:      "Linear Algebra",
		Description: "LU decomposition: interior tile update",
		PaperBlocks: 3,
		Class:       Compute,
		SGMF:        false,
		Build:       buildLUDInternal,
	})
}

// ludMatrix builds a well-conditioned matrix (diagonally dominant).
func ludMatrix(scale int) (dim int, global []uint32) {
	dim = 64 * clampScale(scale)
	global = make([]uint32, dim*dim)
	r := newRNG(131)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			v := r.f32Range(-1, 1)
			if i == j {
				v = r.f32Range(8, 16)
			}
			global[i*dim+j] = kir.F32(v)
		}
	}
	return
}

// buildLUDDiagonal: one CTA of ludB threads factorizes each diagonal tile
// in shared memory (load loop, the two-phase elimination loop with barriers,
// write-back loop — the structure that gives the original 11 blocks).
func buildLUDDiagonal(scale int) (*Instance, error) {
	dim, global := ludMatrix(scale)
	tiles := dim / ludB

	b := kir.NewBuilder("lud.diagonal")
	b.SetParams(1) // dim
	b.SetShared(ludB * ludB)

	entry := b.NewBlock("entry")
	loadLoop := b.NewBlock("load_loop")
	p1check := b.NewBlock("p1_check")
	p1init := b.NewBlock("p1_init")
	p1loop := b.NewBlock("p1_loop")
	p1post := b.NewBlock("p1_post")
	p2pre := b.NewBlock("p2_pre")
	p2init := b.NewBlock("p2_init")
	p2loop := b.NewBlock("p2_loop")
	p2post := b.NewBlock("p2_post")
	latch := b.NewBlock("latch")
	wbPre := b.NewBlock("wb_pre")
	wbLoop := b.NewBlock("wb_loop")
	exit := b.NewBlock("exit")
	b.MarkBarrier(p1check)
	b.MarkBarrier(p2pre)
	b.MarkBarrier(latch)
	b.MarkBarrier(wbPre)

	dimOf := func() kir.Reg { return b.Param(0) }
	// Tile origin in the matrix: offset = cta*ludB*(dim+1).
	origin := func() kir.Reg {
		off := b.Mul(b.CtaX(), b.Const(ludB))
		return b.Add(b.Mul(off, dimOf()), off)
	}

	b.SetBlock(entry)
	tx := b.TidX()
	i := b.Const(0)
	b.Jump(loadLoop)

	b.SetBlock(loadLoop)
	addr := b.Add(origin(), b.Add(b.Mul(i, dimOf()), tx))
	b.StoreSh(b.Add(b.MulI(i, ludB), tx), 0, b.Load(addr, 0))
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	ii := b.Mov(b.Const(0)) // elimination index, defined before the barrier
	b.Branch(b.SetLT(i1, b.Const(ludB)), loadLoop, p1check)

	// Phase 1: shadow[tx][ii] -= sum_j shadow[tx][j]*shadow[j][ii]; /= pivot.
	b.SetBlock(p1check)
	b.Branch(b.SetLT(ii, b.TidX()), p1init, p2pre)

	b.SetBlock(p1init)
	acc := b.Mov(b.LoadSh(b.Add(b.MulI(b.TidX(), ludB), ii), 0))
	j := b.Mov(b.Const(0))
	b.Branch(b.SetLT(j, ii), p1loop, p1post)

	b.SetBlock(p1loop)
	a1 := b.LoadSh(b.Add(b.MulI(b.TidX(), ludB), j), 0)
	b1 := b.LoadSh(b.Add(b.MulI(j, ludB), ii), 0)
	b.MovTo(acc, b.FSub(acc, b.FMul(a1, b1)))
	j1 := b.AddI(j, 1)
	b.MovTo(j, j1)
	b.Branch(b.SetLT(j1, ii), p1loop, p1post)

	b.SetBlock(p1post)
	pivot := b.LoadSh(b.Add(b.MulI(ii, ludB), ii), 0)
	b.StoreSh(b.Add(b.MulI(b.TidX(), ludB), ii), 0, b.FDiv(acc, pivot))
	b.Jump(p2pre)

	// Phase 2: shadow[ii+1][tx] -= sum_{j<=ii} shadow[ii+1][j]*shadow[j][tx].
	b.SetBlock(p2pre)
	b.Branch(b.SetLT(ii, b.TidX()), p2init, latch)

	b.SetBlock(p2init)
	row := b.AddI(ii, 1)
	acc2 := b.Mov(b.LoadSh(b.Add(b.MulI(row, ludB), b.TidX()), 0))
	j2 := b.Mov(b.Const(0))
	b.Branch(b.SetLE(j2, ii), p2loop, p2post)

	b.SetBlock(p2loop)
	a2 := b.LoadSh(b.Add(b.MulI(b.AddI(ii, 1), ludB), j2), 0)
	b2 := b.LoadSh(b.Add(b.MulI(j2, ludB), b.TidX()), 0)
	b.MovTo(acc2, b.FSub(acc2, b.FMul(a2, b2)))
	j3 := b.AddI(j2, 1)
	b.MovTo(j2, j3)
	b.Branch(b.SetLE(j3, ii), p2loop, p2post)

	b.SetBlock(p2post)
	b.StoreSh(b.Add(b.MulI(b.AddI(ii, 1), ludB), b.TidX()), 0, acc2)
	b.Jump(latch)

	b.SetBlock(latch)
	ii1 := b.AddI(ii, 1)
	b.MovTo(ii, ii1)
	b.Branch(b.SetLT(ii1, b.Const(ludB-1)), p1check, wbPre)

	// Write back rows 1..B-1 (row 0 is unchanged).
	b.SetBlock(wbPre)
	w := b.Mov(b.Const(1))
	b.Jump(wbLoop)

	b.SetBlock(wbLoop)
	wAddr := b.Add(origin(), b.Add(b.Mul(w, dimOf()), b.TidX()))
	b.Store(wAddr, 0, b.LoadSh(b.Add(b.MulI(w, ludB), b.TidX()), 0))
	w1 := b.AddI(w, 1)
	b.MovTo(w, w1)
	b.Branch(b.SetLT(w1, b.Const(ludB)), wbLoop, exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host reference: factorize each diagonal tile with the same phase
	// structure and float32 operation order.
	want := make([]uint32, len(global))
	copy(want, global)
	for t := 0; t < tiles; t++ {
		sh := make([]float32, ludB*ludB)
		for r0 := 0; r0 < ludB; r0++ {
			for c := 0; c < ludB; c++ {
				sh[r0*ludB+c] = kir.AsF32(global[(t*ludB+r0)*dim+t*ludB+c])
			}
		}
		for ii := 0; ii < ludB-1; ii++ {
			for tx := ii + 1; tx < ludB; tx++ {
				acc := sh[tx*ludB+ii]
				for j := 0; j < ii; j++ {
					acc = acc - sh[tx*ludB+j]*sh[j*ludB+ii]
				}
				sh[tx*ludB+ii] = acc / sh[ii*ludB+ii]
			}
			for tx := ii + 1; tx < ludB; tx++ {
				acc := sh[(ii+1)*ludB+tx]
				for j := 0; j <= ii; j++ {
					acc = acc - sh[(ii+1)*ludB+j]*sh[j*ludB+tx]
				}
				sh[(ii+1)*ludB+tx] = acc
			}
		}
		for r0 := 1; r0 < ludB; r0++ {
			for c := 0; c < ludB; c++ {
				want[(t*ludB+r0)*dim+t*ludB+c] = kir.F32(sh[r0*ludB+c])
			}
		}
	}

	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(tiles, ludB, uint32(dim)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, 0, want, "lud.diag")
		},
	}, nil
}

// buildLUDPerimeter: CTAs of 2*ludB threads update row tile (0, cta+1) and
// column tile (cta+1, 0) for elimination step 0. The diagonal tile is
// assumed already factorized (the instance pre-factorizes it host-side).
func buildLUDPerimeter(scale int) (*Instance, error) {
	dim, global := ludMatrix(scale)
	tiles := dim / ludB
	factorizeTile(global, dim, 0)

	b := kir.NewBuilder("lud.perimeter")
	b.SetParams(1)               // dim
	b.SetShared(3 * ludB * ludB) // dia | row | col

	entry := b.NewBlock("entry")
	loadLoop := b.NewBlock("load_loop")
	split := b.NewBlock("split")
	rowInit := b.NewBlock("row_init")
	rowOuter := b.NewBlock("row_outer")
	rowInner := b.NewBlock("row_inner")
	rowLatch := b.NewBlock("row_latch")
	colInit := b.NewBlock("col_init")
	colOuter := b.NewBlock("col_outer")
	colInner := b.NewBlock("col_inner")
	colPost := b.NewBlock("col_post")
	wbPre := b.NewBlock("wb_pre")
	wbRow := b.NewBlock("wb_row")
	wbCol := b.NewBlock("wb_col")
	exit := b.NewBlock("exit")
	b.MarkBarrier(split)
	b.MarkBarrier(wbPre)

	dimOf := func() kir.Reg { return b.Param(0) }
	// Tile bases: row tile (0, cta+1) at column (cta+1)*B; col tile
	// (cta+1, 0) at row (cta+1)*B.
	tileIdx := func() kir.Reg { return b.Mul(b.AddI(b.CtaX(), 1), b.Const(ludB)) }

	const shDia, shRow, shCol = 0, ludB * ludB, 2 * ludB * ludB

	b.SetBlock(entry)
	tx := b.TidX()
	idx := b.Rem(tx, b.Const(ludB)) // column within the tile
	i := b.Const(0)
	b.Jump(loadLoop)

	// Every thread loads one column of each of the three tiles (the two
	// half-warps duplicate the diagonal loads, as the original does).
	b.SetBlock(loadLoop)
	diaAddr := b.Add(b.Mul(i, dimOf()), idx)
	b.StoreSh(b.Add(b.MulI(i, ludB), idx), shDia, b.Load(diaAddr, 0))
	rowAddr := b.Add(b.Mul(i, dimOf()), b.Add(tileIdx(), idx))
	b.StoreSh(b.Add(b.MulI(i, ludB), idx), shRow, b.Load(rowAddr, 0))
	colAddr := b.Add(b.Mul(b.Add(tileIdx(), i), dimOf()), idx)
	b.StoreSh(b.Add(b.MulI(i, ludB), idx), shCol, b.Load(colAddr, 0))
	i1 := b.AddI(i, 1)
	b.MovTo(i, i1)
	b.Branch(b.SetLT(i1, b.Const(ludB)), loadLoop, split)

	b.SetBlock(split)
	isRowHalf := b.SetLT(b.TidX(), b.Const(ludB))
	b.Branch(isRowHalf, rowInit, colInit)

	// Row half: forward substitution with unit-lower dia:
	// for ii=1..B-1: row[ii][idx] -= sum_{j<ii} dia[ii][j]*row[j][idx].
	b.SetBlock(rowInit)
	ii := b.Mov(b.Const(1))
	b.Jump(rowOuter)

	b.SetBlock(rowOuter)
	accR := b.Mov(b.LoadSh(b.Add(b.MulI(ii, ludB), idx), shRow))
	jr := b.Mov(b.Const(0))
	b.Jump(rowInner)

	b.SetBlock(rowInner)
	d := b.LoadSh(b.Add(b.MulI(ii, ludB), jr), shDia)
	rv := b.LoadSh(b.Add(b.MulI(jr, ludB), idx), shRow)
	b.MovTo(accR, b.FSub(accR, b.FMul(d, rv)))
	jr1 := b.AddI(jr, 1)
	b.MovTo(jr, jr1)
	b.Branch(b.SetLT(jr1, ii), rowInner, rowLatch)

	b.SetBlock(rowLatch)
	b.StoreSh(b.Add(b.MulI(ii, ludB), idx), shRow, accR)
	ii1 := b.AddI(ii, 1)
	b.MovTo(ii, ii1)
	b.Branch(b.SetLT(ii1, b.Const(ludB)), rowOuter, wbPre)

	// Column half: solve against upper dia:
	// for ii=0..B-1: col[idx][ii] = (col[idx][ii] - sum_{j<ii} col[idx][j]*dia[j][ii]) / dia[ii][ii].
	b.SetBlock(colInit)
	cc := b.Mov(b.Const(0))
	b.Jump(colOuter)

	b.SetBlock(colOuter)
	accC := b.Mov(b.LoadSh(b.Add(b.MulI(idx, ludB), cc), shCol))
	jc := b.Mov(b.Const(0))
	b.Branch(b.SetLT(jc, cc), colInner, colPost)

	b.SetBlock(colInner)
	cv := b.LoadSh(b.Add(b.MulI(idx, ludB), jc), shCol)
	dv := b.LoadSh(b.Add(b.MulI(jc, ludB), cc), shDia)
	b.MovTo(accC, b.FSub(accC, b.FMul(cv, dv)))
	jc1 := b.AddI(jc, 1)
	b.MovTo(jc, jc1)
	b.Branch(b.SetLT(jc1, cc), colInner, colPost)

	b.SetBlock(colPost)
	pivotC := b.LoadSh(b.Add(b.MulI(cc, ludB), cc), shDia)
	b.StoreSh(b.Add(b.MulI(idx, ludB), cc), shCol, b.FDiv(accC, pivotC))
	cc1 := b.AddI(cc, 1)
	b.MovTo(cc, cc1)
	b.Branch(b.SetLT(cc1, b.Const(ludB)), colOuter, wbPre)

	// Write back: row half writes the row tile, col half the col tile.
	b.SetBlock(wbPre)
	wi := b.Mov(b.Const(0))
	b.Branch(b.SetLT(b.TidX(), b.Const(ludB)), wbRow, wbCol)

	b.SetBlock(wbRow)
	rAddr := b.Add(b.Mul(wi, dimOf()), b.Add(tileIdx(), idx))
	b.Store(rAddr, 0, b.LoadSh(b.Add(b.MulI(wi, ludB), idx), shRow))
	wi1 := b.AddI(wi, 1)
	b.MovTo(wi, wi1)
	b.Branch(b.SetLT(wi1, b.Const(ludB)), wbRow, exit)

	b.SetBlock(wbCol)
	cAddr := b.Add(b.Mul(b.Add(tileIdx(), wi), dimOf()), idx)
	b.Store(cAddr, 0, b.LoadSh(b.Add(b.MulI(wi, ludB), idx), shCol))
	wi2 := b.AddI(wi, 1)
	b.MovTo(wi, wi2)
	b.Branch(b.SetLT(wi2, b.Const(ludB)), wbCol, exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := ludPerimeterRef(global, dim)
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(tiles-1, 2*ludB, uint32(dim)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, 0, want, "lud.peri")
		},
	}, nil
}

// factorizeTile LU-factorizes the diagonal tile at step t in place, using
// the same phase order as the device kernel.
func factorizeTile(global []uint32, dim, t int) {
	base := t*ludB*dim + t*ludB
	at := func(r, c int) float32 { return kir.AsF32(global[base+r*dim+c]) }
	set := func(r, c int, v float32) { global[base+r*dim+c] = kir.F32(v) }
	for ii := 0; ii < ludB-1; ii++ {
		for tx := ii + 1; tx < ludB; tx++ {
			acc := at(tx, ii)
			for j := 0; j < ii; j++ {
				acc = acc - at(tx, j)*at(j, ii)
			}
			set(tx, ii, acc/at(ii, ii))
		}
		for tx := ii + 1; tx < ludB; tx++ {
			acc := at(ii+1, tx)
			for j := 0; j <= ii; j++ {
				acc = acc - at(ii+1, j)*at(j, tx)
			}
			set(ii+1, tx, acc)
		}
	}
}

// ludPerimeterRef computes the expected memory image after the perimeter
// kernel, mirroring the device arithmetic.
func ludPerimeterRef(global []uint32, dim int) []uint32 {
	want := make([]uint32, len(global))
	copy(want, global)
	tiles := dim / ludB
	dia := func(r, c int) float32 { return kir.AsF32(global[r*dim+c]) }
	for tI := 1; tI < tiles; tI++ {
		colBase := tI * ludB
		// Row tile (0, tI): forward substitution.
		row := make([]float32, ludB*ludB)
		for r := 0; r < ludB; r++ {
			for c := 0; c < ludB; c++ {
				row[r*ludB+c] = kir.AsF32(global[r*dim+colBase+c])
			}
		}
		for ii := 1; ii < ludB; ii++ {
			for idx := 0; idx < ludB; idx++ {
				acc := row[ii*ludB+idx]
				for j := 0; j < ii; j++ {
					acc = acc - dia(ii, j)*row[j*ludB+idx]
				}
				row[ii*ludB+idx] = acc
			}
		}
		for r := 0; r < ludB; r++ {
			for c := 0; c < ludB; c++ {
				want[r*dim+colBase+c] = kir.F32(row[r*ludB+c])
			}
		}
		// Col tile (tI, 0): solve against the upper factor. In the device
		// kernel, thread idx owns *row* idx of the tile (col[idx][cc]).
		col := make([]float32, ludB*ludB)
		for r := 0; r < ludB; r++ {
			for c := 0; c < ludB; c++ {
				col[r*ludB+c] = kir.AsF32(global[(colBase+r)*dim+c])
			}
		}
		for idx := 0; idx < ludB; idx++ {
			for cc := 0; cc < ludB; cc++ {
				acc := col[idx*ludB+cc]
				for j := 0; j < cc; j++ {
					acc = acc - col[idx*ludB+j]*dia(j, cc)
				}
				col[idx*ludB+cc] = acc / dia(cc, cc)
			}
		}
		for r := 0; r < ludB; r++ {
			for c := 0; c < ludB; c++ {
				want[(colBase+r)*dim+c] = kir.F32(col[r*ludB+c])
			}
		}
	}
	return want
}

// buildLUDInternal: 16x16 CTAs update the trailing tiles:
// a[i][j] -= sum_k col[ty][k] * row[k][tx].
func buildLUDInternal(scale int) (*Instance, error) {
	dim, global := ludMatrix(scale)
	tiles := dim / ludB
	factorizeTile(global, dim, 0)
	perim := ludPerimeterRef(global, dim)
	copy(global, perim) // internal runs after the perimeter kernel

	b := kir.NewBuilder("lud.internal")
	b.SetParams(1)               // dim
	b.SetShared(2 * ludB * ludB) // col strip | row strip

	const shCol, shRow = 0, ludB * ludB
	entry := b.NewBlock("entry")
	sumLoop := b.NewBlock("sum_loop")
	writeout := b.NewBlock("writeout")
	b.MarkBarrier(sumLoop)

	dimOf := func() kir.Reg { return b.Param(0) }

	b.SetBlock(entry)
	tx := b.TidX()
	ty := b.TidY()
	tileX := b.Mul(b.AddI(b.CtaX(), 1), b.Const(ludB))
	tileY := b.Mul(b.AddI(b.CtaY(), 1), b.Const(ludB))
	// Column strip element: a[tileY+ty][tx]; row strip: a[ty][tileX+tx].
	b.StoreSh(b.Add(b.MulI(ty, ludB), tx), shCol,
		b.Load(b.Add(b.Mul(b.Add(tileY, ty), dimOf()), tx), 0))
	b.StoreSh(b.Add(b.MulI(ty, ludB), tx), shRow,
		b.Load(b.Add(b.Mul(ty, dimOf()), b.Add(tileX, tx)), 0))
	kk := b.Mov(b.Const(0))
	sum := b.Mov(b.ConstF(0))
	b.Jump(sumLoop)

	b.SetBlock(sumLoop)
	cv := b.LoadSh(b.Add(b.MulI(b.TidY(), ludB), kk), shCol)
	rv := b.LoadSh(b.Add(b.MulI(kk, ludB), b.TidX()), shRow)
	b.MovTo(sum, b.FAdd(sum, b.FMul(cv, rv)))
	kk1 := b.AddI(kk, 1)
	b.MovTo(kk, kk1)
	b.Branch(b.SetLT(kk1, b.Const(ludB)), sumLoop, writeout)

	b.SetBlock(writeout)
	tileX2 := b.Mul(b.AddI(b.CtaX(), 1), b.Const(ludB))
	tileY2 := b.Mul(b.AddI(b.CtaY(), 1), b.Const(ludB))
	addr := b.Add(b.Mul(b.Add(tileY2, b.TidY()), dimOf()), b.Add(tileX2, b.TidX()))
	b.Store(addr, 0, b.FSub(b.Load(addr, 0), sum))
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, len(global))
	copy(want, global)
	for tY := 1; tY < tiles; tY++ {
		for tX := 1; tX < tiles; tX++ {
			for ty := 0; ty < ludB; ty++ {
				for tx := 0; tx < ludB; tx++ {
					sum := float32(0)
					for kk := 0; kk < ludB; kk++ {
						cv := kir.AsF32(global[(tY*ludB+ty)*dim+kk])
						rv := kir.AsF32(global[ty2row(kk)*dim+tX*ludB+tx])
						sum = sum + cv*rv
					}
					idx := (tY*ludB+ty)*dim + tX*ludB + tx
					want[idx] = kir.F32(kir.AsF32(global[idx]) - sum)
				}
			}
		}
	}

	return &Instance{
		Kernel: k,
		Launch: kir.Launch{GridX: tiles - 1, GridY: tiles - 1, BlockX: ludB, BlockY: ludB,
			Params: []uint32{uint32(dim)}},
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, 0, want, "lud.internal")
		},
	}, nil
}

// ty2row exists to keep the reference loop symmetric with the shared-memory
// indexing above (row strip rows are the first ludB matrix rows).
func ty2row(k int) int { return k }
