package kernels

import "vgiw/internal/kir"

// sm ports streamcluster's compute_cost kernel: every point scans the
// candidate centers, computes a weighted squared Euclidean distance in
// `dims` dimensions, and records the cheapest assignment.
func init() {
	register(Spec{
		Name:        "sm.compute_cost",
		App:         "SM",
		Domain:      "Data Mining",
		Description: "Streamcluster: assignment cost over candidate centers",
		PaperBlocks: 6,
		Class:       Compute,
		SGMF:        false, // loop over centers
		Build:       buildSM,
	})
}

func buildSM(scale int) (*Instance, error) {
	n := 1024 * clampScale(scale)
	const dims = 4
	const k = 8
	ptBase := 0
	wtBase := ptBase + n*dims
	ctrBase := wtBase + n
	costBase := ctrBase + k*dims
	assignBase := costBase + n
	global := make([]uint32, assignBase+n)
	r := newRNG(83)
	for i := 0; i < n*dims; i++ {
		global[ptBase+i] = kir.F32(r.f32Range(-8, 8))
	}
	for i := 0; i < n; i++ {
		global[wtBase+i] = kir.F32(r.f32Range(0.5, 1.5))
	}
	for i := 0; i < k*dims; i++ {
		global[ctrBase+i] = kir.F32(r.f32Range(-8, 8))
	}

	b := kir.NewBuilder("sm.compute_cost")
	b.SetParams(7) // n, k, ptBase, wtBase, ctrBase, costBase, assignBase
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	better := b.NewBlock("better")
	latch := b.NewBlock("latch")
	writeout := b.NewBlock("writeout")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	guard := b.SetLT(tid, b.Param(0))
	pt := b.Add(b.Param(2), b.MulI(tid, dims))
	weight := b.Load(b.Add(b.Param(3), tid), 0)
	best := b.Mov(b.ConstF(3.4e38))
	bestIdx := b.Mov(b.Const(-1))
	c := b.Const(0)
	b.Branch(guard, loop, exit)

	b.SetBlock(loop)
	ctr := b.Add(b.Param(4), b.MulI(c, dims))
	// Distance accumulates dimension by dimension (unrolled like the
	// original's inner loop with a compile-time dim count).
	dist := b.ConstF(0)
	for d := int32(0); d < dims; d++ {
		diff := b.FSub(b.Load(pt, d), b.Load(ctr, d))
		dist = b.FAdd(dist, b.FMul(diff, diff))
	}
	cost := b.FMul(weight, dist)
	b.Branch(b.FSetLT(cost, best), better, latch)

	b.SetBlock(better)
	b.MovTo(best, cost)
	b.MovTo(bestIdx, c)
	b.Jump(latch)

	b.SetBlock(latch)
	c1 := b.AddI(c, 1)
	b.MovTo(c, c1)
	b.Branch(b.SetLT(c1, b.Param(1)), loop, writeout)

	b.SetBlock(writeout)
	b.Store(b.Add(b.Param(5), b.Tid()), 0, best)
	b.Store(b.Add(b.Param(6), b.Tid()), 0, bestIdx)
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	kern, err := b.Build()
	if err != nil {
		return nil, err
	}

	wantCost := make([]uint32, n)
	wantIdx := make([]uint32, n)
	for i := 0; i < n; i++ {
		weight := kir.AsF32(global[wtBase+i])
		best := float32(3.4e38)
		bestIdx := int32(-1)
		for c := 0; c < k; c++ {
			dist := float32(0)
			for d := 0; d < dims; d++ {
				diff := kir.AsF32(global[ptBase+i*dims+d]) - kir.AsF32(global[ctrBase+c*dims+d])
				dist = dist + diff*diff
			}
			cost := weight * dist
			if cost < best {
				best, bestIdx = cost, int32(c)
			}
		}
		wantCost[i] = kir.F32(best)
		wantIdx[i] = uint32(bestIdx)
	}

	const blockX = 128
	return &Instance{
		Kernel: kern,
		Launch: kir.Launch1D(n/blockX, blockX,
			uint32(n), k, uint32(ptBase), uint32(wtBase), uint32(ctrBase),
			uint32(costBase), uint32(assignBase)),
		Global: global,
		Check: func(final []uint32) error {
			if err := expectWords(final, costBase, wantCost, "sm.cost"); err != nil {
				return err
			}
			return expectWords(final, assignBase, wantIdx, "sm.assign")
		},
	}, nil
}
