// Package kernels ports the Rodinia benchmark kernels of Table 2 to the
// kernel IR. Each workload bundles an IR builder, a deterministic synthetic
// input generator, a launch configuration, and a host-side Go reference used
// to validate every simulator's output.
//
// The CUDA sources these follow are the Rodinia 2.x kernels named in the
// paper; the ports keep the control-flow structure (and hence basic-block
// shape) of the originals while scaling inputs to laptop size.
package kernels

import (
	"fmt"

	"vgiw/internal/kir"
)

// Class coarsely characterizes a kernel for reporting (§5 divides kernels
// into computational and memory-bound categories; CFD's time_step is the
// pure-copy outlier).
type Class string

const (
	Compute Class = "compute"
	Memory  Class = "memory"
	Copy    Class = "copy"
)

// Spec describes one benchmark kernel.
type Spec struct {
	Name        string // registry key, e.g. "bfs.kernel1"
	App         string // application (Table 2), e.g. "BFS"
	Domain      string // application domain (Table 2)
	Description string
	PaperBlocks int   // basic-block count reported in Table 2
	Class       Class // performance class
	SGMF        bool  // expected to map onto the SGMF fabric

	// Build creates a fresh instance at the given scale (1 = default).
	Build func(scale int) (*Instance, error)
}

// Instance is one runnable workload: kernel + launch + initial memory +
// validation. Build a fresh instance per machine — compilation reorders
// blocks in place and machines mutate Global.
type Instance struct {
	Kernel *kir.Kernel
	Launch kir.Launch
	Global []uint32

	// Check validates the final global memory against the host reference.
	Check func(final []uint32) error
}

// registry is populated by the per-kernel files' init functions.
var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// All returns the benchmark registry in Table 2 order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// ByName finds a workload.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all registry keys.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// rng is a small deterministic xorshift32 generator so inputs are
// reproducible without external dependencies.
type rng uint32

func newRNG(seed uint32) *rng {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }

// f32 returns a float in [0, 1).
func (r *rng) f32() float32 { return float32(r.next()%(1<<20)) / float32(1<<20) }

// f32Range returns a float in [lo, hi).
func (r *rng) f32Range(lo, hi float32) float32 { return lo + (hi-lo)*r.f32() }

// expectWords checks the final memory region against expected values with
// exact bit equality (the references mirror the IR's float32 operation
// order, so results match bit for bit).
func expectWords(final []uint32, base int, want []uint32, what string) error {
	for i, w := range want {
		if final[base+i] != w {
			return fmt.Errorf("%s[%d] = %#x (%v), want %#x (%v)",
				what, i, final[base+i], kir.AsF32(final[base+i]), w, kir.AsF32(w))
		}
	}
	return nil
}

// clampScale normalizes the user-provided scale factor.
func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	if scale > 64 {
		return 64
	}
	return scale
}

// wordMismatch formats a single-word validation failure.
func wordMismatch(what string, i int, got, want uint32) error {
	return fmt.Errorf("%s[%d] = %#x (%v), want %#x (%v)",
		what, i, got, kir.AsF32(got), want, kir.AsF32(want))
}
