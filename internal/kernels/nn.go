package kernels

import (
	"math"

	"vgiw/internal/kir"
)

// nn is Rodinia's k-nearest-neighbors `euclid` kernel: each thread computes
// the Euclidean distance from one record's (lat, lng) to the query point.
//
//	if (gid < n) d[gid] = sqrt((lat-lat0)^2 + (lng-lng0)^2)
func init() {
	register(Spec{
		Name:        "nn.euclid",
		App:         "NN",
		Domain:      "Data Mining",
		Description: "K nearest neighbors distance computation",
		PaperBlocks: 2,
		Class:       Compute,
		SGMF:        true,
		Build:       buildNN,
	})
}

func buildNN(scale int) (*Instance, error) {
	scale = clampScale(scale)
	n := 2048 * scale
	const blockX = 128
	// Memory layout: [0,2n) interleaved lat/lng pairs; [2n,3n) distances.
	locBase, distBase := 0, 2*n
	r := newRNG(7)
	global := make([]uint32, 3*n)
	for i := 0; i < n; i++ {
		global[2*i] = kir.F32(r.f32Range(25, 50))      // lat
		global[2*i+1] = kir.F32(r.f32Range(-130, -60)) // lng
	}
	lat0, lng0 := float32(37.33), float32(-121.88)

	b := kir.NewBuilder("nn.euclid")
	b.SetParams(5) // n, lat0, lng0, locBase, distBase
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	inRange := b.SetLT(tid, b.Param(0))
	b.Branch(inRange, body, exit)

	b.SetBlock(body)
	loc := b.Add(b.Param(3), b.MulI(b.Tid(), 2))
	lat := b.Load(loc, 0)
	lng := b.Load(loc, 1)
	dlat := b.FSub(lat, b.Param(1))
	dlng := b.FSub(lng, b.Param(2))
	d := b.FSqrt(b.FAdd(b.FMul(dlat, dlat), b.FMul(dlng, dlng)))
	b.Store(b.Add(b.Param(4), b.Tid()), 0, d)
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host reference, mirroring the IR's float32 operation order.
	want := make([]uint32, n)
	for i := 0; i < n; i++ {
		lat := kir.AsF32(global[2*i])
		lng := kir.AsF32(global[2*i+1])
		dlat, dlng := lat-lat0, lng-lng0
		d := float32(math.Sqrt(float64(dlat*dlat + dlng*dlng)))
		want[i] = kir.F32(d)
	}

	ctas := (n + blockX - 1) / blockX
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(ctas, blockX,
			uint32(n), kir.F32(lat0), kir.F32(lng0), uint32(locBase), uint32(distBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, distBase, want, "nn.dist")
		},
	}, nil
}
