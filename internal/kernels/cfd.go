package kernels

import (
	"math"

	"vgiw/internal/kir"
)

// cfd ports four kernels from Rodinia's computational fluid dynamics solver
// (an unstructured Euler solver). Variables are stored struct-of-arrays:
// density, momentum x/y/z, energy — each a stride-nelr plane.
const (
	cfdVarDensity = 0
	cfdVarMomX    = 1
	cfdVarMomY    = 2
	cfdVarMomZ    = 3
	cfdVarEnergy  = 4
	cfdNVar       = 5
	cfdGamma      = 1.4
	cfdNNB        = 4 // neighbors per element
)

func init() {
	register(Spec{
		Name:        "cfd.initialize_variables",
		App:         "CFD",
		Domain:      "Fluid Dynamics",
		Description: "CFD solver: fill variable planes with far-field values",
		PaperBlocks: 1,
		Class:       Copy,
		SGMF:        true,
		Build:       buildCFDInit,
	})
	register(Spec{
		Name:        "cfd.compute_step_factor",
		App:         "CFD",
		Domain:      "Fluid Dynamics",
		Description: "CFD solver: per-element CFL step factor",
		PaperBlocks: 2,
		Class:       Compute,
		SGMF:        false, // graph exceeds the fabric
		Build:       buildCFDStepFactor,
	})
	register(Spec{
		Name:        "cfd.time_step",
		App:         "CFD",
		Domain:      "Fluid Dynamics",
		Description: "CFD solver: Euler update (pure data movement)",
		PaperBlocks: 1,
		Class:       Copy,
		SGMF:        false, // graph exceeds the fabric
		Build:       buildCFDTimeStep,
	})
	register(Spec{
		Name:        "cfd.compute_flux",
		App:         "CFD",
		Domain:      "Fluid Dynamics",
		Description: "CFD solver: per-face flux with boundary conditions",
		PaperBlocks: 12,
		Class:       Compute,
		SGMF:        false, // loops over neighbors
		Build:       buildCFDFlux,
	})
}

// cfdSize returns the element count at a scale.
func cfdSize(scale int) int { return 1024 * clampScale(scale) }

// buildCFDInit: variables[j*nelr + i] = ff[j] for the five planes (the
// original unrolls the j loop).
func buildCFDInit(scale int) (*Instance, error) {
	nelr := cfdSize(scale)
	varBase := 0
	global := make([]uint32, cfdNVar*nelr)
	ff := [cfdNVar]float32{1.4, 1.1, 0.2, 0.1, 2.5}

	b := kir.NewBuilder("cfd.initialize_variables")
	b.SetParams(2 + cfdNVar) // nelr, varBase, ff0..ff4
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	tid := b.Tid()
	nelrR := b.Param(0)
	base := b.Param(1)
	for j := 0; j < cfdNVar; j++ {
		addr := b.Add(base, b.Add(b.Mul(b.Const(int32(j)), nelrR), tid))
		b.Store(addr, 0, b.Param(2+j))
	}
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, cfdNVar*nelr)
	for j := 0; j < cfdNVar; j++ {
		for i := 0; i < nelr; i++ {
			want[j*nelr+i] = kir.F32(ff[j])
		}
	}
	params := []uint32{uint32(nelr), uint32(varBase)}
	for _, v := range ff {
		params = append(params, kir.F32(v))
	}
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(nelr/128, 128, params...),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, varBase, want, "cfd.init")
		},
	}, nil
}

// cfdFillVariables writes plausible flow variables.
func cfdFillVariables(r *rng, vars []uint32, nelr int) {
	for i := 0; i < nelr; i++ {
		density := r.f32Range(0.5, 2)
		vars[cfdVarDensity*nelr+i] = kir.F32(density)
		vars[cfdVarMomX*nelr+i] = kir.F32(r.f32Range(-1, 1) * density)
		vars[cfdVarMomY*nelr+i] = kir.F32(r.f32Range(-1, 1) * density)
		vars[cfdVarMomZ*nelr+i] = kir.F32(r.f32Range(-1, 1) * density)
		// Keep energy high enough for positive pressure.
		vars[cfdVarEnergy*nelr+i] = kir.F32(r.f32Range(4, 8) * density)
	}
}

// cfdStepFactorRef mirrors the kernel arithmetic for one element.
func cfdStepFactorRef(density, mx, my, mz, energy, area float32) float32 {
	invD := 1 / density
	sqd := (mx*mx + my*my + mz*mz) * (invD * invD)
	pressure := (cfdGamma - 1) * (energy - 0.5*(density*sqd))
	sound := float32(math.Sqrt(float64(cfdGamma * pressure * invD)))
	speed := float32(math.Sqrt(float64(sqd)))
	denom := float32(math.Sqrt(float64(area))) * (speed + sound)
	return 0.5 / denom
}

// buildCFDStepFactor: per-element CFL factor.
func buildCFDStepFactor(scale int) (*Instance, error) {
	nelr := cfdSize(scale)
	varBase := 0
	areaBase := cfdNVar * nelr
	outBase := areaBase + nelr
	global := make([]uint32, outBase+nelr)
	r := newRNG(23)
	cfdFillVariables(r, global[varBase:], nelr)
	for i := 0; i < nelr; i++ {
		global[areaBase+i] = kir.F32(r.f32Range(0.5, 3))
	}

	b := kir.NewBuilder("cfd.compute_step_factor")
	b.SetParams(4) // nelr, varBase, areaBase, outBase
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	tid := b.Tid()
	nelrR := b.Param(0)
	vb := b.Param(1)
	ld := func(plane int) kir.Reg {
		return b.Load(b.Add(vb, b.Add(b.Mul(b.Const(int32(plane)), nelrR), tid)), 0)
	}
	density := ld(cfdVarDensity)
	mx := ld(cfdVarMomX)
	my := ld(cfdVarMomY)
	mz := ld(cfdVarMomZ)
	energy := ld(cfdVarEnergy)
	invD := b.FDiv(b.ConstF(1), density)
	sqd := b.FMul(
		b.FAdd(b.FAdd(b.FMul(mx, mx), b.FMul(my, my)), b.FMul(mz, mz)),
		b.FMul(invD, invD))
	pressure := b.FMul(b.ConstF(cfdGamma-1),
		b.FSub(energy, b.FMul(b.ConstF(0.5), b.FMul(density, sqd))))
	sound := b.FSqrt(b.FMul(b.FMul(b.ConstF(cfdGamma), pressure), invD))
	speed := b.FSqrt(sqd)
	area := b.Load(b.Add(b.Param(2), tid), 0)
	denom := b.FMul(b.FSqrt(area), b.FAdd(speed, sound))
	b.Store(b.Add(b.Param(3), tid), 0, b.FDiv(b.ConstF(0.5), denom))
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, nelr)
	for i := 0; i < nelr; i++ {
		want[i] = kir.F32(cfdStepFactorRef(
			kir.AsF32(global[cfdVarDensity*nelr+i]),
			kir.AsF32(global[cfdVarMomX*nelr+i]),
			kir.AsF32(global[cfdVarMomY*nelr+i]),
			kir.AsF32(global[cfdVarMomZ*nelr+i]),
			kir.AsF32(global[cfdVarEnergy*nelr+i]),
			kir.AsF32(global[areaBase+i])))
	}
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(nelr/128, 128,
			uint32(nelr), uint32(varBase), uint32(areaBase), uint32(outBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "cfd.step_factor")
		},
	}, nil
}

// buildCFDTimeStep: variables = old + factor*fluxes for five planes — the
// paper's example of a kernel that "simply moves data from one array to
// another" and can show a slowdown on VGIW (§5).
func buildCFDTimeStep(scale int) (*Instance, error) {
	nelr := cfdSize(scale)
	oldBase := 0
	fluxBase := cfdNVar * nelr
	outBase := 2 * cfdNVar * nelr
	stepBase := 3 * cfdNVar * nelr
	global := make([]uint32, stepBase+nelr)
	r := newRNG(31)
	for i := 0; i < 2*cfdNVar*nelr; i++ {
		global[i] = kir.F32(r.f32Range(-2, 2))
	}
	for i := 0; i < nelr; i++ {
		global[stepBase+i] = kir.F32(r.f32Range(0.01, 0.1))
	}

	b := kir.NewBuilder("cfd.time_step")
	b.SetParams(5) // nelr, oldBase, fluxBase, outBase, stepBase
	blk := b.NewBlock("entry")
	b.SetBlock(blk)
	tid := b.Tid()
	nelrR := b.Param(0)
	factor := b.Load(b.Add(b.Param(4), tid), 0)
	for j := 0; j < cfdNVar; j++ {
		off := b.Add(b.Mul(b.Const(int32(j)), nelrR), tid)
		oldV := b.Load(b.Add(b.Param(1), off), 0)
		flux := b.Load(b.Add(b.Param(2), off), 0)
		b.Store(b.Add(b.Param(3), off), 0, b.FAdd(oldV, b.FMul(factor, flux)))
	}
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, cfdNVar*nelr)
	for j := 0; j < cfdNVar; j++ {
		for i := 0; i < nelr; i++ {
			oldV := kir.AsF32(global[oldBase+j*nelr+i])
			flux := kir.AsF32(global[fluxBase+j*nelr+i])
			factor := kir.AsF32(global[stepBase+i])
			want[j*nelr+i] = kir.F32(oldV + factor*flux)
		}
	}
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(nelr/128, 128,
			uint32(nelr), uint32(oldBase), uint32(fluxBase), uint32(outBase), uint32(stepBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "cfd.time_step")
		},
	}, nil
}

// buildCFDFlux: per element, loop over its four neighbors; interior faces
// (nb >= 0) exchange density flux, far-field faces (nb == -1) use free-stream
// values, wall faces (nb == -2) contribute pressure only. This keeps the
// original's loop + three-way boundary conditional (the divergence source).
func buildCFDFlux(scale int) (*Instance, error) {
	nelr := cfdSize(scale)
	varBase := 0                      // density plane only, simplified state
	nbBase := nelr                    // neighbor indices, nelr x 4
	normBase := nbBase + cfdNNB*nelr  // face normal magnitudes, nelr x 4
	outBase := normBase + cfdNNB*nelr // flux output
	global := make([]uint32, outBase+nelr)
	r := newRNG(41)
	for i := 0; i < nelr; i++ {
		global[varBase+i] = kir.F32(r.f32Range(0.5, 2))
	}
	for i := 0; i < nelr; i++ {
		for j := 0; j < cfdNNB; j++ {
			// ~70% interior, 15% far field, 15% wall.
			roll := r.intn(100)
			var nb int32
			switch {
			case roll < 70:
				nb = int32(r.intn(nelr))
			case roll < 85:
				nb = -1
			default:
				nb = -2
			}
			global[nbBase+j*nelr+i] = uint32(nb)
			global[normBase+j*nelr+i] = kir.F32(r.f32Range(0.1, 1))
		}
	}
	const ffDensity = float32(1.4)

	b := kir.NewBuilder("cfd.compute_flux")
	b.SetParams(5) // nelr, varBase, nbBase, normBase, outBase
	entry := b.NewBlock("entry")
	loop := b.NewBlock("loop")
	interior := b.NewBlock("interior")
	boundary := b.NewBlock("boundary")
	farfield := b.NewBlock("farfield")
	wall := b.NewBlock("wall")
	latch := b.NewBlock("latch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	nelrR := b.Param(0)
	density := b.Load(b.Add(b.Param(1), tid), 0)
	flux := b.Mov(b.ConstF(0))
	j := b.Const(0)
	b.Jump(loop)

	b.SetBlock(loop)
	off := b.Add(b.Mul(j, nelrR), tid)
	nb := b.Load(b.Add(b.Param(2), off), 0)
	norm := b.Load(b.Add(b.Param(3), off), 0)
	isInterior := b.SetLE(b.Const(0), nb)
	b.Branch(isInterior, interior, boundary)

	b.SetBlock(interior)
	dnb := b.Load(b.Add(b.Param(1), nb), 0)
	contrib := b.FMul(norm, b.FMul(b.ConstF(0.5), b.FAdd(density, dnb)))
	b.MovTo(flux, b.FAdd(flux, contrib))
	b.Jump(latch)

	b.SetBlock(boundary)
	isFar := b.SetEQ(nb, b.Const(-1))
	b.Branch(isFar, farfield, wall)

	b.SetBlock(farfield)
	ffContrib := b.FMul(norm, b.FMul(b.ConstF(0.5), b.FAdd(density, b.ConstF(ffDensity))))
	b.MovTo(flux, b.FAdd(flux, ffContrib))
	b.Jump(latch)

	b.SetBlock(wall)
	// Wall: pressure-like reflective contribution.
	b.MovTo(flux, b.FAdd(flux, b.FMul(norm, density)))
	b.Jump(latch)

	b.SetBlock(latch)
	j1 := b.AddI(j, 1)
	b.MovTo(j, j1)
	b.Branch(b.SetLT(j1, b.Const(cfdNNB)), loop, exit)

	b.SetBlock(exit)
	b.Store(b.Add(b.Param(4), b.Tid()), 0, flux)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, nelr)
	for i := 0; i < nelr; i++ {
		density := kir.AsF32(global[varBase+i])
		flux := float32(0)
		for j := 0; j < cfdNNB; j++ {
			nb := int32(global[nbBase+j*nelr+i])
			norm := kir.AsF32(global[normBase+j*nelr+i])
			switch {
			case nb >= 0:
				dnb := kir.AsF32(global[varBase+int(nb)])
				flux = flux + norm*(0.5*(density+dnb))
			case nb == -1:
				flux = flux + norm*(0.5*(density+ffDensity))
			default:
				flux = flux + norm*density
			}
		}
		want[i] = kir.F32(flux)
	}
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(nelr/128, 128,
			uint32(nelr), uint32(varBase), uint32(nbBase), uint32(normBase), uint32(outBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "cfd.flux")
		},
	}, nil
}
