package kernels

import (
	"math"

	"vgiw/internal/kir"
)

// lavamd ports Rodinia's molecular-dynamics kernel: particles interact with
// every particle in their own and neighboring boxes through an exponential
// potential. Boxes are arranged in 1-D here (the original uses a 3-D lattice
// with up to 26 neighbors); each thread owns one particle and accumulates
//
//	v += q_j * exp(-a2 * r2(i,j))
//
// over the particles j of boxes {home-1, home, home+1} (clamped at the chip
// edge). The nested loops plus edge conditionals mirror the original's
// control structure, and exp exercises the special compute units.
const (
	mdPerBox = 16
	mdA2     = float32(0.5)
)

func init() {
	register(Spec{
		Name:        "lavamd.kernel",
		App:         "LAVAMD",
		Domain:      "Molecular Dynamics",
		Description: "Particle potential over neighboring boxes",
		PaperBlocks: 21,
		Class:       Compute,
		SGMF:        false, // nested data-dependent loops
		Build:       buildLavaMD,
	})
}

func buildLavaMD(scale int) (*Instance, error) {
	boxes := 64 * clampScale(scale)
	n := boxes * mdPerBox
	posBase := 0 // x,y,z interleaved (3 words per particle)
	qBase := 3 * n
	outBase := qBase + n
	global := make([]uint32, outBase+n)
	r := newRNG(127)
	for i := 0; i < n; i++ {
		global[posBase+3*i+0] = kir.F32(r.f32Range(0, 4))
		global[posBase+3*i+1] = kir.F32(r.f32Range(0, 4))
		global[posBase+3*i+2] = kir.F32(r.f32Range(0, 4))
		global[qBase+i] = kir.F32(r.f32Range(0.1, 1))
	}

	b := kir.NewBuilder("lavamd.kernel")
	b.SetParams(5) // boxes, posBase, qBase, outBase, perBox
	entry := b.NewBlock("entry")
	oloop := b.NewBlock("oloop")
	inbounds := b.NewBlock("inbounds")
	iloop := b.NewBlock("iloop")
	ilatch := b.NewBlock("ilatch")
	olatch := b.NewBlock("olatch")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	perBox := b.Param(4)
	home := b.Div(tid, perBox)
	xi := b.Load(b.Add(b.Param(1), b.MulI(tid, 3)), 0)
	yi := b.Load(b.Add(b.Param(1), b.MulI(tid, 3)), 1)
	zi := b.Load(b.Add(b.Param(1), b.MulI(tid, 3)), 2)
	v := b.Mov(b.ConstF(0))
	k0 := b.Const(-1) // neighbor offset -1..1
	b.Jump(oloop)

	b.SetBlock(oloop)
	nb := b.Add(home, k0)
	lo := b.SetLE(b.Const(0), nb)
	hi := b.SetLT(nb, b.Param(0))
	b.Branch(b.And(lo, hi), inbounds, olatch)

	b.SetBlock(inbounds)
	j := b.Mov(b.Mul(nb, perBox)) // first particle of the neighbor box
	jEnd := b.Add(j, perBox)
	b.Jump(iloop)

	b.SetBlock(iloop)
	xj := b.Load(b.Add(b.Param(1), b.MulI(j, 3)), 0)
	yj := b.Load(b.Add(b.Param(1), b.MulI(j, 3)), 1)
	zj := b.Load(b.Add(b.Param(1), b.MulI(j, 3)), 2)
	dx := b.FSub(xi, xj)
	dy := b.FSub(yi, yj)
	dz := b.FSub(zi, zj)
	r2 := b.FAdd(b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy)), b.FMul(dz, dz))
	qj := b.Load(b.Add(b.Param(2), j), 0)
	contrib := b.FMul(qj, b.FExp(b.FNeg(b.FMul(b.ConstF(mdA2), r2))))
	b.MovTo(v, b.FAdd(v, contrib))
	b.Jump(ilatch)

	b.SetBlock(ilatch)
	j1 := b.AddI(j, 1)
	b.MovTo(j, j1)
	b.Branch(b.SetLT(j1, jEnd), iloop, olatch)

	b.SetBlock(olatch)
	k1 := b.AddI(k0, 1)
	b.MovTo(k0, k1)
	b.Branch(b.SetLE(k1, b.Const(1)), oloop, exit)

	b.SetBlock(exit)
	b.Store(b.Add(b.Param(3), b.Tid()), 0, v)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, n)
	for i := 0; i < n; i++ {
		home := i / mdPerBox
		xi := kir.AsF32(global[posBase+3*i])
		yi := kir.AsF32(global[posBase+3*i+1])
		zi := kir.AsF32(global[posBase+3*i+2])
		v := float32(0)
		for k0 := -1; k0 <= 1; k0++ {
			nb := home + k0
			if nb < 0 || nb >= boxes {
				continue
			}
			for j := nb * mdPerBox; j < (nb+1)*mdPerBox; j++ {
				dx := xi - kir.AsF32(global[posBase+3*j])
				dy := yi - kir.AsF32(global[posBase+3*j+1])
				dz := zi - kir.AsF32(global[posBase+3*j+2])
				r2 := (dx*dx + dy*dy) + dz*dz
				qj := kir.AsF32(global[qBase+j])
				v = v + qj*float32(math.Exp(float64(-(mdA2*r2))))
			}
		}
		want[i] = kir.F32(v)
	}

	const blockX = mdPerBox * 8 // 8 boxes per CTA
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(n/blockX, blockX,
			uint32(boxes), uint32(posBase), uint32(qBase), uint32(outBase), mdPerBox),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "lavamd.v")
		},
	}, nil
}
