package kernels

import "vgiw/internal/kir"

// gaussian ports Rodinia's Gaussian elimination kernels Fan1 and Fan2 for
// one elimination step t.
func init() {
	register(Spec{
		Name:        "ge.fan1",
		App:         "GE",
		Domain:      "Linear Algebra",
		Description: "Gaussian elimination: multiplier column",
		PaperBlocks: 2,
		Class:       Compute,
		SGMF:        true,
		Build:       buildFan1,
	})
	register(Spec{
		Name:        "ge.fan2",
		App:         "GE",
		Domain:      "Linear Algebra",
		Description: "Gaussian elimination: submatrix update",
		PaperBlocks: 5,
		Class:       Compute,
		SGMF:        false, // flattened graph exceeds the fabric
		Build:       buildFan2,
	})
}

// geMatrix builds a diagonally dominant size x size matrix (so pivots are
// well conditioned) plus the multiplier scratch area.
func geMatrix(scale int) (size int, global []uint32, aBase, mBase, bBase int) {
	size = 64 * clampScale(scale)
	aBase = 0
	mBase = size * size
	bBase = mBase + size*size
	global = make([]uint32, bBase+size)
	r := newRNG(53)
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			v := r.f32Range(-1, 1)
			if i == j {
				v = r.f32Range(4, 8)
			}
			global[aBase+i*size+j] = kir.F32(v)
		}
		global[bBase+i] = kir.F32(r.f32Range(-2, 2))
	}
	return
}

// buildFan1: m[(t+1+tid)*size + t] = a[(t+1+tid)*size + t] / a[t*size + t]
// for tid < size-1-t.
func buildFan1(scale int) (*Instance, error) {
	size, global, aBase, mBase, _ := geMatrix(scale)
	const t = 1 // elimination step being reproduced

	b := kir.NewBuilder("ge.fan1")
	b.SetParams(4) // size, t, aBase, mBase
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	tid := b.Tid()
	sz := b.Param(0)
	tReg := b.Param(1)
	limit := b.Sub(b.Sub(sz, b.Const(1)), tReg)
	b.Branch(b.SetLT(tid, limit), body, exit)

	b.SetBlock(body)
	row := b.Add(b.Add(tReg, b.Const(1)), tid)
	elem := b.Add(b.Param(2), b.Add(b.Mul(row, sz), tReg))
	pivot := b.Load(b.Add(b.Param(2), b.Add(b.Mul(tReg, sz), tReg)), 0)
	mult := b.FDiv(b.Load(elem, 0), pivot)
	b.Store(b.Add(b.Param(3), b.Add(b.Mul(row, sz), tReg)), 0, mult)
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, 0, size-1-t)
	pivotV := kir.AsF32(global[aBase+t*size+t])
	checkIdx := make([]int, 0, size-1-t)
	for tid := 0; tid < size-1-t; tid++ {
		row := t + 1 + tid
		v := kir.AsF32(global[aBase+row*size+t]) / pivotV
		want = append(want, kir.F32(v))
		checkIdx = append(checkIdx, mBase+row*size+t)
	}
	ctas := (size - 1 - t + 127) / 128
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(ctas, 128, uint32(size), t, uint32(aBase), uint32(mBase)),
		Global: global,
		Check: func(final []uint32) error {
			for i, idx := range checkIdx {
				if final[idx] != want[i] {
					return wordMismatch("ge.fan1", i, final[idx], want[i])
				}
			}
			return nil
		},
	}, nil
}

// buildFan2: 2-D update of the trailing submatrix:
//
//	if (x < size-1-t && y < size-t) {
//	    a[(x+t+1)*size + (y+t)] -= m[(x+t+1)*size + t] * a[t*size + (y+t)]
//	    if (y == 0) b[x+t+1] -= m[(x+t+1)*size + t] * b[t]
//	}
func buildFan2(scale int) (*Instance, error) {
	size, global, aBase, mBase, bBase := geMatrix(scale)
	const t = 1
	// Precompute the multipliers Fan1 would have produced.
	pivot := kir.AsF32(global[aBase+t*size+t])
	for row := t + 1; row < size; row++ {
		global[mBase+row*size+t] = kir.F32(kir.AsF32(global[aBase+row*size+t]) / pivot)
	}

	b := kir.NewBuilder("ge.fan2")
	b.SetParams(5) // size, t, aBase, mBase, bBase
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	bvec := b.NewBlock("bvec")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	x := b.Add(b.Mul(b.CtaX(), b.NTidX()), b.TidX())
	y := b.Add(b.Mul(b.CtaY(), b.NTidY()), b.TidY())
	sz := b.Param(0)
	tReg := b.Param(1)
	xOK := b.SetLT(x, b.Sub(b.Sub(sz, b.Const(1)), tReg))
	yOK := b.SetLT(y, b.Sub(sz, tReg))
	b.Branch(b.And(xOK, yOK), body, exit)

	b.SetBlock(body)
	row := b.Add(b.Add(x, tReg), b.Const(1))
	mult := b.Load(b.Add(b.Param(3), b.Add(b.Mul(row, sz), tReg)), 0)
	col := b.Add(y, tReg)
	aIdx := b.Add(b.Param(2), b.Add(b.Mul(row, sz), col))
	top := b.Load(b.Add(b.Param(2), b.Add(b.Mul(tReg, sz), col)), 0)
	cur := b.Load(aIdx, 0)
	b.Store(aIdx, 0, b.FSub(cur, b.FMul(mult, top)))
	b.Branch(b.SetEQ(y, b.Const(0)), bvec, exit)

	b.SetBlock(bvec)
	bIdx := b.Add(b.Param(4), row)
	bTop := b.Load(b.Add(b.Param(4), tReg), 0)
	bCur := b.Load(bIdx, 0)
	b.Store(bIdx, 0, b.FSub(bCur, b.FMul(mult, bTop)))
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host reference on copies.
	wantA := make([]float32, size*size)
	for i := range wantA {
		wantA[i] = kir.AsF32(global[aBase+i])
	}
	wantB := make([]float32, size)
	for i := range wantB {
		wantB[i] = kir.AsF32(global[bBase+i])
	}
	for x := 0; x < size-1-t; x++ {
		row := x + t + 1
		mult := kir.AsF32(global[mBase+row*size+t])
		for y := 0; y < size-t; y++ {
			col := y + t
			wantA[row*size+col] = wantA[row*size+col] - mult*kir.AsF32(global[aBase+t*size+col])
		}
		wantB[row] = wantB[row] - mult*kir.AsF32(global[bBase+t])
	}

	const bx, by = 16, 16
	gx := (size - 1 - t + bx - 1) / bx
	gy := (size - t + by - 1) / by
	return &Instance{
		Kernel: k,
		Launch: kir.Launch{GridX: gx, GridY: gy, BlockX: bx, BlockY: by,
			Params: []uint32{uint32(size), t, uint32(aBase), uint32(mBase), uint32(bBase)}},
		Global: global,
		Check: func(final []uint32) error {
			for i, w := range wantA {
				if final[aBase+i] != kir.F32(w) {
					return wordMismatch("ge.fan2.a", i, final[aBase+i], kir.F32(w))
				}
			}
			for i, w := range wantB {
				if final[bBase+i] != kir.F32(w) {
					return wordMismatch("ge.fan2.b", i, final[bBase+i], kir.F32(w))
				}
			}
			return nil
		},
	}, nil
}
