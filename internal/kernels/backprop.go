package kernels

import "vgiw/internal/kir"

// bpnn ports Rodinia backprop's two kernels. The network layer is HEIGHT
// input units wide; weights form a (HEIGHT+1) x WIDTH matrix (row 0 is the
// bias row, as in the original).
const (
	bpEta      = 0.3
	bpMomentum = 0.3
	bpHeight   = 16 // input units per CTA column (original uses 16)
)

func init() {
	register(Spec{
		Name:        "bpnn.adjust_weights",
		App:         "BPNN",
		Domain:      "Pattern Recognition",
		Description: "Neural network training: weight update",
		PaperBlocks: 3,
		Class:       Memory,
		SGMF:        false, // flattened graph exceeds the fabric
		Build:       buildBPAdjust,
	})
	register(Spec{
		Name:        "bpnn.layerforward",
		App:         "BPNN",
		Domain:      "Pattern Recognition",
		Description: "Neural network training: layer forward pass (shared-memory reduction)",
		PaperBlocks: 20,
		Class:       Compute,
		SGMF:        false, // barriers + reduction loop
		Build:       buildBPLayerForward,
	})
}

// buildBPAdjust:
//
//	w[idx]    += eta*delta[y]*ly[x] + momentum*oldw[idx]
//	oldw[idx]  = eta*delta[y]*ly[x] + momentum*oldw[idx]
func buildBPAdjust(scale int) (*Instance, error) {
	width := 1024 * clampScale(scale)
	rows := bpHeight + 1
	wBase := 0
	oldwBase := wBase + rows*width
	deltaBase := oldwBase + rows*width
	lyBase := deltaBase + width
	global := make([]uint32, lyBase+rows)
	r := newRNG(97)
	for i := 0; i < rows*width; i++ {
		global[wBase+i] = kir.F32(r.f32Range(-1, 1))
		global[oldwBase+i] = kir.F32(r.f32Range(-0.1, 0.1))
	}
	for i := 0; i < width; i++ {
		global[deltaBase+i] = kir.F32(r.f32Range(-0.5, 0.5))
	}
	for i := 0; i < rows; i++ {
		global[lyBase+i] = kir.F32(r.f32Range(0, 1))
	}

	b := kir.NewBuilder("bpnn.adjust_weights")
	b.SetParams(5) // width, wBase, oldwBase, deltaBase, lyBase
	entry := b.NewBlock("entry")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")

	b.SetBlock(entry)
	// The original indexes by (blockIdx.y, threadIdx): y spans the weight
	// row (1..HEIGHT), x the hidden unit. We flatten: tid = row*width+col
	// over rows 1..HEIGHT.
	tid := b.Tid()
	total := b.Mul(b.Const(bpHeight), b.Param(0))
	b.Branch(b.SetLT(tid, total), body, exit)

	b.SetBlock(body)
	width4 := b.Param(0)
	row := b.AddI(b.Div(b.Tid(), width4), 1)
	col := b.Rem(b.Tid(), width4)
	idx := b.Add(b.Mul(row, width4), col)
	delta := b.Load(b.Add(b.Param(3), col), 0)
	ly := b.Load(b.Add(b.Param(4), row), 0)
	oldw := b.Load(b.Add(b.Param(2), idx), 0)
	dw := b.FAdd(
		b.FMul(b.FMul(b.ConstF(bpEta), delta), ly),
		b.FMul(b.ConstF(bpMomentum), oldw))
	wAddr := b.Add(b.Param(1), idx)
	b.Store(wAddr, 0, b.FAdd(b.Load(wAddr, 0), dw))
	b.Store(b.Add(b.Param(2), idx), 0, dw)
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	wantW := make([]uint32, rows*width)
	wantOld := make([]uint32, rows*width)
	copy(wantW, global[wBase:wBase+rows*width])
	copy(wantOld, global[oldwBase:oldwBase+rows*width])
	for row := 1; row <= bpHeight; row++ {
		for col := 0; col < width; col++ {
			idx := row*width + col
			delta := kir.AsF32(global[deltaBase+col])
			ly := kir.AsF32(global[lyBase+row])
			oldw := kir.AsF32(global[oldwBase+idx])
			dw := (bpEta*delta)*ly + bpMomentum*oldw
			wantW[idx] = kir.F32(kir.AsF32(global[wBase+idx]) + dw)
			wantOld[idx] = kir.F32(dw)
		}
	}

	const blockX = 128
	threads := bpHeight * width
	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(threads/blockX, blockX,
			uint32(width), uint32(wBase), uint32(oldwBase), uint32(deltaBase), uint32(lyBase)),
		Global: global,
		Check: func(final []uint32) error {
			if err := expectWords(final, wBase, wantW, "bpnn.w"); err != nil {
				return err
			}
			return expectWords(final, oldwBase, wantOld, "bpnn.oldw")
		},
	}, nil
}

// buildBPLayerForward: each CTA column computes one hidden unit's weighted
// input sum via a shared-memory tree reduction with barriers:
//
//	sh[ty] = input[ty] * w[(ty+1)*width + unit]; barrier
//	for s in {1,2,4,8}: if ty % (2s) == 0: sh[ty] += sh[ty+s]; barrier
//	if ty == 0: out[unit] = sh[0]
func buildBPLayerForward(scale int) (*Instance, error) {
	units := 512 * clampScale(scale) // hidden units (one CTA each)
	rows := bpHeight + 1
	inBase := 0
	wBase := inBase + bpHeight
	outBase := wBase + rows*units
	global := make([]uint32, outBase+units)
	r := newRNG(101)
	for i := 0; i < bpHeight; i++ {
		global[inBase+i] = kir.F32(r.f32Range(0, 1))
	}
	for i := 0; i < rows*units; i++ {
		global[wBase+i] = kir.F32(r.f32Range(-1, 1))
	}

	b := kir.NewBuilder("bpnn.layerforward")
	b.SetParams(4) // units, inBase, wBase, outBase
	b.SetShared(bpHeight)

	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	ty := b.TidX()
	unit := b.CtaX()
	in := b.Load(b.Add(b.Param(1), ty), 0)
	w := b.Load(b.Add(b.Param(2), b.Add(b.Mul(b.AddI(ty, 1), b.Param(0)), unit)), 0)
	b.StoreSh(ty, 0, b.FMul(in, w))

	// Tree reduction, one barrier block per step (HEIGHT = 16 -> 4 steps).
	prev := entry
	for s := 1; s < bpHeight; s *= 2 {
		step := b.NewBlock("step")
		add := b.NewBlock("step_add")
		next := b.NewBlock("step_next")
		b.MarkBarrier(step)
		b.SetBlock(prev)
		b.Jump(step)

		b.SetBlock(step)
		tyS := b.TidX()
		cond := b.SetEQ(b.Rem(tyS, b.Const(int32(2*s))), b.Const(0))
		b.Branch(cond, add, next)

		b.SetBlock(add)
		a := b.LoadSh(b.TidX(), 0)
		bb := b.LoadSh(b.AddI(b.TidX(), int32(s)), 0)
		b.StoreSh(b.TidX(), 0, b.FAdd(a, bb))
		b.Jump(next)

		prev = next
	}

	writeout := b.NewBlock("writeout")
	exit := b.NewBlock("exit")
	b.MarkBarrier(writeout)
	b.SetBlock(prev)
	b.Jump(writeout)

	b.SetBlock(writeout)
	isZero := b.SetEQ(b.TidX(), b.Const(0))
	store := b.NewBlock("store")
	b.Branch(isZero, store, exit)

	b.SetBlock(store)
	b.Store(b.Add(b.Param(3), b.CtaX()), 0, b.LoadSh(b.Const(0), 0))
	b.Jump(exit)

	b.SetBlock(exit)
	b.Ret()
	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]uint32, units)
	for u := 0; u < units; u++ {
		sh := make([]float32, bpHeight)
		for ty := 0; ty < bpHeight; ty++ {
			sh[ty] = kir.AsF32(global[inBase+ty]) * kir.AsF32(global[wBase+(ty+1)*units+u])
		}
		for s := 1; s < bpHeight; s *= 2 {
			for ty := 0; ty < bpHeight; ty++ {
				if ty%(2*s) == 0 {
					sh[ty] = sh[ty] + sh[ty+s]
				}
			}
		}
		want[u] = kir.F32(sh[0])
	}

	return &Instance{
		Kernel: k,
		Launch: kir.Launch1D(units, bpHeight,
			uint32(units), uint32(inBase), uint32(wBase), uint32(outBase)),
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "bpnn.out")
		},
	}, nil
}
