package kernels

import "vgiw/internal/kir"

// hotspot ports Rodinia's thermal simulation stencil: one Jacobi step of
//
//	out = t + cap*(power + (n+s-2t)*Ry + (e+w-2t)*Rx + (amb-t)*Rz)
//
// Each CTA stages its 16x16 temperature tile in shared memory (as the
// original's pyramid kernel does) and synchronizes before computing. Like
// the original, boundary handling clamps the neighbor *indices* arithmetically
// (min/max) instead of branching; neighbors that fall outside the tile are
// fetched from global memory (the original re-reads halo cells, too).
const (
	hsTile = 16
	hsRx   = float32(0.1)
	hsRy   = float32(0.12)
	hsRz   = float32(0.05)
	hsCap  = float32(0.5)
	hsAmb  = float32(80.0)
)

func init() {
	register(Spec{
		Name:        "hotspot.kernel",
		App:         "HOTSPOT",
		Domain:      "Physics Simulation",
		Description: "Thermal simulation stencil (shared-memory tiles)",
		PaperBlocks: 27,
		Class:       Compute,
		SGMF:        false, // barriers
		Build:       buildHotspot,
	})
}

func buildHotspot(scale int) (*Instance, error) {
	side := hsTile * 4 * clampScale(scale) // chip side in cells
	n := side * side
	tempBase := 0
	powerBase := n
	outBase := 2 * n
	global := make([]uint32, 3*n)
	r := newRNG(113)
	for i := 0; i < n; i++ {
		global[tempBase+i] = kir.F32(r.f32Range(320, 340))
		global[powerBase+i] = kir.F32(r.f32Range(0, 1))
	}

	b := kir.NewBuilder("hotspot.kernel")
	b.SetParams(4) // side, tempBase, powerBase, outBase
	b.SetShared(hsTile * hsTile)

	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	tx := b.TidX()
	ty := b.TidY()
	x := b.Add(b.Mul(b.CtaX(), b.Const(hsTile)), tx)
	y := b.Add(b.Mul(b.CtaY(), b.Const(hsTile)), ty)
	side4 := b.Param(0)
	idx := b.Add(b.Mul(y, side4), x)
	b.StoreSh(b.Add(b.Mul(ty, b.Const(hsTile)), tx), 0, b.Load(b.Add(b.Param(1), idx), 0))

	compute := b.NewBlock("compute")
	b.MarkBarrier(compute)
	b.Jump(compute)

	b.SetBlock(compute)
	tx2 := b.TidX()
	ty2 := b.TidY()
	x2 := b.Add(b.Mul(b.CtaX(), b.Const(hsTile)), tx2)
	y2 := b.Add(b.Mul(b.CtaY(), b.Const(hsTile)), ty2)
	side2 := b.Param(0)
	idx2 := b.Add(b.Mul(y2, side2), x2)
	tC := b.LoadSh(b.Add(b.Mul(ty2, b.Const(hsTile)), tx2), 0)
	p := b.Load(b.Add(b.Param(2), idx2), 0)

	// Clamped neighbor indices (min/max arithmetic, like the original).
	zero := b.Const(0)
	last := b.Sub(side2, b.Const(1))
	yN := b.Max(b.Sub(y2, b.Const(1)), zero)
	yS := b.Min(b.Add(y2, b.Const(1)), last)
	xW := b.Max(b.Sub(x2, b.Const(1)), zero)
	xE := b.Min(b.Add(x2, b.Const(1)), last)
	tBase := b.Param(1)
	nV := b.Load(b.Add(tBase, b.Add(b.Mul(yN, side2), x2)), 0)
	sV := b.Load(b.Add(tBase, b.Add(b.Mul(yS, side2), x2)), 0)
	wV := b.Load(b.Add(tBase, b.Add(b.Mul(y2, side2), xW)), 0)
	eV := b.Load(b.Add(tBase, b.Add(b.Mul(y2, side2), xE)), 0)

	two := b.ConstF(2)
	dv := b.FAdd(p,
		b.FAdd(
			b.FAdd(
				b.FMul(b.FSub(b.FAdd(nV, sV), b.FMul(two, tC)), b.ConstF(hsRy)),
				b.FMul(b.FSub(b.FAdd(eV, wV), b.FMul(two, tC)), b.ConstF(hsRx))),
			b.FMul(b.FSub(b.ConstF(hsAmb), tC), b.ConstF(hsRz))))
	out := b.FAdd(tC, b.FMul(b.ConstF(hsCap), dv))
	b.Store(b.Add(b.Param(3), idx2), 0, out)
	b.Ret()

	k, err := b.Build()
	if err != nil {
		return nil, err
	}

	// Host reference (clamped indices, same float32 order).
	temp := func(y, x int) float32 { return kir.AsF32(global[tempBase+y*side+x]) }
	clamp := func(v int) int {
		if v < 0 {
			return 0
		}
		if v > side-1 {
			return side - 1
		}
		return v
	}
	want := make([]uint32, n)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			tC := temp(y, x)
			nV := temp(clamp(y-1), x)
			sV := temp(clamp(y+1), x)
			wV := temp(y, clamp(x-1))
			eV := temp(y, clamp(x+1))
			p := kir.AsF32(global[powerBase+y*side+x])
			dv := p + (((nV+sV)-2*tC)*hsRy + ((eV+wV)-2*tC)*hsRx + (hsAmb-tC)*hsRz)
			want[y*side+x] = kir.F32(tC + hsCap*dv)
		}
	}

	tiles := side / hsTile
	return &Instance{
		Kernel: k,
		Launch: kir.Launch{GridX: tiles, GridY: tiles, BlockX: hsTile, BlockY: hsTile,
			Params: []uint32{uint32(side), uint32(tempBase), uint32(powerBase), uint32(outBase)}},
		Global: global,
		Check: func(final []uint32) error {
			return expectWords(final, outBase, want, "hotspot.out")
		},
	}, nil
}
