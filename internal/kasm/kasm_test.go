package kasm

import (
	"strings"
	"testing"

	"vgiw/internal/kernels"
	"vgiw/internal/kir"
)

const saxpySrc = `
# y[i] = a*x[i] + y[i] with a bounds guard
kernel saxpy params=4 shared=0
@0 entry:
  r0 = tid
  r1 = param 0
  r2 = setlt r0 r1
  br r2 @1 @2
@1 body:
  r3 = tid
  r4 = param 1
  r5 = param 2
  r6 = param 3
  r7 = add r5 r3
  r8 = add r6 r3
  r9 = ld r7
  r10 = ld r8 +0
  r11 = fmul r4 r9
  r12 = fadd r11 r10
  st r8 r12
  jmp @2
@2 exit:
  ret
`

func TestParseSaxpyAndRun(t *testing.T) {
	k, err := Parse(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "saxpy" || k.NumParams != 4 || len(k.Blocks) != 3 {
		t.Fatalf("parsed kernel wrong: %s params=%d blocks=%d", k.Name, k.NumParams, len(k.Blocks))
	}
	const n = 64
	mem := make([]uint32, 2*n)
	for i := 0; i < n; i++ {
		mem[i] = kir.F32(float32(i))
		mem[n+i] = kir.F32(1)
	}
	in := &kir.Interp{
		Kernel: k,
		Launch: kir.Launch1D(2, 32, n, kir.F32(0.5), 0, n),
		Global: mem,
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := kir.F32(0.5*float32(i) + 1)
		if mem[n+i] != want {
			t.Fatalf("y[%d] = %v, want %v", i, kir.AsF32(mem[n+i]), kir.AsF32(want))
		}
	}
}

// Round trip: every registered benchmark kernel prints to kasm and parses
// back to an equivalent kernel.
func TestRoundTripAllBenchmarks(t *testing.T) {
	for _, spec := range kernels.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			text := Print(inst.Kernel)
			k2, err := Parse(text)
			if err != nil {
				t.Fatalf("parse failed: %v\n%s", err, firstLines(text, 12))
			}
			if k2.Name != inst.Kernel.Name || len(k2.Blocks) != len(inst.Kernel.Blocks) {
				t.Fatalf("structure mismatch after round trip")
			}
			if Print(k2) != text {
				t.Error("second print differs from first (not a fixed point)")
			}
		})
	}
}

func TestParseFloatImmediate(t *testing.T) {
	k, err := Parse("kernel f params=0 shared=0\n@0 e:\n  r0 = const f:1.5\n  ret\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := kir.AsF32(uint32(k.Blocks[0].Instrs[0].Imm)); got != 1.5 {
		t.Errorf("float immediate = %v, want 1.5", got)
	}
}

func TestParseBarrierAttribute(t *testing.T) {
	src := `kernel b params=0 shared=4
@0 entry:
  r0 = tidx
  stsh r0 r0
  jmp @1
@1 after: barrier
  r1 = ldsh r0
  ret
`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Blocks[1].Barrier {
		t.Error("barrier attribute not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no header":          "@0 e:\n  ret\n",
		"bad opcode":         "kernel k params=0 shared=0\n@0 e:\n  r0 = frobnicate r1\n  ret\n",
		"unterminated":       "kernel k params=0 shared=0\n@0 e:\n  r0 = tid\n",
		"wrong block index":  "kernel k params=0 shared=0\n@7 e:\n  ret\n",
		"bad arity":          "kernel k params=0 shared=0\n@0 e:\n  r0 = add r1\n  ret\n",
		"stmt after ret":     "kernel k params=0 shared=0\n@0 e:\n  ret\n  r0 = tid\n",
		"bad register":       "kernel k params=0 shared=0\n@0 e:\n  r0 = mov bogus\n  ret\n",
		"bad target":         "kernel k params=0 shared=0\n@0 e:\n  jmp @9\n",
		"param out of range": "kernel k params=1 shared=0\n@0 e:\n  r0 = param 3\n  ret\n",
		"dup header":         "kernel k params=0 shared=0\nkernel k2 params=0 shared=0\n@0 e:\n  ret\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
