// Package kasm is a textual assembly format for the kernel IR — the
// repository's stand-in for the paper's CUDA/LLVM frontend when a kernel is
// authored by hand. kir.Kernel.String() emits the same syntax, so kernels
// round-trip through text.
//
// Grammar (line oriented; '#' starts a comment):
//
//	kernel NAME params=N shared=W
//	@I LABEL:            — block header; append " barrier" for __syncthreads
//	  rD = OP rA rB ...  — instruction with a destination
//	  rD = const IMM     — integer constant (use 0x... or f:1.5 for floats)
//	  rD = param I       — launch parameter
//	  rD = ld rA [+OFF]  — loads take an optional word offset
//	  st rA rV [+OFF]    — stores name address then value
//	  jmp @I             — unconditional terminator
//	  br rC @T @F        — conditional terminator
//	  ret                — thread exit
package kasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vgiw/internal/kir"
)

// Parse builds a kernel from kasm source text. Every instruction, block, and
// terminator records its source position (kir.Pos), so verifier diagnostics
// for parsed kernels point back at the offending assembly line.
func Parse(src string) (*kir.Kernel, error) {
	p := &parser{k: &kir.Kernel{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		p.pos = kir.Pos{
			Line: int32(lineNo + 1),
			Col:  int32(len(line) - len(strings.TrimLeft(line, " \t")) + 1),
		}
		if err := p.line(trimmed); err != nil {
			return nil, fmt.Errorf("kasm: line %d: %w", lineNo+1, err)
		}
	}
	if p.k.Name == "" {
		return nil, fmt.Errorf("kasm: missing kernel header")
	}
	if p.cur != nil && !p.terminated {
		return nil, fmt.Errorf("kasm: block %q not terminated", p.cur.Label)
	}
	if err := p.k.Validate(); err != nil {
		return nil, err
	}
	return p.k, nil
}

type parser struct {
	k          *kir.Kernel
	cur        *kir.Block
	terminated bool
	pos        kir.Pos // position of the line currently being parsed
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "kernel "):
		return p.header(line)
	case strings.HasPrefix(line, "@"):
		return p.blockHeader(line)
	}
	if p.cur == nil {
		return fmt.Errorf("statement before first block header")
	}
	if p.terminated {
		return fmt.Errorf("statement after terminator in block %q", p.cur.Label)
	}
	return p.stmt(line)
}

func (p *parser) header(line string) error {
	if p.k.Name != "" {
		return fmt.Errorf("duplicate kernel header")
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("kernel header needs a name")
	}
	p.k.Name = fields[1]
	for _, f := range fields[2:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad header field %q", f)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad header value %q", f)
		}
		switch kv[0] {
		case "params":
			p.k.NumParams = n
		case "shared":
			p.k.SharedWds = n
		default:
			return fmt.Errorf("unknown header field %q", kv[0])
		}
	}
	return nil
}

func (p *parser) blockHeader(line string) error {
	if p.cur != nil && !p.terminated {
		return fmt.Errorf("block %q not terminated", p.cur.Label)
	}
	rest := strings.TrimPrefix(line, "@")
	fields := strings.Fields(rest)
	if len(fields) < 2 || !strings.HasSuffix(fields[1], ":") {
		return fmt.Errorf("block header must be '@I label:'")
	}
	idx, err := strconv.Atoi(fields[0])
	if err != nil || idx != len(p.k.Blocks) {
		return fmt.Errorf("block index must be %d, got %q", len(p.k.Blocks), fields[0])
	}
	b := &kir.Block{Label: strings.TrimSuffix(fields[1], ":"), Pos: p.pos}
	for _, f := range fields[2:] {
		if f == "barrier" {
			b.Barrier = true
		} else {
			return fmt.Errorf("unknown block attribute %q", f)
		}
	}
	p.k.Blocks = append(p.k.Blocks, b)
	p.cur = b
	p.terminated = false
	return nil
}

func (p *parser) stmt(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "jmp":
		if len(fields) != 2 {
			return fmt.Errorf("jmp takes one target")
		}
		t, err := blockRef(fields[1])
		if err != nil {
			return err
		}
		p.cur.Term = kir.Terminator{Kind: kir.TermJump, Then: t, Pos: p.pos}
		p.terminated = true
		return nil
	case "br":
		if len(fields) != 4 {
			return fmt.Errorf("br takes cond and two targets")
		}
		c, err := regRef(fields[1])
		if err != nil {
			return err
		}
		then, err := blockRef(fields[2])
		if err != nil {
			return err
		}
		els, err := blockRef(fields[3])
		if err != nil {
			return err
		}
		p.cur.Term = kir.Terminator{Kind: kir.TermBranch, Cond: c, Then: then, Else: els, Pos: p.pos}
		p.noteReg(c)
		p.terminated = true
		return nil
	case "ret":
		p.cur.Term = kir.Terminator{Kind: kir.TermRet, Pos: p.pos}
		p.terminated = true
		return nil
	}

	// Instruction: either "rD = op ..." or a store "st rA rV [+off]".
	if fields[0] == "st" || fields[0] == "stsh" {
		op, _ := kir.OpByName(fields[0])
		if len(fields) < 3 {
			return fmt.Errorf("%s takes address and value registers", fields[0])
		}
		addr, err := regRef(fields[1])
		if err != nil {
			return err
		}
		val, err := regRef(fields[2])
		if err != nil {
			return err
		}
		in := kir.Instr{Op: op, Dst: kir.NoReg, Src: [3]kir.Reg{addr, val, kir.NoReg}, Pos: p.pos}
		if len(fields) == 4 {
			off, err := offRef(fields[3])
			if err != nil {
				return err
			}
			in.Imm = off
		} else if len(fields) > 4 {
			return fmt.Errorf("trailing tokens after store")
		}
		p.noteReg(addr)
		p.noteReg(val)
		p.cur.Instrs = append(p.cur.Instrs, in)
		return nil
	}

	if len(fields) < 3 || fields[1] != "=" {
		return fmt.Errorf("expected 'rD = op ...' or a terminator, got %q", line)
	}
	dst, err := regRef(fields[0])
	if err != nil {
		return err
	}
	op, ok := kir.OpByName(fields[2])
	if !ok {
		return fmt.Errorf("unknown opcode %q", fields[2])
	}
	if !op.HasDst() {
		return fmt.Errorf("%v cannot have a destination", op)
	}
	in := kir.Instr{Op: op, Dst: dst, Src: [3]kir.Reg{kir.NoReg, kir.NoReg, kir.NoReg}, Pos: p.pos}
	args := fields[3:]
	switch op {
	case kir.OpConst:
		if len(args) != 1 {
			return fmt.Errorf("const takes one immediate")
		}
		imm, err := immRef(args[0])
		if err != nil {
			return err
		}
		in.Imm = imm
	case kir.OpParam:
		if len(args) != 1 {
			return fmt.Errorf("param takes one index")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("bad param index %q", args[0])
		}
		in.Imm = int32(n)
	default:
		nsrc := op.NumSrc()
		// Loads allow a trailing +offset.
		if op.IsLoad() && len(args) == nsrc+1 {
			off, err := offRef(args[nsrc])
			if err != nil {
				return err
			}
			in.Imm = off
			args = args[:nsrc]
		}
		if len(args) != nsrc {
			return fmt.Errorf("%v takes %d sources, got %d", op, nsrc, len(args))
		}
		for i, a := range args {
			r, err := regRef(a)
			if err != nil {
				return err
			}
			in.Src[i] = r
			p.noteReg(r)
		}
	}
	p.noteReg(dst)
	p.cur.Instrs = append(p.cur.Instrs, in)
	return nil
}

// noteReg grows the kernel's register space to cover r.
func (p *parser) noteReg(r kir.Reg) {
	if int(r) >= p.k.NumRegs {
		p.k.NumRegs = int(r) + 1
	}
}

func regRef(s string) (kir.Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return kir.NoReg, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return kir.NoReg, fmt.Errorf("bad register %q", s)
	}
	return kir.Reg(n), nil
}

func blockRef(s string) (int, error) {
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("expected block reference, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad block reference %q", s)
	}
	return n, nil
}

func offRef(s string) (int32, error) {
	if !strings.HasPrefix(s, "+") && !strings.HasPrefix(s, "-") {
		return 0, fmt.Errorf("expected offset (+N), got %q", s)
	}
	n, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad offset %q", s)
	}
	return int32(n), nil
}

// immRef parses integer immediates (decimal or 0x hex) and float immediates
// written as f:VALUE (stored as the float32 bit pattern).
func immRef(s string) (int32, error) {
	if strings.HasPrefix(s, "f:") {
		f, err := strconv.ParseFloat(s[2:], 32)
		if err != nil {
			return 0, fmt.Errorf("bad float immediate %q", s)
		}
		return int32(math.Float32bits(float32(f))), nil
	}
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(n), nil
}

// Print renders a kernel in parseable kasm form (kir.Kernel.String emits the
// same syntax).
func Print(k *kir.Kernel) string { return k.String() }
