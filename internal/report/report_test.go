package report

import (
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Headers: []string{"Name", "Value", "Ratio"},
	}
	t.AddRow("alpha", 42, 1.5)
	t.AddRow("beta-long-name", uint64(7), float32(0.25))
	t.AddRow("g", "x", 2.0)
	return t
}

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	if err := sample().Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	// Header and separator must align; every data row starts at column 0
	// with the name.
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "Value" starts at the same offset in header and rows.
	col := strings.Index(lines[1], "Value")
	if col < 0 {
		t.Fatal("no Value column")
	}
	if lines[3][col:col+2] != "42" {
		t.Errorf("row 1 misaligned: %q", lines[3])
	}
	// Floats format to three decimals.
	if !strings.Contains(out, "1.500") || !strings.Contains(out, "0.250") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "Name,Value,Ratio" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "alpha,42,1.500" {
		t.Errorf("csv row = %q", lines[1])
	}
	if len(lines) != 4 {
		t.Errorf("csv has %d lines, want 4", len(lines))
	}
}

// TestCSVQuoting pins RFC 4180 behaviour: cells containing commas, double
// quotes, or newlines must be quoted (with embedded quotes doubled) so they
// survive a standard CSV reader.
func TestCSVQuoting(t *testing.T) {
	tbl := &Table{Headers: []string{"kernel", "note"}}
	tbl.AddRow("bfs,kernel1", `says "hi"`)
	tbl.AddRow("line\nbreak", "plain")
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"bfs,kernel1"`, `"says ""hi"""`, "\"line\nbreak\""} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing quoted form %q in:\n%s", want, out)
		}
	}

	// Round trip through the standard reader.
	rec, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not re-parse: %v", err)
	}
	want := [][]string{
		{"kernel", "note"},
		{"bfs,kernel1", `says "hi"`},
		{"line\nbreak", "plain"},
	}
	if !reflect.DeepEqual(rec, want) {
		t.Errorf("round trip = %q, want %q", rec, want)
	}
}

func TestEmptyTable(t *testing.T) {
	var sb strings.Builder
	tbl := &Table{Headers: []string{"A"}}
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A") {
		t.Error("header missing")
	}
}
